// Inter-candidate batch extension: BatchSwScorer vs per-pair striped.
//
// The paper's aligning phase scores every candidate window a read's seeds
// produced. The striped kernel (fig14 territory) vectorizes WITHIN one
// query/target pair and leaves lanes idle on short candidates; the batch
// engine packs one CANDIDATE per lane and sweeps them together. This bench
// measures that inter-candidate axis on a realistic multi-candidate
// workload: Q reads, each with ~24 candidate windows (mutated copies of the
// read embedded in flanking sequence, plus a few decoys), scored by
//
//   a. per-pair striped   — one StripedSmithWaterman profile per read,
//                           align() once per candidate (the kStriped
//                           extension path's engine cost), and
//   b. BatchSwScorer      — same candidates, one flush per read, at every
//                           dispatch tier the host supports.
//
// Every tier's (score, t_end) stream must be bit-identical to the striped
// stream — the bench aborts otherwise, the same contract the `simd` test
// label enforces. Throughput is reported as candidates/s; on hosts where
// auto-dispatch reaches AVX2 or wider the run fails unless the widest tier
// clears 2x the per-pair striped baseline.
//
// Output: paper-style stdout rows + BENCH_fig15.json. Pass --smoke for the
// CI-sized workload.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <random>
#include <string>
#include <vector>

#include "align/batch_sw.hpp"
#include "align/scoring.hpp"
#include "align/striped_sw.hpp"
#include "bench_common.hpp"

namespace {

using mera::align::BatchSwScorer;
using mera::align::Scoring;
using mera::align::StripedResult;
using mera::align::StripedSmithWaterman;
using mera::align::SwIsa;

std::string random_dna(std::mt19937_64& rng, std::size_t len) {
  static constexpr char kBases[] = "ACGT";
  std::string s(len, 'A');
  for (auto& c : s) c = kBases[rng() & 3u];
  return s;
}

/// One read and the candidate windows its seeds would have produced.
struct ReadCase {
  std::vector<std::uint8_t> query;
  std::vector<std::vector<std::uint8_t>> targets;
};

/// Q reads x C candidates. Most candidates embed a mutated copy of the read
/// (substitutions + occasional indel) inside random flanks — high-scoring,
/// like true seed extensions; a few are pure decoys that score near zero.
std::vector<ReadCase> make_cases(std::size_t nreads, std::size_t ncand,
                                 std::size_t read_len, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<ReadCase> cases(nreads);
  for (auto& rc : cases) {
    const std::string q = random_dna(rng, read_len);
    rc.query = mera::align::dna_codes(q);
    rc.targets.reserve(ncand);
    for (std::size_t c = 0; c < ncand; ++c) {
      std::string window;
      if (c % 6 == 5) {  // decoy candidate: unrelated sequence
        window = random_dna(rng, read_len + 2 * 50);
      } else {
        std::string body = q;
        const int nsub = 1 + static_cast<int>(rng() % 5);
        for (int e = 0; e < nsub; ++e)
          body[rng() % body.size()] = "ACGT"[rng() & 3u];
        if (c % 3 == 0) body.erase(rng() % (body.size() - 2), 1);
        if (c % 4 == 1) body.insert(rng() % body.size(), 1, "ACGT"[rng() & 3u]);
        window = random_dna(rng, 50) + body + random_dna(rng, 50);
      }
      rc.targets.push_back(mera::align::dna_codes(window));
    }
  }
  return cases;
}

using bench::now_s;  // the shared obs clock path, same as every other bench

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i)
    smoke = smoke || std::strcmp(argv[i], "--smoke") == 0;

  bench::print_header(
      "Inter-candidate batch extension — BatchSwScorer vs per-pair striped",
      "Section V-B: Smith-Waterman extension of every seed candidate");
  bench::JsonSummary json(
      "fig15", "inter-candidate SIMD batch scoring vs per-pair striped");

  const std::size_t nreads = smoke ? 48 : 256;
  const std::size_t ncand = 24;
  const std::size_t read_len = 101;
  const int reps = smoke ? 2 : 4;
  const auto cases = make_cases(nreads, ncand, read_len, /*seed=*/77);
  const double npairs = static_cast<double>(nreads * ncand);
  std::printf("workload: %zu reads x %zu candidates (%.0f pairs), %d reps%s\n",
              nreads, ncand, npairs, reps, smoke ? " (smoke)" : "");

  const Scoring sc;

  // ---- baseline: per-pair striped (profile reused across candidates) ------
  std::vector<StripedResult> golden;
  golden.reserve(nreads * ncand);
  double striped_best_s = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    std::vector<StripedResult> out;
    out.reserve(nreads * ncand);
    const double t0 = now_s();
    for (const auto& rc : cases) {
      const StripedSmithWaterman ssw(
          std::span<const std::uint8_t>(rc.query), sc);
      for (const auto& t : rc.targets)
        out.push_back(ssw.align(std::span<const std::uint8_t>(t)));
    }
    const double dt = now_s() - t0;
    if (rep == 0 || dt < striped_best_s) striped_best_s = dt;
    if (rep == 0) golden = std::move(out);
  }
  const double striped_cps = npairs / striped_best_s;
  std::printf("\n%-10s %12s %16s %10s\n", "engine", "best(s)", "candidates/s",
              "speedup");
  std::printf("%-10s %12.4f %16.0f %9.2fx\n", "striped", striped_best_s,
              striped_cps, 1.0);
  json.config("striped_per_pair");
  json.metric("best_s", striped_best_s);
  json.metric("candidates_per_s", striped_cps);
  json.metric("speedup_vs_striped", 1.0);

  // ---- batch engine at every supported tier -------------------------------
  const SwIsa widest = mera::align::detect_isa();
  double widest_speedup = 0.0;
  for (const SwIsa isa : {SwIsa::kScalar, SwIsa::kSse2, SwIsa::kAvx2,
                          SwIsa::kAvx512}) {
    if (!mera::align::isa_supported(isa)) continue;
    double best_s = 0.0;
    std::vector<StripedResult> out;
    for (int rep = 0; rep < reps; ++rep) {
      out.clear();
      out.reserve(nreads * ncand);
      const double t0 = now_s();
      for (const auto& rc : cases) {
        BatchSwScorer scorer(std::span<const std::uint8_t>(rc.query), sc,
                             isa);
        for (const auto& t : rc.targets)
          scorer.add(std::span<const std::uint8_t>(t));
        auto res = scorer.flush();
        out.insert(out.end(), res.begin(), res.end());
      }
      const double dt = now_s() - t0;
      if (rep == 0 || dt < best_s) best_s = dt;
    }
    // Bit-identity gate: every tier must reproduce the striped stream.
    for (std::size_t i = 0; i < golden.size(); ++i) {
      if (out[i].score != golden[i].score || out[i].t_end != golden[i].t_end) {
        std::fprintf(stderr,
                     "FATAL: batch[%s] pair %zu diverged from striped "
                     "(score %d vs %d, t_end %zu vs %zu)\n",
                     mera::align::isa_name(isa), i, out[i].score,
                     golden[i].score, out[i].t_end, golden[i].t_end);
        return 1;
      }
    }
    const double cps = npairs / best_s;
    const double speedup = striped_best_s / best_s;
    if (isa == widest) widest_speedup = speedup;
    std::printf("%-10s %12.4f %16.0f %9.2fx\n", mera::align::isa_name(isa),
                best_s, cps, speedup);
    json.config(std::string("batch_") + mera::align::isa_name(isa));
    json.metric("best_s", best_s);
    json.metric("candidates_per_s", cps);
    json.metric("speedup_vs_striped", speedup);
  }
  std::printf("(every tier's score/t_end stream is bit-identical to striped; "
              "auto tier: %s)\n",
              mera::align::isa_name(widest));
  json.config("auto_tier_" + std::string(mera::align::isa_name(widest)));
  json.metric("speedup_vs_striped", widest_speedup);

  // On wide hosts the whole point is throughput: the widest tier must clear
  // 2x per-pair striped, else the packing layer has regressed.
  if (widest >= SwIsa::kAvx2 && widest_speedup < 2.0) {
    std::fprintf(stderr,
                 "FATAL: widest tier (%s) speedup %.2fx < 2x over per-pair "
                 "striped on the multi-candidate workload\n",
                 mera::align::isa_name(widest), widest_speedup);
    return 1;
  }

  return json.write() ? 0 : 1;
}
