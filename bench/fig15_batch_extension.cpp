// Inter-candidate batch extension: BatchSwScorer vs per-pair striped.
//
// The paper's aligning phase scores every candidate window a read's seeds
// produced. The striped kernel (fig14 territory) vectorizes WITHIN one
// query/target pair and leaves lanes idle on short candidates; the batch
// engine packs one CANDIDATE per lane and sweeps them together. This bench
// measures that inter-candidate axis on a realistic multi-candidate
// workload: Q reads, each with ~24 candidate windows (mutated copies of the
// read embedded in flanking sequence, plus a few decoys), scored by
//
//   a. per-pair striped   — one StripedSmithWaterman profile per read,
//                           align() once per candidate (the kStriped
//                           extension path's engine cost), and
//   b. BatchSwScorer      — same candidates, one flush per read, at every
//                           dispatch tier the host supports.
//
// Every tier's (score, t_end) stream must be bit-identical to the striped
// stream — the bench aborts otherwise, the same contract the `simd` test
// label enforces. Throughput is reported as candidates/s; on hosts where
// auto-dispatch reaches AVX2 or wider the run fails unless the widest tier
// clears 2x the per-pair striped baseline.
//
// Output: paper-style stdout rows + BENCH_fig15.json. Pass --smoke for the
// CI-sized workload.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <random>
#include <string>
#include <vector>

#include "align/batch_sw.hpp"
#include "align/pooled_queue.hpp"
#include "align/scoring.hpp"
#include "align/striped_sw.hpp"
#include "bench_common.hpp"

namespace {

using mera::align::BatchSwScorer;
using mera::align::Scoring;
using mera::align::StripedResult;
using mera::align::StripedSmithWaterman;
using mera::align::SwIsa;

std::string random_dna(std::mt19937_64& rng, std::size_t len) {
  static constexpr char kBases[] = "ACGT";
  std::string s(len, 'A');
  for (auto& c : s) c = kBases[rng() & 3u];
  return s;
}

/// One read and the candidate windows its seeds would have produced.
struct ReadCase {
  std::vector<std::uint8_t> query;
  std::vector<std::vector<std::uint8_t>> targets;
};

/// Q reads x C candidates. Most candidates embed a mutated copy of the read
/// (substitutions + occasional indel) inside random flanks — high-scoring,
/// like true seed extensions; a few are pure decoys that score near zero.
std::vector<ReadCase> make_cases(std::size_t nreads, std::size_t ncand,
                                 std::size_t read_len, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<ReadCase> cases(nreads);
  for (auto& rc : cases) {
    const std::string q = random_dna(rng, read_len);
    rc.query = mera::align::dna_codes(q);
    rc.targets.reserve(ncand);
    for (std::size_t c = 0; c < ncand; ++c) {
      std::string window;
      if (c % 6 == 5) {  // decoy candidate: unrelated sequence
        window = random_dna(rng, read_len + 2 * 50);
      } else {
        std::string body = q;
        const int nsub = 1 + static_cast<int>(rng() % 5);
        for (int e = 0; e < nsub; ++e)
          body[rng() % body.size()] = "ACGT"[rng() & 3u];
        if (c % 3 == 0) body.erase(rng() % (body.size() - 2), 1);
        if (c % 4 == 1) body.insert(rng() % body.size(), 1, "ACGT"[rng() & 3u]);
        window = random_dna(rng, 50) + body + random_dna(rng, 50);
      }
      rc.targets.push_back(mera::align::dna_codes(window));
    }
  }
  return cases;
}

using bench::now_s;  // the shared obs clock path, same as every other bench

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i)
    smoke = smoke || std::strcmp(argv[i], "--smoke") == 0;

  bench::print_header(
      "Inter-candidate batch extension — BatchSwScorer vs per-pair striped",
      "Section V-B: Smith-Waterman extension of every seed candidate");
  bench::JsonSummary json(
      "fig15", "inter-candidate SIMD batch scoring vs per-pair striped");

  const std::size_t nreads = smoke ? 48 : 256;
  const std::size_t ncand = 24;
  const std::size_t read_len = 101;
  const int reps = smoke ? 2 : 4;
  const auto cases = make_cases(nreads, ncand, read_len, /*seed=*/77);
  const double npairs = static_cast<double>(nreads * ncand);
  std::printf("workload: %zu reads x %zu candidates (%.0f pairs), %d reps%s\n",
              nreads, ncand, npairs, reps, smoke ? " (smoke)" : "");

  const Scoring sc;

  // ---- baseline: per-pair striped (profile reused across candidates) ------
  std::vector<StripedResult> golden;
  golden.reserve(nreads * ncand);
  double striped_best_s = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    std::vector<StripedResult> out;
    out.reserve(nreads * ncand);
    const double t0 = now_s();
    for (const auto& rc : cases) {
      const StripedSmithWaterman ssw(
          std::span<const std::uint8_t>(rc.query), sc);
      for (const auto& t : rc.targets)
        out.push_back(ssw.align(std::span<const std::uint8_t>(t)));
    }
    const double dt = now_s() - t0;
    if (rep == 0 || dt < striped_best_s) striped_best_s = dt;
    if (rep == 0) golden = std::move(out);
  }
  const double striped_cps = npairs / striped_best_s;
  std::printf("\n%-10s %12s %16s %10s\n", "engine", "best(s)", "candidates/s",
              "speedup");
  std::printf("%-10s %12.4f %16.0f %9.2fx\n", "striped", striped_best_s,
              striped_cps, 1.0);
  json.config("striped_per_pair");
  json.metric("best_s", striped_best_s);
  json.metric("candidates_per_s", striped_cps);
  json.metric("speedup_vs_striped", 1.0);

  // ---- batch engine at every supported tier -------------------------------
  const SwIsa widest = mera::align::detect_isa();
  double widest_speedup = 0.0;
  for (const SwIsa isa : {SwIsa::kScalar, SwIsa::kSse2, SwIsa::kAvx2,
                          SwIsa::kAvx512}) {
    if (!mera::align::isa_supported(isa)) continue;
    double best_s = 0.0;
    std::vector<StripedResult> out;
    for (int rep = 0; rep < reps; ++rep) {
      out.clear();
      out.reserve(nreads * ncand);
      const double t0 = now_s();
      for (const auto& rc : cases) {
        BatchSwScorer scorer(std::span<const std::uint8_t>(rc.query), sc,
                             isa);
        for (const auto& t : rc.targets)
          scorer.add(std::span<const std::uint8_t>(t));
        auto res = scorer.flush();
        out.insert(out.end(), res.begin(), res.end());
      }
      const double dt = now_s() - t0;
      if (rep == 0 || dt < best_s) best_s = dt;
    }
    // Bit-identity gate: every tier must reproduce the striped stream.
    for (std::size_t i = 0; i < golden.size(); ++i) {
      if (out[i].score != golden[i].score || out[i].t_end != golden[i].t_end) {
        std::fprintf(stderr,
                     "FATAL: batch[%s] pair %zu diverged from striped "
                     "(score %d vs %d, t_end %zu vs %zu)\n",
                     mera::align::isa_name(isa), i, out[i].score,
                     golden[i].score, out[i].t_end, golden[i].t_end);
        return 1;
      }
    }
    const double cps = npairs / best_s;
    const double speedup = striped_best_s / best_s;
    if (isa == widest) widest_speedup = speedup;
    std::printf("%-10s %12.4f %16.0f %9.2fx\n", mera::align::isa_name(isa),
                best_s, cps, speedup);
    json.config(std::string("batch_") + mera::align::isa_name(isa));
    json.metric("best_s", best_s);
    json.metric("candidates_per_s", cps);
    json.metric("speedup_vs_striped", speedup);
  }
  std::printf("(every tier's score/t_end stream is bit-identical to striped; "
              "auto tier: %s)\n",
              mera::align::isa_name(widest));
  json.config("auto_tier_" + std::string(mera::align::isa_name(widest)));
  json.metric("speedup_vs_striped", widest_speedup);

  // On wide hosts the whole point is throughput: the widest tier must clear
  // 2x per-pair striped, else the packing layer has regressed.
  if (widest >= SwIsa::kAvx2 && widest_speedup < 2.0) {
    std::fprintf(stderr,
                 "FATAL: widest tier (%s) speedup %.2fx < 2x over per-pair "
                 "striped on the multi-candidate workload\n",
                 mera::align::isa_name(widest), widest_speedup);
    return 1;
  }

  // ---- cross-read pooling: per-read flushes vs PooledExtensionQueue -------
  // The aligning phase's real workload is the OPPOSITE of the one above:
  // most reads produce only a handful of candidates, so a per-read flush
  // fills 3 of 64 AVX-512 lanes. Pooling accumulates candidates across reads
  // in length-class buckets and flushes only full lane groups. Same scores
  // by contract; the lane-occupancy ratio is the figure of merit.
  const std::size_t nreads2 = smoke ? 192 : 768;
  const std::size_t ncand2 = 3;
  const std::size_t lane_width = mera::align::isa_lanes8(SwIsa::kAuto);
  // Mixed read lengths (81..121) spread the pool over two length classes
  // (width 32: classes 2 and 3), so pooling has to merge across reads AND
  // keep classes apart — the shape the session's pooled path sees.
  std::vector<ReadCase> cases2(nreads2);
  {
    std::mt19937_64 rng(178);
    for (std::size_t i = 0; i < nreads2; ++i) {
      const std::size_t len = 81 + (i % 5) * 10;
      auto one = make_cases(1, ncand2, len, rng());
      cases2[i] = std::move(one[0]);
    }
  }
  const double npairs2 = static_cast<double>(nreads2 * ncand2);
  std::printf(
      "\ncross-read pooling: %zu reads x %zu candidates, read lengths "
      "81..121, lane width %zu\n",
      nreads2, ncand2, lane_width);

  // (a) per-read flushing: one flush per read, lanes mostly idle.
  std::vector<StripedResult> perread;
  mera::align::LaneStats perread_ls;
  double perread_best_s = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    std::vector<StripedResult> out;
    out.reserve(nreads2 * ncand2);
    mera::align::LaneStats ls;
    const double t0 = now_s();
    for (const auto& rc : cases2) {
      BatchSwScorer scorer(std::span<const std::uint8_t>(rc.query), sc);
      for (const auto& t : rc.targets)
        scorer.add(std::span<const std::uint8_t>(t));
      auto res = scorer.flush();
      out.insert(out.end(), res.begin(), res.end());
      ls += scorer.lane_stats();
    }
    const double dt = now_s() - t0;
    if (rep == 0 || dt < perread_best_s) perread_best_s = dt;
    if (rep == 0) {
      perread = std::move(out);
      perread_ls = ls;
    }
  }

  // (b) pooled flushing: candidates from every read share one queue; tags
  // carry provenance so results land back at their global candidate index.
  std::vector<StripedResult> pooled(nreads2 * ncand2);
  mera::align::LaneStats pooled_ls;
  double pooled_best_s = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    std::vector<StripedResult> out(nreads2 * ncand2);
    mera::align::PooledQueueConfig qcfg;
    qcfg.scoring = sc;
    mera::align::PooledExtensionQueue queue(
        qcfg, [&out](std::uint64_t tag, const StripedResult& r) {
          out[tag] = r;
        });
    const double t0 = now_s();
    for (std::size_t i = 0; i < nreads2; ++i) {
      const auto qid = queue.add_query(
          std::span<const std::uint8_t>(cases2[i].query));
      for (std::size_t c = 0; c < ncand2; ++c)
        queue.enqueue(qid,
                      std::span<const std::uint8_t>(cases2[i].targets[c]),
                      static_cast<std::uint64_t>(i * ncand2 + c));
    }
    queue.drain();
    const double dt = now_s() - t0;
    if (rep == 0 || dt < pooled_best_s) pooled_best_s = dt;
    if (rep == 0) {
      pooled = std::move(out);
      pooled_ls = queue.lane_stats();
    }
  }

  // Bit-identity gate: pooling changes when candidates are scored, never
  // what their scores are.
  for (std::size_t i = 0; i < perread.size(); ++i) {
    if (pooled[i].score != perread[i].score ||
        pooled[i].t_end != perread[i].t_end) {
      std::fprintf(stderr,
                   "FATAL: pooled pair %zu diverged from per-read "
                   "(score %d vs %d, t_end %zu vs %zu)\n",
                   i, pooled[i].score, perread[i].score, pooled[i].t_end,
                   perread[i].t_end);
      return 1;
    }
  }

  const double perread_occ = perread_ls.mean_occupancy();
  const double pooled_occ = pooled_ls.mean_occupancy();
  const double occ_ratio = perread_occ > 0.0 ? pooled_occ / perread_occ : 0.0;
  std::printf("%-10s %12s %16s %12s\n", "flush", "best(s)", "candidates/s",
              "occupancy");
  std::printf("%-10s %12.4f %16.0f %11.1f%%\n", "per-read", perread_best_s,
              npairs2 / perread_best_s, 100.0 * perread_occ);
  std::printf("%-10s %12.4f %16.0f %11.1f%%\n", "pooled", pooled_best_s,
              npairs2 / pooled_best_s, 100.0 * pooled_occ);
  std::printf("(pooled/per-read occupancy ratio: %.1fx; streams "
              "bit-identical)\n",
              occ_ratio);
  json.config("perread_flush");
  json.metric("best_s", perread_best_s);
  json.metric("candidates_per_s", npairs2 / perread_best_s);
  json.metric("mean_lane_occupancy", perread_occ);
  json.metric("lane_width", static_cast<double>(lane_width));
  json.config("pooled_flush");
  json.metric("best_s", pooled_best_s);
  json.metric("candidates_per_s", npairs2 / pooled_best_s);
  json.metric("mean_lane_occupancy", pooled_occ);
  json.metric("occupancy_ratio", occ_ratio);

  // On any SIMD tier pooling must at least double mean lane occupancy on
  // this few-candidates-per-read workload — that is the whole feature.
  if (lane_width > 1 &&
      (pooled_occ <= perread_occ || occ_ratio < 2.0)) {
    std::fprintf(stderr,
                 "FATAL: pooled occupancy %.3f vs per-read %.3f "
                 "(ratio %.2fx < 2x) at lane width %zu\n",
                 pooled_occ, perread_occ, occ_ratio, lane_width);
    return 1;
  }

  return json.write() ? 0 : 1;
}
