// Cache persistence & warm start: a restarted screening service skips the
// cold process's remote-lookup work.
//
// The paper's software caches (Section IV, Figure 9) make repeated screening
// cheap *within* a process; this bench measures what snapshotting them buys
// *across* processes. Two "processes" run the same batch stream over the
// same reference:
//
//   cold — fresh index, empty caches; every off-node seed lookup and target
//          fetch pays the modeled remote transfer at least once;
//   warm — a simulated restart: the index is rebuilt from scratch and a new
//          session starts, but its caches are restored from the cold
//          process's snapshot (--save-cache / --load-cache in the CLI), so
//          the remote work the cold process already paid for is skipped.
//
// The contract this bench enforces (and the numbers it reports):
//   * the warm process's cache hit rate is STRICTLY above the cold one's on
//     the same stream, from the very first batch;
//   * warm output is identical to cold output — persistence changes the
//     modeled communication seconds, never the record set. The bench aborts
//     (exit 1) if either fails.
//
// Output: per-batch hit-rate rows for both processes, single-reference and
// K=4 sharded, plus a machine-readable BENCH_fig14.json (bench::JsonSummary)
// for CI perf-trajectory archiving. Pass --smoke for the CI-sized workload.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <tuple>
#include <vector>

#include "bench_common.hpp"
#include "core/align_session.hpp"
#include "core/alignment_sink.hpp"
#include "core/indexed_reference.hpp"
#include "shard/sharded_reference.hpp"
#include "shard/sharded_session.hpp"

namespace {

using mera::core::AlignmentRecord;
using mera::core::PipelineStats;
using mera::seq::SeqRecord;

struct ProcessResult {
  PipelineStats stats;                    ///< summed over batches
  std::vector<double> batch_hit_rates;    ///< seed-cache, per batch
  std::vector<AlignmentRecord> records;   ///< sorted, for the identity check
  double align_model_s = 0.0;
};

void sort_records(std::vector<AlignmentRecord>& recs) {
  auto key = [](const AlignmentRecord& r) {
    return std::tie(r.query_name, r.target_id, r.t_begin, r.t_end, r.reverse,
                    r.score, r.q_begin, r.q_end, r.cigar, r.mismatches,
                    r.exact);
  };
  std::sort(recs.begin(), recs.end(),
            [&](const AlignmentRecord& a, const AlignmentRecord& b) {
              return key(a) < key(b);
            });
}

double hit_rate(const PipelineStats& s) {
  // Off-node lookups served by the seed cache, over all lookups that could
  // have used it (hits + the misses that went to the index).
  return s.seed_lookups == 0 ? 0.0
                             : static_cast<double>(s.seed_cache_hits) /
                                   static_cast<double>(s.seed_lookups);
}

/// Stream `batches` through one session; works for both session types.
template <typename SessionT, typename RunBatchFn>
ProcessResult run_stream(const std::vector<std::vector<SeqRecord>>& batches,
                         SessionT& session, RunBatchFn&& run_batch,
                         int nranks) {
  ProcessResult out;
  mera::core::VectorSink vec(nranks);
  for (const auto& batch : batches) {
    const auto res = run_batch(session, batch, vec);
    out.stats += res.stats;
    out.batch_hit_rates.push_back(hit_rate(res.stats));
    out.align_model_s += res.report.total_time_s();
  }
  out.records = vec.take();
  sort_records(out.records);
  return out;
}

void print_process(const char* name, const ProcessResult& r) {
  std::printf("  %-6s", name);
  for (const double hr : r.batch_hit_rates) std::printf(" %8.1f%%", 100 * hr);
  std::printf("  | %9.4f s lookup comm, %9.4f s fetch comm, %llu alignments\n",
              r.stats.comm_lookup_s, r.stats.comm_fetch_s,
              static_cast<unsigned long long>(r.stats.alignments_reported));
}

void emit_json(bench::JsonSummary& json, const std::string& config,
               const ProcessResult& r) {
  json.config(config);
  json.metric("seed_hit_rate", hit_rate(r.stats));
  json.metric("seed_cache_hits", static_cast<double>(r.stats.seed_cache_hits));
  json.metric("seed_lookups", static_cast<double>(r.stats.seed_lookups));
  json.metric("target_cache_hits",
              static_cast<double>(r.stats.target_cache_hits));
  json.metric("comm_lookup_s", r.stats.comm_lookup_s);
  json.metric("comm_fetch_s", r.stats.comm_fetch_s);
  json.metric("align_model_s", r.align_model_s);
  json.metric("first_batch_hit_rate",
              r.batch_hit_rates.empty() ? 0.0 : r.batch_hit_rates.front());
  json.metric("alignments", static_cast<double>(r.stats.alignments_reported));
}

/// The bit-identity and strictly-warmer gates; exit 1 on violation.
void enforce(const char* what, const ProcessResult& cold,
             const ProcessResult& warm) {
  if (cold.records != warm.records) {
    std::fprintf(stderr,
                 "FATAL: %s: warm record set differs from cold (%zu vs %zu "
                 "records) — persistence changed bytes!\n",
                 what, warm.records.size(), cold.records.size());
    std::exit(1);
  }
  if (hit_rate(warm.stats) <= hit_rate(cold.stats)) {
    std::fprintf(stderr,
                 "FATAL: %s: warm hit rate %.4f is not above cold %.4f — "
                 "the snapshot did not warm-start the caches!\n",
                 what, hit_rate(warm.stats), hit_rate(cold.stats));
    std::exit(1);
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mera;
  bool smoke = false;
  for (int i = 1; i < argc; ++i)
    smoke = smoke || std::strcmp(argv[i], "--smoke") == 0;

  bench::print_header(
      "Warm start — session caches snapshotted across process restarts",
      "Section IV software caches, persisted (ROADMAP cache persistence)");
  bench::JsonSummary json(
      "fig14", "cold vs warm-started process on the same batch stream");
  const bench::StopWatch bench_watch;  // measured via the shared obs clock

  const auto w = bench::make_workload(
      bench::human_like(smoke ? 300'000 : 1'000'000, smoke ? 2.0 : 3.0));
  constexpr std::size_t kBatches = 3;
  std::vector<std::vector<SeqRecord>> batches(kBatches);
  for (std::size_t i = 0; i < w.reads.size(); ++i)
    batches[i * kBatches / w.reads.size()].push_back(w.reads[i]);
  std::printf("workload: %zu contigs, %zu reads in %zu batches%s\n\n",
              w.contigs.size(), w.reads.size(), kBatches,
              smoke ? " (smoke)" : "");

  const std::string snapdir = "fig14_cache_snapshots";
  std::filesystem::remove_all(snapdir);
  std::filesystem::create_directories(snapdir);
  const pgas::Topology topo(8, 4);  // 2 nodes: off-node traffic to cache
  core::IndexConfig icfg;
  icfg.k = 31;
  core::SessionConfig scfg;  // both caches on
  // Size the seed cache to the workload's distinct-seed count (the paper
  // dedicates 16 GB/node). With a churning cache a snapshot only carries the
  // tail of the stream and warm ~= cold — true, but it measures eviction,
  // not persistence; this bench isolates the warm-start effect.
  scfg.seed_cache_capacity = smoke ? (1u << 18) : (1u << 21);

  // ---- A: single reference -------------------------------------------------
  std::printf("A. single reference, %zu-batch stream (seed-cache hit rate "
              "per batch)\n", kBatches);
  {
    const std::string snap = snapdir + "/session.mcache";
    ProcessResult cold, warm;
    {
      // "Process 1": cold start, then snapshot.
      pgas::Runtime rt(topo);
      const auto ref = core::IndexedReference::build(rt, w.contigs, icfg);
      core::AlignSession session(ref, scfg);
      cold = run_stream(batches, session,
                        [&rt](core::AlignSession& s,
                              const std::vector<SeqRecord>& batch,
                              core::AlignmentSink& sink) {
                          return s.align_batch(rt, batch, sink);
                        },
                        rt.nranks());
      session.save_caches(rt, snap);
    }
    {
      // "Process 2": everything rebuilt from scratch — except the caches,
      // which warm-load from the snapshot before the first batch.
      pgas::Runtime rt(topo);
      const auto ref = core::IndexedReference::build(rt, w.contigs, icfg);
      core::AlignSession session(ref, scfg);
      session.load_caches(rt, snap);
      warm = run_stream(batches, session,
                        [&rt](core::AlignSession& s,
                              const std::vector<SeqRecord>& batch,
                              core::AlignmentSink& sink) {
                          return s.align_batch(rt, batch, sink);
                        },
                        rt.nranks());
    }
    print_process("cold", cold);
    print_process("warm", warm);
    enforce("single reference", cold, warm);
    std::printf("  -> warm skipped %.1f%% of the cold lookup communication\n\n",
                100.0 * (1.0 - warm.stats.comm_lookup_s /
                                   std::max(cold.stats.comm_lookup_s, 1e-12)));
    emit_json(json, "single_cold", cold);
    emit_json(json, "single_warm", warm);
  }

  // ---- B: K=4 sharded reference (one snapshot per shard) -------------------
  constexpr int kShards = 4;
  std::printf("B. K=%d sharded reference, one snapshot per shard\n", kShards);
  {
    const std::string snap = snapdir + "/sharded";
    core::SessionConfig sscfg = scfg;
    sscfg.exact_match = false;       // mirrors the sharded screening setup
    sscfg.max_hits_per_seed = 4096;  // no per-shard truncation
    ProcessResult cold, warm;
    {
      pgas::Runtime rt(topo);
      const auto ref =
          shard::ShardedReference::build(rt, w.contigs, kShards, icfg);
      shard::ShardedAlignSession session(ref, sscfg);
      cold = run_stream(batches, session,
                        [&rt](shard::ShardedAlignSession& s,
                              const std::vector<SeqRecord>& batch,
                              core::AlignmentSink& sink) {
                          return s.align_batch(rt, batch, sink);
                        },
                        rt.nranks());
      session.save_caches(rt, snap);
    }
    {
      pgas::Runtime rt(topo);
      const auto ref =
          shard::ShardedReference::build(rt, w.contigs, kShards, icfg);
      shard::ShardedAlignSession session(ref, sscfg);
      session.load_caches(rt, snap);
      warm = run_stream(batches, session,
                        [&rt](shard::ShardedAlignSession& s,
                              const std::vector<SeqRecord>& batch,
                              core::AlignmentSink& sink) {
                          return s.align_batch(rt, batch, sink);
                        },
                        rt.nranks());
    }
    print_process("cold", cold);
    print_process("warm", warm);
    enforce("sharded K=4", cold, warm);
    std::printf("  -> warm skipped %.1f%% of the cold lookup communication\n\n",
                100.0 * (1.0 - warm.stats.comm_lookup_s /
                                   std::max(cold.stats.comm_lookup_s, 1e-12)));
    emit_json(json, "shardedK4_cold", cold);
    emit_json(json, "shardedK4_warm", warm);
  }

  std::filesystem::remove_all(snapdir);
  std::printf("bit-identity: warm record sets identical to cold (both parts)\n");
  json.config("bench_total");
  json.metric("bench_wall_s", bench_watch.elapsed_s());
  if (!json.write()) return 1;
  return 0;
}
