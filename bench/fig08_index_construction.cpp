// Figure 8: distributed seed index construction time with and without the
// "aggregating stores" optimization (S = 1000), at three concurrencies.
//
// Paper: 480 cores 1229 s -> 262 s (4.7x), 1920 cores (3.9x), 7680 cores
// (4.8x); optimized construction scales 12.7x from 480 -> 7680 cores (16x
// cores). Expect: a consistent multi-x improvement factor at every rank
// count, and near-linear scaling of the optimized build.
#include <cstdio>

#include "bench_common.hpp"
#include "core/pipeline.hpp"

namespace {

using namespace mera;

double index_build_time(const bench::Workload& w, int nranks, int ppn,
                        bool aggregating, std::uint64_t* msgs,
                        std::uint64_t* atomics) {
  core::AlignerConfig cfg;
  cfg.k = 51;
  cfg.aggregating_stores = aggregating;
  cfg.buffer_S = 1000;
  cfg.fragment_len = 1024;
  cfg.collect_alignments = false;
  pgas::Runtime rt(pgas::Topology(nranks, ppn));
  const auto res = core::MerAligner(cfg).align(rt, w.contigs, w.reads);
  const auto* ph = res.report.find("index.build");
  if (msgs) *msgs = ph->traffic.remote_msgs();
  if (atomics) *atomics = ph->traffic.atomics;
  return ph->time_s();
}

}  // namespace

int main() {
  bench::print_header(
      "Figure 8 — seed index construction, aggregating stores on/off",
      "Fig. 8: 4.7x / 3.9x / 4.8x at 480 / 1920 / 7680 cores, S=1000");

  // Construction-dominated workload: big target set, few reads.
  bench::WorkloadSpec spec = bench::human_like(3'000'000, 0.2);
  const auto w = bench::make_workload(spec);
  std::printf("targets: %zu contigs (%zu Mbp genome), S=1000\n\n",
              w.contigs.size(), w.genome_len / 1'000'000);

  std::printf("%8s %16s %16s %10s %16s %16s\n", "cores", "w/o opt(s)",
              "w/ opt(s)", "factor", "msgs w/o", "msgs w/");
  double opt_first = -1;
  int cores_first = 0;
  double opt_last = -1;
  int cores_last = 0;
  for (int nranks : {8, 16, 32}) {
    std::uint64_t msgs_naive = 0, msgs_agg = 0, at_n = 0, at_a = 0;
    const double t_naive =
        index_build_time(w, nranks, 4, false, &msgs_naive, &at_n);
    const double t_agg = index_build_time(w, nranks, 4, true, &msgs_agg, &at_a);
    std::printf("%8d %16.3f %16.3f %9.1fx %16llu %16llu\n", nranks, t_naive,
                t_agg, t_naive / t_agg,
                static_cast<unsigned long long>(msgs_naive),
                static_cast<unsigned long long>(msgs_agg));
    if (opt_first < 0) {
      opt_first = t_agg;
      cores_first = nranks;
    }
    opt_last = t_agg;
    cores_last = nranks;
  }
  std::printf(
      "\noptimized build scaling %d -> %d cores: %.1fx speedup on %.0fx "
      "cores (paper: 12.7x on 16x)\n",
      cores_first, cores_last, opt_first / opt_last,
      static_cast<double>(cores_last) / cores_first);
  return 0;
}
