// Table I: effect of the load-balancing permutation (Section IV-B) on the
// human-like dataset — min/max/avg computation time and min/max/avg total
// alignment time (computation + communication), permutation on vs off.
//
// Paper (480 cores):            comp min/max/avg    total min/max/avg
//   with permutation  (Yes):    678 /  800 /  740   2700 / 3885 / 3277
//   without           (No):     515 / 1945 /  690   1512 / 4092 / 2073
// i.e. permutation cuts the max computation ~2.4x but makes the seed cache
// less effective (grouped reads share seeds within a node), so total time
// improves only ~5%. The workload below reproduces the mechanism: grouped
// reads with a repeat-heavy region that makes a contiguous block of queries
// "slow".
#include <cstdio>
#include <random>

#include "bench_common.hpp"
#include "core/pipeline.hpp"

namespace {

using namespace mera;

struct Row {
  double comp_min, comp_max, comp_avg;
  double tot_min, tot_max, tot_avg;
  double cache_hit_rate;
};

Row run(const bench::Workload& w, bool permute, int nranks, int ppn) {
  core::AlignerConfig cfg;
  cfg.k = 51;
  cfg.buffer_S = 1000;
  cfg.fragment_len = 1024;
  cfg.permute_queries = permute;
  cfg.collect_alignments = false;
  pgas::Runtime rt(pgas::Topology(nranks, ppn));
  const auto res = core::MerAligner(cfg).align(rt, w.contigs, w.reads);
  const auto* ph = res.report.find("align");
  Row row{};
  row.comp_min = ph->cpu_min();
  row.comp_max = ph->cpu_max();
  row.comp_avg = ph->cpu_avg();
  row.tot_min = ph->total_min();
  row.tot_max = ph->total_max();
  row.tot_avg = ph->total_avg();
  row.cache_hit_rate = res.seed_cache.hit_rate();
  return row;
}

}  // namespace

int main() {
  bench::print_header(
      "Table I — load balancing via query permutation",
      "Table I: max compute 1945->800 (2.4x better balance), total only ~5% "
      "better because the seed cache loses locality");

  // Engineered imbalance mirroring the paper's observation: the input file
  // groups reads by genome region, and some regions are far more expensive
  // than others. The genome's tail is one diverged repeat family, so in
  // grouped (position-sorted) order the final block of reads all carry
  // multi-candidate seeds (many Smith-Waterman runs each) and land on the
  // last ranks under a blocked partition.
  mera::seq::GenomeParams gp;
  gp.length = 800'000;
  gp.repeat_fraction = 0.0;
  gp.rng_seed = 77;
  std::string genome = mera::seq::simulate_genome(gp);
  {
    std::mt19937_64 rng(78);
    const std::string unit = genome.substr(1000, 600);
    std::string repeat_block;
    for (int copy = 0; copy < 300; ++copy) {
      std::string c = unit;
      for (auto& ch : c)
        if (rng() % 100 == 0) ch = "ACGT"[rng() & 3u];
      repeat_block += c;
    }
    genome += repeat_block;  // contiguous slow region at the genome tail
  }
  bench::Workload w;
  w.name = "grouped+repeat-tail";
  mera::seq::ContigParams cp;
  cp.min_len = 800;
  cp.max_len = 4000;
  cp.rng_seed = 79;
  w.contigs = mera::seq::chop_into_contigs(genome, cp);
  mera::seq::ReadSimParams rp;
  rp.read_len = 101;
  rp.depth = 3.0;
  rp.error_rate = 0.004;
  rp.grouped = true;
  rp.rng_seed = 80;
  w.reads = mera::seq::simulate_reads(genome, rp);
  const int nranks = 16, ppn = 4;
  std::printf("reads: %zu, %d cores (%d/node)\n\n", w.reads.size(), nranks,
              ppn);

  const Row yes = run(w, true, nranks, ppn);
  const Row no = run(w, false, nranks, ppn);

  std::printf("%-12s | %27s | %27s | %10s\n", "Load", "Computation time (s)",
              "Total alignment time (s)", "seed-cache");
  std::printf("%-12s | %8s %8s %8s | %8s %8s %8s | %10s\n", "Balancing",
              "Min", "Max", "Avg", "Min", "Max", "Avg", "hit rate");
  std::printf("%-12s | %8.3f %8.3f %8.3f | %8.3f %8.3f %8.3f | %9.1f%%\n",
              "Yes", yes.comp_min, yes.comp_max, yes.comp_avg, yes.tot_min,
              yes.tot_max, yes.tot_avg, 100 * yes.cache_hit_rate);
  std::printf("%-12s | %8.3f %8.3f %8.3f | %8.3f %8.3f %8.3f | %9.1f%%\n",
              "No", no.comp_min, no.comp_max, no.comp_avg, no.tot_min,
              no.tot_max, no.tot_avg, 100 * no.cache_hit_rate);

  std::printf("\nmax-computation improvement: %.2fx (paper: ~2.4x)\n",
              no.comp_max / yes.comp_max);
  std::printf("total-time change (max): %+.1f%% (paper: ~5%% better)\n",
              100.0 * (no.tot_max - yes.tot_max) / no.tot_max);
  return 0;
}
