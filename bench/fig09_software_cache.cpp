// Figure 9: impact of the node-level software caches on communication time
// during the aligning phase, split into seed-lookup traffic and
// target-fetching traffic.
//
// Paper: target cache "essentially obviates all the communication involved
// with target sequences" at every concurrency; seed cache helps most at low
// concurrency (35% lookup-time cut at 480 cores, less at scale — cf. the
// Figure 7 reuse-probability curve); overall comm reduced 2.3x / 1.7x / 1.8x
// at 480 / 1920 / 7680 cores.
#include <algorithm>
#include <cstdio>

#include "bench_common.hpp"
#include "core/pipeline.hpp"

namespace {

using namespace mera;

struct CommSplit {
  double lookup_s = 0, fetch_s = 0;
  std::uint64_t seed_hits = 0, seed_lookups = 0;
  std::uint64_t target_hits = 0, target_fetches = 0;
};

CommSplit align_comm(const bench::Workload& w, int nranks, int ppn,
                     bool caches) {
  core::AlignerConfig cfg;
  cfg.k = 51;
  cfg.buffer_S = 1000;
  cfg.fragment_len = 1024;
  cfg.seed_cache = caches;
  cfg.target_cache = caches;
  cfg.exact_match = false;  // keep lookup volume identical across configs
  cfg.collect_alignments = false;
  pgas::Runtime rt(pgas::Topology(nranks, ppn));
  const auto res = core::MerAligner(cfg).align(rt, w.contigs, w.reads);
  CommSplit out;
  for (const auto& st : res.per_rank) {
    out.lookup_s = std::max(out.lookup_s, st.comm_lookup_s);
    out.fetch_s = std::max(out.fetch_s, st.comm_fetch_s);
  }
  out.seed_hits = res.stats.seed_cache_hits;
  out.seed_lookups = res.stats.seed_lookups;
  out.target_hits = res.stats.target_cache_hits;
  out.target_fetches = res.stats.target_fetches;
  return out;
}

}  // namespace

int main() {
  bench::print_header(
      "Figure 9 — software caching impact on aligning-phase communication",
      "Fig. 9: comm cut 2.3x/1.7x/1.8x at 480/1920/7680 cores; target cache "
      "removes nearly all target traffic");

  // Seed reuse scales with the seed frequency f = d*(1-(k-1)/L) (Section
  // III-B): the paper's d=100 gives f=50. A smaller genome at d=10 keeps the
  // lookup volume affordable while giving f ~ 5, enough reuse for the cache
  // to show its shape.
  bench::WorkloadSpec spec = bench::human_like(400'000, 10.0);
  spec.grouped = true;        // locality boosts reuse, as in the paper's data
  spec.repeat_fraction = 0.12;  // repeats -> multi-candidate seeds -> real
                                // target-fetch traffic (the blue bars)
  const auto w = bench::make_workload(spec);
  std::printf("reads: %zu, contigs: %zu\n\n", w.reads.size(), w.contigs.size());

  std::printf("%8s | %12s %12s | %12s %12s | %8s | %10s %10s\n", "cores",
              "lookup-nc(s)", "fetch-nc(s)", "lookup-c(s)", "fetch-c(s)",
              "factor", "seed-hit%", "tgt-hit%");
  for (int nranks : {8, 16, 32}) {
    const auto nc = align_comm(w, nranks, 4, false);
    const auto c = align_comm(w, nranks, 4, true);
    const double factor =
        (nc.lookup_s + nc.fetch_s) / std::max(1e-12, c.lookup_s + c.fetch_s);
    std::printf("%8d | %12.3f %12.3f | %12.3f %12.3f | %7.1fx | %9.1f%% %9.1f%%\n",
                nranks, nc.lookup_s, nc.fetch_s, c.lookup_s, c.fetch_s, factor,
                100.0 * static_cast<double>(c.seed_hits) /
                    std::max<std::uint64_t>(1, c.seed_lookups),
                100.0 * static_cast<double>(c.target_hits) /
                    std::max<std::uint64_t>(1, c.target_fetches));
  }
  std::printf(
      "\nexpect: fetch-c ~ 0 (target cache obviates target traffic); lookup\n"
      "savings shrink as node count grows (Fig. 7 reuse probability).\n");
  return 0;
}
