// Figure 11: single-node (shared-memory) performance on the E. coli-scale
// dataset, merAligner vs BWA-mem-like vs Bowtie2-like, seed length 19.
//
// Paper: merAligner keeps scaling through all 24 cores; BWA-mem and Bowtie2
// stop improving at ~18 cores; at 24 cores merAligner is 6.33x / 7.2x
// faster. The baselines' serial index construction is the Amdahl term that
// flattens their curves.
#include <cstdio>

#include "baseline/replicated_aligner.hpp"
#include "bench_common.hpp"
#include "core/pipeline.hpp"

namespace {

using namespace mera;

double mer_time(const bench::Workload& w, int nranks) {
  core::AlignerConfig cfg;
  cfg.k = 19;
  cfg.buffer_S = 1000;
  cfg.fragment_len = 1024;
  cfg.collect_alignments = false;
  pgas::Runtime rt(pgas::Topology(nranks, 24));  // one 24-core node
  const auto res = core::MerAligner(cfg).align(rt, w.contigs, w.reads);
  return res.total_time_s();
}

double baseline_time(const bench::Workload& w, int nranks,
                     baseline::BaselineConfig cfg) {
  cfg.threads_per_instance = nranks;  // single shared-memory instance
  pgas::Runtime rt(pgas::Topology(nranks, 24));
  const auto res =
      baseline::ReplicatedIndexAligner(cfg).align(rt, w.contigs, w.reads);
  return res.total_time_s();
}

}  // namespace

int main() {
  bench::print_header(
      "Figure 11 — single-node shared-memory scaling (E. coli, k=19)",
      "Fig. 11: merAligner scales to 24 cores; baselines stall ~18; 6.3x / "
      "7.2x at 24 cores");

  // Depth 12: deep coverage makes mapping (which parallelizes for everyone)
  // a realistic share of the baselines' total, as in the paper's E. coli run.
  const auto w = bench::make_workload(bench::ecoli_like(12.0));
  std::printf("reads: %zu, contigs: %zu\n\n", w.reads.size(),
              w.contigs.size());

  std::printf("%8s %14s %16s %16s\n", "cores", "merAligner(s)",
              "BWA-mem-like(s)", "Bowtie2-like(s)");
  double mer24 = 0, bwa24 = 0, bt24 = 0;
  for (int nranks : {1, 6, 12, 18, 24}) {
    const double m = mer_time(w, nranks);
    const double b = baseline_time(w, nranks,
                                   baseline::BaselineConfig::bwamem_like(19));
    const double t = baseline_time(w, nranks,
                                   baseline::BaselineConfig::bowtie2_like(19));
    std::printf("%8d %14.3f %16.3f %16.3f\n", nranks, m, b, t);
    if (nranks == 24) {
      mer24 = m;
      bwa24 = b;
      bt24 = t;
    }
  }
  std::printf("\nat 24 cores: merAligner %.2fx faster than BWA-mem-like, "
              "%.2fx faster than Bowtie2-like (paper: 6.33x / 7.2x)\n",
              bwa24 / mer24, bt24 / mer24);
  return 0;
}
