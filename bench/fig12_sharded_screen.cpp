// Sharded-reference screening: shard-count scaling (sharded subsystem).
//
// The paper's conclusion sketches screening reads against collections too
// large for one machine's distributed index. The shard subsystem answers
// with K per-runtime IndexedReference shards composed into one logical
// reference (shard::ShardedReference + shard::ShardedAlignSession).
//
// This bench measures what sharding buys and what it costs as K grows:
//   - index build: each shard indexes ~1/K of the targets, so the
//     per-runtime build time (max over shards — what a K-machine deployment
//     would wait) drops roughly as 1/K while the serial sum stays flat;
//   - aligning: every batch is screened against every shard, so per-batch
//     lookup work is duplicated K times; the per-runtime batch latency
//     (slowest shard) still shrinks because each shard's index and target
//     set are smaller;
//   - results: record counts must be IDENTICAL for every K — sharding is a
//     placement decision, not a semantics change. The run aborts otherwise.
//
// Config note: the comparison runs with the exact-match shortcut off and an
// effectively unlimited per-seed hit cap, the regime where K-shard output is
// provably identical to the monolithic session (see sharded_session.hpp).
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench_common.hpp"
#include "core/alignment_sink.hpp"
#include "shard/sharded_reference.hpp"
#include "shard/sharded_session.hpp"

int main() {
  using namespace mera;
  bench::print_header(
      "Sharded screening — index build and batch cost vs shard count",
      "conclusion: composing per-runtime index shards (GenBank-scale)");

  const auto w = bench::make_workload(bench::human_like(2'000'000, 0.5));
  std::printf("workload: %zu contigs, %zu reads per batch\n\n",
              w.contigs.size(), w.reads.size());

  core::IndexConfig icfg;
  icfg.k = 31;
  core::SessionConfig scfg;
  scfg.exact_match = false;       // per-shard shortcut would skew comparison
  scfg.max_hits_per_seed = 4096;  // no per-shard truncation

  const pgas::Topology topo(8, 4);

  std::printf("%4s %14s %14s %16s %16s %12s %10s\n", "K", "build max(s)",
              "build sum(s)", "batch max(s)", "batch sum(s)", "alignments",
              "imbalance");

  std::uint64_t baseline_records = 0;
  for (const int K : {1, 2, 4, 8}) {
    pgas::Runtime rt(topo);
    const auto ref = shard::ShardedReference::build(rt, w.contigs, K, icfg);
    shard::ShardedAlignSession session(ref, scfg);
    core::CountingSink sink;
    const auto res = session.align_batch(rt, w.reads, sink);

    if (K == 1) baseline_records = sink.records();
    if (sink.records() != baseline_records) {
      std::printf("ERROR: K=%d changed the result set (%llu vs %llu)\n", K,
                  static_cast<unsigned long long>(sink.records()),
                  static_cast<unsigned long long>(baseline_records));
      return 1;
    }

    std::printf("%4d %14.4f %14.4f %16.4f %16.4f %12llu %10.3f\n", K,
                ref.build_time_parallel_s(), ref.build_time_serial_s(),
                res.time_parallel_s(), res.total_time_s(),
                static_cast<unsigned long long>(sink.records()),
                ref.plan().imbalance());
  }

  std::printf(
      "\npaper shape: per-runtime build cost (max over shards) falls ~1/K —\n"
      "the index of a collection no single runtime could hold is built as K\n"
      "affordable pieces — while every K returns the identical record set.\n"
      "Batch work is duplicated across shards (each screens the full read\n"
      "set), the price of all-vs-all screening; the per-runtime batch\n"
      "latency (slowest shard) still drops with smaller per-shard indexes.\n");
  return 0;
}
