// Shared workload builders and printing helpers for the paper-reproduction
// benches. Each bench binary prints the corresponding paper table/figure's
// rows; EXPERIMENTS.md records paper-vs-measured values side by side.
//
// Scale note: the paper's datasets are Gbp-scale on up to 15,360 Cray cores;
// here genomes are Mbp-scale and ranks are threads with a LogGP cost model
// (see DESIGN.md "Substitutions"). Improvement *factors* and scaling *shapes*
// are the reproduced quantities, not absolute seconds.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "seq/fasta.hpp"
#include "seq/genome_sim.hpp"
#include "seq/read_sim.hpp"

namespace bench {

struct Workload {
  std::string name;
  std::vector<mera::seq::SeqRecord> contigs;
  std::vector<mera::seq::SeqRecord> reads;
  std::size_t genome_len = 0;
};

struct WorkloadSpec {
  std::string name;
  std::size_t genome_len = 2'000'000;
  double repeat_fraction = 0.03;   ///< human-like low repeat content
  double depth = 4.0;
  std::size_t read_len = 101;
  double error_rate = 0.004;
  double junk_fraction = 0.01;
  bool grouped = true;
  std::uint64_t seed = 1;
};

inline Workload make_workload(const WorkloadSpec& spec) {
  Workload w;
  w.name = spec.name;
  w.genome_len = spec.genome_len;
  mera::seq::GenomeParams gp;
  gp.length = spec.genome_len;
  gp.repeat_fraction = spec.repeat_fraction;
  gp.rng_seed = spec.seed;
  const std::string genome = simulate_genome(gp);
  mera::seq::ContigParams cp;
  cp.min_len = 800;
  cp.max_len = 4000;
  cp.rng_seed = spec.seed + 1;
  w.contigs = chop_into_contigs(genome, cp);
  mera::seq::ReadSimParams rp;
  rp.read_len = spec.read_len;
  rp.depth = spec.depth;
  rp.error_rate = spec.error_rate;
  rp.junk_fraction = spec.junk_fraction;
  rp.grouped = spec.grouped;
  rp.rng_seed = spec.seed + 2;
  w.reads = simulate_reads(genome, rp);
  return w;
}

/// Scaled-down "human" dataset: low repeat content, 101 bp reads.
inline WorkloadSpec human_like(std::size_t genome_len = 2'000'000,
                               double depth = 4.0) {
  WorkloadSpec s;
  s.name = "human-like";
  s.genome_len = genome_len;
  s.repeat_fraction = 0.03;
  s.depth = depth;
  s.read_len = 101;
  s.seed = 101;
  return s;
}

/// Scaled-down "wheat" dataset: bigger, repeat-rich, longer reads — the
/// grand-challenge genome of the paper.
inline WorkloadSpec wheat_like(std::size_t genome_len = 4'000'000,
                               double depth = 4.0) {
  WorkloadSpec s;
  s.name = "wheat-like";
  s.genome_len = genome_len;
  s.repeat_fraction = 0.25;
  s.depth = depth;
  s.read_len = 150;
  s.seed = 202;
  return s;
}

/// E. coli-scale dataset for the single-node experiment (Figure 11).
inline WorkloadSpec ecoli_like(double depth = 6.0) {
  WorkloadSpec s;
  s.name = "ecoli-like";
  s.genome_len = 1'000'000;  // scaled from 4.64 Mbp
  s.repeat_fraction = 0.01;
  s.depth = depth;
  s.read_len = 76;
  s.seed = 303;
  return s;
}

inline void print_header(const char* title, const char* paper_ref) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title);
  std::printf("reproduces: %s\n", paper_ref);
  std::printf("(simulated-model seconds; compare factors/shape, not absolutes)\n");
  std::printf("==============================================================\n");
}

}  // namespace bench
