// Shared workload builders and printing helpers for the paper-reproduction
// benches. Each bench binary prints the corresponding paper table/figure's
// rows; EXPERIMENTS.md records paper-vs-measured values side by side.
//
// Scale note: the paper's datasets are Gbp-scale on up to 15,360 Cray cores;
// here genomes are Mbp-scale and ranks are threads with a LogGP cost model
// (see DESIGN.md "Substitutions"). Improvement *factors* and scaling *shapes*
// are the reproduced quantities, not absolute seconds.
#pragma once

#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "obs/clock.hpp"
#include "seq/fasta.hpp"
#include "seq/genome_sim.hpp"
#include "seq/read_sim.hpp"

namespace bench {

/// The one clock path every bench row measures with — shared with the obs
/// subsystem, so BENCH_*.json seconds and --trace/--metrics seconds agree.
using mera::obs::now_s;
using StopWatch = mera::obs::StopWatch;

struct Workload {
  std::string name;
  std::vector<mera::seq::SeqRecord> contigs;
  std::vector<mera::seq::SeqRecord> reads;
  std::size_t genome_len = 0;
};

struct WorkloadSpec {
  std::string name;
  std::size_t genome_len = 2'000'000;
  double repeat_fraction = 0.03;   ///< human-like low repeat content
  double depth = 4.0;
  std::size_t read_len = 101;
  double error_rate = 0.004;
  double junk_fraction = 0.01;
  bool grouped = true;
  std::uint64_t seed = 1;
};

inline Workload make_workload(const WorkloadSpec& spec) {
  Workload w;
  w.name = spec.name;
  w.genome_len = spec.genome_len;
  mera::seq::GenomeParams gp;
  gp.length = spec.genome_len;
  gp.repeat_fraction = spec.repeat_fraction;
  gp.rng_seed = spec.seed;
  const std::string genome = simulate_genome(gp);
  mera::seq::ContigParams cp;
  cp.min_len = 800;
  cp.max_len = 4000;
  cp.rng_seed = spec.seed + 1;
  w.contigs = chop_into_contigs(genome, cp);
  mera::seq::ReadSimParams rp;
  rp.read_len = spec.read_len;
  rp.depth = spec.depth;
  rp.error_rate = spec.error_rate;
  rp.junk_fraction = spec.junk_fraction;
  rp.grouped = spec.grouped;
  rp.rng_seed = spec.seed + 2;
  w.reads = simulate_reads(genome, rp);
  return w;
}

/// Scaled-down "human" dataset: low repeat content, 101 bp reads.
inline WorkloadSpec human_like(std::size_t genome_len = 2'000'000,
                               double depth = 4.0) {
  WorkloadSpec s;
  s.name = "human-like";
  s.genome_len = genome_len;
  s.repeat_fraction = 0.03;
  s.depth = depth;
  s.read_len = 101;
  s.seed = 101;
  return s;
}

/// Scaled-down "wheat" dataset: bigger, repeat-rich, longer reads — the
/// grand-challenge genome of the paper.
inline WorkloadSpec wheat_like(std::size_t genome_len = 4'000'000,
                               double depth = 4.0) {
  WorkloadSpec s;
  s.name = "wheat-like";
  s.genome_len = genome_len;
  s.repeat_fraction = 0.25;
  s.depth = depth;
  s.read_len = 150;
  s.seed = 202;
  return s;
}

/// E. coli-scale dataset for the single-node experiment (Figure 11).
inline WorkloadSpec ecoli_like(double depth = 6.0) {
  WorkloadSpec s;
  s.name = "ecoli-like";
  s.genome_len = 1'000'000;  // scaled from 4.64 Mbp
  s.repeat_fraction = 0.01;
  s.depth = depth;
  s.read_len = 76;
  s.seed = 303;
  return s;
}

inline void print_header(const char* title, const char* paper_ref) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title);
  std::printf("reproduces: %s\n", paper_ref);
  std::printf("(simulated-model seconds; compare factors/shape, not absolutes)\n");
  std::printf("==============================================================\n");
}

/// Machine-readable bench output: one row per measured configuration, each a
/// flat map of numeric metrics, written as `BENCH_<name>.json` so CI can
/// archive per-commit perf trajectories next to the human-readable stdout.
///
///   bench::JsonSummary json("fig13", "parallel shards + batch prefetch");
///   json.config("shards_K4_J4");
///   json.metric("wall_s", wall);
///   ...
///   json.write();   // -> BENCH_fig13.json in the working directory
class JsonSummary {
 public:
  JsonSummary(std::string name, std::string description)
      : name_(std::move(name)), description_(std::move(description)) {}

  /// Start a new configuration row; metric() calls attach to it.
  void config(const std::string& config_name) {
    rows_.push_back({config_name, {}});
  }
  /// Attach a metric to the current row (opens a "default" row if the bench
  /// never called config()).
  void metric(const std::string& key, double value) {
    if (rows_.empty()) config("default");
    rows_.back().metrics.emplace_back(key, value);
  }

  /// Writes BENCH_<name>.json (or an explicit path); returns success.
  bool write(std::string path = "") const {
    if (path.empty()) path = "BENCH_" + name_ + ".json";
    std::ofstream out(path);
    out << "{\n  \"bench\": \"" << escaped(name_) << "\",\n"
        << "  \"description\": \"" << escaped(description_) << "\",\n"
        << "  \"hardware_concurrency\": "
        << std::thread::hardware_concurrency() << ",\n  \"configs\": [\n";
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      out << "    {\"name\": \"" << escaped(rows_[i].name) << "\"";
      for (const auto& [key, value] : rows_[i].metrics) {
        char buf[64];
        std::snprintf(buf, sizeof buf, "%.9g", value);
        out << ", \"" << escaped(key) << "\": " << buf;
      }
      out << (i + 1 < rows_.size() ? "},\n" : "}\n");
    }
    out << "  ]\n}\n";
    out.flush();
    if (out) std::printf("\nJSON summary written: %s\n", path.c_str());
    return static_cast<bool>(out);
  }

 private:
  /// Minimal JSON string escaping (quotes, backslashes, control chars).
  static std::string escaped(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
      if (c == '"' || c == '\\') {
        out += '\\';
        out += c;
      } else if (c == '\n') {
        out += "\\n";
      } else if (static_cast<unsigned char>(c) < 0x20) {
        out += ' ';
      } else {
        out += c;
      }
    }
    return out;
  }

  struct Row {
    std::string name;
    std::vector<std::pair<std::string, double>> metrics;
  };
  std::string name_;
  std::string description_;
  std::vector<Row> rows_;
};

}  // namespace bench
