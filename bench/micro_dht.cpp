// DHT microbenches (google-benchmark): distributed seed-index construction
// across modes and aggregation buffer sizes S (the Section III-A tuning
// parameter; the paper uses S = 1000), plus lookup throughput.
#include <benchmark/benchmark.h>

#include <random>
#include <string>
#include <vector>

#include "dht/seed_index.hpp"
#include "pgas/runtime.hpp"
#include "seq/kmer.hpp"

namespace {

using namespace mera;
using dht::SeedHit;
using dht::SeedIndex;

std::vector<std::string> make_targets(int n, std::size_t len,
                                      std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<std::string> v;
  for (int i = 0; i < n; ++i) {
    std::string s(len, 'A');
    for (auto& c : s) c = "ACGT"[rng() & 3u];
    v.push_back(std::move(s));
  }
  return v;
}

void build(pgas::Runtime& rt, SeedIndex& index,
           const std::vector<std::string>& seqs, int k) {
  rt.run([&](pgas::Rank& r) {
    const std::size_t n = seqs.size();
    const auto me = static_cast<std::size_t>(r.id());
    const auto p = static_cast<std::size_t>(r.nranks());
    const std::size_t lo = n * me / p, hi = n * (me + 1) / p;
    for (std::size_t s = lo; s < hi; ++s)
      seq::for_each_seed(std::string_view(seqs[s]), k,
                         [&](std::size_t, const seq::Kmer& m) {
                           index.count_seed(r, m);
                         });
    index.finish_count(r);
    for (std::size_t s = lo; s < hi; ++s)
      seq::for_each_seed(std::string_view(seqs[s]), k,
                         [&](std::size_t off, const seq::Kmer& m) {
                           index.insert(
                               r, m,
                               SeedHit{static_cast<std::uint32_t>(s),
                                       static_cast<std::uint32_t>(s),
                                       static_cast<std::uint32_t>(off)});
                         });
    index.finish_insert(r);
  });
}

/// Construction wall+model cost across buffer sizes S (and the naive mode as
/// S-row "naive"): prints the modeled build time as a counter.
void BM_IndexConstruction(benchmark::State& state) {
  const bool aggregating = state.range(0) >= 0;
  const std::size_t S =
      aggregating ? static_cast<std::size_t>(state.range(0)) : 1;
  const auto targets = make_targets(32, 4000, 3);
  const int k = 31;
  double modeled = 0;
  std::uint64_t msgs = 0;
  for (auto _ : state) {
    pgas::Runtime rt(pgas::Topology(8, 4));
    SeedIndex index(rt.topo(), {k, aggregating, S});
    build(rt, index, targets, k);
    modeled = rt.report().total_time_s();
    msgs = rt.report().total_traffic().remote_msgs();
    benchmark::DoNotOptimize(index.total_entries());
  }
  state.counters["modeled_s"] = modeled;
  state.counters["remote_msgs"] = static_cast<double>(msgs);
}
BENCHMARK(BM_IndexConstruction)
    ->Arg(-1)  // naive fine-grained mode
    ->Arg(10)
    ->Arg(100)
    ->Arg(1000)
    ->Arg(10000)
    ->Unit(benchmark::kMillisecond);

void BM_SeedLookup(benchmark::State& state) {
  const auto targets = make_targets(16, 4000, 5);
  const int k = 31;
  pgas::Runtime rt(pgas::Topology(4, 2));
  SeedIndex index(rt.topo(), {k, true, 1000});
  build(rt, index, targets, k);

  // Pre-extract query seeds.
  std::vector<seq::Kmer> queries;
  seq::for_each_seed(std::string_view(targets[3]), k,
                     [&](std::size_t, const seq::Kmer& m) {
                       queries.push_back(m);
                     });
  std::size_t qi = 0;
  std::vector<SeedHit> hits;
  for (auto _ : state) {
    rt.run([&](pgas::Rank& r) {
      if (r.id() != 0) return;
      for (int i = 0; i < 1000; ++i) {
        hits.clear();
        benchmark::DoNotOptimize(
            index.lookup(r, queries[qi], 16, hits));
        qi = (qi + 1) % queries.size();
      }
    });
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 1000);
}
BENCHMARK(BM_SeedLookup)->Unit(benchmark::kMillisecond);

void BM_KmerRollingExtraction(benchmark::State& state) {
  const auto targets = make_targets(1, 100'000, 7);
  const int k = 51;
  for (auto _ : state) {
    std::size_t n = 0;
    seq::for_each_seed(std::string_view(targets[0]), k,
                       [&](std::size_t, const seq::Kmer& m) {
                         benchmark::DoNotOptimize(m);
                         ++n;
                       });
    benchmark::DoNotOptimize(n);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          100'000);
}
BENCHMARK(BM_KmerRollingExtraction);

}  // namespace

BENCHMARK_MAIN();
