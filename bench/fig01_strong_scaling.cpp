// Figure 1: end-to-end strong scaling of merAligner on the human-like and
// wheat-like workloads, with pMap+BWA-mem-like and pMap+Bowtie2-like single
// data points at the top concurrency.
//
// Paper (Cray XC30): human 4147 s @480 -> 185 s @15360 (22x, 0.70 eff.),
// wheat 0.78 efficiency @960->15360; BWA-mem/Bowtie2 points far above the
// merAligner curve. Here ranks sweep 4..64 on the simulated machine; expect
// near-ideal scaling of the merAligner curves and baseline points dominated
// by serial index construction.
#include <cstdio>

#include "baseline/replicated_aligner.hpp"
#include "bench_common.hpp"
#include "core/pipeline.hpp"

namespace {

using namespace mera;

core::AlignerConfig aligner_config() {
  core::AlignerConfig cfg;
  cfg.k = 51;
  cfg.buffer_S = 1000;
  cfg.fragment_len = 1024;
  cfg.collect_alignments = false;
  return cfg;
}

void run_curve(const bench::Workload& w, const std::vector<int>& rank_counts,
               int ppn) {
  std::printf("\n-- %s: %zu contigs, %zu reads --\n", w.name.c_str(),
              w.contigs.size(), w.reads.size());
  std::printf("%8s %14s %14s %12s %12s\n", "cores", "time(s)", "ideal(s)",
              "speedup", "efficiency");
  double t0 = -1.0;
  int c0 = rank_counts.front();
  for (int nranks : rank_counts) {
    pgas::Runtime rt(pgas::Topology(nranks, ppn));
    const auto res =
        core::MerAligner(aligner_config()).align(rt, w.contigs, w.reads);
    const double t = res.total_time_s();
    if (t0 < 0) t0 = t;
    const double ideal = t0 * c0 / nranks;
    const double speedup = t0 * c0 / nranks / t;  // vs linear from first point
    std::printf("%8d %14.3f %14.3f %11.2fx %11.2f\n", nranks, t, ideal,
                t0 / t, speedup);
  }
}

void baseline_points(const bench::Workload& w, int nranks, int ppn) {
  for (const auto& cfg : {baseline::BaselineConfig::bwamem_like(51),
                          baseline::BaselineConfig::bowtie2_like(51)}) {
    baseline::BaselineConfig c = cfg;
    c.threads_per_instance = ppn / 2;
    pgas::Runtime rt(pgas::Topology(nranks, ppn));
    const auto res =
        baseline::ReplicatedIndexAligner(c).align(rt, w.contigs, w.reads);
    std::printf("%-14s @ %d cores: %10.3f s (serial index %.3f s)\n",
                c.name.c_str(), nranks, res.total_time_s(),
                res.serial_index_time_s());
  }
}

}  // namespace

int main() {
  bench::print_header("Figure 1 — end-to-end strong scaling",
                      "Fig. 1: merAligner human+wheat curves vs ideal; "
                      "BWA-mem / Bowtie2 points");
  const std::vector<int> ranks{4, 8, 16, 32, 64};
  const int ppn = 8;

  const auto human = bench::make_workload(bench::human_like(1'500'000, 3.0));
  run_curve(human, ranks, ppn);
  std::printf("\nbaseline single points (human-like, pMap-style):\n");
  baseline_points(human, ranks.back(), ppn);

  const auto wheat = bench::make_workload(bench::wheat_like(2'500'000, 1.5));
  run_curve(wheat, ranks, ppn);
  return 0;
}
