// Table II: end-to-end comparison of merAligner vs pMap-style parallel
// executions of BWA-mem-like and Bowtie2-like baselines at a fixed
// concurrency, with serial (S) / parallel (P) phase annotations.
//
// Paper (7680 cores, human):
//   merAligner    index   21 (P)   map 263 (P)   total   284 s    1x
//   BWA-mem       index 5384 (S)   map 421 (P)   total  5805 s   20.4x
//   Bowtie2       index 10916 (S)  map 283 (P)   total 11119 s   39.4x
// (pMap read partitioning excluded from the totals, as in the paper.)
#include <cstdio>

#include "baseline/replicated_aligner.hpp"
#include "bench_common.hpp"
#include "core/pipeline.hpp"

int main() {
  using namespace mera;
  bench::print_header(
      "Table II — end-to-end aligner comparison at fixed concurrency",
      "Table II: 20.4x over BWA-mem, 39.4x over Bowtie2 at 7680 cores; "
      "serial index construction is the baseline bottleneck");

  const auto w = bench::make_workload(bench::human_like(2'000'000, 4.0));
  const int nranks = 32, ppn = 8;
  std::printf("workload: %zu reads, %zu contigs; %d cores (%d/node)\n\n",
              w.reads.size(), w.contigs.size(), nranks, ppn);

  // merAligner.
  core::AlignerConfig mcfg;
  mcfg.k = 51;
  mcfg.buffer_S = 1000;
  mcfg.fragment_len = 1024;
  mcfg.collect_alignments = false;
  pgas::Runtime rt(pgas::Topology(nranks, ppn));
  const auto mer = core::MerAligner(mcfg).align(rt, w.contigs, w.reads);
  const double mer_index = mer.report.time_of("io.targets") +
                           mer.report.time_of("index.build") +
                           mer.report.time_of("index.mark");
  const double mer_map =
      mer.report.time_of("io.reads") + mer.report.time_of("align");
  const double mer_total = mer_index + mer_map;

  std::printf("%-14s %20s %16s %12s %10s %10s\n", "Aligner",
              "Index Construction", "Mapping Time", "Total", "Slowdown",
              "aligned%");
  std::printf("%-14s %16.3f (P) %12.3f (P) %10.3f %9.1fx %9.1f%%\n",
              "merAligner", mer_index, mer_map, mer_total, 1.0,
              100.0 * mer.stats.aligned_fraction());

  for (const auto& preset : {baseline::BaselineConfig::bwamem_like(51),
                             baseline::BaselineConfig::bowtie2_like(51)}) {
    baseline::BaselineConfig cfg = preset;
    cfg.threads_per_instance = ppn / 2;  // pMap: fewer instances than cores
    pgas::Runtime brt(pgas::Topology(nranks, ppn));
    const auto res =
        baseline::ReplicatedIndexAligner(cfg).align(brt, w.contigs, w.reads);
    const double total = res.serial_index_time_s() + res.mapping_time_s();
    std::printf("%-14s %16.3f (S) %12.3f (P) %10.3f %9.1fx %9.1f%%\n",
                cfg.name.c_str(), res.serial_index_time_s(),
                res.mapping_time_s(), total, total / mer_total,
                100.0 * res.stats.aligned_fraction());
  }

  std::printf("\npaper slowdowns: BWA-mem 20.4x, Bowtie2 39.4x; the ordering\n"
              "and the serial-index dominance are the reproduced shape.\n");
  return 0;
}
