// Kernel microbenches (google-benchmark): reference full-DP Smith-Waterman
// vs banded vs striped SIMD (Section V-B — the paper adopts SSW because SW
// dominates the aligning phase's computation).
#include <benchmark/benchmark.h>

#include <random>
#include <string>

#include "align/banded_sw.hpp"
#include "align/batch_sw.hpp"
#include "align/smith_waterman.hpp"
#include "align/striped_sw.hpp"

namespace {

using namespace mera::align;

std::string random_dna(std::mt19937_64& rng, std::size_t len) {
  std::string s(len, 'A');
  for (auto& c : s) c = "ACGT"[rng() & 3u];
  return s;
}

struct Pair {
  std::vector<std::uint8_t> q, t;
};

Pair make_pair(std::size_t qlen, std::size_t tlen) {
  std::mt19937_64 rng(7);
  const std::string g = random_dna(rng, tlen);
  std::string q = g.substr(tlen / 4, qlen);
  for (std::size_t i = 0; i < qlen / 50 + 1; ++i)
    q[rng() % qlen] = "ACGT"[rng() & 3u];
  return {dna_codes(q), dna_codes(g)};
}

void BM_ReferenceSW(benchmark::State& state) {
  const auto p = make_pair(static_cast<std::size_t>(state.range(0)),
                           static_cast<std::size_t>(state.range(1)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        smith_waterman(std::span<const std::uint8_t>(p.q),
                       std::span<const std::uint8_t>(p.t), Scoring{}));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0) * state.range(1));
}
BENCHMARK(BM_ReferenceSW)->Args({101, 300})->Args({101, 1000})->Args({250, 1000});

void BM_ScoreOnlySW(benchmark::State& state) {
  const auto p = make_pair(static_cast<std::size_t>(state.range(0)),
                           static_cast<std::size_t>(state.range(1)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sw_score_reference(std::span<const std::uint8_t>(p.q),
                           std::span<const std::uint8_t>(p.t), Scoring{}));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0) * state.range(1));
}
BENCHMARK(BM_ScoreOnlySW)->Args({101, 300})->Args({101, 1000})->Args({250, 1000});

void BM_BandedSW(benchmark::State& state) {
  const auto p = make_pair(static_cast<std::size_t>(state.range(0)),
                           static_cast<std::size_t>(state.range(1)));
  const auto diag = static_cast<std::ptrdiff_t>(state.range(1) / 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(banded_smith_waterman(
        std::span<const std::uint8_t>(p.q), std::span<const std::uint8_t>(p.t),
        diag, 16, Scoring{}));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0) * 33);
}
BENCHMARK(BM_BandedSW)->Args({101, 300})->Args({101, 1000})->Args({250, 1000});

void BM_StripedSW(benchmark::State& state) {
  const auto p = make_pair(static_cast<std::size_t>(state.range(0)),
                           static_cast<std::size_t>(state.range(1)));
  const StripedSmithWaterman ssw(std::span<const std::uint8_t>(p.q), Scoring{});
  for (auto _ : state) {
    benchmark::DoNotOptimize(ssw.align(std::span<const std::uint8_t>(p.t)));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0) * state.range(1));
}
BENCHMARK(BM_StripedSW)->Args({101, 300})->Args({101, 1000})->Args({250, 1000});

// Inter-candidate batch engine: N candidate windows scored in one flush,
// one candidate per SIMD lane. Args = {qlen, tlen, n_candidates}; compare
// items/s against BM_StripedSW at the same (qlen, tlen) to see the
// cross-candidate packing win. Each tier is registered only if this host
// supports it, so the suite is self-pruning on narrow machines.
struct CandidateSet {
  std::vector<std::uint8_t> q;
  std::vector<std::vector<std::uint8_t>> ts;
};

CandidateSet make_candidates(std::size_t qlen, std::size_t tlen,
                             std::size_t n) {
  std::mt19937_64 rng(13);
  CandidateSet cs;
  const std::string qs = random_dna(rng, qlen);
  cs.q = dna_codes(qs);
  for (std::size_t c = 0; c < n; ++c) {
    std::string body = qs;
    for (std::size_t e = 0; e < qlen / 40 + 1; ++e)
      body[rng() % body.size()] = "ACGT"[rng() & 3u];
    const std::size_t flank = (tlen - qlen) / 2;
    cs.ts.push_back(dna_codes(random_dna(rng, flank) + body +
                              random_dna(rng, tlen - qlen - flank)));
  }
  return cs;
}

void batch_sw_tier(benchmark::State& state, SwIsa isa) {
  if (!isa_supported(isa)) {
    state.SkipWithError("ISA tier not supported on this host/build");
    return;
  }
  const auto cs = make_candidates(static_cast<std::size_t>(state.range(0)),
                                  static_cast<std::size_t>(state.range(1)),
                                  static_cast<std::size_t>(state.range(2)));
  for (auto _ : state) {
    BatchSwScorer scorer(std::span<const std::uint8_t>(cs.q), Scoring{}, isa);
    for (const auto& t : cs.ts) scorer.add(std::span<const std::uint8_t>(t));
    benchmark::DoNotOptimize(scorer.flush());
  }
  // items = DP cells across the whole batch, comparable to BM_StripedSW.
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0) * state.range(1) * state.range(2));
}

void BM_BatchSW_scalar(benchmark::State& s) { batch_sw_tier(s, SwIsa::kScalar); }
void BM_BatchSW_sse2(benchmark::State& s) { batch_sw_tier(s, SwIsa::kSse2); }
void BM_BatchSW_avx2(benchmark::State& s) { batch_sw_tier(s, SwIsa::kAvx2); }
void BM_BatchSW_avx512(benchmark::State& s) { batch_sw_tier(s, SwIsa::kAvx512); }
BENCHMARK(BM_BatchSW_scalar)->Args({101, 300, 24})->Args({101, 300, 64});
BENCHMARK(BM_BatchSW_sse2)->Args({101, 300, 24})->Args({101, 300, 64});
BENCHMARK(BM_BatchSW_avx2)->Args({101, 300, 24})->Args({101, 300, 64});
BENCHMARK(BM_BatchSW_avx512)->Args({101, 300, 24})->Args({101, 300, 64});

void BM_StripedProfileBuild(benchmark::State& state) {
  std::mt19937_64 rng(9);
  const auto q = dna_codes(random_dna(rng, static_cast<std::size_t>(state.range(0))));
  for (auto _ : state) {
    const StripedSmithWaterman ssw(std::span<const std::uint8_t>(q), Scoring{});
    benchmark::DoNotOptimize(&ssw);
  }
}
BENCHMARK(BM_StripedProfileBuild)->Arg(101)->Arg(250);

void BM_ExactMemcmpPath(benchmark::State& state) {
  // The Lemma-1 fast path the paper substitutes for SW on exact reads.
  std::mt19937_64 rng(11);
  const std::string g = random_dna(rng, 4096);
  const mera::seq::PackedSeq target(g);
  const mera::seq::PackedSeq query(g.substr(1000, 101));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        mera::seq::PackedSeq::equal_range(query, 0, target, 1000, 101));
  }
}
BENCHMARK(BM_ExactMemcmpPath);

}  // namespace

BENCHMARK_MAIN();
