// Figure 10: impact of the exact-match optimization (Lemma 1 + target
// fragmentation) on the aligning phase, split into communication and
// computation.
//
// Paper: aligning phase 2.8x / 3.4x / 3.1x faster at 480 / 1920 / 7680
// cores; at 480 cores computation improves 2.48x and communication 2.82x;
// ~59% of aligned reads took the fast path; optimized aligning phase scales
// 15.9x from 480 -> 7680 cores.
#include <cstdio>

#include "bench_common.hpp"
#include "core/pipeline.hpp"

namespace {

using namespace mera;

struct PhaseSplit {
  double comm_s = 0, comp_s = 0, total_s = 0;
  double exact_frac = 0;
  std::uint64_t sw_calls = 0, lookups = 0;
};

PhaseSplit align_phase(const bench::Workload& w, int nranks, int ppn,
                       bool exact, std::size_t fragment_len) {
  core::AlignerConfig cfg;
  cfg.k = 51;
  cfg.buffer_S = 1000;
  cfg.exact_match = exact;
  cfg.fragment_len = fragment_len;
  cfg.collect_alignments = false;
  pgas::Runtime rt(pgas::Topology(nranks, ppn));
  const auto res = core::MerAligner(cfg).align(rt, w.contigs, w.reads);
  const auto* ph = res.report.find("align");
  PhaseSplit out;
  out.comm_s = ph->comm_max();
  out.comp_s = ph->cpu_max();
  out.total_s = ph->time_s();
  out.exact_frac = res.stats.exact_fraction();
  out.sw_calls = res.stats.sw_calls;
  out.lookups = res.stats.seed_lookups;
  return out;
}

}  // namespace

int main() {
  bench::print_header(
      "Figure 10 — exact-match optimization impact on the aligning phase",
      "Fig. 10: 2.8x/3.4x/3.1x at 480/1920/7680 cores; ~59% reads exact; "
      "comm and comp both cut");

  const auto w = bench::make_workload(bench::human_like(1'200'000, 4.0));
  std::printf("reads: %zu\n\n", w.reads.size());

  std::printf("%8s | %10s %10s %10s | %10s %10s %10s | %8s | %8s\n", "cores",
              "comm-no", "comp-no", "total-no", "comm-yes", "comp-yes",
              "total-yes", "factor", "exact%");
  for (int nranks : {8, 16, 32}) {
    const auto off = align_phase(w, nranks, 4, false, 1024);
    const auto on = align_phase(w, nranks, 4, true, 1024);
    std::printf(
        "%8d | %10.3f %10.3f %10.3f | %10.3f %10.3f %10.3f | %7.1fx | %7.1f%%\n",
        nranks, off.comm_s, off.comp_s, off.total_s, on.comm_s, on.comp_s,
        on.total_s, off.total_s / on.total_s, 100.0 * on.exact_frac);
  }

  // Ablation called out in DESIGN.md: fragment length's effect on the
  // fraction of reads eligible for the fast path.
  std::printf("\nfragment-length ablation (16 cores):\n");
  std::printf("%14s %12s %14s %14s\n", "fragment_len", "exact%", "SW calls",
              "lookups");
  for (std::size_t flen :
       {std::size_t{256}, std::size_t{1024}, std::size_t{4096},
        std::numeric_limits<std::size_t>::max()}) {
    const auto r = align_phase(w, 16, 4, true, flen);
    if (flen == std::numeric_limits<std::size_t>::max())
      std::printf("%14s", "whole-target");
    else
      std::printf("%14zu", flen);
    std::printf(" %11.1f%% %14llu %14llu\n", 100.0 * r.exact_frac,
                static_cast<unsigned long long>(r.sw_calls),
                static_cast<unsigned long long>(r.lookups));
  }
  return 0;
}
