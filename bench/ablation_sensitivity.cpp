// Ablation: the max-alignments-per-seed threshold (Section IV-C).
//
// "A threshold can be set for the maximum number of alignments per seed ...
// This threshold determines the sensitivity of our aligner and it can be
// used to trade off accuracy for speed when appropriate."
//
// On a repeat-rich workload, sweep the threshold and report aligning-phase
// time, Smith-Waterman volume, alignments found, and placement accuracy
// against simulated ground truth — the paper's qualitative speed/sensitivity
// trade-off made quantitative.
#include <cstdio>

#include "bench_common.hpp"
#include "core/evaluation.hpp"
#include "core/pipeline.hpp"
#include "seq/genome_sim.hpp"
#include "seq/read_sim.hpp"

int main() {
  using namespace mera;
  bench::print_header(
      "Ablation — max alignments per seed (sensitivity/speed trade-off)",
      "Section IV-C (no figure in the paper; ablation called out in "
      "DESIGN.md)");

  // Repeat-rich genome so some seeds map to many targets.
  seq::GenomeParams gp;
  gp.length = 800'000;
  gp.repeat_fraction = 0.3;
  gp.repeat_divergence = 0.005;
  gp.rng_seed = 41;
  const std::string genome = simulate_genome(gp);
  seq::ContigParams cp;
  cp.rng_seed = 42;
  const auto contigs = chop_into_contigs(genome, cp);
  seq::ReadSimParams rp;
  rp.read_len = 101;
  rp.depth = 2.0;
  rp.error_rate = 0.004;
  rp.rng_seed = 43;
  const auto reads = simulate_reads(genome, rp);
  std::printf("workload: %zu reads on a 30%%-repeat genome\n\n", reads.size());

  std::printf("%10s %12s %12s %14s %12s %12s %12s\n", "max_hits", "align(s)",
              "SW calls", "truncated", "aligned%", "precision%", "recall%");
  for (std::size_t max_hits : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
    core::AlignerConfig cfg;
    cfg.k = 51;
    cfg.fragment_len = 1024;
    cfg.max_hits_per_seed = max_hits;
    pgas::Runtime rt(pgas::Topology(8, 4));
    const auto res = core::MerAligner(cfg).align(rt, contigs, reads);
    const auto ev = core::evaluate_alignments(contigs, reads, res.alignments,
                                              {cfg.k, 5});
    std::printf("%10zu %12.3f %12llu %14llu %11.1f%% %11.1f%% %11.1f%%\n",
                max_hits, res.report.time_of("align"),
                static_cast<unsigned long long>(res.stats.sw_calls),
                static_cast<unsigned long long>(res.stats.hits_truncated),
                100.0 * res.stats.aligned_fraction(),
                100.0 * ev.placement_precision(),
                100.0 *
                    (res.stats.reads_processed
                         ? static_cast<double>(ev.correctly_placed) /
                               static_cast<double>(res.stats.reads_processed)
                         : 0.0));
  }
  std::printf(
      "\nexpect: align time and SW calls grow with the threshold while\n"
      "aligned%% saturates — the knob buys speed once sensitivity plateaus.\n");
  return 0;
}
