// Index reuse across query batches (session API).
//
// The paper's conclusion sketches "GenBank-scale" screening: one reference
// collection, a stream of query sets. The legacy one-shot API rebuilt the
// distributed seed index for every query set; the session API builds it once
// (IndexedReference) and streams batches against it (AlignSession).
//
// This bench quantifies the redesign: B batches aligned one-shot (B full
// pipelines) vs session (1 index build + B aligning runs). The per-batch
// PhaseReport is the proof of reuse — session batches contain only io.reads
// and align, never index.build/index.mark. (The old Figure-7 analytic
// seed-reuse curve this file used to print lives on in git history; the
// cache-hit behaviour it modeled is measured directly by fig09.)
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench_common.hpp"
#include "core/align_session.hpp"
#include "core/indexed_reference.hpp"
#include "core/pipeline.hpp"

int main() {
  using namespace mera;
  bench::print_header(
      "Index reuse — one-shot rebuild vs session (build once, align many)",
      "conclusion: amortizing index construction over query batches");

  // Screening-shaped workload: a sizeable reference, modest per-batch query
  // sets — the regime where rebuilding the index per batch hurts most.
  const int kBatches = 4;
  const auto w = bench::make_workload(bench::human_like(2'000'000, 0.6));
  // Split the read set into kBatches equal batches.
  std::vector<std::vector<seq::SeqRecord>> batches(kBatches);
  for (std::size_t i = 0; i < w.reads.size(); ++i)
    batches[i % kBatches].push_back(w.reads[i]);
  std::printf("workload: %zu contigs, %zu reads in %d batches\n\n",
              w.contigs.size(), w.reads.size(), kBatches);

  core::IndexConfig icfg;
  icfg.k = 31;
  core::SessionConfig scfg;

  const pgas::Topology topo(8, 4);

  // --- one-shot: every batch pays the full pipeline -------------------------
  core::AlignerConfig legacy;
  legacy.k = icfg.k;
  legacy.collect_alignments = false;
  double oneshot_total = 0.0, oneshot_index = 0.0;
  for (int b = 0; b < kBatches; ++b) {
    pgas::Runtime rt(topo);
    const auto res =
        core::MerAligner(legacy).align(rt, w.contigs, batches[b]);
    oneshot_total += res.total_time_s();
    oneshot_index += res.report.time_of("io.targets") +
                     res.report.time_of("index.build") +
                     res.report.time_of("index.mark");
  }

  // --- session: one build, then aligning-only batches -----------------------
  pgas::Runtime rt(topo);
  const auto ref = core::IndexedReference::build(rt, w.contigs, icfg);
  const double build_s = ref.build_report().total_time_s();
  core::AlignSession session(ref, scfg);
  core::CountingSink sink;

  std::printf("%8s %14s %14s %16s %s\n", "batch", "io.reads(s)", "align(s)",
              "batch total(s)", "index phases present?");
  double session_total = build_s;
  for (int b = 0; b < kBatches; ++b) {
    const auto res = session.align_batch(rt, batches[b], sink);
    session_total += res.total_time_s();
    // Verified from the emitted PhaseReport: reuse means the index phases
    // simply do not exist in a batch's report.
    const bool has_index_phase = res.report.find("index.build") != nullptr ||
                                 res.report.find("index.mark") != nullptr ||
                                 res.report.find("io.targets") != nullptr;
    if (has_index_phase) {
      std::printf("ERROR: batch %d re-ran index construction\n", b + 1);
      return 1;
    }
    std::printf("%8d %14.4f %14.4f %16.4f %s\n", b + 1,
                res.report.time_of("io.reads"), res.report.time_of("align"),
                res.total_time_s(), "no (io.reads+align only)");
  }

  std::printf("\n%-34s %10.4f s (index phases: %.4f s x %d rebuilds)\n",
              "one-shot, rebuild per batch:", oneshot_total, oneshot_index / kBatches,
              kBatches);
  std::printf("%-34s %10.4f s (index built once: %.4f s)\n",
              "session, index built once:", session_total, build_s);
  std::printf("%-34s %10.2fx\n",
              "end-to-end speedup:", oneshot_total / session_total);
  std::printf(
      "\npaper shape: index construction is a large, perfectly-amortizable\n"
      "fraction of small-batch runs; batches 2..%d are pure aligning.\n",
      kBatches);
  return 0;
}
