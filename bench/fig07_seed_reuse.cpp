// Figure 7: probability that a seed is reused (=> software-cache hit) at
// least once on a node, as a function of core count.
//
// Paper model: f-1 remaining occurrences of a seed thrown into m = p/ppn
// nodes; P(reuse) = 1 - (1 - 1/m)^(f-1), plotted for d=100, L=100, k=51
// (f = d*(1-(k-1)/L) = 50), ppn = 24. The curve starts near 1 and decays as
// nodes multiply — matching the measured "seed cache helps at small
// concurrency, little at large" behaviour of Figure 9.
//
// This bench prints the analytic curve AND a Monte-Carlo balls-into-bins
// simulation; the two must agree.
#include <cmath>
#include <cstdio>
#include <random>

#include "bench_common.hpp"

namespace {

double analytic(int cores, int ppn, int f) {
  const double m = static_cast<double>(cores) / ppn;
  if (m <= 1.0) return 1.0;
  return 1.0 - std::pow(1.0 - 1.0 / m, f - 1);
}

double monte_carlo(int cores, int ppn, int f, int trials,
                   std::uint64_t seed) {
  const int m = cores / ppn;
  if (m <= 1) return 1.0;
  std::mt19937_64 rng(seed);
  int reused = 0;
  for (int t = 0; t < trials; ++t) {
    // Node 0 holds the first occurrence; does any of the f-1 remaining
    // occurrences land on node 0?
    bool hit = false;
    for (int b = 0; b < f - 1 && !hit; ++b)
      hit = (rng() % static_cast<std::uint64_t>(m)) == 0;
    reused += hit ? 1 : 0;
  }
  return static_cast<double>(reused) / trials;
}

}  // namespace

int main() {
  bench::print_header("Figure 7 — probability of seed reuse vs cores",
                      "Fig. 7: d=100, L=100, k=51, f=50, ppn=24");
  const int d = 100, L = 100, k = 51, ppn = 24;
  const int f = static_cast<int>(d * (1.0 - static_cast<double>(k - 1) / L));
  std::printf("expected seed frequency f = d*(1-(k-1)/L) = %d\n\n", f);
  std::printf("%8s %12s %14s %14s\n", "cores", "nodes", "P(analytic)",
              "P(montecarlo)");
  for (int cores : {480, 960, 1920, 2880, 3840, 5760, 7680, 9600, 11520,
                    13440, 15360}) {
    const double pa = analytic(cores, ppn, f);
    const double pm = monte_carlo(cores, ppn, f, 200'000,
                                  static_cast<std::uint64_t>(cores));
    std::printf("%8d %12d %14.4f %14.4f\n", cores, cores / ppn, pa, pm);
  }
  std::printf(
      "\npaper shape: ~1.0 near 2000 cores decaying toward ~0.08 at 15360\n");
  return 0;
}
