// Executor overlap: parallel shard execution + double-buffered batch
// streaming (exec::ThreadPool / core::BatchPrefetcher).
//
// The paper's speed comes from overlapping independent work across UPC
// threads. This bench measures the two overlap axes the reproduction adds on
// top of the per-rank SPMD parallelism:
//
//   A. parallel shards — a K-shard screen dispatches its K per-shard
//      align_batch calls onto a worker pool (ShardedSessionConfig::
//      shard_parallelism = J). Records are reconciled into the same
//      deterministic stream at every J, so wall-clock time is the only
//      thing J changes. Expected: near-linear speedup in J up to the
//      machine's core count (runtimes here are single-rank, so the shard
//      axis is the only concurrency).
//
//   B. batch prefetch — a stream of reads-batch files aligned with
//      align_batch_files(), loading batch N+1 while batch N aligns. The
//      sync/prefetch pair differs only in overlap: the prefetch run's
//      stall time collapses while its load time hides inside aligning.
//
// Both parts abort if the overlapped configuration changes any result
// count — overlap must change seconds, never bytes.
//
// Output: paper-style stdout rows + a machine-readable BENCH_fig13.json
// (bench::JsonSummary) for CI perf-trajectory archiving. Pass --smoke for
// the CI-sized workload.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/align_session.hpp"
#include "core/alignment_sink.hpp"
#include "core/indexed_reference.hpp"
#include "seq/fastq.hpp"
#include "shard/sharded_reference.hpp"
#include "shard/sharded_session.hpp"

namespace {

/// Total CPU seconds booked by every rank across every phase — the "work"
/// that a parallel executor packs into less wall time.
double cpu_sum_s(const mera::pgas::PhaseReport& report) {
  double total = 0.0;
  for (const auto& phase : report.phases)
    for (const double cpu : phase.cpu_s) total += cpu;
  return total;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mera;
  bool smoke = false;
  for (int i = 1; i < argc; ++i)
    smoke = smoke || std::strcmp(argv[i], "--smoke") == 0;

  bench::print_header(
      "Async overlap — parallel shard execution + double-buffered batches",
      "Section III/IV: overlapping independent work across threads");
  bench::JsonSummary json(
      "fig13", "parallel shard execution + double-buffered batch streaming");
  const bench::StopWatch bench_watch;  // measured via the shared obs clock

  const auto w = bench::make_workload(
      bench::human_like(smoke ? 400'000 : 1'500'000, smoke ? 2.0 : 3.0));
  std::printf("workload: %zu contigs, %zu reads%s\n\n", w.contigs.size(),
              w.reads.size(), smoke ? " (smoke)" : "");

  core::IndexConfig icfg;
  icfg.k = 31;
  core::SessionConfig scfg;
  scfg.exact_match = false;       // per-shard shortcut would skew comparison
  scfg.max_hits_per_seed = 4096;  // no per-shard truncation

  // ---- A: parallel shards --------------------------------------------------
  // Single-rank runtimes: the K shards are the only concurrency, so the
  // J-axis speedup is undiluted by rank threads.
  constexpr int kShards = 4;
  std::printf("A. K=%d sharded screen, J shards driven in parallel\n", kShards);
  std::printf("%4s %12s %14s %14s %12s %10s\n", "J", "wall(s)", "cpu sum(s)",
              "model ser(s)", "speedup", "alignments");

  pgas::Runtime rt(pgas::Topology(1, 1));
  const auto sharded_ref =
      shard::ShardedReference::build(rt, w.contigs, kShards, icfg);
  double wall_j1 = 0.0;
  std::uint64_t alignments_j1 = 0, sw_calls_j1 = 0;
  for (const int J : {1, 2, 4}) {
    shard::ShardedAlignSession session(sharded_ref,
                                       shard::ShardedSessionConfig{scfg, J});
    core::CountingSink sink;
    const auto res = session.align_batch(rt, w.reads, sink);
    if (J == 1) {
      wall_j1 = res.wall_s;
      alignments_j1 = res.stats.alignments_reported;
      sw_calls_j1 = res.stats.sw_calls;
    } else if (res.stats.alignments_reported != alignments_j1 ||
               res.stats.sw_calls != sw_calls_j1) {
      std::fprintf(stderr,
                   "FATAL: J=%d changed the result counts — the executor "
                   "must never change output\n",
                   J);
      return 1;
    }
    const double speedup = res.wall_s > 0.0 ? wall_j1 / res.wall_s : 0.0;
    std::printf("%4d %12.3f %14.3f %14.3f %11.2fx %10llu\n", J, res.wall_s,
                cpu_sum_s(res.report), res.total_time_s(), speedup,
                static_cast<unsigned long long>(res.stats.alignments_reported));
    json.config("shards_K" + std::to_string(kShards) + "_J" +
                std::to_string(J));
    json.metric("wall_s", res.wall_s);
    json.metric("cpu_sum_s", cpu_sum_s(res.report));
    json.metric("model_serial_s", res.total_time_s());
    json.metric("model_parallel_s", res.time_parallel_s());
    json.metric("speedup_vs_serial", speedup);
    json.metric("alignments", static_cast<double>(res.stats.alignments_reported));
  }
  std::printf(
      "(shard dispatch is bit-identical at every J; wall-clock is the only "
      "column J may change)\n\n");

  // ---- B: double-buffered batch streaming ---------------------------------
  const std::size_t nbatches = smoke ? 4 : 6;
  std::printf("B. %zu-file batch stream, load(N+1) overlapped with align(N)\n",
              nbatches);
  std::vector<std::string> paths;
  const std::size_t per_batch = w.reads.size() / nbatches;
  for (std::size_t b = 0; b < nbatches; ++b) {
    const std::size_t lo = b * per_batch;
    const std::size_t hi = b + 1 == nbatches ? w.reads.size() : lo + per_batch;
    const std::vector<seq::SeqRecord> chunk(w.reads.begin() + lo,
                                            w.reads.begin() + hi);
    paths.push_back("fig13_batch_" + std::to_string(b) + ".fastq");
    seq::write_fastq(paths.back(), chunk);
  }

  pgas::Runtime stream_rt(pgas::Topology(2, 2));
  const auto mono_ref =
      core::IndexedReference::build(stream_rt, w.contigs, icfg);
  std::printf("%10s %12s %12s %12s %10s\n", "mode", "wall(s)", "load(s)",
              "stall(s)", "alignments");
  double wall_sync = 0.0;
  std::uint64_t alignments_sync = 0;
  for (const bool prefetch : {false, true}) {
    core::AlignSession session(mono_ref, scfg);
    core::CountingSink sink;
    core::FileStreamOptions opt;
    opt.prefetch = prefetch;
    const auto res = session.align_batch_files(stream_rt, paths, sink, opt);
    if (!prefetch) {
      wall_sync = res.wall_s;
      alignments_sync = res.stats.alignments_reported;
    } else if (res.stats.alignments_reported != alignments_sync) {
      std::fprintf(stderr,
                   "FATAL: prefetching changed the result counts — overlap "
                   "must never change output\n");
      return 1;
    }
    std::printf("%10s %12.3f %12.3f %12.3f %10llu\n",
                prefetch ? "prefetch" : "sync", res.wall_s, res.load_wall_s,
                res.stall_s,
                static_cast<unsigned long long>(res.stats.alignments_reported));
    json.config(prefetch ? "stream_prefetch" : "stream_sync");
    json.metric("wall_s", res.wall_s);
    json.metric("load_wall_s", res.load_wall_s);
    json.metric("stall_s", res.stall_s);
    json.metric("model_serial_s", res.total_time_s());
    json.metric("batches", static_cast<double>(res.batches.size()));
    json.metric("alignments", static_cast<double>(res.stats.alignments_reported));
    if (prefetch && res.wall_s > 0.0)
      std::printf(
          "(I/O hiding: %.3f s of loading left the critical path; stream "
          "speedup %.2fx)\n",
          res.load_wall_s - res.stall_s, wall_sync / res.wall_s);
  }
  for (const std::string& p : paths) std::remove(p.c_str());

  json.config("bench_total");
  json.metric("bench_wall_s", bench_watch.elapsed_s());
  return json.write() ? 0 : 1;
}
