// meraligner_client — reference client for the meralignerd daemon.
//
// Usage:
//   meraligner_client --socket /run/mera.sock --tenant NAME
//                     [--reads batch1.fastq [--reads batch2.sdb ...]]
//                     [--out out.sam] [--metrics FILE] [--stats FILE]
//                     [--quiet]
//
// Connects to the daemon, introduces itself as --tenant, sends every
// --reads file as one Batch frame (file bytes verbatim — FASTQ text or a
// SeqDB file; the daemon sniffs which), and appends each reply's SAM bytes
// to --out (default: stdout). The daemon puts the SAM header in the first
// reply of a connection, so --out ends up byte-identical to a one-shot
// meraligner run over the same batches (modulo the @PG CL field, which
// records each program's own invocation).
//
// --metrics FILE scrapes the daemon's Prometheus metrics endpoint into FILE
// ('-' = stdout); --stats FILE fetches the per-tenant accounting JSON. Both
// work with or without --reads, so a metrics scraper is just
// `meraligner_client --socket S --tenant prom --metrics -`.
//
// An Error frame from the daemon is printed to stderr and exits 1 after the
// remaining replies are drained.
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "cli_util.hpp"
#include "serve/framing.hpp"

namespace {

constexpr const char* kUsage =
    "meraligner_client --socket /run/mera.sock --tenant NAME\n"
    "                  [--reads batch1.fastq [--reads batch2.sdb ...]]\n"
    "                  [--out out.sam] [--metrics FILE] [--stats FILE]\n"
    "                  [--quiet]\n"
    "\n"
    "Sends each --reads file to the daemon as one batch and appends the\n"
    "replied SAM bytes to --out (default stdout) - the concatenation is the\n"
    "same file a one-shot meraligner run would write (modulo @PG CL).\n"
    "--metrics FILE scrapes the daemon's Prometheus endpoint ('-' =\n"
    "stdout); --stats FILE fetches per-tenant accounting JSON.";

std::string slurp(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f)
    throw std::runtime_error("cannot open reads file '" + path + "'");
  std::ostringstream os;
  os << f.rdbuf();
  if (!f && !f.eof())
    throw std::runtime_error("failed reading '" + path + "'");
  return os.str();
}

void spill(const std::string& path, const std::string& bytes,
           const char* what) {
  if (path == "-") {
    std::fwrite(bytes.data(), 1, bytes.size(), stdout);
    return;
  }
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  f.flush();
  if (!f)
    throw std::runtime_error(std::string(what) + ": cannot write '" + path +
                             "'");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mera;
  const tools::Args args(argc, argv);
  if (args.has("help") || argc == 1) {
    std::puts(kUsage);
    return argc == 1 ? 2 : 0;
  }
  int fd = -1;
  try {
    args.check_known(
        {"socket", "tenant", "reads", "out", "metrics", "stats", "quiet",
         "help"});
    const std::string socket_path = args.get("socket");
    if (socket_path.empty() || socket_path == "1")
      throw tools::UsageError("missing required flag --socket PATH");
    const std::string tenant = args.get("tenant");
    if (tenant.empty() || tenant == "1")
      throw tools::UsageError("missing required flag --tenant NAME");
    const std::vector<std::string> reads = args.get_all("reads");
    const std::string out = args.get("out", "-");
    const std::string metrics = args.get("metrics");
    const std::string stats = args.get("stats");
    const bool quiet = args.has("quiet");

    fd = serve::connect_unix(socket_path);
    serve::write_frame(fd, serve::FrameType::kHello, tenant);

    std::ofstream out_file;
    std::ostream* sam_os = &std::cout;
    if (out != "-") {
      out_file.open(out, std::ios::binary | std::ios::trunc);
      if (!out_file)
        throw std::runtime_error("--out: cannot write '" + out + "'");
      sam_os = &out_file;
    }

    bool failed = false;
    const auto expect_reply = [&](const char* asked) -> serve::Frame {
      for (;;) {
        auto f = serve::read_frame(fd);
        if (!f)
          throw std::runtime_error(std::string("daemon closed while waiting "
                                               "for ") +
                                   asked);
        if (f->type == serve::FrameType::kError) {
          std::fprintf(stderr, "meraligner_client: daemon error: %s\n",
                       f->payload.c_str());
          failed = true;
          continue;  // the stream survives an Error frame; keep draining
        }
        return *f;
      }
    };

    for (const std::string& path : reads) {
      serve::write_frame(fd, serve::FrameType::kBatch, slurp(path));
      const serve::Frame reply = expect_reply("a SAM reply");
      if (reply.type != serve::FrameType::kSam)
        throw std::runtime_error("unexpected reply frame type " +
                                 std::to_string(static_cast<unsigned>(
                                     reply.type)));
      sam_os->write(reply.payload.data(),
                    static_cast<std::streamsize>(reply.payload.size()));
      if (!*sam_os)
        throw std::runtime_error("--out: write to '" + out + "' failed");
      if (!quiet)
        std::fprintf(stderr, "[meraligner_client] %s: %zu SAM bytes\n",
                     path.c_str(), reply.payload.size());
    }
    sam_os->flush();
    if (!*sam_os)
      throw std::runtime_error("--out: write to '" + out + "' failed");

    if (!metrics.empty() && metrics != "1") {
      serve::write_frame(fd, serve::FrameType::kMetricsReq, {});
      const serve::Frame reply = expect_reply("the metrics scrape");
      if (reply.type != serve::FrameType::kMetrics)
        throw std::runtime_error("unexpected reply to MetricsReq");
      spill(metrics, reply.payload, "--metrics");
    }
    if (!stats.empty() && stats != "1") {
      serve::write_frame(fd, serve::FrameType::kStatsReq, {});
      const serve::Frame reply = expect_reply("the stats reply");
      if (reply.type != serve::FrameType::kStats)
        throw std::runtime_error("unexpected reply to StatsReq");
      spill(stats, reply.payload, "--stats");
    }

    serve::write_frame(fd, serve::FrameType::kGoodbye, {});
    ::close(fd);
    return failed ? 1 : 0;
  } catch (const tools::UsageError& e) {
    if (fd >= 0) ::close(fd);
    std::fprintf(stderr, "meraligner_client: error: %s\n\n%s\n", e.what(),
                 kUsage);
    return 2;
  } catch (const std::exception& e) {
    if (fd >= 0) ::close(fd);
    std::fprintf(stderr, "meraligner_client: error: %s\n", e.what());
    return 1;
  }
}
