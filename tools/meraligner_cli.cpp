// meraligner — command-line front end for the full pipeline.
//
// Usage:
//   meraligner --targets contigs.fa --reads reads.{fastq,sdb}
//              [--out out.sam] [--k 51] [--ranks 8] [--ppn 4] [--S 1000]
//              [--max-hits 32] [--fragment-len 1024] [--no-exact]
//              [--no-seed-cache] [--no-target-cache] [--no-aggregation]
//              [--no-permute] [--stats]
//
// FASTQ inputs are converted to a temporary SeqDB next to the input (the
// paper's one-time lossless preprocessing) so every rank can read its own
// byte range.
#include <cstdio>
#include <iostream>
#include <string>

#include "cli_util.hpp"
#include "core/pipeline.hpp"
#include "seq/seqdb.hpp"

int main(int argc, char** argv) {
  using namespace mera;
  try {
    const tools::Args args(argc, argv);
    if (args.has("help") || argc == 1) {
      std::puts(
          "meraligner --targets contigs.fa --reads reads.{fastq,sdb}\n"
          "           [--out out.sam] [--k 51] [--ranks 8] [--ppn 4]\n"
          "           [--S 1000] [--max-hits 32] [--fragment-len 1024]\n"
          "           [--no-exact] [--no-seed-cache] [--no-target-cache]\n"
          "           [--no-aggregation] [--no-permute] [--stats]");
      return argc == 1 ? 1 : 0;
    }
    const std::string targets = args.require("targets");
    std::string reads = args.require("reads");
    const std::string out = args.get("out");

    // FASTQ -> SeqDB preprocessing when needed.
    if (reads.size() > 6 &&
        (reads.ends_with(".fastq") || reads.ends_with(".fq"))) {
      const std::string db = reads + ".sdb";
      std::fprintf(stderr, "[meraligner] converting %s -> %s\n", reads.c_str(),
                   db.c_str());
      seq::fastq_to_seqdb(reads, db);
      reads = db;
    }

    core::AlignerConfig cfg;
    cfg.k = static_cast<int>(args.get_int("k", 51));
    cfg.buffer_S = static_cast<std::size_t>(args.get_int("S", 1000));
    cfg.max_hits_per_seed =
        static_cast<std::size_t>(args.get_int("max-hits", 32));
    cfg.fragment_len =
        static_cast<std::size_t>(args.get_int("fragment-len", 1024));
    cfg.exact_match = !args.has("no-exact");
    cfg.seed_cache = !args.has("no-seed-cache");
    cfg.target_cache = !args.has("no-target-cache");
    cfg.aggregating_stores = !args.has("no-aggregation");
    cfg.permute_queries = !args.has("no-permute");

    const int nranks = static_cast<int>(args.get_int("ranks", 8));
    const int ppn = static_cast<int>(args.get_int("ppn", 4));
    pgas::Runtime rt(pgas::Topology(nranks, ppn));

    const auto res =
        core::MerAligner(cfg).align_files(rt, targets, reads, out);

    std::fprintf(stderr,
                 "[meraligner] %llu/%llu reads aligned (%.1f%%), "
                 "%llu alignments, %.3f simulated s end-to-end\n",
                 static_cast<unsigned long long>(res.stats.reads_aligned),
                 static_cast<unsigned long long>(res.stats.reads_processed),
                 100.0 * res.stats.aligned_fraction(),
                 static_cast<unsigned long long>(res.stats.alignments_reported),
                 res.total_time_s());
    if (args.has("stats")) {
      res.report.print(std::cerr);
      res.stats.print(std::cerr);
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "meraligner: error: %s\n", e.what());
    return 1;
  }
}
