// meraligner — command-line front end for the session-based pipeline.
//
// Usage:
//   meraligner --targets contigs.fa --reads batch1.{fastq,sdb}
//              [--reads batch2.fastq ...] [--out out.sam] [--k 51]
//              [--ranks 8] [--ppn 4] [--S 1000] [--max-hits 32]
//              [--fragment-len 1024] [--sw full|banded|striped|batch]
//              [--sw-isa auto|...|help] [--sw-pool on|off|N] [--no-exact]
//              [--no-seed-cache] [--no-target-cache] [--no-aggregation]
//              [--no-permute] [--stats]
//              [--shards K] [--shard-by cost|bases] [--shard-parallel J]
//              [--no-prefetch]
//              [--save-cache DIR] [--load-cache DIR] [--cache-admission]
//              [--trace FILE.json] [--metrics FILE]
//              [--metrics-format json|prom] [--quiet]
//
// The distributed seed index is built ONCE from --targets; every --reads
// batch is then streamed against it through one AlignSession, so batch N>1
// pays no index construction. With --out, all batches stream into a single
// SAM file (header once). Unknown flags are an error (exit 2), not ignored.
//
// Sharded references: pass --shards K to split one --targets collection into
// K balanced per-runtime index shards (planned by total bases or cost-model
// seed weight, --shard-by), or pass --targets repeatedly for one shard per
// FASTA. Batches then stream through a ShardedAlignSession that reconciles
// per-shard hits into one SAM with global target ids — the "GenBank-scale"
// screening layout where no single runtime holds the whole index.
// --shard-parallel J drives J shards concurrently per batch (default: auto,
// min(K, hardware threads / ranks)); output is bit-identical at every J.
//
// Batch streaming is double-buffered by default: while batch N aligns,
// batch N+1 loads on a background worker (FASTQ parsed straight into
// memory). --no-prefetch restores the strictly serial load-then-align loop,
// converting FASTQ to a temporary SeqDB next to the input (the paper's
// one-time lossless preprocessing) so every rank reads its own byte range.
//
// Cache persistence: --save-cache DIR snapshots the session's software
// caches (seed + target, entries and counters) after the last batch;
// --load-cache DIR warm-starts a later invocation from such a snapshot, so
// a restarted screening service skips the remote lookups the previous run
// already paid for. Snapshots are fingerprinted against the reference,
// topology and cost model — loading a mismatched or damaged snapshot is a
// usage error (exit 2), not a silent cold start. Warm output is
// byte-for-byte the cold output; only the cache hit rates and modeled
// communication seconds change. --cache-admission turns on the
// eviction-aware admission policy for multi-tenant batch streams.
//
// Observability: --trace FILE.json records a Chrome Trace Event timeline
// (phases per rank, shard dispatch, prefetch loads/stalls — open in
// chrome://tracing or ui.perfetto.dev); --metrics FILE dumps the process
// metrics registry (JSON by default, Prometheus text with --metrics-format
// prom). Both change seconds, never bytes: SAM output is bit-identical with
// observability on or off. --quiet suppresses the informational stderr lines
// (usage errors still print).
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cache/cache_snapshot.hpp"
#include "cache/seed_cache.hpp"
#include "cli_util.hpp"
#include "core/align_session.hpp"
#include "core/alignment_sink.hpp"
#include "core/batch_prefetcher.hpp"
#include "core/indexed_reference.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "seq/fasta.hpp"
#include "seq/seqdb.hpp"
#include "shard/sharded_reference.hpp"
#include "shard/sharded_session.hpp"

namespace {

constexpr const char* kUsage =
    "meraligner --targets contigs.fa --reads batch1.{fastq,sdb}\n"
    "           [--reads batch2.fastq ...] [--out out.sam] [--k 51]\n"
    "           [--ranks 8] [--ppn 4] [--S 1000] [--max-hits 32]\n"
    "           [--fragment-len 1024] [--sw full|banded|striped|batch]\n"
    "           [--sw-isa auto|scalar|sse2|avx2|avx512|help]\n"
    "           [--sw-pool on|off|N]\n"
    "           [--no-exact] [--no-seed-cache] [--no-target-cache]\n"
    "           [--no-aggregation] [--no-permute] [--stats]\n"
    "           [--shards K] [--shard-by cost|bases] [--shard-parallel J]\n"
    "           [--no-prefetch]\n"
    "           [--save-cache DIR] [--load-cache DIR] [--cache-admission]\n"
    "           [--trace FILE.json] [--metrics FILE]\n"
    "           [--metrics-format json|prom] [--quiet]\n"
    "\n"
    "The index over --targets is built once; each --reads batch is aligned\n"
    "against it in order, streaming SAM into --out (one header, all batches).\n"
    "While a batch aligns, the next one loads in the background\n"
    "(--no-prefetch for the strictly serial loop).\n"
    "--shards K splits one target collection into K balanced index shards;\n"
    "repeating --targets makes one shard per FASTA. Either way the batches\n"
    "stream through every shard and come out as one reconciled SAM.\n"
    "--shard-parallel J aligns J shards concurrently per batch (default:\n"
    "auto = min(K, hardware threads / ranks)); same bytes at every J.\n"
    "--save-cache DIR snapshots the software caches after the last batch;\n"
    "--load-cache DIR warm-starts from such a snapshot (same reference,\n"
    "topology and cost model required). Warm runs emit the same SAM bytes\n"
    "as cold ones — only the remote-lookup work changes.\n"
    "--sw batch screens each read's candidates in one inter-candidate SIMD\n"
    "sweep; --sw-isa (or MERA_SW_ISA in the environment) pins its dispatch\n"
    "tier — the default auto picks the widest the CPU supports. Every tier\n"
    "emits bit-identical SAM. --sw-isa help (or MERA_SW_ISA=help) prints the\n"
    "tiers this build and CPU actually support, then exits.\n"
    "--sw-pool pools candidates ACROSS reads into query-length-class buckets\n"
    "and flushes a bucket through the batch engine only once it can fill the\n"
    "tier's SIMD lanes (on = default for --sw batch, auto threshold; off =\n"
    "flush per read, the pre-pooling behaviour; N = explicit per-bucket\n"
    "flush threshold). Pooling replays results in exact per-read order, so\n"
    "SAM bytes and stats are identical at every setting — only lane\n"
    "occupancy (mera_sw_lane_* metrics) and seconds change.\n"
    "--trace FILE.json records a Chrome Trace Event timeline (open in\n"
    "chrome://tracing or ui.perfetto.dev); --metrics FILE dumps the metrics\n"
    "registry as JSON (--metrics-format prom for Prometheus text). Neither\n"
    "changes a SAM byte. --quiet silences informational stderr lines.";

mera::align::SwKernel parse_kernel(const std::string& name) {
  using mera::align::SwKernel;
  if (name == "full") return SwKernel::kFullDP;
  if (name == "banded") return SwKernel::kBanded;
  if (name == "striped") return SwKernel::kStriped;
  if (name == "batch") return SwKernel::kBatch;
  throw mera::tools::UsageError(
      "--sw expects full|banded|striped|batch, got '" + name + "'");
}

/// --sw-isa: validated here so a typo or a tier this machine can't run is a
/// usage error up front, not a mid-run exception from the first batch.
mera::align::SwIsa parse_sw_isa(const std::string& name) {
  const auto isa = mera::align::parse_isa(name);
  if (!isa)
    throw mera::tools::UsageError(
        "--sw-isa expects auto|scalar|sse2|avx2|avx512, got '" + name + "'");
  if (!mera::align::isa_supported(*isa))
    throw mera::tools::UsageError(
        "--sw-isa " + name +
        ": tier not available (not compiled in or not supported by this CPU)");
  return *isa;
}

/// --sw-pool: cross-read candidate pooling for --sw batch. on = the auto
/// flush threshold (the resolved tier's 8-bit lane width), off = flush per
/// read, N >= 1 = explicit per-bucket flush threshold (1 == on).
std::size_t parse_sw_pool(const std::string& v) {
  if (v == "on") return 1;
  if (v == "off") return 0;
  char* end = nullptr;
  const long n = std::strtol(v.c_str(), &end, 10);
  if (end == v.c_str() || *end != '\0' || n < 1)
    throw mera::tools::UsageError("--sw-pool expects on|off|N (N >= 1), got '" +
                                  v + "'");
  return static_cast<std::size_t>(n);
}

mera::shard::ShardWeight parse_shard_weight(const std::string& name) {
  using mera::shard::ShardWeight;
  if (name == "cost") return ShardWeight::kCostModel;
  if (name == "bases") return ShardWeight::kBases;
  throw mera::tools::UsageError("--shard-by expects cost|bases, got '" + name +
                                "'");
}

/// FASTQ batches get the one-time lossless SeqDB conversion.
std::string ensure_seqdb(const std::string& reads) {
  if (mera::core::looks_like_fastq(reads)) {
    const std::string db = reads + ".sdb";
    mera::obs::Log::info("converting %s -> %s", reads.c_str(), db.c_str());
    mera::seq::fastq_to_seqdb(reads, db);
    return db;
  }
  return reads;
}

/// The @PG CL field: the invocation verbatim, space-separated.
std::string command_line_of(int argc, char** argv) {
  std::string cl;
  for (int i = 0; i < argc; ++i) {
    if (i) cl += ' ';
    cl += argv[i];
  }
  return cl;
}

void print_batch_line(std::size_t b, std::size_t nbatches,
                      const std::string& name, const mera::core::PipelineStats& s,
                      double time_s) {
  mera::obs::Log::info(
      "batch %zu/%zu (%s): %llu/%llu reads aligned "
      "(%.1f%%), %llu alignments, %.3f simulated s (index reused)",
      b + 1, nbatches, name.c_str(),
      static_cast<unsigned long long>(s.reads_aligned),
      static_cast<unsigned long long>(s.reads_processed),
      100.0 * s.aligned_fraction(),
      static_cast<unsigned long long>(s.alignments_reported), time_s);
}

void print_prefetch_line(double wall_s, double load_wall_s, double stall_s) {
  mera::obs::Log::info(
      "prefetch: %.3f real s end-to-end, %.3f s of "
      "batch loading overlapped with aligning (%.3f s stalled)",
      wall_s, load_wall_s, stall_s);
}

/// Warm-load failures are invocation errors (exit 2 + usage): the user
/// pointed --load-cache at a snapshot that does not exist or does not match
/// this reference/topology/cost model.
template <typename SessionT>
void load_caches_or_usage_error(SessionT& session, const mera::pgas::Runtime& rt,
                                const std::string& dir,
                                const std::string& path) {
  try {
    session.load_caches(rt, path);
  } catch (const mera::cache::CacheSnapshotError& e) {
    throw mera::tools::UsageError("--load-cache " + dir + ": " + e.what());
  }
  mera::obs::Log::info("warm caches loaded from %s", dir.c_str());
}

void print_save_line(const std::string& dir) {
  mera::obs::Log::info("caches saved to %s", dir.c_str());
}

void print_total_line(const mera::core::PipelineStats& total, double index_s,
                      double align_s) {
  mera::obs::Log::info(
      "total: %llu/%llu reads aligned (%.1f%%), "
      "%llu alignments, %.3f simulated s end-to-end "
      "(%.3f s index + %.3f s aligning)",
      static_cast<unsigned long long>(total.reads_aligned),
      static_cast<unsigned long long>(total.reads_processed),
      100.0 * total.aligned_fraction(),
      static_cast<unsigned long long>(total.alignments_reported),
      index_s + align_s, index_s, align_s);
}

/// --stats epilogue: end-of-run cache counter totals (cumulative over every
/// batch, warm-loaded history included).
void print_cache_totals(const mera::cache::CacheCounters& seed,
                        const mera::cache::CacheCounters& target) {
  const auto line = [](const char* name, const mera::cache::CacheCounters& c) {
    std::fprintf(stderr,
                 "%-20s hits %llu  misses %llu  evictions %llu  "
                 "admission rejects %llu\n",
                 name, static_cast<unsigned long long>(c.hits),
                 static_cast<unsigned long long>(c.misses),
                 static_cast<unsigned long long>(c.evictions),
                 static_cast<unsigned long long>(c.admission_rejects));
  };
  std::fprintf(stderr, "cache totals (end of run)\n");
  line("  seed cache", seed);
  line("  target cache", target);
}

/// End-of-run observability artifacts. Failures to write are runtime errors
/// (exit 1): the alignment already happened; only the telemetry is at stake.
void write_observability_files(const std::string& trace_path,
                               const std::string& metrics_path,
                               const std::string& metrics_format) {
  namespace obs = mera::obs;
  if (!trace_path.empty()) {
    std::ofstream f(trace_path);
    if (!f)
      throw std::runtime_error("--trace: cannot write '" + trace_path + "'");
    obs::Tracer::global().write_chrome_trace(f);
    // A full disk fails the write, not the open — check after flushing, or
    // "trace written" would report success over a truncated file.
    f.flush();
    if (!f)
      throw std::runtime_error("--trace: write to '" + trace_path +
                               "' failed (disk full?)");
    obs::Log::info(
        "trace written to %s (open in chrome://tracing or ui.perfetto.dev)",
        trace_path.c_str());
  }
  if (!metrics_path.empty()) {
    std::ofstream f(metrics_path);
    if (!f)
      throw std::runtime_error("--metrics: cannot write '" + metrics_path +
                               "'");
    if (metrics_format == "prom")
      obs::MetricsRegistry::global().write_prometheus(f);
    else
      obs::MetricsRegistry::global().write_json(f);
    f.flush();
    if (!f)
      throw std::runtime_error("--metrics: write to '" + metrics_path +
                               "' failed (disk full?)");
    obs::Log::info("metrics written to %s (%s)", metrics_path.c_str(),
                   metrics_format.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mera;
  obs::Log::set_prefix("[meraligner] ");
  const tools::Args args(argc, argv);
  // --sw-isa help / MERA_SW_ISA=help: answer "which tiers can this build
  // and CPU actually run" without requiring any other flag — even a bare
  // `MERA_SW_ISA=help meraligner` — then exit.
  const char* isa_env = std::getenv("MERA_SW_ISA");
  if (args.get("sw-isa") == "help" ||
      (isa_env && std::string(isa_env) == "help")) {
    std::fputs(align::isa_support_summary().c_str(), stdout);
    return 0;
  }
  if (args.has("help") || argc == 1) {
    std::puts(kUsage);
    return argc == 1 ? 2 : 0;
  }
  try {
    args.check_known({"targets", "reads", "out", "k", "ranks", "ppn", "S",
                      "max-hits", "fragment-len", "sw", "sw-isa", "sw-pool",
                      "no-exact", "no-seed-cache", "no-target-cache",
                      "no-aggregation", "no-permute", "stats", "shards",
                      "shard-by", "shard-parallel", "no-prefetch",
                      "save-cache", "load-cache", "cache-admission", "trace",
                      "metrics", "metrics-format", "quiet", "help"});
    if (args.has("quiet")) obs::Log::set_level(obs::LogLevel::kError);
    const std::string trace_path = args.get("trace");
    if (args.has("trace") && (trace_path.empty() || trace_path == "1"))
      throw tools::UsageError("--trace expects a file path");
    const std::string metrics_path = args.get("metrics");
    if (args.has("metrics") && (metrics_path.empty() || metrics_path == "1"))
      throw tools::UsageError("--metrics expects a file path");
    if (args.has("metrics-format") && !args.has("metrics"))
      throw tools::UsageError("--metrics-format requires --metrics");
    const std::string metrics_format = args.get("metrics-format", "json");
    if (metrics_format != "json" && metrics_format != "prom")
      throw tools::UsageError("--metrics-format expects json|prom, got '" +
                              metrics_format + "'");
    // Enable before the index build so its phases land on the timeline too.
    if (!trace_path.empty()) obs::Tracer::global().enable();
    const std::vector<std::string> target_files = args.get_all("targets");
    if (target_files.empty())
      throw tools::UsageError("missing required flag --targets");
    std::vector<std::string> batches = args.get_all("reads");
    if (batches.empty()) throw tools::UsageError("missing required flag --reads");
    const std::string out = args.get("out");

    core::IndexConfig icfg;
    icfg.k = static_cast<int>(args.get_int("k", 51));
    icfg.buffer_S = static_cast<std::size_t>(args.get_int("S", 1000));
    icfg.fragment_len =
        static_cast<std::size_t>(args.get_int("fragment-len", 1024));
    icfg.exact_match = !args.has("no-exact");
    icfg.aggregating_stores = !args.has("no-aggregation");

    core::SessionConfig scfg;
    scfg.max_hits_per_seed =
        static_cast<std::size_t>(args.get_int("max-hits", 32));
    scfg.exact_match = icfg.exact_match;
    scfg.seed_cache = !args.has("no-seed-cache");
    scfg.target_cache = !args.has("no-target-cache");
    scfg.permute_queries = !args.has("no-permute");
    scfg.extension.kernel = parse_kernel(args.get("sw", "full"));
    if (args.has("sw-isa")) {
      // Only the batch kernel dispatches on ISA; elsewhere the flag would be
      // a silent no-op.
      if (scfg.extension.kernel != align::SwKernel::kBatch)
        throw tools::UsageError("--sw-isa requires --sw batch");
      scfg.extension.isa = parse_sw_isa(args.get("sw-isa"));
    }
    if (args.has("sw-pool")) {
      // Pooling only exists inside the batch engine; elsewhere the flag
      // would be a silent no-op.
      if (scfg.extension.kernel != align::SwKernel::kBatch)
        throw tools::UsageError("--sw-pool requires --sw batch");
      scfg.sw_pooling = parse_sw_pool(args.get("sw-pool"));
    }
    scfg.cache_admission = args.has("cache-admission");

    const std::string save_cache_dir = args.get("save-cache");
    const std::string load_cache_dir = args.get("load-cache");
    if (args.has("save-cache") && save_cache_dir.empty())
      throw tools::UsageError("--save-cache expects a directory");
    if (args.has("load-cache") && load_cache_dir.empty())
      throw tools::UsageError("--load-cache expects a directory");
    if (!load_cache_dir.empty() &&
        !std::filesystem::is_directory(load_cache_dir))
      throw tools::UsageError("--load-cache: " + load_cache_dir +
                              " is not a directory");

    const int nranks = static_cast<int>(args.get_int("ranks", 8));
    const int ppn = static_cast<int>(args.get_int("ppn", 4));
    pgas::Runtime rt(pgas::Topology(nranks, ppn));

    core::SamProgram pg;
    pg.name = "meraligner";
    pg.command_line = command_line_of(argc, argv);

    const long shards_flag = args.get_int("shards", 0);
    if (args.has("shards") && shards_flag < 1)
      throw tools::UsageError("--shards must be >= 1");
    if (target_files.size() > 1 && shards_flag != 0 &&
        shards_flag != static_cast<long>(target_files.size()))
      throw tools::UsageError(
          "--shards conflicts with repeated --targets (one shard per file)");
    const bool sharded = target_files.size() > 1 || shards_flag > 1;
    // --shard-by steers the planner, which only runs when one collection is
    // being split; anywhere else the flag would be a silent no-op.
    if (args.has("shard-by") && (target_files.size() > 1 || shards_flag < 2))
      throw tools::UsageError(
          "--shard-by requires --shards K (K >= 2) with a single --targets "
          "collection");
    // --shard-parallel sizes the shard executor; without shards it would be
    // a silent no-op. 0/negative (and non-numeric, via get_int) are errors —
    // "no parallelism" is spelled --shard-parallel 1.
    int shard_parallel = 0;  // 0 = auto: min(K, hardware threads / ranks)
    if (args.has("shard-parallel")) {
      if (!sharded)
        throw tools::UsageError(
            "--shard-parallel requires a sharded reference (--shards K or "
            "repeated --targets)");
      const long j = args.get_int("shard-parallel", 0);
      if (j < 1)
        throw tools::UsageError("--shard-parallel must be >= 1, got " +
                                args.get("shard-parallel"));
      shard_parallel = static_cast<int>(j);
    }
    const bool prefetch = !args.has("no-prefetch");

    if (!sharded) {
      // ---- single-index path ---------------------------------------------
      const auto ref =
          core::IndexedReference::build_from_fasta(rt, target_files[0], icfg);
      obs::Log::info(
          "index built: %zu entries, %.3f simulated s "
          "(amortized over %zu batch%s)",
          ref.index_entries(), ref.build_report().total_time_s(),
          batches.size(), batches.size() == 1 ? "" : "es");
      if (args.has("stats")) ref.build_report().print(std::cerr);

      core::AlignSession session(ref, scfg);
      if (!load_cache_dir.empty())
        load_caches_or_usage_error(
            session, rt, load_cache_dir,
            load_cache_dir + "/" + cache::kSessionSnapshotFile);
      std::optional<core::SamFileSink> sam;
      core::CountingSink counter;
      if (!out.empty()) sam.emplace(out, ref, pg);
      core::AlignmentSink& sink =
          sam ? static_cast<core::AlignmentSink&>(*sam)
              : static_cast<core::AlignmentSink&>(counter);

      core::PipelineStats total;
      double align_time_s = 0.0;
      auto account_batch = [&](std::size_t b, const core::BatchResult& res) {
        align_time_s += res.total_time_s();
        total += res.stats;
        print_batch_line(b, batches.size(), batches[b], res.stats,
                         res.total_time_s());
        if (args.has("stats")) {
          res.report.print(std::cerr);
          res.stats.print(std::cerr);
        }
      };
      if (prefetch) {
        // Double-buffered stream: batch N+1 loads while batch N aligns;
        // per-batch lines print live as each batch completes.
        const auto stream =
            session.align_batch_files(rt, batches, sink, {}, account_batch);
        print_prefetch_line(stream.wall_s, stream.load_wall_s, stream.stall_s);
      } else {
        for (std::size_t b = 0; b < batches.size(); ++b) {
          const std::string db = ensure_seqdb(batches[b]);
          account_batch(b, session.align_batch_file(rt, db, sink));
        }
      }
      if (!save_cache_dir.empty()) {
        session.save_caches(
            rt, save_cache_dir + "/" + cache::kSessionSnapshotFile);
        print_save_line(save_cache_dir);
      }
      print_total_line(total, ref.build_report().total_time_s(), align_time_s);
      if (args.has("stats"))
        print_cache_totals(session.seed_cache_counters(),
                           session.target_cache_counters());
      write_observability_files(trace_path, metrics_path, metrics_format);
      return 0;
    }

    // ---- sharded path -----------------------------------------------------
    std::optional<shard::ShardedReference> ref;
    if (target_files.size() > 1) {
      ref = shard::ShardedReference::build_from_fastas(rt, target_files, icfg);
    } else {
      shard::ShardPlanOptions popt;
      popt.shards = static_cast<int>(shards_flag);
      popt.weight = parse_shard_weight(args.get("shard-by", "cost"));
      popt.k = icfg.k;
      const auto targets = seq::read_fasta(target_files[0]);
      ref = shard::ShardedReference::build(
          rt, targets, shard::plan_shards(targets, popt), icfg);
      if (ref->num_shards() != popt.shards)
        obs::Log::warn(
            "warning: --shards %d clamped to %d (one "
            "shard per target is the maximum)",
            popt.shards, ref->num_shards());
    }
    obs::Log::info(
        "sharded index built: %d shards, %u targets, "
        "%zu entries; build %.3f simulated s serial, %.3f s if each "
        "shard had its own runtime",
        ref->num_shards(), ref->num_targets(), ref->index_entries(),
        ref->build_time_serial_s(), ref->build_time_parallel_s());
    for (int s = 0; s < ref->num_shards(); ++s)
      obs::Log::info(
          "  shard %d: %u targets, %zu entries, "
          "build %.3f simulated s",
          s, ref->shard(s).targets().num_targets(),
          ref->shard(s).index_entries(),
          ref->shard(s).build_report().total_time_s());
    if (args.has("stats")) ref->build_report().print(std::cerr);

    shard::ShardedSessionConfig sscfg{scfg, shard_parallel};
    shard::ShardedAlignSession session(*ref, sscfg);
    obs::Log::info(
        "shard executor: %d of %d shards in parallel "
        "per batch (%s)",
        session.effective_parallelism(rt.nranks()), session.num_shards(),
        shard_parallel > 0 ? "--shard-parallel" : "auto");
    if (!load_cache_dir.empty())
      load_caches_or_usage_error(session, rt, load_cache_dir, load_cache_dir);
    std::optional<core::SamFileSink> sam;
    core::CountingSink counter;
    if (!out.empty()) sam.emplace(out, ref->sam_targets(), rt.nranks(), pg);
    core::AlignmentSink& sink =
        sam ? static_cast<core::AlignmentSink&>(*sam)
            : static_cast<core::AlignmentSink&>(counter);

    core::PipelineStats total;
    double align_serial_s = 0.0, align_parallel_s = 0.0;
    auto account_batch = [&](std::size_t b,
                             const shard::ShardedBatchResult& res) {
      align_serial_s += res.total_time_s();
      align_parallel_s += res.time_parallel_s();
      total += res.stats;
      print_batch_line(b, batches.size(), batches[b], res.stats,
                       res.total_time_s());
      if (args.has("stats")) {
        res.report.print(std::cerr);
        res.stats.print(std::cerr);
      }
    };
    if (prefetch) {
      const auto stream =
          session.align_batch_files(rt, batches, sink, {}, account_batch);
      print_prefetch_line(stream.wall_s, stream.load_wall_s, stream.stall_s);
    } else {
      for (std::size_t b = 0; b < batches.size(); ++b) {
        const std::string db = ensure_seqdb(batches[b]);
        account_batch(b, session.align_batch_file(rt, db, sink));
      }
    }
    if (!save_cache_dir.empty()) {
      session.save_caches(rt, save_cache_dir);
      print_save_line(save_cache_dir);
    }
    print_total_line(total, ref->build_time_serial_s(), align_serial_s);
    obs::Log::info(
        "per-runtime view (%d shards in parallel): "
        "%.3f s index + %.3f s aligning",
        ref->num_shards(), ref->build_time_parallel_s(), align_parallel_s);
    if (args.has("stats")) {
      cache::CacheCounters seed, target;
      for (int s = 0; s < session.num_shards(); ++s) {
        const auto& ss = session.shard_session(s);
        const auto sc = ss.seed_cache_counters();
        const auto tc = ss.target_cache_counters();
        seed.hits += sc.hits;
        seed.misses += sc.misses;
        seed.insertions += sc.insertions;
        seed.evictions += sc.evictions;
        seed.admission_rejects += sc.admission_rejects;
        target.hits += tc.hits;
        target.misses += tc.misses;
        target.insertions += tc.insertions;
        target.evictions += tc.evictions;
        target.admission_rejects += tc.admission_rejects;
      }
      print_cache_totals(seed, target);
    }
    write_observability_files(trace_path, metrics_path, metrics_format);
    return 0;
  } catch (const tools::UsageError& e) {
    std::fprintf(stderr, "meraligner: error: %s\n\n%s\n", e.what(), kUsage);
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "meraligner: error: %s\n", e.what());
    return 1;
  }
}
