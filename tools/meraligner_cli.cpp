// meraligner — command-line front end for the session-based pipeline.
//
// Usage:
//   meraligner --targets contigs.fa --reads batch1.{fastq,sdb}
//              [--reads batch2.fastq ...] [--out out.sam] [--k 51]
//              [--ranks 8] [--ppn 4] [--S 1000] [--max-hits 32]
//              [--fragment-len 1024] [--sw full|banded|striped] [--no-exact]
//              [--no-seed-cache] [--no-target-cache] [--no-aggregation]
//              [--no-permute] [--stats]
//
// The distributed seed index is built ONCE from --targets; every --reads
// batch is then streamed against it through one AlignSession, so batch N>1
// pays no index construction. With --out, all batches stream into a single
// SAM file (header once). Unknown flags are an error (exit 2), not ignored.
//
// FASTQ inputs are converted to a temporary SeqDB next to the input (the
// paper's one-time lossless preprocessing) so every rank can read its own
// byte range.
#include <cstdio>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "cli_util.hpp"
#include "core/align_session.hpp"
#include "core/alignment_sink.hpp"
#include "core/indexed_reference.hpp"
#include "seq/seqdb.hpp"

namespace {

constexpr const char* kUsage =
    "meraligner --targets contigs.fa --reads batch1.{fastq,sdb}\n"
    "           [--reads batch2.fastq ...] [--out out.sam] [--k 51]\n"
    "           [--ranks 8] [--ppn 4] [--S 1000] [--max-hits 32]\n"
    "           [--fragment-len 1024] [--sw full|banded|striped]\n"
    "           [--no-exact] [--no-seed-cache] [--no-target-cache]\n"
    "           [--no-aggregation] [--no-permute] [--stats]\n"
    "\n"
    "The index over --targets is built once; each --reads batch is aligned\n"
    "against it in order, streaming SAM into --out (one header, all batches).";

mera::align::SwKernel parse_kernel(const std::string& name) {
  using mera::align::SwKernel;
  if (name == "full") return SwKernel::kFullDP;
  if (name == "banded") return SwKernel::kBanded;
  if (name == "striped") return SwKernel::kStriped;
  throw mera::tools::UsageError("--sw expects full|banded|striped, got '" +
                                name + "'");
}

/// FASTQ batches get the one-time lossless SeqDB conversion.
std::string ensure_seqdb(const std::string& reads) {
  if (reads.size() > 3 &&
      (reads.ends_with(".fastq") || reads.ends_with(".fq"))) {
    const std::string db = reads + ".sdb";
    std::fprintf(stderr, "[meraligner] converting %s -> %s\n", reads.c_str(),
                 db.c_str());
    mera::seq::fastq_to_seqdb(reads, db);
    return db;
  }
  return reads;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mera;
  const tools::Args args(argc, argv);
  if (args.has("help") || argc == 1) {
    std::puts(kUsage);
    return argc == 1 ? 2 : 0;
  }
  try {
    args.check_known({"targets", "reads", "out", "k", "ranks", "ppn", "S",
                      "max-hits", "fragment-len", "sw", "no-exact",
                      "no-seed-cache", "no-target-cache", "no-aggregation",
                      "no-permute", "stats", "help"});
    const std::string targets = args.require("targets");
    std::vector<std::string> batches = args.get_all("reads");
    if (batches.empty()) throw tools::UsageError("missing required flag --reads");
    const std::string out = args.get("out");

    core::IndexConfig icfg;
    icfg.k = static_cast<int>(args.get_int("k", 51));
    icfg.buffer_S = static_cast<std::size_t>(args.get_int("S", 1000));
    icfg.fragment_len =
        static_cast<std::size_t>(args.get_int("fragment-len", 1024));
    icfg.exact_match = !args.has("no-exact");
    icfg.aggregating_stores = !args.has("no-aggregation");

    core::SessionConfig scfg;
    scfg.max_hits_per_seed =
        static_cast<std::size_t>(args.get_int("max-hits", 32));
    scfg.exact_match = icfg.exact_match;
    scfg.seed_cache = !args.has("no-seed-cache");
    scfg.target_cache = !args.has("no-target-cache");
    scfg.permute_queries = !args.has("no-permute");
    scfg.extension.kernel = parse_kernel(args.get("sw", "full"));

    const int nranks = static_cast<int>(args.get_int("ranks", 8));
    const int ppn = static_cast<int>(args.get_int("ppn", 4));
    pgas::Runtime rt(pgas::Topology(nranks, ppn));

    const auto ref = core::IndexedReference::build_from_fasta(rt, targets, icfg);
    std::fprintf(stderr,
                 "[meraligner] index built: %zu entries, %.3f simulated s "
                 "(amortized over %zu batch%s)\n",
                 ref.index_entries(), ref.build_report().total_time_s(),
                 batches.size(), batches.size() == 1 ? "" : "es");
    if (args.has("stats")) ref.build_report().print(std::cerr);

    core::AlignSession session(ref, scfg);
    std::optional<core::SamFileSink> sam;
    core::CountingSink counter;
    if (!out.empty()) sam.emplace(out, ref);
    core::AlignmentSink& sink =
        sam ? static_cast<core::AlignmentSink&>(*sam)
            : static_cast<core::AlignmentSink&>(counter);

    core::PipelineStats total;
    double align_time_s = 0.0;
    for (std::size_t b = 0; b < batches.size(); ++b) {
      const std::string db = ensure_seqdb(batches[b]);
      const auto res = session.align_batch_file(rt, db, sink);
      align_time_s += res.total_time_s();
      total += res.stats;
      std::fprintf(stderr,
                   "[meraligner] batch %zu/%zu (%s): %llu/%llu reads aligned "
                   "(%.1f%%), %llu alignments, %.3f simulated s (index reused)\n",
                   b + 1, batches.size(), batches[b].c_str(),
                   static_cast<unsigned long long>(res.stats.reads_aligned),
                   static_cast<unsigned long long>(res.stats.reads_processed),
                   100.0 * res.stats.aligned_fraction(),
                   static_cast<unsigned long long>(res.stats.alignments_reported),
                   res.total_time_s());
      if (args.has("stats")) {
        res.report.print(std::cerr);
        res.stats.print(std::cerr);
      }
    }

    std::fprintf(stderr,
                 "[meraligner] total: %llu/%llu reads aligned (%.1f%%), "
                 "%llu alignments, %.3f simulated s end-to-end "
                 "(%.3f s index + %.3f s aligning)\n",
                 static_cast<unsigned long long>(total.reads_aligned),
                 static_cast<unsigned long long>(total.reads_processed),
                 100.0 * total.aligned_fraction(),
                 static_cast<unsigned long long>(total.alignments_reported),
                 ref.build_report().total_time_s() + align_time_s,
                 ref.build_report().total_time_s(), align_time_s);
    return 0;
  } catch (const tools::UsageError& e) {
    std::fprintf(stderr, "meraligner: error: %s\n\n%s\n", e.what(), kUsage);
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "meraligner: error: %s\n", e.what());
    return 1;
  }
}
