// meralignerd — the always-on multi-tenant alignment daemon.
//
// Usage:
//   meralignerd --targets contigs.fa --socket /run/mera.sock
//               [--k 51] [--ranks 8] [--ppn 4] [--S 1000] [--max-hits 32]
//               [--fragment-len 1024] [--sw full|banded|striped|batch]
//               [--sw-isa auto|...] [--sw-pool on|off|N] [--no-exact]
//               [--no-seed-cache] [--no-target-cache] [--no-aggregation]
//               [--no-permute] [--cache-admission]
//               [--shards K] [--shard-by cost|bases] [--shard-parallel J]
//               [--cache-dir DIR] [--load-cache] [--autosave SECS]
//               [--max-frame-bytes N] [--quiet]
//
// The index over --targets is built (or --load-cache warm-started) ONCE;
// the daemon then serves any number of concurrent client connections over
// the UNIX-domain socket, each one tenant's stream of FASTQ/SeqDB batches
// answered with SAM bytes (see src/serve/framing.hpp for the protocol and
// tools/meraligner_client.cpp for a reference client). All tenants share
// one warm cache pool (--cache-admission arbitrates residency) and — when
// sharded — ONE process-wide shard executor: --shard-parallel J is a global
// budget for the whole daemon, not a per-connection knob.
//
// Persistence: --cache-dir DIR snapshots the caches there on shutdown and,
// with --autosave SECS, periodically while serving; --load-cache warm-starts
// from the same directory at boot. Snapshots land atomically (tmp + rename),
// so even kill -9 mid-save leaves the previous good snapshot intact.
//
// Shutdown: SIGINT/SIGTERM drain gracefully — stop accepting, finish and
// flush in-flight batches, save caches, remove the socket. SIGPIPE is
// ignored; a vanished client only kills its own connection.
//
// Metrics: any client can send a MetricsReq frame and receive the process
// MetricsRegistry in Prometheus text format (meraligner_client --metrics -),
// including the per-tenant (`tenant=`) cache/SW/phase/serve series.
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <optional>
#include <string>
#include <vector>

#include "cache/cache_snapshot.hpp"
#include "cli_util.hpp"
#include "core/align_session.hpp"
#include "exec/thread_pool.hpp"
#include "obs/log.hpp"
#include "seq/fasta.hpp"
#include "serve/backend.hpp"
#include "serve/daemon.hpp"
#include "shard/sharded_reference.hpp"
#include "shard/sharded_session.hpp"

namespace {

constexpr const char* kUsage =
    "meralignerd --targets contigs.fa --socket /run/mera.sock\n"
    "            [--k 51] [--ranks 8] [--ppn 4] [--S 1000] [--max-hits 32]\n"
    "            [--fragment-len 1024] [--sw full|banded|striped|batch]\n"
    "            [--sw-isa auto|scalar|sse2|avx2|avx512] [--sw-pool on|off|N]\n"
    "            [--no-exact] [--no-seed-cache] [--no-target-cache]\n"
    "            [--no-aggregation] [--no-permute] [--cache-admission]\n"
    "            [--shards K] [--shard-by cost|bases] [--shard-parallel J]\n"
    "            [--cache-dir DIR] [--load-cache] [--autosave SECS]\n"
    "            [--max-frame-bytes N] [--quiet]\n"
    "\n"
    "Builds (or --load-cache warm-starts) the index ONCE, then serves many\n"
    "concurrent tenant query streams over the UNIX-domain socket: length-\n"
    "prefixed frames, FASTQ/SeqDB batch in, SAM bytes out (protocol in\n"
    "src/serve/framing.hpp; reference client: meraligner_client). Tenants\n"
    "share one warm cache pool and one process-wide shard executor\n"
    "(--shard-parallel J is a global budget). --cache-dir DIR saves cache\n"
    "snapshots there on shutdown (and every --autosave SECS while serving,\n"
    "atomically - a crash never loses the last good snapshot); --load-cache\n"
    "warm-starts from that directory. SIGINT/SIGTERM drain gracefully.\n"
    "Clients can scrape the Prometheus metrics (incl. tenant= series) with\n"
    "a MetricsReq frame: meraligner_client --socket S --metrics -.";

mera::align::SwKernel parse_kernel(const std::string& name) {
  using mera::align::SwKernel;
  if (name == "full") return SwKernel::kFullDP;
  if (name == "banded") return SwKernel::kBanded;
  if (name == "striped") return SwKernel::kStriped;
  if (name == "batch") return SwKernel::kBatch;
  throw mera::tools::UsageError(
      "--sw expects full|banded|striped|batch, got '" + name + "'");
}

mera::align::SwIsa parse_sw_isa(const std::string& name) {
  const auto isa = mera::align::parse_isa(name);
  if (!isa)
    throw mera::tools::UsageError(
        "--sw-isa expects auto|scalar|sse2|avx2|avx512, got '" + name + "'");
  if (!mera::align::isa_supported(*isa))
    throw mera::tools::UsageError(
        "--sw-isa " + name +
        ": tier not available (not compiled in or not supported by this CPU)");
  return *isa;
}

std::size_t parse_sw_pool(const std::string& v) {
  if (v == "on") return 1;
  if (v == "off") return 0;
  char* end = nullptr;
  const long n = std::strtol(v.c_str(), &end, 10);
  if (end == v.c_str() || *end != '\0' || n < 1)
    throw mera::tools::UsageError("--sw-pool expects on|off|N (N >= 1), got '" +
                                  v + "'");
  return static_cast<std::size_t>(n);
}

mera::shard::ShardWeight parse_shard_weight(const std::string& name) {
  using mera::shard::ShardWeight;
  if (name == "cost") return ShardWeight::kCostModel;
  if (name == "bases") return ShardWeight::kBases;
  throw mera::tools::UsageError("--shard-by expects cost|bases, got '" + name +
                                "'");
}

std::string command_line_of(int argc, char** argv) {
  std::string cl;
  for (int i = 0; i < argc; ++i) {
    if (i) cl += ' ';
    cl += argv[i];
  }
  return cl;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mera;
  obs::Log::set_prefix("[meralignerd] ");
  const tools::Args args(argc, argv);
  if (args.has("help") || argc == 1) {
    std::puts(kUsage);
    return argc == 1 ? 2 : 0;
  }
  try {
    args.check_known({"targets", "socket", "k", "ranks", "ppn", "S",
                      "max-hits", "fragment-len", "sw", "sw-isa", "sw-pool",
                      "no-exact", "no-seed-cache", "no-target-cache",
                      "no-aggregation", "no-permute", "cache-admission",
                      "shards", "shard-by", "shard-parallel", "cache-dir",
                      "load-cache", "autosave", "max-frame-bytes", "quiet",
                      "help"});
    if (args.has("quiet")) obs::Log::set_level(obs::LogLevel::kError);
    const std::vector<std::string> target_files = args.get_all("targets");
    if (target_files.empty())
      throw tools::UsageError("missing required flag --targets");
    const std::string socket_path = args.get("socket");
    if (socket_path.empty() || socket_path == "1")
      throw tools::UsageError("missing required flag --socket PATH");

    core::IndexConfig icfg;
    icfg.k = static_cast<int>(args.get_int("k", 51));
    icfg.buffer_S = static_cast<std::size_t>(args.get_int("S", 1000));
    icfg.fragment_len =
        static_cast<std::size_t>(args.get_int("fragment-len", 1024));
    icfg.exact_match = !args.has("no-exact");
    icfg.aggregating_stores = !args.has("no-aggregation");

    core::SessionConfig scfg;
    scfg.max_hits_per_seed =
        static_cast<std::size_t>(args.get_int("max-hits", 32));
    scfg.exact_match = icfg.exact_match;
    scfg.seed_cache = !args.has("no-seed-cache");
    scfg.target_cache = !args.has("no-target-cache");
    scfg.permute_queries = !args.has("no-permute");
    scfg.extension.kernel = parse_kernel(args.get("sw", "full"));
    if (args.has("sw-isa")) {
      if (scfg.extension.kernel != align::SwKernel::kBatch)
        throw tools::UsageError("--sw-isa requires --sw batch");
      scfg.extension.isa = parse_sw_isa(args.get("sw-isa"));
    }
    if (args.has("sw-pool")) {
      if (scfg.extension.kernel != align::SwKernel::kBatch)
        throw tools::UsageError("--sw-pool requires --sw batch");
      scfg.sw_pooling = parse_sw_pool(args.get("sw-pool"));
    }
    scfg.cache_admission = args.has("cache-admission");

    serve::DaemonConfig dcfg;
    dcfg.socket_path = socket_path;
    dcfg.cache_dir = args.get("cache-dir");
    if (args.has("cache-dir") && dcfg.cache_dir.empty())
      throw tools::UsageError("--cache-dir expects a directory");
    if (args.has("autosave")) {
      if (dcfg.cache_dir.empty())
        throw tools::UsageError("--autosave requires --cache-dir");
      const long s = args.get_int("autosave", 0);
      if (s < 1)
        throw tools::UsageError("--autosave expects seconds >= 1");
      dcfg.autosave_interval_s = static_cast<double>(s);
    }
    if (args.has("max-frame-bytes")) {
      const long n = args.get_int("max-frame-bytes", 0);
      if (n < 1024)
        throw tools::UsageError("--max-frame-bytes must be >= 1024");
      dcfg.max_frame_bytes = static_cast<std::uint64_t>(n);
    }
    const bool load_cache = args.has("load-cache");
    if (load_cache && dcfg.cache_dir.empty())
      throw tools::UsageError("--load-cache requires --cache-dir");
    if (load_cache && !std::filesystem::is_directory(dcfg.cache_dir))
      throw tools::UsageError("--load-cache: " + dcfg.cache_dir +
                              " is not a directory");

    const int nranks = static_cast<int>(args.get_int("ranks", 8));
    const int ppn = static_cast<int>(args.get_int("ppn", 4));
    const pgas::Topology topo(nranks, ppn);
    pgas::Runtime build_rt(topo);

    dcfg.program.name = "meralignerd";
    dcfg.program.command_line = command_line_of(argc, argv);

    const long shards_flag = args.get_int("shards", 0);
    if (args.has("shards") && shards_flag < 1)
      throw tools::UsageError("--shards must be >= 1");
    if (target_files.size() > 1 && shards_flag != 0 &&
        shards_flag != static_cast<long>(target_files.size()))
      throw tools::UsageError(
          "--shards conflicts with repeated --targets (one shard per file)");
    const bool sharded = target_files.size() > 1 || shards_flag > 1;
    if (args.has("shard-by") && (target_files.size() > 1 || shards_flag < 2))
      throw tools::UsageError(
          "--shard-by requires --shards K (K >= 2) with a single --targets "
          "collection");
    int shard_parallel = 0;
    if (args.has("shard-parallel")) {
      if (!sharded)
        throw tools::UsageError(
            "--shard-parallel requires a sharded reference (--shards K or "
            "repeated --targets)");
      const long j = args.get_int("shard-parallel", 0);
      if (j < 1)
        throw tools::UsageError("--shard-parallel must be >= 1, got " +
                                args.get("shard-parallel"));
      shard_parallel = static_cast<int>(j);
    }

    // ---- build the warm engine once ----------------------------------------
    // The shard executor (when any) is created HERE, sized once, and handed
    // to the session: every tenant's batches share this one pool — J is a
    // process-wide budget, however many clients connect.
    std::optional<exec::ThreadPool> pool;
    std::optional<serve::Backend> backend;
    if (!sharded) {
      auto ref =
          core::IndexedReference::build_from_fasta(build_rt, target_files[0],
                                                   icfg);
      obs::Log::info("index built: %zu entries, %.3f simulated s",
                     ref.index_entries(), ref.build_report().total_time_s());
      backend.emplace(std::move(ref), scfg);
    } else {
      std::optional<shard::ShardedReference> ref;
      if (target_files.size() > 1) {
        ref = shard::ShardedReference::build_from_fastas(build_rt,
                                                         target_files, icfg);
      } else {
        shard::ShardPlanOptions popt;
        popt.shards = static_cast<int>(shards_flag);
        popt.weight = parse_shard_weight(args.get("shard-by", "cost"));
        popt.k = icfg.k;
        const auto targets = seq::read_fasta(target_files[0]);
        ref = shard::ShardedReference::build(
            build_rt, targets, shard::plan_shards(targets, popt), icfg);
      }
      obs::Log::info("sharded index built: %d shards, %u targets, %zu entries",
                     ref->num_shards(), ref->num_targets(),
                     ref->index_entries());
      shard::ShardedSessionConfig sscfg{scfg, shard_parallel, nullptr};
      const int J = shard_parallel > 0
                        ? shard_parallel
                        : exec::ThreadPool::default_parallelism(
                              ref->num_shards(), nranks);
      if (J > 1) {
        pool.emplace(J);
        sscfg.pool = &*pool;
        obs::Log::info("global shard executor: %d workers (process-wide)", J);
      }
      backend.emplace(std::move(*ref), sscfg);
    }
    if (load_cache) {
      try {
        backend->load_caches(build_rt, dcfg.cache_dir);
        obs::Log::info("warm caches loaded from %s", dcfg.cache_dir.c_str());
      } catch (const mera::cache::CacheSnapshotError& e) {
        throw tools::UsageError("--load-cache " + dcfg.cache_dir + ": " +
                                e.what());
      }
    }

    serve::Daemon daemon(std::move(*backend), topo, dcfg);
    serve::Daemon::install_signal_handlers(daemon);
    daemon.start();
    daemon.wait();
    return 0;
  } catch (const tools::UsageError& e) {
    std::fprintf(stderr, "meralignerd: error: %s\n\n%s\n", e.what(), kUsage);
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "meralignerd: error: %s\n", e.what());
    return 1;
  }
}
