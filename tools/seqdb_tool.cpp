// seqdb_tool — convert and inspect SeqDB containers (Section V-A).
//
// Usage:
//   seqdb_tool convert in.fastq out.sdb [--no-quality]
//   seqdb_tool info    file.sdb
//   seqdb_tool dump    file.sdb [--n 10] [--fastq]
//   seqdb_tool partition file.sdb --ranks 8      (show per-rank record ranges)
#include <cstdio>
#include <string>

#include "cli_util.hpp"
#include "seq/fastq.hpp"
#include "seq/seqdb.hpp"

namespace {

int cmd_convert(const mera::tools::Args& args) {
  const auto& pos = args.positional();
  if (pos.size() != 3) {
    std::fprintf(stderr, "usage: seqdb_tool convert in.fastq out.sdb\n");
    return 1;
  }
  mera::seq::fastq_to_seqdb(pos[1], pos[2], !args.has("no-quality"));
  mera::seq::SeqDBReader db(pos[2]);
  std::printf("wrote %zu records to %s (quality %s)\n", db.size(),
              pos[2].c_str(), db.has_quality() ? "kept" : "dropped");
  return 0;
}

int cmd_info(const mera::tools::Args& args) {
  const auto& pos = args.positional();
  if (pos.size() != 2) {
    std::fprintf(stderr, "usage: seqdb_tool info file.sdb\n");
    return 1;
  }
  mera::seq::SeqDBReader db(pos[1]);
  std::size_t bases = 0, with_n = 0;
  std::size_t min_len = SIZE_MAX, max_len = 0;
  for (std::size_t i = 0; i < db.size(); ++i) {
    const auto r = db.read_packed(i);
    bases += r.seq.size();
    with_n += r.n_pos.empty() ? 0u : 1u;
    min_len = std::min(min_len, r.seq.size());
    max_len = std::max(max_len, r.seq.size());
  }
  std::printf("records:       %zu\n", db.size());
  std::printf("bases:         %zu\n", bases);
  std::printf("read length:   %zu-%zu\n", db.size() ? min_len : 0, max_len);
  std::printf("reads with N:  %zu\n", with_n);
  std::printf("qualities:     %s\n", db.has_quality() ? "stored" : "absent");
  return 0;
}

int cmd_dump(const mera::tools::Args& args) {
  const auto& pos = args.positional();
  if (pos.size() != 2) {
    std::fprintf(stderr, "usage: seqdb_tool dump file.sdb [--n 10]\n");
    return 1;
  }
  mera::seq::SeqDBReader db(pos[1]);
  const auto n = std::min<std::size_t>(
      db.size(), static_cast<std::size_t>(args.get_int("n", 10)));
  const bool as_fastq = args.has("fastq");
  for (std::size_t i = 0; i < n; ++i) {
    const auto rec = db.read(i);
    if (as_fastq)
      std::printf("@%s\n%s\n+\n%s\n", rec.name.c_str(), rec.seq.c_str(),
                  rec.qual.empty() ? std::string(rec.seq.size(), 'I').c_str()
                                   : rec.qual.c_str());
    else
      std::printf("%-30s %zu bp  %s\n", rec.name.c_str(), rec.seq.size(),
                  rec.seq.substr(0, 60).c_str());
  }
  return 0;
}

int cmd_partition(const mera::tools::Args& args) {
  const auto& pos = args.positional();
  if (pos.size() != 2) {
    std::fprintf(stderr, "usage: seqdb_tool partition file.sdb --ranks 8\n");
    return 1;
  }
  mera::seq::SeqDBReader db(pos[1]);
  const int nranks = static_cast<int>(args.get_int("ranks", 8));
  std::printf("%zu records over %d ranks:\n", db.size(), nranks);
  for (int r = 0; r < nranks; ++r) {
    const auto [lo, hi] = db.partition(r, nranks);
    std::printf("  rank %3d: [%zu, %zu)  %zu records\n", r, lo, hi, hi - lo);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const mera::tools::Args args(argc, argv);
    const auto& pos = args.positional();
    if (pos.empty()) {
      std::fprintf(stderr,
                   "usage: seqdb_tool {convert|info|dump|partition} ...\n");
      return 1;
    }
    if (pos[0] == "convert") return cmd_convert(args);
    if (pos[0] == "info") return cmd_info(args);
    if (pos[0] == "dump") return cmd_dump(args);
    if (pos[0] == "partition") return cmd_partition(args);
    std::fprintf(stderr, "unknown subcommand '%s'\n", pos[0].c_str());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "seqdb_tool: error: %s\n", e.what());
    return 1;
  }
}
