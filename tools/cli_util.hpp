// Minimal flag parsing shared by the command-line tools.
#pragma once

#include <cstdlib>
#include <initializer_list>
#include <map>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace mera::tools {

/// A bad invocation (unknown flag, missing required flag, malformed value).
/// Tools catch this separately from runtime errors so they can print the
/// usage text and exit with a distinct status.
class UsageError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      std::string a = argv[i];
      if (a.rfind("--", 0) == 0) {
        const auto eq = a.find('=');
        if (eq != std::string::npos) {
          flags_[a.substr(2, eq - 2)].push_back(a.substr(eq + 1));
        } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
          flags_[a.substr(2)].push_back(argv[++i]);
        } else {
          flags_[a.substr(2)].push_back("1");  // boolean flag
        }
      } else {
        positional_.push_back(std::move(a));
      }
    }
  }

  [[nodiscard]] bool has(const std::string& name) const {
    return flags_.count(name) != 0;
  }
  /// Last occurrence wins for single-valued flags.
  [[nodiscard]] std::string get(const std::string& name,
                                const std::string& def = "") const {
    const auto it = flags_.find(name);
    return it == flags_.end() ? def : it->second.back();
  }
  [[nodiscard]] long get_int(const std::string& name, long def) const {
    const auto it = flags_.find(name);
    if (it == flags_.end()) return def;
    try {
      return std::stol(it->second.back());
    } catch (const std::exception&) {
      throw UsageError("flag --" + name + " expects an integer, got '" +
                       it->second.back() + "'");
    }
  }
  [[nodiscard]] std::string require(const std::string& name) const {
    const auto it = flags_.find(name);
    if (it == flags_.end())
      throw UsageError("missing required flag --" + name);
    return it->second.back();
  }
  /// Every occurrence of a repeatable flag, in command-line order.
  [[nodiscard]] std::vector<std::string> get_all(const std::string& name) const {
    const auto it = flags_.find(name);
    return it == flags_.end() ? std::vector<std::string>{} : it->second;
  }
  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

  /// Reject flags outside `known` (and stray positional arguments) instead of
  /// silently ignoring them.
  void check_known(std::initializer_list<std::string_view> known) const {
    for (const auto& [name, values] : flags_) {
      bool ok = false;
      for (const auto& k : known) ok = ok || k == name;
      if (!ok) throw UsageError("unknown flag --" + name);
    }
    if (!positional_.empty())
      throw UsageError("unexpected argument '" + positional_.front() + "'");
  }

 private:
  std::map<std::string, std::vector<std::string>> flags_;
  std::vector<std::string> positional_;
};

}  // namespace mera::tools
