// Minimal flag parsing shared by the command-line tools.
#pragma once

#include <cstdlib>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

namespace mera::tools {

class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      std::string a = argv[i];
      if (a.rfind("--", 0) == 0) {
        const auto eq = a.find('=');
        if (eq != std::string::npos) {
          flags_[a.substr(2, eq - 2)] = a.substr(eq + 1);
        } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
          flags_[a.substr(2)] = argv[++i];
        } else {
          flags_[a.substr(2)] = "1";  // boolean flag
        }
      } else {
        positional_.push_back(std::move(a));
      }
    }
  }

  [[nodiscard]] bool has(const std::string& name) const {
    return flags_.count(name) != 0;
  }
  [[nodiscard]] std::string get(const std::string& name,
                                const std::string& def = "") const {
    const auto it = flags_.find(name);
    return it == flags_.end() ? def : it->second;
  }
  [[nodiscard]] long get_int(const std::string& name, long def) const {
    const auto it = flags_.find(name);
    return it == flags_.end() ? def : std::stol(it->second);
  }
  [[nodiscard]] std::string require(const std::string& name) const {
    const auto it = flags_.find(name);
    if (it == flags_.end())
      throw std::runtime_error("missing required flag --" + name);
    return it->second;
  }
  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

 private:
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace mera::tools
