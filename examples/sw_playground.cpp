// Alignment-kernel playground: align two sequences from the command line and
// print the full local alignment — reference DP, banded DP, and the striped
// SIMD kernel side by side. Handy for exploring scoring schemes.
//
// Usage: sw_playground [query target [match mismatch gap_open gap_extend]]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "align/banded_sw.hpp"
#include "align/smith_waterman.hpp"
#include "align/striped_sw.hpp"

namespace {

void print_alignment(const std::string& q, const std::string& t,
                     const mera::align::LocalAlignment& aln) {
  using mera::align::CigarOp;
  std::string top, mid, bot;
  std::size_t qi = aln.q_begin, ti = aln.t_begin;
  for (const auto& e : aln.cigar.elems()) {
    switch (e.op) {
      case CigarOp::kSoftClip:
        break;
      case CigarOp::kMatch:
        for (std::uint32_t i = 0; i < e.len; ++i, ++qi, ++ti) {
          top += q[qi];
          bot += t[ti];
          mid += q[qi] == t[ti] ? '|' : 'x';
        }
        break;
      case CigarOp::kInsert:
        for (std::uint32_t i = 0; i < e.len; ++i, ++qi) {
          top += q[qi];
          bot += '-';
          mid += ' ';
        }
        break;
      case CigarOp::kDelete:
        for (std::uint32_t i = 0; i < e.len; ++i, ++ti) {
          top += '-';
          bot += t[ti];
          mid += ' ';
        }
        break;
    }
  }
  std::printf("  query  %4zu  %s\n", aln.q_begin, top.c_str());
  std::printf("               %s\n", mid.c_str());
  std::printf("  target %4zu  %s\n", aln.t_begin, bot.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mera::align;
  std::string q = "GGGACGTACGTTACGTACGTCCC";
  std::string t = "TTTTACGTACGTACGTACGTTTTT";
  Scoring sc;
  if (argc >= 3) {
    q = argv[1];
    t = argv[2];
  }
  if (argc >= 7) {
    sc.match = std::atoi(argv[3]);
    sc.mismatch = std::atoi(argv[4]);
    sc.gap_open = std::atoi(argv[5]);
    sc.gap_extend = std::atoi(argv[6]);
  }

  std::printf("scoring: match=%+d mismatch=%+d gap_open=%d gap_extend=%d\n\n",
              sc.match, sc.mismatch, sc.gap_open, sc.gap_extend);

  const auto aln = smith_waterman(q, t, sc);
  std::printf("reference full-DP:  score=%d  cigar=%s  mismatches=%d\n",
              aln.score, aln.cigar.to_string().c_str(), aln.mismatches);
  print_alignment(q, t, aln);

  const auto qc = dna_codes(q);
  const auto tc = dna_codes(t);
  const auto banded = banded_smith_waterman(
      std::span<const std::uint8_t>(qc), std::span<const std::uint8_t>(tc),
      static_cast<std::ptrdiff_t>(aln.t_begin) -
          static_cast<std::ptrdiff_t>(aln.q_begin),
      16, sc);
  std::printf("\nbanded (band=16):   score=%d  cigar=%s\n", banded.score,
              banded.cigar.to_string().c_str());

  const StripedSmithWaterman ssw(q, sc);
  const auto sres = ssw.align(t);
  std::printf("striped SIMD:       score=%d  t_end=%zu  (%s, %s)\n",
              sres.score, sres.t_end,
              StripedSmithWaterman::simd_enabled() ? "SSE2" : "scalar",
              sres.used_16bit ? "16-bit lanes" : "8-bit lanes");

  if (sres.score == aln.score && banded.score == aln.score)
    std::printf("\nall three kernels agree on the optimal score.\n");
  else
    std::printf("\nNOTE: banded kernel may miss optima outside its band.\n");
  return 0;
}
