// Scaffolding example: the Meraculous use case that motivated merAligner.
//
// In a de novo assembly pipeline, contigs have just been generated and the
// scaffolder needs to know which contigs are adjacent. That evidence comes
// from aligning *paired* reads back onto the contigs: a pair whose two mates
// align to different contigs "links" those contigs, and the insert size
// constrains the gap between them. This example runs the full step:
//
//   genome -> contigs (with gaps)  +  paired reads
//   -> merAligner (reads vs contigs)
//   -> core::Scaffolder (links, gap estimates, contig chains)
//   -> scaffold report vs ground truth
#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "core/scaffold.hpp"
#include "seq/genome_sim.hpp"
#include "seq/read_sim.hpp"

int main() {
  using namespace mera;

  // Assembly state: contigs cover the genome with unassembled gaps.
  const std::string genome = seq::simulate_genome({.length = 400'000,
                                                   .repeat_fraction = 0.02,
                                                   .rng_seed = 7});
  seq::ContigParams cp;
  cp.min_len = 1500;
  cp.max_len = 6000;
  cp.gap_min = 20;
  cp.gap_max = 300;
  cp.rng_seed = 8;
  const auto contigs = chop_into_contigs(genome, cp);

  // Paired-end library, insert 700 +- 40: long enough to span contig gaps.
  seq::ReadSimParams rp;
  rp.read_len = 101;
  rp.depth = 6.0;
  rp.paired = true;
  rp.insert_mean = 700;
  rp.insert_sd = 40;
  rp.error_rate = 0.004;
  rp.grouped = false;  // keep mates adjacent in the file
  rp.rng_seed = 9;
  const auto reads = simulate_reads(genome, rp);
  std::printf("scaffolding input: %zu contigs, %zu paired reads\n",
              contigs.size(), reads.size());

  // Align reads onto contigs (the rate-limiting Meraculous step).
  core::AlignerConfig cfg;
  cfg.k = 31;
  cfg.fragment_len = 2048;
  cfg.permute_queries = false;  // mates must stay pairable by index
  pgas::Runtime rt(pgas::Topology(8, 4));
  const auto res = core::MerAligner(cfg).align(rt, contigs, reads);
  std::printf("aligned %.1f%% of reads (%.1f%% via exact-match fast path)\n",
              100.0 * res.stats.aligned_fraction(),
              100.0 * res.stats.exact_fraction());

  // Best alignment per read, then hand mate pairs to the scaffolder.
  std::map<std::string, core::AlignmentRecord> best;
  for (const auto& a : res.alignments) {
    auto it = best.find(a.query_name);
    if (it == best.end() || a.score > it->second.score)
      best[a.query_name] = a;
  }
  std::vector<core::AlignmentRecord> per_read(reads.size());
  std::vector<bool> aligned(reads.size(), false);
  for (std::size_t i = 0; i < reads.size(); ++i) {
    const auto it = best.find(reads[i].name);
    if (it != best.end()) {
      per_read[i] = it->second;
      aligned[i] = true;
    }
  }

  std::vector<std::size_t> lengths;
  lengths.reserve(contigs.size());
  for (const auto& c : contigs) lengths.push_back(c.seq.size());
  core::Scaffolder scaffolder(lengths,
                              {.insert_mean = rp.insert_mean, .min_links = 4});
  scaffolder.add_pairs(
      core::Scaffolder::pair_adjacent(per_read, aligned));

  // Link quality vs ground truth.
  const auto links = scaffolder.links();
  int adjacent_links = 0;
  for (const auto& l : links) adjacent_links += (l.to == l.from + 1) ? 1 : 0;
  std::printf("\n%zu accepted links, %d connect truly adjacent contigs "
              "(%.1f%%)\n",
              links.size(), adjacent_links,
              links.empty() ? 0.0 : 100.0 * adjacent_links / links.size());

  // Build scaffolds and compare gap estimates with the simulated truth.
  const auto scaffolds = scaffolder.build();
  std::size_t in_chains = 0;
  for (const auto& s : scaffolds)
    if (s.contigs.size() > 1) in_chains += s.contigs.size();
  std::printf("scaffolds: %zu chains covering %zu of %zu contigs\n",
              scaffolds.size(), in_chains, contigs.size());

  const auto& main_sc = scaffolds.front();
  std::printf("\nlargest scaffold (%zu contigs):\n", main_sc.contigs.size());
  std::printf("%-26s %-26s %12s %12s\n", "contig", "next", "est.gap",
              "true gap");
  for (std::size_t i = 0; i + 1 < main_sc.contigs.size() && i < 12; ++i) {
    const auto a = main_sc.contigs[i];
    const auto b = main_sc.contigs[i + 1];
    const auto ta = seq::parse_contig_truth(contigs[a].name);
    const auto tb = seq::parse_contig_truth(contigs[b].name);
    const long true_gap = tb.start >= ta.end
                              ? static_cast<long>(tb.start - ta.end)
                              : -static_cast<long>(ta.end - tb.start);
    std::printf("%-26s %-26s %12.0f %12ld\n", contigs[a].name.c_str(),
                contigs[b].name.c_str(), main_sc.gaps[i], true_gap);
  }
  return 0;
}
