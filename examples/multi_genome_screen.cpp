// Multi-genome screening: the "GenBank-scale" generalization sketched in the
// paper's conclusions — because the seed index is distributed, a reference
// collection too big for any single node's memory can still be indexed and
// screened against.
//
// Scenario: a read set of unknown origin is screened against a collection of
// reference "genomes" (e.g. a contamination check). Each read is attributed
// to the reference whose alignment scores best; per-reference read counts
// identify the sample's composition.
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "seq/genome_sim.hpp"
#include "seq/read_sim.hpp"

int main() {
  using namespace mera;

  // A reference collection of 6 unrelated "genomes".
  const int kGenomes = 6;
  std::vector<std::string> genomes;
  std::vector<seq::SeqRecord> references;  // one target per genome here
  for (int g = 0; g < kGenomes; ++g) {
    genomes.push_back(seq::simulate_genome(
        {.length = 120'000, .repeat_fraction = 0.02,
         .rng_seed = 100 + static_cast<std::uint64_t>(g)}));
    seq::SeqRecord rec;
    rec.name = "genome" + std::to_string(g) + ":0-" +
               std::to_string(genomes.back().size());
    rec.seq = genomes.back();
    references.push_back(std::move(rec));
  }

  // The sample: 70% genome2, 25% genome5, 5% junk.
  std::vector<seq::SeqRecord> sample;
  auto add_reads = [&](int g, double depth, std::uint64_t seed) {
    seq::ReadSimParams rp;
    rp.read_len = 101;
    rp.depth = depth;
    rp.error_rate = 0.01;
    rp.junk_fraction = 0.0;
    rp.rng_seed = seed;
    for (auto& r : simulate_reads(genomes[static_cast<std::size_t>(g)], rp)) {
      r.name = "g" + std::to_string(g) + "_" + r.name;
      sample.push_back(std::move(r));
    }
  };
  add_reads(2, 1.4, 201);
  add_reads(5, 0.5, 202);
  {
    seq::ReadSimParams rp;  // junk reads: sampled but fully random
    rp.read_len = 101;
    rp.depth = 0.1;
    rp.junk_fraction = 1.0;
    rp.rng_seed = 203;
    for (auto& r : simulate_reads(genomes[0], rp)) {
      r.name = "junk_" + r.name;
      sample.push_back(std::move(r));
    }
  }
  std::printf("screening %zu reads against %d reference genomes (%zu kb total)\n",
              sample.size(), kGenomes,
              kGenomes * genomes[0].size() / 1000);

  // Screen: note the whole reference collection is *distributed* — no rank
  // holds more than its shard of the seed index and targets.
  core::AlignerConfig cfg;
  cfg.k = 31;
  cfg.fragment_len = 4096;
  cfg.max_hits_per_seed = 8;  // screening favours speed over sensitivity
  pgas::Runtime rt(pgas::Topology(12, 4));
  const auto res = core::MerAligner(cfg).align(rt, references, sample);

  // Attribute each read to its best-scoring reference.
  std::map<std::string, std::pair<std::uint32_t, int>> best;
  for (const auto& a : res.alignments) {
    auto& b = best[a.query_name];
    if (a.score > b.second) b = {a.target_id, a.score};
  }
  std::vector<int> per_genome(static_cast<std::size_t>(kGenomes), 0);
  int unassigned = 0, misattributed = 0;
  for (const auto& r : sample) {
    const auto it = best.find(r.name);
    if (it == best.end()) {
      ++unassigned;
      continue;
    }
    const auto gid = it->second.first;
    ++per_genome[gid];
    // Ground truth is encoded in the read name prefix.
    if (r.name[0] == 'g' &&
        r.name[1] != static_cast<char>('0' + gid))
      ++misattributed;
  }

  std::printf("\n%-12s %10s %10s\n", "reference", "reads", "share");
  for (int g = 0; g < kGenomes; ++g)
    std::printf("genome%-6d %10d %9.1f%%\n", g, per_genome[g],
                100.0 * per_genome[g] / static_cast<double>(sample.size()));
  std::printf("%-12s %10d %9.1f%%\n", "unassigned", unassigned,
              100.0 * unassigned / static_cast<double>(sample.size()));
  std::printf("\nmisattributed reads: %d (%.2f%%)\n", misattributed,
              100.0 * misattributed / static_cast<double>(sample.size()));
  std::printf("expected composition: ~70%% genome2, ~25%% genome5, ~5%% junk\n");
  return 0;
}
