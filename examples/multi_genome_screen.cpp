// Multi-genome screening: the "GenBank-scale" generalization sketched in the
// paper's conclusions — because the seed index is distributed, a reference
// collection too big for any single node's memory can still be indexed and
// screened against.
//
// Scenario: a screening service. The reference collection is indexed ONCE
// (core::IndexedReference); then sample after sample is streamed against it
// through one core::AlignSession — each batch pays only io.reads + align,
// never index reconstruction, which is what makes per-sample screening cheap.
// Each read is attributed to the reference whose alignment scores best;
// per-reference read counts identify every sample's composition.
//
// The second half re-runs the same screening against a SHARDED reference
// (shard::ShardedReference): the collection split into 3 per-runtime index
// shards, composed back into one logical reference. Sample attribution must
// come out the same — sharding decides placement, not results — while each
// shard's build cost is a fraction of the monolithic one.
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "core/align_session.hpp"
#include "core/indexed_reference.hpp"
#include "seq/genome_sim.hpp"
#include "seq/read_sim.hpp"
#include "shard/sharded_reference.hpp"
#include "shard/sharded_session.hpp"

namespace {

using mera::seq::SeqRecord;

std::vector<SeqRecord> make_sample(
    const std::vector<std::string>& genomes,
    const std::vector<std::pair<int, double>>& mix, double junk_depth,
    std::uint64_t seed) {
  std::vector<SeqRecord> sample;
  for (const auto& [g, depth] : mix) {
    mera::seq::ReadSimParams rp;
    rp.read_len = 101;
    rp.depth = depth;
    rp.error_rate = 0.01;
    rp.junk_fraction = 0.0;
    rp.rng_seed = seed++;
    for (auto& r : simulate_reads(genomes[static_cast<std::size_t>(g)], rp)) {
      r.name = "g" + std::to_string(g) + "_" + r.name;
      sample.push_back(std::move(r));
    }
  }
  if (junk_depth > 0) {
    mera::seq::ReadSimParams rp;  // junk reads: sampled but fully random
    rp.read_len = 101;
    rp.depth = junk_depth;
    rp.junk_fraction = 1.0;
    rp.rng_seed = seed;
    for (auto& r : simulate_reads(genomes[0], rp)) {
      r.name = "junk_" + r.name;
      sample.push_back(std::move(r));
    }
  }
  return sample;
}

struct Attribution {
  std::vector<int> per_genome;
  int unassigned = 0;
  int misattributed = 0;
};

/// Attribute each read to its best-scoring reference (ground truth is in the
/// read name prefix).
Attribution attribute(const std::vector<mera::core::AlignmentRecord>& alns,
                      const std::vector<SeqRecord>& reads, int n_genomes) {
  std::map<std::string, std::pair<std::uint32_t, int>> best;
  for (const auto& a : alns) {
    auto& b = best[a.query_name];
    if (a.score > b.second) b = {a.target_id, a.score};
  }
  Attribution at;
  at.per_genome.assign(static_cast<std::size_t>(n_genomes), 0);
  for (const auto& r : reads) {
    const auto it = best.find(r.name);
    if (it == best.end()) {
      ++at.unassigned;
      continue;
    }
    const auto gid = it->second.first;
    ++at.per_genome[gid];
    if (r.name[0] == 'g' && r.name[1] != static_cast<char>('0' + gid))
      ++at.misattributed;
  }
  return at;
}

}  // namespace

int main() {
  using namespace mera;

  // A reference collection of 6 unrelated "genomes".
  const int kGenomes = 6;
  std::vector<std::string> genomes;
  std::vector<SeqRecord> references;  // one target per genome here
  for (int g = 0; g < kGenomes; ++g) {
    genomes.push_back(seq::simulate_genome(
        {.length = 120'000, .repeat_fraction = 0.02,
         .rng_seed = 100 + static_cast<std::uint64_t>(g)}));
    SeqRecord rec;
    rec.name = "genome" + std::to_string(g) + ":0-" +
               std::to_string(genomes.back().size());
    rec.seq = genomes.back();
    references.push_back(std::move(rec));
  }

  // Index the collection once. Note the whole reference set is *distributed*
  // — no rank holds more than its shard of the seed index and targets.
  core::IndexConfig icfg;
  icfg.k = 31;
  icfg.fragment_len = 4096;
  pgas::Runtime rt(pgas::Topology(12, 4));
  const auto ref = core::IndexedReference::build(rt, references, icfg);
  std::printf(
      "indexed %d reference genomes (%zu kb) once: %zu index entries, "
      "%.4f simulated s\n",
      kGenomes, kGenomes * genomes[0].size() / 1000, ref.index_entries(),
      ref.build_report().total_time_s());

  core::SessionConfig scfg;
  scfg.max_hits_per_seed = 8;  // screening favours speed over sensitivity
  core::AlignSession session(ref, scfg);

  // Three incoming samples with different (known) compositions.
  struct Sample {
    const char* label;
    std::vector<SeqRecord> reads;
    const char* expected;
  };
  std::vector<Sample> samples;
  samples.push_back({"sample-1",
                     make_sample(genomes, {{2, 1.4}, {5, 0.5}}, 0.1, 201),
                     "~70% genome2, ~25% genome5, ~5% junk"});
  samples.push_back({"sample-2",
                     make_sample(genomes, {{0, 0.9}, {3, 0.9}}, 0.0, 301),
                     "~50% genome0, ~50% genome3"});
  samples.push_back({"sample-3", make_sample(genomes, {{4, 1.8}}, 0.2, 401),
                     "~90% genome4, ~10% junk"});

  std::vector<Attribution> mono_attributions;
  for (const auto& s : samples) {
    core::VectorSink sink(rt.nranks());
    const auto res = session.align_batch(rt, s.reads, sink);
    const auto alignments = sink.take();

    // The per-batch report proves the index was reused: only io.reads and
    // align appear, index.build/index.mark belong to the build above.
    std::printf(
        "\n=== %s: %zu reads, %.4f simulated s "
        "(index reused: batch phases =", s.label, s.reads.size(),
        res.total_time_s());
    for (const auto& ph : res.report.phases)
      if (ph.name != "startup") std::printf(" %s", ph.name.c_str());
    std::printf(") ===\n");

    const Attribution at = attribute(alignments, s.reads, kGenomes);
    mono_attributions.push_back(at);
    std::printf("%-12s %10s %10s\n", "reference", "reads", "share");
    for (int g = 0; g < kGenomes; ++g)
      std::printf("genome%-6d %10d %9.1f%%\n", g, at.per_genome[g],
                  100.0 * at.per_genome[g] / static_cast<double>(s.reads.size()));
    std::printf("%-12s %10d %9.1f%%\n", "unassigned", at.unassigned,
                100.0 * at.unassigned / static_cast<double>(s.reads.size()));
    std::printf("misattributed: %d (%.2f%%), expected composition: %s\n",
                at.misattributed,
                100.0 * at.misattributed / static_cast<double>(s.reads.size()),
                s.expected);
  }

  // --- sharded variant ------------------------------------------------------
  // The same collection as 3 per-runtime index shards (planned by cost-model
  // weight). The composed reference serves the same sessions and sinks; the
  // attribution per sample must not change.
  const auto sharded =
      shard::ShardedReference::build(rt, references, 3, icfg);
  std::printf(
      "\n=== sharded variant: %d shards over %u references ===\n"
      "per-shard build max %.4f simulated s vs %.4f monolithic — each "
      "runtime indexes only its piece\n",
      sharded.num_shards(), sharded.num_targets(),
      sharded.build_time_parallel_s(), ref.build_report().total_time_s());
  for (int sh = 0; sh < sharded.num_shards(); ++sh)
    std::printf("shard %d: %u references, %zu index entries\n", sh,
                sharded.shard(sh).targets().num_targets(),
                sharded.shard(sh).index_entries());

  shard::ShardedAlignSession sharded_session(sharded, scfg);
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const auto& s = samples[i];
    core::VectorSink sink(rt.nranks());
    const auto res = sharded_session.align_batch(rt, s.reads, sink);
    const Attribution at = attribute(sink.take(), s.reads, kGenomes);
    std::printf("%s (sharded, %.4f s per-runtime batch):", s.label,
                res.time_parallel_s());
    for (int g = 0; g < kGenomes; ++g)
      if (at.per_genome[g] > 0)
        std::printf(" genome%d=%d", g, at.per_genome[g]);
    // Best-hit attribution is expected to agree with the monolithic screen;
    // compare genuinely (the screening config keeps the exact-match path and
    // a low hit cap, so agreement is measured, not guaranteed by contract).
    const Attribution& mono = mono_attributions[i];
    const bool same = at.per_genome == mono.per_genome &&
                      at.unassigned == mono.unassigned;
    std::printf(" unassigned=%d misattributed=%d — composition %s the "
                "monolithic screen\n",
                at.unassigned, at.misattributed,
                same ? "matches" : "DIFFERS from");
  }
  return 0;
}
