// Protein alignment example — the cross-alphabet generalization sketched in
// the paper's conclusions ("one can also use the same methods to align
// protein sequences ... against protein datasets").
//
// A seed-and-extend protein search: index 4-mer seeds of a protein database,
// look up each query's seeds, and extend candidates with BLOSUM62-scored
// Smith-Waterman — the same locate/extend split merAligner uses for DNA,
// with the substitution matrix swapped in ("the Striped Smith-Waterman local
// alignment engine could easily be replaced with any other local alignment
// software tool").
#include <cstdio>
#include <map>
#include <random>
#include <string>
#include <vector>

#include "align/blosum.hpp"
#include "seq/protein.hpp"

namespace {

using namespace mera;

std::string random_protein(std::mt19937_64& rng, std::size_t len) {
  std::string s(len, 'A');
  for (auto& c : s) c = seq::kAminoOrder[rng() % 20];
  return s;
}

/// 4-mer seed key over the 24-letter alphabet.
std::uint32_t seed_key(const std::string& s, std::size_t pos) {
  std::uint32_t k = 0;
  for (std::size_t i = 0; i < 4; ++i)
    k = k * 24 + seq::encode_amino(s[pos + i]);
  return k;
}

}  // namespace

int main() {
  std::mt19937_64 rng(7);

  // A "database" of protein sequences; queries are mutated fragments of some
  // of them plus decoys.
  std::vector<std::string> database;
  for (int i = 0; i < 40; ++i) database.push_back(random_protein(rng, 300));

  struct Query {
    std::string seq;
    int true_db = -1;  // -1 = decoy
  };
  std::vector<Query> queries;
  for (int i = 0; i < 25; ++i) {
    if (i % 5 == 4) {
      queries.push_back({random_protein(rng, 60), -1});
      continue;
    }
    const int db = static_cast<int>(rng() % database.size());
    std::string frag = database[static_cast<std::size_t>(db)].substr(
        rng() % 200, 60);
    for (int m = 0; m < 6; ++m)  // ~10% mutations
      frag[rng() % frag.size()] = seq::kAminoOrder[rng() % 20];
    queries.push_back({std::move(frag), db});
  }

  // Build the seed index (4-mers; protein seeds are short because the
  // alphabet is large).
  std::multimap<std::uint32_t, std::pair<int, std::size_t>> index;
  for (std::size_t d = 0; d < database.size(); ++d)
    for (std::size_t p = 0; p + 4 <= database[d].size(); ++p)
      index.emplace(seed_key(database[d], p),
                    std::make_pair(static_cast<int>(d), p));
  std::printf("indexed %zu seeds from %zu database proteins\n", index.size(),
              database.size());

  // Search.
  int correct = 0, decoys_rejected = 0, decoys = 0;
  const align::MatrixScoring sc{nullptr, 10, 1};
  std::printf("\n%-6s %-10s %-8s %-8s %s\n", "query", "best-db", "score",
              "truth", "verdict");
  for (std::size_t qi = 0; qi < queries.size(); ++qi) {
    const auto& q = queries[qi];
    // Locate candidates via seeds (every 2nd seed suffices).
    std::map<int, int> candidate_votes;
    for (std::size_t p = 0; p + 4 <= q.seq.size(); p += 2) {
      const auto [lo, hi] = index.equal_range(seed_key(q.seq, p));
      for (auto it = lo; it != hi; ++it) ++candidate_votes[it->second.first];
    }
    // Extend the candidates with BLOSUM62 SW; keep the best.
    int best_db = -1, best_score = 0;
    for (const auto& [db, votes] : candidate_votes) {
      if (votes < 2) continue;  // cheap pre-filter
      const auto aln = align::smith_waterman_protein(
          q.seq, database[static_cast<std::size_t>(db)], sc);
      if (aln.score > best_score) {
        best_score = aln.score;
        best_db = db;
      }
    }
    // Significance threshold: ~half the self-score of a 60-mer.
    const bool hit = best_score >= 120;
    if (q.true_db < 0) {
      ++decoys;
      decoys_rejected += hit ? 0 : 1;
    } else if (hit && best_db == q.true_db) {
      ++correct;
    }
    std::printf("%-6zu %-10d %-8d %-8d %s\n", qi, hit ? best_db : -1,
                best_score, q.true_db,
                q.true_db < 0 ? (hit ? "FALSE HIT" : "decoy rejected")
                              : (hit && best_db == q.true_db ? "correct"
                                                             : "MISSED"));
  }
  std::printf("\n%d/%d real queries attributed correctly, %d/%d decoys "
              "rejected\n",
              correct, static_cast<int>(queries.size()) - decoys,
              decoys_rejected, decoys);
  return 0;
}
