// Mini de novo assembly pipeline — the HipMer/Meraculous context merAligner
// was built for, end to end in one program:
//
//   1. contig generation: distributed k-mer spectrum (same aggregating-store
//      hash table machinery as the seed index) + UU-graph traversal
//   2. alignment: merAligner maps the paired reads back onto the contigs
//      (the step the paper parallelizes)
//   3. scaffolding: mate pairs link contigs into ordered scaffolds
//
// Ground truth (the simulated genome) is used only for the final report.
#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "core/scaffold.hpp"
#include "dbg/contig_builder.hpp"
#include "dbg/kmer_spectrum.hpp"
#include "seq/dna.hpp"
#include "seq/genome_sim.hpp"
#include "seq/read_sim.hpp"

int main() {
  using namespace mera;
  const int nranks = 8, ppn = 4;

  // The unknown genome, sampled as a paired-end library.
  const std::string genome = seq::simulate_genome(
      {.length = 150'000, .repeat_fraction = 0.01, .rng_seed = 1234});
  seq::ReadSimParams rp;
  rp.read_len = 101;
  rp.depth = 12.0;
  rp.paired = true;
  rp.insert_mean = 500;
  rp.insert_sd = 30;
  rp.error_rate = 0.002;
  rp.junk_fraction = 0.0;
  rp.grouped = false;
  rp.rng_seed = 1235;
  const auto reads = simulate_reads(genome, rp);
  std::printf("input: %zu paired reads (%.0fx coverage of a %zu kb genome)\n",
              reads.size(), rp.depth, genome.size() / 1000);

  // ---- stage 1: contig generation -----------------------------------------
  const int k = 31;
  pgas::Runtime rt1(pgas::Topology(nranks, ppn));
  dbg::KmerSpectrum spectrum(rt1.topo(), {k, 1000, true});
  rt1.run([&](pgas::Rank& r) {
    const std::size_t n = reads.size();
    const auto me = static_cast<std::size_t>(r.id());
    const auto p = static_cast<std::size_t>(r.nranks());
    r.phase("kmer.count");
    for (std::size_t i = n * me / p; i < n * (me + 1) / p; ++i)
      spectrum.count_read(r, reads[i].seq);
    spectrum.finish_count(r);
    r.phase("kmer.insert");
    for (std::size_t i = n * me / p; i < n * (me + 1) / p; ++i)
      spectrum.insert_read(r, reads[i].seq);
    spectrum.finish_insert(r);
  });
  const auto contig_seqs = dbg::build_contigs(spectrum, nranks, {3, 3, 200});
  std::vector<seq::SeqRecord> contigs;
  for (std::size_t i = 0; i < contig_seqs.size(); ++i)
    contigs.push_back({"asm_contig" + std::to_string(i), contig_seqs[i], ""});
  std::size_t asm_bases = 0, longest = 0;
  for (const auto& c : contigs) {
    asm_bases += c.seq.size();
    longest = std::max(longest, c.seq.size());
  }
  std::printf("contigs: %zu (%.1f kb assembled, longest %zu bp, %zu distinct "
              "k-mers)\n",
              contigs.size(), asm_bases / 1000.0, longest,
              spectrum.total_distinct());

  // ---- stage 2: align the reads back onto the contigs ---------------------
  core::AlignerConfig cfg;
  cfg.k = k;
  cfg.fragment_len = 2048;
  cfg.permute_queries = false;  // mates stay pairable by index
  pgas::Runtime rt2(pgas::Topology(nranks, ppn));
  const auto res = core::MerAligner(cfg).align(rt2, contigs, reads);
  std::printf("alignment: %.1f%% of reads mapped (%.1f%% exact fast path), "
              "%.3f simulated s\n",
              100.0 * res.stats.aligned_fraction(),
              100.0 * res.stats.exact_fraction(), res.total_time_s());

  // ---- stage 3: scaffolding ------------------------------------------------
  std::map<std::string, core::AlignmentRecord> best;
  for (const auto& a : res.alignments) {
    auto it = best.find(a.query_name);
    if (it == best.end() || a.score > it->second.score)
      best[a.query_name] = a;
  }
  std::vector<core::AlignmentRecord> per_read(reads.size());
  std::vector<bool> aligned(reads.size(), false);
  for (std::size_t i = 0; i < reads.size(); ++i) {
    const auto it = best.find(reads[i].name);
    if (it != best.end()) {
      per_read[i] = it->second;
      aligned[i] = true;
    }
  }
  std::vector<std::size_t> lengths;
  for (const auto& c : contigs) lengths.push_back(c.seq.size());
  core::Scaffolder scaffolder(lengths,
                              {.insert_mean = rp.insert_mean, .min_links = 4});
  scaffolder.add_pairs(core::Scaffolder::pair_adjacent(per_read, aligned));
  const auto scaffolds = scaffolder.build();
  std::size_t chained = 0;
  for (const auto& s : scaffolds)
    if (s.contigs.size() > 1) chained += s.contigs.size();
  std::printf("scaffolds: %zu chains; %zu of %zu contigs linked; largest "
              "chain %zu contigs\n",
              scaffolds.size(), chained, contigs.size(),
              scaffolds.empty() ? 0 : scaffolds.front().contigs.size());

  // ---- report vs. ground truth ---------------------------------------------
  std::size_t true_contigs = 0;
  for (const auto& c : contigs)
    if (genome.find(c.seq) != std::string::npos ||
        genome.find(seq::reverse_complement(c.seq)) != std::string::npos)
      ++true_contigs;
  std::printf("\nground truth check: %zu/%zu contigs are exact genome "
              "substrings; assembly covers %.1f%% of the genome\n",
              true_contigs, contigs.size(),
              100.0 * static_cast<double>(asm_bases) /
                  static_cast<double>(genome.size()));
  return 0;
}
