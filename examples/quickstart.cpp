// Quickstart: align a set of reads against a set of contigs, end to end.
//
//   1. simulate a small genome, chop it into contigs (the targets),
//   2. sample error-bearing reads from it (the queries),
//   3. write them to FASTA / SeqDB files,
//   4. run the fully parallel merAligner pipeline on a simulated 8-rank
//      PGAS machine, and
//   5. write the alignments as SAM and print the pipeline report.
//
// Usage: quickstart [nranks] [ranks_per_node]
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "core/pipeline.hpp"
#include "seq/fasta.hpp"
#include "seq/genome_sim.hpp"
#include "seq/read_sim.hpp"
#include "seq/seqdb.hpp"

int main(int argc, char** argv) {
  using namespace mera;
  const int nranks = argc > 1 ? std::atoi(argv[1]) : 8;
  const int ppn = argc > 2 ? std::atoi(argv[2]) : 4;

  // --- 1+2: workload -------------------------------------------------------
  const std::string genome = seq::simulate_genome({.length = 200'000,
                                                   .repeat_fraction = 0.05,
                                                   .rng_seed = 42});
  const auto contigs = seq::chop_into_contigs(genome, {.rng_seed = 43});
  seq::ReadSimParams rp;
  rp.read_len = 101;
  rp.depth = 4.0;
  rp.error_rate = 0.005;
  rp.junk_fraction = 0.01;
  rp.rng_seed = 44;
  const auto reads = seq::simulate_reads(genome, rp);
  std::printf("workload: %zu contigs, %zu reads\n", contigs.size(),
              reads.size());

  // --- 3: files (FASTA targets, binary SeqDB queries) ----------------------
  seq::write_fasta("quickstart_contigs.fa", contigs);
  seq::write_seqdb("quickstart_reads.sdb", reads, /*store_quality=*/false);

  // --- 4: align on the simulated PGAS machine ------------------------------
  core::AlignerConfig cfg;
  cfg.k = 31;             // seed length
  cfg.buffer_S = 1000;    // aggregating-stores buffer (paper default)
  cfg.fragment_len = 1024;
  pgas::Runtime rt(pgas::Topology(nranks, ppn));
  const auto res = core::MerAligner(cfg).align_files(
      rt, "quickstart_contigs.fa", "quickstart_reads.sdb", "quickstart.sam");

  // --- 5: report ------------------------------------------------------------
  std::printf("\nper-phase simulated times (%d ranks, %d per node):\n", nranks,
              ppn);
  res.report.print(std::cout);
  std::printf("\npipeline statistics (summed over ranks):\n");
  res.stats.print(std::cout);
  std::printf("\nseed cache hit rate:   %.1f%%\n",
              100.0 * res.seed_cache.hit_rate());
  std::printf("target cache hit rate: %.1f%%\n",
              100.0 * res.target_cache.hit_rate());
  std::printf("single-copy fragments: %.1f%%\n",
              100.0 * res.single_copy_fraction);
  std::printf("\nwrote %zu alignments to quickstart.sam\n",
              res.alignments.size());
  return 0;
}
