// Fork/join on top of ThreadPool.
//
// A TaskGroup tracks a set of tasks submitted to a pool and lets the forking
// thread join them all at once:
//
//   exec::TaskGroup group(pool);
//   for (int s = 0; s < K; ++s) group.run([&, s] { work(s); });
//   group.wait();   // blocks; rethrows the first (by fork order) exception
//
// Exception contract: a task that throws is recorded, the remaining tasks
// still run to completion, and wait() rethrows the exception of the
// earliest-forked failing task — deterministic no matter which task happened
// to fail first in real time. After wait() returns (or throws), the group is
// empty and reusable for another fork/join round.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <vector>

#include "exec/thread_pool.hpp"

namespace mera::exec {

class TaskGroup {
 public:
  explicit TaskGroup(ThreadPool& pool) : pool_(&pool) {}
  /// Joins outstanding tasks without rethrowing (destructors must not
  /// throw); call wait() to observe task exceptions.
  ~TaskGroup();
  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Fork: enqueue one task on the pool. Must not be called concurrently
  /// with wait() from another thread.
  void run(std::function<void()> fn);

  /// Join: block until every forked task finished, then rethrow the
  /// earliest-forked task's exception, if any. Resets the group.
  void wait();

  /// Tasks forked since the last wait().
  [[nodiscard]] std::size_t forked() const;

 private:
  void submit_task(std::size_t idx, std::function<void()> fn);
  void join_nothrow();

  ThreadPool* pool_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::size_t pending_ = 0;
  /// One slot per forked task, in fork order; null = completed cleanly.
  std::vector<std::exception_ptr> errors_;
};

}  // namespace mera::exec
