#include "exec/task_group.hpp"

#include <utility>

namespace mera::exec {

TaskGroup::~TaskGroup() { join_nothrow(); }

void TaskGroup::run(std::function<void()> fn) {
  std::size_t idx;
  {
    const std::scoped_lock lk(mu_);
    idx = errors_.size();
    errors_.emplace_back(nullptr);
    ++pending_;
  }
  try {
    submit_task(idx, std::move(fn));
  } catch (...) {
    // submit itself failed (e.g. bad_alloc building the task wrapper): the
    // task will never run, so roll its slot back or wait() blocks forever.
    // run() is single-forker by contract, so the slot is still the back.
    const std::scoped_lock lk(mu_);
    errors_.pop_back();
    --pending_;
    cv_.notify_all();
    throw;
  }
}

void TaskGroup::submit_task(std::size_t idx, std::function<void()> fn) {
  pool_->submit([this, idx, fn = std::move(fn)] {
    std::exception_ptr err;
    try {
      fn();
    } catch (...) {
      err = std::current_exception();
    }
    // Notify under the lock: the moment a waiter sees pending_ == 0 it may
    // destroy this group, so the notify must not touch cv_ after unlocking.
    const std::scoped_lock lk(mu_);
    if (err) errors_[idx] = std::move(err);
    --pending_;
    cv_.notify_all();
  });
}

void TaskGroup::wait() {
  std::unique_lock lk(mu_);
  cv_.wait(lk, [this] { return pending_ == 0; });
  std::exception_ptr first;
  for (std::exception_ptr& e : errors_)
    if (e) {
      first = std::move(e);
      break;
    }
  errors_.clear();
  lk.unlock();
  if (first) std::rethrow_exception(first);
}

std::size_t TaskGroup::forked() const {
  const std::scoped_lock lk(mu_);
  return errors_.size();
}

void TaskGroup::join_nothrow() {
  std::unique_lock lk(mu_);
  cv_.wait(lk, [this] { return pending_ == 0; });
  errors_.clear();
}

}  // namespace mera::exec
