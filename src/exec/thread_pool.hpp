// A persistent worker pool for intra-process task parallelism.
//
// The PGAS runtime already multiplies one batch across nranks rank threads;
// this pool is the axis ABOVE that — independent whole-runtime units of work
// (one shard's align_batch, one file batch's load) dispatched concurrently.
// Workers are started once and reused, so per-batch dispatch costs a queue
// push, not a thread spawn; tasks may themselves start a pgas::Runtime (which
// spawns and joins its own rank threads), which is exactly how the sharded
// session runs K runtimes side by side in one process.
//
// Scheduling is FIFO and non-work-stealing: submitters must not block inside
// a task on another task of the same pool (the sharded session and the batch
// prefetcher never do — joins happen on the driving thread, outside the
// pool).
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace mera::exec {

class ThreadPool {
 public:
  /// Starts `nthreads` workers immediately (clamped to >= 1).
  explicit ThreadPool(int nthreads);
  /// Drains every task submitted so far, then joins the workers.
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue one task; runs on some worker in FIFO order. Throws
  /// std::logic_error once the pool is stopping: a post-stop task could race
  /// a worker that already observed stop-with-empty-queue and exited, and a
  /// silently dropped task is the worst possible outcome for callers that
  /// count on the destructor's drain guarantee.
  void submit(std::function<void()> task);

  /// Begin shutdown: workers finish the queued backlog and exit; further
  /// submit() calls throw. Idempotent; the destructor calls it implicitly.
  void request_stop();

  [[nodiscard]] int size() const noexcept {
    return static_cast<int>(workers_.size());
  }

  /// The sane default width for running `width` independent runtimes of
  /// `nranks` rank threads each on this machine: min(width, hardware
  /// concurrency / nranks), at least 1 — so the machine is never
  /// oversubscribed beyond what one runtime already does.
  [[nodiscard]] static int default_parallelism(int width, int nranks) noexcept;

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  bool stop_ = false;
};

}  // namespace mera::exec
