#include "exec/thread_pool.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "obs/clock.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace mera::exec {

namespace {

// Registry handles are fetched per call, not cached in statics: pool tasks are
// whole-shard / whole-batch units, so one mutexed map lookup per task is noise
// next to the work it dispatches.
obs::MetricsRegistry& reg() { return obs::MetricsRegistry::global(); }

}  // namespace

ThreadPool::ThreadPool(int nthreads) {
  const int n = std::max(1, nthreads);
  reg().gauge("mera_pool_workers", {},
              "Worker threads in the most recently started pool")
      .set(n);
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  request_stop();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::request_stop() {
  {
    const std::scoped_lock lk(mu_);
    stop_ = true;
  }
  cv_.notify_all();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    const std::scoped_lock lk(mu_);
    if (stop_)
      throw std::logic_error(
          "ThreadPool::submit after stop: workers may already have observed "
          "an empty queue and exited, so the task could never run");
    queue_.push_back(std::move(task));
    reg().counter("mera_pool_tasks_submitted_total", {},
                  "Tasks enqueued on the executor pool")
        .inc();
    reg().gauge("mera_pool_queue_depth", {},
                "Tasks waiting in the pool queue (sampled at submit)")
        .set(static_cast<double>(queue_.size()));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lk(mu_);
      cv_.wait(lk, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop requested and nothing left to drain
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    {
      const obs::Span span("pool.task", "exec");
      const obs::StopWatch sw;
      task();
      const double secs = sw.elapsed_s();
      reg().counter("mera_pool_tasks_total", {}, "Tasks executed by the pool")
          .inc();
      reg().counter("mera_pool_busy_seconds_total", {},
                    "Wall seconds pool workers spent running tasks")
          .add(secs);
      reg().histogram("mera_pool_task_seconds",
                      {0.001, 0.01, 0.1, 0.5, 1.0, 5.0, 30.0}, {},
                      "Per-task wall time on the executor pool")
          .observe(secs);
    }
  }
}

int ThreadPool::default_parallelism(int width, int nranks) noexcept {
  const auto hw = static_cast<int>(std::thread::hardware_concurrency());
  const int per_runtime = std::max(1, hw) / std::max(1, nranks);
  return std::clamp(per_runtime, 1, std::max(1, width));
}

}  // namespace mera::exec
