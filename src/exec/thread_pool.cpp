#include "exec/thread_pool.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace mera::exec {

ThreadPool::ThreadPool(int nthreads) {
  const int n = std::max(1, nthreads);
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  request_stop();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::request_stop() {
  {
    const std::scoped_lock lk(mu_);
    stop_ = true;
  }
  cv_.notify_all();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    const std::scoped_lock lk(mu_);
    if (stop_)
      throw std::logic_error(
          "ThreadPool::submit after stop: workers may already have observed "
          "an empty queue and exited, so the task could never run");
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lk(mu_);
      cv_.wait(lk, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop requested and nothing left to drain
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

int ThreadPool::default_parallelism(int width, int nranks) noexcept {
  const auto hw = static_cast<int>(std::thread::hardware_concurrency());
  const int per_runtime = std::max(1, hw) / std::max(1, nranks);
  return std::clamp(per_runtime, 1, std::max(1, width));
}

}  // namespace mera::exec
