// Leveled stderr logging for the CLI and tools.
//
// Replaces the scattered `fprintf(stderr, "[meraligner] ...")` lines: callers
// say what they mean (info vs warn vs error) and the prefix/newline are
// applied in one place. `--quiet` maps to set_level(kError): errors — and the
// always-raw exit-2 usage messages, which do not go through here — still
// print; progress chatter does not.
#pragma once

#include <cstdarg>

namespace mera::obs {

enum class LogLevel : int { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3 };

class Log {
 public:
  static void set_level(LogLevel level) noexcept;
  [[nodiscard]] static LogLevel level() noexcept;
  /// Prefix prepended to every line, e.g. "[meraligner] ". Pointer must have
  /// static storage duration.
  static void set_prefix(const char* prefix) noexcept;

#if defined(__GNUC__) || defined(__clang__)
#define MERA_OBS_PRINTF(fmt_idx, va_idx) \
  __attribute__((format(printf, fmt_idx, va_idx)))
#else
#define MERA_OBS_PRINTF(fmt_idx, va_idx)
#endif

  /// printf-style; a newline is appended — format strings carry none.
  static void error(const char* fmt, ...) MERA_OBS_PRINTF(1, 2);
  static void warn(const char* fmt, ...) MERA_OBS_PRINTF(1, 2);
  static void info(const char* fmt, ...) MERA_OBS_PRINTF(1, 2);
  static void debug(const char* fmt, ...) MERA_OBS_PRINTF(1, 2);

#undef MERA_OBS_PRINTF

 private:
  static void vlog(LogLevel level, const char* fmt, std::va_list args);
};

}  // namespace mera::obs
