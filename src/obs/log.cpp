#include "obs/log.hpp"

#include <atomic>
#include <cstdio>

namespace mera::obs {

namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)};
std::atomic<const char*> g_prefix{""};

}  // namespace

void Log::set_level(LogLevel level) noexcept {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel Log::level() noexcept {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void Log::set_prefix(const char* prefix) noexcept {
  g_prefix.store(prefix != nullptr ? prefix : "",
                 std::memory_order_relaxed);
}

void Log::vlog(LogLevel level, const char* fmt, std::va_list args) {
  if (static_cast<int>(level) > g_level.load(std::memory_order_relaxed))
    return;
  char buf[1024];
  std::vsnprintf(buf, sizeof buf, fmt, args);
  // Single fprintf so concurrent writers emit whole lines.
  std::fprintf(stderr, "%s%s\n", g_prefix.load(std::memory_order_relaxed),
               buf);
}

#define MERA_OBS_DEFINE_LEVEL(fn, lvl)      \
  void Log::fn(const char* fmt, ...) {      \
    std::va_list args;                      \
    va_start(args, fmt);                    \
    vlog(LogLevel::lvl, fmt, args);         \
    va_end(args);                           \
  }

MERA_OBS_DEFINE_LEVEL(error, kError)
MERA_OBS_DEFINE_LEVEL(warn, kWarn)
MERA_OBS_DEFINE_LEVEL(info, kInfo)
MERA_OBS_DEFINE_LEVEL(debug, kDebug)

#undef MERA_OBS_DEFINE_LEVEL

}  // namespace mera::obs
