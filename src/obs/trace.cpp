#include "obs/trace.hpp"

#include <ostream>

namespace mera::obs {

namespace {

void json_escape_to(std::ostream& os, const char* s) {
  for (; *s; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      os << '\\' << c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      os << ' ';
    } else {
      os << c;
    }
  }
}

void json_escape_to(std::ostream& os, const std::string& s) {
  json_escape_to(os, s.c_str());
}

}  // namespace

Tracer& Tracer::global() {
  static Tracer tracer;
  return tracer;
}

void Tracer::enable() {
  const std::scoped_lock lk(mu_);
  // Fresh session: drop prior events and invalidate all cached thread-local
  // buffer handles so rows renumber from 1.
  buffers_.clear();
  next_tid_ = 1;
  generation_.fetch_add(1, std::memory_order_relaxed);
  origin_ = wall_now();
  enabled_.store(true, std::memory_order_relaxed);
}

void Tracer::disable() { enabled_.store(false, std::memory_order_relaxed); }

void Tracer::reset() {
  const std::scoped_lock lk(mu_);
  enabled_.store(false, std::memory_order_relaxed);
  buffers_.clear();
  next_tid_ = 1;
  generation_.fetch_add(1, std::memory_order_relaxed);
}

Tracer::Buffer& Tracer::local_buffer() {
  // The shared_ptr keeps the buffer alive in `buffers_` even after the owning
  // thread exits; the generation check re-registers after enable()/reset().
  struct Local {
    const Tracer* owner = nullptr;
    std::uint64_t generation = 0;
    std::shared_ptr<Buffer> buf;
  };
  thread_local Local local;
  const std::uint64_t gen = generation_.load(std::memory_order_relaxed);
  if (local.owner != this || local.generation != gen) {
    auto buf = std::make_shared<Buffer>();
    {
      const std::scoped_lock lk(mu_);
      buf->tid = next_tid_++;
      buffers_.push_back(buf);
    }
    local.owner = this;
    local.generation = gen;
    local.buf = std::move(buf);
  }
  return *local.buf;
}

void Tracer::record(std::string name, const char* cat, std::uint64_t ts_us,
                    std::uint64_t dur_us) {
  Buffer& buf = local_buffer();
  const std::scoped_lock lk(buf.mu);
  buf.events.push_back(Event{std::move(name), cat, ts_us, dur_us});
}

void Tracer::write_chrome_trace(std::ostream& os) const {
  std::vector<std::shared_ptr<Buffer>> buffers;
  {
    const std::scoped_lock lk(mu_);
    buffers = buffers_;
  }
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const auto& buf : buffers) {
    const std::scoped_lock lk(buf->mu);
    for (const Event& e : buf->events) {
      os << (first ? "\n" : ",\n") << "{\"name\":\"";
      json_escape_to(os, e.name);
      os << "\",\"cat\":\"";
      json_escape_to(os, e.cat);
      os << "\",\"ph\":\"X\",\"ts\":" << e.ts_us << ",\"dur\":" << e.dur_us
         << ",\"pid\":1,\"tid\":" << buf->tid << "}";
      first = false;
    }
  }
  os << (first ? "" : "\n") << "]}\n";
}

std::size_t Tracer::event_count() const {
  std::vector<std::shared_ptr<Buffer>> buffers;
  {
    const std::scoped_lock lk(mu_);
    buffers = buffers_;
  }
  std::size_t n = 0;
  for (const auto& buf : buffers) {
    const std::scoped_lock lk(buf->mu);
    n += buf->events.size();
  }
  return n;
}

void Span::begin(std::string_view name, const char* cat) {
  active_ = true;
  name_.assign(name);
  cat_ = cat;
  ts_us_ = Tracer::global().now_us();
}

void Span::end() {
  Tracer& tracer = Tracer::global();
  // Record even if tracing was just disabled, so spans open at disable()
  // still close; their timestamps remain valid for the current session.
  const std::uint64_t now = tracer.now_us();
  tracer.record(std::move(name_), cat_, ts_us_,
                now >= ts_us_ ? now - ts_us_ : 0);
  active_ = false;
}

}  // namespace mera::obs
