// Scoped-span tracing in Chrome Trace Event Format.
//
// obs::Span is an RAII scope marker: construct it at the top of a region
// (a pool task, a prefetch load, a pgas phase, a whole batch) and the region
// shows up as one bar on that thread's row when the written JSON is opened in
// chrome://tracing or Perfetto (ui.perfetto.dev). Spans nest naturally —
// "complete" (ph:"X") events with begin timestamp + duration render as
// stacked bars.
//
// The whole facility is OFF by default and costs one relaxed atomic load per
// Span when off: the constructor checks Tracer::enabled() and returns before
// touching the clock, the name, or any buffer. Enabled-mode recording is a
// clock read plus a push into a per-thread buffer (its mutex is only ever
// contended by the final write), so rank threads, pool workers and the
// driving thread can all record without serializing on each other. Tracing
// changes seconds, never bytes — aligned output is bit-identical with the
// tracer on or off.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/clock.hpp"

namespace mera::obs {

class Tracer {
 public:
  Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// The process-wide tracer every Span records into.
  [[nodiscard]] static Tracer& global();

  /// Start recording; timestamps are microseconds since this call.
  void enable();
  /// Stop recording (spans become free again); recorded events are kept
  /// until reset() or the next enable().
  void disable();
  /// The Span fast path: one relaxed load.
  [[nodiscard]] bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }
  /// Disable AND drop everything recorded so far (tests, reuse).
  void reset();

  /// Microseconds since enable().
  [[nodiscard]] std::uint64_t now_us() const noexcept {
    return static_cast<std::uint64_t>(seconds_since(origin_) * 1e6);
  }

  /// Record one complete event on the calling thread's row. `cat` must be a
  /// string with static storage duration (category literals).
  void record(std::string name, const char* cat, std::uint64_t ts_us,
              std::uint64_t dur_us);

  /// Write everything recorded as Chrome Trace Event JSON:
  /// {"traceEvents":[...]} — loadable by chrome://tracing and Perfetto.
  /// Safe while recording continues (each thread buffer is drained under its
  /// lock); events recorded during the write may or may not be included.
  void write_chrome_trace(std::ostream& os) const;

  /// Events recorded since the last enable()/reset() (diagnostics, tests).
  [[nodiscard]] std::size_t event_count() const;

 private:
  struct Event {
    std::string name;
    const char* cat;
    std::uint64_t ts_us;
    std::uint64_t dur_us;
  };
  struct Buffer {
    std::mutex mu;
    std::uint32_t tid = 0;
    std::vector<Event> events;
  };

  Buffer& local_buffer();

  std::atomic<bool> enabled_{false};
  WallClock::time_point origin_{};
  /// Buffer registration/reset bookkeeping. Thread-local buffer handles are
  /// invalidated by bumping `generation_`; threads re-register lazily.
  mutable std::mutex mu_;
  std::vector<std::shared_ptr<Buffer>> buffers_;
  std::atomic<std::uint64_t> generation_{1};
  std::uint32_t next_tid_ = 1;
};

/// RAII scope span. When the global tracer is disabled, construction is a
/// single relaxed atomic branch and destruction a predictable-not-taken test.
class Span {
 public:
  explicit Span(std::string_view name, const char* cat = "mera") {
    if (!Tracer::global().enabled()) return;  // the only disabled-mode cost
    begin(name, cat);
  }
  ~Span() {
    if (active_) end();
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  void begin(std::string_view name, const char* cat);
  void end();

  bool active_ = false;
  std::uint64_t ts_us_ = 0;
  std::string name_;
  const char* cat_ = "mera";
};

}  // namespace mera::obs
