// Process-wide metrics registry: named counters, gauges and fixed-bucket
// histograms, exportable as JSON or Prometheus text exposition format.
//
// The paper's whole argument is a performance narrative — per-phase seconds,
// cache hit rates, communication volumes, load-balance tables — but until now
// the repro only told that story through ad-hoc stderr prints. The registry
// is the structured, machine-readable form: every layer (executor, prefetch,
// session phases, caches, SW engines, shards) publishes into one process-wide
// namespace that the CLI dumps with --metrics and that later roadmap items
// (the multi-tenant daemon, the measured re-sharding planner, the cost-model
// stream scheduler) can read programmatically.
//
// Cost discipline: metric OBJECTS are cheap to update — a counter add is one
// relaxed atomic fetch_add on a per-thread-striped slot, so concurrent rank
// threads and pool workers never contend on a cache line. Registry LOOKUPS
// (name -> object) take a mutex and are meant for per-batch / per-task
// granularity, never per-seed hot loops; the per-read pipeline keeps counting
// into PipelineStats exactly as before and the session bridges the deltas
// here once per batch. Observability never touches alignment data: output is
// bit-identical with metrics hammered or idle.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace mera::obs {

/// Metric labels, Prometheus-style: ordered (key, value) pairs. Two metrics
/// with the same name but different labels are distinct time series.
using Labels = std::vector<std::pair<std::string, std::string>>;

namespace detail {
/// Stripe index of the calling thread: assigned round-robin on first use so
/// concurrent writers spread across slots instead of hammering slot 0.
[[nodiscard]] std::size_t thread_stripe() noexcept;
}  // namespace detail

/// Monotonically increasing value. Stored as a double so the same type
/// carries event counts (exact up to 2^53) and accumulated seconds.
class Counter {
 public:
  static constexpr std::size_t kStripes = 16;

  void add(double delta) noexcept {
    slots_[detail::thread_stripe()].v.fetch_add(delta,
                                                std::memory_order_relaxed);
  }
  void inc() noexcept { add(1.0); }

  [[nodiscard]] double value() const noexcept {
    double sum = 0.0;
    for (const Slot& s : slots_) sum += s.v.load(std::memory_order_relaxed);
    return sum;
  }

 private:
  /// One cache line per slot so stripes never false-share.
  struct alignas(64) Slot {
    std::atomic<double> v{0.0};
  };
  std::array<Slot, kStripes> slots_;
};

/// Last-writer-wins instantaneous value (GCUPS, queue depth, imbalance).
class Gauge {
 public:
  void set(double v) noexcept { v_.store(v, std::memory_order_relaxed); }
  void add(double delta) noexcept {
    v_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] double value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> v_{0.0};
};

/// Fixed-bucket histogram with Prometheus `le` semantics: observation v lands
/// in the first bucket whose upper bound satisfies v <= bound; anything above
/// the last bound lands in the implicit +Inf bucket.
class Histogram {
 public:
  /// `bounds` must be strictly ascending (checked; throws std::invalid_argument).
  explicit Histogram(std::vector<double> bounds);

  void observe(double v) noexcept;
  /// Record `n` observations of value `v` in one shot — for bridging
  /// pre-aggregated histograms (e.g. the SW engine's per-batch lane
  /// occupancy octiles) without n round trips.
  void observe_n(double v, std::uint64_t n) noexcept;

  [[nodiscard]] const std::vector<double>& bounds() const noexcept {
    return bounds_;
  }
  /// Per-bucket counts (bounds().size() + 1 entries; last is +Inf).
  [[nodiscard]] std::vector<std::uint64_t> bucket_counts() const;
  [[nodiscard]] std::uint64_t count() const noexcept;
  [[nodiscard]] double sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> buckets_;  // bounds + 1 (+Inf)
  std::atomic<double> sum_{0.0};
};

/// The registry: name+labels -> metric object. Objects are created on first
/// use and live as long as the registry, so returned references are stable —
/// callers may cache them. `global()` is the process-wide instance every
/// instrumented layer publishes into; tests construct private registries.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  [[nodiscard]] static MetricsRegistry& global();

  /// Find-or-create. `help` is recorded on first registration (later calls
  /// may pass ""). Registering one name as two different kinds throws
  /// std::logic_error — a name is one metric type forever.
  Counter& counter(const std::string& name, const Labels& labels = {},
                   const std::string& help = "");
  Gauge& gauge(const std::string& name, const Labels& labels = {},
               const std::string& help = "");
  /// `bounds` is used on first registration only; later lookups of the same
  /// series ignore it.
  Histogram& histogram(const std::string& name, std::vector<double> bounds,
                       const Labels& labels = {}, const std::string& help = "");

  /// Value of a series if it exists (exact name + labels), for tests and
  /// programmatic consumers. Returns false when the series is absent.
  [[nodiscard]] bool value_of(const std::string& name, const Labels& labels,
                              double& out) const;

  /// { "counters": [ {"name":..,"labels":{..},"value":..}, ..],
  ///   "gauges": [..], "histograms": [ {.., "buckets":[{"le":..,"count":..}],
  ///   "count":.., "sum":..} ] } — series sorted by (name, labels) so the
  /// export is deterministic.
  void write_json(std::ostream& os) const;
  /// Prometheus text exposition format v0.0.4 (one # TYPE line per family,
  /// histogram expanded into _bucket/_sum/_count).
  void write_prometheus(std::ostream& os) const;

 private:
  enum class Kind : std::uint8_t { kCounter, kGauge, kHistogram };
  struct Series {
    std::string name;
    Labels labels;
    Kind kind;
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Series& find_or_create(const std::string& name, const Labels& labels,
                         Kind kind, const std::string& help);

  mutable std::mutex mu_;
  /// Key = name + rendered labels; map gives the deterministic export order.
  std::map<std::string, Series> series_;
};

/// Render labels Prometheus-style: `{k="v",k2="v2"}`, "" when empty.
[[nodiscard]] std::string render_labels(const Labels& labels);

}  // namespace mera::obs
