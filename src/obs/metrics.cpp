#include "obs/metrics.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <stdexcept>

namespace mera::obs {

namespace detail {

std::size_t thread_stripe() noexcept {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t mine =
      next.fetch_add(1, std::memory_order_relaxed) % Counter::kStripes;
  return mine;
}

}  // namespace detail

namespace {

/// Shortest round-trippable representation; JSON and Prometheus both accept
/// plain decimal/scientific notation.
std::string num(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  // Trim to the shortest form that still parses back exactly.
  for (int prec = 1; prec < 17; ++prec) {
    char probe[32];
    std::snprintf(probe, sizeof probe, "%.*g", prec, v);
    double back = 0.0;
    std::sscanf(probe, "%lf", &back);
    if (back == v) return probe;
  }
  return buf;
}

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out += ' ';
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace

std::string render_labels(const Labels& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i) out += ',';
    out += labels[i].first + "=\"" + escape(labels[i].second) + "\"";
  }
  out += '}';
  return out;
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {
  for (std::size_t i = 1; i < bounds_.size(); ++i)
    if (!(bounds_[i - 1] < bounds_[i]))
      throw std::invalid_argument(
          "Histogram: bucket bounds must be strictly ascending");
}

void Histogram::observe(double v) noexcept { observe_n(v, 1); }

void Histogram::observe_n(double v, std::uint64_t n) noexcept {
  if (n == 0) return;
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const auto idx = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[idx].fetch_add(n, std::memory_order_relaxed);
  sum_.fetch_add(v * static_cast<double>(n), std::memory_order_relaxed);
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(buckets_.size());
  for (std::size_t i = 0; i < buckets_.size(); ++i)
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  return out;
}

std::uint64_t Histogram::count() const noexcept {
  std::uint64_t n = 0;
  for (const auto& b : buckets_) n += b.load(std::memory_order_relaxed);
  return n;
}

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry reg;
  return reg;
}

MetricsRegistry::Series& MetricsRegistry::find_or_create(
    const std::string& name, const Labels& labels, Kind kind,
    const std::string& help) {
  const std::string key = name + render_labels(labels);
  const std::scoped_lock lk(mu_);
  const auto it = series_.find(key);
  if (it != series_.end()) {
    if (it->second.kind != kind)
      throw std::logic_error("MetricsRegistry: '" + name +
                             "' already registered as a different metric kind");
    return it->second;
  }
  Series s;
  s.name = name;
  s.labels = labels;
  s.kind = kind;
  s.help = help;
  return series_.emplace(key, std::move(s)).first->second;
}

Counter& MetricsRegistry::counter(const std::string& name, const Labels& labels,
                                  const std::string& help) {
  Series& s = find_or_create(name, labels, Kind::kCounter, help);
  if (!s.counter) s.counter = std::make_unique<Counter>();
  return *s.counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name, const Labels& labels,
                              const std::string& help) {
  Series& s = find_or_create(name, labels, Kind::kGauge, help);
  if (!s.gauge) s.gauge = std::make_unique<Gauge>();
  return *s.gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds,
                                      const Labels& labels,
                                      const std::string& help) {
  Series& s = find_or_create(name, labels, Kind::kHistogram, help);
  if (!s.histogram) s.histogram = std::make_unique<Histogram>(std::move(bounds));
  return *s.histogram;
}

bool MetricsRegistry::value_of(const std::string& name, const Labels& labels,
                               double& out) const {
  const std::string key = name + render_labels(labels);
  const std::scoped_lock lk(mu_);
  const auto it = series_.find(key);
  if (it == series_.end()) return false;
  switch (it->second.kind) {
    case Kind::kCounter: out = it->second.counter->value(); return true;
    case Kind::kGauge: out = it->second.gauge->value(); return true;
    case Kind::kHistogram: out = it->second.histogram->sum(); return true;
  }
  return false;
}

void MetricsRegistry::write_json(std::ostream& os) const {
  const std::scoped_lock lk(mu_);
  const auto labels_json = [](const Labels& labels) {
    std::string out = "{";
    for (std::size_t i = 0; i < labels.size(); ++i) {
      if (i) out += ", ";
      out += "\"" + escape(labels[i].first) + "\": \"" +
             escape(labels[i].second) + "\"";
    }
    return out + "}";
  };
  os << "{\n  \"counters\": [";
  bool first = true;
  for (const auto& [key, s] : series_) {
    if (s.kind != Kind::kCounter) continue;
    os << (first ? "\n" : ",\n") << "    {\"name\": \"" << escape(s.name)
       << "\", \"labels\": " << labels_json(s.labels)
       << ", \"value\": " << num(s.counter->value()) << "}";
    first = false;
  }
  os << (first ? "]" : "\n  ]") << ",\n  \"gauges\": [";
  first = true;
  for (const auto& [key, s] : series_) {
    if (s.kind != Kind::kGauge) continue;
    os << (first ? "\n" : ",\n") << "    {\"name\": \"" << escape(s.name)
       << "\", \"labels\": " << labels_json(s.labels)
       << ", \"value\": " << num(s.gauge->value()) << "}";
    first = false;
  }
  os << (first ? "]" : "\n  ]") << ",\n  \"histograms\": [";
  first = true;
  for (const auto& [key, s] : series_) {
    if (s.kind != Kind::kHistogram) continue;
    const Histogram& h = *s.histogram;
    const auto counts = h.bucket_counts();
    os << (first ? "\n" : ",\n") << "    {\"name\": \"" << escape(s.name)
       << "\", \"labels\": " << labels_json(s.labels) << ", \"buckets\": [";
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < counts.size(); ++b) {
      cumulative += counts[b];
      os << (b ? ", " : "") << "{\"le\": "
         << (b < h.bounds().size() ? num(h.bounds()[b]) : "\"+Inf\"")
         << ", \"count\": " << cumulative << "}";
    }
    os << "], \"count\": " << h.count() << ", \"sum\": " << num(h.sum())
       << "}";
    first = false;
  }
  os << (first ? "]" : "\n  ]") << "\n}\n";
}

void MetricsRegistry::write_prometheus(std::ostream& os) const {
  const std::scoped_lock lk(mu_);
  // One # TYPE line per family (metric name), emitted before its first
  // series; std::map iteration groups a family's series contiguously.
  std::string last_family;
  const auto family_header = [&](const Series& s, const char* type) {
    if (s.name == last_family) return;
    last_family = s.name;
    if (!s.help.empty()) os << "# HELP " << s.name << ' ' << s.help << '\n';
    os << "# TYPE " << s.name << ' ' << type << '\n';
  };
  for (const auto& [key, s] : series_) {
    switch (s.kind) {
      case Kind::kCounter:
        family_header(s, "counter");
        os << s.name << render_labels(s.labels) << ' '
           << num(s.counter->value()) << '\n';
        break;
      case Kind::kGauge:
        family_header(s, "gauge");
        os << s.name << render_labels(s.labels) << ' '
           << num(s.gauge->value()) << '\n';
        break;
      case Kind::kHistogram: {
        family_header(s, "histogram");
        const Histogram& h = *s.histogram;
        const auto counts = h.bucket_counts();
        std::uint64_t cumulative = 0;
        for (std::size_t b = 0; b < counts.size(); ++b) {
          cumulative += counts[b];
          Labels with_le = s.labels;
          with_le.emplace_back(
              "le", b < h.bounds().size() ? num(h.bounds()[b]) : "+Inf");
          os << s.name << "_bucket" << render_labels(with_le) << ' '
             << cumulative << '\n';
        }
        os << s.name << "_sum" << render_labels(s.labels) << ' '
           << num(h.sum()) << '\n';
        os << s.name << "_count" << render_labels(s.labels) << ' ' << h.count()
           << '\n';
        break;
      }
    }
  }
}

}  // namespace mera::obs
