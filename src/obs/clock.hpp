// The one wall-clock path every observability consumer shares.
//
// Timing used to be hand-rolled per call site (time_since_epoch in benches,
// ad-hoc steady_clock reads in the prefetcher and the sharded session), which
// made "seconds" in one report subtly different from "seconds" in another.
// Everything that measures real elapsed time — spans, pool task walls,
// prefetch stalls, bench rows — now goes through these helpers, so every
// number is the same monotonic clock.
#pragma once

#include <chrono>

namespace mera::obs {

using WallClock = std::chrono::steady_clock;

[[nodiscard]] inline WallClock::time_point wall_now() noexcept {
  return WallClock::now();
}

/// Seconds since the steady clock's (arbitrary) epoch — only differences are
/// meaningful.
[[nodiscard]] inline double now_s() noexcept {
  return std::chrono::duration<double>(wall_now().time_since_epoch()).count();
}

/// Real seconds elapsed since `t0`.
[[nodiscard]] inline double seconds_since(WallClock::time_point t0) noexcept {
  return std::chrono::duration<double>(wall_now() - t0).count();
}

/// Minimal elapsed-time helper: starts on construction.
class StopWatch {
 public:
  StopWatch() noexcept : t0_(wall_now()) {}
  void restart() noexcept { t0_ = wall_now(); }
  [[nodiscard]] double elapsed_s() const noexcept { return seconds_since(t0_); }

 private:
  WallClock::time_point t0_;
};

}  // namespace mera::obs
