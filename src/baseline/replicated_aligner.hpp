// pMap-style baseline: replicated index, serial index construction.
//
// Stand-in for BWA-mem / Bowtie2 run under the pMap framework (Section VI-D).
// The *structural* properties the paper's comparison rests on are reproduced
// faithfully:
//   1. the seed index is built by a single process (serial phase S),
//   2. the index is then replicated to every instance (a group of
//      threads_per_instance ranks — pMap ran 4 instances of 6 threads per
//      node because 24 index replicas do not fit in node memory),
//   3. mapping itself is parallel (phase P) with instance-local lookups
//      (zero communication — the replica is local), and
//   4. optionally, a master process scatters the read file to instances
//      (pMap's "read partitioning"; the paper excludes it from the totals).
//
// What cannot be reproduced from structure alone is the absolute cost of
// building a *different* index data structure (BWA's and Bowtie2's FM-indexes
// are far more expensive to build than a hash table). That is exposed as an
// explicit, documented knob: index_build_multiplier scales the measured
// serial build CPU time; the bwamem_like()/bowtie2_like() presets calibrate
// the multipliers (and relative mapping speeds) to the ratios in Table II.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "align/extension.hpp"
#include "core/stats.hpp"
#include "pgas/runtime.hpp"
#include "seq/fasta.hpp"

namespace mera::baseline {

struct BaselineConfig {
  std::string name = "baseline";
  int k = 51;
  int threads_per_instance = 6;
  /// Scales the measured serial index-build CPU time to model costlier
  /// index structures (FM-index construction); 1.0 = plain hash build.
  double index_build_multiplier = 1.0;
  /// Scales the measured mapping CPU time (relative aligner speed).
  double map_time_multiplier = 1.0;
  /// Include pMap's master-scatter read-partitioning phase in the report.
  bool include_read_partition = false;
  std::size_t max_hits_per_seed = 32;
  /// Seed-extension settings; extension.kernel selects the SW backend
  /// (full-DP / banded / striped), same selector the session API exposes.
  align::ExtensionConfig extension{};
  int min_report_score = -1;  ///< -1 = auto (match * k)

  /// BWA-mem-like preset: heavy serial index build, mapping a bit slower
  /// than merAligner's kernel (Table II: 5384 s (S) build, 421 s map).
  static BaselineConfig bwamem_like(int k = 51);
  /// Bowtie2-like preset: even heavier build, fast mapping with
  /// --very-fast (Table II: 10916 s (S) build, 283 s map).
  static BaselineConfig bowtie2_like(int k = 51);
};

struct BaselineResult {
  pgas::PhaseReport report;
  core::PipelineStats stats;
  std::size_t index_entries = 0;
  /// Bytes one replica of the index occupies (the per-instance memory cost
  /// that forces pMap to run fewer instances per node).
  std::size_t index_replica_bytes = 0;
  /// SIMD lane occupancy of the mapping phase's SwKernel::kBatch sweeps,
  /// summed over ranks (all-zero for other kernels).
  align::LaneStats lane_stats;

  [[nodiscard]] double total_time_s() const { return report.total_time_s(); }
  [[nodiscard]] double serial_index_time_s() const {
    return report.time_of("index.build.serial") +
           report.time_of("index.replicate");
  }
  [[nodiscard]] double mapping_time_s() const { return report.time_of("map"); }
};

class ReplicatedIndexAligner {
 public:
  explicit ReplicatedIndexAligner(BaselineConfig cfg = {});

  [[nodiscard]] BaselineResult align(
      pgas::Runtime& rt, const std::vector<seq::SeqRecord>& targets,
      const std::vector<seq::SeqRecord>& reads) const;

  [[nodiscard]] const BaselineConfig& config() const noexcept { return cfg_; }

 private:
  BaselineConfig cfg_;
};

}  // namespace mera::baseline
