#include "baseline/replicated_aligner.hpp"

#include <algorithm>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "cache/seed_cache.hpp"  // KmerHasher
#include "seq/kmer.hpp"
#include "seq/packed_seq.hpp"

namespace mera::baseline {

BaselineConfig BaselineConfig::bwamem_like(int k) {
  BaselineConfig c;
  c.name = "BWA-mem-like";
  c.k = k;
  // Table II calibration: serial build is ~256x one core's share of the
  // parallel build at 7680 cores; FM-index construction over a hash build
  // lands around 8x on equal hardware.
  c.index_build_multiplier = 8.0;
  c.map_time_multiplier = 1.6;  // 421 s vs merAligner's 263 s mapping
  return c;
}

BaselineConfig BaselineConfig::bowtie2_like(int k) {
  BaselineConfig c;
  c.name = "Bowtie2-like";
  c.k = k;
  c.index_build_multiplier = 16.0;  // 10916 s vs 5384 s: ~2x BWA's build
  c.map_time_multiplier = 1.1;      // --very-fast: 283 s, close to merAligner
  return c;
}

namespace {

struct IndexHit {
  std::uint32_t target_id;
  std::uint32_t t_pos;
};

using ReplicaIndex =
    std::unordered_map<seq::Kmer, std::vector<IndexHit>, cache::KmerHasher>;

std::size_t replica_bytes(const ReplicaIndex& idx) {
  std::size_t bytes = idx.size() * (sizeof(seq::Kmer) + 32);  // node overhead
  for (const auto& [k, v] : idx) bytes += v.size() * sizeof(IndexHit);
  return bytes;
}

struct Shared {
  const BaselineConfig& cfg;
  std::span<const seq::SeqRecord> targets;
  std::span<const seq::SeqRecord> reads;
  ReplicaIndex index;  // built by rank 0, read-only replica afterwards
  std::vector<seq::PackedSeq> packed_targets;
  std::vector<core::PipelineStats> stats;
  std::vector<align::LaneStats> lane_stats;  // kBatch lane occupancy, per rank
};

void map_read(pgas::Rank& rank, Shared& sh, const seq::SeqRecord& read,
              core::PipelineStats& st, align::LaneStats& ls) {
  ++st.reads_processed;
  std::size_t found = 0;
  std::unordered_set<std::uint64_t> seen;
  const int k = sh.cfg.k;
  const int min_score = sh.cfg.min_report_score >= 0
                            ? sh.cfg.min_report_score
                            : sh.cfg.extension.scoring.match * k;
  std::vector<align::SeedCandidate> cands;
  for (int strand = 0; strand < 2; ++strand) {
    const std::string oriented =
        strand == 0 ? read.seq : seq::reverse_complement(read.seq);
    const auto qcodes = align::dna_codes(oriented);
    // Buffer every deduplicated candidate of this strand, then extend them
    // in one sweep: kStriped builds the query profile once for the whole
    // strand, kBatch screens all windows in inter-candidate SIMD sweeps.
    // Bit-identical to extending each candidate as it is discovered.
    cands.clear();
    seq::for_each_seed(
        std::string_view(oriented), k,
        [&](std::size_t q_off, const seq::Kmer& m) {
          const auto it = sh.index.find(m);
          if (it == sh.index.end()) return;
          ++st.seed_lookups;
          std::size_t taken = 0;
          for (const IndexHit& h : it->second) {
            if (taken++ >= sh.cfg.max_hits_per_seed) {
              ++st.hits_truncated;
              break;
            }
            const std::int64_t diag = static_cast<std::int64_t>(h.t_pos) -
                                      static_cast<std::int64_t>(q_off);
            const std::uint64_t key =
                (static_cast<std::uint64_t>(h.target_id) << 33) |
                (static_cast<std::uint64_t>(strand) << 32) |
                (static_cast<std::uint64_t>(diag + (1ll << 28)) >> 3);
            if (!seen.insert(key).second) continue;
            ++st.target_fetches;  // replica-local: no communication
            cands.push_back(
                {&sh.packed_targets[h.target_id], q_off, h.t_pos});
          }
          (void)rank;
        });
    const auto exts = align::extend_candidates(
        std::span<const std::uint8_t>(qcodes), cands, k, sh.cfg.extension,
        min_score, &ls);
    st.sw_calls += cands.size();
    for (const auto& ext : exts) {
      if (ext.aln.score >= min_score && !ext.aln.empty()) {
        ++found;
        ++st.alignments_reported;
      }
    }
  }
  if (found > 0) ++st.reads_aligned;
}

void rank_body(pgas::Rank& rank, Shared& sh) {
  const auto me = static_cast<std::size_t>(rank.id());
  const int nranks = rank.nranks();
  const int tpi = std::max(1, sh.cfg.threads_per_instance);
  core::PipelineStats& st = sh.stats[me];

  // ---- pMap read partitioning (optional): a single master scatters the
  // read bytes to every instance leader.
  if (sh.cfg.include_read_partition) {
    rank.phase("read.partition");
    if (rank.id() == 0) {
      std::size_t total_bytes = 0;
      for (const auto& r : sh.reads) total_bytes += r.seq.size() + r.qual.size();
      for (int leader = tpi; leader < nranks; leader += tpi)
        rank.charge_access(leader, total_bytes / static_cast<std::size_t>(
                                                     (nranks + tpi - 1) / tpi));
    }
    rank.barrier();
  }

  // ---- serial index construction (the bottleneck the paper highlights) ----
  rank.phase("index.build.serial");
  if (rank.id() == 0) {
    const double t0 = rank.cpu_seconds();
    for (std::uint32_t tid = 0; tid < sh.targets.size(); ++tid) {
      sh.packed_targets[tid] = seq::PackedSeq(sh.targets[tid].seq);
      seq::for_each_seed(std::string_view(sh.targets[tid].seq), sh.cfg.k,
                         [&](std::size_t off, const seq::Kmer& m) {
                           sh.index[m].push_back(
                               {tid, static_cast<std::uint32_t>(off)});
                           ++st.seeds_indexed;
                         });
    }
    // Model costlier index structures (FM-index build) as a multiple of the
    // measured hash-build CPU time; see header comment.
    const double build_cpu = rank.cpu_seconds() - t0;
    if (sh.cfg.index_build_multiplier > 1.0)
      rank.charge_time((sh.cfg.index_build_multiplier - 1.0) * build_cpu);
  }
  rank.barrier();

  // ---- index replication to every instance leader -------------------------
  rank.phase("index.replicate");
  const std::size_t idx_bytes = replica_bytes(sh.index);
  if (rank.id() != 0 && rank.id() % tpi == 0)
    rank.charge_access(0, idx_bytes);  // leader pulls a full replica
  rank.barrier();

  // ---- parallel mapping ----------------------------------------------------
  rank.phase("map");
  {
    const std::size_t n = sh.reads.size();
    const std::size_t lo = n * me / static_cast<std::size_t>(nranks);
    const std::size_t hi = n * (me + 1) / static_cast<std::size_t>(nranks);
    const double t0 = rank.cpu_seconds();
    for (std::size_t i = lo; i < hi; ++i)
      map_read(rank, sh, sh.reads[i], st, sh.lane_stats[me]);
    const double map_cpu = rank.cpu_seconds() - t0;
    if (sh.cfg.map_time_multiplier > 1.0)
      rank.charge_time((sh.cfg.map_time_multiplier - 1.0) * map_cpu);
  }
  rank.barrier();
}

}  // namespace

ReplicatedIndexAligner::ReplicatedIndexAligner(BaselineConfig cfg)
    : cfg_(std::move(cfg)) {}

BaselineResult ReplicatedIndexAligner::align(
    pgas::Runtime& rt, const std::vector<seq::SeqRecord>& targets,
    const std::vector<seq::SeqRecord>& reads) const {
  Shared sh{cfg_, targets, reads, {}, {}, {}, {}};
  sh.packed_targets.resize(targets.size());
  sh.stats.assign(static_cast<std::size_t>(rt.nranks()), {});
  sh.lane_stats.assign(static_cast<std::size_t>(rt.nranks()), {});
  rt.run([&sh](pgas::Rank& rank) { rank_body(rank, sh); });
  BaselineResult res;
  res.report = rt.report();
  for (const auto& s : sh.stats) res.stats += s;
  for (const auto& ls : sh.lane_stats) res.lane_stats += ls;
  res.index_entries = 0;
  for (const auto& [k, v] : sh.index) res.index_entries += v.size();
  res.index_replica_bytes = replica_bytes(sh.index);
  return res;
}

}  // namespace mera::baseline
