#include "core/target_store.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/fragmenter.hpp"

namespace mera::core {

TargetStore::TargetStore(int nranks, Options opt)
    : opt_(opt),
      nranks_(nranks),
      targets_(static_cast<std::size_t>(nranks)),
      fragments_(static_cast<std::size_t>(nranks)) {
  if (opt_.seed_len < 1) throw std::invalid_argument("TargetStore: seed_len < 1");
  if (opt_.fragment_len < static_cast<std::size_t>(opt_.seed_len))
    throw std::invalid_argument("TargetStore: fragment_len < seed_len");
}

void TargetStore::add_local_targets(pgas::Rank& rank,
                                    std::vector<seq::SeqRecord> recs) {
  if (constructed_)
    throw std::logic_error("TargetStore: add after finish_construction");
  auto& mine = targets_[static_cast<std::size_t>(rank.id())];
  mine.reserve(mine.size() + recs.size());
  for (auto& r : recs) {
    Target t;
    t.name = std::move(r.name);
    t.seq = seq::PackedSeq(r.seq);  // contigs are N-free by construction
    mine.push_back(std::move(t));
  }
}

void TargetStore::finish_construction(pgas::Rank& rank) {
  const auto me = static_cast<std::size_t>(rank.id());

  // Build local fragments with k-1 overlap => disjoint seed sets whose union
  // is the target's seed set (Section IV-A; see core/fragmenter.hpp).
  auto& frags = fragments_[me];
  frags.clear();
  for (std::size_t li = 0; li < targets_[me].size(); ++li) {
    for (const FragmentSpan& s : fragment_spans(
             targets_[me][li].seq.size(), opt_.fragment_len, opt_.seed_len)) {
      frags.emplace_back(static_cast<std::uint32_t>(li),  // local; fixed below
                         static_cast<std::uint32_t>(s.offset),
                         static_cast<std::uint32_t>(s.length));
    }
  }

  rank.barrier();
  if (rank.id() == 0) {
    target_start_.assign(static_cast<std::size_t>(nranks_) + 1, 0);
    fragment_start_.assign(static_cast<std::size_t>(nranks_) + 1, 0);
    for (int r = 0; r < nranks_; ++r) {
      const auto ri = static_cast<std::size_t>(r);
      target_start_[ri + 1] =
          target_start_[ri] + static_cast<std::uint32_t>(targets_[ri].size());
      fragment_start_[ri + 1] =
          fragment_start_[ri] + static_cast<std::uint32_t>(fragments_[ri].size());
    }
    total_targets_ = target_start_[static_cast<std::size_t>(nranks_)];
    total_fragments_ = fragment_start_[static_cast<std::size_t>(nranks_)];
    constructed_ = true;
  }
  rank.barrier();

  // Rebase fragment parent ids from local to global target ids.
  const std::uint32_t tbase = target_start_[me];
  for (auto& f : fragments_[me]) f.parent_target += tbase;
  rank.barrier();
}

int TargetStore::owner_of_target(std::uint32_t gid) const noexcept {
  const auto it =
      std::upper_bound(target_start_.begin(), target_start_.end(), gid);
  return static_cast<int>(it - target_start_.begin()) - 1;
}

int TargetStore::owner_of_fragment(std::uint32_t fid) const noexcept {
  const auto it =
      std::upper_bound(fragment_start_.begin(), fragment_start_.end(), fid);
  return static_cast<int>(it - fragment_start_.begin()) - 1;
}

std::pair<std::uint32_t, std::uint32_t> TargetStore::local_target_range(
    int rank) const {
  const auto ri = static_cast<std::size_t>(rank);
  return {target_start_[ri], target_start_[ri + 1]};
}

std::pair<std::uint32_t, std::uint32_t> TargetStore::local_fragment_range(
    int rank) const {
  const auto ri = static_cast<std::size_t>(rank);
  return {fragment_start_[ri], fragment_start_[ri + 1]};
}

std::size_t TargetStore::target_local_index(std::uint32_t gid, int owner) const {
  return gid - target_start_[static_cast<std::size_t>(owner)];
}

const Target& TargetStore::fetch_target(pgas::Rank& rank,
                                        std::uint32_t gid) const {
  const int owner = owner_of_target(gid);
  const Target& t = targets_[static_cast<std::size_t>(owner)]
                            [target_local_index(gid, owner)];
  rank.charge_access(owner, t.seq.packed_bytes());
  return t;
}

std::size_t TargetStore::target_transfer_bytes(std::uint32_t gid) const {
  const int owner = owner_of_target(gid);
  return targets_[static_cast<std::size_t>(owner)]
                 [target_local_index(gid, owner)]
                     .seq.packed_bytes();
}

const Fragment& TargetStore::fetch_fragment(pgas::Rank& rank,
                                            std::uint32_t fid) const {
  const int owner = owner_of_fragment(fid);
  rank.charge_access(owner, sizeof(std::uint32_t) * 3 + sizeof(bool));
  return fragment_unsync(fid);
}

void TargetStore::clear_single_copy(pgas::Rank& rank, std::uint32_t fid) {
  const int owner = owner_of_fragment(fid);
  rank.charge_access(owner, sizeof(bool));
  fragments_[static_cast<std::size_t>(owner)]
            [fid - fragment_start_[static_cast<std::size_t>(owner)]]
                .single_copy_seeds.store(false, std::memory_order_relaxed);
}

const Target& TargetStore::target_unsync(std::uint32_t gid) const {
  const int owner = owner_of_target(gid);
  return targets_[static_cast<std::size_t>(owner)]
                 [target_local_index(gid, owner)];
}

const Fragment& TargetStore::fragment_unsync(std::uint32_t fid) const {
  const int owner = owner_of_fragment(fid);
  return fragments_[static_cast<std::size_t>(owner)]
                   [fid - fragment_start_[static_cast<std::size_t>(owner)]];
}

double TargetStore::single_copy_fraction() const {
  std::size_t sc = 0, total = 0;
  for (const auto& per_rank : fragments_) {
    total += per_rank.size();
    for (const auto& f : per_rank)
      sc += f.single_copy_seeds.load(std::memory_order_relaxed) ? 1u : 0u;
  }
  return total == 0 ? 0.0 : static_cast<double>(sc) / static_cast<double>(total);
}

}  // namespace mera::core
