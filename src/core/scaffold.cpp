#include "core/scaffold.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

namespace mera::core {

Scaffolder::Scaffolder(std::vector<std::size_t> contig_lengths,
                       ScaffoldOptions opt)
    : contig_lengths_(std::move(contig_lengths)), opt_(opt) {}

std::vector<MatePair> Scaffolder::pair_adjacent(
    const std::vector<AlignmentRecord>& best_per_read,
    const std::vector<bool>& aligned) {
  if (best_per_read.size() != aligned.size())
    throw std::invalid_argument("pair_adjacent: size mismatch");
  std::vector<MatePair> pairs;
  pairs.reserve(best_per_read.size() / 2);
  for (std::size_t i = 0; i + 1 < best_per_read.size(); i += 2) {
    MatePair p;
    p.first = best_per_read[i];
    p.second = best_per_read[i + 1];
    p.first_aligned = aligned[i];
    p.second_aligned = aligned[i + 1];
    pairs.push_back(std::move(p));
  }
  return pairs;
}

void Scaffolder::bump_edge(std::uint32_t from, std::uint32_t to, double gap) {
  const std::uint64_t key = (static_cast<std::uint64_t>(from) << 32) | to;
  for (auto& [k, e] : edges_) {
    if (k == key) {
      ++e.support;
      e.gap_sum += gap;
      return;
    }
  }
  edges_.push_back({key, Edge{1, gap}});
}

void Scaffolder::add_pairs(const std::vector<MatePair>& pairs) {
  for (const auto& p : pairs) {
    if (!p.first_aligned || !p.second_aligned) continue;
    if (p.first.score < opt_.min_score || p.second.score < opt_.min_score)
      continue;
    const auto& a = p.first;
    const auto& b = p.second;
    if (a.target_id == b.target_id) continue;

    // FR library: a forward mate points toward its contig's *end*; distance
    // left to travel within the contig is len - t_begin. A reverse mate
    // points toward its contig's *start*; remaining distance is t_end.
    // If the insert spans a gap, the forward mate's contig precedes the
    // reverse mate's contig in the genome.
    const AlignmentRecord* fwd = nullptr;
    const AlignmentRecord* rev = nullptr;
    if (!a.reverse && b.reverse) {
      fwd = &a;
      rev = &b;
    } else if (a.reverse && !b.reverse) {
      fwd = &b;
      rev = &a;
    } else {
      continue;  // discordant orientation: not a scaffolding witness
    }
    const std::size_t len_from = contig_lengths_[fwd->target_id];
    const double into_from =
        static_cast<double>(len_from) - static_cast<double>(fwd->t_begin);
    const double into_to = static_cast<double>(rev->t_end);
    const double gap =
        static_cast<double>(opt_.insert_mean) - into_from - into_to;
    bump_edge(fwd->target_id, rev->target_id, gap);
  }
}

std::vector<ContigLink> Scaffolder::links() const {
  std::vector<ContigLink> out;
  for (const auto& [key, e] : edges_) {
    if (static_cast<std::size_t>(e.support) < opt_.min_links) continue;
    ContigLink l;
    l.from = static_cast<std::uint32_t>(key >> 32);
    l.to = static_cast<std::uint32_t>(key & 0xFFFFFFFFu);
    l.support = e.support;
    l.gap_estimate = e.gap_sum / e.support;
    out.push_back(l);
  }
  std::sort(out.begin(), out.end(),
            [](const ContigLink& x, const ContigLink& y) {
              return x.support > y.support;
            });
  return out;
}

std::vector<Scaffold> Scaffolder::build() const {
  const auto accepted = links();
  const std::size_t n = contig_lengths_.size();
  std::vector<std::int64_t> next(n, -1), prev(n, -1);
  std::vector<double> gap_after(n, 0);

  // Union-find to reject cycles.
  std::vector<std::uint32_t> root(n);
  for (std::size_t i = 0; i < n; ++i) root[i] = static_cast<std::uint32_t>(i);
  const auto find = [&](std::uint32_t x) {
    while (root[x] != x) {
      root[x] = root[root[x]];
      x = root[x];
    }
    return x;
  };

  for (const auto& l : accepted) {
    if (next[l.from] != -1 || prev[l.to] != -1) continue;  // degree cap
    const auto ra = find(l.from), rb = find(l.to);
    if (ra == rb) continue;  // would close a cycle
    next[l.from] = l.to;
    prev[l.to] = l.from;
    gap_after[l.from] = l.gap_estimate;
    root[ra] = rb;
  }

  std::vector<Scaffold> scaffolds;
  std::vector<bool> visited(n, false);
  for (std::size_t c = 0; c < n; ++c) {
    if (visited[c] || prev[c] != -1) continue;  // chain heads only
    Scaffold s;
    std::int64_t cur = static_cast<std::int64_t>(c);
    while (cur != -1) {
      visited[static_cast<std::size_t>(cur)] = true;
      s.contigs.push_back(static_cast<std::uint32_t>(cur));
      const std::int64_t nxt = next[static_cast<std::size_t>(cur)];
      if (nxt != -1) s.gaps.push_back(gap_after[static_cast<std::size_t>(cur)]);
      cur = nxt;
    }
    scaffolds.push_back(std::move(s));
  }
  // Longest scaffolds first (like assembler N50 reporting).
  std::sort(scaffolds.begin(), scaffolds.end(),
            [](const Scaffold& a, const Scaffold& b) {
              return a.contigs.size() > b.contigs.size();
            });
  return scaffolds;
}

}  // namespace mera::core
