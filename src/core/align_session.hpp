// The aligning layer of the session-based aligner API.
//
// An AlignSession binds query-side configuration (software caches, seed
// thresholds, SW kernel backend, load balancing) to a prebuilt
// core::IndexedReference and aligns query batches against it, repeatedly:
//
//   auto ref = IndexedReference::build(rt, targets, icfg);   // pay once
//   AlignSession session(ref, scfg);
//   VectorSink sink(rt.nranks());
//   auto r1 = session.align_batch(rt, batch1, sink);         // io.reads+align
//   auto r2 = session.align_batch(rt, batch2, sink);         // index reused
//
// Each batch is a fresh SPMD run whose PhaseReport contains only io.reads and
// align — never index.build/index.mark, which belong to the reference — so
// the per-batch cost of index reuse is directly visible. The session's
// software caches (Section III-B) persist across batches: a seed or target
// fetched for batch 1 is a warm hit for batch 2.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "align/extension.hpp"
#include "cache/seed_cache.hpp"
#include "cache/target_cache.hpp"
#include "core/alignment_sink.hpp"
#include "core/indexed_reference.hpp"
#include "core/stats.hpp"
#include "pgas/runtime.hpp"
#include "seq/fasta.hpp"

namespace mera::exec {
class ThreadPool;
}
namespace mera::cache {
struct SnapshotMeta;
}

namespace mera::core {

/// Query-side knobs (Sections III-B, IV-B, IV-C). Everything that shapes the
/// index itself lives in IndexConfig.
struct SessionConfig {
  // Software caches (Section III-B); capacities are per simulated node.
  bool seed_cache = true;
  std::size_t seed_cache_capacity = 1u << 18;
  bool target_cache = true;
  std::size_t target_cache_bytes = 64u << 20;
  /// Eviction-aware admission on both caches (multi-tenant batch streams):
  /// a full cache refuses entries colder than anything it would have to
  /// evict for them, so one tenant's cold scan cannot churn out another's
  /// proven-hot working set — including a working set restored by
  /// load_caches(), whose per-entry hit counters persist. Never changes
  /// emitted records, only which lookups stay cached.
  bool cache_admission = false;

  /// Take the Lemma-1 exact-match fast path (requires a reference built with
  /// IndexConfig::exact_match; silently disabled otherwise).
  bool exact_match = true;

  // Load balancing (Section IV-B): applied per batch before the blocked
  // partition — in-memory batches permute the query vector, file batches
  // permute the record-index assignment (the legacy file path silently
  // ignored this knob).
  bool permute_queries = true;
  std::uint64_t permute_seed = 0xC0FFEEULL;

  // Aligning phase.
  std::size_t max_hits_per_seed = 32;  ///< Section IV-C threshold
  std::size_t seed_stride = 1;         ///< probe every seed_stride-th seed
  align::ExtensionConfig extension{};  ///< incl. the SW kernel backend
  /// Minimum score to report; -1 = auto (match score * k, i.e. at least the
  /// seed region must align).
  int min_report_score = -1;
  /// Cross-read candidate pooling for SwKernel::kBatch (ignored by the other
  /// kernels): 0 = off (flush per read per strand, the pre-pooling
  /// behaviour); 1 = on with the auto flush threshold (the resolved tier's
  /// 8-bit lane width); N >= 2 = on, flush a length-class bucket at N
  /// pending candidates. Pooling defers scoring into a per-rank
  /// align::PooledExtensionQueue and replays results in exact per-read
  /// order, so records, stats and SAM bytes are bit-identical to 0 — only
  /// lane occupancy (BatchResult::lane_stats) and seconds change.
  std::size_t sw_pooling = 1;
};

/// Outcome of one align_batch() call.
struct BatchResult {
  /// Phases of this batch only: startup, io.reads, align. Index phases never
  /// appear here — they are in IndexedReference::build_report().
  pgas::PhaseReport report;
  PipelineStats stats;  ///< summed over ranks, this batch only
  std::vector<PipelineStats> per_rank;
  cache::CacheCounters seed_cache;    ///< this batch's cache activity
  cache::CacheCounters target_cache;
  /// SIMD lane occupancy of this batch's SwKernel::kBatch sweeps, summed
  /// over ranks (all-zero for other kernels). Deliberately outside
  /// PipelineStats: pooled and per-read flushing produce identical
  /// PipelineStats by contract but different lane shapes by design.
  align::LaneStats lane_stats;

  [[nodiscard]] double total_time_s() const { return report.total_time_s(); }
};

/// How align_batch_files() walks a stream of reads-batch files.
struct FileStreamOptions {
  /// Overlap batch N+1's load with batch N's align phase (double buffering
  /// through core::BatchPrefetcher). Off = load-then-align, strictly serial
  /// — same records, same output, no overlap; the pair is how the overlap is
  /// measured.
  bool prefetch = true;
  /// Loader pool; null = a private single-thread pool for the call. One
  /// worker is enough: at most one batch is ever in flight.
  exec::ThreadPool* pool = nullptr;
};

/// Outcome of one align_batch_files() stream; BatchT is the per-batch
/// result (core::BatchResult, or shard::ShardedBatchResult for the sharded
/// session — one accounting contract for both). The per-phase report makes
/// the overlap measurable: with prefetching, wall_s approaches the align
/// time alone while the summed io.reads/load time hides inside it.
template <typename BatchT>
struct BasicFileStreamResult {
  std::vector<BatchT> batches;  ///< one per file, in file order
  pgas::PhaseReport report;     ///< batches' phases appended in order
  PipelineStats stats;          ///< summed over batches
  double wall_s = 0.0;       ///< measured real end-to-end seconds
  double load_wall_s = 0.0;  ///< summed real load seconds (overlapped when prefetching)
  double stall_s = 0.0;      ///< real seconds aligning sat waiting on a load

  /// Simulated (modeled) serial time, for comparison against wall_s.
  [[nodiscard]] double total_time_s() const { return report.total_time_s(); }
};

using FileStreamResult = BasicFileStreamResult<BatchResult>;

class AlignSession {
 public:
  /// The reference handle is cheap (shared immutable state). The Lemma-1
  /// fast path runs only when the reference was built with exact-match
  /// marking; on an unmarked reference it is disabled for correctness even
  /// if cfg.exact_match asks for it.
  explicit AlignSession(IndexedReference ref, SessionConfig cfg = {});

  /// Align one in-memory batch; callable any number of times. The runtime's
  /// topology must match the one the reference was built on.
  BatchResult align_batch(pgas::Runtime& rt,
                          const std::vector<seq::SeqRecord>& reads,
                          AlignmentSink& sink);
  /// In-place variant for callers that hand the batch over (the prefetched
  /// file stream): query permutation happens in place, no copy.
  BatchResult align_batch(pgas::Runtime& rt, std::vector<seq::SeqRecord>&& reads,
                          AlignmentSink& sink);

  /// Align one SeqDB file batch; each rank reads only its record partition.
  BatchResult align_batch_file(pgas::Runtime& rt,
                               const std::string& reads_seqdb,
                               AlignmentSink& sink);

  /// Align a stream of reads-batch files (FASTQ or SeqDB) in file order,
  /// overlapping each batch's load with the previous batch's align phase
  /// when opt.prefetch is set. Emission into `sink` is strictly batch-
  /// ordered and bit-identical to calling align_batch_file per file.
  /// `on_batch(index, result)` fires as each batch completes, so callers
  /// can report progress while the stream is still running.
  FileStreamResult align_batch_files(
      pgas::Runtime& rt, const std::vector<std::string>& paths,
      AlignmentSink& sink, const FileStreamOptions& opt = {},
      const std::function<void(std::size_t, const BatchResult&)>& on_batch =
          {});

  [[nodiscard]] const SessionConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] const IndexedReference& reference() const noexcept {
    return ref_;
  }
  [[nodiscard]] std::size_t batches_aligned() const noexcept {
    return batches_done_;
  }
  /// Cumulative cache counters over the whole session — including any
  /// history restored by load_caches().
  [[nodiscard]] cache::CacheCounters seed_cache_counters() const;
  [[nodiscard]] cache::CacheCounters target_cache_counters() const;

  // --- cache persistence (warm start across sessions and processes) --------
  /// Snapshot this session's software caches — entries, per-entry hit
  /// counts, cumulative counters — into `path` (one file), stamped with the
  /// seed length, `rt`'s cost model and the reference fingerprint so it can
  /// never be loaded against the wrong index. Callable at any time; safe
  /// concurrently with an in-flight align_batch (each cache shard is
  /// snapshotted under its lock). Throws cache::CacheSnapshotError on I/O
  /// failure. A session with both caches disabled writes a valid (empty)
  /// snapshot.
  void save_caches(const pgas::Runtime& rt, const std::string& path) const;
  /// Replace this session's cache contents with a snapshot saved by
  /// save_caches — typically by a previous process over the same reference.
  /// Warm-started batches emit bit-identical records/SAM to cold ones;
  /// persistence changes seconds, never bytes. Throws
  /// cache::CacheSnapshotError (caches untouched) when the snapshot is
  /// missing, truncated, corrupt, or was recorded against a different
  /// reference / topology / cost model.
  ///
  /// Counter baseline: restored CacheCounters are cumulative across
  /// processes (seed_cache_counters() includes the saving session's
  /// history), and the per-batch delta baseline is re-seeded to the loaded
  /// values — the next BatchResult reports only post-load cache activity,
  /// never the imported history.
  void load_caches(const pgas::Runtime& rt, const std::string& path);

 private:
  BatchResult run_batch(pgas::Runtime& rt,
                        std::span<const seq::SeqRecord> mem_reads,
                        const std::string& seqdb_path, AlignmentSink& sink);
  /// What this session's snapshots are stamped with and validated against.
  [[nodiscard]] cache::SnapshotMeta snapshot_meta(const pgas::Runtime& rt) const;

  IndexedReference ref_;
  SessionConfig cfg_;
  std::optional<cache::SeedIndexCache> scache_;
  std::optional<cache::TargetCache> tcache_;
  cache::CacheCounters seed_base_;    // snapshot at last batch end
  cache::CacheCounters target_base_;
  std::size_t batches_done_ = 0;
};

}  // namespace mera::core
