// The indexing layer of the session-based aligner API.
//
// The paper's pipeline is phase-separated: distributed seed-index
// construction (io.targets / index.build / index.mark) is a distinct,
// barrier-delimited stage from aligning. IndexedReference materializes that
// boundary as an owning object: it is built ONCE over a target collection —
// distributing the targets, constructing the distributed seed index, and
// running the exact-match single-copy marking — and can then serve any number
// of query batches through core::AlignSession without paying reconstruction.
// State is immutable after build() and shared, so copies are cheap handles
// and concurrent sessions may read the same reference.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "core/stats.hpp"
#include "core/target_store.hpp"
#include "dht/seed_index.hpp"
#include "pgas/runtime.hpp"
#include "seq/fasta.hpp"

namespace mera::core {

namespace detail {
struct IndexedReferenceState;  // TargetStore + SeedIndex + build diagnostics
}

/// Knobs that shape the index itself (Section III-A / IV-A). Everything that
/// only affects how queries are aligned lives in SessionConfig instead.
struct IndexConfig {
  int k = 51;  ///< seed length (paper: 51 for human/wheat, 19 for E. coli)

  // Distributed seed index construction (Section III-A).
  bool aggregating_stores = true;
  std::size_t buffer_S = 1000;

  // Exact-match preprocessing (Section IV-A): mark single-copy fragments so
  // sessions can take the Lemma-1 fast path.
  bool exact_match = true;
  /// Index-fragment length; SIZE_MAX turns fragmentation off.
  std::size_t fragment_len = 1024;
};

class IndexedReference {
 public:
  /// Collective build from in-memory targets, block-partitioned over ranks.
  [[nodiscard]] static IndexedReference build(
      pgas::Runtime& rt, const std::vector<seq::SeqRecord>& targets,
      IndexConfig cfg = {});

  /// Collective build from a FASTA file; each rank parses only its own byte
  /// partition (parallel I/O).
  [[nodiscard]] static IndexedReference build_from_fasta(
      pgas::Runtime& rt, const std::string& target_fasta, IndexConfig cfg = {});

  [[nodiscard]] const IndexConfig& config() const noexcept;
  [[nodiscard]] const TargetStore& targets() const noexcept;
  [[nodiscard]] const dht::SeedIndex& index() const noexcept;
  /// Topology the reference was built on; sessions must run on a matching
  /// one (the index's rank/node layout is baked in at build time).
  [[nodiscard]] const pgas::Topology& topology() const noexcept;
  [[nodiscard]] int nranks() const noexcept;

  /// True when index.mark ran, i.e. single-copy flags are trustworthy and a
  /// session may use the Lemma-1 exact-match fast path.
  [[nodiscard]] bool exact_match_marked() const noexcept;

  /// Content fingerprint of this reference: hashes the index-shaping config
  /// (k, fragment length), the topology it was built on, and every target's
  /// name, length and packed bases. Two references with equal fingerprints
  /// assign the same ids to the same sequences, so state recorded against
  /// one (e.g. a cache snapshot's seed-hit lists) is valid against the
  /// other. O(total bases); intended for snapshot save/load, not hot paths.
  [[nodiscard]] std::uint64_t fingerprint() const;

  /// Phase report of the build run: startup, io.targets, index.build, and
  /// (when exact_match) index.mark. Batches never repeat these phases.
  [[nodiscard]] const pgas::PhaseReport& build_report() const noexcept;
  /// Per-rank pipeline counters of the build (seeds_indexed).
  [[nodiscard]] const std::vector<PipelineStats>& build_stats() const noexcept;

  [[nodiscard]] double single_copy_fraction() const;
  [[nodiscard]] std::size_t index_entries() const;

 private:
  explicit IndexedReference(
      std::shared_ptr<const detail::IndexedReferenceState> st);
  std::shared_ptr<const detail::IndexedReferenceState> state_;
};

}  // namespace mera::core
