// Distributed store of target sequences (contigs) and their index fragments.
//
// Targets are distributed across ranks exactly as in the paper: each rank
// reads a distinct portion of the target file and keeps those sequences in
// its shared segment, addressable by every other rank (Figure 2). Global
// target ids are blocked per rank so ownership is a O(1) computation.
//
// On top of targets sits the *fragment* table (Section IV-A, last part): each
// target is cut into subsequences of a fixed fragment length that overlap by
// k-1 bases, so their seed sets are disjoint and their union is exactly the
// target's seed set. Fragments — not whole targets — are what the seed index
// references, and the `single_copy_seeds` flag lives per fragment; shorter
// fragments make the flag far more likely to survive, which is the whole
// point of the fragmentation strategy. A fragment length of SIZE_MAX yields
// one fragment per target (fragmentation off).
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "pgas/runtime.hpp"
#include "seq/fasta.hpp"
#include "seq/packed_seq.hpp"

namespace mera::core {

struct Target {
  std::string name;
  seq::PackedSeq seq;
};

struct Fragment {
  std::uint32_t parent_target = 0;  ///< global target id
  std::uint32_t parent_offset = 0;  ///< fragment start within the target
  std::uint32_t length = 0;
  /// True iff every seed of this fragment occurs exactly once across *all*
  /// fragments (Lemma 1 precondition). Set during index finalization.
  std::atomic<bool> single_copy_seeds{true};

  Fragment() = default;
  Fragment(std::uint32_t parent, std::uint32_t off, std::uint32_t len)
      : parent_target(parent), parent_offset(off), length(len) {}
  Fragment(const Fragment& o)
      : parent_target(o.parent_target),
        parent_offset(o.parent_offset),
        length(o.length),
        single_copy_seeds(o.single_copy_seeds.load(std::memory_order_relaxed)) {}
};

class TargetStore {
 public:
  struct Options {
    int seed_len = 51;
    /// Fragment length F; fragments start every F-k+1 bases. SIZE_MAX = off.
    std::size_t fragment_len = std::numeric_limits<std::size_t>::max();
  };

  TargetStore(int nranks, Options opt);

  // --- collective construction ---------------------------------------------
  /// Each rank deposits the targets it read from its file partition, then all
  /// ranks call finish_construction() (internally barrier-synchronized).
  void add_local_targets(pgas::Rank& rank, std::vector<seq::SeqRecord> recs);
  /// Collective: assigns global ids (block per rank) and builds fragments.
  void finish_construction(pgas::Rank& rank);

  // --- global id arithmetic -------------------------------------------------
  [[nodiscard]] std::uint32_t num_targets() const noexcept { return total_targets_; }
  [[nodiscard]] std::uint32_t num_fragments() const noexcept { return total_fragments_; }
  [[nodiscard]] int owner_of_target(std::uint32_t gid) const noexcept;
  [[nodiscard]] int owner_of_fragment(std::uint32_t fid) const noexcept;
  /// Global target ids owned by `rank`: [first, first+count).
  [[nodiscard]] std::pair<std::uint32_t, std::uint32_t> local_target_range(int rank) const;
  [[nodiscard]] std::pair<std::uint32_t, std::uint32_t> local_fragment_range(int rank) const;

  // --- accessors (one-sided; caller is charged for remote owners) ----------
  /// Fetch a target by global id; charges a transfer of its packed bytes when
  /// the owner is a different rank. (The target cache layers on top of this.)
  [[nodiscard]] const Target& fetch_target(pgas::Rank& rank, std::uint32_t gid) const;
  /// Modeled bytes a fetch_target of `gid` moves (packed sequence payload).
  [[nodiscard]] std::size_t target_transfer_bytes(std::uint32_t gid) const;

  /// Fragment metadata is small; a remote read charges a fixed-size transfer.
  [[nodiscard]] const Fragment& fetch_fragment(pgas::Rank& rank, std::uint32_t fid) const;

  /// Clear the single-copy flag of fragment `fid` (one-sided put; used while
  /// propagating duplicate-seed marks during index finalization).
  void clear_single_copy(pgas::Rank& rank, std::uint32_t fid);

  /// Local (unaccounted) access for owners iterating their own data.
  [[nodiscard]] const Target& target_unsync(std::uint32_t gid) const;
  [[nodiscard]] const Fragment& fragment_unsync(std::uint32_t fid) const;

  /// Fraction of fragments still flagged single-copy (diagnostics).
  [[nodiscard]] double single_copy_fraction() const;

 private:
  [[nodiscard]] std::size_t target_local_index(std::uint32_t gid, int owner) const;

  Options opt_;
  int nranks_;
  std::vector<std::vector<Target>> targets_;          // per rank
  std::vector<std::vector<Fragment>> fragments_;      // per rank
  std::vector<std::uint32_t> target_start_;           // per rank prefix, size nranks+1
  std::vector<std::uint32_t> fragment_start_;
  std::uint32_t total_targets_ = 0;
  std::uint32_t total_fragments_ = 0;
  bool constructed_ = false;
};

}  // namespace mera::core
