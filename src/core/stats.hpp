// Pipeline counters, aggregated across ranks at the end of a run.
#pragma once

#include <cstdint>
#include <iosfwd>

namespace mera::core {

struct PipelineStats {
  // Work items.
  std::uint64_t reads_processed = 0;
  std::uint64_t reads_aligned = 0;       ///< reads with >= 1 reported alignment
  std::uint64_t alignments_reported = 0;
  std::uint64_t seeds_indexed = 0;

  // Aligning-phase operations.
  std::uint64_t seed_lookups = 0;        ///< distributed-index lookups issued
  std::uint64_t seed_cache_hits = 0;     ///< lookups served by the node cache
  std::uint64_t target_fetches = 0;      ///< target sequences pulled
  std::uint64_t target_cache_hits = 0;
  std::uint64_t sw_calls = 0;            ///< Smith-Waterman extensions run
  std::uint64_t sw_cells = 0;            ///< DP cells scored (window x query)
  std::uint64_t memcmp_calls = 0;        ///< exact-match fast-path comparisons
  std::uint64_t exact_match_reads = 0;   ///< reads resolved by the Lemma-1 path
  std::uint64_t hits_truncated = 0;      ///< lookups clipped by max_hits_per_seed

  // Modeled communication seconds, split by purpose (max over ranks is what
  // Figure 9 plots; we also keep the rank-summed volume for sanity checks).
  double comm_lookup_s = 0.0;
  double comm_fetch_s = 0.0;

  PipelineStats& operator+=(const PipelineStats& o) noexcept {
    reads_processed += o.reads_processed;
    reads_aligned += o.reads_aligned;
    alignments_reported += o.alignments_reported;
    seeds_indexed += o.seeds_indexed;
    seed_lookups += o.seed_lookups;
    seed_cache_hits += o.seed_cache_hits;
    target_fetches += o.target_fetches;
    target_cache_hits += o.target_cache_hits;
    sw_calls += o.sw_calls;
    sw_cells += o.sw_cells;
    memcmp_calls += o.memcmp_calls;
    exact_match_reads += o.exact_match_reads;
    hits_truncated += o.hits_truncated;
    comm_lookup_s += o.comm_lookup_s;
    comm_fetch_s += o.comm_fetch_s;
    return *this;
  }

  [[nodiscard]] double aligned_fraction() const noexcept {
    return reads_processed == 0
               ? 0.0
               : static_cast<double>(reads_aligned) /
                     static_cast<double>(reads_processed);
  }
  [[nodiscard]] double exact_fraction() const noexcept {
    return reads_aligned == 0
               ? 0.0
               : static_cast<double>(exact_match_reads) /
                     static_cast<double>(reads_aligned);
  }

  void print(std::ostream& os) const;
};

}  // namespace mera::core
