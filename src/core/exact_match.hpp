// The Lemma-1 exact-match fast path (Section IV-A).
//
// If a query's seed hits a fragment whose seeds are all uniquely located
// (single_copy_seeds == true) and the query matches the target exactly over
// its full length at the placement the seed implies, then no other target can
// match the query anywhere (Lemma 1 with s == q): one seed lookup plus one
// packed string comparison replaces L lookups and C Smith-Waterman runs.
#pragma once

#include <cstdint>
#include <optional>

#include "dht/seed_index.hpp"
#include "seq/packed_seq.hpp"

namespace mera::core {

struct ExactPlacement {
  std::uint32_t target_id = 0;
  std::size_t t_begin = 0;  ///< where query base 0 lands on the full target
};

/// Placement of the whole query implied by seed `hit` at query offset `q_off`.
/// nullopt when the query would hang off either end of the target (the
/// exact-match path requires the query to lie fully inside the target).
[[nodiscard]] std::optional<ExactPlacement> exact_placement(
    const dht::SeedHit& hit, std::size_t q_off, std::size_t q_len,
    std::size_t target_len);

/// Full-length packed comparison of query vs target at `placement`.
[[nodiscard]] bool exact_compare(const seq::PackedSeq& query,
                                 const seq::PackedSeq& target,
                                 const ExactPlacement& placement);

}  // namespace mera::core
