// Internal: the one load→align stream loop behind the plain and sharded
// align_batch_files() entry points.
//
// Both sessions walk a file stream the same way — prefetched loads or
// strictly serial load-then-align, per-batch observer callback, wall/load/
// stall accounting, report+stats aggregation — and differ only in the
// per-batch result type. Keeping the loop in one template means a fix to
// the accounting or the error path lands in both sessions at once.
#pragma once

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/align_session.hpp"  // FileStreamOptions
#include "core/batch_prefetcher.hpp"
#include "exec/thread_pool.hpp"
#include "obs/clock.hpp"

namespace mera::core::detail {

/// Runs the stream: `align_one(records&&)` once per path in file order,
/// `on_batch(index, batch_result)` after each batch completes (so callers
/// can report progress while later batches are still loading/aligning).
/// StreamResult must expose batches/report/stats/wall_s/load_wall_s/stall_s
/// (core::FileStreamResult and shard::ShardedFileStreamResult do).
template <typename StreamResult, typename AlignFn, typename OnBatch>
StreamResult stream_file_batches(const std::vector<std::string>& paths,
                                 const FileStreamOptions& opt,
                                 AlignFn&& align_one, OnBatch&& on_batch) {
  const auto wall0 = obs::wall_now();
  StreamResult out;
  out.batches.reserve(paths.size());
  auto align_and_report = [&](std::vector<seq::SeqRecord>&& records) {
    out.batches.push_back(align_one(std::move(records)));
    on_batch(out.batches.size() - 1, out.batches.back());
  };
  if (opt.prefetch) {
    std::optional<exec::ThreadPool> own_pool;
    exec::ThreadPool* pool = opt.pool;
    if (!pool) pool = &own_pool.emplace(1);
    BatchPrefetcher prefetcher(*pool, paths);
    while (auto batch = prefetcher.next()) {
      out.load_wall_s += batch->load_wall_s;
      out.stall_s += batch->stall_s;
      align_and_report(std::move(batch->records));
    }
  } else {
    for (const std::string& path : paths) {
      const auto t0 = obs::wall_now();
      auto records = load_read_batch(path);
      const double load_s = seconds_since(t0);
      out.load_wall_s += load_s;
      out.stall_s += load_s;  // nothing overlaps: every load is a stall
      align_and_report(std::move(records));
    }
  }
  for (const auto& batch : out.batches) {
    out.report.append(batch.report);
    out.stats += batch.stats;
  }
  out.wall_s = seconds_since(wall0);
  return out;
}

}  // namespace mera::core::detail
