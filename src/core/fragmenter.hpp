// Target fragmentation for the exact-match optimization (Section IV-A).
//
// A long target almost surely contains at least one non-unique seed, which
// would disqualify the whole target from the Lemma-1 fast path. Cutting the
// target into fragments of length F that overlap by exactly k-1 bases gives
// fragments whose seed sets are (a) pairwise disjoint and (b) together exactly
// the target's seed set — so a duplicate seed only poisons its own fragment
// and the rest keep their single_copy_seeds flag.
#pragma once

#include <cstddef>
#include <vector>

namespace mera::core {

struct FragmentSpan {
  std::size_t offset = 0;
  std::size_t length = 0;
  friend bool operator==(const FragmentSpan&, const FragmentSpan&) = default;
};

/// Fragment starts step by F-k+1 so consecutive fragments overlap by k-1.
/// A fragment_len >= target_len yields a single whole-target fragment.
/// Tail fragments shorter than k are dropped (they carry no seeds of their
/// own; the previous fragment already covers every seed ending in them).
[[nodiscard]] std::vector<FragmentSpan> fragment_spans(std::size_t target_len,
                                                       std::size_t fragment_len,
                                                       int k);

}  // namespace mera::core
