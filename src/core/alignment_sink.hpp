// Alignment output sinks for the session-based aligner API.
//
// The aligning phase used to be hard-wired to "append into per-rank vectors,
// merge at the end, maybe post-process into SAM". AlignmentSink inverts that:
// rank workers push every reported record into a caller-supplied sink as it
// is produced, so callers choose — collect in memory (VectorSink), write SAM
// batch by batch (SamStreamSink — memory is bounded by one batch, so large
// inputs stream by splitting into batches), count only (CountingSink), or
// fan out to several at once (TeeSink).
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "core/alignment.hpp"
#include "core/sam_writer.hpp"  // SamTarget, SamProgram
#include "seq/fasta.hpp"

namespace mera::core {

class IndexedReference;

/// Receives alignment records as the rank workers produce them.
///
/// emit() is called concurrently — one thread per rank, each with its own
/// distinct `rank` id — so implementations must either be lock-free per rank
/// (per-rank slots, as VectorSink/SamStreamSink do) or internally atomic.
/// batch_end() runs once per batch on the driving thread after every rank has
/// finished, which is where cross-rank, order-sensitive work belongs.
class AlignmentSink {
 public:
  virtual ~AlignmentSink() = default;

  /// `read` is the query in its original forward orientation (rec.reverse
  /// tells whether the reverse complement was the aligned strand).
  virtual void emit(int rank, const seq::SeqRecord& read,
                    AlignmentRecord&& rec) = 0;

  /// Collective epilogue of one align_batch() call.
  virtual void batch_end() {}
};

/// Collects records in per-rank buffers; take() flattens them rank-major
/// (the legacy merged-vector order) with one reserve and element moves.
class VectorSink final : public AlignmentSink {
 public:
  explicit VectorSink(int nranks);

  void emit(int rank, const seq::SeqRecord& read,
            AlignmentRecord&& rec) override;

  /// Flatten and return all collected records; leaves the sink empty and
  /// ready for the next batch.
  [[nodiscard]] std::vector<AlignmentRecord> take();

  [[nodiscard]] std::size_t size() const;

 private:
  std::vector<std::vector<AlignmentRecord>> per_rank_;
};

/// Counts records without storing them — the collect_alignments=false mode
/// of the legacy API, for benches that only want the counters.
class CountingSink final : public AlignmentSink {
 public:
  void emit(int rank, const seq::SeqRecord& read,
            AlignmentRecord&& rec) override;

  [[nodiscard]] std::uint64_t records() const noexcept {
    return records_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t exact_records() const noexcept {
    return exact_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> records_{0};
  std::atomic<std::uint64_t> exact_{0};
};

/// Streams SAM to an ostream across batches: the header is written once (on
/// the first batch_end), then each batch appends its records in rank-major
/// order — byte-identical to the legacy collect-then-write path for a single
/// batch. Records are buffered per rank only until their batch ends, so
/// memory is bounded by one batch, not the whole session.
class SamStreamSink final : public AlignmentSink {
 public:
  SamStreamSink(std::ostream& os, const IndexedReference& ref,
                SamProgram pg = {});
  /// Catalog form: records' target_id values index into `targets`. This is
  /// how composed references (shard::ShardedReference) stream SAM — they
  /// supply the merged global catalog instead of a single TargetStore.
  SamStreamSink(std::ostream& os, std::vector<SamTarget> targets, int nranks,
                SamProgram pg = {});

  void emit(int rank, const seq::SeqRecord& read,
            AlignmentRecord&& rec) override;
  void batch_end() override;

  [[nodiscard]] std::uint64_t records_written() const noexcept {
    return written_;
  }

 private:
  struct Pending {
    AlignmentRecord rec;
    std::size_t qseq_idx;  ///< into RankBuffer::seqs
  };
  /// A rank emits a read's records consecutively, so one stored sequence per
  /// (rank, read) suffices — a multi-mapping read does not get one sequence
  /// copy per alignment. Reads are distinguished by identity (their records
  /// are stable for the whole batch), not by name, so duplicate read names
  /// cannot alias each other's sequences.
  struct RankBuffer {
    std::vector<Pending> recs;
    std::vector<std::string> seqs;  ///< forward orientation, one per read
    const void* last_read = nullptr;
  };

  std::ostream* os_;
  std::vector<SamTarget> targets_;  ///< name+length per global target id
  SamProgram pg_;
  std::vector<RankBuffer> per_rank_;
  std::uint64_t written_ = 0;
  bool header_written_ = false;
};

/// SamStreamSink over a file it owns: opens on construction (throws when the
/// path is unwritable), flushes and checks the stream after every batch so
/// write errors surface at the batch boundary instead of being discovered —
/// or missed — at destruction.
class SamFileSink final : public AlignmentSink {
 public:
  SamFileSink(const std::string& path, const IndexedReference& ref,
              SamProgram pg = {});
  /// Catalog form (see SamStreamSink).
  SamFileSink(const std::string& path, std::vector<SamTarget> targets,
              int nranks, SamProgram pg = {});
  ~SamFileSink() override;

  void emit(int rank, const seq::SeqRecord& read,
            AlignmentRecord&& rec) override;
  void batch_end() override;

  [[nodiscard]] std::uint64_t records_written() const noexcept;

 private:
  struct Impl;  // ofstream + SamStreamSink, ordered for safe construction
  std::unique_ptr<Impl> impl_;
  std::string path_;
};

/// Forwards every record to several sinks (e.g. collect AND stream SAM).
class TeeSink final : public AlignmentSink {
 public:
  explicit TeeSink(std::vector<AlignmentSink*> sinks);

  void emit(int rank, const seq::SeqRecord& read,
            AlignmentRecord&& rec) override;
  void batch_end() override;

 private:
  std::vector<AlignmentSink*> sinks_;
};

}  // namespace mera::core
