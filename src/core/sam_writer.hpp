// Minimal SAM output for alignment records.
//
// Two layers of reference description are accepted: a TargetStore (the
// single-index case — names and lengths are read straight from the store) or
// a flat SamTarget catalog (anything that can enumerate name+length per
// global target id, e.g. shard::ShardedReference's merged view). Both produce
// byte-identical headers for the same target sequence set.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/alignment.hpp"
#include "core/target_store.hpp"

namespace mera::core {

/// One @SQ header entry: everything SAM needs to know about a target.
struct SamTarget {
  std::string name;
  std::size_t length = 0;
};

/// The @PG header line (program name / version / command line). The
/// command_line is only known to executables, so it defaults to empty and the
/// CL field is omitted; library callers keep their historical header bytes.
struct SamProgram {
  std::string id = "merAligner";
  std::string name = "merAligner";
  std::string version = "1.0";
  std::string command_line;  ///< empty = omit the CL field
};

/// Flatten a TargetStore into a SamTarget catalog (global target-id order).
[[nodiscard]] std::vector<SamTarget> sam_targets(const TargetStore& targets);

/// Write @HD/@SQ/@PG headers for every target in the catalog.
void write_sam_header(std::ostream& os, const std::vector<SamTarget>& targets,
                      const SamProgram& pg = {});
void write_sam_header(std::ostream& os, const TargetStore& targets,
                      const SamProgram& pg = {});

/// One SAM line per record; `query_seq` refers to the read in its original
/// (forward) orientation, as SAM requires seq to be stored
/// reverse-complemented with flag 0x10 when the alignment is on the reverse
/// strand. `target_name` is the name of the record's target sequence.
void write_sam_record(std::ostream& os, const AlignmentRecord& rec,
                      const std::string& target_name,
                      const std::string& query_seq);
void write_sam_record(std::ostream& os, const AlignmentRecord& rec,
                      const TargetStore& targets, const std::string& query_seq);

void write_sam_file(const std::string& path, const TargetStore& targets,
                    const std::vector<AlignmentRecord>& recs,
                    const std::vector<std::string>& query_seqs);

}  // namespace mera::core
