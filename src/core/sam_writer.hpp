// Minimal SAM output for alignment records.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "core/alignment.hpp"
#include "core/target_store.hpp"

namespace mera::core {

/// Write @HD/@SQ headers for every target in the store.
void write_sam_header(std::ostream& os, const TargetStore& targets);

/// One SAM line per record; `query_len` and `query_seq` refer to the read in
/// its original (forward) orientation, as SAM requires seq to be stored
/// reverse-complemented with flag 0x10 when the alignment is on the reverse
/// strand.
void write_sam_record(std::ostream& os, const AlignmentRecord& rec,
                      const TargetStore& targets, const std::string& query_seq);

void write_sam_file(const std::string& path, const TargetStore& targets,
                    const std::vector<AlignmentRecord>& recs,
                    const std::vector<std::string>& query_seqs);

}  // namespace mera::core
