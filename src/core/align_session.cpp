#include "core/align_session.hpp"

#include <stdexcept>
#include <unordered_set>
#include <utility>

#include "align/pooled_queue.hpp"
#include "cache/cache_snapshot.hpp"
#include "core/exact_match.hpp"
#include "core/file_stream.hpp"
#include "core/load_balance.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "seq/kmer.hpp"
#include "seq/seqdb.hpp"

namespace mera::core {

namespace {

/// Everything the per-batch rank bodies share. Built on the driving thread
/// before Runtime::run(); ranks touch only their own slots or read-only data.
struct BatchShared {
  const SessionConfig& cfg;
  const TargetStore& store;
  const dht::SeedIndex& index;
  int k;                ///< seed length (from the reference's IndexConfig)
  bool use_exact;       ///< Lemma-1 path: requested AND the index is marked
  cache::SeedIndexCache* scache;  ///< session-owned; null when disabled
  cache::TargetCache* tcache;
  AlignmentSink& sink;
  std::vector<PipelineStats> stats;
  std::vector<align::LaneStats> lane_stats;  ///< per rank, kBatch only

  // Input plumbing: exactly one of the two is used.
  std::span<const seq::SeqRecord> mem_reads;
  std::string reads_seqdb_path;
  /// Permuted record-index assignment for the file path (Section IV-B),
  /// computed once on the driving thread; empty = natural order.
  std::span<const std::uint64_t> file_perm;
};

/// One deferred-emission event of the cross-read pooled path, in the exact
/// order the per-read path would have produced it. kPending slots hold a
/// candidate's provenance until its PooledExtensionQueue callback resolves
/// them; kRecord slots (exact matches and anything else emitted inline) are
/// born resolved; kReadEnd marks a read boundary so reads_aligned can be
/// counted at replay time. A cursor emits the resolved prefix, which keeps
/// sink order — and therefore SAM bytes — bit-identical to per-read
/// flushing even though scoring happens out of order across reads.
struct PooledSlot {
  enum class Kind : std::uint8_t { kPending, kRecord, kReadEnd };
  Kind kind = Kind::kPending;
  bool resolved = false;
  bool has_record = false;
  const seq::SeqRecord* read = nullptr;
  AlignmentRecord rec;  ///< valid when has_record
  // Candidate provenance (kPending only, meaningful until resolved).
  const seq::PackedSeq* target = nullptr;
  std::uint32_t target_id = 0;
  bool reverse = false;
  std::size_t qid = 0;  ///< query id inside the rank's pooled queue
  std::size_t window_begin = 0, window_end = 0;
};

/// Per-rank aligning-phase worker (seed-and-extend with caches, the Lemma-1
/// fast path and the max-hits threshold — the second half of Algorithm 1).
class RankAligner {
 public:
  RankAligner(pgas::Rank& rank, BatchShared& sh)
      : rank_(rank), sh_(sh), st_(sh.stats[static_cast<std::size_t>(rank.id())]) {
    min_score_ = sh.cfg.min_report_score >= 0
                     ? sh.cfg.min_report_score
                     : sh.cfg.extension.scoring.match * sh.k;
    if (sh.cfg.extension.kernel == align::SwKernel::kBatch &&
        sh.cfg.sw_pooling > 0) {
      align::PooledQueueConfig qcfg;
      qcfg.scoring = sh.cfg.extension.scoring;
      qcfg.isa = sh.cfg.extension.isa;
      qcfg.flush_lanes = sh.cfg.sw_pooling == 1 ? 0 : sh.cfg.sw_pooling;
      pool_.emplace(qcfg,
                    [this](std::uint64_t tag, const align::StripedResult& sr) {
                      resolve_slot(static_cast<std::size_t>(tag), sr);
                    });
    }
  }

  void align_read(const seq::SeqRecord& read) {
    ++st_.reads_processed;
    read_ = &read;
    records_this_read_ = 0;
    seen_.clear();
    const bool done = align_strand(read.name, read.seq, /*reverse=*/false);
    if (!done) {
      const std::string rc = seq::reverse_complement(read.seq);
      align_strand(read.name, rc, /*reverse=*/true);
    }
    if (pool_) {
      PooledSlot marker;
      marker.kind = PooledSlot::Kind::kReadEnd;
      slots_.push_back(std::move(marker));
      advance_cursor();
    } else if (records_this_read_ > 0) {
      ++st_.reads_aligned;
    }
  }

  /// Batch end: force-score everything still pending, replay the tail of the
  /// emission log, and hand the rank's lane occupancy to the batch result.
  void finish() {
    if (pool_) {
      pool_->drain();
      advance_cursor();
      lane_stats_ += pool_->lane_stats();
    }
    sh_.lane_stats[static_cast<std::size_t>(rank_.id())] += lane_stats_;
  }

 private:
  /// Returns true when the Lemma-1 fast path resolved the read completely.
  bool align_strand(const std::string& name, const std::string& oriented,
                    bool reverse) {
    const std::size_t qlen = oriented.size();
    const int k = sh_.k;
    if (qlen < static_cast<std::size_t>(k)) return false;
    const bool has_n = oriented.find('N') != std::string::npos;
    const seq::PackedSeq qpacked(oriented);
    const auto qcodes = align::dna_codes(oriented);
    // The striped profile is query-only state: built at most once per
    // oriented query (lazily, on the first candidate — most junk reads never
    // produce one) and reused across every candidate this strand probes.
    std::optional<align::StripedSmithWaterman> striped;
    // kBatch mode: candidates are buffered across the whole strand and
    // screened in one inter-candidate SIMD sweep after the seed loop, so the
    // lanes actually fill. Emission happens in buffer order, which is the
    // per-candidate emission order — output is bit-identical to kStriped.
    const bool batch_mode =
        sh_.cfg.extension.kernel == align::SwKernel::kBatch;
    std::vector<align::SeedCandidate> pending;
    std::vector<std::uint32_t> pending_target_ids;
    // Pooled mode: this strand's query id in the rank queue, registered
    // lazily on the first candidate (duplicate query bytes dedup inside the
    // queue and share one striped profile).
    std::optional<std::size_t> pooled_qid;

    bool exact_done = false;
    bool exact_tried = false;
    std::vector<dht::SeedHit> hits;
    seq::for_each_seed(std::string_view(oriented), k, [&](std::size_t q_off,
                                                          const seq::Kmer& m) {
      if (exact_done) return;
      if (sh_.cfg.seed_stride > 1 && q_off % sh_.cfg.seed_stride != 0) return;
      hits.clear();
      const std::size_t total = lookup_seed(m, hits);
      if (total == 0) return;

      // Exact-match fast path: try the first candidate of the first seed
      // that produced one (Section IV-A; cost model t_q' in IV-B).
      if (sh_.use_exact && !exact_tried && !has_n) {
        exact_tried = true;
        const dht::SeedHit& h0 = hits.front();
        const Target& t = fetch_target_cached(h0.target_id);
        // The fragment's flag travels with the target fetch (one message).
        const Fragment& frag = sh_.store.fragment_unsync(h0.fragment_id);
        if (frag.single_copy_seeds.load(std::memory_order_relaxed)) {
          if (const auto pl = exact_placement(h0, q_off, qlen, t.seq.size())) {
            ++st_.memcmp_calls;
            if (exact_compare(qpacked, t.seq, *pl)) {
              AlignmentRecord rec;
              rec.query_name = name;
              rec.target_id = pl->target_id;
              rec.reverse = reverse;
              rec.score = sh_.cfg.extension.scoring.match *
                          static_cast<int>(qlen);
              rec.q_begin = 0;
              rec.q_end = qlen;
              rec.t_begin = pl->t_begin;
              rec.t_end = pl->t_begin + qlen;
              rec.cigar = std::to_string(qlen) + "M";
              rec.exact = true;
              emit(std::move(rec));
              ++st_.exact_match_reads;
              exact_done = true;
              return;
            }
          }
        }
      }

      for (const dht::SeedHit& h : hits) {
        // One extension per (target, diagonal) candidate; nearby diagonals
        // collapse so indels don't spawn duplicates.
        const std::int64_t diag = static_cast<std::int64_t>(h.t_pos) -
                                  static_cast<std::int64_t>(q_off);
        const std::uint64_t key =
            (static_cast<std::uint64_t>(h.target_id) << 33) |
            (static_cast<std::uint64_t>(reverse) << 32) |
            (static_cast<std::uint64_t>(diag + (1ll << 28)) >> 3);
        if (!seen_.insert(key).second) continue;
        const Target& t = fetch_target_cached(h.target_id);
        if (batch_mode && pool_) {
          // Cross-read pooling: account the candidate now (sw_calls at
          // buffer time and sw_cells over the projected window, exactly as
          // the per-read flush below does), then defer scoring into the
          // rank's length-class-bucketed queue. Window codes are extracted
          // here; the traceback re-reads the target at resolve time, and
          // only for screen survivors.
          ++st_.sw_calls;
          if (!t.seq.empty()) {
            const align::SeedWindow w = align::project_seed_window(
                qcodes.size(), t.seq, q_off, h.t_pos,
                sh_.cfg.extension.window_pad);
            st_.sw_cells +=
                static_cast<std::uint64_t>(w.end - w.begin) * qcodes.size();
            if (w.begin < w.end) {
              if (!pooled_qid)
                pooled_qid = pool_->add_query(
                    std::span<const std::uint8_t>(qcodes));
              PooledSlot s;
              s.read = read_;
              s.target = &t.seq;
              s.target_id = h.target_id;
              s.reverse = reverse;
              s.qid = *pooled_qid;
              s.window_begin = w.begin;
              s.window_end = w.end;
              const auto tag = static_cast<std::uint64_t>(slots_.size());
              slots_.push_back(std::move(s));
              const auto window =
                  align::dna_codes(t.seq, w.begin, w.end - w.begin);
              pool_->enqueue(*pooled_qid, window, tag);
            }
          }
          continue;
        }
        if (batch_mode) {
          // Target sequences live in the session-lifetime TargetStore, so
          // holding pointers across the seed loop is safe.
          pending.push_back({&t.seq, q_off, h.t_pos});
          pending_target_ids.push_back(h.target_id);
          ++st_.sw_calls;
          continue;
        }
        if (sh_.cfg.extension.kernel == align::SwKernel::kStriped && !striped)
          striped.emplace(std::span<const std::uint8_t>(qcodes),
                          sh_.cfg.extension.scoring);
        const auto ext =
            align::extend_seed(std::span<const std::uint8_t>(qcodes), t.seq,
                               q_off, h.t_pos, k, sh_.cfg.extension,
                               min_score_, striped ? &*striped : nullptr);
        ++st_.sw_calls;
        st_.sw_cells += static_cast<std::uint64_t>(
                            ext.window_end - ext.window_begin) *
                        qcodes.size();
        if (ext.aln.score >= min_score_ && !ext.aln.empty()) {
          AlignmentRecord rec;
          rec.query_name = name;
          rec.target_id = h.target_id;
          rec.reverse = reverse;
          rec.score = ext.aln.score;
          rec.q_begin = ext.aln.q_begin;
          rec.q_end = ext.aln.q_end;
          rec.t_begin = ext.aln.t_begin;
          rec.t_end = ext.aln.t_end;
          rec.cigar = ext.aln.cigar.to_string();
          rec.mismatches = ext.aln.mismatches;
          emit(std::move(rec));
        }
      }
    });
    if (!pending.empty()) {
      // (Exact-match success short-circuits before any candidate is
      // buffered, so a non-empty queue implies the fast path didn't fire.)
      const auto exts = align::extend_candidates(
          std::span<const std::uint8_t>(qcodes), pending, k,
          sh_.cfg.extension, min_score_, &lane_stats_);
      for (std::size_t c = 0; c < exts.size(); ++c) {
        const align::Extension& ext = exts[c];
        st_.sw_cells += static_cast<std::uint64_t>(
                            ext.window_end - ext.window_begin) *
                        qcodes.size();
        if (ext.aln.score >= min_score_ && !ext.aln.empty()) {
          AlignmentRecord rec;
          rec.query_name = name;
          rec.target_id = pending_target_ids[c];
          rec.reverse = reverse;
          rec.score = ext.aln.score;
          rec.q_begin = ext.aln.q_begin;
          rec.q_end = ext.aln.q_end;
          rec.t_begin = ext.aln.t_begin;
          rec.t_end = ext.aln.t_end;
          rec.cigar = ext.aln.cigar.to_string();
          rec.mismatches = ext.aln.mismatches;
          emit(std::move(rec));
        }
      }
    }
    return exact_done;
  }

  std::size_t lookup_seed(const seq::Kmer& m, std::vector<dht::SeedHit>& hits) {
    ++st_.seed_lookups;
    const int owner = sh_.index.owner_of(m);
    const bool off_node = !rank_.topo().same_node(owner, rank_.id());
    const int my_node = rank_.node();
    std::size_t total = 0;
    if (sh_.scache && off_node &&
        sh_.scache->lookup(my_node, m, sh_.cfg.max_hits_per_seed, hits, total)) {
      ++st_.seed_cache_hits;
    } else {
      const double t0 = rank_.stats().comm_time_s;
      total = sh_.index.lookup(rank_, m, sh_.cfg.max_hits_per_seed, hits);
      st_.comm_lookup_s += rank_.stats().comm_time_s - t0;
      if (sh_.scache && off_node) sh_.scache->insert(my_node, m, hits, total);
    }
    // The cache stores a seed's true index-wide total, so a truncated list
    // counts the same whether the node cache or the index served it — a
    // warm-started run must report cold-identical work stats.
    if (total > sh_.cfg.max_hits_per_seed) ++st_.hits_truncated;
    return total;
  }

  const Target& fetch_target_cached(std::uint32_t gid) {
    ++st_.target_fetches;
    const Target& t = sh_.store.target_unsync(gid);
    const int owner = sh_.store.owner_of_target(gid);
    if (owner == rank_.id()) return t;
    const bool off_node = !rank_.topo().same_node(owner, rank_.id());
    const int my_node = rank_.node();
    if (sh_.tcache && off_node && sh_.tcache->contains(my_node, gid)) {
      ++st_.target_cache_hits;
      return t;
    }
    const double t0 = rank_.stats().comm_time_s;
    rank_.charge_access(owner, t.seq.packed_bytes());
    st_.comm_fetch_s += rank_.stats().comm_time_s - t0;
    if (sh_.tcache && off_node)
      sh_.tcache->insert(my_node, gid, t.seq.packed_bytes());
    return t;
  }

  void emit(AlignmentRecord rec) {
    if (pool_) {
      // Pooled mode: inline emissions (exact matches) join the slot log so
      // they interleave with deferred candidates in the original order.
      PooledSlot s;
      s.kind = PooledSlot::Kind::kRecord;
      s.resolved = true;
      s.has_record = true;
      s.read = read_;
      s.rec = std::move(rec);
      slots_.push_back(std::move(s));
      return;
    }
    ++records_this_read_;
    ++st_.alignments_reported;
    sh_.sink.emit(rank_.id(), *read_, std::move(rec));
  }

  /// PooledExtensionQueue callback: a deferred candidate got its screening
  /// score. Survivors pay the full-DP traceback now (same kernel, window and
  /// thresholds as the per-read flush, so the record bytes are identical).
  void resolve_slot(std::size_t idx, const align::StripedResult& sr) {
    PooledSlot& s = slots_[idx];
    s.resolved = true;
    if (sr.score < min_score_) return;  // screened out, no traceback
    const auto window =
        align::dna_codes(*s.target, s.window_begin,
                         s.window_end - s.window_begin);
    auto aln = align::smith_waterman(pool_->query_codes(s.qid), window,
                                     sh_.cfg.extension.scoring);
    aln.t_begin += s.window_begin;
    aln.t_end += s.window_begin;
    if (aln.score < min_score_ || aln.empty()) return;
    s.has_record = true;
    s.rec.query_name = s.read->name;
    s.rec.target_id = s.target_id;
    s.rec.reverse = s.reverse;
    s.rec.score = aln.score;
    s.rec.q_begin = aln.q_begin;
    s.rec.q_end = aln.q_end;
    s.rec.t_begin = aln.t_begin;
    s.rec.t_end = aln.t_end;
    s.rec.cigar = aln.cigar.to_string();
    s.rec.mismatches = aln.mismatches;
  }

  /// Emit the resolved prefix of the slot log, counting reads_aligned and
  /// alignments_reported exactly where the per-read path would have.
  void advance_cursor() {
    while (cursor_ < slots_.size()) {
      PooledSlot& s = slots_[cursor_];
      if (s.kind == PooledSlot::Kind::kReadEnd) {
        if (cursor_records_ > 0) ++st_.reads_aligned;
        cursor_records_ = 0;
      } else {
        if (!s.resolved) break;
        if (s.has_record) {
          ++cursor_records_;
          ++st_.alignments_reported;
          sh_.sink.emit(rank_.id(), *s.read, std::move(s.rec));
        }
      }
      ++cursor_;
    }
    // Fully replayed: drop the log (pointers into reads/targets with it).
    if (cursor_ == slots_.size() && !slots_.empty()) {
      slots_.clear();
      cursor_ = 0;
    }
  }

  pgas::Rank& rank_;
  BatchShared& sh_;
  PipelineStats& st_;
  const seq::SeqRecord* read_ = nullptr;
  std::unordered_set<std::uint64_t> seen_;
  std::size_t records_this_read_ = 0;
  int min_score_ = 0;
  // Cross-read pooling state (SwKernel::kBatch with cfg.sw_pooling > 0).
  std::optional<align::PooledExtensionQueue> pool_;
  std::vector<PooledSlot> slots_;   ///< deferred emission log
  std::size_t cursor_ = 0;          ///< first unreplayed slot
  std::size_t cursor_records_ = 0;  ///< replayed records since last kReadEnd
  align::LaneStats lane_stats_;     ///< this rank's kBatch lane occupancy
};

/// The per-batch SPMD body: io.reads + align against the prebuilt index.
void batch_rank_body(pgas::Rank& rank, BatchShared& sh) {
  const auto me = static_cast<std::size_t>(rank.id());
  const int nranks = rank.nranks();

  // ---- io.reads ------------------------------------------------------------
  rank.phase("io.reads");
  std::vector<seq::SeqRecord> file_reads;
  std::span<const seq::SeqRecord> myreads;
  if (!sh.reads_seqdb_path.empty()) {
    seq::SeqDBReader db(sh.reads_seqdb_path);
    const auto [rlo, rhi] = db.partition(rank.id(), nranks);
    file_reads.reserve(rhi - rlo);
    if (!sh.file_perm.empty()) {
      // Section IV-B for file input: the shared permutation of record
      // indices, block-partitioned — each record is read by exactly one rank.
      for (std::size_t i = rlo; i < rhi; ++i)
        file_reads.push_back(db.read(sh.file_perm[i]));
    } else {
      for (std::size_t i = rlo; i < rhi; ++i) file_reads.push_back(db.read(i));
    }
    myreads = file_reads;
  } else {
    const std::size_t n = sh.mem_reads.size();
    const std::size_t lo = n * me / static_cast<std::size_t>(nranks);
    const std::size_t hi = n * (me + 1) / static_cast<std::size_t>(nranks);
    myreads = sh.mem_reads.subspan(lo, hi - lo);
  }

  // ---- align ---------------------------------------------------------------
  rank.phase("align");
  RankAligner aligner(rank, sh);
  for (const seq::SeqRecord& r : myreads) aligner.align_read(r);
  // Forced drain: score and replay every candidate the pooled queue still
  // holds, before the barrier (file_reads must outlive every slot).
  aligner.finish();
  rank.barrier();
}

/// Bridge one batch's results into the global metrics registry — the only
/// place the per-read counters in PipelineStats meet the mutexed registry,
/// so the hot path never pays a lookup.
void add_batch_metrics(const BatchResult& res, const SessionConfig& cfg) {
  auto& reg = obs::MetricsRegistry::global();
  pgas::add_to_metrics(res.report);

  reg.counter("mera_reads_processed_total", {}, "Reads pushed through align")
      .add(static_cast<double>(res.stats.reads_processed));
  reg.counter("mera_alignments_reported_total", {}, "Alignment records emitted")
      .add(static_cast<double>(res.stats.alignments_reported));

  const auto bridge_cache = [&reg](const char* which,
                                   const cache::CacheCounters& c) {
    const obs::Labels labels{{"cache", which}};
    reg.counter("mera_cache_hits_total", labels, "Cache lookup hits")
        .add(static_cast<double>(c.hits));
    reg.counter("mera_cache_misses_total", labels, "Cache lookup misses")
        .add(static_cast<double>(c.misses));
    reg.counter("mera_cache_evictions_total", labels, "Cache entries evicted")
        .add(static_cast<double>(c.evictions));
    reg.counter("mera_cache_admission_rejects_total", labels,
                "Inserts refused by the admission policy")
        .add(static_cast<double>(c.admission_rejects));
  };
  bridge_cache("seed", res.seed_cache);
  bridge_cache("target", res.target_cache);

  const obs::Labels sw_labels{
      {"kernel", align::kernel_name(cfg.extension.kernel)},
      {"isa", cfg.extension.kernel == align::SwKernel::kBatch
                  ? align::isa_name(align::resolve_isa(cfg.extension.isa))
                  : "native"}};
  reg.counter("mera_sw_calls_total", sw_labels,
              "Smith-Waterman extensions run")
      .add(static_cast<double>(res.stats.sw_calls));
  reg.counter("mera_sw_cells_total", sw_labels, "DP cells scored")
      .add(static_cast<double>(res.stats.sw_cells));
  // Aggregate throughput of this batch's align phase: summed cells over the
  // phase's simulated parallel time (the paper's GCUPS axis).
  const double align_s = res.report.time_of("align");
  if (align_s > 0.0)
    reg.gauge("mera_sw_gcups", sw_labels,
              "Giga DP cells per second in the last batch's align phase")
        .set(static_cast<double>(res.stats.sw_cells) / 1e9 / align_s);

  // Lane occupancy of the inter-candidate engine: how full its SIMD sweeps
  // ran. The mode label separates cross-read pooled flushing from the
  // per-read baseline so the pooling win is a one-query PromQL ratio.
  if (cfg.extension.kernel == align::SwKernel::kBatch) {
    const align::LaneStats& ls = res.lane_stats;
    const obs::Labels lane_labels{
        {"isa", align::isa_name(align::resolve_isa(cfg.extension.isa))},
        {"mode", cfg.sw_pooling > 0 ? "pooled" : "per_read"}};
    reg.counter("mera_sw_lanes_filled_total", lane_labels,
                "SIMD lanes carrying a live candidate in batch SW sweeps")
        .add(static_cast<double>(ls.lanes_filled));
    reg.counter("mera_sw_lanes_wasted_total", lane_labels,
                "Idle SIMD lanes in batch SW sweeps")
        .add(static_cast<double>(ls.lanes_wasted));
    reg.counter("mera_sw_flushes_total", lane_labels,
                "Batch SW flushes that scored at least one candidate")
        .add(static_cast<double>(ls.flushes));
    auto& occ = reg.histogram(
        "mera_sw_lane_occupancy",
        {0.125, 0.25, 0.375, 0.5, 0.625, 0.75, 0.875, 1.0},
        lane_labels, "Per-sweep SIMD lane occupancy (filled / width)");
    for (std::size_t i = 0; i < align::LaneStats::kOccBuckets; ++i)
      occ.observe_n((static_cast<double>(i) + 1.0) /
                        static_cast<double>(align::LaneStats::kOccBuckets),
                    res.lane_stats.occupancy[i]);
  }
}

}  // namespace

AlignSession::AlignSession(IndexedReference ref, SessionConfig cfg)
    : ref_(std::move(ref)), cfg_(std::move(cfg)) {
  const pgas::Topology& topo = ref_.topology();
  if (cfg_.seed_cache)
    scache_.emplace(topo,
                    cache::SeedIndexCache::Options{cfg_.seed_cache_capacity,
                                                   cfg_.cache_admission});
  if (cfg_.target_cache)
    tcache_.emplace(topo,
                    cache::TargetCache::Options{cfg_.target_cache_bytes,
                                                cfg_.cache_admission});
}

BatchResult AlignSession::align_batch(pgas::Runtime& rt,
                                      const std::vector<seq::SeqRecord>& reads,
                                      AlignmentSink& sink) {
  std::span<const seq::SeqRecord> span = reads;
  std::vector<seq::SeqRecord> permuted;
  if (cfg_.permute_queries) {
    permuted = reads;
    permute_queries(permuted, cfg_.permute_seed);
    span = permuted;
  }
  return run_batch(rt, span, {}, sink);
}

BatchResult AlignSession::align_batch(pgas::Runtime& rt,
                                      std::vector<seq::SeqRecord>&& reads,
                                      AlignmentSink& sink) {
  if (cfg_.permute_queries) permute_queries(reads, cfg_.permute_seed);
  return run_batch(rt, reads, {}, sink);
}

BatchResult AlignSession::align_batch_file(pgas::Runtime& rt,
                                           const std::string& reads_seqdb,
                                           AlignmentSink& sink) {
  return run_batch(rt, {}, reads_seqdb, sink);
}

FileStreamResult AlignSession::align_batch_files(
    pgas::Runtime& rt, const std::vector<std::string>& paths,
    AlignmentSink& sink, const FileStreamOptions& opt,
    const std::function<void(std::size_t, const BatchResult&)>& on_batch) {
  return detail::stream_file_batches<FileStreamResult>(
      paths, opt,
      [&](std::vector<seq::SeqRecord>&& records) {
        return align_batch(rt, std::move(records), sink);
      },
      [&](std::size_t i, const BatchResult& batch) {
        if (on_batch) on_batch(i, batch);
      });
}

BatchResult AlignSession::run_batch(pgas::Runtime& rt,
                                    std::span<const seq::SeqRecord> mem_reads,
                                    const std::string& seqdb_path,
                                    AlignmentSink& sink) {
  const obs::Span span("session.batch", "session");
  const pgas::Topology& built_on = ref_.topology();
  if (rt.topo().nranks() != built_on.nranks() ||
      rt.topo().ppn() != built_on.ppn())
    throw std::invalid_argument(
        "AlignSession: runtime topology does not match the one the "
        "IndexedReference was built on");

  // The file-path permutation is identical on every rank, so it is computed
  // once here rather than per rank inside the timed io.reads phase.
  std::vector<std::uint64_t> file_perm;
  if (!seqdb_path.empty() && cfg_.permute_queries) {
    file_perm.resize(seq::SeqDBReader(seqdb_path).size());
    for (std::size_t i = 0; i < file_perm.size(); ++i) file_perm[i] = i;
    permute_queries(file_perm, cfg_.permute_seed);
  }

  BatchShared sh{
      cfg_,
      ref_.targets(),
      ref_.index(),
      ref_.config().k,
      cfg_.exact_match && ref_.exact_match_marked(),
      scache_ ? &*scache_ : nullptr,
      tcache_ ? &*tcache_ : nullptr,
      sink,
      std::vector<PipelineStats>(static_cast<std::size_t>(rt.nranks())),
      std::vector<align::LaneStats>(static_cast<std::size_t>(rt.nranks())),
      mem_reads,
      seqdb_path,
      file_perm,
  };
  rt.run([&sh](pgas::Rank& rank) { batch_rank_body(rank, sh); });
  sink.batch_end();

  BatchResult res;
  res.report = rt.report();
  res.per_rank = std::move(sh.stats);
  for (const auto& s : res.per_rank) res.stats += s;
  for (const auto& ls : sh.lane_stats) res.lane_stats += ls;
  if (scache_) {
    const auto now = scache_->counters();
    res.seed_cache = now - seed_base_;
    seed_base_ = now;
  }
  if (tcache_) {
    const auto now = tcache_->counters();
    res.target_cache = now - target_base_;
    target_base_ = now;
  }
  ++batches_done_;
  add_batch_metrics(res, cfg_);
  return res;
}

void AlignSession::save_caches(const pgas::Runtime& rt,
                               const std::string& path) const {
  cache::save_caches(path, snapshot_meta(rt), scache_ ? &*scache_ : nullptr,
                     tcache_ ? &*tcache_ : nullptr);
}

void AlignSession::load_caches(const pgas::Runtime& rt,
                               const std::string& path) {
  // Re-seed the per-batch delta baseline afterwards — even on a failed load,
  // which may have replaced counters before throwing: the loaded counters
  // are imported history, not this session's activity, so the next
  // BatchResult must report post-load work only (see the header contract).
  const auto reseed = [this] {
    if (scache_) seed_base_ = scache_->counters();
    if (tcache_) target_base_ = tcache_->counters();
  };
  try {
    cache::load_caches(path, snapshot_meta(rt), scache_ ? &*scache_ : nullptr,
                       tcache_ ? &*tcache_ : nullptr);
  } catch (...) {
    reseed();
    throw;
  }
  reseed();
}

cache::SnapshotMeta AlignSession::snapshot_meta(const pgas::Runtime& rt) const {
  cache::SnapshotMeta meta;
  meta.k = ref_.config().k;
  meta.nranks = ref_.topology().nranks();
  meta.ppn = ref_.topology().ppn();
  meta.nnodes = ref_.topology().nnodes();
  meta.max_hits_per_seed = cfg_.max_hits_per_seed;
  meta.cost_model = rt.cost_model();
  meta.reference_fingerprint = ref_.fingerprint();
  return meta;
}

cache::CacheCounters AlignSession::seed_cache_counters() const {
  return scache_ ? scache_->counters() : cache::CacheCounters{};
}

cache::CacheCounters AlignSession::target_cache_counters() const {
  return tcache_ ? tcache_->counters() : cache::CacheCounters{};
}

}  // namespace mera::core
