#include "core/stats.hpp"

#include <iomanip>
#include <ostream>

namespace mera::core {

void PipelineStats::print(std::ostream& os) const {
  os << "reads processed      " << reads_processed << '\n'
     << "reads aligned        " << reads_aligned << "  ("
     << std::fixed << std::setprecision(1) << 100.0 * aligned_fraction()
     << "%)\n"
     << "alignments reported  " << alignments_reported << '\n'
     << "exact-match reads    " << exact_match_reads << "  ("
     << 100.0 * exact_fraction() << "% of aligned)\n"
     << "seeds indexed        " << seeds_indexed << '\n'
     << "seed lookups         " << seed_lookups << "  (cache hits "
     << seed_cache_hits << ")\n"
     << "target fetches       " << target_fetches << "  (cache hits "
     << target_cache_hits << ")\n"
     << "Smith-Waterman calls " << sw_calls << "  (" << sw_cells
     << " DP cells)\n"
     << "memcmp fast paths    " << memcmp_calls << '\n'
     << "lookups truncated    " << hits_truncated << '\n'
     << "comm (lookups)       " << std::setprecision(4) << comm_lookup_s
     << " s (rank-summed, modeled)\n"
     << "comm (target fetch)  " << comm_fetch_s << " s (rank-summed, modeled)\n";
  os.unsetf(std::ios::fixed);
}

}  // namespace mera::core
