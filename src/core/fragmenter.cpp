#include "core/fragmenter.hpp"

#include <algorithm>
#include <stdexcept>

namespace mera::core {

std::vector<FragmentSpan> fragment_spans(std::size_t target_len,
                                         std::size_t fragment_len, int k) {
  if (k < 1) throw std::invalid_argument("fragment_spans: k < 1");
  if (fragment_len < static_cast<std::size_t>(k))
    throw std::invalid_argument("fragment_spans: fragment_len < k");
  std::vector<FragmentSpan> spans;
  if (target_len == 0) return spans;
  if (fragment_len >= target_len) {
    spans.push_back({0, target_len});
    return spans;
  }
  const std::size_t step = fragment_len - static_cast<std::size_t>(k) + 1;
  for (std::size_t off = 0; off < target_len; off += step) {
    const std::size_t len = std::min(fragment_len, target_len - off);
    if (len < static_cast<std::size_t>(k) && off != 0)
      break;  // no seeds of its own
    spans.push_back({off, len});
    if (off + len >= target_len) break;
  }
  return spans;
}

}  // namespace mera::core
