#include "core/alignment_sink.hpp"

#include <fstream>
#include <ostream>
#include <stdexcept>
#include <utility>

#include "core/indexed_reference.hpp"
#include "core/sam_writer.hpp"

namespace mera::core {

// ---------------------------------------------------------------------------
// VectorSink
// ---------------------------------------------------------------------------

VectorSink::VectorSink(int nranks)
    : per_rank_(static_cast<std::size_t>(nranks)) {}

void VectorSink::emit(int rank, const seq::SeqRecord& /*read*/,
                      AlignmentRecord&& rec) {
  per_rank_[static_cast<std::size_t>(rank)].push_back(std::move(rec));
}

std::vector<AlignmentRecord> VectorSink::take() {
  std::size_t total = 0;
  for (const auto& v : per_rank_) total += v.size();
  std::vector<AlignmentRecord> out;
  out.reserve(total);
  for (auto& v : per_rank_) {
    for (auto& rec : v) out.push_back(std::move(rec));
    v.clear();
  }
  return out;
}

std::size_t VectorSink::size() const {
  std::size_t total = 0;
  for (const auto& v : per_rank_) total += v.size();
  return total;
}

// ---------------------------------------------------------------------------
// CountingSink
// ---------------------------------------------------------------------------

void CountingSink::emit(int /*rank*/, const seq::SeqRecord& /*read*/,
                        AlignmentRecord&& rec) {
  records_.fetch_add(1, std::memory_order_relaxed);
  if (rec.exact) exact_.fetch_add(1, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// SamStreamSink
// ---------------------------------------------------------------------------

SamStreamSink::SamStreamSink(std::ostream& os, const IndexedReference& ref,
                             SamProgram pg)
    : SamStreamSink(os, sam_targets(ref.targets()), ref.nranks(),
                    std::move(pg)) {}

SamStreamSink::SamStreamSink(std::ostream& os, std::vector<SamTarget> targets,
                             int nranks, SamProgram pg)
    : os_(&os),
      targets_(std::move(targets)),
      pg_(std::move(pg)),
      per_rank_(static_cast<std::size_t>(nranks)) {}

void SamStreamSink::emit(int rank, const seq::SeqRecord& read,
                         AlignmentRecord&& rec) {
  RankBuffer& buf = per_rank_[static_cast<std::size_t>(rank)];
  if (buf.last_read != &read) {
    buf.seqs.push_back(read.seq);
    buf.last_read = &read;
  }
  buf.recs.push_back(Pending{std::move(rec), buf.seqs.size() - 1});
}

void SamStreamSink::batch_end() {
  if (!header_written_) {
    write_sam_header(*os_, targets_, pg_);
    header_written_ = true;
  }
  for (RankBuffer& buf : per_rank_) {
    for (const Pending& p : buf.recs) {
      write_sam_record(*os_, p.rec, targets_[p.rec.target_id].name,
                       buf.seqs[p.qseq_idx]);
      ++written_;
    }
    buf = RankBuffer{};
  }
}

// ---------------------------------------------------------------------------
// SamFileSink
// ---------------------------------------------------------------------------

struct SamFileSink::Impl {
  Impl(const std::string& path, std::vector<SamTarget> targets, int nranks,
       SamProgram pg)
      : os(path), sam(os, std::move(targets), nranks, std::move(pg)) {}
  std::ofstream os;
  SamStreamSink sam;
};

SamFileSink::SamFileSink(const std::string& path, const IndexedReference& ref,
                         SamProgram pg)
    : SamFileSink(path, sam_targets(ref.targets()), ref.nranks(),
                  std::move(pg)) {}

SamFileSink::SamFileSink(const std::string& path,
                         std::vector<SamTarget> targets, int nranks,
                         SamProgram pg)
    : impl_(std::make_unique<Impl>(path, std::move(targets), nranks,
                                   std::move(pg))),
      path_(path) {
  if (!impl_->os)
    throw std::runtime_error("cannot open for writing: " + path_);
}

SamFileSink::~SamFileSink() = default;

void SamFileSink::emit(int rank, const seq::SeqRecord& read,
                       AlignmentRecord&& rec) {
  impl_->sam.emit(rank, read, std::move(rec));
}

void SamFileSink::batch_end() {
  impl_->sam.batch_end();
  impl_->os.flush();
  if (!impl_->os) throw std::runtime_error("write failed: " + path_);
}

std::uint64_t SamFileSink::records_written() const noexcept {
  return impl_->sam.records_written();
}

// ---------------------------------------------------------------------------
// TeeSink
// ---------------------------------------------------------------------------

TeeSink::TeeSink(std::vector<AlignmentSink*> sinks)
    : sinks_(std::move(sinks)) {}

void TeeSink::emit(int rank, const seq::SeqRecord& read,
                   AlignmentRecord&& rec) {
  if (sinks_.empty()) return;
  for (std::size_t i = 0; i + 1 < sinks_.size(); ++i)
    sinks_[i]->emit(rank, read, AlignmentRecord(rec));
  sinks_.back()->emit(rank, read, std::move(rec));
}

void TeeSink::batch_end() {
  for (AlignmentSink* s : sinks_) s->batch_end();
}

}  // namespace mera::core
