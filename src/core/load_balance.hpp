// Load balancing via randomization (Section IV-B, Theorem 1).
//
// Query processing cost varies wildly: an exact-match read costs one lookup +
// one memcmp, while a repeat-heavy read costs L lookups and C Smith-Waterman
// runs. The input files group reads by genome region, so blocked partitioning
// concentrates the slow reads. Randomly permuting the query order before the
// blocked split spreads them: by the balls-into-bins bound of Raab & Steger,
// with h slow queries on p processors the max load exceeds the mean h/p by at
// most ~2*sqrt(2*(h/p)*log p) with high probability.
#pragma once

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <random>
#include <vector>

namespace mera::core {

/// Uniform draw from [0, bound) without modulo bias: `rng() % bound` favours
/// small values whenever 2^64 is not a multiple of `bound`. Rejection on the
/// truncated top bucket keeps every value exactly equally likely, and the
/// algorithm is fully specified (mt19937_64 output is portable), so a fixed
/// seed still yields the same draw sequence on every platform.
/// `bound` must be > 0.
[[nodiscard]] inline std::uint64_t uniform_below(std::mt19937_64& rng,
                                                 std::uint64_t bound) {
  assert(bound > 0 && "uniform_below: empty range");
  std::uint64_t x = rng();
  std::uint64_t r = x % bound;
  // x - r is the bucket base; buckets starting above 2^64 - bound are
  // truncated and must be redrawn (at most one incomplete bucket exists).
  while (x - r > std::uint64_t{0} - bound) {
    x = rng();
    r = x % bound;
  }
  return r;
}

/// Fisher-Yates permutation with a fixed seed (all ranks must agree on the
/// permutation, so the seed is part of the aligner configuration). Uses the
/// unbiased bounded draw above, so every permutation is equally likely.
template <typename T>
void permute_queries(std::vector<T>& items, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  for (std::size_t i = items.size(); i > 1; --i) {
    const auto j = static_cast<std::size_t>(uniform_below(rng, i));
    std::swap(items[i - 1], items[j]);
  }
}

/// Theorem-1 style high-probability bound on the max number of slow queries
/// landing on one of p processors when h >> p*log p are thrown uniformly.
/// (The paper prints the bound as 2*sqrt(2*h*p*log p) above the mean; the
/// cited Raab-Steger result gives the per-bin deviation used here,
/// sqrt-of-mean scaling — see EXPERIMENTS.md.)
[[nodiscard]] inline double max_load_bound(std::uint64_t h, int p) {
  if (p <= 1) return static_cast<double>(h);
  const double mean = static_cast<double>(h) / p;
  return mean + 2.0 * std::sqrt(2.0 * mean * std::log(static_cast<double>(p)));
}

/// Max bin occupancy of one uniform h-into-p assignment (Monte Carlo helper
/// for validating the bound).
[[nodiscard]] inline std::uint64_t simulate_max_load(std::uint64_t h, int p,
                                                     std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<std::uint64_t> bins(static_cast<std::size_t>(p), 0);
  for (std::uint64_t i = 0; i < h; ++i)
    ++bins[static_cast<std::size_t>(
        uniform_below(rng, static_cast<std::uint64_t>(p)))];
  return *std::max_element(bins.begin(), bins.end());
}

}  // namespace mera::core
