// The aligner's output record: one located query-to-target local alignment.
#pragma once

#include <cstdint>
#include <string>

namespace mera::core {

struct AlignmentRecord {
  std::string query_name;
  std::uint32_t target_id = 0;   ///< global target id (TargetStore)
  bool reverse = false;          ///< query aligned as its reverse complement
  int score = 0;
  // Half-open spans; query coordinates refer to the orientation aligned
  // (i.e. the reverse-complemented read when reverse == true).
  std::size_t q_begin = 0, q_end = 0;
  std::size_t t_begin = 0, t_end = 0;  ///< full-target coordinates
  std::string cigar;
  int mismatches = 0;
  bool exact = false;  ///< produced by the Lemma-1 memcmp fast path

  [[nodiscard]] bool full_length(std::size_t query_len) const noexcept {
    return q_begin == 0 && q_end == query_len;
  }

  friend bool operator==(const AlignmentRecord&,
                         const AlignmentRecord&) = default;
};

}  // namespace mera::core
