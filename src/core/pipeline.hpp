// One-shot convenience wrappers over the session-based aligner API.
//
// The pipeline proper lives in two layers that mirror the paper's
// barrier-delimited phase structure (Algorithm 1 + Sections III-V):
//
//   core::IndexedReference  (indexed_reference.hpp)
//     io.targets / index.build / index.mark — built once per target set.
//   core::AlignSession      (align_session.hpp)
//     io.reads / align — callable repeatedly against the same reference,
//     emitting records through an AlignmentSink (alignment_sink.hpp).
//
// MerAligner fuses the two for callers that align exactly one batch: it
// builds the reference, runs a single-session single-batch alignment, and
// stitches the two phase reports back into the familiar five-phase view.
// Every optimization the paper evaluates is an independent AlignerConfig
// switch, which is how the benches reproduce Figures 8-10 and Tables I-II.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "align/extension.hpp"
#include "cache/seed_cache.hpp"
#include "cache/target_cache.hpp"
#include "core/align_session.hpp"
#include "core/alignment.hpp"
#include "core/indexed_reference.hpp"
#include "core/stats.hpp"
#include "pgas/runtime.hpp"
#include "seq/fasta.hpp"

namespace mera::core {

/// The legacy fused configuration: index-side and query-side knobs in one
/// struct. index_config()/session_config() split it for the session API.
struct AlignerConfig {
  int k = 51;  ///< seed length (paper: 51 for human/wheat, 19 for E. coli)

  // Distributed seed index construction (Section III-A).
  bool aggregating_stores = true;
  std::size_t buffer_S = 1000;

  // Software caches (Section III-B); capacities are per simulated node.
  bool seed_cache = true;
  std::size_t seed_cache_capacity = 1u << 18;
  bool target_cache = true;
  std::size_t target_cache_bytes = 64u << 20;

  // Exact-match optimization (Section IV-A).
  bool exact_match = true;
  /// Index-fragment length; SIZE_MAX turns fragmentation off.
  std::size_t fragment_len = 1024;

  // Load balancing (Section IV-B). Applied to the in-memory query vector
  // before partitioning (the paper permutes the input file offline).
  bool permute_queries = true;
  std::uint64_t permute_seed = 0xC0FFEEULL;

  // Aligning phase.
  std::size_t max_hits_per_seed = 32;  ///< Section IV-C threshold
  std::size_t seed_stride = 1;         ///< probe every seed_stride-th seed
  align::ExtensionConfig extension{};
  /// Minimum score to report; -1 = auto (match score * k, i.e. at least the
  /// seed region must align).
  int min_report_score = -1;
  bool collect_alignments = true;

  /// Index-side projection (for IndexedReference::build).
  [[nodiscard]] IndexConfig index_config() const;
  /// Query-side projection (for AlignSession).
  [[nodiscard]] SessionConfig session_config() const;
};

struct AlignResult {
  pgas::PhaseReport report;              ///< per-phase simulated times
  PipelineStats stats;                   ///< summed over ranks
  std::vector<PipelineStats> per_rank;
  std::vector<AlignmentRecord> alignments;  ///< merged; empty if not collected
  cache::CacheCounters seed_cache;
  cache::CacheCounters target_cache;
  double single_copy_fraction = 0.0;  ///< fragments eligible for Lemma 1
  std::size_t index_entries = 0;

  [[nodiscard]] double total_time_s() const { return report.total_time_s(); }
};

class MerAligner {
 public:
  explicit MerAligner(AlignerConfig cfg = {});

  /// In-memory API: align `reads` against `targets` on the given runtime.
  /// Queries are permuted (if configured) and block-partitioned over ranks.
  /// Equivalent to IndexedReference::build + one AlignSession batch.
  [[nodiscard]] AlignResult align(pgas::Runtime& rt,
                                  const std::vector<seq::SeqRecord>& targets,
                                  const std::vector<seq::SeqRecord>& reads) const;

  /// File API: FASTA targets + SeqDB queries, optional SAM output.
  /// Each rank reads only its own partition of both inputs (parallel I/O).
  /// SAM output streams through SamStreamSink, so a non-empty `sam_out` now
  /// always receives the full record set — under the legacy implementation
  /// `collect_alignments = false` degraded it to a header-only file (the SAM
  /// pass was fed from the collected vector); that quirk is intentionally
  /// gone.
  [[nodiscard]] AlignResult align_files(pgas::Runtime& rt,
                                        const std::string& target_fasta,
                                        const std::string& reads_seqdb,
                                        const std::string& sam_out = {}) const;

  [[nodiscard]] const AlignerConfig& config() const noexcept { return cfg_; }

 private:
  AlignerConfig cfg_;
};

}  // namespace mera::core
