// The end-to-end merAligner pipeline (Algorithm 1 + Sections III-V).
//
// Phases (each barrier-delimited and timed):
//   io.targets   every rank reads its partition of the target sequences and
//                deposits them in the distributed TargetStore
//   index.build  seed extraction + distributed seed index construction
//                (counting pre-pass, then aggregated or naive deposits)
//   index.mark   exact-match preprocessing: owners visit their shard, find
//                seeds with count > 1 and clear the single_copy_seeds flag of
//                the fragments those seeds came from
//   io.reads     every rank reads its partition of the queries
//   align        seed-and-extend with software caches, the Lemma-1 fast path,
//                and the max-hits-per-seed threshold
//
// Every optimization the paper evaluates is an independent AlignerConfig
// switch, which is how the benches reproduce Figures 8-10 and Tables I-II.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "align/extension.hpp"
#include "cache/seed_cache.hpp"
#include "cache/target_cache.hpp"
#include "core/alignment.hpp"
#include "core/stats.hpp"
#include "pgas/runtime.hpp"
#include "seq/fasta.hpp"

namespace mera::core {

struct AlignerConfig {
  int k = 51;  ///< seed length (paper: 51 for human/wheat, 19 for E. coli)

  // Distributed seed index construction (Section III-A).
  bool aggregating_stores = true;
  std::size_t buffer_S = 1000;

  // Software caches (Section III-B); capacities are per simulated node.
  bool seed_cache = true;
  std::size_t seed_cache_capacity = 1u << 18;
  bool target_cache = true;
  std::size_t target_cache_bytes = 64u << 20;

  // Exact-match optimization (Section IV-A).
  bool exact_match = true;
  /// Index-fragment length; SIZE_MAX turns fragmentation off.
  std::size_t fragment_len = 1024;

  // Load balancing (Section IV-B). Applied to the in-memory query vector
  // before partitioning (the paper permutes the input file offline).
  bool permute_queries = true;
  std::uint64_t permute_seed = 0xC0FFEEULL;

  // Aligning phase.
  std::size_t max_hits_per_seed = 32;  ///< Section IV-C threshold
  std::size_t seed_stride = 1;         ///< probe every seed_stride-th seed
  align::ExtensionConfig extension{};
  /// Minimum score to report; -1 = auto (match score * k, i.e. at least the
  /// seed region must align).
  int min_report_score = -1;
  bool collect_alignments = true;
};

struct AlignResult {
  pgas::PhaseReport report;              ///< per-phase simulated times
  PipelineStats stats;                   ///< summed over ranks
  std::vector<PipelineStats> per_rank;
  std::vector<AlignmentRecord> alignments;  ///< merged; empty if not collected
  cache::CacheCounters seed_cache;
  cache::CacheCounters target_cache;
  double single_copy_fraction = 0.0;  ///< fragments eligible for Lemma 1
  std::size_t index_entries = 0;

  [[nodiscard]] double total_time_s() const { return report.total_time_s(); }
};

class MerAligner {
 public:
  explicit MerAligner(AlignerConfig cfg = {});

  /// In-memory API: align `reads` against `targets` on the given runtime.
  /// Queries are permuted (if configured) and block-partitioned over ranks.
  [[nodiscard]] AlignResult align(pgas::Runtime& rt,
                                  const std::vector<seq::SeqRecord>& targets,
                                  const std::vector<seq::SeqRecord>& reads) const;

  /// File API: FASTA targets + SeqDB queries, optional SAM output.
  /// Each rank reads only its own partition of both inputs (parallel I/O).
  [[nodiscard]] AlignResult align_files(pgas::Runtime& rt,
                                        const std::string& target_fasta,
                                        const std::string& reads_seqdb,
                                        const std::string& sam_out = {}) const;

  [[nodiscard]] const AlignerConfig& config() const noexcept { return cfg_; }

 private:
  AlignerConfig cfg_;
};

}  // namespace mera::core
