// Alignment accuracy evaluation against simulated ground truth.
//
// The paper reports aligned-read percentages (86.3% human / 97.4% E. coli,
// vs BWA-mem and Bowtie2) and argues its algorithm "is guaranteed to
// identify all alignments that share at least one identically matching
// stretch of at least length(seed) consecutive bases". With simulated reads
// the truth is known exactly (position/strand encoded in read names, contig
// intervals in contig names), so this module computes the full confusion:
// precision/recall of placements, strand accuracy, and the seed-theoretic
// upper bound on recall (reads that retain no clean k-length stretch within
// a single contig *cannot* be found by any seed-and-extend aligner).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/alignment.hpp"
#include "seq/fasta.hpp"

namespace mera::core {

struct EvalOptions {
  int k = 51;             ///< seed length used by the aligner
  std::size_t position_tolerance = 3;  ///< |reported - true| slack (indels)
};

struct EvalResult {
  std::size_t total_reads = 0;
  std::size_t junk_reads = 0;
  std::size_t findable_reads = 0;  ///< non-junk with a clean k-stretch in a contig
  std::size_t aligned_reads = 0;
  std::size_t correctly_placed = 0;  ///< best alignment at true locus+strand
  std::size_t misplaced = 0;
  std::size_t junk_aligned = 0;  ///< false positives

  /// Fraction of all reads with >= 1 alignment (the paper's headline %).
  [[nodiscard]] double aligned_fraction() const {
    return total_reads ? static_cast<double>(aligned_reads) / total_reads : 0;
  }
  /// Of the reads any seed-and-extend aligner could find, how many did we?
  [[nodiscard]] double recall_vs_findable() const {
    return findable_reads
               ? static_cast<double>(correctly_placed + misplaced) /
                     findable_reads
               : 0;
  }
  /// Of aligned non-junk reads, fraction placed at the true locus.
  [[nodiscard]] double placement_precision() const {
    const auto placed = correctly_placed + misplaced;
    return placed ? static_cast<double>(correctly_placed) / placed : 0;
  }

  void print(std::ostream& os) const;
};

/// Evaluate `alignments` of simulated `reads` against simulated `contigs`.
/// Read names must come from seq::simulate_reads, contig names from
/// seq::chop_into_contigs (they encode the ground truth). When `genome` is
/// provided, `findable_reads` (and hence recall_vs_findable) is computed via
/// read_is_findable; otherwise it stays 0.
[[nodiscard]] EvalResult evaluate_alignments(
    const std::vector<seq::SeqRecord>& contigs,
    const std::vector<seq::SeqRecord>& reads,
    const std::vector<AlignmentRecord>& alignments, const EvalOptions& opt,
    std::string_view genome = {});

/// A read is "findable" iff some length-k window of it matches the genome
/// exactly (no simulated error/N inside) AND that window lies fully within
/// one contig — the Section VI-D guarantee precondition.
[[nodiscard]] bool read_is_findable(const seq::SeqRecord& read,
                                    std::string_view genome,
                                    const std::vector<seq::SeqRecord>& contigs,
                                    int k);

}  // namespace mera::core
