#include "core/load_balance.hpp"

// Header-only utilities; TU anchors the module in the archive.
namespace mera::core {
static_assert(sizeof(max_load_bound(0, 1)) > 0);
}  // namespace mera::core
