#include "core/batch_prefetcher.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <memory>
#include <stdexcept>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "seq/fastq.hpp"
#include "seq/seqdb.hpp"

namespace mera::core {

namespace {

bool iends_with(std::string_view s, std::string_view suffix) {
  if (s.size() < suffix.size()) return false;
  const std::string_view tail = s.substr(s.size() - suffix.size());
  return std::equal(tail.begin(), tail.end(), suffix.begin(),
                    [](char a, char b) {
                      return std::tolower(static_cast<unsigned char>(a)) == b;
                    });
}

}  // namespace

bool looks_like_fastq(std::string_view path) {
  return iends_with(path, ".fastq") || iends_with(path, ".fq");
}

std::vector<seq::SeqRecord> load_read_batch(const std::string& path) {
  // A missing file is a caller mistake (typo'd path), not a format problem —
  // report it as such instead of blaming the SeqDB parser.
  std::error_code ec;
  if (!std::filesystem::exists(path, ec) || ec)
    throw std::runtime_error("load_read_batch: '" + path +
                             "': no such file or directory");
  if (looks_like_fastq(path)) return seq::read_fastq(path);
  try {
    seq::SeqDBReader db(path);
    std::vector<seq::SeqRecord> records;
    records.reserve(db.size());
    for (std::size_t i = 0; i < db.size(); ++i) records.push_back(db.read(i));
    return records;
  } catch (const std::exception& e) {
    throw std::runtime_error("load_read_batch: '" + path +
                             "' failed to load as SeqDB (extension does not "
                             "look like FASTQ): " +
                             e.what());
  }
}

BatchPrefetcher::BatchPrefetcher(exec::ThreadPool& pool,
                                 std::vector<std::string> paths)
    : pool_(&pool), paths_(std::move(paths)) {
  if (!paths_.empty()) start_load(0);
}

BatchPrefetcher::~BatchPrefetcher() {
  if (inflight_.valid()) inflight_.wait();
}

std::optional<BatchPrefetcher::Batch> BatchPrefetcher::next() {
  if (next_ >= paths_.size()) return std::nullopt;
  const obs::Span span("prefetch.stall", "io");
  const auto t0 = obs::wall_now();
  // Advance past the in-flight slot whether it loaded or threw: a caller
  // that catches a failed batch's error can keep calling next() and gets
  // the remaining files, not a dead future.
  Batch batch;
  try {
    batch = inflight_.get();
  } catch (...) {
    ++next_;
    if (next_ < paths_.size()) start_load(next_);
    throw;
  }
  batch.stall_s = detail::seconds_since(t0);
  {
    auto& reg = obs::MetricsRegistry::global();
    reg.counter("mera_prefetch_batches_total", {},
                "Reads batches handed out by the prefetcher")
        .inc();
    reg.counter("mera_prefetch_load_seconds_total", {},
                "Off-thread wall seconds spent loading reads batches")
        .add(batch.load_wall_s);
    reg.counter("mera_prefetch_stall_seconds_total", {},
                "Wall seconds the consumer blocked waiting on a load")
        .add(batch.stall_s);
  }
  ++next_;
  if (next_ < paths_.size()) start_load(next_);
  return batch;
}

void BatchPrefetcher::start_load(std::size_t i) {
  auto promise = std::make_shared<std::promise<Batch>>();
  inflight_ = promise->get_future();
  pool_->submit([promise, path = paths_[i]] {
    try {
      Batch batch;
      batch.path = path;
      const obs::Span span("prefetch.load", "io");
      const auto t0 = obs::wall_now();
      batch.records = load_read_batch(path);
      batch.load_wall_s = detail::seconds_since(t0);
      promise->set_value(std::move(batch));
    } catch (...) {
      promise->set_exception(std::current_exception());
    }
  });
}

}  // namespace mera::core
