#include "core/indexed_reference.hpp"

#include <span>
#include <utility>

#include "seq/kmer.hpp"

namespace mera::core {

namespace detail {

struct IndexedReferenceState {
  IndexedReferenceState(IndexConfig cfg_in, const pgas::Topology& topo_in)
      : cfg(cfg_in),
        topo(topo_in),
        store(topo_in.nranks(),
              TargetStore::Options{cfg_in.k, cfg_in.fragment_len}),
        index(topo_in, dht::SeedIndex::Options{cfg_in.k,
                                               cfg_in.aggregating_stores,
                                               cfg_in.buffer_S}),
        build_stats(static_cast<std::size_t>(topo_in.nranks())) {}

  IndexConfig cfg;
  pgas::Topology topo;
  TargetStore store;
  dht::SeedIndex index;
  std::vector<PipelineStats> build_stats;
  pgas::PhaseReport report;
  bool marked = false;
};

}  // namespace detail

namespace {

using detail::IndexedReferenceState;

/// Iterate the seeds of one index fragment (a window of a packed target).
/// fn(offset_within_fragment, kmer).
template <typename Fn>
void for_each_fragment_seed(const seq::PackedSeq& t, std::size_t off,
                            std::size_t len, int k, Fn&& fn) {
  if (len < static_cast<std::size_t>(k)) return;
  seq::Kmer m = seq::Kmer::from_packed(t, off, k);
  fn(std::size_t{0}, m);
  for (std::size_t s = 1; s + static_cast<std::size_t>(k) <= len; ++s) {
    m.roll(t.code_at(off + s + static_cast<std::size_t>(k) - 1));
    fn(s, m);
  }
}

/// The SPMD build body: the first half of Algorithm 1 (io.targets,
/// index.build, index.mark).
void build_rank_body(pgas::Rank& rank, IndexedReferenceState& st,
                     std::span<const seq::SeqRecord> mem_targets,
                     const std::string& fasta_path) {
  const auto me = static_cast<std::size_t>(rank.id());
  const int nranks = rank.nranks();

  // ---- io.targets ----------------------------------------------------------
  rank.phase("io.targets");
  {
    std::vector<seq::SeqRecord> recs;
    if (!fasta_path.empty()) {
      recs = seq::read_fasta_partition(fasta_path, rank.id(), nranks);
    } else {
      const std::size_t n = mem_targets.size();
      const std::size_t lo = n * me / static_cast<std::size_t>(nranks);
      const std::size_t hi = n * (me + 1) / static_cast<std::size_t>(nranks);
      recs.assign(mem_targets.begin() + static_cast<std::ptrdiff_t>(lo),
                  mem_targets.begin() + static_cast<std::ptrdiff_t>(hi));
    }
    st.store.add_local_targets(rank, std::move(recs));
  }
  st.store.finish_construction(rank);

  // ---- index.build ---------------------------------------------------------
  rank.phase("index.build");
  PipelineStats& stats = st.build_stats[me];
  const auto [flo, fhi] = st.store.local_fragment_range(rank.id());
  for (std::uint32_t fid = flo; fid < fhi; ++fid) {
    const Fragment& f = st.store.fragment_unsync(fid);
    const Target& t = st.store.target_unsync(f.parent_target);
    for_each_fragment_seed(t.seq, f.parent_offset, f.length, st.cfg.k,
                           [&](std::size_t, const seq::Kmer& m) {
                             st.index.count_seed(rank, m);
                           });
  }
  st.index.finish_count(rank);
  for (std::uint32_t fid = flo; fid < fhi; ++fid) {
    const Fragment& f = st.store.fragment_unsync(fid);
    const Target& t = st.store.target_unsync(f.parent_target);
    for_each_fragment_seed(
        t.seq, f.parent_offset, f.length, st.cfg.k,
        [&](std::size_t off, const seq::Kmer& m) {
          st.index.insert(
              rank, m,
              dht::SeedHit{fid, f.parent_target,
                           f.parent_offset + static_cast<std::uint32_t>(off)});
          ++stats.seeds_indexed;
        });
  }
  st.index.finish_insert(rank);

  // ---- index.mark (exact-match preprocessing) ------------------------------
  if (st.cfg.exact_match) {
    rank.phase("index.mark");
    st.index.for_each_local_duplicate_hit(rank, [&](const dht::SeedHit& h) {
      st.store.clear_single_copy(rank, h.fragment_id);
    });
  }
  rank.barrier();  // flags must be globally visible before any aligning
}

std::shared_ptr<const IndexedReferenceState> build_state(
    pgas::Runtime& rt, std::span<const seq::SeqRecord> mem_targets,
    const std::string& fasta_path, IndexConfig cfg) {
  auto st = std::make_shared<IndexedReferenceState>(cfg, rt.topo());
  rt.run([&](pgas::Rank& rank) {
    build_rank_body(rank, *st, mem_targets, fasta_path);
  });
  st->report = rt.report();
  st->marked = cfg.exact_match;
  return st;
}

}  // namespace

IndexedReference IndexedReference::build(
    pgas::Runtime& rt, const std::vector<seq::SeqRecord>& targets,
    IndexConfig cfg) {
  return IndexedReference(build_state(rt, targets, {}, cfg));
}

IndexedReference IndexedReference::build_from_fasta(
    pgas::Runtime& rt, const std::string& target_fasta, IndexConfig cfg) {
  return IndexedReference(build_state(rt, {}, target_fasta, cfg));
}

IndexedReference::IndexedReference(
    std::shared_ptr<const detail::IndexedReferenceState> st)
    : state_(std::move(st)) {}

const IndexConfig& IndexedReference::config() const noexcept {
  return state_->cfg;
}
const TargetStore& IndexedReference::targets() const noexcept {
  return state_->store;
}
const dht::SeedIndex& IndexedReference::index() const noexcept {
  return state_->index;
}
const pgas::Topology& IndexedReference::topology() const noexcept {
  return state_->topo;
}
int IndexedReference::nranks() const noexcept { return state_->topo.nranks(); }
bool IndexedReference::exact_match_marked() const noexcept {
  return state_->marked;
}
const pgas::PhaseReport& IndexedReference::build_report() const noexcept {
  return state_->report;
}
const std::vector<PipelineStats>& IndexedReference::build_stats()
    const noexcept {
  return state_->build_stats;
}
double IndexedReference::single_copy_fraction() const {
  return state_->store.single_copy_fraction();
}
std::size_t IndexedReference::index_entries() const {
  return state_->index.total_entries();
}

std::uint64_t IndexedReference::fingerprint() const {
  // FNV-1a over the facts that determine target/fragment ids and seed-hit
  // lists: index-shaping config, topology, and every target's name, length
  // and packed payload (in global-id order, which is itself part of what is
  // being fingerprinted).
  std::uint64_t h = 1469598103934665603ULL;
  const auto mix = [&h](const void* data, std::size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      h ^= p[i];
      h *= 1099511628211ULL;
    }
  };
  const auto mix64 = [&](std::uint64_t v) { mix(&v, sizeof v); };
  mix64(static_cast<std::uint64_t>(state_->cfg.k));
  mix64(static_cast<std::uint64_t>(state_->cfg.fragment_len));
  mix64(static_cast<std::uint64_t>(state_->topo.nranks()));
  mix64(static_cast<std::uint64_t>(state_->topo.ppn()));
  const std::uint32_t n = state_->store.num_targets();
  mix64(n);
  for (std::uint32_t gid = 0; gid < n; ++gid) {
    const Target& t = state_->store.target_unsync(gid);
    mix64(t.name.size());
    mix(t.name.data(), t.name.size());
    mix64(t.seq.size());
    const auto words = t.seq.words();
    mix(words.data(), words.size() * sizeof(std::uint64_t));
  }
  return h;
}

}  // namespace mera::core
