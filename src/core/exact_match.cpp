#include "core/exact_match.hpp"

namespace mera::core {

std::optional<ExactPlacement> exact_placement(const dht::SeedHit& hit,
                                              std::size_t q_off,
                                              std::size_t q_len,
                                              std::size_t target_len) {
  const std::size_t t_seed = hit.t_pos;  // seed position on the full target
  if (t_seed < q_off) return std::nullopt;  // query sticks out on the left
  const std::size_t t_begin = t_seed - q_off;
  if (t_begin + q_len > target_len) return std::nullopt;  // out on the right
  return ExactPlacement{hit.target_id, t_begin};
}

bool exact_compare(const seq::PackedSeq& query, const seq::PackedSeq& target,
                   const ExactPlacement& placement) {
  return seq::PackedSeq::equal_range(query, 0, target, placement.t_begin,
                                     query.size());
}

}  // namespace mera::core
