#include "core/pipeline.hpp"

#include <optional>
#include <utility>

namespace mera::core {

IndexConfig AlignerConfig::index_config() const {
  IndexConfig ic;
  ic.k = k;
  ic.aggregating_stores = aggregating_stores;
  ic.buffer_S = buffer_S;
  ic.exact_match = exact_match;
  ic.fragment_len = fragment_len;
  return ic;
}

SessionConfig AlignerConfig::session_config() const {
  SessionConfig sc;
  sc.seed_cache = seed_cache;
  sc.seed_cache_capacity = seed_cache_capacity;
  sc.target_cache = target_cache;
  sc.target_cache_bytes = target_cache_bytes;
  sc.exact_match = exact_match;
  sc.permute_queries = permute_queries;
  sc.permute_seed = permute_seed;
  sc.max_hits_per_seed = max_hits_per_seed;
  sc.seed_stride = seed_stride;
  sc.extension = extension;
  sc.min_report_score = min_report_score;
  return sc;
}

namespace {

/// Stitch the build-phase and batch-phase views back into the legacy
/// five-phase result. The batch's thread-spawn "startup" entry is dropped so
/// the fused report keeps the shape of the old single-run pipeline.
AlignResult assemble(const IndexedReference& ref, BatchResult&& batch,
                     std::vector<AlignmentRecord>&& alignments) {
  AlignResult res;
  res.report = ref.build_report();
  if (!batch.report.phases.empty() &&
      batch.report.phases.front().name == "startup")
    batch.report.phases.erase(batch.report.phases.begin());
  res.report.append(batch.report);

  res.per_rank = ref.build_stats();
  for (std::size_t r = 0; r < res.per_rank.size(); ++r)
    res.per_rank[r] += batch.per_rank[r];
  for (const auto& s : res.per_rank) res.stats += s;

  res.alignments = std::move(alignments);
  res.seed_cache = batch.seed_cache;
  res.target_cache = batch.target_cache;
  res.single_copy_fraction = ref.single_copy_fraction();
  res.index_entries = ref.index_entries();
  return res;
}

}  // namespace

MerAligner::MerAligner(AlignerConfig cfg) : cfg_(std::move(cfg)) {}

AlignResult MerAligner::align(pgas::Runtime& rt,
                              const std::vector<seq::SeqRecord>& targets,
                              const std::vector<seq::SeqRecord>& reads) const {
  const IndexedReference ref =
      IndexedReference::build(rt, targets, cfg_.index_config());
  AlignSession session(ref, cfg_.session_config());
  if (cfg_.collect_alignments) {
    VectorSink sink(rt.nranks());
    BatchResult batch = session.align_batch(rt, reads, sink);
    return assemble(ref, std::move(batch), sink.take());
  }
  CountingSink sink;
  BatchResult batch = session.align_batch(rt, reads, sink);
  return assemble(ref, std::move(batch), {});
}

AlignResult MerAligner::align_files(pgas::Runtime& rt,
                                    const std::string& target_fasta,
                                    const std::string& reads_seqdb,
                                    const std::string& sam_out) const {
  const IndexedReference ref =
      IndexedReference::build_from_fasta(rt, target_fasta, cfg_.index_config());
  // Seed-behavior compatibility: the legacy file path ignored permute_queries
  // (records were always read in natural order), and this wrapper promises
  // byte-identical SAM output. AlignSession honors the knob for file batches;
  // callers who want the Section IV-B balancing on files use it directly.
  SessionConfig sc = cfg_.session_config();
  sc.permute_queries = false;
  AlignSession session(ref, sc);

  VectorSink vec(rt.nranks());
  CountingSink count;
  std::optional<SamFileSink> sam;
  std::vector<AlignmentSink*> outs;
  outs.push_back(cfg_.collect_alignments
                     ? static_cast<AlignmentSink*>(&vec)
                     : static_cast<AlignmentSink*>(&count));
  if (!sam_out.empty()) {
    sam.emplace(sam_out, ref);
    outs.push_back(&*sam);
  }
  TeeSink tee(outs);
  AlignmentSink& sink = outs.size() == 1 ? *outs.front()
                                         : static_cast<AlignmentSink&>(tee);

  BatchResult batch = session.align_batch_file(rt, reads_seqdb, sink);
  return assemble(ref, std::move(batch),
                  cfg_.collect_alignments ? vec.take()
                                          : std::vector<AlignmentRecord>{});
}

}  // namespace mera::core
