#include "core/pipeline.hpp"

#include <algorithm>
#include <optional>
#include <span>
#include <unordered_set>

#include "core/exact_match.hpp"
#include "core/load_balance.hpp"
#include "core/sam_writer.hpp"
#include "core/target_store.hpp"
#include "dht/seed_index.hpp"
#include "seq/kmer.hpp"
#include "seq/seqdb.hpp"

namespace mera::core {

namespace {

/// Iterate the seeds of one index fragment (a window of a packed target).
/// fn(offset_within_fragment, kmer).
template <typename Fn>
void for_each_fragment_seed(const seq::PackedSeq& t, std::size_t off,
                            std::size_t len, int k, Fn&& fn) {
  if (len < static_cast<std::size_t>(k)) return;
  seq::Kmer m = seq::Kmer::from_packed(t, off, k);
  fn(std::size_t{0}, m);
  for (std::size_t s = 1; s + static_cast<std::size_t>(k) <= len; ++s) {
    m.roll(t.code_at(off + s + static_cast<std::size_t>(k) - 1));
    fn(s, m);
  }
}

/// Everything the rank bodies share. Construction happens on the main thread
/// before Runtime::run(); ranks touch only their own slots or synchronize via
/// barriers.
struct SharedState {
  SharedState(const AlignerConfig& cfg_in, const pgas::Topology& topo)
      : cfg(cfg_in),
        store(topo.nranks(),
              TargetStore::Options{cfg_in.k, cfg_in.fragment_len}),
        index(topo, dht::SeedIndex::Options{cfg_in.k, cfg_in.aggregating_stores,
                                            cfg_in.buffer_S}),
        stats(static_cast<std::size_t>(topo.nranks())),
        alignments(static_cast<std::size_t>(topo.nranks())) {
    if (cfg.seed_cache)
      scache.emplace(topo,
                     cache::SeedIndexCache::Options{cfg.seed_cache_capacity});
    if (cfg.target_cache)
      tcache.emplace(topo,
                     cache::TargetCache::Options{cfg.target_cache_bytes});
  }

  const AlignerConfig& cfg;
  TargetStore store;
  dht::SeedIndex index;
  std::optional<cache::SeedIndexCache> scache;
  std::optional<cache::TargetCache> tcache;
  std::vector<PipelineStats> stats;
  std::vector<std::vector<AlignmentRecord>> alignments;

  // Input plumbing: exactly one of the in-memory/file pairs is used.
  std::span<const seq::SeqRecord> mem_targets;
  std::span<const seq::SeqRecord> mem_reads;
  std::string target_fasta_path;
  std::string reads_seqdb_path;
};

/// Per-rank aligning-phase worker.
class RankAligner {
 public:
  RankAligner(pgas::Rank& rank, SharedState& sh)
      : rank_(rank),
        sh_(sh),
        st_(sh.stats[static_cast<std::size_t>(rank.id())]),
        out_(&sh.alignments[static_cast<std::size_t>(rank.id())]) {
    min_score_ = sh.cfg.min_report_score >= 0
                     ? sh.cfg.min_report_score
                     : sh.cfg.extension.scoring.match * sh.cfg.k;
  }

  void align_read(const seq::SeqRecord& read) {
    ++st_.reads_processed;
    records_this_read_ = 0;
    seen_.clear();
    const bool done = align_strand(read.name, read.seq, /*reverse=*/false);
    if (!done) {
      const std::string rc = seq::reverse_complement(read.seq);
      align_strand(read.name, rc, /*reverse=*/true);
    }
    if (records_this_read_ > 0) ++st_.reads_aligned;
  }

 private:
  /// Returns true when the Lemma-1 fast path resolved the read completely.
  bool align_strand(const std::string& name, const std::string& oriented,
                    bool reverse) {
    const std::size_t qlen = oriented.size();
    const int k = sh_.cfg.k;
    if (qlen < static_cast<std::size_t>(k)) return false;
    const bool has_n = oriented.find('N') != std::string::npos;
    const seq::PackedSeq qpacked(oriented);
    const auto qcodes = align::dna_codes(oriented);

    bool exact_done = false;
    bool exact_tried = false;
    std::vector<dht::SeedHit> hits;
    seq::for_each_seed(std::string_view(oriented), k, [&](std::size_t q_off,
                                                          const seq::Kmer& m) {
      if (exact_done) return;
      if (sh_.cfg.seed_stride > 1 && q_off % sh_.cfg.seed_stride != 0) return;
      hits.clear();
      const std::size_t total = lookup_seed(m, hits);
      if (total == 0) return;

      // Exact-match fast path: try the first candidate of the first seed
      // that produced one (Section IV-A; cost model t_q' in IV-B).
      if (sh_.cfg.exact_match && !exact_tried && !has_n) {
        exact_tried = true;
        const dht::SeedHit& h0 = hits.front();
        const Target& t = fetch_target_cached(h0.target_id);
        // The fragment's flag travels with the target fetch (one message).
        const Fragment& frag = sh_.store.fragment_unsync(h0.fragment_id);
        if (frag.single_copy_seeds.load(std::memory_order_relaxed)) {
          if (const auto pl = exact_placement(h0, q_off, qlen, t.seq.size())) {
            ++st_.memcmp_calls;
            if (exact_compare(qpacked, t.seq, *pl)) {
              AlignmentRecord rec;
              rec.query_name = name;
              rec.target_id = pl->target_id;
              rec.reverse = reverse;
              rec.score = sh_.cfg.extension.scoring.match *
                          static_cast<int>(qlen);
              rec.q_begin = 0;
              rec.q_end = qlen;
              rec.t_begin = pl->t_begin;
              rec.t_end = pl->t_begin + qlen;
              rec.cigar = std::to_string(qlen) + "M";
              rec.exact = true;
              emit(std::move(rec));
              ++st_.exact_match_reads;
              exact_done = true;
              return;
            }
          }
        }
      }

      for (const dht::SeedHit& h : hits) {
        // One extension per (target, diagonal) candidate; nearby diagonals
        // collapse so indels don't spawn duplicates.
        const std::int64_t diag = static_cast<std::int64_t>(h.t_pos) -
                                  static_cast<std::int64_t>(q_off);
        const std::uint64_t key =
            (static_cast<std::uint64_t>(h.target_id) << 33) |
            (static_cast<std::uint64_t>(reverse) << 32) |
            (static_cast<std::uint64_t>(diag + (1ll << 28)) >> 3);
        if (!seen_.insert(key).second) continue;
        const Target& t = fetch_target_cached(h.target_id);
        const auto ext =
            align::extend_seed(std::span<const std::uint8_t>(qcodes), t.seq,
                               q_off, h.t_pos, k, sh_.cfg.extension);
        ++st_.sw_calls;
        if (ext.aln.score >= min_score_ && !ext.aln.empty()) {
          AlignmentRecord rec;
          rec.query_name = name;
          rec.target_id = h.target_id;
          rec.reverse = reverse;
          rec.score = ext.aln.score;
          rec.q_begin = ext.aln.q_begin;
          rec.q_end = ext.aln.q_end;
          rec.t_begin = ext.aln.t_begin;
          rec.t_end = ext.aln.t_end;
          rec.cigar = ext.aln.cigar.to_string();
          rec.mismatches = ext.aln.mismatches;
          emit(std::move(rec));
        }
      }
    });
    return exact_done;
  }

  std::size_t lookup_seed(const seq::Kmer& m, std::vector<dht::SeedHit>& hits) {
    ++st_.seed_lookups;
    const int owner = sh_.index.owner_of(m);
    const bool off_node = !rank_.topo().same_node(owner, rank_.id());
    const int my_node = rank_.node();
    std::size_t total = 0;
    if (sh_.scache && off_node &&
        sh_.scache->lookup(my_node, m, sh_.cfg.max_hits_per_seed, hits, total)) {
      ++st_.seed_cache_hits;
      return total;
    }
    const double t0 = rank_.stats().comm_time_s;
    total = sh_.index.lookup(rank_, m, sh_.cfg.max_hits_per_seed, hits);
    st_.comm_lookup_s += rank_.stats().comm_time_s - t0;
    if (sh_.scache && off_node) sh_.scache->insert(my_node, m, hits, total);
    if (total > sh_.cfg.max_hits_per_seed) ++st_.hits_truncated;
    return total;
  }

  const Target& fetch_target_cached(std::uint32_t gid) {
    ++st_.target_fetches;
    const Target& t = sh_.store.target_unsync(gid);
    const int owner = sh_.store.owner_of_target(gid);
    if (owner == rank_.id()) return t;
    const bool off_node = !rank_.topo().same_node(owner, rank_.id());
    const int my_node = rank_.node();
    if (sh_.tcache && off_node && sh_.tcache->contains(my_node, gid)) {
      ++st_.target_cache_hits;
      return t;
    }
    const double t0 = rank_.stats().comm_time_s;
    rank_.charge_access(owner, t.seq.packed_bytes());
    st_.comm_fetch_s += rank_.stats().comm_time_s - t0;
    if (sh_.tcache && off_node)
      sh_.tcache->insert(my_node, gid, t.seq.packed_bytes());
    return t;
  }

  void emit(AlignmentRecord rec) {
    ++records_this_read_;
    ++st_.alignments_reported;
    if (sh_.cfg.collect_alignments) out_->push_back(std::move(rec));
  }

  pgas::Rank& rank_;
  SharedState& sh_;
  PipelineStats& st_;
  std::vector<AlignmentRecord>* out_;
  std::unordered_set<std::uint64_t> seen_;
  std::size_t records_this_read_ = 0;
  int min_score_ = 0;
};

/// The SPMD body: Algorithm 1 with all optimizations.
void rank_body(pgas::Rank& rank, SharedState& sh) {
  const auto me = static_cast<std::size_t>(rank.id());
  const int nranks = rank.nranks();

  // ---- io.targets ----------------------------------------------------------
  rank.phase("io.targets");
  {
    std::vector<seq::SeqRecord> recs;
    if (!sh.target_fasta_path.empty()) {
      recs = seq::read_fasta_partition(sh.target_fasta_path, rank.id(), nranks);
    } else {
      const std::size_t n = sh.mem_targets.size();
      const std::size_t lo = n * me / static_cast<std::size_t>(nranks);
      const std::size_t hi = n * (me + 1) / static_cast<std::size_t>(nranks);
      recs.assign(sh.mem_targets.begin() + static_cast<std::ptrdiff_t>(lo),
                  sh.mem_targets.begin() + static_cast<std::ptrdiff_t>(hi));
    }
    sh.store.add_local_targets(rank, std::move(recs));
  }
  sh.store.finish_construction(rank);

  // ---- index.build ---------------------------------------------------------
  rank.phase("index.build");
  PipelineStats& st = sh.stats[me];
  const auto [flo, fhi] = sh.store.local_fragment_range(rank.id());
  for (std::uint32_t fid = flo; fid < fhi; ++fid) {
    const Fragment& f = sh.store.fragment_unsync(fid);
    const Target& t = sh.store.target_unsync(f.parent_target);
    for_each_fragment_seed(t.seq, f.parent_offset, f.length, sh.cfg.k,
                           [&](std::size_t, const seq::Kmer& m) {
                             sh.index.count_seed(rank, m);
                           });
  }
  sh.index.finish_count(rank);
  for (std::uint32_t fid = flo; fid < fhi; ++fid) {
    const Fragment& f = sh.store.fragment_unsync(fid);
    const Target& t = sh.store.target_unsync(f.parent_target);
    for_each_fragment_seed(
        t.seq, f.parent_offset, f.length, sh.cfg.k,
        [&](std::size_t off, const seq::Kmer& m) {
          sh.index.insert(
              rank, m,
              dht::SeedHit{fid, f.parent_target,
                           f.parent_offset + static_cast<std::uint32_t>(off)});
          ++st.seeds_indexed;
        });
  }
  sh.index.finish_insert(rank);

  // ---- index.mark (exact-match preprocessing) ------------------------------
  rank.phase("index.mark");
  if (sh.cfg.exact_match) {
    sh.index.for_each_local_duplicate_hit(rank, [&](const dht::SeedHit& h) {
      sh.store.clear_single_copy(rank, h.fragment_id);
    });
  }
  rank.barrier();  // flags must be globally visible before aligning

  // ---- io.reads ------------------------------------------------------------
  rank.phase("io.reads");
  std::vector<seq::SeqRecord> file_reads;
  std::span<const seq::SeqRecord> myreads;
  if (!sh.reads_seqdb_path.empty()) {
    seq::SeqDBReader db(sh.reads_seqdb_path);
    const auto [rlo, rhi] = db.partition(rank.id(), nranks);
    file_reads.reserve(rhi - rlo);
    for (std::size_t i = rlo; i < rhi; ++i) file_reads.push_back(db.read(i));
    myreads = file_reads;
  } else {
    const std::size_t n = sh.mem_reads.size();
    const std::size_t lo = n * me / static_cast<std::size_t>(nranks);
    const std::size_t hi = n * (me + 1) / static_cast<std::size_t>(nranks);
    myreads = sh.mem_reads.subspan(lo, hi - lo);
  }

  // ---- align ----------------------------------------------------------------
  rank.phase("align");
  RankAligner aligner(rank, sh);
  for (const seq::SeqRecord& r : myreads) aligner.align_read(r);
  rank.barrier();
}

AlignResult collect(SharedState& sh, pgas::Runtime& rt) {
  AlignResult res;
  res.report = rt.report();
  res.per_rank = sh.stats;
  for (const auto& s : sh.stats) res.stats += s;
  for (auto& v : sh.alignments) {
    res.alignments.insert(res.alignments.end(),
                          std::make_move_iterator(v.begin()),
                          std::make_move_iterator(v.end()));
    v.clear();
  }
  if (sh.scache) res.seed_cache = sh.scache->counters();
  if (sh.tcache) res.target_cache = sh.tcache->counters();
  res.single_copy_fraction = sh.store.single_copy_fraction();
  res.index_entries = sh.index.total_entries();
  return res;
}

}  // namespace

MerAligner::MerAligner(AlignerConfig cfg) : cfg_(std::move(cfg)) {}

AlignResult MerAligner::align(pgas::Runtime& rt,
                              const std::vector<seq::SeqRecord>& targets,
                              const std::vector<seq::SeqRecord>& reads) const {
  SharedState sh(cfg_, rt.topo());
  std::vector<seq::SeqRecord> permuted;
  if (cfg_.permute_queries) {
    permuted = reads;
    permute_queries(permuted, cfg_.permute_seed);
    sh.mem_reads = permuted;
  } else {
    sh.mem_reads = reads;
  }
  sh.mem_targets = targets;
  rt.run([&sh](pgas::Rank& rank) { rank_body(rank, sh); });
  return collect(sh, rt);
}

AlignResult MerAligner::align_files(pgas::Runtime& rt,
                                    const std::string& target_fasta,
                                    const std::string& reads_seqdb,
                                    const std::string& sam_out) const {
  SharedState sh(cfg_, rt.topo());
  sh.target_fasta_path = target_fasta;
  sh.reads_seqdb_path = reads_seqdb;
  rt.run([&sh](pgas::Rank& rank) { rank_body(rank, sh); });
  AlignResult res = collect(sh, rt);
  if (!sam_out.empty()) {
    // Resolve aligned query sequences for SAM; the SeqDB is indexed so this
    // is a cheap post-pass keyed by query name.
    seq::SeqDBReader db(reads_seqdb);
    std::unordered_map<std::string, std::string> seq_by_name;
    for (std::size_t i = 0; i < db.size(); ++i) {
      auto rec = db.read(i);
      seq_by_name.emplace(std::move(rec.name), std::move(rec.seq));
    }
    std::vector<std::string> qseqs;
    qseqs.reserve(res.alignments.size());
    for (const auto& a : res.alignments) qseqs.push_back(seq_by_name.at(a.query_name));
    write_sam_file(sam_out, sh.store, res.alignments, qseqs);
  }
  return res;
}

}  // namespace mera::core
