// Double-buffered loading for a stream of reads-batch files.
//
// A multi-batch screen alternates io.reads (load batch N) with align (chew on
// batch N) — strictly serially, so the CPU idles during every load and the
// disk idles during every align. BatchPrefetcher overlaps them: the moment
// batch N is handed to the aligner, batch N+1 starts loading on a pool
// worker, so a steady stream pays the load cost of only the FIRST batch on
// the critical path. Batches are always handed out in file order — the
// prefetcher reorders nothing, it only hides latency.
//
// FASTQ batches are parsed straight into memory (the in-memory aligning path
// needs no SeqDB conversion); SeqDB batches are read record by record. Both
// yield exactly the records the synchronous file path would have aligned.
#pragma once

#include <future>
#include <optional>
#include <string>
#include <vector>

#include "exec/thread_pool.hpp"
#include "obs/clock.hpp"
#include "seq/fasta.hpp"

namespace mera::core {

namespace detail {
/// Real (wall) seconds elapsed since `t0` — the clock the overlap
/// accounting uses everywhere (loads, stalls, end-to-end stream walls).
/// Delegates to obs so every layer reports time from one clock path.
using obs::seconds_since;
}  // namespace detail

/// True when `path`'s extension says FASTQ (.fastq/.fq, case-insensitive —
/// .FASTQ and .Fq are common in the wild and must not be misrouted to the
/// SeqDB reader). The single format sniff every reads-file consumer shares.
[[nodiscard]] bool looks_like_fastq(std::string_view path);

/// Load one reads-batch file into memory: FASTQ (per looks_like_fastq) is
/// parsed directly, anything else is read as SeqDB. A SeqDB parse failure is
/// reported with the path and the format guess, so a mis-named file doesn't
/// surface as a bare SeqDB error.
[[nodiscard]] std::vector<seq::SeqRecord> load_read_batch(
    const std::string& path);

class BatchPrefetcher {
 public:
  struct Batch {
    std::string path;
    std::vector<seq::SeqRecord> records;
    double load_wall_s = 0.0;  ///< real seconds the load took (off-thread)
    double stall_s = 0.0;      ///< real seconds next() blocked waiting for it
  };

  /// Starts loading paths[0] on `pool` immediately. The pool must outlive
  /// the prefetcher; one worker is enough (loads are sequential by design —
  /// only ONE batch is in flight, so memory is bounded by two batches: the
  /// one aligning and the one loading).
  BatchPrefetcher(exec::ThreadPool& pool, std::vector<std::string> paths);
  /// Joins any in-flight load (its result is discarded).
  ~BatchPrefetcher();
  BatchPrefetcher(const BatchPrefetcher&) = delete;
  BatchPrefetcher& operator=(const BatchPrefetcher&) = delete;

  /// Next batch in file order: blocks until its load completes (rethrowing
  /// any load error), kicks off the following file's load, and returns the
  /// records. A failed batch is consumed by its throw — catch and keep
  /// calling to get the remaining files. Empty once every path has been
  /// handed out.
  [[nodiscard]] std::optional<Batch> next();

  [[nodiscard]] std::size_t num_batches() const noexcept {
    return paths_.size();
  }

 private:
  void start_load(std::size_t i);

  exec::ThreadPool* pool_;
  std::vector<std::string> paths_;
  std::size_t next_ = 0;
  std::future<Batch> inflight_;
};

}  // namespace mera::core
