#include "core/sam_writer.hpp"

#include <fstream>
#include <ostream>
#include <stdexcept>

#include "seq/dna.hpp"

namespace mera::core {

std::vector<SamTarget> sam_targets(const TargetStore& targets) {
  std::vector<SamTarget> out;
  out.reserve(targets.num_targets());
  for (std::uint32_t gid = 0; gid < targets.num_targets(); ++gid) {
    const Target& t = targets.target_unsync(gid);
    out.push_back(SamTarget{t.name, t.seq.size()});
  }
  return out;
}

void write_sam_header(std::ostream& os, const std::vector<SamTarget>& targets,
                      const SamProgram& pg) {
  os << "@HD\tVN:1.6\tSO:unknown\n";
  for (const SamTarget& t : targets)
    os << "@SQ\tSN:" << t.name << "\tLN:" << t.length << '\n';
  os << "@PG\tID:" << pg.id << "\tPN:" << pg.name << "\tVN:" << pg.version;
  if (!pg.command_line.empty()) os << "\tCL:" << pg.command_line;
  os << '\n';
}

void write_sam_header(std::ostream& os, const TargetStore& targets,
                      const SamProgram& pg) {
  write_sam_header(os, sam_targets(targets), pg);
}

void write_sam_record(std::ostream& os, const AlignmentRecord& rec,
                      const std::string& target_name,
                      const std::string& query_seq) {
  const unsigned flag = rec.reverse ? 0x10u : 0u;
  // SAM stores the sequence as aligned: reverse-complement for 0x10.
  const std::string seq =
      rec.reverse ? seq::reverse_complement(query_seq) : query_seq;
  os << rec.query_name << '\t' << flag << '\t' << target_name << '\t'
     << rec.t_begin + 1 << '\t' << (rec.exact ? 60 : 30) << '\t' << rec.cigar
     << '\t' << "*\t0\t0\t" << seq << "\t*\tAS:i:" << rec.score
     << "\tNM:i:" << rec.mismatches << '\n';
}

void write_sam_record(std::ostream& os, const AlignmentRecord& rec,
                      const TargetStore& targets,
                      const std::string& query_seq) {
  write_sam_record(os, rec, targets.target_unsync(rec.target_id).name,
                   query_seq);
}

void write_sam_file(const std::string& path, const TargetStore& targets,
                    const std::vector<AlignmentRecord>& recs,
                    const std::vector<std::string>& query_seqs) {
  if (recs.size() != query_seqs.size())
    throw std::invalid_argument("write_sam_file: records/sequences mismatch");
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open for writing: " + path);
  write_sam_header(out, targets);
  for (std::size_t i = 0; i < recs.size(); ++i)
    write_sam_record(out, recs[i], targets, query_seqs[i]);
  if (!out) throw std::runtime_error("write failed: " + path);
}

}  // namespace mera::core
