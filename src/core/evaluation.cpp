#include "core/evaluation.hpp"

#include <algorithm>
#include <iomanip>
#include <map>
#include <ostream>

#include "seq/dna.hpp"
#include "seq/genome_sim.hpp"
#include "seq/read_sim.hpp"

namespace mera::core {

namespace {

struct BestHit {
  std::uint32_t target_id = 0;
  int score = -1;
  std::size_t t_begin = 0;
  bool reverse = false;
};

}  // namespace

bool read_is_findable(const seq::SeqRecord& read, std::string_view genome,
                      const std::vector<seq::SeqRecord>& contigs, int k) {
  const auto truth = seq::parse_read_truth(read.name);
  if (truth.junk) return false;
  const std::size_t len = read.seq.size();
  if (len < static_cast<std::size_t>(k)) return false;
  // Read bases in genome orientation.
  const std::string oriented =
      truth.reverse ? seq::reverse_complement(read.seq) : read.seq;
  const std::string_view genomic = genome.substr(truth.pos, len);

  // Clean stretches: maximal runs where the read agrees with the genome.
  // A window of length >= k inside one contig makes the read findable.
  for (std::size_t start = 0; start + static_cast<std::size_t>(k) <= len;
       ++start) {
    bool clean = true;
    for (std::size_t i = start; i < start + static_cast<std::size_t>(k); ++i) {
      if (oriented[i] != genomic[i] ||
          seq::encode_base(oriented[i]) == seq::kInvalidBase) {
        clean = false;
        break;
      }
    }
    if (!clean) continue;
    const std::size_t gpos = truth.pos + start;
    for (const auto& c : contigs) {
      const auto ct = seq::parse_contig_truth(c.name);
      if (gpos >= ct.start && gpos + static_cast<std::size_t>(k) <= ct.end)
        return true;
    }
  }
  return false;
}

EvalResult evaluate_alignments(const std::vector<seq::SeqRecord>& contigs,
                               const std::vector<seq::SeqRecord>& reads,
                               const std::vector<AlignmentRecord>& alignments,
                               const EvalOptions& opt,
                               std::string_view genome) {
  EvalResult res;
  res.total_reads = reads.size();
  if (!genome.empty())
    for (const auto& r : reads)
      res.findable_reads +=
          read_is_findable(r, genome, contigs, opt.k) ? 1u : 0u;

  // Contig genome-interval lookup by target id (= input order).
  std::vector<seq::ContigTruth> contig_truth;
  contig_truth.reserve(contigs.size());
  for (const auto& c : contigs)
    contig_truth.push_back(seq::parse_contig_truth(c.name));

  // Best alignment per read.
  std::map<std::string, BestHit> best;
  for (const auto& a : alignments) {
    auto& b = best[a.query_name];
    if (a.score > b.score) b = {a.target_id, a.score, a.t_begin, a.reverse};
  }

  for (const auto& r : reads) {
    const auto truth = seq::parse_read_truth(r.name);
    const auto it = best.find(r.name);
    if (truth.junk) {
      ++res.junk_reads;
      if (it != best.end()) {
        ++res.junk_aligned;
        ++res.aligned_reads;
      }
      continue;
    }
    if (it == best.end()) continue;
    ++res.aligned_reads;
    const BestHit& b = it->second;
    const auto& ct = contig_truth[b.target_id];
    // Reported genome start. For reverse alignments t_begin is where the
    // reverse-complemented read begins; the read's 5' end in genome
    // coordinates is the same t_begin (the rc read spans the same interval).
    const std::size_t genome_pos = ct.start + b.t_begin;
    const bool pos_ok =
        genome_pos + opt.position_tolerance >= truth.pos &&
        genome_pos <= truth.pos + opt.position_tolerance;
    if (pos_ok && b.reverse == truth.reverse)
      ++res.correctly_placed;
    else
      ++res.misplaced;
  }
  return res;
}

void EvalResult::print(std::ostream& os) const {
  os << "reads total / junk / findable: " << total_reads << " / " << junk_reads
     << " / " << findable_reads << '\n'
     << std::fixed << std::setprecision(2)
     << "aligned:          " << aligned_reads << "  ("
     << 100.0 * aligned_fraction() << "% of all)\n"
     << "correctly placed: " << correctly_placed << "  (precision "
     << 100.0 * placement_precision() << "%)\n"
     << "misplaced:        " << misplaced << '\n'
     << "junk aligned:     " << junk_aligned << '\n';
  if (findable_reads)
    os << "recall vs seed-findable: " << 100.0 * recall_vs_findable() << "%\n";
  os.unsetf(std::ios::fixed);
}

}  // namespace mera::core
