// Contig scaffolding from paired-read alignments.
//
// merAligner exists because "the key first stage of the general scaffolding
// algorithm is aligning the reads onto the generated contigs" (Section I).
// This module is that consumer: given the aligner's output for a paired-end
// library, it derives contig-adjacency links (pairs whose mates align to
// different contigs), estimates the gap between linked contigs from the
// library's insert size, and greedily chains contigs into scaffolds.
//
// The implementation assumes the common FR (forward/reverse) library layout
// produced by seq::simulate_reads: the two mates of a fragment face each
// other, so a mate aligned forward points at the fragment's far end and a
// mate aligned reverse points back at its near end.
#pragma once

#include <cstdint>
#include <vector>

#include "core/alignment.hpp"

namespace mera::core {

struct ScaffoldOptions {
  std::size_t insert_mean = 400;  ///< paired-end library insert size
  std::size_t min_links = 3;      ///< pairs required to accept an edge
  int min_score = 0;              ///< ignore alignments below this score
};

/// One mate pair's best alignments (absent mates have score < 0).
struct MatePair {
  AlignmentRecord first;
  AlignmentRecord second;
  bool first_aligned = false;
  bool second_aligned = false;
};

/// An accepted adjacency between two contigs.
struct ContigLink {
  std::uint32_t from = 0;  ///< contig whose *end* the link leaves
  std::uint32_t to = 0;    ///< contig whose *start* the link enters
  int support = 0;         ///< number of witnessing pairs
  double gap_estimate = 0; ///< mean estimated gap (may be negative: overlap)
};

/// An ordered chain of contigs with estimated gaps between neighbours
/// (gaps.size() == contigs.size() - 1).
struct Scaffold {
  std::vector<std::uint32_t> contigs;
  std::vector<double> gaps;
};

class Scaffolder {
 public:
  Scaffolder(std::vector<std::size_t> contig_lengths, ScaffoldOptions opt);

  /// Group a read stream's best alignments into mate pairs by the
  /// mates-are-adjacent convention (reads 2i and 2i+1 are mates). `best`
  /// must hold one entry per read in read order; entries with
  /// `aligned == false` mark unaligned mates.
  static std::vector<MatePair> pair_adjacent(
      const std::vector<AlignmentRecord>& best_per_read,
      const std::vector<bool>& aligned);

  /// Accumulate links from mate pairs whose mates hit different contigs.
  void add_pairs(const std::vector<MatePair>& pairs);

  /// Accepted links (support >= min_links), strongest first.
  [[nodiscard]] std::vector<ContigLink> links() const;

  /// Greedy scaffolding: repeatedly add the strongest link that keeps every
  /// contig's in/out degree <= 1 and creates no cycle; walk the chains.
  [[nodiscard]] std::vector<Scaffold> build() const;

 private:
  struct Edge {
    int support = 0;
    double gap_sum = 0;
  };

  std::vector<std::size_t> contig_lengths_;
  ScaffoldOptions opt_;
  // Directed adjacency candidates: (from << 32 | to) -> evidence.
  std::vector<std::pair<std::uint64_t, Edge>> edges_;
  void bump_edge(std::uint32_t from, std::uint32_t to, double gap);
};

}  // namespace mera::core
