#include "shard/shard_planner.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace mera::shard {

std::size_t ShardPlan::num_targets() const noexcept {
  std::size_t n = 0;
  for (const Shard& s : shards) n += s.targets.size();
  return n;
}

std::uint64_t ShardPlan::total_weight() const noexcept {
  std::uint64_t w = 0;
  for (const Shard& s : shards) w += s.weight;
  return w;
}

std::uint64_t ShardPlan::max_weight() const noexcept {
  std::uint64_t w = 0;
  for (const Shard& s : shards) w = std::max(w, s.weight);
  return w;
}

double ShardPlan::imbalance() const noexcept {
  if (shards.empty()) return 0.0;
  const double mean = static_cast<double>(total_weight()) /
                      static_cast<double>(shards.size());
  return mean == 0.0 ? 1.0 : static_cast<double>(max_weight()) / mean;
}

std::uint64_t target_weight(const seq::SeqRecord& target, ShardWeight model,
                            int k) {
  const std::uint64_t len = target.seq.size();
  std::uint64_t w = len;
  if (model == ShardWeight::kCostModel)
    w = len >= static_cast<std::uint64_t>(k)
            ? len - static_cast<std::uint64_t>(k) + 1
            : 0;
  return std::max<std::uint64_t>(w, 1);
}

ShardPlan plan_shards(const std::vector<seq::SeqRecord>& targets,
                      const ShardPlanOptions& opt) {
  if (opt.k < 1) throw std::invalid_argument("plan_shards: k < 1");
  const std::size_t n = targets.size();
  const int k_shards = std::clamp<int>(opt.shards, 1,
                                       static_cast<int>(std::max<std::size_t>(n, 1)));

  std::vector<std::uint64_t> weights(n);
  for (std::size_t i = 0; i < n; ++i)
    weights[i] = target_weight(targets[i], opt.weight, opt.k);

  // LPT: heaviest target first (ties broken by lower global id so the plan
  // is a pure function of the weights), each onto the lightest shard (ties
  // broken by lower shard id).
  std::vector<std::uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              return weights[a] != weights[b] ? weights[a] > weights[b]
                                              : a < b;
            });

  ShardPlan plan;
  plan.shards.resize(static_cast<std::size_t>(k_shards));
  for (const std::uint32_t gid : order) {
    std::size_t lightest = 0;
    for (std::size_t s = 1; s < plan.shards.size(); ++s)
      if (plan.shards[s].weight < plan.shards[lightest].weight) lightest = s;
    plan.shards[lightest].targets.push_back(gid);
    plan.shards[lightest].weight += weights[gid];
  }

  // Shard-local target order follows global-id order, so a shard's local ids
  // are a monotone relabeling of its global ids.
  for (ShardPlan::Shard& s : plan.shards)
    std::sort(s.targets.begin(), s.targets.end());
  return plan;
}

ShardPlan contiguous_plan(const std::vector<std::uint32_t>& shard_sizes,
                          const std::vector<std::uint64_t>& shard_weights) {
  if (!shard_weights.empty() && shard_weights.size() != shard_sizes.size())
    throw std::invalid_argument("contiguous_plan: sizes/weights mismatch");
  ShardPlan plan;
  plan.shards.resize(shard_sizes.size());
  std::uint32_t gid = 0;
  for (std::size_t s = 0; s < shard_sizes.size(); ++s) {
    plan.shards[s].targets.resize(shard_sizes[s]);
    std::iota(plan.shards[s].targets.begin(), plan.shards[s].targets.end(),
              gid);
    gid += shard_sizes[s];
    plan.shards[s].weight =
        shard_weights.empty() ? shard_sizes[s] : shard_weights[s];
  }
  return plan;
}

}  // namespace mera::shard
