#include "shard/sharded_reference.hpp"

#include <algorithm>
#include <stdexcept>

#include "seq/fasta.hpp"

namespace mera::shard {

namespace detail {

struct ShardedReferenceState {
  ShardPlan plan;
  core::IndexConfig cfg;
  std::vector<core::IndexedReference> shards;
  /// Global id -> (shard, shard-local id).
  std::vector<std::pair<int, std::uint32_t>> shard_of;
  /// Merged @SQ catalog, global-id order.
  std::vector<core::SamTarget> catalog;
  pgas::PhaseReport build_report;  ///< shard reports appended in order
};

}  // namespace detail

namespace {

using detail::ShardedReferenceState;

void validate_plan(const ShardPlan& plan, std::size_t n_targets) {
  if (plan.shards.empty())
    throw std::invalid_argument("ShardedReference: plan has no shards");
  std::vector<char> seen(n_targets, 0);
  std::size_t covered = 0;
  for (const ShardPlan::Shard& s : plan.shards) {
    for (const std::uint32_t gid : s.targets) {
      if (gid >= n_targets || seen[gid])
        throw std::invalid_argument(
            "ShardedReference: plan is not a partition of the target set");
      seen[gid] = 1;
      ++covered;
    }
  }
  if (covered != n_targets)
    throw std::invalid_argument(
        "ShardedReference: plan does not cover every target");
}

std::shared_ptr<const ShardedReferenceState> compose(
    ShardPlan plan, core::IndexConfig cfg,
    std::vector<core::IndexedReference> shards) {
  auto st = std::make_shared<ShardedReferenceState>();
  st->plan = std::move(plan);
  st->cfg = cfg;
  st->shards = std::move(shards);

  std::size_t n = st->plan.num_targets();
  st->shard_of.assign(n, {0, 0});
  st->catalog.assign(n, {});
  for (std::size_t s = 0; s < st->shards.size(); ++s) {
    const auto& shard_targets = st->plan.shards[s].targets;
    const core::TargetStore& store = st->shards[s].targets();
    if (store.num_targets() != shard_targets.size())
      throw std::invalid_argument(
          "ShardedReference: shard target count does not match its plan");
    for (std::uint32_t local = 0; local < shard_targets.size(); ++local) {
      const std::uint32_t gid = shard_targets[local];
      st->shard_of[gid] = {static_cast<int>(s), local};
      const core::Target& t = store.target_unsync(local);
      st->catalog[gid] = core::SamTarget{t.name, t.seq.size()};
    }
    st->build_report.append(st->shards[s].build_report());
  }
  return st;
}

}  // namespace

ShardedReference ShardedReference::build(
    pgas::Runtime& rt, const std::vector<seq::SeqRecord>& targets,
    const ShardPlan& plan, core::IndexConfig cfg) {
  validate_plan(plan, targets.size());
  std::vector<core::IndexedReference> shards;
  shards.reserve(plan.shards.size());
  for (const ShardPlan::Shard& s : plan.shards) {
    std::vector<seq::SeqRecord> shard_targets;
    shard_targets.reserve(s.targets.size());
    for (const std::uint32_t gid : s.targets) shard_targets.push_back(targets[gid]);
    shards.push_back(core::IndexedReference::build(rt, shard_targets, cfg));
  }
  return ShardedReference(compose(plan, cfg, std::move(shards)));
}

ShardedReference ShardedReference::build(
    pgas::Runtime& rt, const std::vector<seq::SeqRecord>& targets, int shards,
    core::IndexConfig cfg) {
  ShardPlanOptions opt;
  opt.shards = shards;
  opt.weight = ShardWeight::kCostModel;
  opt.k = cfg.k;
  return build(rt, targets, plan_shards(targets, opt), cfg);
}

ShardedReference ShardedReference::build_from_fastas(
    pgas::Runtime& rt, const std::vector<std::string>& fastas,
    core::IndexConfig cfg) {
  if (fastas.empty())
    throw std::invalid_argument("ShardedReference: no target files");
  std::vector<core::IndexedReference> shards;
  std::vector<std::uint32_t> sizes;
  std::vector<std::uint64_t> weights;  // total bases per file
  shards.reserve(fastas.size());
  for (const std::string& path : fastas) {
    shards.push_back(core::IndexedReference::build_from_fasta(rt, path, cfg));
    const core::TargetStore& store = shards.back().targets();
    sizes.push_back(store.num_targets());
    std::uint64_t bases = 0;
    for (std::uint32_t t = 0; t < store.num_targets(); ++t)
      bases += store.target_unsync(t).seq.size();
    weights.push_back(bases);
  }
  return ShardedReference(
      compose(contiguous_plan(sizes, weights), cfg, std::move(shards)));
}

ShardedReference::ShardedReference(
    std::shared_ptr<const detail::ShardedReferenceState> st)
    : state_(std::move(st)) {}

int ShardedReference::num_shards() const noexcept {
  return static_cast<int>(state_->shards.size());
}

const core::IndexedReference& ShardedReference::shard(int s) const {
  return state_->shards.at(static_cast<std::size_t>(s));
}

const ShardPlan& ShardedReference::plan() const noexcept {
  return state_->plan;
}

const core::IndexConfig& ShardedReference::config() const noexcept {
  return state_->cfg;
}

const pgas::Topology& ShardedReference::topology() const noexcept {
  return state_->shards.front().topology();
}

std::uint32_t ShardedReference::num_targets() const noexcept {
  return static_cast<std::uint32_t>(state_->shard_of.size());
}

std::uint32_t ShardedReference::to_global(int s, std::uint32_t local_id) const {
  return state_->plan.shards.at(static_cast<std::size_t>(s))
      .targets.at(local_id);
}

std::pair<int, std::uint32_t> ShardedReference::to_shard(
    std::uint32_t global_id) const {
  return state_->shard_of.at(global_id);
}

const std::string& ShardedReference::target_name(std::uint32_t global_id) const {
  return state_->catalog.at(global_id).name;
}

std::size_t ShardedReference::target_length(std::uint32_t global_id) const {
  return state_->catalog.at(global_id).length;
}

const std::vector<core::SamTarget>& ShardedReference::sam_targets()
    const noexcept {
  return state_->catalog;
}

const pgas::PhaseReport& ShardedReference::build_report() const noexcept {
  return state_->build_report;
}

double ShardedReference::build_time_parallel_s() const {
  double t = 0.0;
  for (const auto& s : state_->shards)
    t = std::max(t, s.build_report().total_time_s());
  return t;
}

double ShardedReference::build_time_serial_s() const {
  return state_->build_report.total_time_s();
}

std::size_t ShardedReference::index_entries() const {
  std::size_t n = 0;
  for (const auto& s : state_->shards) n += s.index_entries();
  return n;
}

bool ShardedReference::exact_match_marked() const noexcept {
  for (const auto& s : state_->shards)
    if (!s.exact_match_marked()) return false;
  return true;
}

}  // namespace mera::shard
