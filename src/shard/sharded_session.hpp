// Streaming query batches against a ShardedReference.
//
// A ShardedAlignSession owns one core::AlignSession per shard and makes the
// K shards behave like a single reference:
//
//   1. every query batch is streamed through every shard's session (each
//      shard sees the full batch — screening is all-vs-all across shards);
//      the K per-shard align_batch calls are independent, so they can run
//      CONCURRENTLY on an exec::ThreadPool (shard_parallelism below), each
//      on its own pgas::Runtime — K runtimes side by side in one process;
//   2. per-shard records are collected, their shard-local target ids are
//      rewritten to global ids through the ShardedReference mapping;
//   3. per (rank, read), the candidates from all shards are reconciled into
//      one deterministic global order — best score first, ties broken by
//      global target id, then target position (then the remaining record
//      fields, so the order is total);
//   4. the reconciled stream is emitted into the caller's AlignmentSink in
//      the usual rank-major, read-order sequence, followed by one
//      batch_end() — sinks cannot tell a sharded session from a plain one.
//
// Because each shard writes into its own private collector and step 3
// imposes a total order, the emitted stream is bit-identical at EVERY
// shard_parallelism — the executor changes wall-clock time, never bytes
// (tests/test_async.cpp asserts this for K in {1,2,4} and all SW kernels).
// Single-shard note: with K == 1 there is nothing to merge, so the per-read
// reorder is skipped and records flow through in the shard's own discovery
// order — same records, same rank partition, just not re-sorted.
//
// Equivalence contract: with the per-shard search exhaustive — exact-match
// fast path off and max_hits_per_seed large enough that no lookup truncates
// — the union of per-shard candidates IS the monolithic candidate set
// (targets partition across shards; seed hits and SW extensions are
// per-target), so a K-shard batch reports bit-identical records, SAM content
// and work totals to the equivalent single-IndexedReference session
// (tests/test_shard.cpp proves it for K in {1,2,4}). With the exact-match
// short-circuit or hit truncation enabled, those per-read shortcuts apply
// per shard, and the sharded result may explore more candidates than the
// monolithic one — fine for screening, but not bit-comparable.
//
// Stats: reads are processed once per shard, so shard counters are summed
// for work totals (lookups, SW calls, fetches) while read-scoped counters
// (reads_processed, reads_aligned) count each read ONCE, computed during
// reconciliation. Phase reports are appended shard by shard; total_time_s()
// is the serial composition, time_parallel_s() the per-runtime view (shards
// on K machines run concurrently: the batch costs the slowest shard), and
// wall_s the measured reality of THIS process's executor.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/align_session.hpp"
#include "shard/sharded_reference.hpp"

namespace mera::exec {
class ThreadPool;
}

namespace mera::shard {

/// Session configuration plus the executor axis that only exists when there
/// are K independent shards to drive.
struct ShardedSessionConfig {
  core::SessionConfig session{};
  /// Shards aligned concurrently per batch: 1 = serial (one shard at a
  /// time on the caller's runtime), J >= 2 = that many pool workers, each
  /// running one shard's align_batch on its own runtime, 0 = auto —
  /// min(K, hardware_concurrency / nranks), so shard parallelism never
  /// oversubscribes beyond what one runtime's rank threads already use.
  /// Output is bit-identical at every setting.
  int shard_parallelism = 0;
  /// Optional externally owned executor. When set, the session submits its
  /// shard work here instead of creating a private pool, and J is clamped to
  /// the pool's size — this is how a process hosting many sessions (the
  /// alignment daemon) makes J a single process-wide budget rather than a
  /// per-session one. The pool must outlive the session; null keeps the
  /// lazy private-pool behaviour.
  exec::ThreadPool* pool = nullptr;
};

/// Outcome of one sharded align_batch() call.
struct ShardedBatchResult {
  /// Every shard's batch phases (io.reads, align), appended in shard order.
  pgas::PhaseReport report;
  /// Reconciled totals: work counters summed over shards, read counters
  /// (reads_processed / reads_aligned) counted once per read.
  core::PipelineStats stats;
  /// Each shard's own BatchResult (per-shard stats, cache deltas, report).
  std::vector<core::BatchResult> per_shard;
  /// SwKernel::kBatch lane occupancy summed over shards (the per-shard
  /// breakdown is in per_shard[s].lane_stats). All-zero for other kernels.
  align::LaneStats lane_stats;
  /// Shards that actually ran concurrently for this batch (the resolved J).
  int shard_parallelism = 1;
  /// Measured real seconds of the whole batch (dispatch + reconcile) — the
  /// number the executor is supposed to shrink; compare against
  /// total_time_s() (serial model) and time_parallel_s() (ideal model).
  double wall_s = 0.0;
  /// Measured real seconds of each shard's align_batch (including its queue
  /// wait when J < K serializes dispatch) — the repro's answer to the
  /// paper's load-balance table, next to ShardPlan::imbalance()'s prediction.
  std::vector<double> shard_wall_s;

  /// Serial composition (shards streamed one after another on this machine).
  [[nodiscard]] double total_time_s() const { return report.total_time_s(); }
  /// Per-runtime composition (each shard on its own machine): slowest shard.
  [[nodiscard]] double time_parallel_s() const;
  /// Measured load imbalance: max over shards of shard_wall_s / mean.
  /// 1.0 = perfectly balanced; 0.0 when unmeasured.
  [[nodiscard]] double imbalance_measured() const;
};

/// Outcome of one sharded align_batch_files() stream: the same accounting
/// contract as the plain session's, per sharded batch.
using ShardedFileStreamResult = core::BasicFileStreamResult<ShardedBatchResult>;

class ShardedAlignSession {
 public:
  /// The reference handle is cheap (shared immutable state). Query
  /// permutation (Section IV-B) is applied ONCE at this level with
  /// cfg.permute_seed; the per-shard sessions then see the same pre-permuted
  /// order, which keeps every shard's rank partition aligned.
  explicit ShardedAlignSession(ShardedReference ref,
                               core::SessionConfig cfg = {});
  ShardedAlignSession(ShardedReference ref, ShardedSessionConfig cfg);
  ~ShardedAlignSession();
  ShardedAlignSession(ShardedAlignSession&&) noexcept;
  ShardedAlignSession& operator=(ShardedAlignSession&&) noexcept;

  /// Align one in-memory batch against every shard; callable any number of
  /// times. Each shard session's software caches persist across batches.
  ShardedBatchResult align_batch(pgas::Runtime& rt,
                                 const std::vector<seq::SeqRecord>& reads,
                                 core::AlignmentSink& sink);
  /// In-place variant for callers that hand the batch over (the prefetched
  /// file stream): the one-shot permutation happens in place, no copy.
  ShardedBatchResult align_batch(pgas::Runtime& rt,
                                 std::vector<seq::SeqRecord>&& reads,
                                 core::AlignmentSink& sink);

  /// Align one SeqDB file batch. The file is read once (not once per shard)
  /// on the driving thread and then streamed through the in-memory path.
  ShardedBatchResult align_batch_file(pgas::Runtime& rt,
                                      const std::string& reads_seqdb,
                                      core::AlignmentSink& sink);

  /// Align a stream of reads-batch files (FASTQ or SeqDB) in file order,
  /// overlapping each batch's load with the previous batch's align work
  /// when opt.prefetch is set (double buffering). Emission is strictly
  /// batch-ordered and bit-identical to calling align_batch_file per file.
  /// `on_batch(index, result)` fires as each batch completes, so callers
  /// can report progress while the stream is still running.
  ShardedFileStreamResult align_batch_files(
      pgas::Runtime& rt, const std::vector<std::string>& paths,
      core::AlignmentSink& sink, const core::FileStreamOptions& opt = {},
      const std::function<void(std::size_t, const ShardedBatchResult&)>&
          on_batch = {});

  [[nodiscard]] const core::SessionConfig& config() const noexcept {
    return cfg_.session;
  }
  [[nodiscard]] const ShardedSessionConfig& sharded_config() const noexcept {
    return cfg_;
  }
  /// The J that align_batch on an `nranks`-rank runtime will use: the
  /// configured shard_parallelism resolved (0 = auto) and clamped to
  /// [1, num_shards()].
  [[nodiscard]] int effective_parallelism(int nranks) const;
  [[nodiscard]] const ShardedReference& reference() const noexcept {
    return ref_;
  }
  [[nodiscard]] int num_shards() const noexcept { return ref_.num_shards(); }
  [[nodiscard]] std::size_t batches_aligned() const noexcept {
    return batches_done_;
  }
  [[nodiscard]] const core::AlignSession& shard_session(int s) const {
    return *sessions_.at(static_cast<std::size_t>(s));
  }

  // --- cache persistence (warm start across sessions and processes) --------
  /// Snapshot every shard session's software caches into directory `dir`
  /// (created if needed): one self-validating file per shard
  /// (shard-0000.mcache, ...), composed exactly like the ShardedReference's
  /// per-shard indexes. Safe concurrently with an in-flight parallel batch
  /// (each cache shard is snapshotted under its lock). Throws
  /// cache::CacheSnapshotError on I/O failure.
  void save_caches(const pgas::Runtime& rt, const std::string& dir) const;
  /// Load a directory written by save_caches into the K shard sessions.
  /// Each file is validated against its own shard's reference fingerprint,
  /// so a snapshot of a different sharding (other K, other plan) or another
  /// collection is rejected with cache::CacheSnapshotError. Shards load in
  /// order; on a mid-sequence failure the earlier shards stay warm-loaded,
  /// which is harmless — cache contents affect seconds, never bytes. The
  /// per-batch counter baselines re-seed exactly as in
  /// core::AlignSession::load_caches.
  void load_caches(const pgas::Runtime& rt, const std::string& dir);

 private:
  ShardedBatchResult run_batch(pgas::Runtime& rt,
                               const std::vector<seq::SeqRecord>& reads,
                               core::AlignmentSink& sink);

  ShardedReference ref_;
  ShardedSessionConfig cfg_;
  /// One session per shard (AlignSession owns mutex-guarded caches, so the
  /// sessions live behind stable pointers). Their configs disable
  /// permutation — it already happened at this level.
  std::vector<std::unique_ptr<core::AlignSession>> sessions_;
  /// Persistent shard executor, created lazily on the first batch that
  /// resolves to J >= 2 and reused across batches.
  std::unique_ptr<exec::ThreadPool> pool_;
  /// Per-batch collection + reconcile buffers, reused across batches so the
  /// hot loop stops reallocating (defined in the .cpp).
  struct ReconcileScratch;
  std::unique_ptr<ReconcileScratch> scratch_;
  std::size_t batches_done_ = 0;
};

}  // namespace mera::shard
