// Partitioning a target collection into index shards.
//
// The paper's conclusion scenario is screening reads against a reference
// collection too large for one machine's distributed index ("GenBank-scale").
// The composition unit is a per-runtime IndexedReference shard; this planner
// decides which targets go into which shard so that no shard's index
// dominates build or lookup time.
//
// Two weight models are offered. kBases charges a target its sequence length
// — a proxy for target storage and fetch traffic. kCostModel charges the
// number of seeds the target feeds into the distributed index (L - k + 1 for
// length L; the fragmentation of Section IV-A keeps fragment seed sets
// disjoint, so this is exact), which is what index.build inserts and what
// lookups are served from — the Section IV-B quantity that actually scales a
// shard's cost. Assignment is greedy LPT (heaviest target to the lightest
// shard), which is deterministic and within 4/3 of the optimal makespan.
#pragma once

#include <cstdint>
#include <vector>

#include "seq/fasta.hpp"

namespace mera::shard {

enum class ShardWeight : std::uint8_t {
  kBases = 0,   ///< weight = target length
  kCostModel,   ///< weight = seeds contributed to the index (L - k + 1)
};

struct ShardPlanOptions {
  int shards = 1;  ///< clamped to [1, num_targets]
  ShardWeight weight = ShardWeight::kCostModel;
  int k = 51;  ///< seed length; only kCostModel weights depend on it
};

/// A partition of the input target indices into shards. Targets are referred
/// to by their position in the planned collection — the same value that
/// becomes the target's *global* id when the collection is built as a single
/// IndexedReference, which is what keeps sharded and monolithic output
/// comparable record for record.
struct ShardPlan {
  struct Shard {
    std::vector<std::uint32_t> targets;  ///< global target ids, ascending
    std::uint64_t weight = 0;            ///< summed target weights
  };
  std::vector<Shard> shards;

  [[nodiscard]] int num_shards() const noexcept {
    return static_cast<int>(shards.size());
  }
  [[nodiscard]] std::size_t num_targets() const noexcept;
  [[nodiscard]] std::uint64_t total_weight() const noexcept;
  [[nodiscard]] std::uint64_t max_weight() const noexcept;
  /// max shard weight / mean shard weight; 1.0 = perfectly balanced.
  [[nodiscard]] double imbalance() const noexcept;
};

/// Weight of one target under the given model (>= 1, so empty or shorter-
/// than-k targets still occupy a slot somewhere).
[[nodiscard]] std::uint64_t target_weight(const seq::SeqRecord& target,
                                          ShardWeight model, int k);

/// Deterministically partition `targets` into opt.shards balanced shards.
[[nodiscard]] ShardPlan plan_shards(const std::vector<seq::SeqRecord>& targets,
                                    const ShardPlanOptions& opt);

/// The trivial plan for pre-sharded input (one FASTA per shard): shard i gets
/// the contiguous global-id block [offsets[i], offsets[i+1]), with
/// shard_weights[i] as its recorded weight (so imbalance() reflects the
/// actual base counts of the given files, not a placeholder). An empty
/// shard_weights falls back to the target counts.
[[nodiscard]] ShardPlan contiguous_plan(
    const std::vector<std::uint32_t>& shard_sizes,
    const std::vector<std::uint64_t>& shard_weights = {});

}  // namespace mera::shard
