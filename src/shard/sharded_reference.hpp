// Composing per-runtime IndexedReference shards into one logical reference.
//
// core::IndexedReference is an immutable shared handle precisely so several
// of them can be composed: a ShardedReference owns K independently built
// shards — each a complete distributed index over a subset of the target
// collection — plus the global target-id mapping and the merged SAM header
// that make the K shards look like ONE reference to everything downstream.
//
// Shards model per-runtime indexes (the "GenBank-scale" conclusion scenario:
// a collection too large for one machine's aggregate memory is split across
// several runtimes). In this simulated-PGAS repo every shard is built on the
// same Runtime, one collective run per shard; what is exercised is the
// composition layer — id translation, header merging, per-shard build
// accounting — not multi-process placement.
//
// Global target ids are positions in the planned collection, i.e. exactly
// the ids a single IndexedReference over the whole collection would assign.
// ShardedAlignSession rewrites shard-local record ids through this mapping,
// which is what makes K-shard output comparable record-for-record with the
// monolithic equivalent.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/indexed_reference.hpp"
#include "core/sam_writer.hpp"
#include "shard/shard_planner.hpp"

namespace mera::shard {

namespace detail {
struct ShardedReferenceState;
}

class ShardedReference {
 public:
  /// Collective build of one IndexedReference per plan shard (shards are
  /// built one after another on `rt`). The plan must partition
  /// [0, targets.size()).
  [[nodiscard]] static ShardedReference build(
      pgas::Runtime& rt, const std::vector<seq::SeqRecord>& targets,
      const ShardPlan& plan, core::IndexConfig cfg = {});

  /// Auto-planned build: partition `targets` into `shards` balanced shards
  /// with plan_shards() (cost-model weights, k taken from cfg).
  [[nodiscard]] static ShardedReference build(
      pgas::Runtime& rt, const std::vector<seq::SeqRecord>& targets,
      int shards, core::IndexConfig cfg = {});

  /// Pre-sharded input: one FASTA file per shard. Global target ids follow
  /// file order (file 0's records first), matching a single reference built
  /// over the concatenation of the files.
  [[nodiscard]] static ShardedReference build_from_fastas(
      pgas::Runtime& rt, const std::vector<std::string>& fastas,
      core::IndexConfig cfg = {});

  [[nodiscard]] int num_shards() const noexcept;
  [[nodiscard]] const core::IndexedReference& shard(int s) const;
  [[nodiscard]] const ShardPlan& plan() const noexcept;
  [[nodiscard]] const core::IndexConfig& config() const noexcept;
  [[nodiscard]] const pgas::Topology& topology() const noexcept;

  // --- global target-id mapping --------------------------------------------
  [[nodiscard]] std::uint32_t num_targets() const noexcept;
  /// Shard-local id -> global id.
  [[nodiscard]] std::uint32_t to_global(int s, std::uint32_t local_id) const;
  /// Global id -> (shard, shard-local id).
  [[nodiscard]] std::pair<int, std::uint32_t> to_shard(
      std::uint32_t global_id) const;
  [[nodiscard]] const std::string& target_name(std::uint32_t global_id) const;
  [[nodiscard]] std::size_t target_length(std::uint32_t global_id) const;

  /// Merged @SQ catalog in global-id order — byte-identical header input to
  /// what the monolithic reference would produce. Feed to SamStreamSink /
  /// SamFileSink (catalog constructors) or core::write_sam_header.
  [[nodiscard]] const std::vector<core::SamTarget>& sam_targets() const noexcept;

  // --- build diagnostics ----------------------------------------------------
  /// All shards' build phases appended in shard order (serial composition).
  [[nodiscard]] const pgas::PhaseReport& build_report() const noexcept;
  /// Build time if every shard ran on its own runtime: max over shards.
  [[nodiscard]] double build_time_parallel_s() const;
  /// Build time as actually executed here: sum over shards.
  [[nodiscard]] double build_time_serial_s() const;
  /// Summed index entries over all shards.
  [[nodiscard]] std::size_t index_entries() const;
  [[nodiscard]] bool exact_match_marked() const noexcept;

 private:
  explicit ShardedReference(
      std::shared_ptr<const detail::ShardedReferenceState> st);
  std::shared_ptr<const detail::ShardedReferenceState> state_;
};

}  // namespace mera::shard
