#include "shard/sharded_session.hpp"

#include <algorithm>
#include <tuple>
#include <utility>

#include "core/load_balance.hpp"
#include "seq/seqdb.hpp"

namespace mera::shard {

namespace {

/// Internal sink: keeps every record a shard emits, per rank, in emission
/// order, tagged with the read it belongs to. Ranks emit a read's records
/// consecutively and reads in partition order, so each per-rank buffer is
/// already grouped and ordered by read — reconciliation walks the buffers
/// with one cursor per shard.
class CollectorSink final : public core::AlignmentSink {
 public:
  struct Entry {
    const seq::SeqRecord* read;
    core::AlignmentRecord rec;
  };

  explicit CollectorSink(int nranks)
      : per_rank_(static_cast<std::size_t>(nranks)) {}

  void emit(int rank, const seq::SeqRecord& read,
            core::AlignmentRecord&& rec) override {
    per_rank_[static_cast<std::size_t>(rank)].push_back(
        Entry{&read, std::move(rec)});
  }

  std::vector<std::vector<Entry>>& per_rank() { return per_rank_; }

 private:
  std::vector<std::vector<Entry>> per_rank_;
};

/// The deterministic global order of one read's reconciled candidates: best
/// score first, then global target id, then target position; the remaining
/// fields make the order total so ties cannot depend on shard arrival order.
bool better_hit(const core::AlignmentRecord& a, const core::AlignmentRecord& b) {
  return std::tie(b.score, a.target_id, a.t_begin, a.reverse, a.q_begin,
                  a.q_end, a.t_end, a.cigar, a.mismatches, a.exact) <
         std::tie(a.score, b.target_id, b.t_begin, b.reverse, b.q_begin,
                  b.q_end, b.t_end, b.cigar, b.mismatches, b.exact);
}

}  // namespace

double ShardedBatchResult::time_parallel_s() const {
  double t = 0.0;
  for (const core::BatchResult& b : per_shard)
    t = std::max(t, b.total_time_s());
  return t;
}

ShardedAlignSession::ShardedAlignSession(ShardedReference ref,
                                         core::SessionConfig cfg)
    : ref_(std::move(ref)), cfg_(std::move(cfg)) {
  core::SessionConfig per_shard = cfg_;
  per_shard.permute_queries = false;  // applied once, at this level
  sessions_.reserve(static_cast<std::size_t>(ref_.num_shards()));
  for (int s = 0; s < ref_.num_shards(); ++s)
    sessions_.push_back(
        std::make_unique<core::AlignSession>(ref_.shard(s), per_shard));
}

ShardedBatchResult ShardedAlignSession::align_batch(
    pgas::Runtime& rt, const std::vector<seq::SeqRecord>& reads,
    core::AlignmentSink& sink) {
  if (!cfg_.permute_queries) return run_batch(rt, reads, sink);
  std::vector<seq::SeqRecord> permuted = reads;
  core::permute_queries(permuted, cfg_.permute_seed);
  return run_batch(rt, permuted, sink);
}

ShardedBatchResult ShardedAlignSession::align_batch_file(
    pgas::Runtime& rt, const std::string& reads_seqdb,
    core::AlignmentSink& sink) {
  // One read of the file for all K shards. Permuting the loaded records with
  // the session seed is the same Fisher-Yates the single-reference file path
  // applies to record indices, so rank assignments match it exactly.
  seq::SeqDBReader db(reads_seqdb);
  std::vector<seq::SeqRecord> reads;
  reads.reserve(db.size());
  for (std::size_t i = 0; i < db.size(); ++i) reads.push_back(db.read(i));
  if (cfg_.permute_queries) core::permute_queries(reads, cfg_.permute_seed);
  return run_batch(rt, reads, sink);
}

ShardedBatchResult ShardedAlignSession::run_batch(
    pgas::Runtime& rt, const std::vector<seq::SeqRecord>& reads,
    core::AlignmentSink& sink) {
  const int nshards = ref_.num_shards();
  const int nranks = rt.nranks();

  // ---- 1+2: every shard aligns the full batch; ids go global --------------
  ShardedBatchResult res;
  res.per_shard.reserve(static_cast<std::size_t>(nshards));
  std::vector<CollectorSink> collected;
  collected.reserve(static_cast<std::size_t>(nshards));
  for (int s = 0; s < nshards; ++s) {
    CollectorSink& coll = collected.emplace_back(nranks);
    res.per_shard.push_back(sessions_[static_cast<std::size_t>(s)]->align_batch(
        rt, reads, coll));
    for (auto& rank_entries : coll.per_rank())
      for (CollectorSink::Entry& e : rank_entries)
        e.rec.target_id = ref_.to_global(s, e.rec.target_id);
  }

  // ---- aggregate stats + report -------------------------------------------
  for (const core::BatchResult& b : res.per_shard) {
    res.report.append(b.report);
    res.stats += b.stats;
  }
  // Read-scoped counters must count each read once, not once per shard.
  res.stats.reads_processed =
      res.per_shard.empty() ? 0 : res.per_shard.front().stats.reads_processed;
  res.stats.reads_aligned = 0;

  // ---- 3+4: reconcile per (rank, read) and emit ---------------------------
  std::vector<std::size_t> cursor(static_cast<std::size_t>(nshards), 0);
  std::vector<core::AlignmentRecord> merged;
  const std::size_t n = reads.size();
  for (int r = 0; r < nranks; ++r) {
    const auto rr = static_cast<std::size_t>(r);
    const std::size_t lo = n * rr / static_cast<std::size_t>(nranks);
    const std::size_t hi = n * (rr + 1) / static_cast<std::size_t>(nranks);
    for (auto& c : cursor) c = 0;
    for (std::size_t i = lo; i < hi; ++i) {
      const seq::SeqRecord& read = reads[i];
      merged.clear();
      for (int s = 0; s < nshards; ++s) {
        auto& entries = collected[static_cast<std::size_t>(s)].per_rank()[rr];
        auto& c = cursor[static_cast<std::size_t>(s)];
        while (c < entries.size() && entries[c].read == &read)
          merged.push_back(std::move(entries[c++].rec));
      }
      if (!merged.empty()) ++res.stats.reads_aligned;
      std::sort(merged.begin(), merged.end(), better_hit);
      for (core::AlignmentRecord& rec : merged)
        sink.emit(r, read, std::move(rec));
    }
  }
  sink.batch_end();
  ++batches_done_;
  return res;
}

}  // namespace mera::shard
