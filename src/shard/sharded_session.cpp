#include "shard/sharded_session.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <tuple>
#include <utility>

#include "cache/cache_snapshot.hpp"
#include "core/file_stream.hpp"
#include "core/load_balance.hpp"
#include "exec/task_group.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace mera::shard {

namespace {

using core::detail::seconds_since;

/// The deterministic global order of one read's reconciled candidates: best
/// score first, then global target id, then target position; the remaining
/// fields make the order total so ties cannot depend on shard arrival order.
bool better_hit(const core::AlignmentRecord& a, const core::AlignmentRecord& b) {
  return std::tie(b.score, a.target_id, a.t_begin, a.reverse, a.q_begin,
                  a.q_end, a.t_end, a.cigar, a.mismatches, a.exact) <
         std::tie(a.score, b.target_id, b.t_begin, b.reverse, b.q_begin,
                  b.q_end, b.t_end, b.cigar, b.mismatches, b.exact);
}

}  // namespace

/// Internal sink: keeps every record a shard emits, per rank, in emission
/// order, tagged with the read it belongs to. Ranks emit a read's records
/// consecutively and reads in partition order, so each per-rank buffer is
/// already grouped and ordered by read — reconciliation walks the buffers
/// with one cursor per shard. Each shard owns exactly one collector, so
/// concurrent shards never share one (bit-identical output at any J).
class ShardCollectorSink final : public core::AlignmentSink {
 public:
  struct Entry {
    const seq::SeqRecord* read;
    core::AlignmentRecord rec;
  };

  void emit(int rank, const seq::SeqRecord& read,
            core::AlignmentRecord&& rec) override {
    per_rank_[static_cast<std::size_t>(rank)].push_back(
        Entry{&read, std::move(rec)});
  }

  /// Size for `nranks` and empty the buffers, keeping their capacity — a
  /// session reuses its collectors across batches.
  void reset(int nranks) {
    per_rank_.resize(static_cast<std::size_t>(nranks));
    for (auto& entries : per_rank_) entries.clear();
  }

  std::vector<std::vector<Entry>>& per_rank() { return per_rank_; }

 private:
  std::vector<std::vector<Entry>> per_rank_;
};

/// Per-batch working set, reused batch to batch so the reconcile hot loop
/// stops paying K*nranks buffer allocations plus a merge vector per read.
struct ShardedAlignSession::ReconcileScratch {
  std::vector<ShardCollectorSink> collected;  ///< one per shard
  std::vector<std::size_t> cursor;            ///< one per shard
  std::vector<core::AlignmentRecord> merged;  ///< one read's candidates
};

double ShardedBatchResult::time_parallel_s() const {
  double t = 0.0;
  for (const core::BatchResult& b : per_shard)
    t = std::max(t, b.total_time_s());
  return t;
}

double ShardedBatchResult::imbalance_measured() const {
  if (shard_wall_s.empty()) return 0.0;
  double sum = 0.0, max = 0.0;
  for (const double w : shard_wall_s) {
    sum += w;
    max = std::max(max, w);
  }
  const double mean = sum / static_cast<double>(shard_wall_s.size());
  return mean > 0.0 ? max / mean : 0.0;
}

ShardedAlignSession::ShardedAlignSession(ShardedReference ref,
                                         core::SessionConfig cfg)
    : ShardedAlignSession(std::move(ref),
                          ShardedSessionConfig{std::move(cfg), 0}) {}

ShardedAlignSession::ShardedAlignSession(ShardedReference ref,
                                         ShardedSessionConfig cfg)
    : ref_(std::move(ref)),
      cfg_(std::move(cfg)),
      scratch_(std::make_unique<ReconcileScratch>()) {
  core::SessionConfig per_shard = cfg_.session;
  per_shard.permute_queries = false;  // applied once, at this level
  sessions_.reserve(static_cast<std::size_t>(ref_.num_shards()));
  for (int s = 0; s < ref_.num_shards(); ++s)
    sessions_.push_back(
        std::make_unique<core::AlignSession>(ref_.shard(s), per_shard));
  scratch_->collected.resize(static_cast<std::size_t>(ref_.num_shards()));
  scratch_->cursor.resize(static_cast<std::size_t>(ref_.num_shards()));
}

ShardedAlignSession::~ShardedAlignSession() = default;
ShardedAlignSession::ShardedAlignSession(ShardedAlignSession&&) noexcept =
    default;
ShardedAlignSession& ShardedAlignSession::operator=(
    ShardedAlignSession&&) noexcept = default;

void ShardedAlignSession::save_caches(const pgas::Runtime& rt,
                                      const std::string& dir) const {
  // The file-level writer creates each snapshot's parent directory (== dir)
  // and maps failures to CacheSnapshotError.
  for (int s = 0; s < num_shards(); ++s)
    sessions_[static_cast<std::size_t>(s)]->save_caches(
        rt, cache::shard_snapshot_path(dir, s));
}

void ShardedAlignSession::load_caches(const pgas::Runtime& rt,
                                      const std::string& dir) {
  // A snapshot directory of a different K would either miss a shard file or
  // carry a stray one; both are composition mismatches worth naming before
  // the per-shard fingerprint checks run.
  for (int s = 0; s < num_shards(); ++s) {
    const std::string path = cache::shard_snapshot_path(dir, s);
    if (!std::filesystem::exists(path))
      throw cache::CacheSnapshotError(
          "cache snapshot: " + path + " is missing — " + dir +
          " does not hold a snapshot of this " + std::to_string(num_shards()) +
          "-shard session");
  }
  if (std::filesystem::exists(cache::shard_snapshot_path(dir, num_shards())))
    throw cache::CacheSnapshotError(
        "cache snapshot: " + dir + " holds more than " +
        std::to_string(num_shards()) +
        " shard files — it was saved by a different sharding");
  for (int s = 0; s < num_shards(); ++s)
    sessions_[static_cast<std::size_t>(s)]->load_caches(
        rt, cache::shard_snapshot_path(dir, s));
}

int ShardedAlignSession::effective_parallelism(int nranks) const {
  const int k = ref_.num_shards();
  int j = cfg_.shard_parallelism > 0
              ? cfg_.shard_parallelism
              : exec::ThreadPool::default_parallelism(k, nranks);
  // A shared executor caps J at its worker count: the pool's size is the
  // process-wide budget, and asking a J-wide TaskGroup of blocking shard
  // tasks for more workers than exist would deadlock nothing but also gain
  // nothing.
  if (cfg_.pool)
    j = std::min(j, static_cast<int>(cfg_.pool->size()));
  return std::clamp(j, 1, k);
}

ShardedBatchResult ShardedAlignSession::align_batch(
    pgas::Runtime& rt, const std::vector<seq::SeqRecord>& reads,
    core::AlignmentSink& sink) {
  if (!cfg_.session.permute_queries) return run_batch(rt, reads, sink);
  std::vector<seq::SeqRecord> permuted = reads;
  core::permute_queries(permuted, cfg_.session.permute_seed);
  return run_batch(rt, permuted, sink);
}

ShardedBatchResult ShardedAlignSession::align_batch(
    pgas::Runtime& rt, std::vector<seq::SeqRecord>&& reads,
    core::AlignmentSink& sink) {
  if (cfg_.session.permute_queries)
    core::permute_queries(reads, cfg_.session.permute_seed);
  return run_batch(rt, reads, sink);
}

ShardedBatchResult ShardedAlignSession::align_batch_file(
    pgas::Runtime& rt, const std::string& reads_seqdb,
    core::AlignmentSink& sink) {
  // One read of the file for all K shards. Permuting the loaded records with
  // the session seed is the same Fisher-Yates the single-reference file path
  // applies to record indices, so rank assignments match it exactly.
  return align_batch(rt, core::load_read_batch(reads_seqdb), sink);
}

ShardedFileStreamResult ShardedAlignSession::align_batch_files(
    pgas::Runtime& rt, const std::vector<std::string>& paths,
    core::AlignmentSink& sink, const core::FileStreamOptions& opt,
    const std::function<void(std::size_t, const ShardedBatchResult&)>&
        on_batch) {
  return core::detail::stream_file_batches<ShardedFileStreamResult>(
      paths, opt,
      [&](std::vector<seq::SeqRecord>&& records) {
        return align_batch(rt, std::move(records), sink);
      },
      [&](std::size_t i, const ShardedBatchResult& batch) {
        if (on_batch) on_batch(i, batch);
      });
}

ShardedBatchResult ShardedAlignSession::run_batch(
    pgas::Runtime& rt, const std::vector<seq::SeqRecord>& reads,
    core::AlignmentSink& sink) {
  const obs::Span batch_span("shard.batch", "shard");
  const auto wall0 = obs::wall_now();
  const int nshards = ref_.num_shards();
  const int nranks = rt.nranks();
  const int J = effective_parallelism(nranks);

  std::vector<ShardCollectorSink>& collected = scratch_->collected;
  for (ShardCollectorSink& coll : collected) coll.reset(nranks);

  // ---- 1+2: every shard aligns the full batch; ids go global --------------
  // Each shard writes into its own collector and the per-shard results land
  // in fixed slots, so concurrent and serial dispatch produce identical
  // state by the time reconciliation starts.
  ShardedBatchResult res;
  res.shard_parallelism = J;
  res.per_shard.resize(static_cast<std::size_t>(nshards));
  res.shard_wall_s.assign(static_cast<std::size_t>(nshards), 0.0);
  auto run_shard = [&](int s, pgas::Runtime& shard_rt) {
    const auto ss = static_cast<std::size_t>(s);
    char span_name[32];
    std::snprintf(span_name, sizeof span_name, "shard %d align", s);
    const obs::Span span(span_name, "shard");
    const obs::StopWatch sw;
    ShardCollectorSink& coll = collected[ss];
    res.per_shard[ss] = sessions_[ss]->align_batch(shard_rt, reads, coll);
    for (auto& rank_entries : coll.per_rank())
      for (ShardCollectorSink::Entry& e : rank_entries)
        e.rec.target_id = ref_.to_global(s, e.rec.target_id);
    res.shard_wall_s[ss] = sw.elapsed_s();
  };
  if (J > 1) {
    // Concurrent runtimes must not share barriers or phase accounting, so
    // every shard gets a runtime of its own, cloned from the caller's
    // topology and cost model. Any shard failure (e.g. topology mismatch)
    // propagates after all shards settle — earliest shard wins, like the
    // serial loop.
    exec::ThreadPool* pool = cfg_.pool;
    if (!pool) {
      if (!pool_ || pool_->size() < J)
        pool_ = std::make_unique<exec::ThreadPool>(J);
      pool = pool_.get();
    }
    std::vector<std::unique_ptr<pgas::Runtime>> runtimes(
        static_cast<std::size_t>(nshards));
    exec::TaskGroup group(*pool);
    for (int s = 0; s < nshards; ++s) {
      auto& shard_rt = runtimes[static_cast<std::size_t>(s)];
      shard_rt =
          std::make_unique<pgas::Runtime>(rt.topo(), rt.cost_model());
      group.run([&run_shard, &shard_rt, s] { run_shard(s, *shard_rt); });
    }
    group.wait();
  } else {
    for (int s = 0; s < nshards; ++s) run_shard(s, rt);
  }

  // ---- aggregate stats + report -------------------------------------------
  for (const core::BatchResult& b : res.per_shard) {
    res.report.append(b.report);
    res.stats += b.stats;
    res.lane_stats += b.lane_stats;
  }
  // Read-scoped counters must count each read once, not once per shard.
  res.stats.reads_processed =
      res.per_shard.empty() ? 0 : res.per_shard.front().stats.reads_processed;
  res.stats.reads_aligned = 0;

  // ---- 3+4: reconcile per (rank, read) and emit ---------------------------
  std::vector<std::size_t>& cursor = scratch_->cursor;
  std::vector<core::AlignmentRecord>& merged = scratch_->merged;
  const std::size_t n = reads.size();
  for (int r = 0; r < nranks; ++r) {
    const auto rr = static_cast<std::size_t>(r);
    const std::size_t lo = n * rr / static_cast<std::size_t>(nranks);
    const std::size_t hi = n * (rr + 1) / static_cast<std::size_t>(nranks);
    for (auto& c : cursor) c = 0;
    for (std::size_t i = lo; i < hi; ++i) {
      const seq::SeqRecord& read = reads[i];
      merged.clear();
      for (int s = 0; s < nshards; ++s) {
        auto& entries = collected[static_cast<std::size_t>(s)].per_rank()[rr];
        auto& c = cursor[static_cast<std::size_t>(s)];
        while (c < entries.size() && entries[c].read == &read)
          merged.push_back(std::move(entries[c++].rec));
      }
      if (!merged.empty()) ++res.stats.reads_aligned;
      // One shard has nothing to merge: its emission order (grouped per
      // rank, per read) is already the stream — skip the per-read reorder.
      if (nshards > 1) std::sort(merged.begin(), merged.end(), better_hit);
      for (core::AlignmentRecord& rec : merged)
        sink.emit(r, read, std::move(rec));
    }
  }
  sink.batch_end();
  ++batches_done_;
  res.wall_s = seconds_since(wall0);

  // ---- bridge the load-balance picture into the metrics registry ----------
  auto& reg = obs::MetricsRegistry::global();
  for (int s = 0; s < nshards; ++s)
    reg.gauge("mera_shard_wall_seconds", {{"shard", std::to_string(s)}},
              "Measured wall seconds of the shard's last batch")
        .set(res.shard_wall_s[static_cast<std::size_t>(s)]);
  reg.gauge("mera_shard_imbalance_measured", {},
            "max/mean of measured per-shard batch walls (1.0 = balanced)")
      .set(res.imbalance_measured());
  reg.gauge("mera_shard_imbalance_predicted", {},
            "max/mean of planned shard weights (ShardPlan::imbalance)")
      .set(ref_.plan().imbalance());
  reg.gauge("mera_shard_parallelism", {},
            "Shards aligned concurrently in the last batch (resolved J)")
      .set(static_cast<double>(J));
  return res;
}

}  // namespace mera::shard
