// UPC-like SPMD runtime.
//
// Runtime::run(body) launches `nranks` threads, each bound to a Rank context.
// All ranks share one address space (this is one process), so "one-sided"
// communication is a plain memory copy — but every access to data owned by a
// *different* rank must be announced via Rank::get()/put()/charge_*() so that
// traffic is tallied and the LogGP cost model can convert it into simulated
// communication time. Ownership is a protocol, not an enforcement: the data
// structures built on top (distributed hash table, target store, caches)
// route every remote touch through these calls.
//
// Synchronization primitives mirror UPC: barrier(), global atomics
// (GlobalCounter ~ upc atomic fetchadd domain), and collective phase()
// boundaries used for time accounting.
#pragma once

#include <atomic>
#include <barrier>
#include <cstring>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "pgas/cost_model.hpp"
#include "pgas/phase_timer.hpp"
#include "pgas/topology.hpp"

namespace mera::pgas {

class Runtime;

/// A global atomic counter with an owning rank; fetch_add from another rank
/// pays the remote-atomic cost (cf. upc atomic fetchadd used for the
/// local-shared stack pointers in Section III-A).
class GlobalCounter {
 public:
  GlobalCounter() : GlobalCounter(0, 0) {}
  explicit GlobalCounter(int owner, std::uint64_t init = 0)
      : owner_(owner), value_(init) {}

  /// Re-home the counter (single-threaded setup code only).
  void reset(int owner, std::uint64_t v = 0) noexcept {
    owner_ = owner;
    value_.store(v, std::memory_order_relaxed);
  }

  [[nodiscard]] int owner() const noexcept { return owner_; }
  [[nodiscard]] std::uint64_t load_unsync() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void store_unsync(std::uint64_t v) noexcept {
    value_.store(v, std::memory_order_relaxed);
  }

 private:
  friend class Rank;
  int owner_;
  std::atomic<std::uint64_t> value_;
};

/// Per-thread SPMD execution context. Not copyable; passed by reference into
/// the rank body.
class Rank {
 public:
  Rank(Runtime& rt, int id) : rt_(&rt), id_(id) {}
  Rank(const Rank&) = delete;
  Rank& operator=(const Rank&) = delete;

  [[nodiscard]] int id() const noexcept { return id_; }
  [[nodiscard]] int node() const noexcept;
  [[nodiscard]] int nranks() const noexcept;
  [[nodiscard]] const Topology& topo() const noexcept;
  [[nodiscard]] Runtime& runtime() noexcept { return *rt_; }
  [[nodiscard]] const CostModel& cost_model() const noexcept;

  /// Collective barrier across all ranks.
  void barrier();

  /// Collective: close the current accounting phase and open a new one.
  /// Includes a barrier (phases are bulk-synchronous).
  void phase(std::string_view name);

  // --- one-sided operations -------------------------------------------------

  /// Account one one-sided message of `bytes` against data owned by `owner`.
  void charge_access(int owner, std::size_t bytes);

  /// Account an extra modeled delay (e.g. I/O service time) without traffic.
  void charge_time(double seconds);

  /// One-sided get: copy `n` elements owned by rank `owner` into local `dst`.
  template <typename T>
  void get(int owner, const T* src, T* dst, std::size_t n) {
    charge_access(owner, n * sizeof(T));
    std::memcpy(dst, src, n * sizeof(T));
  }

  /// One-sided put: copy `n` local elements into memory owned by `owner`.
  /// The destination must be quiescent or disjoint per writer (the DHT's
  /// aggregating store reserves disjoint slots via atomic_fetch_add first).
  template <typename T>
  void put(int owner, const T* src, T* dst, std::size_t n) {
    charge_access(owner, n * sizeof(T));
    std::memcpy(dst, src, n * sizeof(T));
  }

  /// Global atomic fetch-and-add (cf. atomic_fetchadd() in the paper).
  std::uint64_t atomic_fetch_add(GlobalCounter& c, std::uint64_t delta);

  // --- accounting -----------------------------------------------------------

  [[nodiscard]] const CommStats& stats() const noexcept { return stats_; }
  /// CPU seconds consumed by this rank since it started.
  [[nodiscard]] double cpu_seconds() const noexcept {
    return thread_cpu_seconds() - cpu_origin_;
  }

 private:
  friend class Runtime;
  void begin_execution();
  void close_phase();

  Runtime* rt_;
  int id_;
  CommStats stats_;
  CommStats phase_stats_origin_;
  double cpu_origin_ = 0.0;
  double phase_cpu_origin_ = 0.0;
  /// Trace-span bookkeeping: sampled once per run at begin_execution so a
  /// mid-run enable()/disable() can't produce half-open spans. Phase CPU
  /// accounting itself never depends on the tracer.
  bool tracing_ = false;
  std::uint64_t phase_wall_origin_us_ = 0;
  std::string current_phase_ = "startup";
  std::vector<PhaseSample> samples_;
};

/// The simulated PGAS machine: topology + cost model + collective machinery.
class Runtime {
 public:
  Runtime(Topology topo, CostModel model = CostModel::cray_xc30_like());

  [[nodiscard]] const Topology& topo() const noexcept { return topo_; }
  [[nodiscard]] const CostModel& cost_model() const noexcept { return model_; }
  [[nodiscard]] int nranks() const noexcept { return topo_.nranks(); }

  /// Launch the SPMD body on every rank and join. Any exception thrown by a
  /// rank is rethrown here (first one wins). May be called multiple times;
  /// each run() starts fresh accounting.
  void run(const std::function<void(Rank&)>& body);

  /// Phase report of the most recent run().
  [[nodiscard]] const PhaseReport& report() const noexcept { return report_; }

 private:
  friend class Rank;

  Topology topo_;
  CostModel model_;
  std::barrier<> barrier_;
  std::vector<std::vector<PhaseSample>> samples_;  // per rank
  PhaseReport report_;
  std::mutex error_mutex_;
  std::exception_ptr first_error_;
};

/// Convenience wrapper: build a Runtime, run the body, return the report.
PhaseReport spmd(int nranks, int ppn, const std::function<void(Rank&)>& body,
                 CostModel model = CostModel::cray_xc30_like());

}  // namespace mera::pgas
