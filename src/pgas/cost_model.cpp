#include "pgas/cost_model.hpp"

// CostModel and CommStats are header-only; this TU exists so the module has a
// stable object file for the archive and a place for future out-of-line code.
namespace mera::pgas {
static_assert(sizeof(CommStats) > 0);
}  // namespace mera::pgas
