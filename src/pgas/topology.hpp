// Rank/node topology for the simulated PGAS machine.
//
// The paper runs on a Cray XC30 with 24 cores (UPC threads) per node; the
// node boundary matters because (a) off-node one-sided ops are much more
// expensive than same-node ones and (b) the software caches of Section III-B
// are *node-level* resources shared by the ppn ranks of a node.
#pragma once

#include <cassert>
#include <stdexcept>

namespace mera::pgas {

/// Maps ranks onto simulated nodes: ranks [0, ppn) are node 0, etc.
class Topology {
 public:
  Topology(int nranks, int ranks_per_node)
      : nranks_(nranks), ppn_(ranks_per_node) {
    if (nranks < 1) throw std::invalid_argument("Topology: nranks must be >= 1");
    if (ranks_per_node < 1)
      throw std::invalid_argument("Topology: ranks_per_node must be >= 1");
  }

  [[nodiscard]] int nranks() const noexcept { return nranks_; }
  [[nodiscard]] int ppn() const noexcept { return ppn_; }
  [[nodiscard]] int nnodes() const noexcept {
    return (nranks_ + ppn_ - 1) / ppn_;
  }

  [[nodiscard]] int node_of(int rank) const noexcept {
    assert(rank >= 0 && rank < nranks_);
    return rank / ppn_;
  }

  [[nodiscard]] bool same_node(int a, int b) const noexcept {
    return node_of(a) == node_of(b);
  }

  /// First rank of a node (the "node leader" owns node-level caches).
  [[nodiscard]] int leader_of_node(int node) const noexcept {
    return node * ppn_;
  }

 private:
  int nranks_;
  int ppn_;
};

}  // namespace mera::pgas
