// Per-phase, per-rank time accounting.
//
// An SPMD program is split into barrier-delimited phases ("io", "index
// construction", "alignment", ...). For each phase every rank records its
// *compute* time (thread CPU time — immune to oversubscription of the single
// physical core) and its *communication* time (modeled by CostModel). The
// simulated parallel runtime of a phase is max over ranks of (cpu + comm),
// and the end-to-end time is the sum over phases — exactly how a
// bulk-synchronous execution would unfold on a real machine.
#pragma once

#include <ctime>
#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "pgas/cost_model.hpp"

namespace mera::pgas {

/// CPU time consumed by the calling thread, in seconds.
[[nodiscard]] inline double thread_cpu_seconds() noexcept {
  timespec ts{};
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) + 1e-9 * static_cast<double>(ts.tv_nsec);
}

/// One rank's record for one phase.
struct PhaseSample {
  std::string name;
  double cpu_s = 0.0;
  CommStats comm;  ///< traffic issued during the phase (comm.comm_time_s = modeled time)
};

/// Aggregated view of one phase across all ranks.
struct PhaseEntry {
  std::string name;
  std::vector<double> cpu_s;   ///< per rank
  std::vector<double> comm_s;  ///< per rank, modeled
  CommStats traffic;           ///< summed over ranks

  /// Simulated parallel time of the phase: slowest rank's cpu + comm.
  [[nodiscard]] double time_s() const;
  [[nodiscard]] double cpu_max() const;
  [[nodiscard]] double cpu_min() const;
  [[nodiscard]] double cpu_avg() const;
  [[nodiscard]] double comm_max() const;
  [[nodiscard]] double total_max() const;  ///< max_r (cpu_r + comm_r)
  [[nodiscard]] double total_min() const;
  [[nodiscard]] double total_avg() const;
};

/// Full report of a Runtime::run() execution.
struct PhaseReport {
  std::vector<PhaseEntry> phases;

  /// Sum of per-phase simulated times (bulk-synchronous end-to-end time).
  [[nodiscard]] double total_time_s() const;
  /// Sum of the matching phases' times; empty `names` means all.
  [[nodiscard]] double time_of(std::string_view name) const;
  [[nodiscard]] const PhaseEntry* find(std::string_view name) const;
  [[nodiscard]] CommStats total_traffic() const;

  /// Append another run's phases after this one's, as if the two executions
  /// had happened back to back (used to stitch an index-build report and a
  /// per-batch aligning report into one end-to-end view).
  void append(const PhaseReport& other);

  void print(std::ostream& os) const;
};

/// Builds a PhaseReport out of per-rank sample streams (all ranks must have
/// recorded the same phase sequence; names are taken from rank 0).
[[nodiscard]] PhaseReport merge_phase_samples(
    const std::vector<std::vector<PhaseSample>>& per_rank);

/// Bridge a report into the global metrics registry: per-phase CPU and
/// modeled-communication seconds accumulate into
/// `mera_phase_cpu_seconds_total{phase=...}` and
/// `mera_phase_comm_seconds_total{phase=...}`. Called once per batch/run by
/// the sessions, so registry lookups stay off the per-read path.
/// `extra_labels` (ordered (key, value) pairs, appended after `phase`) lets
/// a multi-tenant host split the same series per client — the daemon passes
/// `{{"tenant", name}}` so fairness is observable per stream.
void add_to_metrics(const PhaseReport& report,
                    const std::vector<std::pair<std::string, std::string>>&
                        extra_labels = {});

}  // namespace mera::pgas
