// LogGP-style communication cost model.
//
// The physical container has a single core, so parallel performance cannot be
// observed as wall-clock time. Instead each rank *accounts* every one-sided
// operation it issues (message count, bytes, atomicity, on/off node) and this
// model converts the tally into seconds the way an interconnect would:
// time = latency + bytes / bandwidth, with remote atomics paying an extra
// round-trip. Compute time is measured separately per rank via
// CLOCK_THREAD_CPUTIME_ID (valid even when threads are oversubscribed onto
// one core). See DESIGN.md "Substitutions".
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>

namespace mera::pgas {

struct CostModel {
  // Same-node remote rank (shared-memory transport).
  double node_latency_s = 0.25e-6;
  double node_bandwidth_Bps = 12.0e9;
  // Off-node (network transport). Defaults loosely follow Cray Aries
  // small-message latency (~1.3 us) and per-link bandwidth.
  double net_latency_s = 1.6e-6;
  double net_bandwidth_Bps = 7.0e9;
  // Extra time for a remote atomic (fetch-and-add needs a round trip).
  double atomic_extra_s = 1.0e-6;

  /// Modeled time of one one-sided transfer of `bytes` bytes.
  [[nodiscard]] double transfer_time(bool off_node, std::size_t bytes) const {
    if (off_node)
      return net_latency_s + static_cast<double>(bytes) / net_bandwidth_Bps;
    return node_latency_s + static_cast<double>(bytes) / node_bandwidth_Bps;
  }

  /// Modeled time of one global atomic op against rank `off_node?remote:local`.
  [[nodiscard]] double atomic_time(bool off_node) const {
    return transfer_time(off_node, 8) + (off_node ? atomic_extra_s : 0.0);
  }

  /// Defaults above: Cray XC30 / Aries-like machine.
  static CostModel cray_xc30_like() { return CostModel{}; }

  /// All-zero model: pure-correctness tests that must not depend on timing.
  /// Infinite bandwidth makes bytes/bandwidth exactly 0.0.
  static CostModel zero() {
    CostModel m;
    m.node_latency_s = m.net_latency_s = m.atomic_extra_s = 0.0;
    m.node_bandwidth_Bps = m.net_bandwidth_Bps =
        std::numeric_limits<double>::infinity();
    return m;
  }
};

/// Per-rank tally of one-sided traffic plus the modeled time it cost.
struct CommStats {
  std::uint64_t local_ops = 0;    ///< ops against data the rank itself owns
  std::uint64_t node_msgs = 0;    ///< one-sided msgs to another rank, same node
  std::uint64_t node_bytes = 0;
  std::uint64_t net_msgs = 0;     ///< one-sided msgs off node
  std::uint64_t net_bytes = 0;
  std::uint64_t atomics = 0;      ///< global atomic ops (any distance)
  double comm_time_s = 0.0;       ///< modeled seconds for all of the above

  [[nodiscard]] std::uint64_t remote_msgs() const noexcept {
    return node_msgs + net_msgs;
  }
  [[nodiscard]] std::uint64_t remote_bytes() const noexcept {
    return node_bytes + net_bytes;
  }

  CommStats& operator+=(const CommStats& o) noexcept {
    local_ops += o.local_ops;
    node_msgs += o.node_msgs;
    node_bytes += o.node_bytes;
    net_msgs += o.net_msgs;
    net_bytes += o.net_bytes;
    atomics += o.atomics;
    comm_time_s += o.comm_time_s;
    return *this;
  }
  friend CommStats operator-(CommStats a, const CommStats& b) noexcept {
    a.local_ops -= b.local_ops;
    a.node_msgs -= b.node_msgs;
    a.node_bytes -= b.node_bytes;
    a.net_msgs -= b.net_msgs;
    a.net_bytes -= b.net_bytes;
    a.atomics -= b.atomics;
    a.comm_time_s -= b.comm_time_s;
    return a;
  }
};

}  // namespace mera::pgas
