#include "pgas/runtime.hpp"

#include <thread>

#include "obs/trace.hpp"

namespace mera::pgas {

// ---------------------------------------------------------------------------
// Rank
// ---------------------------------------------------------------------------

int Rank::node() const noexcept { return rt_->topo().node_of(id_); }
int Rank::nranks() const noexcept { return rt_->nranks(); }
const Topology& Rank::topo() const noexcept { return rt_->topo(); }
const CostModel& Rank::cost_model() const noexcept { return rt_->cost_model(); }

void Rank::barrier() { rt_->barrier_.arrive_and_wait(); }

void Rank::begin_execution() {
  cpu_origin_ = thread_cpu_seconds();
  phase_cpu_origin_ = cpu_origin_;
  phase_stats_origin_ = stats_;
  current_phase_ = "startup";
  samples_.clear();
  tracing_ = obs::Tracer::global().enabled();
  if (tracing_) phase_wall_origin_us_ = obs::Tracer::global().now_us();
}

void Rank::close_phase() {
  PhaseSample s;
  s.name = current_phase_;
  s.cpu_s = thread_cpu_seconds() - phase_cpu_origin_;
  s.comm = stats_ - phase_stats_origin_;
  samples_.push_back(std::move(s));
  if (tracing_) {
    // One bar per phase per rank: rank threads each own a tracer row, so the
    // timeline reads like the paper's per-phase breakdown, but in wall time.
    obs::Tracer& tracer = obs::Tracer::global();
    const std::uint64_t now = tracer.now_us();
    tracer.record("phase:" + current_phase_, "pgas", phase_wall_origin_us_,
                  now >= phase_wall_origin_us_ ? now - phase_wall_origin_us_
                                               : 0);
  }
}

void Rank::phase(std::string_view name) {
  close_phase();
  barrier();
  phase_cpu_origin_ = thread_cpu_seconds();
  phase_stats_origin_ = stats_;
  if (tracing_) phase_wall_origin_us_ = obs::Tracer::global().now_us();
  current_phase_.assign(name);
}

void Rank::charge_access(int owner, std::size_t bytes) {
  if (owner == id_) {
    ++stats_.local_ops;
    return;
  }
  const bool off_node = !rt_->topo().same_node(owner, id_);
  if (off_node) {
    ++stats_.net_msgs;
    stats_.net_bytes += bytes;
  } else {
    ++stats_.node_msgs;
    stats_.node_bytes += bytes;
  }
  stats_.comm_time_s += rt_->cost_model().transfer_time(off_node, bytes);
}

void Rank::charge_time(double seconds) { stats_.comm_time_s += seconds; }

std::uint64_t Rank::atomic_fetch_add(GlobalCounter& c, std::uint64_t delta) {
  ++stats_.atomics;
  const bool off_node = !rt_->topo().same_node(c.owner(), id_);
  if (c.owner() != id_)
    stats_.comm_time_s += rt_->cost_model().atomic_time(off_node);
  return c.value_.fetch_add(delta, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Runtime
// ---------------------------------------------------------------------------

Runtime::Runtime(Topology topo, CostModel model)
    : topo_(topo), model_(model), barrier_(topo.nranks()) {}

void Runtime::run(const std::function<void(Rank&)>& body) {
  samples_.assign(static_cast<std::size_t>(nranks()), {});
  report_ = PhaseReport{};
  first_error_ = nullptr;

  auto rank_main = [&](int id) {
    Rank rank(*this, id);
    rank.begin_execution();
    try {
      body(rank);
      rank.close_phase();
    } catch (...) {
      {
        const std::scoped_lock lk(error_mutex_);
        if (!first_error_) first_error_ = std::current_exception();
      }
      // Drop out of the barrier group so surviving ranks don't deadlock on
      // collectives this rank will never reach again.
      barrier_.arrive_and_drop();
      return;
    }
    samples_[static_cast<std::size_t>(id)] = std::move(rank.samples_);
  };

  if (nranks() == 1) {
    rank_main(0);  // run inline: easier to debug, nothing to synchronize with
  } else {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(nranks()));
    for (int r = 0; r < nranks(); ++r) threads.emplace_back(rank_main, r);
    for (auto& t : threads) t.join();
  }

  if (first_error_) std::rethrow_exception(first_error_);
  report_ = merge_phase_samples(samples_);
}

PhaseReport spmd(int nranks, int ppn, const std::function<void(Rank&)>& body,
                 CostModel model) {
  Runtime rt(Topology(nranks, ppn), model);
  rt.run(body);
  return rt.report();
}

}  // namespace mera::pgas
