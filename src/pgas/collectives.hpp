// Collective operations over the SPMD runtime (UPC's upc_all_* analogues).
//
// Implemented rank-0-rooted over shared memory with cost accounting: each
// contribution/distribution is one one-sided transfer, so a collective over
// p ranks charges O(p) messages to the model, matching what a flat
// (non-tree) UPC collective costs. Every call is collective: all ranks must
// reach it with compatible arguments, and the result is returned on every
// rank.
#pragma once

#include <functional>
#include <numeric>
#include <vector>

#include "pgas/runtime.hpp"

namespace mera::pgas {

/// Scratch space for collectives; one instance shared by all ranks, created
/// before Runtime::run(). Reusable across calls (internally double-buffered
/// by phase parity).
template <typename T>
class CollectiveSpace {
 public:
  explicit CollectiveSpace(int nranks)
      : nranks_(nranks),
        slots_(static_cast<std::size_t>(nranks)),
        result_(static_cast<std::size_t>(nranks)) {}

  /// All-reduce: every rank contributes `value`; returns op-fold over all
  /// contributions on every rank. `op` must be associative+commutative.
  T all_reduce(Rank& rank, T value, const std::function<T(T, T)>& op) {
    const auto me = static_cast<std::size_t>(rank.id());
    rank.put(0, &value, &slots_[me], 1);  // contribute to rank 0's segment
    rank.barrier();
    if (rank.id() == 0) {
      T acc = slots_[0];
      for (int r = 1; r < nranks_; ++r)
        acc = op(acc, slots_[static_cast<std::size_t>(r)]);
      result_[0] = acc;
    }
    rank.barrier();
    T out;
    rank.get(0, &result_[0], &out, 1);  // everyone pulls the reduction
    rank.barrier();
    return out;
  }

  T all_reduce_sum(Rank& rank, T value) {
    return all_reduce(rank, value, [](T a, T b) { return a + b; });
  }
  T all_reduce_max(Rank& rank, T value) {
    return all_reduce(rank, value, [](T a, T b) { return a < b ? b : a; });
  }

  /// Exclusive prefix sum: rank r receives sum of values of ranks < r.
  /// (What TargetStore needs to assign blocked global ids.)
  T exclusive_scan(Rank& rank, T value) {
    const auto me = static_cast<std::size_t>(rank.id());
    rank.put(0, &value, &slots_[me], 1);
    rank.barrier();
    if (rank.id() == 0) {
      T acc{};
      for (int r = 0; r < nranks_; ++r) {
        const auto ri = static_cast<std::size_t>(r);
        result_[ri] = acc;
        acc = acc + slots_[ri];
      }
    }
    rank.barrier();
    T out;
    rank.get(0, &result_[me], &out, 1);
    rank.barrier();
    return out;
  }

  /// Broadcast from `root`: every rank returns root's value.
  T broadcast(Rank& rank, T value, int root) {
    if (rank.id() == root) slots_[static_cast<std::size_t>(root)] = value;
    rank.barrier();
    T out;
    rank.get(root, &slots_[static_cast<std::size_t>(root)], &out, 1);
    rank.barrier();
    return out;
  }

  /// All-gather: returns the vector of every rank's value (index = rank).
  std::vector<T> all_gather(Rank& rank, T value) {
    const auto me = static_cast<std::size_t>(rank.id());
    slots_[me] = value;  // own slot: local store
    rank.charge_access(rank.id(), sizeof(T));
    rank.barrier();
    std::vector<T> out(static_cast<std::size_t>(nranks_));
    for (int r = 0; r < nranks_; ++r)
      rank.get(r, &slots_[static_cast<std::size_t>(r)],
               &out[static_cast<std::size_t>(r)], 1);
    rank.barrier();
    return out;
  }

 private:
  int nranks_;
  std::vector<T> slots_;
  std::vector<T> result_;
};

}  // namespace mera::pgas
