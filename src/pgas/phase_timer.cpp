#include "pgas/phase_timer.hpp"

#include <algorithm>
#include <iomanip>
#include <numeric>
#include <ostream>
#include <stdexcept>

#include "obs/metrics.hpp"

namespace mera::pgas {

namespace {
double vec_max(const std::vector<double>& v) {
  return v.empty() ? 0.0 : *std::max_element(v.begin(), v.end());
}
double vec_min(const std::vector<double>& v) {
  return v.empty() ? 0.0 : *std::min_element(v.begin(), v.end());
}
double vec_avg(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  return std::accumulate(v.begin(), v.end(), 0.0) / static_cast<double>(v.size());
}
}  // namespace

double PhaseEntry::time_s() const { return total_max(); }
double PhaseEntry::cpu_max() const { return vec_max(cpu_s); }
double PhaseEntry::cpu_min() const { return vec_min(cpu_s); }
double PhaseEntry::cpu_avg() const { return vec_avg(cpu_s); }
double PhaseEntry::comm_max() const { return vec_max(comm_s); }

double PhaseEntry::total_max() const {
  double m = 0.0;
  for (std::size_t i = 0; i < cpu_s.size(); ++i)
    m = std::max(m, cpu_s[i] + comm_s[i]);
  return m;
}
double PhaseEntry::total_min() const {
  if (cpu_s.empty()) return 0.0;
  double m = cpu_s[0] + comm_s[0];
  for (std::size_t i = 1; i < cpu_s.size(); ++i)
    m = std::min(m, cpu_s[i] + comm_s[i]);
  return m;
}
double PhaseEntry::total_avg() const {
  if (cpu_s.empty()) return 0.0;
  double s = 0.0;
  for (std::size_t i = 0; i < cpu_s.size(); ++i) s += cpu_s[i] + comm_s[i];
  return s / static_cast<double>(cpu_s.size());
}

double PhaseReport::total_time_s() const {
  double t = 0.0;
  for (const auto& p : phases) t += p.time_s();
  return t;
}

double PhaseReport::time_of(std::string_view name) const {
  double t = 0.0;
  for (const auto& p : phases)
    if (p.name == name) t += p.time_s();
  return t;
}

const PhaseEntry* PhaseReport::find(std::string_view name) const {
  for (const auto& p : phases)
    if (p.name == name) return &p;
  return nullptr;
}

void PhaseReport::append(const PhaseReport& other) {
  phases.insert(phases.end(), other.phases.begin(), other.phases.end());
}

CommStats PhaseReport::total_traffic() const {
  CommStats s;
  for (const auto& p : phases) s += p.traffic;
  return s;
}

void PhaseReport::print(std::ostream& os) const {
  os << std::left << std::setw(26) << "phase" << std::right << std::setw(12)
     << "time(s)" << std::setw(12) << "cpu_max" << std::setw(12) << "comm_max"
     << std::setw(12) << "net_msgs" << std::setw(14) << "net_MB" << '\n';
  for (const auto& p : phases) {
    os << std::left << std::setw(26) << p.name << std::right << std::fixed
       << std::setprecision(4) << std::setw(12) << p.time_s() << std::setw(12)
       << p.cpu_max() << std::setw(12) << p.comm_max() << std::setw(12)
       << p.traffic.net_msgs << std::setw(14)
       << static_cast<double>(p.traffic.net_bytes) / 1e6 << '\n';
  }
  os << std::left << std::setw(26) << "TOTAL" << std::right << std::setw(12)
     << total_time_s() << '\n';
  os.unsetf(std::ios::fixed);
}

PhaseReport merge_phase_samples(
    const std::vector<std::vector<PhaseSample>>& per_rank) {
  PhaseReport rep;
  if (per_rank.empty()) return rep;
  const std::size_t nphases = per_rank[0].size();
  for (const auto& r : per_rank)
    if (r.size() != nphases)
      throw std::logic_error(
          "merge_phase_samples: ranks recorded different phase counts "
          "(collective phase() calls must match on every rank)");
  rep.phases.resize(nphases);
  for (std::size_t ph = 0; ph < nphases; ++ph) {
    PhaseEntry& e = rep.phases[ph];
    e.name = per_rank[0][ph].name;
    e.cpu_s.reserve(per_rank.size());
    e.comm_s.reserve(per_rank.size());
    for (const auto& r : per_rank) {
      if (r[ph].name != e.name)
        throw std::logic_error("merge_phase_samples: phase name mismatch: '" +
                               e.name + "' vs '" + r[ph].name + "'");
      e.cpu_s.push_back(r[ph].cpu_s);
      e.comm_s.push_back(r[ph].comm.comm_time_s);
      e.traffic += r[ph].comm;
    }
  }
  return rep;
}

void add_to_metrics(const PhaseReport& report,
                    const std::vector<std::pair<std::string, std::string>>&
                        extra_labels) {
  auto& reg = obs::MetricsRegistry::global();
  for (const PhaseEntry& p : report.phases) {
    obs::Labels labels{{"phase", p.name}};
    labels.insert(labels.end(), extra_labels.begin(), extra_labels.end());
    double cpu = 0.0, comm = 0.0;
    for (std::size_t r = 0; r < p.cpu_s.size(); ++r) {
      cpu += p.cpu_s[r];
      comm += p.comm_s[r];
    }
    reg.counter("mera_phase_cpu_seconds_total", labels,
                "CPU seconds summed over ranks, by phase")
        .add(cpu);
    reg.counter("mera_phase_comm_seconds_total", labels,
                "Modeled communication seconds summed over ranks, by phase")
        .add(comm);
    reg.counter("mera_phase_net_bytes_total", labels,
                "Modeled network bytes summed over ranks, by phase")
        .add(static_cast<double>(p.traffic.net_bytes));
  }
}

}  // namespace mera::pgas
