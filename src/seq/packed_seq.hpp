// PackedSeq: a DNA sequence stored 2 bits/base (Section V-C).
//
// The aligner moves sequences across ranks constantly (target fetches, seed
// payloads); packing cuts both the memory footprint and the modeled
// communication bytes by 4x, exactly as in the paper. Bases with code 4
// ('N') cannot be represented; call sites that may see Ns must pre-filter
// (the k-mer extractor skips windows containing invalid bases before packing).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "seq/dna.hpp"

namespace mera::seq {

class PackedSeq {
 public:
  PackedSeq() = default;

  /// Pack an ASCII DNA string; invalid bases are packed as 'A' — use
  /// from_string_checked() when Ns must be rejected.
  explicit PackedSeq(std::string_view ascii);

  /// Throws std::invalid_argument if `ascii` contains a non-ACGT character.
  static PackedSeq from_string_checked(std::string_view ascii);

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  /// 2-bit code of base `i`.
  [[nodiscard]] std::uint8_t code_at(std::size_t i) const noexcept {
    return (words_[i >> 5] >> ((i & 31u) * 2)) & 3u;
  }
  [[nodiscard]] char char_at(std::size_t i) const noexcept {
    return decode_base(code_at(i));
  }

  void push_code(std::uint8_t code);
  void clear() noexcept {
    words_.clear();
    size_ = 0;
  }

  [[nodiscard]] std::string to_string() const;
  [[nodiscard]] std::string to_string(std::size_t pos, std::size_t len) const;

  [[nodiscard]] PackedSeq subseq(std::size_t pos, std::size_t len) const;
  [[nodiscard]] PackedSeq reverse_complement() const;

  /// Bytes occupied by the packed payload (what a one-sided transfer moves).
  [[nodiscard]] std::size_t packed_bytes() const noexcept {
    return words_.size() * sizeof(std::uint64_t);
  }
  [[nodiscard]] std::span<const std::uint64_t> words() const noexcept {
    return words_;
  }

  /// memcmp-style compare: do a[apos..apos+n) and b[bpos..bpos+n) hold the
  /// same bases? This is the fast path of the exact-match optimization
  /// (Section IV-A): one packed comparison instead of Smith-Waterman.
  [[nodiscard]] static bool equal_range(const PackedSeq& a, std::size_t apos,
                                        const PackedSeq& b, std::size_t bpos,
                                        std::size_t n) noexcept;

  /// Number of mismatching bases between the two ranges (for alignment stats).
  [[nodiscard]] static std::size_t mismatch_count(const PackedSeq& a,
                                                  std::size_t apos,
                                                  const PackedSeq& b,
                                                  std::size_t bpos,
                                                  std::size_t n) noexcept;

  friend bool operator==(const PackedSeq& x, const PackedSeq& y) noexcept {
    return x.size_ == y.size_ && x.words_ == y.words_;
  }

  /// Rebuild from raw words + length (receiving side of a transfer).
  static PackedSeq from_words(std::vector<std::uint64_t> words,
                              std::size_t nbases);

 private:
  std::vector<std::uint64_t> words_;  // 32 bases per word, LSB-first
  std::size_t size_ = 0;
};

}  // namespace mera::seq
