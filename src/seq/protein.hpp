// Amino-acid alphabet support (the paper's conclusion: "Extending our
// approach to other alphabets, one can also use the same methods to align
// protein sequences ... against protein datasets").
//
// Residues are coded in the NCBI BLOSUM order "ARNDCQEGHILKMFPSTWYVBZX*";
// the alignment kernels operate on these codes with a substitution matrix
// (align/blosum.hpp) instead of DNA match/mismatch scoring.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace mera::seq {

inline constexpr int kAminoAlphabetSize = 24;
inline constexpr std::string_view kAminoOrder = "ARNDCQEGHILKMFPSTWYVBZX*";

/// Residue letter -> code (0..23); unknown letters map to 'X' (22).
[[nodiscard]] std::uint8_t encode_amino(char c) noexcept;
[[nodiscard]] char decode_amino(std::uint8_t code) noexcept;

/// True iff every character is one of the 20 standard residues (strict:
/// no B/Z/X/* ambiguity codes).
[[nodiscard]] bool is_standard_protein(std::string_view s) noexcept;

[[nodiscard]] std::vector<std::uint8_t> protein_codes(std::string_view s);
[[nodiscard]] std::string protein_string(
    const std::vector<std::uint8_t>& codes);

}  // namespace mera::seq
