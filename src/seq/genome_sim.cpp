#include "seq/genome_sim.hpp"

#include <random>
#include <stdexcept>

#include "seq/dna.hpp"

namespace mera::seq {

std::string simulate_genome(const GenomeParams& p) {
  if (p.length == 0) return {};
  std::mt19937_64 rng(p.rng_seed);
  std::uniform_int_distribution<int> base(0, 3);

  std::string g(p.length, 'A');
  for (auto& c : g) c = decode_base(static_cast<std::uint8_t>(base(rng)));

  // Paste near-identical copies of a few repeat-family units until the
  // requested fraction of the genome is repeat-covered.
  if (p.repeat_fraction > 0 && p.repeat_families > 0 &&
      p.repeat_unit_len > 0 && p.length > p.repeat_unit_len) {
    std::vector<std::string> families;
    families.reserve(static_cast<std::size_t>(p.repeat_families));
    std::uniform_int_distribution<std::size_t> pos_dist(
        0, p.length - p.repeat_unit_len - 1);
    for (int f = 0; f < p.repeat_families; ++f)
      families.push_back(g.substr(pos_dist(rng), p.repeat_unit_len));

    const auto target_bases =
        static_cast<std::size_t>(p.repeat_fraction * static_cast<double>(p.length));
    std::uniform_real_distribution<double> unit(0.0, 1.0);
    std::size_t pasted = 0;
    while (pasted + p.repeat_unit_len <= target_bases) {
      const auto& fam =
          families[rng() % static_cast<std::size_t>(p.repeat_families)];
      const std::size_t at = pos_dist(rng);
      for (std::size_t i = 0; i < fam.size(); ++i) {
        char c = fam[i];
        if (unit(rng) < p.repeat_divergence)
          c = decode_base(static_cast<std::uint8_t>(base(rng)));
        g[at + i] = c;
      }
      pasted += p.repeat_unit_len;
    }
  }
  return g;
}

std::vector<SeqRecord> chop_into_contigs(std::string_view genome,
                                         const ContigParams& p) {
  if (p.min_len == 0 || p.min_len > p.max_len)
    throw std::invalid_argument("chop_into_contigs: bad contig length range");
  std::mt19937_64 rng(p.rng_seed);
  std::uniform_int_distribution<std::size_t> len_dist(p.min_len, p.max_len);
  std::uniform_int_distribution<std::size_t> gap_dist(p.gap_min, p.gap_max);

  std::vector<SeqRecord> contigs;
  std::size_t pos = 0;
  std::size_t idx = 0;
  while (pos < genome.size()) {
    std::size_t len = std::min(len_dist(rng), genome.size() - pos);
    if (len < p.min_len && !contigs.empty()) break;  // drop a too-short tail
    SeqRecord rec;
    rec.name = "contig" + std::to_string(idx++) + ":" + std::to_string(pos) +
               "-" + std::to_string(pos + len);
    rec.seq = std::string(genome.substr(pos, len));
    contigs.push_back(std::move(rec));
    pos += len + gap_dist(rng);
  }
  return contigs;
}

ContigTruth parse_contig_truth(std::string_view contig_name) {
  const auto colon = contig_name.rfind(':');
  const auto dash = contig_name.rfind('-');
  if (colon == std::string_view::npos || dash == std::string_view::npos ||
      dash < colon)
    throw std::invalid_argument("parse_contig_truth: name lacks ':start-end'");
  ContigTruth t;
  const auto parse_field = [&](std::string_view field, const char* which) {
    try {
      return std::stoull(std::string(field));
    } catch (const std::exception&) {
      throw std::invalid_argument("parse_contig_truth: contig '" +
                                  std::string(contig_name) +
                                  "' has a malformed " + which + " field '" +
                                  std::string(field) + "'");
    }
  };
  t.start =
      parse_field(contig_name.substr(colon + 1, dash - colon - 1), "start");
  t.end = parse_field(contig_name.substr(dash + 1), "end");
  return t;
}

}  // namespace mera::seq
