// Fixed-size seeds (k-mers), k <= 64, packed 2 bits/base into two words.
//
// The paper uses k = 51 for human/wheat (the Meraculous scaffolding seed
// length) and k = 19 for E. coli. Seeds are the keys of the distributed seed
// index; the seed-to-processor map uses the djb2 hash, which the paper credits
// for its near-perfect balance of distinct seeds per processor.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "seq/dna.hpp"
#include "seq/packed_seq.hpp"

namespace mera::seq {

inline constexpr int kMaxSeedLen = 64;

class Kmer {
 public:
  Kmer() = default;

  [[nodiscard]] int k() const noexcept { return k_; }

  [[nodiscard]] std::uint8_t code_at(int i) const noexcept {
    return (w_[static_cast<std::size_t>(i) >> 5] >> ((i & 31) * 2)) & 3u;
  }

  /// Build from ASCII; nullopt if any base is not ACGT or s.size() > 64.
  static std::optional<Kmer> from_ascii(std::string_view s) noexcept {
    if (s.size() > kMaxSeedLen || s.empty()) return std::nullopt;
    Kmer m;
    m.k_ = static_cast<int>(s.size());
    for (std::size_t i = 0; i < s.size(); ++i) {
      const std::uint8_t c = encode_base(s[i]);
      if (c == kInvalidBase) return std::nullopt;
      m.set_code(static_cast<int>(i), c);
    }
    return m;
  }

  /// The packed 2-bit payload, for serialization. Bits at positions >= 2k
  /// are always zero (class invariant), so equal seeds have equal words.
  [[nodiscard]] const std::array<std::uint64_t, 2>& words() const noexcept {
    return w_;
  }

  /// Rebuild from serialized words; nullopt if k is out of range or any bit
  /// above position 2k is set (a valid encoder never produces those, so they
  /// signal corruption).
  static std::optional<Kmer> from_words(
      int k, const std::array<std::uint64_t, 2>& w) noexcept {
    if (k <= 0 || k > kMaxSeedLen) return std::nullopt;
    for (int i = k; i < kMaxSeedLen; ++i) {
      if ((w[static_cast<std::size_t>(i) >> 5] >> ((i & 31) * 2)) & 3u)
        return std::nullopt;
    }
    Kmer m;
    m.k_ = k;
    m.w_ = w;
    return m;
  }

  /// Build from a window of an (all-valid) packed sequence.
  static Kmer from_packed(const PackedSeq& s, std::size_t pos, int k) {
    Kmer m;
    m.k_ = k;
    for (int i = 0; i < k; ++i)
      m.set_code(i, s.code_at(pos + static_cast<std::size_t>(i)));
    return m;
  }

  /// Rolling update: drop the front base, append `code` at the back.
  /// Enables O(1)-per-window seed extraction over a target sequence.
  void roll(std::uint8_t code) noexcept {
    w_[0] = (w_[0] >> 2) | (w_[1] & 3u) << 62;
    w_[1] >>= 2;
    set_code(k_ - 1, code);
  }

  [[nodiscard]] std::string to_string() const {
    std::string s(static_cast<std::size_t>(k_), '\0');
    for (int i = 0; i < k_; ++i)
      s[static_cast<std::size_t>(i)] = decode_base(code_at(i));
    return s;
  }

  [[nodiscard]] Kmer reverse_complement() const noexcept {
    Kmer m;
    m.k_ = k_;
    for (int i = 0; i < k_; ++i)
      m.set_code(i, complement_code(code_at(k_ - 1 - i)));
    return m;
  }

  /// djb2 over the packed bytes of the seed — the paper's seed-to-processor
  /// hash (Section VI-C1).
  [[nodiscard]] std::uint64_t djb2() const noexcept {
    std::uint64_t h = 5381;
    const int nbytes = (k_ + 3) / 4;
    for (int b = 0; b < nbytes; ++b) {
      const auto byte = static_cast<std::uint8_t>(
          w_[static_cast<std::size_t>(b) >> 3] >> ((b & 7) * 8));
      h = h * 33u + byte;
    }
    return h;
  }

  /// Independent, well-mixed hash for bucket placement *within* a rank, so
  /// bucket choice is uncorrelated with the (djb2 mod nranks) owner choice.
  [[nodiscard]] std::uint64_t mixed_hash() const noexcept {
    std::uint64_t x = w_[0] ^ (w_[1] * 0x9e3779b97f4a7c15ULL) ^
                      (static_cast<std::uint64_t>(k_) << 56);
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return x;
  }

  friend bool operator==(const Kmer& a, const Kmer& b) noexcept {
    return a.k_ == b.k_ && a.w_ == b.w_;
  }
  friend bool operator<(const Kmer& a, const Kmer& b) noexcept {
    if (a.w_[1] != b.w_[1]) return a.w_[1] < b.w_[1];
    if (a.w_[0] != b.w_[0]) return a.w_[0] < b.w_[0];
    return a.k_ < b.k_;
  }

 private:
  void set_code(int i, std::uint8_t code) noexcept {
    const std::size_t word = static_cast<std::size_t>(i) >> 5;
    const unsigned shift = (i & 31) * 2;
    w_[word] &= ~(std::uint64_t{3} << shift);
    w_[word] |= static_cast<std::uint64_t>(code & 3u) << shift;
  }

  std::array<std::uint64_t, 2> w_{0, 0};
  int k_ = 0;
};

/// Extract all k-length seeds of an ASCII sequence, skipping windows that
/// contain a non-ACGT base. Calls fn(offset, kmer) for each valid window.
template <typename Fn>
void for_each_seed(std::string_view s, int k, Fn&& fn) {
  if (k <= 0 || k > kMaxSeedLen || s.size() < static_cast<std::size_t>(k))
    return;
  // Track the most recent invalid position to skip tainted windows in O(n).
  std::ptrdiff_t last_bad = -1;
  Kmer m;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const std::uint8_t c = encode_base(s[i]);
    if (c == kInvalidBase) {
      last_bad = static_cast<std::ptrdiff_t>(i);
      continue;
    }
    if (i + 1 < static_cast<std::size_t>(k)) continue;
    const std::size_t start = i + 1 - static_cast<std::size_t>(k);
    if (static_cast<std::ptrdiff_t>(start) <= last_bad) continue;
    if (static_cast<std::ptrdiff_t>(start) == last_bad + 1) {
      // First clean window after a bad base (or the very first window):
      // build it from scratch; subsequent windows roll in O(1).
      auto fresh = Kmer::from_ascii(s.substr(start, static_cast<std::size_t>(k)));
      m = *fresh;  // window verified clean above
    } else {
      m.roll(c);
    }
    fn(start, m);
  }
}

/// Seed extraction over a PackedSeq (always valid bases): fn(offset, kmer).
template <typename Fn>
void for_each_seed(const PackedSeq& s, int k, Fn&& fn) {
  if (k <= 0 || k > kMaxSeedLen || s.size() < static_cast<std::size_t>(k))
    return;
  Kmer m = Kmer::from_packed(s, 0, k);
  fn(std::size_t{0}, m);
  for (std::size_t start = 1; start + static_cast<std::size_t>(k) <= s.size();
       ++start) {
    m.roll(s.code_at(start + static_cast<std::size_t>(k) - 1));
    fn(start, m);
  }
}

}  // namespace mera::seq
