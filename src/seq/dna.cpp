#include "seq/dna.hpp"

#include <algorithm>

namespace mera::seq {

bool is_valid_dna(std::string_view s) noexcept {
  return std::all_of(s.begin(), s.end(),
                     [](char c) { return encode_base(c) != kInvalidBase; });
}

std::string reverse_complement(std::string_view s) {
  std::string out(s.size(), '\0');
  for (std::size_t i = 0; i < s.size(); ++i)
    out[s.size() - 1 - i] = complement_base(s[i]);
  return out;
}

}  // namespace mera::seq
