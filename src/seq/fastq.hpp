// FASTQ reader/writer with byte-partitioned parallel reads.
//
// The paper notes FASTQ "cannot be read in parallel in a scalable way due to
// its text-based nature" and converts to SeqDB (see seqdb.hpp). We still
// support partitioned FASTQ reads with the standard record-start heuristic
// (an '@' line whose line-after-next starts with '+'); the SeqDB path is the
// recommended, unambiguous one.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "seq/fasta.hpp"  // SeqRecord

namespace mera::seq {

[[nodiscard]] std::vector<SeqRecord> parse_fastq(std::string_view text);

[[nodiscard]] std::vector<SeqRecord> read_fastq(const std::string& path);

void write_fastq(const std::string& path, const std::vector<SeqRecord>& recs);

/// Offset of the first FASTQ record header at or after `pos` (heuristic:
/// line starts with '@' and the line after next starts with '+').
[[nodiscard]] std::size_t fastq_next_record(std::string_view text,
                                            std::size_t pos);

/// Rank r of n parses records whose header byte lies in slice r of the file.
[[nodiscard]] std::vector<SeqRecord> read_fastq_partition(
    const std::string& path, int rank, int nranks);

}  // namespace mera::seq
