#include "seq/fastq.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace mera::seq {

namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open for reading: " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return std::move(ss).str();
}

/// [begin, end) of the line starting at `pos` (end excludes '\n').
std::pair<std::size_t, std::size_t> line_at(std::string_view text,
                                            std::size_t pos) {
  std::size_t e = text.find('\n', pos);
  if (e == std::string_view::npos) e = text.size();
  std::size_t end = e;
  while (end > pos && text[end - 1] == '\r') --end;
  return {pos, end};
}

std::size_t line_after(std::string_view text, std::size_t pos) {
  const std::size_t e = text.find('\n', pos);
  return e == std::string_view::npos ? text.size() : e + 1;
}

bool is_record_start(std::string_view text, std::size_t pos) {
  if (pos >= text.size() || text[pos] != '@') return false;
  const std::size_t plus_line = line_after(text, line_after(text, pos));
  return plus_line < text.size() && text[plus_line] == '+';
}

std::vector<SeqRecord> parse_fastq_range(std::string_view text, std::size_t lo,
                                         std::size_t hi) {
  std::vector<SeqRecord> out;
  std::size_t pos = fastq_next_record(text, lo);
  while (pos < hi && pos < text.size()) {
    auto [h0, h1] = line_at(text, pos);
    SeqRecord rec;
    rec.name = std::string(text.substr(h0 + 1, h1 - h0 - 1));
    if (auto sp = rec.name.find_first_of(" \t"); sp != std::string::npos)
      rec.name.resize(sp);
    std::size_t p = line_after(text, pos);
    auto [s0, s1] = line_at(text, p);
    rec.seq = std::string(text.substr(s0, s1 - s0));
    p = line_after(text, p);  // '+' line
    p = line_after(text, p);
    auto [q0, q1] = line_at(text, p);
    rec.qual = std::string(text.substr(q0, q1 - q0));
    if (rec.qual.size() != rec.seq.size())
      throw std::runtime_error("FASTQ parse error: quality length mismatch at record '" +
                               rec.name + "'");
    out.push_back(std::move(rec));
    pos = line_after(text, p);
  }
  return out;
}

}  // namespace

std::size_t fastq_next_record(std::string_view text, std::size_t pos) {
  if (pos == 0 && is_record_start(text, 0)) return 0;
  std::size_t scan = pos == 0 ? 0 : pos - 1;
  for (;;) {
    const std::size_t nl = text.find('\n', scan);
    if (nl == std::string_view::npos || nl + 1 >= text.size())
      return text.size();
    if (nl + 1 >= pos && is_record_start(text, nl + 1)) return nl + 1;
    scan = nl + 1;
  }
}

std::vector<SeqRecord> parse_fastq(std::string_view text) {
  return parse_fastq_range(text, 0, text.size());
}

std::vector<SeqRecord> read_fastq(const std::string& path) {
  return parse_fastq(slurp(path));
}

void write_fastq(const std::string& path, const std::vector<SeqRecord>& recs) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot open for writing: " + path);
  for (const auto& r : recs) {
    out << '@' << r.name << '\n' << r.seq << "\n+\n";
    if (r.qual.size() == r.seq.size())
      out << r.qual << '\n';
    else
      out << std::string(r.seq.size(), 'I') << '\n';
  }
  if (!out) throw std::runtime_error("write failed: " + path);
}

std::vector<SeqRecord> read_fastq_partition(const std::string& path, int rank,
                                            int nranks) {
  if (rank < 0 || nranks < 1 || rank >= nranks)
    throw std::invalid_argument("read_fastq_partition: bad rank/nranks");
  const std::string text = slurp(path);
  const std::size_t lo = text.size() * static_cast<std::size_t>(rank) /
                         static_cast<std::size_t>(nranks);
  const std::size_t hi = text.size() * static_cast<std::size_t>(rank + 1) /
                         static_cast<std::size_t>(nranks);
  return parse_fastq_range(text, lo, hi);
}

}  // namespace mera::seq
