#include "seq/fasta.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace mera::seq {

namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open for reading: " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return std::move(ss).str();
}

/// Offset of the first FASTA header ('>' at line start) at or after `pos`.
std::size_t next_header(std::string_view text, std::size_t pos) {
  if (pos >= text.size()) return text.size();
  if (pos == 0) {
    if (text[0] == '>') return 0;
  } else if (text[pos - 1] == '\n' && text[pos] == '>') {
    return pos;
  }
  std::size_t scan = pos;
  for (;;) {
    const std::size_t nl = text.find('\n', scan);
    if (nl == std::string_view::npos || nl + 1 >= text.size())
      return text.size();
    if (text[nl + 1] == '>') return nl + 1;
    scan = nl + 1;
  }
}

/// Parse records whose header offset lies in [lo, hi).
std::vector<SeqRecord> parse_fasta_range(std::string_view text, std::size_t lo,
                                         std::size_t hi) {
  std::vector<SeqRecord> out;
  std::size_t pos = next_header(text, lo);
  while (pos < hi && pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    SeqRecord rec;
    rec.name = std::string(text.substr(pos + 1, eol - pos - 1));
    // Trim trailing CR and anything after first whitespace.
    if (auto sp = rec.name.find_first_of(" \t\r"); sp != std::string::npos)
      rec.name.resize(sp);
    std::size_t p = eol + 1;
    while (p < text.size() && text[p] != '>') {
      std::size_t e = text.find('\n', p);
      if (e == std::string_view::npos) e = text.size();
      std::size_t len = e - p;
      while (len > 0 && (text[p + len - 1] == '\r')) --len;
      rec.seq.append(text.substr(p, len));
      p = e + 1;
    }
    out.push_back(std::move(rec));
    pos = p;
  }
  return out;
}

}  // namespace

std::vector<SeqRecord> parse_fasta(std::string_view text) {
  return parse_fasta_range(text, 0, text.size());
}

std::vector<SeqRecord> read_fasta(const std::string& path) {
  return parse_fasta(slurp(path));
}

void write_fasta(const std::string& path, const std::vector<SeqRecord>& recs,
                 std::size_t line_width) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot open for writing: " + path);
  for (const auto& r : recs) {
    out << '>' << r.name << '\n';
    for (std::size_t i = 0; i < r.seq.size(); i += line_width)
      out << std::string_view(r.seq).substr(i, line_width) << '\n';
  }
  if (!out) throw std::runtime_error("write failed: " + path);
}

std::vector<SeqRecord> read_fasta_partition(const std::string& path, int rank,
                                            int nranks) {
  if (rank < 0 || nranks < 1 || rank >= nranks)
    throw std::invalid_argument("read_fasta_partition: bad rank/nranks");
  const std::string text = slurp(path);
  const std::size_t lo = text.size() * static_cast<std::size_t>(rank) /
                         static_cast<std::size_t>(nranks);
  const std::size_t hi = text.size() * static_cast<std::size_t>(rank + 1) /
                         static_cast<std::size_t>(nranks);
  return parse_fasta_range(text, lo, hi);
}

}  // namespace mera::seq
