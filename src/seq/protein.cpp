#include "seq/protein.hpp"

#include <array>
#include <cctype>

namespace mera::seq {

namespace {

constexpr std::uint8_t kXCode = 22;

constexpr std::array<std::uint8_t, 26> build_letter_table() {
  std::array<std::uint8_t, 26> table{};
  for (auto& v : table) v = kXCode;
  for (std::size_t i = 0; i < kAminoOrder.size(); ++i) {
    const char c = kAminoOrder[i];
    if (c >= 'A' && c <= 'Z')
      table[static_cast<std::size_t>(c - 'A')] = static_cast<std::uint8_t>(i);
  }
  return table;
}

constexpr auto kLetterTable = build_letter_table();

}  // namespace

std::uint8_t encode_amino(char c) noexcept {
  if (c == '*') return 23;
  const char up = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  if (up < 'A' || up > 'Z') return kXCode;
  return kLetterTable[static_cast<std::size_t>(up - 'A')];
}

char decode_amino(std::uint8_t code) noexcept {
  return code < kAminoOrder.size() ? kAminoOrder[code] : 'X';
}

bool is_standard_protein(std::string_view s) noexcept {
  for (char c : s) {
    const auto code = encode_amino(c);
    if (code >= 20) return false;  // B/Z/X/* or unknown
    // encode maps unknown to X(22), standard residues to 0..19.
    if (decode_amino(code) !=
        static_cast<char>(std::toupper(static_cast<unsigned char>(c))))
      return false;
  }
  return true;
}

std::vector<std::uint8_t> protein_codes(std::string_view s) {
  std::vector<std::uint8_t> v(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) v[i] = encode_amino(s[i]);
  return v;
}

std::string protein_string(const std::vector<std::uint8_t>& codes) {
  std::string s(codes.size(), 'X');
  for (std::size_t i = 0; i < codes.size(); ++i) s[i] = decode_amino(codes[i]);
  return s;
}

}  // namespace mera::seq
