// 2-bit DNA alphabet coding (Section V-C of the paper: sequences are packed
// two bits per base, cutting memory footprint and communication volume 4x).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

namespace mera::seq {

/// Code for an invalid / ambiguous base (e.g. 'N').
inline constexpr std::uint8_t kInvalidBase = 4;

/// 'A'->0 'C'->1 'G'->2 'T'->3 (case-insensitive), anything else -> 4.
[[nodiscard]] constexpr std::uint8_t encode_base(char c) noexcept {
  switch (c) {
    case 'A': case 'a': return 0;
    case 'C': case 'c': return 1;
    case 'G': case 'g': return 2;
    case 'T': case 't': return 3;
    default: return kInvalidBase;
  }
}

/// Inverse of encode_base for valid codes; code 4 decodes to 'N'.
[[nodiscard]] constexpr char decode_base(std::uint8_t code) noexcept {
  constexpr std::array<char, 5> kBases{'A', 'C', 'G', 'T', 'N'};
  return kBases[code <= 4 ? code : 4];
}

/// Complement of a 2-bit code (A<->T, C<->G): code ^ 3.
[[nodiscard]] constexpr std::uint8_t complement_code(std::uint8_t code) noexcept {
  return code == kInvalidBase ? kInvalidBase
                              : static_cast<std::uint8_t>(code ^ 3u);
}

[[nodiscard]] constexpr char complement_base(char c) noexcept {
  return decode_base(complement_code(encode_base(c)));
}

/// True iff every character of `s` is one of ACGTacgt.
[[nodiscard]] bool is_valid_dna(std::string_view s) noexcept;

/// Reverse complement of an ASCII DNA string ('N' maps to 'N').
[[nodiscard]] std::string reverse_complement(std::string_view s);

}  // namespace mera::seq
