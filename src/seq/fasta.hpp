// Minimal FASTA reader/writer (targets/contigs are distributed as FASTA in
// the Meraculous pipeline the paper plugs into).
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace mera::seq {

struct SeqRecord {
  std::string name;
  std::string seq;
  std::string qual;  ///< empty for FASTA records

  friend bool operator==(const SeqRecord&, const SeqRecord&) = default;
};

/// Parse FASTA text (">name\nSEQ..." records, sequences may be line-wrapped).
[[nodiscard]] std::vector<SeqRecord> parse_fasta(std::string_view text);

[[nodiscard]] std::vector<SeqRecord> read_fasta(const std::string& path);

void write_fasta(const std::string& path, const std::vector<SeqRecord>& recs,
                 std::size_t line_width = 80);

/// Byte-partitioned parallel read: rank r of n parses only the records whose
/// header byte lies in its slice of the file. Every record is parsed by
/// exactly one rank; the union over ranks is the whole file.
[[nodiscard]] std::vector<SeqRecord> read_fasta_partition(
    const std::string& path, int rank, int nranks);

}  // namespace mera::seq
