#include "seq/packed_seq.hpp"

#include <stdexcept>

namespace mera::seq {

PackedSeq::PackedSeq(std::string_view ascii) {
  words_.reserve((ascii.size() + 31) / 32);
  for (char c : ascii) {
    std::uint8_t code = encode_base(c);
    if (code == kInvalidBase) code = 0;  // 'N' degrades to 'A' (documented)
    push_code(code);
  }
}

PackedSeq PackedSeq::from_string_checked(std::string_view ascii) {
  if (!is_valid_dna(ascii))
    throw std::invalid_argument(
        "PackedSeq::from_string_checked: non-ACGT base in input");
  return PackedSeq(ascii);
}

void PackedSeq::push_code(std::uint8_t code) {
  const std::size_t word = size_ >> 5;
  const unsigned shift = (size_ & 31u) * 2;
  if (word == words_.size()) words_.push_back(0);
  words_[word] |= (static_cast<std::uint64_t>(code & 3u) << shift);
  ++size_;
}

std::string PackedSeq::to_string() const { return to_string(0, size_); }

std::string PackedSeq::to_string(std::size_t pos, std::size_t len) const {
  if (pos + len > size_)
    throw std::out_of_range("PackedSeq::to_string: range past end");
  std::string s(len, '\0');
  for (std::size_t i = 0; i < len; ++i) s[i] = char_at(pos + i);
  return s;
}

PackedSeq PackedSeq::subseq(std::size_t pos, std::size_t len) const {
  if (pos + len > size_)
    throw std::out_of_range("PackedSeq::subseq: range past end");
  PackedSeq out;
  out.words_.reserve((len + 31) / 32);
  for (std::size_t i = 0; i < len; ++i) out.push_code(code_at(pos + i));
  return out;
}

PackedSeq PackedSeq::reverse_complement() const {
  PackedSeq out;
  out.words_.reserve(words_.size());
  for (std::size_t i = size_; i-- > 0;)
    out.push_code(complement_code(code_at(i)));
  return out;
}

bool PackedSeq::equal_range(const PackedSeq& a, std::size_t apos,
                            const PackedSeq& b, std::size_t bpos,
                            std::size_t n) noexcept {
  if (apos + n > a.size_ || bpos + n > b.size_) return false;
  // Word-at-a-time when both ranges are 32-base aligned; else base loop.
  if ((apos & 31u) == 0 && (bpos & 31u) == 0) {
    std::size_t full = n / 32;
    for (std::size_t w = 0; w < full; ++w)
      if (a.words_[apos / 32 + w] != b.words_[bpos / 32 + w]) return false;
    for (std::size_t i = full * 32; i < n; ++i)
      if (a.code_at(apos + i) != b.code_at(bpos + i)) return false;
    return true;
  }
  for (std::size_t i = 0; i < n; ++i)
    if (a.code_at(apos + i) != b.code_at(bpos + i)) return false;
  return true;
}

std::size_t PackedSeq::mismatch_count(const PackedSeq& a, std::size_t apos,
                                      const PackedSeq& b, std::size_t bpos,
                                      std::size_t n) noexcept {
  std::size_t mm = 0;
  for (std::size_t i = 0; i < n; ++i)
    mm += (a.code_at(apos + i) != b.code_at(bpos + i)) ? 1u : 0u;
  return mm;
}

PackedSeq PackedSeq::from_words(std::vector<std::uint64_t> words,
                                std::size_t nbases) {
  if (words.size() < (nbases + 31) / 32)
    throw std::invalid_argument("PackedSeq::from_words: too few words");
  PackedSeq out;
  out.words_ = std::move(words);
  out.words_.resize((nbases + 31) / 32);
  out.size_ = nbases;
  // Zero the tail bits beyond nbases so operator== stays well-defined.
  if (nbases & 31u) {
    const std::uint64_t mask = (~std::uint64_t{0}) >> (64 - 2 * (nbases & 31u));
    out.words_.back() &= mask;
  }
  return out;
}

}  // namespace mera::seq
