// SeqDB: a binary, record-indexed container for short reads.
//
// Stand-in for the paper's SeqDB-on-HDF5 (Section V-A): the property the
// aligner exploits is that the format is binary and *indexed*, so each rank
// can seek straight to its own record range and read it with no text scanning
// and no master process — that is what makes the I/O phase fully parallel.
// Sequences are stored 2-bit packed (lossless for ACGT; reads containing N
// store an escape list), qualities optionally retained, so the FASTQ->SeqDB
// conversion is lossless and the file is typically ~40-50% of the FASTQ size.
//
// Layout (little-endian):
//   [0]  magic "MERASDB1" (8 bytes)
//   [8]  u32 version (=1)        [12] u32 flags (bit0: qualities stored)
//   [16] u64 nrecords            [24] u64 index_offset
//   [32] records...
//        per record: u16 name_len, name bytes,
//                    u32 seq_len, ceil(seq_len/32) u64 packed words,
//                    u32 n_count, n_count u32 N-positions,
//                    (if qualities) seq_len quality bytes
//   [index_offset] nrecords x u64 absolute record offsets
#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "seq/fasta.hpp"  // SeqRecord
#include "seq/packed_seq.hpp"

namespace mera::seq {

struct PackedRead {
  std::string name;
  PackedSeq seq;                     ///< N bases packed as 'A'...
  std::vector<std::uint32_t> n_pos;  ///< ...with their positions recorded here
};

class SeqDBWriter {
 public:
  explicit SeqDBWriter(const std::string& path, bool store_quality = false);
  ~SeqDBWriter();
  SeqDBWriter(const SeqDBWriter&) = delete;
  SeqDBWriter& operator=(const SeqDBWriter&) = delete;

  void add(const SeqRecord& rec);
  /// Writes the record index + header backpatch. Called by dtor if omitted.
  void finish();

 private:
  std::ofstream out_;
  std::string path_;
  bool store_quality_;
  bool finished_ = false;
  std::vector<std::uint64_t> offsets_;
};

class SeqDBReader {
 public:
  explicit SeqDBReader(const std::string& path);

  [[nodiscard]] std::size_t size() const noexcept { return offsets_.size(); }
  [[nodiscard]] bool has_quality() const noexcept { return store_quality_; }

  /// Record range [first, last) owned by rank r of n (balanced block split).
  [[nodiscard]] std::pair<std::size_t, std::size_t> partition(
      int rank, int nranks) const;

  [[nodiscard]] SeqRecord read(std::size_t i);
  [[nodiscard]] PackedRead read_packed(std::size_t i);
  [[nodiscard]] std::vector<PackedRead> read_packed_range(std::size_t lo,
                                                          std::size_t hi);

 private:
  mutable std::ifstream in_;
  bool store_quality_ = false;
  std::vector<std::uint64_t> offsets_;
};

/// One-time lossless conversion (the paper's FASTQ->SeqDB preprocessing).
void fastq_to_seqdb(const std::string& fastq_path, const std::string& db_path,
                    bool store_quality = true);

void write_seqdb(const std::string& path, const std::vector<SeqRecord>& recs,
                 bool store_quality = false);

}  // namespace mera::seq
