// Illumina-like short-read simulator.
//
// Produces the query side of the paper's workloads: reads sampled from a
// genome at depth d with substitution errors, optional paired-end structure
// (insert mean/sd as in the human dataset: 101 bp reads, 238 bp inserts),
// a junk fraction (unalignable reads), and occasional N bases. Read names
// encode ground truth (position/strand) so tests and benches can verify
// alignments. The output order is *grouped by genome position* by default —
// the paper observes the original files group reads by region, which is what
// the load-balancing permutation (Theorem 1) then randomizes.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "seq/fasta.hpp"  // SeqRecord

namespace mera::seq {

struct ReadSimParams {
  std::size_t read_len = 101;
  double depth = 10.0;              ///< mean coverage of each genome base
  double error_rate = 0.005;        ///< per-base substitution probability
  double junk_fraction = 0.01;      ///< reads that are pure random sequence
  double n_rate = 0.0005;           ///< per-base probability of an 'N'
  bool paired = false;
  std::size_t insert_mean = 238;
  std::size_t insert_sd = 30;
  bool grouped = true;              ///< emit reads in genome order (see above)
  std::uint64_t rng_seed = 42;
};

/// Ground truth parsed back out of a simulated read's name.
struct ReadTruth {
  std::size_t pos = 0;     ///< 0-based genome position of the read's 5' end
  bool reverse = false;    ///< sampled from the reverse strand
  bool junk = false;       ///< random sequence; should not align
};

[[nodiscard]] std::vector<SeqRecord> simulate_reads(std::string_view genome,
                                                    const ReadSimParams& p);

[[nodiscard]] ReadTruth parse_read_truth(std::string_view read_name);

}  // namespace mera::seq
