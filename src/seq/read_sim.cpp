#include "seq/read_sim.hpp"

#include <algorithm>
#include <random>
#include <stdexcept>

#include "seq/dna.hpp"

namespace mera::seq {

namespace {

struct Draft {
  std::size_t pos;
  bool reverse;
  bool junk;
  bool mate = false;  ///< second read of a pair (offset by insert)
  std::size_t insert = 0;
};

char random_base(std::mt19937_64& rng) {
  return decode_base(static_cast<std::uint8_t>(rng() & 3u));
}

char mutate(char c, std::mt19937_64& rng) {
  char m = c;
  while (m == c) m = random_base(rng);
  return m;
}

}  // namespace

std::vector<SeqRecord> simulate_reads(std::string_view genome,
                                      const ReadSimParams& p) {
  if (p.read_len == 0) throw std::invalid_argument("simulate_reads: read_len=0");
  if (genome.size() < p.read_len)
    throw std::invalid_argument("simulate_reads: genome shorter than read_len");
  std::mt19937_64 rng(p.rng_seed);
  std::uniform_real_distribution<double> unit(0.0, 1.0);

  const auto n_total = static_cast<std::size_t>(
      p.depth * static_cast<double>(genome.size()) /
      static_cast<double>(p.read_len));
  const std::size_t span = genome.size() - p.read_len;
  std::uniform_int_distribution<std::size_t> pos_dist(0, span);
  std::normal_distribution<double> insert_dist(
      static_cast<double>(p.insert_mean), static_cast<double>(p.insert_sd));

  // Draw fragment positions first so "grouped" ordering can sort them.
  // In paired mode mates are emitted adjacently (pair parity is preserved:
  // reads 2i and 2i+1 are always mates), with the fragment position drawn so
  // the whole insert fits in the genome.
  std::vector<Draft> drafts;
  drafts.reserve(n_total);
  while (drafts.size() < n_total) {
    Draft d{};
    d.junk = unit(rng) < p.junk_fraction;
    d.reverse = (rng() & 1u) != 0;
    if (p.paired && drafts.size() + 2 <= n_total) {
      // FR library geometry: the fragment's left end is sequenced forward,
      // the right end reverse (mates face each other). Which mate appears
      // first in the file is random (fragments come off either strand).
      auto insert = static_cast<std::size_t>(
          std::max<double>(static_cast<double>(p.read_len), insert_dist(rng)));
      insert = std::min(insert, genome.size());
      std::uniform_int_distribution<std::size_t> frag_pos(
          0, genome.size() - insert);
      d.pos = frag_pos(rng);
      d.reverse = false;  // left mate: forward
      Draft mate = d;     // junk pairs stay junk on both mates
      mate.mate = true;
      mate.insert = insert;
      mate.pos = d.pos + insert - p.read_len;  // right mate: fragment's far end
      mate.reverse = true;
      if ((rng() & 1u) != 0)
        std::swap(d, mate);  // file order randomized, geometry preserved
      drafts.push_back(d);
      drafts.push_back(mate);
      continue;
    }
    d.pos = pos_dist(rng);
    drafts.push_back(d);
  }

  if (p.grouped)
    std::stable_sort(drafts.begin(), drafts.end(),
                     [](const Draft& a, const Draft& b) { return a.pos < b.pos; });

  std::vector<SeqRecord> reads;
  reads.reserve(drafts.size());
  for (std::size_t i = 0; i < drafts.size(); ++i) {
    const Draft& d = drafts[i];
    SeqRecord rec;
    if (d.junk) {
      rec.seq.resize(p.read_len);
      for (auto& c : rec.seq) c = random_base(rng);
    } else {
      rec.seq = std::string(genome.substr(d.pos, p.read_len));
      if (d.reverse) rec.seq = reverse_complement(rec.seq);
      for (auto& c : rec.seq) {
        if (unit(rng) < p.error_rate) c = mutate(c, rng);
        if (unit(rng) < p.n_rate) c = 'N';
      }
    }
    rec.name = "r" + std::to_string(i) + ";pos=" + std::to_string(d.pos) +
               ";strand=" + (d.reverse ? "-" : "+") +
               (d.junk ? ";junk=1" : "");
    rec.qual.assign(p.read_len, 'I');  // avoids '@'/'+': FASTQ-heuristic safe
    reads.push_back(std::move(rec));
  }
  return reads;
}

ReadTruth parse_read_truth(std::string_view read_name) {
  ReadTruth t;
  const auto pos_at = read_name.find(";pos=");
  const auto strand_at = read_name.find(";strand=");
  if (pos_at == std::string_view::npos || strand_at == std::string_view::npos)
    throw std::invalid_argument("parse_read_truth: name lacks truth fields");
  const std::string pos_field(
      read_name.substr(pos_at + 5, strand_at - pos_at - 5));
  try {
    t.pos = std::stoull(pos_field);
  } catch (const std::exception&) {
    throw std::invalid_argument("parse_read_truth: read '" +
                                std::string(read_name) +
                                "' has a malformed pos field '" + pos_field +
                                "'");
  }
  if (strand_at + 8 >= read_name.size())
    throw std::invalid_argument("parse_read_truth: read '" +
                                std::string(read_name) +
                                "' ends before the strand character");
  t.reverse = read_name[strand_at + 8] == '-';
  t.junk = read_name.find(";junk=1") != std::string_view::npos;
  return t;
}

}  // namespace mera::seq
