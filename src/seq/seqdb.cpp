#include "seq/seqdb.hpp"

#include <cstring>
#include <stdexcept>

#include "seq/fastq.hpp"

namespace mera::seq {

namespace {

constexpr char kMagic[8] = {'M', 'E', 'R', 'A', 'S', 'D', 'B', '1'};
constexpr std::uint32_t kVersion = 1;
constexpr std::uint32_t kFlagQuality = 1u;
constexpr std::size_t kHeaderBytes = 32;

template <typename T>
void write_pod(std::ofstream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T read_pod(std::ifstream& in) {
  T v{};
  in.read(reinterpret_cast<char*>(&v), sizeof(T));
  if (!in) throw std::runtime_error("SeqDB: truncated file");
  return v;
}

}  // namespace

// ---------------------------------------------------------------------------
// SeqDBWriter
// ---------------------------------------------------------------------------

SeqDBWriter::SeqDBWriter(const std::string& path, bool store_quality)
    : out_(path, std::ios::binary), path_(path), store_quality_(store_quality) {
  if (!out_) throw std::runtime_error("SeqDB: cannot open for writing: " + path);
  out_.write(kMagic, sizeof(kMagic));
  write_pod(out_, kVersion);
  write_pod(out_, store_quality_ ? kFlagQuality : 0u);
  write_pod(out_, std::uint64_t{0});  // nrecords, backpatched
  write_pod(out_, std::uint64_t{0});  // index_offset, backpatched
}

SeqDBWriter::~SeqDBWriter() {
  try {
    finish();
  } catch (...) {
    // Destructor must not throw; an incomplete file fails magic-check on read.
  }
}

void SeqDBWriter::add(const SeqRecord& rec) {
  if (finished_) throw std::logic_error("SeqDB: add() after finish()");
  offsets_.push_back(static_cast<std::uint64_t>(out_.tellp()));

  const auto name_len = static_cast<std::uint16_t>(rec.name.size());
  if (rec.name.size() > 0xFFFF)
    throw std::invalid_argument("SeqDB: record name longer than 65535 bytes");
  write_pod(out_, name_len);
  out_.write(rec.name.data(), name_len);

  const auto seq_len = static_cast<std::uint32_t>(rec.seq.size());
  write_pod(out_, seq_len);
  std::vector<std::uint32_t> n_pos;
  for (std::uint32_t i = 0; i < seq_len; ++i)
    if (encode_base(rec.seq[i]) == kInvalidBase) n_pos.push_back(i);
  const PackedSeq packed(rec.seq);  // Ns degrade to 'A'; recorded in n_pos
  for (std::uint64_t w : packed.words()) write_pod(out_, w);
  write_pod(out_, static_cast<std::uint32_t>(n_pos.size()));
  for (std::uint32_t p : n_pos) write_pod(out_, p);

  if (store_quality_) {
    if (rec.qual.size() != rec.seq.size())
      throw std::invalid_argument(
          "SeqDB: quality/sequence length mismatch for record '" + rec.name +
          "'");
    out_.write(rec.qual.data(), static_cast<std::streamsize>(rec.qual.size()));
  }
  if (!out_) throw std::runtime_error("SeqDB: write failed: " + path_);
}

void SeqDBWriter::finish() {
  if (finished_) return;
  finished_ = true;
  const auto index_offset = static_cast<std::uint64_t>(out_.tellp());
  for (std::uint64_t off : offsets_) write_pod(out_, off);
  out_.seekp(16);
  write_pod(out_, static_cast<std::uint64_t>(offsets_.size()));
  write_pod(out_, index_offset);
  out_.flush();
  if (!out_) throw std::runtime_error("SeqDB: finalize failed: " + path_);
}

// ---------------------------------------------------------------------------
// SeqDBReader
// ---------------------------------------------------------------------------

SeqDBReader::SeqDBReader(const std::string& path) : in_(path, std::ios::binary) {
  if (!in_) throw std::runtime_error("SeqDB: cannot open for reading: " + path);
  char magic[8];
  in_.read(magic, sizeof(magic));
  if (!in_ || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
    throw std::runtime_error("SeqDB: bad magic (not a SeqDB file): " + path);
  const auto version = read_pod<std::uint32_t>(in_);
  if (version != kVersion)
    throw std::runtime_error("SeqDB: unsupported version");
  const auto flags = read_pod<std::uint32_t>(in_);
  store_quality_ = (flags & kFlagQuality) != 0;
  const auto nrecords = read_pod<std::uint64_t>(in_);
  const auto index_offset = read_pod<std::uint64_t>(in_);
  in_.seekg(static_cast<std::streamoff>(index_offset));
  offsets_.resize(nrecords);
  for (auto& off : offsets_) off = read_pod<std::uint64_t>(in_);
}

std::pair<std::size_t, std::size_t> SeqDBReader::partition(int rank,
                                                           int nranks) const {
  if (rank < 0 || nranks < 1 || rank >= nranks)
    throw std::invalid_argument("SeqDB::partition: bad rank/nranks");
  const std::size_t n = offsets_.size();
  const auto r = static_cast<std::size_t>(rank);
  const auto p = static_cast<std::size_t>(nranks);
  return {n * r / p, n * (r + 1) / p};
}

PackedRead SeqDBReader::read_packed(std::size_t i) {
  if (i >= offsets_.size()) throw std::out_of_range("SeqDB: record index");
  in_.seekg(static_cast<std::streamoff>(offsets_[i]));
  PackedRead rec;
  const auto name_len = read_pod<std::uint16_t>(in_);
  rec.name.resize(name_len);
  in_.read(rec.name.data(), name_len);
  const auto seq_len = read_pod<std::uint32_t>(in_);
  std::vector<std::uint64_t> words((seq_len + 31) / 32);
  for (auto& w : words) w = read_pod<std::uint64_t>(in_);
  rec.seq = PackedSeq::from_words(std::move(words), seq_len);
  const auto n_count = read_pod<std::uint32_t>(in_);
  rec.n_pos.resize(n_count);
  for (auto& p : rec.n_pos) p = read_pod<std::uint32_t>(in_);
  if (!in_) throw std::runtime_error("SeqDB: truncated record");
  return rec;
}

SeqRecord SeqDBReader::read(std::size_t i) {
  PackedRead pr = read_packed(i);
  SeqRecord rec;
  rec.name = std::move(pr.name);
  rec.seq = pr.seq.to_string();
  for (std::uint32_t p : pr.n_pos) rec.seq[p] = 'N';
  if (store_quality_) {
    rec.qual.resize(pr.seq.size());
    in_.read(rec.qual.data(), static_cast<std::streamsize>(rec.qual.size()));
    if (!in_) throw std::runtime_error("SeqDB: truncated quality");
  }
  return rec;
}

std::vector<PackedRead> SeqDBReader::read_packed_range(std::size_t lo,
                                                       std::size_t hi) {
  std::vector<PackedRead> out;
  out.reserve(hi - lo);
  for (std::size_t i = lo; i < hi; ++i) out.push_back(read_packed(i));
  return out;
}

// ---------------------------------------------------------------------------

void fastq_to_seqdb(const std::string& fastq_path, const std::string& db_path,
                    bool store_quality) {
  const auto recs = read_fastq(fastq_path);
  write_seqdb(db_path, recs, store_quality);
}

void write_seqdb(const std::string& path, const std::vector<SeqRecord>& recs,
                 bool store_quality) {
  SeqDBWriter w(path, store_quality);
  for (const auto& r : recs) w.add(r);
  w.finish();
}

}  // namespace mera::seq
