// Synthetic genome + contig generator.
//
// Stand-in for the paper's real datasets (human NA12878, wheat W7984,
// E. coli K-12): a random genome with controllable *repeat content* — repeats
// are what create multi-target seeds, defeat the exact-match optimization and
// trigger the max-alignments-per-seed threshold — chopped into Meraculous-like
// contigs (the targets reads are aligned onto during scaffolding).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "seq/fasta.hpp"  // SeqRecord

namespace mera::seq {

struct GenomeParams {
  std::size_t length = 1'000'000;
  /// Fraction of the genome covered by copies of repeat-family units.
  double repeat_fraction = 0.05;
  std::size_t repeat_unit_len = 400;
  int repeat_families = 4;
  /// Per-base substitution rate applied to each pasted repeat copy, so
  /// copies are near-identical rather than exact (as in real genomes).
  double repeat_divergence = 0.01;
  std::uint64_t rng_seed = 1;
};

[[nodiscard]] std::string simulate_genome(const GenomeParams& p);

struct ContigParams {
  std::size_t min_len = 800;
  std::size_t max_len = 5000;
  /// Unassembled gap between consecutive contigs (bases lost from the genome).
  std::size_t gap_min = 0;
  std::size_t gap_max = 150;
  std::uint64_t rng_seed = 2;
};

/// Chop a genome into contigs as a de novo assembler would produce them.
/// Contig names encode their genome interval ("contig<i>:<start>-<end>")
/// so tests can check alignments against ground truth.
[[nodiscard]] std::vector<SeqRecord> chop_into_contigs(std::string_view genome,
                                                       const ContigParams& p);

/// Genome coordinates encoded in a contig name produced by chop_into_contigs.
struct ContigTruth {
  std::size_t start = 0;
  std::size_t end = 0;
};
[[nodiscard]] ContigTruth parse_contig_truth(std::string_view contig_name);

}  // namespace mera::seq
