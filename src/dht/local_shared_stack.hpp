// Local-shared stacks: the landing zones of the "aggregating stores"
// optimization (Section III-A, Figure 4).
//
// Every rank owns a pre-allocated stack in shared space where *other* ranks
// deposit batches of hash-table entries destined for it. A writer reserves a
// disjoint slot range with a global atomic_fetchadd on the owner's stack_ptr
// (steps (a)+(b) of the paper), then writes the batch with one aggregate
// one-sided put (step (c)). Because ranges are disjoint, no locks are needed
// anywhere — this is what makes the resulting hash table lock-free.
#pragma once

#include <cstddef>
#include <span>
#include <stdexcept>
#include <vector>

#include "pgas/runtime.hpp"

namespace mera::dht {

template <typename T>
class LocalSharedStack {
 public:
  LocalSharedStack() : stack_ptr_(0) {}

  /// Owner pre-allocates capacity (exact incoming entry count is known from
  /// the counting pre-pass, so no overflow handling is needed at runtime).
  void allocate(int owner_rank, std::size_t capacity) {
    owner_ = owner_rank;
    storage_.resize(capacity);
    stack_ptr_.reset(owner_rank, 0);
  }

  /// Deposit `batch` into this stack (called by any rank). One global atomic
  /// + one aggregate transfer, regardless of batch size.
  void push_batch(pgas::Rank& rank, std::span<const T> batch) {
    if (batch.empty()) return;
    const std::uint64_t pos = rank.atomic_fetch_add(stack_ptr_, batch.size());
    if (pos + batch.size() > storage_.size())
      throw std::logic_error("LocalSharedStack overflow: counting pre-pass "
                             "and deposits disagree");
    rank.put(owner_, batch.data(), storage_.data() + pos, batch.size());
  }

  /// Entries deposited so far. Owner-side, to be called after the barrier
  /// that ends the deposit phase.
  [[nodiscard]] std::span<const T> drain_view() const noexcept {
    return {storage_.data(), stack_ptr_.load_unsync()};
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return storage_.size(); }
  [[nodiscard]] int owner() const noexcept { return owner_; }

 private:
  int owner_ = 0;
  std::vector<T> storage_;
  pgas::GlobalCounter stack_ptr_;
};

}  // namespace mera::dht
