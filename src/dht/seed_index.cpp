#include "dht/seed_index.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

namespace mera::dht {

namespace {
std::uint64_t next_pow2(std::uint64_t v) {
  return std::bit_ceil(std::max<std::uint64_t>(v, 16));
}
}  // namespace

SeedIndex::SeedIndex(const pgas::Topology& topo, Options opt)
    : opt_(opt),
      nranks_(topo.nranks()),
      stores_(static_cast<std::size_t>(topo.nranks())),
      stacks_(static_cast<std::size_t>(topo.nranks())),
      pending_counts_(static_cast<std::size_t>(topo.nranks()),
                      std::vector<std::uint64_t>(
                          static_cast<std::size_t>(topo.nranks()), 0)),
      aggregators_(static_cast<std::size_t>(topo.nranks())) {
  if (opt_.k < 1 || opt_.k > seq::kMaxSeedLen)
    throw std::invalid_argument("SeedIndex: k out of range [1,64]");
  if (opt_.buffer_S == 0)
    throw std::invalid_argument("SeedIndex: buffer_S must be >= 1");
  for (int r = 0; r < nranks_; ++r) incoming_.emplace_back(r, 0);
}

void SeedIndex::count_seed(pgas::Rank& rank, const seq::Kmer& seed) {
  ++pending_counts_[static_cast<std::size_t>(rank.id())]
                   [static_cast<std::size_t>(owner_of(seed))];
}

void SeedIndex::finish_count(pgas::Rank& rank) {
  const auto me = static_cast<std::size_t>(rank.id());
  for (int owner = 0; owner < nranks_; ++owner) {
    const std::uint64_t c = pending_counts_[me][static_cast<std::size_t>(owner)];
    if (c != 0)
      rank.atomic_fetch_add(incoming_[static_cast<std::size_t>(owner)], c);
  }
  rank.barrier();

  RankStore& st = stores_[me];
  const std::uint64_t total_in = incoming_[me].load_unsync();
  st.pool.resize(total_in);
  st.next_free.reset(rank.id(), 0);
  const std::uint64_t nbuckets = next_pow2(total_in * 2);
  st.heads.assign(nbuckets, 0);
  st.bucket_mask = nbuckets - 1;
  if (opt_.aggregating_stores) {
    stacks_[me].allocate(rank.id(), total_in);
    aggregators_[me] = std::make_unique<AggregatingStore<SeedEntry>>(
        nranks_, opt_.buffer_S, stacks_);
  }
  rank.barrier();
}

void SeedIndex::chain_insert_unsync(RankStore& st, const SeedEntry& e,
                                    std::uint32_t node_idx) {
  Node& n = st.pool[node_idx];
  n.entry = e;
  const std::uint64_t b = e.seed.mixed_hash() & st.bucket_mask;
  n.next = st.heads[b];
  st.heads[b] = node_idx + 1;
}

void SeedIndex::naive_remote_insert(pgas::Rank& rank, int owner,
                                    const SeedEntry& e) {
  RankStore& st = stores_[static_cast<std::size_t>(owner)];
  // One remote lock/slot acquisition + one fine-grained entry store: the
  // per-seed cost the aggregating optimization divides by S.
  const std::uint64_t idx = rank.atomic_fetch_add(st.next_free, 1);
  rank.charge_access(owner, sizeof(SeedEntry));
  Node& n = st.pool[idx];
  n.entry = e;
  const std::uint64_t b = e.seed.mixed_hash() & st.bucket_mask;
  const std::scoped_lock lk(st.stripes[b % kLockStripes]);
  n.next = st.heads[b];
  st.heads[b] = static_cast<std::uint32_t>(idx) + 1;
}

void SeedIndex::insert(pgas::Rank& rank, const seq::Kmer& seed, SeedHit hit) {
  const int owner = owner_of(seed);
  const SeedEntry e{seed, hit};
  if (opt_.aggregating_stores)
    aggregators_[static_cast<std::size_t>(rank.id())]->push(rank, owner, e);
  else
    naive_remote_insert(rank, owner, e);
}

void SeedIndex::finish_insert(pgas::Rank& rank) {
  const auto me = static_cast<std::size_t>(rank.id());
  if (opt_.aggregating_stores) {
    aggregators_[me]->flush_all(rank);
    rank.barrier();
    // Drain the local-shared stack into local buckets: no communication, no
    // locks (this is the lock-free payoff of Figure 4).
    RankStore& st = stores_[me];
    const auto view = stacks_[me].drain_view();
    for (const SeedEntry& e : view) {
      const std::uint64_t idx = st.next_free.load_unsync();
      st.next_free.store_unsync(idx + 1);
      chain_insert_unsync(st, e, static_cast<std::uint32_t>(idx));
      rank.charge_access(rank.id(), sizeof(SeedEntry));  // local op tally
    }
  }
  rank.barrier();
  build_buckets_and_mark(rank);
  rank.barrier();
}

void SeedIndex::build_buckets_and_mark(pgas::Rank& rank) {
  // Count per-seed occurrences (cheap, local — Section IV-A notes this comes
  // for free while owners hold their shard) and flag non-unique entries.
  RankStore& st = stores_[static_cast<std::size_t>(rank.id())];
  st.distinct = 0;
  std::vector<std::uint32_t> chain;
  for (const std::uint32_t head : st.heads) {
    chain.clear();
    for (std::uint32_t i = head; i != 0; i = st.pool[i - 1].next)
      chain.push_back(i - 1);
    // Chains are short (load factor <= 0.5); quadratic grouping is fine.
    std::vector<bool> seen(chain.size(), false);
    for (std::size_t a = 0; a < chain.size(); ++a) {
      if (seen[a]) continue;
      st.distinct += 1;
      std::size_t count = 1;
      for (std::size_t b = a + 1; b < chain.size(); ++b) {
        if (!seen[b] &&
            st.pool[chain[b]].entry.seed == st.pool[chain[a]].entry.seed) {
          seen[b] = true;
          ++count;
        }
      }
      if (count > 1) {
        st.pool[chain[a]].unique = false;
        for (std::size_t b = a + 1; b < chain.size(); ++b)
          if (st.pool[chain[b]].entry.seed == st.pool[chain[a]].entry.seed)
            st.pool[chain[b]].unique = false;
      }
    }
  }
}

std::size_t SeedIndex::lookup(pgas::Rank& rank, const seq::Kmer& seed,
                              std::size_t max_hits,
                              std::vector<SeedHit>& out) const {
  const int owner = owner_of(seed);
  const RankStore& st = stores_[static_cast<std::size_t>(owner)];
  std::size_t total = 0;
  std::size_t appended = 0;
  const std::uint64_t b = seed.mixed_hash() & st.bucket_mask;
  for (std::uint32_t i = st.heads[b]; i != 0; i = st.pool[i - 1].next) {
    const Node& n = st.pool[i - 1];
    if (n.entry.seed == seed) {
      ++total;
      if (appended < max_hits) {
        out.push_back(n.entry.hit);
        ++appended;
      }
    }
  }
  rank.charge_access(owner, lookup_transfer_bytes(appended));
  return total;
}

std::size_t SeedIndex::local_entries(int rank) const {
  return stores_[static_cast<std::size_t>(rank)].next_free.load_unsync();
}

std::size_t SeedIndex::local_distinct_seeds(int rank) const {
  return stores_[static_cast<std::size_t>(rank)].distinct;
}

std::size_t SeedIndex::total_entries() const {
  std::size_t n = 0;
  for (int r = 0; r < nranks_; ++r) n += local_entries(r);
  return n;
}

}  // namespace mera::dht
