// Per-destination aggregation buffers (Section III-A, Figure 4).
//
// Each rank keeps n-1 local buffers of S entries, one per remote rank. An
// entry destined for rank j goes into buffer j; when that buffer fills, one
// remote aggregate transfer pushes the whole batch into rank j's
// LocalSharedStack. The optimization trades S*(n-1) extra memory per rank for
// an S-fold reduction in both message count and atomic count.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "dht/local_shared_stack.hpp"
#include "pgas/runtime.hpp"

namespace mera::dht {

template <typename T>
class AggregatingStore {
 public:
  /// `stacks[j]` is rank j's landing stack; `S` is the buffer size tuning
  /// parameter (the paper uses S = 1000).
  AggregatingStore(int nranks, std::size_t S,
                   std::vector<LocalSharedStack<T>>& stacks)
      : S_(S), stacks_(&stacks), buffers_(static_cast<std::size_t>(nranks)) {
    for (auto& b : buffers_) b.reserve(S);
  }

  /// Queue one entry for rank `dest`; flushes the buffer when it reaches S.
  void push(pgas::Rank& rank, int dest, const T& entry) {
    auto& buf = buffers_[static_cast<std::size_t>(dest)];
    buf.push_back(entry);
    if (buf.size() >= S_) flush(rank, dest);
  }

  /// Flush one destination buffer (one atomic + one aggregate transfer).
  void flush(pgas::Rank& rank, int dest) {
    auto& buf = buffers_[static_cast<std::size_t>(dest)];
    if (buf.empty()) return;
    (*stacks_)[static_cast<std::size_t>(dest)].push_batch(
        rank, std::span<const T>(buf));
    buf.clear();
  }

  /// Flush every remaining partial buffer; call before the end-of-deposit
  /// barrier so no entries are left behind.
  void flush_all(pgas::Rank& rank) {
    for (int dest = 0; dest < static_cast<int>(buffers_.size()); ++dest)
      flush(rank, dest);
  }

  [[nodiscard]] std::size_t buffer_size() const noexcept { return S_; }

 private:
  std::size_t S_;
  std::vector<LocalSharedStack<T>>* stacks_;
  std::vector<std::vector<T>> buffers_;
};

}  // namespace mera::dht
