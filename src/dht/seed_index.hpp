// The distributed seed index (Sections II-B and III).
//
// A distributed hash table mapping each length-k seed extracted from the
// target fragments to the list of (fragment, offset) locations it came from.
// Buckets are partitioned across ranks by djb2(seed) mod nranks — the paper's
// seed-to-processor map. Construction runs in one of two modes:
//
//  * naive        — every seed incurs one fine-grained remote access plus one
//                   remote lock acquisition (modeled as a global atomic), the
//                   straw-man the paper starts from;
//  * aggregating  — per-destination buffers of S entries flushed with one
//                   atomic_fetchadd + one aggregate transfer into the owner's
//                   local-shared stack; owners later drain their stacks into
//                   buckets with *zero* communication and zero locks.
//
// Both modes share a counting pre-pass that tells each owner exactly how many
// entries it will receive (sizes the stack/pool; also what lets the index
// count seed occurrences for the exact-match optimization of Section IV-A).
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "dht/aggregating_store.hpp"
#include "dht/local_shared_stack.hpp"
#include "pgas/runtime.hpp"
#include "seq/kmer.hpp"

namespace mera::dht {

// A seed's location. Mirrors the paper's hash-table value — "a pointer to
// the target sequence ... we also keep track of the exact offset" — so that
// one lookup directly yields the candidate target with no extra resolution
// round-trip. fragment_id additionally identifies the index fragment whose
// single_copy_seeds flag gates the exact-match fast path.
struct SeedHit {
  std::uint32_t fragment_id = 0;  ///< global fragment id (core::TargetStore)
  std::uint32_t target_id = 0;    ///< global id of the parent target
  std::uint32_t t_pos = 0;        ///< seed start within the full target
  friend bool operator==(const SeedHit&, const SeedHit&) = default;
};

struct SeedEntry {
  seq::Kmer seed;
  SeedHit hit;
};

class SeedIndex {
 public:
  struct Options {
    int k = 51;
    bool aggregating_stores = true;
    std::size_t buffer_S = 1000;  ///< aggregation buffer size (paper: 1000)
  };

  SeedIndex(const pgas::Topology& topo, Options opt);
  SeedIndex(const SeedIndex&) = delete;
  SeedIndex& operator=(const SeedIndex&) = delete;

  [[nodiscard]] int k() const noexcept { return opt_.k; }
  [[nodiscard]] int owner_of(const seq::Kmer& seed) const noexcept {
    return static_cast<int>(seed.djb2() % static_cast<std::uint64_t>(nranks_));
  }

  // --- construction (three collective stages) -------------------------------

  /// Stage 1: tally one seed (local, cheap). Call for every local seed.
  void count_seed(pgas::Rank& rank, const seq::Kmer& seed);
  /// Stage 1 end: publish counts to owners, allocate stacks/pools (collective).
  void finish_count(pgas::Rank& rank);

  /// Stage 2: route one entry to its owner (mode-dependent cost).
  void insert(pgas::Rank& rank, const seq::Kmer& seed, SeedHit hit);
  /// Stage 2 end: flush buffers, drain stacks, build buckets (collective).
  void finish_insert(pgas::Rank& rank);

  // --- queries ---------------------------------------------------------------

  /// Look up a seed: appends up to `max_hits` locations to `out` and returns
  /// the *total* occurrence count of the seed in the index (0 = absent;
  /// > max_hits means the list was truncated — the Section IV-C threshold).
  /// Charges one request/response transfer when the owner is remote.
  /// After finish_insert() the table is immutable, so lookups are safe from
  /// any number of concurrent ranks — this is what lets an IndexedReference
  /// serve many AlignSession batches (and sessions) without copying.
  std::size_t lookup(pgas::Rank& rank, const seq::Kmer& seed,
                     std::size_t max_hits, std::vector<SeedHit>& out) const;

  /// Modeled response payload of a lookup that returned `nhits` hits.
  [[nodiscard]] static std::size_t lookup_transfer_bytes(std::size_t nhits) noexcept {
    return sizeof(seq::Kmer) + nhits * sizeof(SeedHit);
  }

  /// Exact-match preprocessing support: for every *local* entry whose seed
  /// occurs more than once index-wide, invoke fn(hit). Local, post-finalize.
  template <typename Fn>
  void for_each_local_duplicate_hit(pgas::Rank& rank, Fn&& fn) const {
    const auto& st = stores_[static_cast<std::size_t>(rank.id())];
    for (std::uint32_t head : st.heads) {
      for (std::uint32_t i = head; i != 0; i = st.pool[i - 1].next) {
        const Node& n = st.pool[i - 1];
        if (!n.unique) fn(n.entry.hit);
      }
    }
  }

  // --- diagnostics -----------------------------------------------------------

  [[nodiscard]] std::size_t local_entries(int rank) const;
  [[nodiscard]] std::size_t local_distinct_seeds(int rank) const;
  [[nodiscard]] std::size_t total_entries() const;

 private:
  struct Node {
    SeedEntry entry;
    std::uint32_t next = 0;  ///< 1-based chain link; 0 = end
    bool unique = true;      ///< seed occurs exactly once index-wide
  };

  static constexpr std::size_t kLockStripes = 256;

  /// Owner-side state for the rank's shard of the table.
  struct RankStore {
    std::vector<std::uint32_t> heads;  ///< 1-based indices into pool
    std::vector<Node> pool;
    pgas::GlobalCounter next_free;  ///< slot allocator; the naive-mode "lock"
    std::array<std::mutex, kLockStripes> stripes;  ///< naive bucket protection
    std::uint64_t bucket_mask = 0;
    std::size_t distinct = 0;
  };

  void naive_remote_insert(pgas::Rank& rank, int owner, const SeedEntry& e);
  static void chain_insert_unsync(RankStore& st, const SeedEntry& e,
                                  std::uint32_t node_idx);
  void build_buckets_and_mark(pgas::Rank& rank);

  Options opt_;
  int nranks_;
  std::vector<RankStore> stores_;                    // per rank
  std::vector<LocalSharedStack<SeedEntry>> stacks_;  // per rank (agg mode)
  // deque: GlobalCounter is immovable (atomic member); deque constructs in place
  std::deque<pgas::GlobalCounter> incoming_;         // per rank entry counts
  // Construction-time per-caller state, indexed by rank id.
  std::vector<std::vector<std::uint64_t>> pending_counts_;
  std::vector<std::unique_ptr<AggregatingStore<SeedEntry>>> aggregators_;
};

}  // namespace mera::dht
