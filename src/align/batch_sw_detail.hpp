// Internal plumbing for the inter-candidate batch SW engine: the argument
// blocks the per-ISA translation units fill in, and the function table the
// dispatcher selects at runtime. Nothing here is part of the public API —
// include batch_sw.hpp instead.
#pragma once

#include <cstddef>
#include <cstdint>

namespace mera::align::detail {

/// Target columns are padded with 0xFF past len[l]; query rows are padded
/// with 0xFE past qlen[l]. DNA codes are 0–3, so neither pad ever equals a
/// residue code — and the two pads never equal each other, so a padded row
/// meeting a padded column still scores a mismatch. With mismatch <= 0 and
/// both gap penalties >= 0 every cell in a padded row derives from real
/// cells through non-increasing operations, so a padded row can never
/// STRICTLY exceed the running best — and the strict `>` best-update means
/// score / t_end / saturation are untouched by row padding. BatchSwScorer
/// verifies that precondition and falls back to per-pair scoring for exotic
/// scoring schemes that violate it.
inline constexpr std::uint8_t kTargetPadCode = 0xFF;
inline constexpr std::uint8_t kQueryPadCode = 0xFE;

/// One 8-bit lane-group pass: scores `lanes8` candidates, one query/target
/// pair per lane, in saturating unsigned arithmetic (values biased by
/// `bias`, exactly like the striped kernel's 8-bit pass, so saturation —
/// and therefore used_16bit — is bit-identical per pair).
struct BatchPass8Args {
  /// Interleaved queries: qbuf[i * lanes + l] = code of lane l's query at
  /// row i, padded with kQueryPadCode past qlen[l].
  const std::uint8_t* qbuf = nullptr;
  const std::size_t* qlen = nullptr;  ///< per-lane query length
  std::size_t m = 0;                  ///< max(qlen), rows in qbuf
  /// Interleaved targets: tbuf[j * lanes + l] = code of candidate l at
  /// column j, padded with kTargetPadCode past len[l].
  const std::uint8_t* tbuf = nullptr;
  const std::size_t* len = nullptr;  ///< per-lane target length
  std::size_t nmax = 0;              ///< max(len), columns in tbuf
  int match_bias = 0;     ///< scoring.match + bias   (fits u8)
  int mismatch_bias = 0;  ///< scoring.mismatch + bias (>= 0 by construction)
  int bias = 0;           ///< max(0, -scoring.mismatch)
  int gap_open_total = 0;  ///< gap_open + gap_extend
  int gap_extend = 0;
  // Outputs, one per lane. Lanes with len[l] == 0 are left untouched.
  int* best = nullptr;           ///< best score (exact unless saturated)
  std::size_t* t_end = nullptr;  ///< smallest column achieving best
  std::uint8_t* saturated = nullptr;  ///< best >= 255 - bias: rerun in 16-bit
};

/// One 16-bit lane-group pass for candidates whose 8-bit lane saturated.
/// Signed arithmetic with an explicit zero floor, mirroring striped_i16.
struct BatchPass16Args {
  /// Interleaved queries as int16 codes, padded with kQueryPadCode past
  /// qlen[l].
  const std::int16_t* qbuf = nullptr;
  const std::size_t* qlen = nullptr;  ///< per-lane query length
  std::size_t m = 0;                  ///< max(qlen), rows in qbuf
  /// Interleaved targets as int16 codes, padded with kTargetPadCode past
  /// len[l].
  const std::int16_t* tbuf = nullptr;
  const std::size_t* len = nullptr;
  std::size_t nmax = 0;
  int match = 0;
  int mismatch = 0;
  int gap_open_total = 0;
  int gap_extend = 0;
  int* best = nullptr;
  std::size_t* t_end = nullptr;
  std::uint8_t* saturated = nullptr;  ///< best >= 32767: scalar rerun
};

/// Per-ISA function table. Each per-ISA TU exposes its table when the build
/// compiled that tier in, nullptr otherwise; the dispatcher in batch_sw.cpp
/// picks one per resolved SwIsa.
struct BatchKernel {
  int lanes8 = 0;   ///< candidates per 8-bit group (16 / 32 / 64)
  int lanes16 = 0;  ///< candidates per 16-bit group (8 / 16 / 32)
  void (*pass8)(const BatchPass8Args&) = nullptr;
  void (*pass16)(const BatchPass16Args&) = nullptr;
};

/// Compiled-in kernels, or nullptr when the toolchain/build excludes the
/// tier (non-x86, missing -mavx2/-mavx512bw support, MERA_FORCE_SCALAR_SW).
const BatchKernel* batch_kernel_sse2() noexcept;
const BatchKernel* batch_kernel_avx2() noexcept;
const BatchKernel* batch_kernel_avx512() noexcept;

}  // namespace mera::align::detail
