// CIGAR strings for alignment results (SAM conventions: M/I/D/S).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace mera::align {

enum class CigarOp : char {
  kMatch = 'M',     ///< alignment column (match or mismatch)
  kInsert = 'I',    ///< base present in query, absent in target
  kDelete = 'D',    ///< base present in target, absent in query
  kSoftClip = 'S',  ///< query base not part of the local alignment
};

struct CigarElem {
  CigarOp op;
  std::uint32_t len;
  friend bool operator==(const CigarElem&, const CigarElem&) = default;
};

class Cigar {
 public:
  Cigar() = default;

  /// Append, merging with the trailing element when ops match.
  void push(CigarOp op, std::uint32_t len);

  [[nodiscard]] const std::vector<CigarElem>& elems() const noexcept {
    return elems_;
  }
  [[nodiscard]] bool empty() const noexcept { return elems_.empty(); }

  /// Query bases consumed (M, I, S).
  [[nodiscard]] std::size_t query_span() const noexcept;
  /// Target bases consumed (M, D).
  [[nodiscard]] std::size_t target_span() const noexcept;

  [[nodiscard]] std::string to_string() const;
  static Cigar parse(const std::string& text);

  void reverse() noexcept;

  friend bool operator==(const Cigar&, const Cigar&) = default;

 private:
  std::vector<CigarElem> elems_;
};

}  // namespace mera::align
