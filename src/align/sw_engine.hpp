// Generic affine-gap local-alignment DP engine with traceback.
//
// Templated on the substitution function so the same verified kernel serves
// DNA match/mismatch scoring and protein substitution matrices (BLOSUM62) —
// the paper's conclusion notes the approach extends to protein alphabets
// with "minor changes to the underlying protocols".
#pragma once

#include <algorithm>
#include <climits>
#include <cstdint>
#include <span>
#include <vector>

#include "align/cigar.hpp"

namespace mera::align {

struct LocalAlignment;  // defined in smith_waterman.hpp

namespace detail {

// Provenance bits per DP cell for affine traceback.
// bits 0-1: H source (0 = local-zero stop, 1 = diagonal, 2 = E, 3 = F)
// bit 2: E extended an existing target-gap run; bit 3: same for F.
inline constexpr std::uint8_t kHDiag = 1, kHFromE = 2, kHFromF = 3;
inline constexpr std::uint8_t kEExt = 4, kFExt = 8;
inline constexpr int kNegInf = INT_MIN / 4;

/// Full-DP local alignment; SubstFn: int(code_q, code_t).
/// Result is written into the LocalAlignment-compatible output fields via
/// the Out struct to avoid a circular include.
struct SwOut {
  int score = 0;
  std::size_t q_begin = 0, q_end = 0, t_begin = 0, t_end = 0;
  Cigar cigar;
  int mismatches = 0;
  int gap_columns = 0;
};

template <typename SubstFn>
SwOut sw_align(std::span<const std::uint8_t> query,
               std::span<const std::uint8_t> target, SubstFn&& sub,
               int gap_open, int gap_extend) {
  const std::size_t m = query.size(), n = target.size();
  SwOut out;
  if (m == 0 || n == 0) return out;

  const int go = gap_open + gap_extend;  // cost of a gap's first base
  const int ge = gap_extend;

  std::vector<int> H(n + 1, 0), Hprev(n + 1, 0), Fv(n + 1, kNegInf);
  std::vector<std::uint8_t> prov((m + 1) * (n + 1), 0);

  int best = 0;
  std::size_t best_i = 0, best_j = 0;

  for (std::size_t i = 1; i <= m; ++i) {
    std::swap(Hprev, H);
    H[0] = 0;
    int E = kNegInf;
    for (std::size_t j = 1; j <= n; ++j) {
      std::uint8_t p = 0;
      const int e_open = H[j - 1] - go;
      const int e_ext = E - ge;
      if (e_ext >= e_open) {
        E = e_ext;
        p |= kEExt;
      } else {
        E = e_open;
      }
      const int f_open = Hprev[j] - go;
      const int f_ext = Fv[j] - ge;
      if (f_ext >= f_open) {
        Fv[j] = f_ext;
        p |= kFExt;
      } else {
        Fv[j] = f_open;
      }
      const int diag = Hprev[j - 1] + sub(query[i - 1], target[j - 1]);
      int h = 0;
      std::uint8_t hsrc = 0;
      if (diag > h) { h = diag; hsrc = kHDiag; }
      if (E > h) { h = E; hsrc = kHFromE; }
      if (Fv[j] > h) { h = Fv[j]; hsrc = kHFromF; }
      H[j] = h;
      prov[i * (n + 1) + j] = static_cast<std::uint8_t>(p | hsrc);
      if (h > best) {
        best = h;
        best_i = i;
        best_j = j;
      }
    }
  }

  out.score = best;
  if (best == 0) {
    out.cigar.push(CigarOp::kSoftClip, static_cast<std::uint32_t>(m));
    return out;
  }

  Cigar rev;
  std::size_t i = best_i, j = best_j;
  enum class State { kH, kE, kF } state = State::kH;
  while (i > 0 && j > 0) {
    const std::uint8_t p = prov[i * (n + 1) + j];
    if (state == State::kH) {
      const std::uint8_t hsrc = p & 3u;
      if (hsrc == 0) break;
      if (hsrc == kHDiag) {
        rev.push(CigarOp::kMatch, 1);
        if (query[i - 1] != target[j - 1]) ++out.mismatches;
        --i;
        --j;
      } else if (hsrc == kHFromE) {
        state = State::kE;
      } else {
        state = State::kF;
      }
    } else if (state == State::kE) {
      rev.push(CigarOp::kDelete, 1);
      ++out.gap_columns;
      const bool ext = (p & kEExt) != 0;
      --j;
      if (!ext) state = State::kH;
    } else {
      rev.push(CigarOp::kInsert, 1);
      ++out.gap_columns;
      const bool ext = (p & kFExt) != 0;
      --i;
      if (!ext) state = State::kH;
    }
  }

  out.q_begin = i;
  out.q_end = best_i;
  out.t_begin = j;
  out.t_end = best_j;
  out.cigar.push(CigarOp::kSoftClip, static_cast<std::uint32_t>(i));
  rev.reverse();
  for (const auto& e : rev.elems()) out.cigar.push(e.op, e.len);
  out.cigar.push(CigarOp::kSoftClip, static_cast<std::uint32_t>(m - best_i));
  return out;
}

}  // namespace detail
}  // namespace mera::align
