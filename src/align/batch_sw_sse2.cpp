// SSE2 tier of the batch scorer: 16 candidates per 8-bit group, 8 per
// 16-bit group. Compiled with the default x86-64 flags (SSE2 is baseline).
#include "align/batch_sw_detail.hpp"

#if defined(__SSE2__) && !defined(MERA_FORCE_SCALAR_SW)

#include <emmintrin.h>

#include "align/batch_sw_kernel.hpp"

namespace mera::align::detail {
namespace {

struct Sse2Traits {
  using V = __m128i;
  static constexpr int kLanes8 = 16;
  static constexpr int kLanes16 = 8;

  static V zero() { return _mm_setzero_si128(); }
  static V load(const void* p) {
    return _mm_loadu_si128(static_cast<const __m128i*>(p));
  }
  static void store(void* p, V v) {
    _mm_storeu_si128(static_cast<__m128i*>(p), v);
  }

  static V set1_u8(std::uint8_t x) {
    return _mm_set1_epi8(static_cast<char>(x));
  }
  static V adds_u8(V a, V b) { return _mm_adds_epu8(a, b); }
  static V subs_u8(V a, V b) { return _mm_subs_epu8(a, b); }
  static V max_u8(V a, V b) { return _mm_max_epu8(a, b); }
  static V sel_eq8(V t, V q, V a, V b) {
    const V eq = _mm_cmpeq_epi8(t, q);
    return _mm_or_si128(_mm_and_si128(eq, a), _mm_andnot_si128(eq, b));
  }

  static V set1_i16(std::int16_t x) { return _mm_set1_epi16(x); }
  static V adds_i16(V a, V b) { return _mm_adds_epi16(a, b); }
  static V subs_i16(V a, V b) { return _mm_subs_epi16(a, b); }
  static V max_i16(V a, V b) { return _mm_max_epi16(a, b); }
  static V sel_eq16(V t, V q, V a, V b) {
    const V eq = _mm_cmpeq_epi16(t, q);
    return _mm_or_si128(_mm_and_si128(eq, a), _mm_andnot_si128(eq, b));
  }
};

const BatchKernel kKernel = {Sse2Traits::kLanes8, Sse2Traits::kLanes16,
                             &batch_pass8<Sse2Traits>,
                             &batch_pass16<Sse2Traits>};

}  // namespace

const BatchKernel* batch_kernel_sse2() noexcept { return &kKernel; }

}  // namespace mera::align::detail

#else  // !__SSE2__ || MERA_FORCE_SCALAR_SW

namespace mera::align::detail {
const BatchKernel* batch_kernel_sse2() noexcept { return nullptr; }
}  // namespace mera::align::detail

#endif
