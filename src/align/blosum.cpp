#include "align/blosum.hpp"

#include "align/sw_engine.hpp"
#include "seq/protein.hpp"

namespace mera::align {

const SubstMatrix& blosum62() noexcept {
  // NCBI BLOSUM62, rows/cols in "ARNDCQEGHILKMFPSTWYVBZX*" order.
  static const SubstMatrix m = {{
      //         A   R   N   D   C   Q   E   G   H   I   L   K   M   F   P   S   T   W   Y   V   B   Z   X   *
      /* A */ {{ 4, -1, -2, -2,  0, -1, -1,  0, -2, -1, -1, -1, -1, -2, -1,  1,  0, -3, -2,  0, -2, -1,  0, -4}},
      /* R */ {{-1,  5,  0, -2, -3,  1,  0, -2,  0, -3, -2,  2, -1, -3, -2, -1, -1, -3, -2, -3, -1,  0, -1, -4}},
      /* N */ {{-2,  0,  6,  1, -3,  0,  0,  0,  1, -3, -3,  0, -2, -3, -2,  1,  0, -4, -2, -3,  3,  0, -1, -4}},
      /* D */ {{-2, -2,  1,  6, -3,  0,  2, -1, -1, -3, -4, -1, -3, -3, -1,  0, -1, -4, -3, -3,  4,  1, -1, -4}},
      /* C */ {{ 0, -3, -3, -3,  9, -3, -4, -3, -3, -1, -1, -3, -1, -2, -3, -1, -1, -2, -2, -1, -3, -3, -2, -4}},
      /* Q */ {{-1,  1,  0,  0, -3,  5,  2, -2,  0, -3, -2,  1,  0, -3, -1,  0, -1, -2, -1, -2,  0,  3, -1, -4}},
      /* E */ {{-1,  0,  0,  2, -4,  2,  5, -2,  0, -3, -3,  1, -2, -3, -1,  0, -1, -3, -2, -2,  1,  4, -1, -4}},
      /* G */ {{ 0, -2,  0, -1, -3, -2, -2,  6, -2, -4, -4, -2, -3, -3, -2,  0, -2, -2, -3, -3, -1, -2, -1, -4}},
      /* H */ {{-2,  0,  1, -1, -3,  0,  0, -2,  8, -3, -3, -1, -2, -1, -2, -1, -2, -2,  2, -3,  0,  0, -1, -4}},
      /* I */ {{-1, -3, -3, -3, -1, -3, -3, -4, -3,  4,  2, -3,  1,  0, -3, -2, -1, -3, -1,  3, -3, -3, -1, -4}},
      /* L */ {{-1, -2, -3, -4, -1, -2, -3, -4, -3,  2,  4, -2,  2,  0, -3, -2, -1, -2, -1,  1, -4, -3, -1, -4}},
      /* K */ {{-1,  2,  0, -1, -3,  1,  1, -2, -1, -3, -2,  5, -1, -3, -1,  0, -1, -3, -2, -2,  0,  1, -1, -4}},
      /* M */ {{-1, -1, -2, -3, -1,  0, -2, -3, -2,  1,  2, -1,  5,  0, -2, -1, -1, -1, -1,  1, -3, -1, -1, -4}},
      /* F */ {{-2, -3, -3, -3, -2, -3, -3, -3, -1,  0,  0, -3,  0,  6, -4, -2, -2,  1,  3, -1, -3, -3, -1, -4}},
      /* P */ {{-1, -2, -2, -1, -3, -1, -1, -2, -2, -3, -3, -1, -2, -4,  7, -1, -1, -4, -3, -2, -2, -1, -2, -4}},
      /* S */ {{ 1, -1,  1,  0, -1,  0,  0,  0, -1, -2, -2,  0, -1, -2, -1,  4,  1, -3, -2, -2,  0,  0,  0, -4}},
      /* T */ {{ 0, -1,  0, -1, -1, -1, -1, -2, -2, -1, -1, -1, -1, -2, -1,  1,  5, -2, -2,  0, -1, -1,  0, -4}},
      /* W */ {{-3, -3, -4, -4, -2, -2, -3, -2, -2, -3, -2, -3, -1,  1, -4, -3, -2, 11,  2, -3, -4, -3, -2, -4}},
      /* Y */ {{-2, -2, -2, -3, -2, -1, -2, -3,  2, -1, -1, -2, -1,  3, -3, -2, -2,  2,  7, -1, -3, -2, -1, -4}},
      /* V */ {{ 0, -3, -3, -3, -1, -2, -2, -3, -3,  3,  1, -2,  1, -1, -2, -2,  0, -3, -1,  4, -3, -2, -1, -4}},
      /* B */ {{-2, -1,  3,  4, -3,  0,  1, -1,  0, -3, -4,  0, -3, -3, -2,  0, -1, -4, -3, -3,  4,  1, -1, -4}},
      /* Z */ {{-1,  0,  0,  1, -3,  3,  4, -2,  0, -3, -3,  1, -1, -3, -1,  0, -1, -3, -2, -2,  1,  4, -1, -4}},
      /* X */ {{ 0, -1, -1, -1, -2, -1, -1, -1, -1, -1, -1, -1, -1, -1, -2,  0,  0, -2, -1, -1, -1, -1, -1, -4}},
      /* * */ {{-4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4,  1}},
  }};
  return m;
}

namespace {

LocalAlignment from_engine(detail::SwOut&& o) {
  LocalAlignment a;
  a.score = o.score;
  a.q_begin = o.q_begin;
  a.q_end = o.q_end;
  a.t_begin = o.t_begin;
  a.t_end = o.t_end;
  a.cigar = std::move(o.cigar);
  a.mismatches = o.mismatches;
  a.gap_columns = o.gap_columns;
  return a;
}

}  // namespace

LocalAlignment smith_waterman_matrix(std::span<const std::uint8_t> query,
                                     std::span<const std::uint8_t> target,
                                     const MatrixScoring& sc) {
  const SubstMatrix& m = sc.mat();
  return from_engine(detail::sw_align(
      query, target,
      [&m](std::uint8_t a, std::uint8_t b) {
        return m[a][b];
      },
      sc.gap_open, sc.gap_extend));
}

LocalAlignment smith_waterman_protein(std::string_view query,
                                      std::string_view target,
                                      const MatrixScoring& sc) {
  const auto q = seq::protein_codes(query);
  const auto t = seq::protein_codes(target);
  return smith_waterman_matrix(std::span<const std::uint8_t>(q),
                               std::span<const std::uint8_t>(t), sc);
}

}  // namespace mera::align
