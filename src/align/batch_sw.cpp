#include "align/batch_sw.hpp"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>
#include <string>

#include "align/batch_sw_detail.hpp"

namespace mera::align {

namespace {

/// Padding code for lanes past their target's end: never equal to a residue
/// code, so padded columns can only score as mismatches (and are excluded
/// from best/t_end tracking anyway).
constexpr std::uint8_t kPadCode = 0xFF;

// __builtin_cpu_supports needs a string literal, hence one probe per tier.
#if defined(__x86_64__) || defined(__i386__)
bool cpu_has_sse2() noexcept { return __builtin_cpu_supports("sse2"); }
bool cpu_has_avx2() noexcept { return __builtin_cpu_supports("avx2"); }
bool cpu_has_avx512() noexcept { return __builtin_cpu_supports("avx512bw"); }
#else
bool cpu_has_sse2() noexcept { return false; }
bool cpu_has_avx2() noexcept { return false; }
bool cpu_has_avx512() noexcept { return false; }
#endif

const detail::BatchKernel* kernel_for(SwIsa isa) noexcept {
  switch (isa) {
    case SwIsa::kSse2:
      return detail::batch_kernel_sse2();
    case SwIsa::kAvx2:
      return detail::batch_kernel_avx2();
    case SwIsa::kAvx512:
      return detail::batch_kernel_avx512();
    default:
      return nullptr;
  }
}

}  // namespace

const char* isa_name(SwIsa isa) noexcept {
  switch (isa) {
    case SwIsa::kAuto:
      return "auto";
    case SwIsa::kScalar:
      return "scalar";
    case SwIsa::kSse2:
      return "sse2";
    case SwIsa::kAvx2:
      return "avx2";
    case SwIsa::kAvx512:
      return "avx512";
  }
  return "?";
}

std::optional<SwIsa> parse_isa(std::string_view name) noexcept {
  if (name == "auto") return SwIsa::kAuto;
  if (name == "scalar") return SwIsa::kScalar;
  if (name == "sse2") return SwIsa::kSse2;
  if (name == "avx2") return SwIsa::kAvx2;
  if (name == "avx512") return SwIsa::kAvx512;
  return std::nullopt;
}

bool isa_supported(SwIsa isa) noexcept {
  switch (isa) {
    case SwIsa::kAuto:
    case SwIsa::kScalar:
      return true;
    case SwIsa::kSse2:
      return kernel_for(isa) != nullptr && cpu_has_sse2();
    case SwIsa::kAvx2:
      return kernel_for(isa) != nullptr && cpu_has_avx2();
    case SwIsa::kAvx512:
      return kernel_for(isa) != nullptr && cpu_has_avx512();
  }
  return false;
}

SwIsa detect_isa() noexcept {
  for (SwIsa isa : {SwIsa::kAvx512, SwIsa::kAvx2, SwIsa::kSse2})
    if (isa_supported(isa)) return isa;
  return SwIsa::kScalar;
}

SwIsa resolve_isa(SwIsa requested) {
  SwIsa isa = requested;
  if (isa == SwIsa::kAuto) {
    // Re-read the environment on every resolve (not cached) so tests can
    // setenv/unsetenv MERA_SW_ISA between scorer constructions.
    if (const char* env = std::getenv("MERA_SW_ISA"); env && *env) {
      const auto parsed = parse_isa(env);
      if (!parsed)
        throw std::invalid_argument(
            std::string("MERA_SW_ISA: unknown ISA '") + env +
            "' (expected auto|scalar|sse2|avx2|avx512)");
      isa = *parsed;
    }
  }
  if (isa == SwIsa::kAuto) return detect_isa();
  if (!isa_supported(isa))
    throw std::invalid_argument(
        std::string("SW ISA '") + isa_name(isa) +
        "' is not available (not compiled in or not supported by this CPU)");
  return isa;
}

BatchSwScorer::BatchSwScorer(std::span<const std::uint8_t> query_codes,
                             const Scoring& sc, SwIsa isa)
    : query_(query_codes.begin(), query_codes.end()),
      sc_(sc),
      isa_(resolve_isa(isa)) {
  bias_ = std::max(0, -sc_.mismatch);
}

std::size_t BatchSwScorer::add(std::span<const std::uint8_t> target_codes) {
  offs_.push_back(pool_.size());
  lens_.push_back(target_codes.size());
  pool_.insert(pool_.end(), target_codes.begin(), target_codes.end());
  return lens_.size() - 1;
}

std::vector<StripedResult> BatchSwScorer::flush() {
  const std::size_t n = lens_.size();
  std::vector<StripedResult> out(n);  // empty query/target lanes stay {0,0,0}

  // Candidates worth scoring; everything else keeps the default result,
  // matching StripedSmithWaterman::align on empty inputs.
  std::vector<std::size_t> live;
  if (!query_.empty())
    for (std::size_t c = 0; c < n; ++c)
      if (lens_[c] > 0) live.push_back(c);

  const detail::BatchKernel* kernel =
      isa_ == SwIsa::kScalar ? nullptr : kernel_for(isa_);
  const std::span<const std::uint8_t> q(query_);

  if (kernel == nullptr) {
    for (std::size_t c : live)
      out[c] = striped_scalar_score(
          q, std::span<const std::uint8_t>(pool_.data() + offs_[c], lens_[c]),
          sc_);
    pool_.clear();
    offs_.clear();
    lens_.clear();
    return out;
  }

  const int go = sc_.gap_open + sc_.gap_extend;
  const int ge = sc_.gap_extend;

  // 8-bit sweep over lane groups; saturated lanes queue for the 16-bit pass.
  std::vector<std::size_t> escalate;
  {
    const std::size_t L = static_cast<std::size_t>(kernel->lanes8);
    std::vector<std::size_t> len(L);
    std::vector<int> best(L);
    std::vector<std::size_t> t_end(L);
    std::vector<std::uint8_t> sat(L);
    for (std::size_t g = 0; g < live.size(); g += L) {
      const std::size_t gn = std::min(L, live.size() - g);
      std::fill(len.begin(), len.end(), std::size_t{0});
      std::size_t nmax = 0;
      for (std::size_t l = 0; l < gn; ++l) {
        len[l] = lens_[live[g + l]];
        nmax = std::max(nmax, len[l]);
      }
      tbuf8_.assign(nmax * L, kPadCode);
      for (std::size_t l = 0; l < gn; ++l) {
        const std::uint8_t* src = pool_.data() + offs_[live[g + l]];
        for (std::size_t j = 0; j < len[l]; ++j) tbuf8_[j * L + l] = src[j];
      }
      std::fill(sat.begin(), sat.end(), std::uint8_t{0});
      detail::BatchPass8Args args;
      args.query = query_.data();
      args.m = query_.size();
      args.tbuf = tbuf8_.data();
      args.len = len.data();
      args.nmax = nmax;
      args.match_bias = sc_.match + bias_;
      args.mismatch_bias = sc_.mismatch + bias_;
      args.bias = bias_;
      args.gap_open_total = go;
      args.gap_extend = ge;
      args.best = best.data();
      args.t_end = t_end.data();
      args.saturated = sat.data();
      kernel->pass8(args);
      for (std::size_t l = 0; l < gn; ++l) {
        const std::size_t c = live[g + l];
        if (sat[l]) {
          escalate.push_back(c);
        } else {
          out[c] = {best[l], t_end[l], false};
        }
      }
    }
  }

  // 16-bit rescore of saturated candidates, same grouping scheme.
  if (!escalate.empty()) {
    const std::size_t L = static_cast<std::size_t>(kernel->lanes16);
    std::vector<std::size_t> len(L);
    std::vector<int> best(L);
    std::vector<std::size_t> t_end(L);
    std::vector<std::uint8_t> sat(L);
    for (std::size_t g = 0; g < escalate.size(); g += L) {
      const std::size_t gn = std::min(L, escalate.size() - g);
      std::fill(len.begin(), len.end(), std::size_t{0});
      std::size_t nmax = 0;
      for (std::size_t l = 0; l < gn; ++l) {
        len[l] = lens_[escalate[g + l]];
        nmax = std::max(nmax, len[l]);
      }
      tbuf16_.assign(nmax * L, static_cast<std::int16_t>(kPadCode));
      for (std::size_t l = 0; l < gn; ++l) {
        const std::uint8_t* src = pool_.data() + offs_[escalate[g + l]];
        for (std::size_t j = 0; j < len[l]; ++j)
          tbuf16_[j * L + l] = static_cast<std::int16_t>(src[j]);
      }
      std::fill(sat.begin(), sat.end(), std::uint8_t{0});
      detail::BatchPass16Args args;
      args.query = query_.data();
      args.m = query_.size();
      args.tbuf = tbuf16_.data();
      args.len = len.data();
      args.nmax = nmax;
      args.match = sc_.match;
      args.mismatch = sc_.mismatch;
      args.gap_open_total = go;
      args.gap_extend = ge;
      args.best = best.data();
      args.t_end = t_end.data();
      args.saturated = sat.data();
      kernel->pass16(args);
      for (std::size_t l = 0; l < gn; ++l) {
        const std::size_t c = escalate[g + l];
        if (sat[l]) {
          // 16-bit saturation too (score >= 32767): exact scalar backstop.
          out[c] = striped_scalar_score(
              q,
              std::span<const std::uint8_t>(pool_.data() + offs_[c], lens_[c]),
              sc_);
          out[c].used_16bit = true;
        } else {
          out[c] = {best[l], t_end[l], true};
        }
      }
    }
  }

  pool_.clear();
  offs_.clear();
  lens_.clear();
  return out;
}

std::vector<StripedResult> batch_sw_scores(
    std::span<const std::uint8_t> query,
    std::span<const std::vector<std::uint8_t>> targets, const Scoring& sc,
    SwIsa isa) {
  BatchSwScorer scorer(query, sc, isa);
  for (const auto& t : targets) scorer.add(t);
  return scorer.flush();
}

}  // namespace mera::align
