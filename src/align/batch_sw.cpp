#include "align/batch_sw.hpp"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>
#include <string>

#include "align/batch_sw_detail.hpp"

namespace mera::align {

namespace {

// __builtin_cpu_supports needs a string literal, hence one probe per tier.
#if defined(__x86_64__) || defined(__i386__)
bool cpu_has_sse2() noexcept { return __builtin_cpu_supports("sse2"); }
bool cpu_has_avx2() noexcept { return __builtin_cpu_supports("avx2"); }
bool cpu_has_avx512() noexcept { return __builtin_cpu_supports("avx512bw"); }
#else
bool cpu_has_sse2() noexcept { return false; }
bool cpu_has_avx2() noexcept { return false; }
bool cpu_has_avx512() noexcept { return false; }
#endif

const detail::BatchKernel* kernel_for(SwIsa isa) noexcept {
  switch (isa) {
    case SwIsa::kSse2:
      return detail::batch_kernel_sse2();
    case SwIsa::kAvx2:
      return detail::batch_kernel_avx2();
    case SwIsa::kAvx512:
      return detail::batch_kernel_avx512();
    default:
      return nullptr;
  }
}

std::string supported_tier_list() {
  std::string s = "scalar";
  for (SwIsa isa : {SwIsa::kSse2, SwIsa::kAvx2, SwIsa::kAvx512})
    if (isa_supported(isa)) s += std::string("|") + isa_name(isa);
  return s;
}

}  // namespace

const char* isa_name(SwIsa isa) noexcept {
  switch (isa) {
    case SwIsa::kAuto:
      return "auto";
    case SwIsa::kScalar:
      return "scalar";
    case SwIsa::kSse2:
      return "sse2";
    case SwIsa::kAvx2:
      return "avx2";
    case SwIsa::kAvx512:
      return "avx512";
  }
  return "?";
}

std::optional<SwIsa> parse_isa(std::string_view name) noexcept {
  if (name == "auto") return SwIsa::kAuto;
  if (name == "scalar") return SwIsa::kScalar;
  if (name == "sse2") return SwIsa::kSse2;
  if (name == "avx2") return SwIsa::kAvx2;
  if (name == "avx512") return SwIsa::kAvx512;
  return std::nullopt;
}

bool isa_supported(SwIsa isa) noexcept {
  switch (isa) {
    case SwIsa::kAuto:
    case SwIsa::kScalar:
      return true;
    case SwIsa::kSse2:
      return kernel_for(isa) != nullptr && cpu_has_sse2();
    case SwIsa::kAvx2:
      return kernel_for(isa) != nullptr && cpu_has_avx2();
    case SwIsa::kAvx512:
      return kernel_for(isa) != nullptr && cpu_has_avx512();
  }
  return false;
}

SwIsa detect_isa() noexcept {
  for (SwIsa isa : {SwIsa::kAvx512, SwIsa::kAvx2, SwIsa::kSse2})
    if (isa_supported(isa)) return isa;
  return SwIsa::kScalar;
}

SwIsa resolve_isa(SwIsa requested) {
  SwIsa isa = requested;
  if (isa == SwIsa::kAuto) {
    // Re-read the environment on every resolve (not cached) so tests can
    // setenv/unsetenv MERA_SW_ISA between scorer constructions.
    if (const char* env = std::getenv("MERA_SW_ISA"); env && *env) {
      const auto parsed = parse_isa(env);
      if (!parsed)
        throw std::invalid_argument(
            std::string("MERA_SW_ISA: unknown ISA '") + env +
            "' (expected auto|scalar|sse2|avx2|avx512; this host supports " +
            supported_tier_list() + " — try MERA_SW_ISA=help)");
      isa = *parsed;
    }
  }
  if (isa == SwIsa::kAuto) return detect_isa();
  if (!isa_supported(isa))
    throw std::invalid_argument(
        std::string("SW ISA '") + isa_name(isa) +
        "' is not available (not compiled in or not supported by this CPU; "
        "this host supports " +
        supported_tier_list() + ")");
  return isa;
}

std::size_t isa_lanes8(SwIsa isa) {
  const SwIsa resolved = resolve_isa(isa);
  const detail::BatchKernel* k =
      resolved == SwIsa::kScalar ? nullptr : kernel_for(resolved);
  return k == nullptr ? 1 : static_cast<std::size_t>(k->lanes8);
}

std::string isa_support_summary() {
  std::string s = "SW dispatch tiers in this build on this CPU:\n";
  for (SwIsa isa :
       {SwIsa::kScalar, SwIsa::kSse2, SwIsa::kAvx2, SwIsa::kAvx512}) {
    const bool ok = isa_supported(isa);
    const detail::BatchKernel* k = kernel_for(isa);
    s += "  ";
    s += isa_name(isa);
    for (std::size_t pad = std::string(isa_name(isa)).size(); pad < 8; ++pad)
      s += ' ';
    if (isa == SwIsa::kScalar) {
      s += "supported (reference; 1 candidate per sweep)\n";
    } else if (ok) {
      s += "supported (" + std::to_string(k->lanes8) + "x8-bit / " +
           std::to_string(k->lanes16) + "x16-bit lanes)\n";
    } else if (k == nullptr) {
      s += "not compiled into this binary\n";
    } else {
      s += "not supported by this CPU\n";
    }
  }
  s += "auto resolves to: ";
  s += isa_name(detect_isa());
  s += "\n";
  return s;
}

void LaneStats::record_group(std::size_t filled, std::size_t width) noexcept {
  if (width == 0) return;
  ++groups;
  lanes_filled += filled;
  lanes_wasted += width - filled;
  // Octile index for occupancy in (i/8, (i+1)/8]: ceil(8*f/w) - 1.
  std::size_t idx =
      filled == 0 ? 0 : (filled * kOccBuckets + width - 1) / width - 1;
  occupancy[std::min(idx, kOccBuckets - 1)] += 1;
}

double LaneStats::mean_occupancy() const noexcept {
  const std::uint64_t total = lanes_filled + lanes_wasted;
  return total == 0 ? 0.0
                    : static_cast<double>(lanes_filled) /
                          static_cast<double>(total);
}

LaneStats& LaneStats::operator+=(const LaneStats& o) noexcept {
  flushes += o.flushes;
  groups += o.groups;
  lanes_filled += o.lanes_filled;
  lanes_wasted += o.lanes_wasted;
  for (std::size_t i = 0; i < kOccBuckets; ++i) occupancy[i] += o.occupancy[i];
  return *this;
}

BatchSwScorer::BatchSwScorer(const Scoring& sc, SwIsa isa)
    : sc_(sc), isa_(resolve_isa(isa)) {
  bias_ = std::max(0, -sc_.mismatch);
  pad_safe_ = sc_.mismatch <= 0 && sc_.gap_open >= 0 && sc_.gap_extend >= 0;
}

BatchSwScorer::BatchSwScorer(std::span<const std::uint8_t> query_codes,
                             const Scoring& sc, SwIsa isa)
    : BatchSwScorer(sc, isa) {
  add_query(query_codes);
}

std::size_t BatchSwScorer::add_query(
    std::span<const std::uint8_t> query_codes) {
  std::string key(reinterpret_cast<const char*>(query_codes.data()),
                  query_codes.size());
  const auto [it, inserted] = query_ids_.try_emplace(key, queries_.size());
  if (inserted) {
    queries_.emplace_back(query_codes.begin(), query_codes.end());
    profiles_.emplace_back();  // built lazily on first per-pair use
  }
  return it->second;
}

std::size_t BatchSwScorer::add(std::size_t qid,
                               std::span<const std::uint8_t> target_codes) {
  if (qid >= queries_.size())
    throw std::out_of_range("BatchSwScorer::add: unknown query id");
  offs_.push_back(pool_.size());
  lens_.push_back(target_codes.size());
  qids_.push_back(qid);
  pool_.insert(pool_.end(), target_codes.begin(), target_codes.end());
  return lens_.size() - 1;
}

std::size_t BatchSwScorer::add(std::span<const std::uint8_t> target_codes) {
  if (queries_.empty())
    throw std::logic_error(
        "BatchSwScorer::add(target): no query registered (use the "
        "single-query constructor or add_query first)");
  return add(std::size_t{0}, target_codes);
}

const StripedSmithWaterman& BatchSwScorer::profile_for(std::size_t qid) {
  auto& p = profiles_[qid];
  if (!p)
    p = std::make_unique<StripedSmithWaterman>(
        std::span<const std::uint8_t>(queries_[qid]), sc_);
  return *p;
}

std::vector<StripedResult> BatchSwScorer::flush() {
  const std::size_t n = lens_.size();
  std::vector<StripedResult> out(n);  // empty query/target lanes stay {0,0,0}

  // Candidates worth scoring; everything else keeps the default result,
  // matching StripedSmithWaterman::align on empty inputs.
  std::vector<std::size_t> live;
  for (std::size_t c = 0; c < n; ++c)
    if (lens_[c] > 0 && !queries_[qids_[c]].empty()) live.push_back(c);
  if (!live.empty()) ++lane_stats_.flushes;

  const detail::BatchKernel* kernel =
      isa_ == SwIsa::kScalar ? nullptr : kernel_for(isa_);

  const auto target_span = [&](std::size_t c) {
    return std::span<const std::uint8_t>(pool_.data() + offs_[c], lens_[c]);
  };
  // Per-pair backstop: the reused striped profile is bit-identical to
  // striped_scalar_score per the PR 6 kernel contract (and literally IS the
  // scalar reference under MERA_FORCE_SCALAR_SW builds).
  const auto score_per_pair = [&](std::size_t c) {
    out[c] = profile_for(qids_[c]).align(target_span(c));
  };

  if (kernel == nullptr) {
    for (std::size_t c : live) score_per_pair(c);
    pool_.clear();
    offs_.clear();
    lens_.clear();
    qids_.clear();
    return out;
  }

  const int go = sc_.gap_open + sc_.gap_extend;
  const int ge = sc_.gap_extend;

  // 8-bit sweep over lane groups; saturated lanes queue for the 16-bit pass.
  std::vector<std::size_t> escalate;
  {
    const std::size_t L = static_cast<std::size_t>(kernel->lanes8);
    std::vector<std::size_t> len(L), qlen(L);
    std::vector<int> best(L);
    std::vector<std::size_t> t_end(L);
    std::vector<std::uint8_t> sat(L);
    for (std::size_t g = 0; g < live.size(); g += L) {
      const std::size_t gn = std::min(L, live.size() - g);
      std::fill(len.begin(), len.end(), std::size_t{0});
      std::fill(qlen.begin(), qlen.end(), std::size_t{0});
      std::size_t nmax = 0, mmax = 0, mmin = SIZE_MAX;
      for (std::size_t l = 0; l < gn; ++l) {
        const std::size_t c = live[g + l];
        len[l] = lens_[c];
        qlen[l] = queries_[qids_[c]].size();
        nmax = std::max(nmax, len[l]);
        mmax = std::max(mmax, qlen[l]);
        mmin = std::min(mmin, qlen[l]);
      }
      // Row padding is only provably inert for pad-safe scoring; a
      // mixed-length group under an exotic scheme scores per pair instead.
      if (!pad_safe_ && mmin != mmax) {
        for (std::size_t l = 0; l < gn; ++l) score_per_pair(live[g + l]);
        continue;
      }
      tbuf8_.assign(nmax * L, detail::kTargetPadCode);
      qbuf8_.assign(mmax * L, detail::kQueryPadCode);
      for (std::size_t l = 0; l < gn; ++l) {
        const std::size_t c = live[g + l];
        const std::uint8_t* src = pool_.data() + offs_[c];
        for (std::size_t j = 0; j < len[l]; ++j) tbuf8_[j * L + l] = src[j];
        const std::uint8_t* qsrc = queries_[qids_[c]].data();
        for (std::size_t i = 0; i < qlen[l]; ++i) qbuf8_[i * L + l] = qsrc[i];
      }
      std::fill(sat.begin(), sat.end(), std::uint8_t{0});
      detail::BatchPass8Args args;
      args.qbuf = qbuf8_.data();
      args.qlen = qlen.data();
      args.m = mmax;
      args.tbuf = tbuf8_.data();
      args.len = len.data();
      args.nmax = nmax;
      args.match_bias = sc_.match + bias_;
      args.mismatch_bias = sc_.mismatch + bias_;
      args.bias = bias_;
      args.gap_open_total = go;
      args.gap_extend = ge;
      args.best = best.data();
      args.t_end = t_end.data();
      args.saturated = sat.data();
      kernel->pass8(args);
      lane_stats_.record_group(gn, L);
      for (std::size_t l = 0; l < gn; ++l) {
        const std::size_t c = live[g + l];
        if (sat[l]) {
          escalate.push_back(c);
        } else {
          out[c] = {best[l], t_end[l], false};
        }
      }
    }
  }

  // 16-bit rescore of saturated candidates, same grouping scheme.
  if (!escalate.empty()) {
    const std::size_t L = static_cast<std::size_t>(kernel->lanes16);
    std::vector<std::size_t> len(L), qlen(L);
    std::vector<int> best(L);
    std::vector<std::size_t> t_end(L);
    std::vector<std::uint8_t> sat(L);
    for (std::size_t g = 0; g < escalate.size(); g += L) {
      const std::size_t gn = std::min(L, escalate.size() - g);
      std::fill(len.begin(), len.end(), std::size_t{0});
      std::fill(qlen.begin(), qlen.end(), std::size_t{0});
      std::size_t nmax = 0, mmax = 0, mmin = SIZE_MAX;
      for (std::size_t l = 0; l < gn; ++l) {
        const std::size_t c = escalate[g + l];
        len[l] = lens_[c];
        qlen[l] = queries_[qids_[c]].size();
        nmax = std::max(nmax, len[l]);
        mmax = std::max(mmax, qlen[l]);
        mmin = std::min(mmin, qlen[l]);
      }
      if (!pad_safe_ && mmin != mmax) {
        for (std::size_t l = 0; l < gn; ++l) {
          const std::size_t c = escalate[g + l];
          score_per_pair(c);
          out[c].used_16bit = true;
        }
        continue;
      }
      tbuf16_.assign(nmax * L, static_cast<std::int16_t>(detail::kTargetPadCode));
      qbuf16_.assign(mmax * L, static_cast<std::int16_t>(detail::kQueryPadCode));
      for (std::size_t l = 0; l < gn; ++l) {
        const std::size_t c = escalate[g + l];
        const std::uint8_t* src = pool_.data() + offs_[c];
        for (std::size_t j = 0; j < len[l]; ++j)
          tbuf16_[j * L + l] = static_cast<std::int16_t>(src[j]);
        const std::uint8_t* qsrc = queries_[qids_[c]].data();
        for (std::size_t i = 0; i < qlen[l]; ++i)
          qbuf16_[i * L + l] = static_cast<std::int16_t>(qsrc[i]);
      }
      std::fill(sat.begin(), sat.end(), std::uint8_t{0});
      detail::BatchPass16Args args;
      args.qbuf = qbuf16_.data();
      args.qlen = qlen.data();
      args.m = mmax;
      args.tbuf = tbuf16_.data();
      args.len = len.data();
      args.nmax = nmax;
      args.match = sc_.match;
      args.mismatch = sc_.mismatch;
      args.gap_open_total = go;
      args.gap_extend = ge;
      args.best = best.data();
      args.t_end = t_end.data();
      args.saturated = sat.data();
      kernel->pass16(args);
      lane_stats_.record_group(gn, L);
      for (std::size_t l = 0; l < gn; ++l) {
        const std::size_t c = escalate[g + l];
        if (sat[l]) {
          // 16-bit saturation too (score >= 32767): exact per-pair backstop.
          score_per_pair(c);
          out[c].used_16bit = true;
        } else {
          out[c] = {best[l], t_end[l], true};
        }
      }
    }
  }

  pool_.clear();
  offs_.clear();
  lens_.clear();
  qids_.clear();
  return out;
}

std::vector<StripedResult> batch_sw_scores(
    std::span<const std::uint8_t> query,
    std::span<const std::vector<std::uint8_t>> targets, const Scoring& sc,
    SwIsa isa) {
  BatchSwScorer scorer(query, sc, isa);
  for (const auto& t : targets) scorer.add(t);
  return scorer.flush();
}

}  // namespace mera::align
