// Cross-read candidate pooling for the inter-candidate batch SW engine.
//
// BatchSwScorer fills lanes with whatever one flush holds — and the per-read
// extension path flushes per read per strand, so a read with 3 candidates
// wastes 61 of 64 AVX-512 lanes. This queue decouples flush granularity from
// read boundaries: candidates from MANY reads accumulate in buckets keyed by
// query-length class (bounding the row-padding a mixed group pays), and a
// bucket flushes through its multi-query BatchSwScorer only once it can fill
// the resolved tier's 8-bit lane width. mmseqs2's prescreen keeps its SIMD
// matcher saturated the same way.
//
// Scoring is deferred, so callers attach an opaque provenance tag to every
// candidate and receive (tag, StripedResult) callbacks as flushes happen —
// in bucket-insertion order within a flush, but in no particular order
// ACROSS buckets. Emission ordering is the caller's job (AlignSession keeps
// a slot/cursor structure that replays results in exact per-read order; see
// align_session.cpp). drain() force-flushes every bucket — call it at batch
// end, after which every enqueued tag has been called back exactly once.
//
// Results are bit-identical to scoring each pair alone on any tier (the
// BatchSwScorer contract); pooling changes WHEN a candidate is scored, never
// WHAT its score is.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <vector>

#include "align/batch_sw.hpp"
#include "align/scoring.hpp"

namespace mera::align {

struct PooledQueueConfig {
  Scoring scoring{};
  SwIsa isa = SwIsa::kAuto;
  /// Candidates a bucket accumulates before it flushes through the SIMD
  /// scorer. 0 = auto: the resolved tier's 8-bit lane width (so every
  /// non-drain flush can fill a full lane group); 16 on the scalar tier.
  std::size_t flush_lanes = 0;
  /// Queries whose lengths fall in the same class of this width share a
  /// bucket (class id = qlen / width). Wider classes pool more aggressively
  /// but pay more row padding per sweep; 32 keeps worst-case padding under
  /// one cache line of rows. Minimum 1 (every distinct length is its own
  /// bucket).
  std::size_t length_class_width = 32;
};

/// Batch-scoped deferred-extension queue: enqueue candidate windows from any
/// number of reads, get scores back by tag once a length-class bucket fills
/// a SIMD lane group (or at drain()).
class PooledExtensionQueue {
 public:
  using ScoreFn = std::function<void(std::uint64_t tag, const StripedResult&)>;

  PooledExtensionQueue(const PooledQueueConfig& cfg, ScoreFn on_score);

  /// Register a query (codes copied; duplicates share one id and one lazily
  /// built striped profile inside the bucket scorer). Ids are process-local
  /// to this queue and stable for its lifetime.
  std::size_t add_query(std::span<const std::uint8_t> query_codes);

  /// Enqueue one candidate window against query `qid`. May trigger a bucket
  /// flush (and therefore on_score callbacks) before returning.
  void enqueue(std::size_t qid, std::span<const std::uint8_t> window_codes,
               std::uint64_t tag);

  /// Force-flush every bucket (ascending length-class order). After drain()
  /// every enqueued tag has been scored exactly once.
  void drain();

  /// Candidates enqueued but not yet scored.
  [[nodiscard]] std::size_t pending() const noexcept { return pending_; }
  /// Codes of a registered query (valid for the queue's lifetime).
  [[nodiscard]] std::span<const std::uint8_t> query_codes(
      std::size_t qid) const;
  /// Concrete dispatch tier every bucket scorer uses (never kAuto).
  [[nodiscard]] SwIsa isa() const noexcept { return isa_; }
  /// Resolved per-bucket flush threshold (auto turns into a lane width).
  [[nodiscard]] std::size_t flush_lanes() const noexcept {
    return flush_lanes_;
  }
  /// Lane occupancy summed over every bucket's scorer.
  [[nodiscard]] LaneStats lane_stats() const;

 private:
  struct Bucket {
    BatchSwScorer scorer;
    std::vector<std::uint64_t> tags;  // parallel to the scorer's pending set
    Bucket(const Scoring& sc, SwIsa isa) : scorer(sc, isa) {}
  };
  struct QueryRef {
    std::size_t cls;    // length-class id = qlen / length_class_width
    std::size_t local;  // query id inside that bucket's scorer
  };

  Bucket& bucket_for(std::size_t cls);
  void flush_bucket(Bucket& b);

  PooledQueueConfig cfg_;
  SwIsa isa_;
  std::size_t flush_lanes_;
  ScoreFn on_score_;
  // std::map: drain() walks buckets in ascending class order, keeping the
  // cross-bucket callback order deterministic for a given enqueue sequence.
  std::map<std::size_t, std::unique_ptr<Bucket>> buckets_;
  std::vector<QueryRef> queries_;
  std::size_t pending_ = 0;
};

}  // namespace mera::align
