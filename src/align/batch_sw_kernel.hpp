// Traits-templated inter-candidate SW passes, instantiated once per ISA TU
// (batch_sw_sse2/avx2/avx512.cpp) with that TU's vector traits. Internal —
// include batch_sw.hpp instead.
//
// Layout: candidate l lives in lane l; column j is target position j; the
// inner loop walks the query rows, one query PER LANE (lanes whose query is
// shorter than the group's row count see kQueryPadCode rows — inert under
// the pad-safety precondition documented in batch_sw_detail.hpp). Because
// rows are visited in order within a column, the vertical-gap term F is
// computed exactly — no striping, so no lazy-F fixup loop. The arithmetic
// (biased unsigned saturating 8-bit, zero-floored signed 16-bit) copies the
// striped kernel's cell updates operation-for-operation, which is what
// makes score / t_end / used_16bit bit-identical per pair across every
// engine and tier.
//
// Recurrence (match the scalar reference in striped_scalar_score):
//   E(i,j) = max(E(i,j-1) - ge, H(i,j-1) - go)     horizontal gap
//   F(i,j) = max(F(i-1,j) - ge, H(i-1,j) - go)     vertical gap
//   H(i,j) = max(0, H(i-1,j-1) + sub(q[i],t[j]), E(i,j), F(i,j))
//
// t_end: per lane, the smallest column whose column-max equals the global
// best (strict `>` on a running best == first best column == pinned
// smallest-t_end tie-break).
#pragma once

#include <cstdint>
#include <vector>

#include "align/batch_sw_detail.hpp"

namespace mera::align::detail {

template <class T>
void batch_pass8(const BatchPass8Args& a) {
  using V = typename T::V;
  constexpr int L = T::kLanes8;
  const V vGapO = T::set1_u8(static_cast<std::uint8_t>(a.gap_open_total));
  const V vGapE = T::set1_u8(static_cast<std::uint8_t>(a.gap_extend));
  const V vBias = T::set1_u8(static_cast<std::uint8_t>(a.bias));
  const V vMatch = T::set1_u8(static_cast<std::uint8_t>(a.match_bias));
  const V vMism = T::set1_u8(static_cast<std::uint8_t>(a.mismatch_bias));

  // Row-indexed DP state, one vector (L lanes) per query row. Plain byte
  // buffers + unaligned load/store keep the template free of vector-typed
  // containers (and their attribute-alignment warnings).
  std::vector<std::uint8_t> Hrow(a.m * L, 0), Evec(a.m * L, 0);
  alignas(64) std::uint8_t colmax[L];
  std::uint8_t best[L] = {};
  std::size_t t_end[L] = {};

  for (std::size_t j = 0; j < a.nmax; ++j) {
    const V vT = T::load(a.tbuf + j * L);
    V vF = T::zero();
    V vHdiag = T::zero();  // H(-1, j-1) boundary row
    V vColMax = T::zero();
    for (std::size_t i = 0; i < a.m; ++i) {
      const V vHup = T::load(Hrow.data() + i * L);  // H(i, j-1)
      const V vE = T::max_u8(T::subs_u8(T::load(Evec.data() + i * L), vGapE),
                             T::subs_u8(vHup, vGapO));
      const V vSub = T::sel_eq8(vT, T::load(a.qbuf + i * L), vMatch, vMism);
      V vH = T::subs_u8(T::adds_u8(vHdiag, vSub), vBias);
      vH = T::max_u8(vH, vE);
      vH = T::max_u8(vH, vF);
      vColMax = T::max_u8(vColMax, vH);
      T::store(Hrow.data() + i * L, vH);
      T::store(Evec.data() + i * L, vE);
      vF = T::max_u8(T::subs_u8(vF, vGapE), T::subs_u8(vH, vGapO));
      vHdiag = vHup;
    }
    T::store(colmax, vColMax);
    for (int l = 0; l < L; ++l)
      if (j < a.len[l] && colmax[l] > best[l]) {
        best[l] = colmax[l];
        t_end[l] = j;
      }
  }
  for (int l = 0; l < L; ++l) {
    if (a.len[l] == 0 || a.qlen[l] == 0) continue;
    a.best[l] = best[l];
    a.t_end[l] = t_end[l];
    a.saturated[l] = best[l] >= 255 - a.bias ? 1 : 0;
  }
}

template <class T>
void batch_pass16(const BatchPass16Args& a) {
  using V = typename T::V;
  constexpr int L = T::kLanes16;
  const V vGapO = T::set1_i16(static_cast<std::int16_t>(a.gap_open_total));
  const V vGapE = T::set1_i16(static_cast<std::int16_t>(a.gap_extend));
  const V vMatch = T::set1_i16(static_cast<std::int16_t>(a.match));
  const V vMism = T::set1_i16(static_cast<std::int16_t>(a.mismatch));

  std::vector<std::int16_t> Hrow(a.m * L, 0), Evec(a.m * L, 0);
  alignas(64) std::int16_t colmax[L];
  std::int16_t best[L] = {};
  std::size_t t_end[L] = {};

  for (std::size_t j = 0; j < a.nmax; ++j) {
    const V vT = T::load(a.tbuf + j * L);
    V vF = T::zero();
    V vHdiag = T::zero();
    V vColMax = T::zero();
    for (std::size_t i = 0; i < a.m; ++i) {
      const V vHup = T::load(Hrow.data() + i * L);
      const V vHgapUp =
          T::max_i16(T::subs_i16(vHup, vGapO), T::zero());
      const V vE =
          T::max_i16(T::subs_i16(T::load(Evec.data() + i * L), vGapE), vHgapUp);
      const V vSub = T::sel_eq16(vT, T::load(a.qbuf + i * L), vMatch, vMism);
      V vH = T::max_i16(T::adds_i16(vHdiag, vSub), T::zero());
      vH = T::max_i16(vH, vE);
      vH = T::max_i16(vH, vF);
      vColMax = T::max_i16(vColMax, vH);
      T::store(Hrow.data() + i * L, vH);
      T::store(Evec.data() + i * L, vE);
      vF = T::max_i16(T::subs_i16(vF, vGapE),
                      T::max_i16(T::subs_i16(vH, vGapO), T::zero()));
      vHdiag = vHup;
    }
    T::store(colmax, vColMax);
    for (int l = 0; l < L; ++l)
      if (j < a.len[l] && colmax[l] > best[l]) {
        best[l] = colmax[l];
        t_end[l] = j;
      }
  }
  for (int l = 0; l < L; ++l) {
    if (a.len[l] == 0 || a.qlen[l] == 0) continue;
    a.best[l] = best[l];
    a.t_end[l] = t_end[l];
    a.saturated[l] = best[l] >= 32767 ? 1 : 0;
  }
}

}  // namespace mera::align::detail
