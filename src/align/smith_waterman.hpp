// Reference Smith-Waterman local alignment (affine gaps) with traceback.
//
// This is the ground-truth kernel: exact full-DP, O(m*n) time and space.
// The pipeline runs it only on small windows around a located seed; the
// striped SIMD kernel (striped_sw.hpp) covers score-only screening and is
// property-tested against this implementation.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>

#include "align/cigar.hpp"
#include "align/scoring.hpp"

namespace mera::align {

struct LocalAlignment {
  int score = 0;
  // Half-open alignment spans; coordinates are within the inputs as given.
  std::size_t q_begin = 0, q_end = 0;
  std::size_t t_begin = 0, t_end = 0;
  Cigar cigar;  ///< includes leading/trailing soft clips covering the query
  int mismatches = 0;
  int gap_columns = 0;  ///< total I+D columns

  [[nodiscard]] bool empty() const noexcept { return q_begin == q_end; }
};

/// Full-DP local alignment of query vs target (2-bit code spans).
[[nodiscard]] LocalAlignment smith_waterman(std::span<const std::uint8_t> query,
                                            std::span<const std::uint8_t> target,
                                            const Scoring& sc = {});

/// ASCII convenience overload.
[[nodiscard]] LocalAlignment smith_waterman(std::string_view query,
                                            std::string_view target,
                                            const Scoring& sc = {});

/// Score-only scalar reference (used to validate the SIMD kernel).
[[nodiscard]] int sw_score_reference(std::span<const std::uint8_t> query,
                                     std::span<const std::uint8_t> target,
                                     const Scoring& sc = {});

}  // namespace mera::align
