// Seed extension: turn a located seed (query offset / target offset) into a
// full local alignment (Section II-D).
//
// The seed fixes the alignment's diagonal, so only a small target window
// around the implied query placement needs to be examined: the window is the
// query's projected span padded by `window_pad` bases on each side. Within
// the window the full-DP kernel produces score + CIGAR; the striped SIMD
// kernel can pre-screen candidates when a query aligns against many targets.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "align/banded_sw.hpp"
#include "align/batch_sw.hpp"
#include "align/smith_waterman.hpp"
#include "align/striped_sw.hpp"
#include "seq/packed_seq.hpp"

namespace mera::align {

/// Which Smith-Waterman kernel performs the in-window alignment. Selectable
/// per ExtensionConfig (and therefore per aligning batch): sessions can probe
/// a batch with the cheap screening kernel and re-run hard batches with the
/// exact one without rebuilding anything.
enum class SwKernel : std::uint8_t {
  /// Exact full-window DP with affine-gap traceback (sw_engine) — reference.
  kFullDP = 0,
  /// Banded DP around the seed diagonal (band = max(window_pad, 8)).
  kBanded,
  /// Farrar striped SIMD score pass (striped_sw) as a pre-screen; candidates
  /// scoring below the caller's report threshold are rejected without a
  /// traceback, survivors re-run the full DP for an identical alignment.
  kStriped,
  /// Inter-candidate batch SIMD score pass (batch_sw) as a pre-screen: all of
  /// a query's candidate windows are packed one-per-lane and screened in one
  /// DP sweep on the widest available ISA (see ExtensionConfig::isa).
  /// Screening decisions and scores are bit-identical to kStriped.
  kBatch,
};

struct ExtensionConfig {
  Scoring scoring{};
  /// Extra target bases examined on each side of the query's projected span
  /// (allows for indels near the read ends).
  std::size_t window_pad = 16;
  /// In-window alignment kernel.
  SwKernel kernel = SwKernel::kFullDP;
  /// Dispatch tier for SwKernel::kBatch (kAuto = MERA_SW_ISA env override or
  /// the widest the CPU supports). Ignored by the other kernels.
  SwIsa isa = SwIsa::kAuto;
};

struct Extension {
  LocalAlignment aln;        ///< coordinates within query / full target
  std::size_t window_begin = 0;  ///< target window used (diagnostics)
  std::size_t window_end = 0;
};

/// Target window implied by a seed: the query's projected span on the seed
/// diagonal, padded by window_pad and clipped to the target. begin >= end
/// means no window (query projects entirely off the target).
struct SeedWindow {
  std::size_t begin = 0;
  std::size_t end = 0;
};

/// Compute the seed's target window — the same projection extend_seed /
/// extend_candidates perform internally, exposed so deferred-extension
/// callers (core::AlignSession's pooled path) can mirror window extents and
/// sw_cells accounting without scoring yet.
[[nodiscard]] SeedWindow project_seed_window(std::size_t query_len,
                                             const seq::PackedSeq& target,
                                             std::size_t q_off,
                                             std::size_t t_off,
                                             std::size_t window_pad) noexcept;

/// Stable lowercase kernel tag for reports and metric labels.
[[nodiscard]] constexpr const char* kernel_name(SwKernel k) noexcept {
  switch (k) {
    case SwKernel::kFullDP: return "full_dp";
    case SwKernel::kBanded: return "banded";
    case SwKernel::kStriped: return "striped";
    case SwKernel::kBatch: return "batch";
  }
  return "unknown";
}

/// Extend a seed match: query[q_off..q_off+k) == target[t_off..t_off+k).
/// Returns an alignment whose t_begin/t_end are in full-target coordinates.
/// `screen_min_score` is the caller's reporting threshold: the kStriped
/// backend skips the traceback DP for candidates whose (exact) striped score
/// falls below it — such results carry the score but an empty alignment.
/// `striped_profile`, when given, must be the profile of `query` under
/// `cfg.scoring`; it lets a caller extending one query against many
/// candidates build the striped profile once instead of per call (the
/// profile is query-only state). Ignored by the other kernels.
[[nodiscard]] Extension extend_seed(
    std::span<const std::uint8_t> query, const seq::PackedSeq& target,
    std::size_t q_off, std::size_t t_off, int k,
    const ExtensionConfig& cfg = {}, int screen_min_score = 0,
    const StripedSmithWaterman* striped_profile = nullptr);

/// One buffered candidate extension for extend_candidates: the seed's target
/// sequence plus the query/target offsets that fix its diagonal. `target`
/// must outlive the extend_candidates call.
struct SeedCandidate {
  const seq::PackedSeq* target = nullptr;
  std::size_t q_off = 0;
  std::size_t t_off = 0;
};

/// Batch form of extend_seed: extend one query against many candidates at
/// once, screening every window in a single inter-candidate SIMD sweep
/// (SwKernel::kBatch; kStriped builds the query's striped profile once and
/// screens per candidate with it; the exact kernels fall back to
/// per-candidate extend_seed). Results are positionally parallel to
/// `candidates` and bit-identical to calling extend_seed on each candidate
/// with the same config. When `lane_stats` is non-null the kBatch sweep's
/// lane occupancy is accumulated into it (other kernels record nothing).
[[nodiscard]] std::vector<Extension> extend_candidates(
    std::span<const std::uint8_t> query,
    std::span<const SeedCandidate> candidates, int k,
    const ExtensionConfig& cfg = {}, int screen_min_score = 0,
    LaneStats* lane_stats = nullptr);

}  // namespace mera::align
