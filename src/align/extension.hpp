// Seed extension: turn a located seed (query offset / target offset) into a
// full local alignment (Section II-D).
//
// The seed fixes the alignment's diagonal, so only a small target window
// around the implied query placement needs to be examined: the window is the
// query's projected span padded by `window_pad` bases on each side. Within
// the window the full-DP kernel produces score + CIGAR; the striped SIMD
// kernel can pre-screen candidates when a query aligns against many targets.
#pragma once

#include <cstdint>
#include <span>

#include "align/banded_sw.hpp"
#include "align/smith_waterman.hpp"
#include "seq/packed_seq.hpp"

namespace mera::align {

struct ExtensionConfig {
  Scoring scoring{};
  /// Extra target bases examined on each side of the query's projected span
  /// (allows for indels near the read ends).
  std::size_t window_pad = 16;
  /// Use the banded kernel (band = window_pad) instead of full-window DP.
  bool banded = false;
};

struct Extension {
  LocalAlignment aln;        ///< coordinates within query / full target
  std::size_t window_begin = 0;  ///< target window used (diagnostics)
  std::size_t window_end = 0;
};

/// Extend a seed match: query[q_off..q_off+k) == target[t_off..t_off+k).
/// Returns an alignment whose t_begin/t_end are in full-target coordinates.
[[nodiscard]] Extension extend_seed(std::span<const std::uint8_t> query,
                                    const seq::PackedSeq& target,
                                    std::size_t q_off, std::size_t t_off,
                                    int k, const ExtensionConfig& cfg = {});

}  // namespace mera::align
