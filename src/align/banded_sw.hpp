// Banded Smith-Waterman: local alignment restricted to a diagonal band.
//
// Once a seed has located the query on the target, the true alignment lies
// near the seed's diagonal; restricting the DP to a band of half-width `band`
// around it turns the O(m*n) kernel into O(m*band). Used as an ablation
// alternative to the full-window kernel in the extension step.
#pragma once

#include <cstdint>
#include <span>

#include "align/smith_waterman.hpp"

namespace mera::align {

/// Local alignment of query vs target confined to |(j - i) - diag| <= band,
/// where i indexes the query and j the target (0-based). Scores outside the
/// band are treated as unreachable. With a band wide enough to contain the
/// optimum this returns the same score as smith_waterman().
[[nodiscard]] LocalAlignment banded_smith_waterman(
    std::span<const std::uint8_t> query, std::span<const std::uint8_t> target,
    std::ptrdiff_t diag, std::size_t band, const Scoring& sc = {});

}  // namespace mera::align
