#include "align/extension.hpp"

#include <algorithm>
#include <optional>

namespace mera::align {

SeedWindow project_seed_window(std::size_t query_len,
                               const seq::PackedSeq& target, std::size_t q_off,
                               std::size_t t_off,
                               std::size_t window_pad) noexcept {
  // diag0 = target position where query base 0 lands (may be negative when
  // the query hangs off the target's start).
  const std::ptrdiff_t diag0 = static_cast<std::ptrdiff_t>(t_off) -
                               static_cast<std::ptrdiff_t>(q_off);
  const auto pad = static_cast<std::ptrdiff_t>(window_pad);
  SeedWindow w;
  w.begin = static_cast<std::size_t>(std::max<std::ptrdiff_t>(0, diag0 - pad));
  w.end = static_cast<std::size_t>(std::clamp<std::ptrdiff_t>(
      diag0 + static_cast<std::ptrdiff_t>(query_len) + pad, 0,
      static_cast<std::ptrdiff_t>(target.size())));
  return w;
}

Extension extend_seed(std::span<const std::uint8_t> query,
                      const seq::PackedSeq& target, std::size_t q_off,
                      std::size_t t_off, int k, const ExtensionConfig& cfg,
                      int screen_min_score,
                      const StripedSmithWaterman* striped_profile) {
  Extension ext;
  const std::size_t m = query.size();
  if (m == 0 || target.empty() || k <= 0) return ext;

  const SeedWindow w =
      project_seed_window(m, target, q_off, t_off, cfg.window_pad);
  ext.window_begin = w.begin;
  ext.window_end = w.end;
  if (w.begin >= w.end) return ext;

  const auto window = dna_codes(target, w.begin, w.end - w.begin);
  switch (cfg.kernel) {
    case SwKernel::kBanded: {
      // The seed lies on diagonal (t_off - proj_begin) - q_off within the
      // window; band half-width = window_pad covers the padding budget.
      const auto diag = static_cast<std::ptrdiff_t>(t_off - w.begin) -
                        static_cast<std::ptrdiff_t>(q_off);
      ext.aln = banded_smith_waterman(query, window, diag,
                                      std::max<std::size_t>(cfg.window_pad, 8),
                                      cfg.scoring);
      break;
    }
    case SwKernel::kStriped: {
      // Score-only screen: the striped kernel returns the exact local-maximum
      // score, so thresholding here rejects precisely the candidates the full
      // DP would reject — survivors get an identical traceback alignment.
      std::optional<StripedSmithWaterman> local;
      if (!striped_profile)
        local.emplace(query, cfg.scoring);  // one-off caller: build here
      const StripedResult sr =
          (striped_profile ? *striped_profile : *local).align(window);
      if (sr.score < screen_min_score) {
        ext.aln.score = sr.score;  // empty alignment: screened out
        return ext;
      }
      ext.aln = smith_waterman(query, window, cfg.scoring);
      break;
    }
    case SwKernel::kBatch: {
      // Single-candidate route through the batch engine: same screen
      // semantics as kStriped, scores proven bit-identical by the tier-sweep
      // equivalence tests. Callers with many candidates should prefer
      // extend_candidates, which actually fills the SIMD lanes.
      BatchSwScorer scorer(query, cfg.scoring, cfg.isa);
      scorer.add(window);
      const StripedResult sr = scorer.flush().front();
      if (sr.score < screen_min_score) {
        ext.aln.score = sr.score;
        return ext;
      }
      ext.aln = smith_waterman(query, window, cfg.scoring);
      break;
    }
    case SwKernel::kFullDP:
      ext.aln = smith_waterman(query, window, cfg.scoring);
      break;
  }
  ext.aln.t_begin += w.begin;
  ext.aln.t_end += w.begin;
  return ext;
}

std::vector<Extension> extend_candidates(std::span<const std::uint8_t> query,
                                         std::span<const SeedCandidate> cands,
                                         int k, const ExtensionConfig& cfg,
                                         int screen_min_score,
                                         LaneStats* lane_stats) {
  std::vector<Extension> out(cands.size());
  if (cands.empty()) return out;

  if (cfg.kernel != SwKernel::kBatch) {
    // kStriped screens with a query-only profile: build it once here instead
    // of once per candidate inside extend_seed.
    std::optional<StripedSmithWaterman> profile;
    if (cfg.kernel == SwKernel::kStriped && !query.empty())
      profile.emplace(query, cfg.scoring);
    for (std::size_t c = 0; c < cands.size(); ++c)
      out[c] = extend_seed(query, *cands[c].target, cands[c].q_off,
                           cands[c].t_off, k, cfg, screen_min_score,
                           profile ? &*profile : nullptr);
    return out;
  }

  const std::size_t m = query.size();
  BatchSwScorer scorer(query, cfg.scoring, cfg.isa);

  // Project every candidate's window and enqueue the live ones. `slot[c]`
  // is the candidate's lane index in the flush, or npos when extend_seed
  // would have bailed before scoring (empty inputs / empty window).
  constexpr std::size_t kNone = static_cast<std::size_t>(-1);
  std::vector<std::size_t> slot(cands.size(), kNone);
  std::vector<std::vector<std::uint8_t>> windows(cands.size());
  for (std::size_t c = 0; c < cands.size(); ++c) {
    const seq::PackedSeq& target = *cands[c].target;
    if (m == 0 || target.empty() || k <= 0) continue;
    const SeedWindow w = project_seed_window(m, target, cands[c].q_off,
                                             cands[c].t_off, cfg.window_pad);
    out[c].window_begin = w.begin;
    out[c].window_end = w.end;
    if (w.begin >= w.end) continue;
    windows[c] = dna_codes(target, w.begin, w.end - w.begin);
    slot[c] = scorer.add(windows[c]);
  }

  const std::vector<StripedResult> screened = scorer.flush();
  if (lane_stats) *lane_stats += scorer.lane_stats();
  for (std::size_t c = 0; c < cands.size(); ++c) {
    if (slot[c] == kNone) continue;
    const StripedResult& sr = screened[slot[c]];
    if (sr.score < screen_min_score) {
      out[c].aln.score = sr.score;  // screened out, same as extend_seed
      continue;
    }
    out[c].aln = smith_waterman(query, windows[c], cfg.scoring);
    out[c].aln.t_begin += out[c].window_begin;
    out[c].aln.t_end += out[c].window_begin;
  }
  return out;
}

}  // namespace mera::align
