#include "align/extension.hpp"

#include <algorithm>
#include <optional>

namespace mera::align {

Extension extend_seed(std::span<const std::uint8_t> query,
                      const seq::PackedSeq& target, std::size_t q_off,
                      std::size_t t_off, int k, const ExtensionConfig& cfg,
                      int screen_min_score,
                      const StripedSmithWaterman* striped_profile) {
  Extension ext;
  const std::size_t m = query.size();
  if (m == 0 || target.empty() || k <= 0) return ext;

  // Project the query onto the target via the seed diagonal and pad.
  // diag0 = target position where query base 0 lands (may be negative when
  // the query hangs off the target's start).
  const std::ptrdiff_t diag0 = static_cast<std::ptrdiff_t>(t_off) -
                               static_cast<std::ptrdiff_t>(q_off);
  const auto pad = static_cast<std::ptrdiff_t>(cfg.window_pad);
  const auto proj_begin =
      static_cast<std::size_t>(std::max<std::ptrdiff_t>(0, diag0 - pad));
  const auto proj_end = static_cast<std::size_t>(std::clamp<std::ptrdiff_t>(
      diag0 + static_cast<std::ptrdiff_t>(m) + pad, 0,
      static_cast<std::ptrdiff_t>(target.size())));
  ext.window_begin = proj_begin;
  ext.window_end = proj_end;
  if (proj_begin >= proj_end) return ext;

  const auto window = dna_codes(target, proj_begin, proj_end - proj_begin);
  switch (cfg.kernel) {
    case SwKernel::kBanded: {
      // The seed lies on diagonal (t_off - proj_begin) - q_off within the
      // window; band half-width = window_pad covers the padding budget.
      const auto diag = static_cast<std::ptrdiff_t>(t_off - proj_begin) -
                        static_cast<std::ptrdiff_t>(q_off);
      ext.aln = banded_smith_waterman(query, window, diag,
                                      std::max<std::size_t>(cfg.window_pad, 8),
                                      cfg.scoring);
      break;
    }
    case SwKernel::kStriped: {
      // Score-only screen: the striped kernel returns the exact local-maximum
      // score, so thresholding here rejects precisely the candidates the full
      // DP would reject — survivors get an identical traceback alignment.
      std::optional<StripedSmithWaterman> local;
      if (!striped_profile)
        local.emplace(query, cfg.scoring);  // one-off caller: build here
      const StripedResult sr =
          (striped_profile ? *striped_profile : *local).align(window);
      if (sr.score < screen_min_score) {
        ext.aln.score = sr.score;  // empty alignment: screened out
        return ext;
      }
      ext.aln = smith_waterman(query, window, cfg.scoring);
      break;
    }
    case SwKernel::kFullDP:
      ext.aln = smith_waterman(query, window, cfg.scoring);
      break;
  }
  ext.aln.t_begin += proj_begin;
  ext.aln.t_end += proj_begin;
  return ext;
}

}  // namespace mera::align
