#include "align/cigar.hpp"

#include <algorithm>
#include <cctype>
#include <stdexcept>

namespace mera::align {

void Cigar::push(CigarOp op, std::uint32_t len) {
  if (len == 0) return;
  if (!elems_.empty() && elems_.back().op == op)
    elems_.back().len += len;
  else
    elems_.push_back({op, len});
}

std::size_t Cigar::query_span() const noexcept {
  std::size_t n = 0;
  for (const auto& e : elems_)
    if (e.op == CigarOp::kMatch || e.op == CigarOp::kInsert ||
        e.op == CigarOp::kSoftClip)
      n += e.len;
  return n;
}

std::size_t Cigar::target_span() const noexcept {
  std::size_t n = 0;
  for (const auto& e : elems_)
    if (e.op == CigarOp::kMatch || e.op == CigarOp::kDelete) n += e.len;
  return n;
}

std::string Cigar::to_string() const {
  if (elems_.empty()) return "*";
  std::string s;
  for (const auto& e : elems_) {
    s += std::to_string(e.len);
    s += static_cast<char>(e.op);
  }
  return s;
}

Cigar Cigar::parse(const std::string& text) {
  Cigar c;
  if (text == "*" || text.empty()) return c;
  std::uint32_t len = 0;
  for (char ch : text) {
    if (std::isdigit(static_cast<unsigned char>(ch))) {
      len = len * 10 + static_cast<std::uint32_t>(ch - '0');
      continue;
    }
    switch (ch) {
      case 'M': c.push(CigarOp::kMatch, len); break;
      case 'I': c.push(CigarOp::kInsert, len); break;
      case 'D': c.push(CigarOp::kDelete, len); break;
      case 'S': c.push(CigarOp::kSoftClip, len); break;
      default:
        throw std::invalid_argument("Cigar::parse: unknown op '" +
                                    std::string(1, ch) + "'");
    }
    len = 0;
  }
  if (len != 0)
    throw std::invalid_argument("Cigar::parse: trailing length without op");
  return c;
}

void Cigar::reverse() noexcept { std::reverse(elems_.begin(), elems_.end()); }

}  // namespace mera::align
