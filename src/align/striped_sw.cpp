#include "align/striped_sw.hpp"

#include <algorithm>
#include <limits>

#include "align/smith_waterman.hpp"

#if defined(__SSE2__) && !defined(MERA_FORCE_SCALAR_SW)
#include <emmintrin.h>
#define MERA_SSW_SIMD 1
// std::vector<__m128i> is the natural container for the striped rows; GCC
// warns that the alignment attribute is ignored in the template argument,
// which is harmless here (allocation is 16B-aligned on x86-64 malloc).
// push/pop so the suppression covers exactly this TU's striped code, not
// whatever else the build happens to pull in after it.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wignored-attributes"
#else
#define MERA_SSW_SIMD 0
#endif

namespace mera::align {

bool StripedSmithWaterman::simd_enabled() noexcept { return MERA_SSW_SIMD != 0; }

StripedSmithWaterman::StripedSmithWaterman(
    std::span<const std::uint8_t> query_codes, const Scoring& sc)
    : query_(query_codes.begin(), query_codes.end()), sc_(sc) {
  bias_ = std::max(0, -sc_.mismatch);
#if MERA_SSW_SIMD
  const std::size_t m = query_.size();
  if (m == 0) return;
  seglen8_ = (m + 15) / 16;
  profile8_.assign(4 * seglen8_ * 16, 0);
  for (std::uint8_t r = 0; r < 4; ++r)
    for (std::size_t i = 0; i < seglen8_; ++i)
      for (std::size_t lane = 0; lane < 16; ++lane) {
        const std::size_t pos = i + lane * seglen8_;
        const int v = pos < m ? sc_.substitution(r, query_[pos]) + bias_ : 0;
        profile8_[(r * seglen8_ + i) * 16 + lane] =
            static_cast<std::uint8_t>(v);
      }
  seglen16_ = (m + 7) / 8;
  profile16_.assign(4 * seglen16_ * 8, 0);
  for (std::uint8_t r = 0; r < 4; ++r)
    for (std::size_t i = 0; i < seglen16_; ++i)
      for (std::size_t lane = 0; lane < 8; ++lane) {
        const std::size_t pos = i + lane * seglen16_;
        const int v = pos < m ? sc_.substitution(r, query_[pos]) : 0;
        profile16_[(r * seglen16_ + i) * 8 + lane] =
            static_cast<std::int16_t>(v);
      }
#endif
}

namespace {
std::vector<std::uint8_t> codes_of(std::string_view s) { return dna_codes(s); }
}  // namespace

StripedSmithWaterman::StripedSmithWaterman(std::string_view query,
                                           const Scoring& sc)
    : StripedSmithWaterman(std::span<const std::uint8_t>(codes_of(query)), sc) {}

namespace {

#if MERA_SSW_SIMD

/// 8-bit saturated Farrar pass. Returns {score (0..255), t_end, saturated}.
struct Pass8Result {
  int score;
  std::size_t t_end;
  bool saturated;
};

Pass8Result striped_u8(std::span<const std::uint8_t> target,
                       const std::uint8_t* profile, std::size_t seglen,
                       int bias, int gap_open_total, int gap_extend) {
  const auto vGapO = _mm_set1_epi8(static_cast<char>(gap_open_total));
  const auto vGapE = _mm_set1_epi8(static_cast<char>(gap_extend));
  const auto vBias = _mm_set1_epi8(static_cast<char>(bias));
  const auto vZero = _mm_setzero_si128();

  std::vector<__m128i> Hstore(seglen, vZero), Hload(seglen, vZero),
      Evec(seglen, vZero);
  __m128i vMax = vZero;
  std::size_t best_col = 0;
  std::uint8_t best = 0;

  for (std::size_t j = 0; j < target.size(); ++j) {
    const __m128i* prof = reinterpret_cast<const __m128i*>(
        profile + static_cast<std::size_t>(target[j]) * seglen * 16);
    // H from previous column's last segment, shifted one lane.
    __m128i vH = _mm_slli_si128(Hstore[seglen - 1], 1);
    __m128i vF = vZero;
    __m128i vColMax = vZero;
    std::swap(Hstore, Hload);
    for (std::size_t i = 0; i < seglen; ++i) {
      vH = _mm_adds_epu8(vH, _mm_loadu_si128(prof + i));
      vH = _mm_subs_epu8(vH, vBias);
      const __m128i vE = Evec[i];
      vH = _mm_max_epu8(vH, vE);
      vH = _mm_max_epu8(vH, vF);
      vColMax = _mm_max_epu8(vColMax, vH);
      Hstore[i] = vH;
      // Update E and F for the next column / next segment.
      __m128i vHgap = _mm_subs_epu8(vH, vGapO);
      Evec[i] = _mm_max_epu8(_mm_subs_epu8(vE, vGapE), vHgap);
      vF = _mm_max_epu8(_mm_subs_epu8(vF, vGapE), vHgap);
      vH = Hload[i];
    }
    // Lazy F: propagate F across segment boundaries until it stops mattering.
    for (int lane = 0; lane < 16; ++lane) {
      vF = _mm_slli_si128(vF, 1);
      bool changed = false;
      for (std::size_t i = 0; i < seglen; ++i) {
        __m128i vH2 = _mm_max_epu8(Hstore[i], vF);
        const __m128i neq =
            _mm_cmpeq_epi8(vH2, Hstore[i]);  // 0xFF where unchanged
        if (_mm_movemask_epi8(neq) != 0xFFFF) changed = true;
        Hstore[i] = vH2;
        vColMax = _mm_max_epu8(vColMax, vH2);
        const __m128i vHgap = _mm_subs_epu8(vH2, vGapO);
        Evec[i] = _mm_max_epu8(Evec[i], vHgap);
        vF = _mm_subs_epu8(vF, vGapE);
      }
      if (!changed) break;
    }
    vMax = _mm_max_epu8(vMax, vColMax);
    // Track best column for t_end.
    alignas(16) std::uint8_t lanes[16];
    _mm_store_si128(reinterpret_cast<__m128i*>(lanes), vColMax);
    const std::uint8_t colbest = *std::max_element(lanes, lanes + 16);
    if (colbest > best) {
      best = colbest;
      best_col = j;
    }
  }
  return {static_cast<int>(best), best_col, best >= 255 - bias};
}

/// 16-bit signed Farrar pass (no bias needed; explicit zero floor).
struct Pass16Result {
  int score;
  std::size_t t_end;
};

Pass16Result striped_i16(std::span<const std::uint8_t> target,
                         const std::int16_t* profile, std::size_t seglen,
                         int gap_open_total, int gap_extend) {
  const auto vGapO = _mm_set1_epi16(static_cast<short>(gap_open_total));
  const auto vGapE = _mm_set1_epi16(static_cast<short>(gap_extend));
  const auto vZero = _mm_setzero_si128();

  std::vector<__m128i> Hstore(seglen, vZero), Hload(seglen, vZero),
      Evec(seglen, vZero);
  std::int16_t best = 0;
  std::size_t best_col = 0;

  for (std::size_t j = 0; j < target.size(); ++j) {
    const __m128i* prof = reinterpret_cast<const __m128i*>(
        profile + static_cast<std::size_t>(target[j]) * seglen * 8);
    __m128i vH = _mm_slli_si128(Hstore[seglen - 1], 2);
    __m128i vF = vZero;
    __m128i vColMax = vZero;
    std::swap(Hstore, Hload);
    for (std::size_t i = 0; i < seglen; ++i) {
      vH = _mm_adds_epi16(vH, _mm_loadu_si128(prof + i));
      vH = _mm_max_epi16(vH, vZero);
      const __m128i vE = Evec[i];
      vH = _mm_max_epi16(vH, vE);
      vH = _mm_max_epi16(vH, vF);
      vColMax = _mm_max_epi16(vColMax, vH);
      Hstore[i] = vH;
      __m128i vHgap = _mm_max_epi16(_mm_subs_epi16(vH, vGapO), vZero);
      Evec[i] = _mm_max_epi16(_mm_subs_epi16(vE, vGapE), vHgap);
      vF = _mm_max_epi16(_mm_subs_epi16(vF, vGapE), vHgap);
      vH = Hload[i];
    }
    for (int lane = 0; lane < 8; ++lane) {
      vF = _mm_slli_si128(vF, 2);
      bool changed = false;
      for (std::size_t i = 0; i < seglen; ++i) {
        const __m128i vH2 = _mm_max_epi16(Hstore[i], vF);
        const __m128i eq = _mm_cmpeq_epi16(vH2, Hstore[i]);
        if (_mm_movemask_epi8(eq) != 0xFFFF) changed = true;
        Hstore[i] = vH2;
        vColMax = _mm_max_epi16(vColMax, vH2);
        const __m128i vHgap = _mm_max_epi16(_mm_subs_epi16(vH2, vGapO), vZero);
        Evec[i] = _mm_max_epi16(Evec[i], vHgap);
        vF = _mm_subs_epi16(vF, vGapE);
      }
      if (!changed) break;
    }
    alignas(16) std::int16_t lanes[8];
    _mm_store_si128(reinterpret_cast<__m128i*>(lanes), vColMax);
    const std::int16_t colbest = *std::max_element(lanes, lanes + 8);
    if (colbest > best) {
      best = colbest;
      best_col = j;
    }
  }
  return {static_cast<int>(best), best_col};
}

#endif  // MERA_SSW_SIMD

}  // namespace

StripedResult striped_scalar_score(std::span<const std::uint8_t> query,
                                   std::span<const std::uint8_t> target,
                                   const Scoring& sc) {
  StripedResult r;
  const std::size_t m = query.size(), n = target.size();
  if (m == 0 || n == 0) return r;
  const int go = sc.gap_open + sc.gap_extend;
  const int ge = sc.gap_extend;
  constexpr int kNegInf = std::numeric_limits<int>::min() / 4;
  std::vector<int> H(n + 1, 0), Hprev(n + 1, 0), Fv(n + 1, kNegInf);
  for (std::size_t i = 1; i <= m; ++i) {
    std::swap(Hprev, H);
    H[0] = 0;
    int E = kNegInf;
    for (std::size_t j = 1; j <= n; ++j) {
      E = std::max(E - ge, H[j - 1] - go);
      Fv[j] = std::max(Fv[j] - ge, Hprev[j] - go);
      const int diag = Hprev[j - 1] + sc.substitution(query[i - 1], target[j - 1]);
      H[j] = std::max({0, diag, E, Fv[j]});
      // Tie-break contract: among cells with the best score, the smallest
      // t_end wins. The row-major scan must therefore keep shrinking t_end
      // on equal-score cells in later rows, not just take the first best
      // cell it happens to visit (which is NOT the smallest column).
      if (H[j] > r.score) {
        r.score = H[j];
        r.t_end = j - 1;
      } else if (H[j] == r.score && r.score > 0 && j - 1 < r.t_end) {
        r.t_end = j - 1;
      }
    }
  }
  return r;
}

StripedResult StripedSmithWaterman::align(
    std::span<const std::uint8_t> target_codes) const {
  if (query_.empty() || target_codes.empty()) return {};
#if MERA_SSW_SIMD
  const int go = sc_.gap_open + sc_.gap_extend;
  const int ge = sc_.gap_extend;
  const Pass8Result p8 = striped_u8(target_codes, profile8_.data(), seglen8_,
                                    bias_, go, ge);
  if (!p8.saturated) return {p8.score, p8.t_end, false};
  const Pass16Result p16 =
      striped_i16(target_codes, profile16_.data(), seglen16_, go, ge);
  return {p16.score, p16.t_end, true};
#else
  return striped_scalar_score(std::span<const std::uint8_t>(query_),
                              target_codes, sc_);
#endif
}

StripedResult StripedSmithWaterman::align(std::string_view target) const {
  const auto t = dna_codes(target);
  return align(std::span<const std::uint8_t>(t));
}

}  // namespace mera::align

#if MERA_SSW_SIMD
#pragma GCC diagnostic pop
#endif
