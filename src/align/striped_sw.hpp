// Striped SIMD Smith-Waterman (Farrar 2007), the SSW-library stand-in the
// paper uses for seed extension (Section V-B).
//
// Score-only kernel: the query profile is laid out in stripes so all SIMD
// lanes advance one target column per iteration, with Farrar's "lazy F" loop
// fixing up rare vertical-gap carries. An 8-bit saturating pass handles the
// common case; on saturation the kernel transparently re-runs in 16 bits.
// On non-SSE2 builds a scalar implementation with identical results is used.
// Property tests assert equality with sw_score_reference on random inputs.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "align/scoring.hpp"

namespace mera::align {

struct StripedResult {
  int score = 0;
  /// 0-based target position of the last column of the best alignment.
  /// Tie-break contract (pinned, identical on every kernel and ISA tier):
  /// among all cells achieving the best score, the SMALLEST t_end wins.
  std::size_t t_end = 0;
  bool used_16bit = false;  ///< 8-bit pass saturated and was retried
};

/// Scalar reference for the score-only kernels: exact local-alignment score
/// plus the pinned smallest-t_end tie-break. Always compiled — every SIMD
/// tier (striped SSE2, batch SSE2/AVX2/AVX-512) is property-tested against
/// it — and it is the fallback the kernels use on non-SSE2 builds and under
/// MERA_FORCE_SCALAR_SW.
[[nodiscard]] StripedResult striped_scalar_score(
    std::span<const std::uint8_t> query, std::span<const std::uint8_t> target,
    const Scoring& sc = {});

/// Reusable query profile: build once per query, align against many targets
/// (exactly how the aligning phase uses it — one read, many candidates).
class StripedSmithWaterman {
 public:
  StripedSmithWaterman(std::span<const std::uint8_t> query_codes,
                       const Scoring& sc = {});
  explicit StripedSmithWaterman(std::string_view query, const Scoring& sc = {});

  [[nodiscard]] StripedResult align(std::span<const std::uint8_t> target_codes) const;
  [[nodiscard]] StripedResult align(std::string_view target) const;

  [[nodiscard]] std::size_t query_len() const noexcept { return query_.size(); }
  [[nodiscard]] const Scoring& scoring() const noexcept { return sc_; }

  /// True when the SIMD code path is compiled in (SSE2 available).
  [[nodiscard]] static bool simd_enabled() noexcept;

 private:
  std::vector<std::uint8_t> query_;
  Scoring sc_;
  // Striped profiles, built lazily in the constructor when SIMD is enabled.
  std::vector<std::uint8_t> profile8_;   // 4 residues x segLen8 x 16 lanes
  std::vector<std::int16_t> profile16_;  // 4 residues x segLen16 x 8 lanes
  std::size_t seglen8_ = 0, seglen16_ = 0;
  int bias_ = 0;
};

}  // namespace mera::align
