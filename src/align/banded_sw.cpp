#include "align/banded_sw.hpp"

#include <algorithm>
#include <climits>
#include <vector>

namespace mera::align {

namespace {
constexpr std::uint8_t kHDiag = 1, kHFromE = 2, kHFromF = 3;
constexpr std::uint8_t kEExt = 4, kFExt = 8;
constexpr int kNegInf = INT_MIN / 4;
}  // namespace

LocalAlignment banded_smith_waterman(std::span<const std::uint8_t> query,
                                     std::span<const std::uint8_t> target,
                                     std::ptrdiff_t diag, std::size_t band,
                                     const Scoring& sc) {
  const std::size_t m = query.size(), n = target.size();
  LocalAlignment out;
  if (m == 0 || n == 0) return out;

  const int go = sc.gap_open + sc.gap_extend;
  const int ge = sc.gap_extend;
  const auto bw = static_cast<std::ptrdiff_t>(band);

  // Same layout as the full kernel but cells outside the band read as -inf.
  // For the window sizes the extension step uses, a full provenance matrix is
  // still tiny; the win is the skipped inner-loop work.
  std::vector<int> H(n + 1, 0), Hprev(n + 1, 0), Fv(n + 1, kNegInf);
  std::vector<std::uint8_t> prov((m + 1) * (n + 1), 0);

  int best = 0;
  std::size_t best_i = 0, best_j = 0;

  for (std::size_t i = 1; i <= m; ++i) {
    std::swap(Hprev, H);
    // Band for row i (1-based): j in [i + diag - bw, i + diag + bw].
    const auto ii = static_cast<std::ptrdiff_t>(i);
    const std::ptrdiff_t jlo =
        std::max<std::ptrdiff_t>(1, ii + diag - bw);
    const std::ptrdiff_t jhi =
        std::min<std::ptrdiff_t>(static_cast<std::ptrdiff_t>(n), ii + diag + bw);
    // Clear cells bordering the band so stale values don't leak in.
    if (jlo >= 1 && static_cast<std::size_t>(jlo) <= n) {
      H[static_cast<std::size_t>(jlo) - 1] = (jlo == 1) ? 0 : kNegInf;
    }
    if (jhi >= 0 && static_cast<std::size_t>(jhi) < n)
      Hprev[static_cast<std::size_t>(jhi) + 1] = kNegInf;
    int E = kNegInf;
    for (std::ptrdiff_t j = jlo; j <= jhi; ++j) {
      const auto ju = static_cast<std::size_t>(j);
      std::uint8_t p = 0;
      const int e_open = H[ju - 1] - go;
      const int e_ext = E - ge;
      if (e_ext >= e_open) {
        E = e_ext;
        p |= kEExt;
      } else {
        E = e_open;
      }
      const int f_open = Hprev[ju] - go;
      const int f_ext = Fv[ju] - ge;
      if (f_ext >= f_open) {
        Fv[ju] = f_ext;
        p |= kFExt;
      } else {
        Fv[ju] = f_open;
      }
      const int diag_score =
          Hprev[ju - 1] + sc.substitution(query[i - 1], target[ju - 1]);
      int h = 0;
      std::uint8_t hsrc = 0;
      if (diag_score > h) { h = diag_score; hsrc = kHDiag; }
      if (E > h) { h = E; hsrc = kHFromE; }
      if (Fv[ju] > h) { h = Fv[ju]; hsrc = kHFromF; }
      H[ju] = h;
      prov[i * (n + 1) + ju] = static_cast<std::uint8_t>(p | hsrc);
      if (h > best) {
        best = h;
        best_i = i;
        best_j = ju;
      }
    }
    // Cells right of the band in this row must not be read as valid next row.
    if (jhi >= 0 && static_cast<std::size_t>(jhi) < n)
      H[static_cast<std::size_t>(jhi) + 1] = kNegInf;
    // jlo is unclamped above: once the band slides entirely past the target
    // (jlo > n + 1, e.g. a query much longer than the window), there is no
    // left-border cell to clear — indexing H there would write out of bounds.
    if (jlo > 1 && static_cast<std::size_t>(jlo) <= n + 1)
      H[static_cast<std::size_t>(jlo) - 1] = kNegInf;
  }

  out.score = best;
  if (best == 0) {
    out.cigar.push(CigarOp::kSoftClip, static_cast<std::uint32_t>(m));
    return out;
  }

  Cigar rev;
  std::size_t i = best_i, j = best_j;
  enum class State { kH, kE, kF } state = State::kH;
  while (i > 0 && j > 0) {
    const std::uint8_t p = prov[i * (n + 1) + j];
    if (state == State::kH) {
      const std::uint8_t hsrc = p & 3u;
      if (hsrc == 0) break;
      if (hsrc == kHDiag) {
        rev.push(CigarOp::kMatch, 1);
        if (query[i - 1] != target[j - 1]) ++out.mismatches;
        --i;
        --j;
      } else if (hsrc == kHFromE) {
        state = State::kE;
      } else {
        state = State::kF;
      }
    } else if (state == State::kE) {
      rev.push(CigarOp::kDelete, 1);
      ++out.gap_columns;
      const bool ext = (p & kEExt) != 0;
      --j;
      if (!ext) state = State::kH;
    } else {
      rev.push(CigarOp::kInsert, 1);
      ++out.gap_columns;
      const bool ext = (p & kFExt) != 0;
      --i;
      if (!ext) state = State::kH;
    }
  }

  out.q_begin = i;
  out.q_end = best_i;
  out.t_begin = j;
  out.t_end = best_j;
  out.cigar.push(CigarOp::kSoftClip, static_cast<std::uint32_t>(i));
  rev.reverse();
  for (const auto& e : rev.elems()) out.cigar.push(e.op, e.len);
  out.cigar.push(CigarOp::kSoftClip, static_cast<std::uint32_t>(m - best_i));
  return out;
}

}  // namespace mera::align
