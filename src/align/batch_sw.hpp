// Inter-candidate SIMD batch Smith-Waterman with runtime ISA dispatch.
//
// The striped kernel (striped_sw.hpp) vectorizes WITHIN one query/target
// pair; this engine vectorizes ACROSS candidates: the many candidate windows
// one read accumulates are packed one-per-lane into SSE2 / AVX2 / AVX-512
// 8-bit vectors and scored in a single DP sweep (the way HMMER tiers its
// dp_vector kernels and mmseqs2 drives smith_waterman_sse2 from Matcher).
// Lanes whose 8-bit score saturates are transparently re-scored in 16-bit
// lanes; a 16-bit-saturated lane falls back to the scalar reference.
//
// Contract: for every candidate, score, t_end (smallest-t_end tie-break) and
// used_16bit are bit-identical to StripedSmithWaterman::align and to
// striped_scalar_score, on every dispatch tier — property-tested by
// tests/test_batch_sw.cpp across all tiers the host supports.
//
// Dispatch: the widest ISA the CPU supports is probed once per scorer
// (cpuid via __builtin_cpu_supports); `MERA_SW_ISA` in the environment (or
// --sw-isa on the CLI) pins a specific tier for testing. Under
// MERA_FORCE_SCALAR_SW builds only the scalar tier exists.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "align/scoring.hpp"
#include "align/striped_sw.hpp"

namespace mera::align {

/// Dispatch tiers, narrowest to widest. kAuto resolves to the widest tier
/// both compiled in and supported by the running CPU (or to the MERA_SW_ISA
/// environment override when set).
enum class SwIsa : std::uint8_t { kAuto = 0, kScalar, kSse2, kAvx2, kAvx512 };

/// "auto" / "scalar" / "sse2" / "avx2" / "avx512".
[[nodiscard]] const char* isa_name(SwIsa isa) noexcept;
/// Inverse of isa_name; nullopt for anything else.
[[nodiscard]] std::optional<SwIsa> parse_isa(std::string_view name) noexcept;
/// Tier is compiled into this binary AND supported by the running CPU.
/// kScalar and kAuto are always supported.
[[nodiscard]] bool isa_supported(SwIsa isa) noexcept;
/// Widest supported tier on this host (kScalar when no SIMD tier is).
[[nodiscard]] SwIsa detect_isa() noexcept;
/// Resolve `requested` to a concrete tier: an explicit tier is validated and
/// returned; kAuto honours MERA_SW_ISA when set, else detect_isa(). Throws
/// std::invalid_argument on an unknown MERA_SW_ISA value or a tier this
/// CPU/build does not support — forcing a tier is for testing, and a forced
/// tier that silently degrades would test nothing.
[[nodiscard]] SwIsa resolve_isa(SwIsa requested);

/// Scores one query against a batch of independent candidate targets.
///
///   BatchSwScorer scorer(query_codes, scoring);     // per oriented query
///   for (cand : candidates) scorer.add(cand.window_codes);
///   const auto results = scorer.flush();            // insertion order
///
/// flush() packs pending candidates into lane groups of the resolved tier's
/// width and returns one StripedResult per candidate. add/flush can be
/// repeated; the scorer holds no per-target state between flushes.
class BatchSwScorer {
 public:
  explicit BatchSwScorer(std::span<const std::uint8_t> query_codes,
                         const Scoring& sc = {}, SwIsa isa = SwIsa::kAuto);

  /// Enqueue one candidate target (codes are copied); returns its index in
  /// the batch, which is its index into flush()'s result vector.
  std::size_t add(std::span<const std::uint8_t> target_codes);

  /// Score every pending candidate and clear the queue. Results are in
  /// add() order and bit-identical to StripedSmithWaterman::align per pair.
  [[nodiscard]] std::vector<StripedResult> flush();

  [[nodiscard]] std::size_t pending() const noexcept { return lens_.size(); }
  [[nodiscard]] std::size_t query_len() const noexcept { return query_.size(); }
  [[nodiscard]] const Scoring& scoring() const noexcept { return sc_; }
  /// The concrete tier this scorer dispatches to (never kAuto).
  [[nodiscard]] SwIsa isa() const noexcept { return isa_; }

 private:
  std::vector<std::uint8_t> query_;
  Scoring sc_;
  SwIsa isa_;
  int bias_ = 0;
  // Pending candidates: concatenated codes + per-candidate extents.
  std::vector<std::uint8_t> pool_;
  std::vector<std::size_t> offs_, lens_;
  // Lane-group scratch, reused across flushes.
  std::vector<std::uint8_t> tbuf8_;
  std::vector<std::int16_t> tbuf16_;
};

/// One-shot convenience over BatchSwScorer for `query` vs each of `targets`.
[[nodiscard]] std::vector<StripedResult> batch_sw_scores(
    std::span<const std::uint8_t> query,
    std::span<const std::vector<std::uint8_t>> targets, const Scoring& sc = {},
    SwIsa isa = SwIsa::kAuto);

}  // namespace mera::align
