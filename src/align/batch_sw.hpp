// Inter-candidate SIMD batch Smith-Waterman with runtime ISA dispatch.
//
// The striped kernel (striped_sw.hpp) vectorizes WITHIN one query/target
// pair; this engine vectorizes ACROSS candidates: candidate windows are
// packed one-per-lane into SSE2 / AVX2 / AVX-512 8-bit vectors and scored in
// a single DP sweep (the way HMMER tiers its dp_vector kernels and mmseqs2
// drives smith_waterman_sse2 from Matcher). Lanes whose 8-bit score
// saturates are transparently re-scored in 16-bit lanes; a 16-bit-saturated
// lane falls back to the (bit-identical) per-pair striped engine.
//
// Since the cross-read pooling layer (pooled_queue.hpp) the scorer is
// multi-query: each lane carries its own query, so candidates from many
// reads share one sweep. Register queries with add_query() — duplicate query
// bytes dedup to one id and share one lazily built striped profile across
// flushes — then enqueue pairs with add(qid, target). The single-query
// constructor and add(target) remain as a convenience over query id 0.
//
// Contract: for every candidate, score, t_end (smallest-t_end tie-break) and
// used_16bit are bit-identical to StripedSmithWaterman::align and to
// striped_scalar_score, on every dispatch tier — property-tested by
// tests/test_batch_sw.cpp and tests/test_pooled_sw.cpp across all tiers the
// host supports.
//
// Dispatch: the widest ISA the CPU supports is probed once per scorer
// (cpuid via __builtin_cpu_supports); `MERA_SW_ISA` in the environment (or
// --sw-isa on the CLI) pins a specific tier for testing. Under
// MERA_FORCE_SCALAR_SW builds only the scalar tier exists.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "align/scoring.hpp"
#include "align/striped_sw.hpp"

namespace mera::align {

/// Dispatch tiers, narrowest to widest. kAuto resolves to the widest tier
/// both compiled in and supported by the running CPU (or to the MERA_SW_ISA
/// environment override when set).
enum class SwIsa : std::uint8_t { kAuto = 0, kScalar, kSse2, kAvx2, kAvx512 };

/// "auto" / "scalar" / "sse2" / "avx2" / "avx512".
[[nodiscard]] const char* isa_name(SwIsa isa) noexcept;
/// Inverse of isa_name; nullopt for anything else.
[[nodiscard]] std::optional<SwIsa> parse_isa(std::string_view name) noexcept;
/// Tier is compiled into this binary AND supported by the running CPU.
/// kScalar and kAuto are always supported.
[[nodiscard]] bool isa_supported(SwIsa isa) noexcept;
/// Widest supported tier on this host (kScalar when no SIMD tier is).
[[nodiscard]] SwIsa detect_isa() noexcept;
/// Resolve `requested` to a concrete tier: an explicit tier is validated and
/// returned; kAuto honours MERA_SW_ISA when set, else detect_isa(). Throws
/// std::invalid_argument on an unknown MERA_SW_ISA value or a tier this
/// CPU/build does not support — forcing a tier is for testing, and a forced
/// tier that silently degrades would test nothing.
[[nodiscard]] SwIsa resolve_isa(SwIsa requested);
/// 8-bit lane width of a concrete tier (16 / 32 / 64); 1 for kScalar.
/// Resolves kAuto first.
[[nodiscard]] std::size_t isa_lanes8(SwIsa isa);
/// Human-readable per-tier support report for this binary on this CPU —
/// what `--sw-isa help` / `MERA_SW_ISA=help` print.
[[nodiscard]] std::string isa_support_summary();

/// Lane-occupancy accounting for the batch engine's SIMD sweeps. Each
/// lane-group sweep of width W carrying F live candidates records F filled
/// and W-F wasted lanes plus one octile-histogram sample of F/W. Per-pair
/// fallbacks (scalar tier, exotic scoring) record nothing — occupancy
/// describes vector sweeps only. These feed the mera_sw_lane_* obs series;
/// they live outside PipelineStats because pooled and per-read flushing
/// produce identical PipelineStats by contract but different lane shapes by
/// design.
struct LaneStats {
  static constexpr std::size_t kOccBuckets = 8;
  std::uint64_t flushes = 0;       ///< flush() calls scoring >= 1 candidate
  std::uint64_t groups = 0;        ///< SIMD lane-group sweeps (8- and 16-bit)
  std::uint64_t lanes_filled = 0;  ///< lanes carrying a live candidate
  std::uint64_t lanes_wasted = 0;  ///< idle lanes in those sweeps
  /// Octile histogram of per-group occupancy: bucket i counts groups with
  /// filled/width in (i/8, (i+1)/8].
  std::array<std::uint64_t, kOccBuckets> occupancy{};

  void record_group(std::size_t filled, std::size_t width) noexcept;
  /// lanes_filled / (lanes_filled + lanes_wasted); 0 when no sweeps ran.
  [[nodiscard]] double mean_occupancy() const noexcept;
  LaneStats& operator+=(const LaneStats& o) noexcept;
};

/// Scores query/target candidate pairs in SIMD lane groups.
///
/// Single-query (per-read) form:
///   BatchSwScorer scorer(query_codes, scoring);     // per oriented query
///   for (cand : candidates) scorer.add(cand.window_codes);
///   const auto results = scorer.flush();            // insertion order
///
/// Multi-query (cross-read pooling) form:
///   BatchSwScorer scorer(scoring);
///   const auto qid = scorer.add_query(query_codes); // dedups by bytes
///   scorer.add(qid, cand.window_codes);
///   const auto results = scorer.flush();            // insertion order
///
/// flush() packs pending candidates into lane groups of the resolved tier's
/// width and returns one StripedResult per candidate. add/flush can be
/// repeated; registered queries and their lazily built striped profiles
/// persist across flushes, only the pending-candidate queue is cleared.
class BatchSwScorer {
 public:
  explicit BatchSwScorer(std::span<const std::uint8_t> query_codes,
                         const Scoring& sc = {}, SwIsa isa = SwIsa::kAuto);
  /// Multi-query mode: no initial query; register them with add_query().
  explicit BatchSwScorer(const Scoring& sc = {}, SwIsa isa = SwIsa::kAuto);

  /// Register a query (codes are copied). Identical query bytes return the
  /// same id — and share one lazily built striped profile across flushes.
  std::size_t add_query(std::span<const std::uint8_t> query_codes);

  /// Enqueue one candidate target against query `qid` (codes are copied);
  /// returns its index in the batch, which is its index into flush()'s
  /// result vector.
  std::size_t add(std::size_t qid, std::span<const std::uint8_t> target_codes);
  /// Single-query convenience: the candidate scores against query id 0.
  std::size_t add(std::span<const std::uint8_t> target_codes);

  /// Score every pending candidate and clear the queue. Results are in
  /// add() order and bit-identical to StripedSmithWaterman::align per pair.
  [[nodiscard]] std::vector<StripedResult> flush();

  [[nodiscard]] std::size_t pending() const noexcept { return lens_.size(); }
  [[nodiscard]] std::size_t num_queries() const noexcept {
    return queries_.size();
  }
  /// Codes of a registered query (valid for the scorer's lifetime).
  [[nodiscard]] std::span<const std::uint8_t> query_codes(
      std::size_t qid) const {
    return queries_[qid];
  }
  /// Length of query id 0 (the single-query form's query); 0 if none.
  [[nodiscard]] std::size_t query_len() const noexcept {
    return queries_.empty() ? 0 : queries_.front().size();
  }
  [[nodiscard]] const Scoring& scoring() const noexcept { return sc_; }
  /// The concrete tier this scorer dispatches to (never kAuto).
  [[nodiscard]] SwIsa isa() const noexcept { return isa_; }
  /// Cumulative lane occupancy over every flush of this scorer.
  [[nodiscard]] const LaneStats& lane_stats() const noexcept {
    return lane_stats_;
  }

 private:
  const StripedSmithWaterman& profile_for(std::size_t qid);

  Scoring sc_;
  SwIsa isa_;
  int bias_ = 0;
  /// Padded query rows are provably inert only for mismatch <= 0 and
  /// non-negative gap penalties (see batch_sw_detail.hpp); other schemes
  /// route mixed-length groups through the per-pair striped engine.
  bool pad_safe_ = true;
  // Registered queries: stable byte buffers + bytes->id dedup + lazy
  // striped profiles (built on first per-pair use, reused across flushes).
  std::vector<std::vector<std::uint8_t>> queries_;
  std::unordered_map<std::string, std::size_t> query_ids_;
  std::vector<std::unique_ptr<StripedSmithWaterman>> profiles_;
  // Pending candidates: concatenated codes + per-candidate extents + query.
  std::vector<std::uint8_t> pool_;
  std::vector<std::size_t> offs_, lens_, qids_;
  // Lane-group scratch, reused across flushes.
  std::vector<std::uint8_t> tbuf8_, qbuf8_;
  std::vector<std::int16_t> tbuf16_, qbuf16_;
  LaneStats lane_stats_;
};

/// One-shot convenience over BatchSwScorer for `query` vs each of `targets`.
[[nodiscard]] std::vector<StripedResult> batch_sw_scores(
    std::span<const std::uint8_t> query,
    std::span<const std::vector<std::uint8_t>> targets, const Scoring& sc = {},
    SwIsa isa = SwIsa::kAuto);

}  // namespace mera::align
