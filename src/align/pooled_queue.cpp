#include "align/pooled_queue.hpp"

#include <algorithm>
#include <utility>

namespace mera::align {

PooledExtensionQueue::PooledExtensionQueue(const PooledQueueConfig& cfg,
                                           ScoreFn on_score)
    : cfg_(cfg), isa_(resolve_isa(cfg.isa)), on_score_(std::move(on_score)) {
  cfg_.length_class_width = std::max<std::size_t>(1, cfg_.length_class_width);
  if (cfg_.flush_lanes != 0) {
    flush_lanes_ = cfg_.flush_lanes;
  } else {
    // Auto: one full 8-bit lane group per flush. The scalar tier sweeps one
    // candidate at a time whatever we buffer; 16 just amortizes the
    // per-flush bookkeeping.
    const std::size_t lanes = isa_lanes8(isa_);
    flush_lanes_ = lanes > 1 ? lanes : 16;
  }
}

PooledExtensionQueue::Bucket& PooledExtensionQueue::bucket_for(
    std::size_t cls) {
  auto& slot = buckets_[cls];
  if (!slot) slot = std::make_unique<Bucket>(cfg_.scoring, isa_);
  return *slot;
}

std::size_t PooledExtensionQueue::add_query(
    std::span<const std::uint8_t> query_codes) {
  const std::size_t cls = query_codes.size() / cfg_.length_class_width;
  Bucket& b = bucket_for(cls);
  queries_.push_back({cls, b.scorer.add_query(query_codes)});
  return queries_.size() - 1;
}

std::span<const std::uint8_t> PooledExtensionQueue::query_codes(
    std::size_t qid) const {
  const QueryRef& ref = queries_.at(qid);
  return buckets_.at(ref.cls)->scorer.query_codes(ref.local);
}

void PooledExtensionQueue::enqueue(std::size_t qid,
                                   std::span<const std::uint8_t> window_codes,
                                   std::uint64_t tag) {
  const QueryRef& ref = queries_.at(qid);
  Bucket& b = *buckets_.at(ref.cls);
  b.scorer.add(ref.local, window_codes);
  b.tags.push_back(tag);
  ++pending_;
  if (b.tags.size() >= flush_lanes_) flush_bucket(b);
}

void PooledExtensionQueue::flush_bucket(Bucket& b) {
  if (b.tags.empty()) return;
  const auto results = b.scorer.flush();
  pending_ -= b.tags.size();
  // Swap the tag list out first: a callback may re-enter enqueue() on this
  // same bucket (it won't in the aligner, but the queue shouldn't care).
  std::vector<std::uint64_t> tags;
  tags.swap(b.tags);
  for (std::size_t i = 0; i < tags.size(); ++i) on_score_(tags[i], results[i]);
}

void PooledExtensionQueue::drain() {
  for (auto& [cls, bucket] : buckets_) flush_bucket(*bucket);
}

LaneStats PooledExtensionQueue::lane_stats() const {
  LaneStats total;
  for (const auto& [cls, bucket] : buckets_) total += bucket->scorer.lane_stats();
  return total;
}

}  // namespace mera::align
