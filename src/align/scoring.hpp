// Alignment scoring parameters (affine gaps).
//
// The paper reports alignments "using a commonly employed scoring matrix";
// defaults below match the SSW library's DNA defaults (match +2, mismatch -2,
// gap open 3, gap extend 1; a length-L gap costs open + L*extend).
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "seq/dna.hpp"
#include "seq/packed_seq.hpp"

namespace mera::align {

struct Scoring {
  int match = 2;        ///< added per matching column
  int mismatch = -2;    ///< added per mismatching column
  int gap_open = 3;     ///< subtracted once when a gap opens
  int gap_extend = 1;   ///< subtracted per gap base (including the first)

  [[nodiscard]] int substitution(std::uint8_t a, std::uint8_t b) const noexcept {
    return a == b ? match : mismatch;
  }
  /// Penalty (positive) of a length-`len` gap.
  [[nodiscard]] int gap_cost(int len) const noexcept {
    return len <= 0 ? 0 : gap_open + gap_extend * len;
  }
};

/// ASCII DNA -> 2-bit code vector for the alignment kernels ('N' -> 'A').
[[nodiscard]] inline std::vector<std::uint8_t> dna_codes(std::string_view s) {
  std::vector<std::uint8_t> v(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    const std::uint8_t c = seq::encode_base(s[i]);
    v[i] = c == seq::kInvalidBase ? 0 : c;
  }
  return v;
}

[[nodiscard]] inline std::vector<std::uint8_t> dna_codes(
    const seq::PackedSeq& s, std::size_t pos, std::size_t len) {
  std::vector<std::uint8_t> v(len);
  for (std::size_t i = 0; i < len; ++i) v[i] = s.code_at(pos + i);
  return v;
}

[[nodiscard]] inline std::vector<std::uint8_t> dna_codes(const seq::PackedSeq& s) {
  return dna_codes(s, 0, s.size());
}

}  // namespace mera::align
