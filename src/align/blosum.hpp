// Protein substitution-matrix scoring (BLOSUM62) and the matrix-scored
// Smith-Waterman entry points, generalizing the aligner beyond DNA as the
// paper's conclusions propose.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

#include "align/smith_waterman.hpp"

namespace mera::align {

using SubstMatrix = std::array<std::array<int, 24>, 24>;

/// The standard NCBI BLOSUM62 matrix in "ARNDCQEGHILKMFPSTWYVBZX*" order.
[[nodiscard]] const SubstMatrix& blosum62() noexcept;

struct MatrixScoring {
  const SubstMatrix* matrix = nullptr;  ///< defaults to blosum62() when null
  int gap_open = 10;   ///< classic BLOSUM62 protein defaults (10, 1)
  int gap_extend = 1;

  [[nodiscard]] const SubstMatrix& mat() const noexcept {
    return matrix ? *matrix : blosum62();
  }
};

/// Full-DP local alignment of protein code spans (seq::protein_codes).
[[nodiscard]] LocalAlignment smith_waterman_matrix(
    std::span<const std::uint8_t> query, std::span<const std::uint8_t> target,
    const MatrixScoring& sc = {});

/// ASCII protein convenience overload.
[[nodiscard]] LocalAlignment smith_waterman_protein(
    std::string_view query, std::string_view target,
    const MatrixScoring& sc = {});

}  // namespace mera::align
