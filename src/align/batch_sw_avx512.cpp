// AVX-512BW tier of the batch scorer: 64 candidates per 8-bit group, 32 per
// 16-bit group, using mask-register compares instead of vector blends. This
// TU alone is compiled with -mavx512f -mavx512bw (set in src/CMakeLists.txt
// when the compiler supports them); the dispatcher only calls in after
// __builtin_cpu_supports("avx512bw") says the host can run it.
#include "align/batch_sw_detail.hpp"

#if defined(__AVX512F__) && defined(__AVX512BW__) && \
    !defined(MERA_FORCE_SCALAR_SW)

#include <immintrin.h>

#include "align/batch_sw_kernel.hpp"

namespace mera::align::detail {
namespace {

struct Avx512Traits {
  using V = __m512i;
  static constexpr int kLanes8 = 64;
  static constexpr int kLanes16 = 32;

  static V zero() { return _mm512_setzero_si512(); }
  static V load(const void* p) { return _mm512_loadu_si512(p); }
  static void store(void* p, V v) { _mm512_storeu_si512(p, v); }

  static V set1_u8(std::uint8_t x) {
    return _mm512_set1_epi8(static_cast<char>(x));
  }
  static V adds_u8(V a, V b) { return _mm512_adds_epu8(a, b); }
  static V subs_u8(V a, V b) { return _mm512_subs_epu8(a, b); }
  static V max_u8(V a, V b) { return _mm512_max_epu8(a, b); }
  static V sel_eq8(V t, V q, V a, V b) {
    return _mm512_mask_blend_epi8(_mm512_cmpeq_epi8_mask(t, q), b, a);
  }

  static V set1_i16(std::int16_t x) { return _mm512_set1_epi16(x); }
  static V adds_i16(V a, V b) { return _mm512_adds_epi16(a, b); }
  static V subs_i16(V a, V b) { return _mm512_subs_epi16(a, b); }
  static V max_i16(V a, V b) { return _mm512_max_epi16(a, b); }
  static V sel_eq16(V t, V q, V a, V b) {
    return _mm512_mask_blend_epi16(_mm512_cmpeq_epi16_mask(t, q), b, a);
  }
};

const BatchKernel kKernel = {Avx512Traits::kLanes8, Avx512Traits::kLanes16,
                             &batch_pass8<Avx512Traits>,
                             &batch_pass16<Avx512Traits>};

}  // namespace

const BatchKernel* batch_kernel_avx512() noexcept { return &kKernel; }

}  // namespace mera::align::detail

#else  // !AVX512BW || MERA_FORCE_SCALAR_SW

namespace mera::align::detail {
const BatchKernel* batch_kernel_avx512() noexcept { return nullptr; }
}  // namespace mera::align::detail

#endif
