#include "align/smith_waterman.hpp"

#include <algorithm>
#include <climits>
#include <vector>

#include "align/sw_engine.hpp"

namespace mera::align {

namespace {

LocalAlignment from_engine(detail::SwOut&& o) {
  LocalAlignment a;
  a.score = o.score;
  a.q_begin = o.q_begin;
  a.q_end = o.q_end;
  a.t_begin = o.t_begin;
  a.t_end = o.t_end;
  a.cigar = std::move(o.cigar);
  a.mismatches = o.mismatches;
  a.gap_columns = o.gap_columns;
  return a;
}

}  // namespace

LocalAlignment smith_waterman(std::span<const std::uint8_t> query,
                              std::span<const std::uint8_t> target,
                              const Scoring& sc) {
  return from_engine(detail::sw_align(
      query, target,
      [&sc](std::uint8_t a, std::uint8_t b) { return sc.substitution(a, b); },
      sc.gap_open, sc.gap_extend));
}

LocalAlignment smith_waterman(std::string_view query, std::string_view target,
                              const Scoring& sc) {
  const auto q = dna_codes(query);
  const auto t = dna_codes(target);
  return smith_waterman(std::span<const std::uint8_t>(q),
                        std::span<const std::uint8_t>(t), sc);
}

int sw_score_reference(std::span<const std::uint8_t> query,
                       std::span<const std::uint8_t> target,
                       const Scoring& sc) {
  const std::size_t m = query.size(), n = target.size();
  if (m == 0 || n == 0) return 0;
  const int go = sc.gap_open + sc.gap_extend;
  const int ge = sc.gap_extend;
  constexpr int kNegInf = INT_MIN / 4;
  std::vector<int> H(n + 1, 0), Hprev(n + 1, 0), Fv(n + 1, kNegInf);
  int best = 0;
  for (std::size_t i = 1; i <= m; ++i) {
    std::swap(Hprev, H);
    H[0] = 0;
    int E = kNegInf;
    for (std::size_t j = 1; j <= n; ++j) {
      E = std::max(E - ge, H[j - 1] - go);
      Fv[j] = std::max(Fv[j] - ge, Hprev[j] - go);
      const int diag =
          Hprev[j - 1] + sc.substitution(query[i - 1], target[j - 1]);
      H[j] = std::max({0, diag, E, Fv[j]});
      best = std::max(best, H[j]);
    }
  }
  return best;
}

}  // namespace mera::align
