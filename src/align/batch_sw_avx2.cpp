// AVX2 tier of the batch scorer: 32 candidates per 8-bit group, 16 per
// 16-bit group. This TU alone is compiled with -mavx2 (set in
// src/CMakeLists.txt when the compiler supports it); the dispatcher only
// calls in after __builtin_cpu_supports("avx2") says the host can run it.
#include "align/batch_sw_detail.hpp"

#if defined(__AVX2__) && !defined(MERA_FORCE_SCALAR_SW)

#include <immintrin.h>

#include "align/batch_sw_kernel.hpp"

namespace mera::align::detail {
namespace {

struct Avx2Traits {
  using V = __m256i;
  static constexpr int kLanes8 = 32;
  static constexpr int kLanes16 = 16;

  static V zero() { return _mm256_setzero_si256(); }
  static V load(const void* p) {
    return _mm256_loadu_si256(static_cast<const __m256i*>(p));
  }
  static void store(void* p, V v) {
    _mm256_storeu_si256(static_cast<__m256i*>(p), v);
  }

  static V set1_u8(std::uint8_t x) {
    return _mm256_set1_epi8(static_cast<char>(x));
  }
  static V adds_u8(V a, V b) { return _mm256_adds_epu8(a, b); }
  static V subs_u8(V a, V b) { return _mm256_subs_epu8(a, b); }
  static V max_u8(V a, V b) { return _mm256_max_epu8(a, b); }
  static V sel_eq8(V t, V q, V a, V b) {
    return _mm256_blendv_epi8(b, a, _mm256_cmpeq_epi8(t, q));
  }

  static V set1_i16(std::int16_t x) { return _mm256_set1_epi16(x); }
  static V adds_i16(V a, V b) { return _mm256_adds_epi16(a, b); }
  static V subs_i16(V a, V b) { return _mm256_subs_epi16(a, b); }
  static V max_i16(V a, V b) { return _mm256_max_epi16(a, b); }
  static V sel_eq16(V t, V q, V a, V b) {
    // cmpeq_epi16 yields all-ones / all-zero bytes per element, so the
    // byte-granular blend selects whole 16-bit elements.
    return _mm256_blendv_epi8(b, a, _mm256_cmpeq_epi16(t, q));
  }
};

const BatchKernel kKernel = {Avx2Traits::kLanes8, Avx2Traits::kLanes16,
                             &batch_pass8<Avx2Traits>,
                             &batch_pass16<Avx2Traits>};

}  // namespace

const BatchKernel* batch_kernel_avx2() noexcept { return &kKernel; }

}  // namespace mera::align::detail

#else  // !__AVX2__ || MERA_FORCE_SCALAR_SW

namespace mera::align::detail {
const BatchKernel* batch_kernel_avx2() noexcept { return nullptr; }
}  // namespace mera::align::detail

#endif
