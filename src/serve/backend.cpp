#include "serve/backend.hpp"

#include <utility>

#include "cache/cache_snapshot.hpp"
#include "core/sam_writer.hpp"

namespace mera::serve {

Backend::Backend(core::IndexedReference ref, core::SessionConfig cfg) {
  single_.emplace(std::move(ref), cfg);
}

Backend::Backend(shard::ShardedReference ref, shard::ShardedSessionConfig cfg) {
  sharded_.emplace(std::move(ref), cfg);
}

BatchSummary Backend::align_batch(pgas::Runtime& rt,
                                  std::vector<seq::SeqRecord>&& reads,
                                  core::AlignmentSink& sink) {
  BatchSummary out;
  if (single_) {
    core::BatchResult res = single_->align_batch(rt, std::move(reads), sink);
    out.stats = res.stats;
    out.report = std::move(res.report);
    out.seed_cache = res.seed_cache;
    out.target_cache = res.target_cache;
    out.lane_stats = res.lane_stats;
    return out;
  }
  shard::ShardedBatchResult res =
      sharded_->align_batch(rt, std::move(reads), sink);
  out.stats = res.stats;
  out.report = std::move(res.report);
  for (const core::BatchResult& b : res.per_shard) {
    out.seed_cache.hits += b.seed_cache.hits;
    out.seed_cache.misses += b.seed_cache.misses;
    out.seed_cache.insertions += b.seed_cache.insertions;
    out.seed_cache.evictions += b.seed_cache.evictions;
    out.seed_cache.admission_rejects += b.seed_cache.admission_rejects;
    out.target_cache.hits += b.target_cache.hits;
    out.target_cache.misses += b.target_cache.misses;
    out.target_cache.insertions += b.target_cache.insertions;
    out.target_cache.evictions += b.target_cache.evictions;
    out.target_cache.admission_rejects += b.target_cache.admission_rejects;
  }
  out.lane_stats = res.lane_stats;
  out.wall_s = res.wall_s;
  return out;
}

std::vector<core::SamTarget> Backend::sam_targets() const {
  if (single_) return core::sam_targets(single_->reference().targets());
  return sharded_->reference().sam_targets();
}

const core::SessionConfig& Backend::config() const {
  return single_ ? single_->config() : sharded_->config();
}

int Backend::num_shards() const noexcept {
  return single_ ? 1 : sharded_->num_shards();
}

void Backend::save_caches(const pgas::Runtime& rt,
                          const std::string& dir) const {
  if (single_)
    single_->save_caches(rt, dir + "/" + cache::kSessionSnapshotFile);
  else
    sharded_->save_caches(rt, dir);
}

void Backend::load_caches(const pgas::Runtime& rt, const std::string& dir) {
  if (single_)
    single_->load_caches(rt, dir + "/" + cache::kSessionSnapshotFile);
  else
    sharded_->load_caches(rt, dir);
}

}  // namespace mera::serve
