// The always-on multi-tenant alignment daemon.
//
// The paper's pipeline amortizes index construction over one run; the daemon
// amortizes it over a PROCESS LIFETIME. It owns one warm Backend (index +
// session caches, built or --load-cache-warmed once) and one pgas::Runtime,
// listens on a UNIX-domain socket speaking the serve::framing protocol, and
// serves each connection as one tenant's query stream: FASTQ/SeqDB batches
// in, SAM bytes out, every tenant hitting the same warm caches (the
// admission policy arbitrates who stays resident) and — on the sharded
// backend — the same process-wide shard executor (ShardedSessionConfig::pool
// makes J a global budget, not a per-session one).
//
// Concurrency model: connections are threads, but alignment is serialized
// through a FIFO fair gate — batches run one at a time in strict arrival
// order, so no tenant can starve another, and the session internals (shared
// reconcile scratch, one Runtime) never see two batches at once. Cache
// autosave runs on its own timer thread against the live session (safe by
// design: each cache shard snapshots under its lock, and save_caches writes
// tmp-then-rename so even kill -9 mid-save keeps the last good snapshot).
//
// Robustness contract: SIGPIPE is ignored (a vanished client surfaces as
// EPIPE on its own connection); a malformed frame or batch is answered with
// an Error frame or closes that one connection, never the process; SIGINT/
// SIGTERM request a graceful drain — stop accepting, let in-flight batches
// finish and flush, save caches, exit.
//
// Observability: per-tenant accounting (TenantStats, also served as JSON
// over the socket), `tenant=`-labelled copies of the cache/SW/phase metric
// series, serve-specific series (mera_serve_*), and the whole process
// MetricsRegistry served as a Prometheus text scrape via a MetricsReq frame.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/alignment_sink.hpp"
#include "pgas/runtime.hpp"
#include "serve/backend.hpp"
#include "serve/framing.hpp"

namespace mera::serve {

struct DaemonConfig {
  std::string socket_path;
  /// Cache snapshot directory: autosaved every autosave_interval_s while
  /// serving and once more on graceful shutdown. Empty = no persistence.
  std::string cache_dir;
  /// Seconds between autosaves; <= 0 saves only at shutdown.
  double autosave_interval_s = 0.0;
  std::uint64_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// The @PG line stamped on every connection's SAM stream.
  core::SamProgram program{};
  int backlog = 16;
};

/// One tenant's cumulative accounting (summed over its connections).
struct TenantStats {
  std::uint64_t connections = 0;
  std::uint64_t batches = 0;
  std::uint64_t reads = 0;
  std::uint64_t alignments = 0;
  std::uint64_t sam_bytes = 0;
  std::uint64_t errors = 0;   ///< batches answered with an Error frame
  double align_s = 0.0;       ///< simulated seconds inside align_batch
  double gate_wait_s = 0.0;   ///< real seconds queued behind other tenants
};

class Daemon {
 public:
  /// Takes ownership of the warm backend; the Runtime is constructed here
  /// (it is non-movable) from the topology the index was built on.
  Daemon(Backend backend, pgas::Topology topo, DaemonConfig cfg);
  /// Stops and drains if still running.
  ~Daemon();
  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Bind + listen + start the accept and autosave threads. Throws
  /// FramingError when the socket cannot be bound.
  void start();
  /// Request a graceful drain. Async-signal-safe (an atomic store and a
  /// pipe write), so signal handlers may call it directly. Idempotent.
  void request_stop() noexcept;
  /// Block until the daemon has drained: no more accepts, in-flight
  /// connections finished and flushed, autosave thread joined, final cache
  /// snapshot written (when cache_dir is set), socket file removed.
  void wait();

  [[nodiscard]] const std::string& socket_path() const noexcept {
    return cfg_.socket_path;
  }
  /// Per-tenant accounting snapshot.
  [[nodiscard]] std::map<std::string, TenantStats> tenant_stats() const;
  /// The same accounting as JSON (what a StatsReq frame returns).
  [[nodiscard]] std::string stats_json() const;
  [[nodiscard]] std::uint64_t autosaves_completed() const noexcept {
    return autosaves_.load();
  }

  /// Route SIGINT/SIGTERM to d.request_stop() and ignore SIGPIPE. One
  /// daemon per process: a later call re-targets the handlers.
  static void install_signal_handlers(Daemon& d);

 private:
  /// FIFO ticket gate: tenants' batches align strictly in arrival order.
  class FairGate {
   public:
    /// Blocks until it is this caller's turn; returns real seconds waited.
    double acquire();
    void release();

   private:
    std::mutex mu_;
    std::condition_variable cv_;
    std::uint64_t next_ticket_ = 0;
    std::uint64_t serving_ = 0;
  };

  struct Conn {
    int fd = -1;
    std::thread th;
    std::atomic<bool> done{false};
  };

  void accept_loop();
  void autosave_loop();
  void handle_connection(Conn& conn);
  /// One Batch frame: parse, align through the gate, reply kSam (or kError
  /// and keep the connection). `sam` is the connection's accumulated SAM
  /// stream; bytes since the last batch are drained into the reply.
  void handle_batch(Conn& conn, const std::string& tenant,
                    std::string&& payload, std::ostringstream& sam,
                    core::SamStreamSink& sink);
  void bridge_tenant_metrics(const std::string& tenant,
                             const BatchSummary& summary);
  void reap_finished_connections();

  Backend backend_;
  pgas::Runtime rt_;
  DaemonConfig cfg_;
  std::vector<core::SamTarget> targets_;  ///< catalog, computed once

  int listen_fd_ = -1;
  int stop_pipe_[2] = {-1, -1};  ///< self-pipe: request_stop -> poll wakeup
  std::atomic<bool> stopping_{false};
  bool started_ = false;
  bool drained_ = false;
  std::thread accept_thread_;
  std::thread autosave_thread_;

  FairGate gate_;
  std::atomic<std::uint64_t> autosaves_{0};
  std::atomic<std::uint64_t> temp_batch_seq_{0};

  mutable std::mutex stats_mu_;
  std::map<std::string, TenantStats> stats_;

  std::mutex conns_mu_;
  std::vector<std::unique_ptr<Conn>> conns_;
};

}  // namespace mera::serve
