#include "serve/daemon.hpp"

#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <utility>

#include "align/batch_sw.hpp"
#include "core/batch_prefetcher.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "pgas/phase_timer.hpp"
#include "seq/fastq.hpp"

namespace mera::serve {

namespace {

constexpr std::string_view kSeqDbMagic = "MERASDB1";

/// Tenant names become Prometheus label values and JSON strings; restrict
/// them so neither needs escaping and a hostile name cannot forge series.
bool valid_tenant_name(const std::string& name) {
  if (name.empty() || name.size() > 64) return false;
  for (const char c : name) {
    const auto u = static_cast<unsigned char>(c);
    if (!(std::isalnum(u) || c == '_' || c == '-' || c == '.' || c == ':'))
      return false;
  }
  return true;
}

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::atomic<Daemon*> g_signal_daemon{nullptr};

void stop_signal_handler(int) {
  if (Daemon* d = g_signal_daemon.load(std::memory_order_relaxed))
    d->request_stop();
}

}  // namespace

// ---- FairGate ---------------------------------------------------------------

double Daemon::FairGate::acquire() {
  const double t0 = now_seconds();
  std::unique_lock lock(mu_);
  const std::uint64_t ticket = next_ticket_++;
  cv_.wait(lock, [&] { return serving_ == ticket; });
  return now_seconds() - t0;
}

void Daemon::FairGate::release() {
  {
    const std::lock_guard lock(mu_);
    ++serving_;
  }
  cv_.notify_all();
}

// ---- lifecycle --------------------------------------------------------------

Daemon::Daemon(Backend backend, pgas::Topology topo, DaemonConfig cfg)
    : backend_(std::move(backend)),
      rt_(topo),
      cfg_(std::move(cfg)),
      targets_(backend_.sam_targets()) {
  if (cfg_.socket_path.empty())
    throw std::invalid_argument("Daemon: socket_path must be set");
}

Daemon::~Daemon() {
  request_stop();
  if (started_ && !drained_) {
    try {
      wait();
    } catch (const std::exception& e) {
      obs::Log::warn("daemon shutdown: %s", e.what());
    }
  }
  if (stop_pipe_[0] >= 0) ::close(stop_pipe_[0]);
  if (stop_pipe_[1] >= 0) ::close(stop_pipe_[1]);
}

void Daemon::start() {
  if (started_) throw std::logic_error("Daemon::start called twice");
  if (::pipe(stop_pipe_) != 0)
    throw FramingError(std::string("pipe: ") + std::strerror(errno));
  listen_fd_ = listen_unix(cfg_.socket_path, cfg_.backlog);
  started_ = true;
  accept_thread_ = std::thread([this] { accept_loop(); });
  if (!cfg_.cache_dir.empty() && cfg_.autosave_interval_s > 0.0)
    autosave_thread_ = std::thread([this] { autosave_loop(); });
  obs::Log::info("daemon listening on %s (%d shard%s, %zu targets)",
                 cfg_.socket_path.c_str(), backend_.num_shards(),
                 backend_.num_shards() == 1 ? "" : "s", targets_.size());
}

void Daemon::request_stop() noexcept {
  // Async-signal-safe: one relaxed store and one write(2). Everything that
  // blocks (accept loop, autosave timer) polls the pipe's read end.
  if (stopping_.exchange(true)) return;
  if (stop_pipe_[1] >= 0) {
    const char b = 's';
    [[maybe_unused]] const ssize_t r = ::write(stop_pipe_[1], &b, 1);
  }
}

void Daemon::wait() {
  if (!started_ || drained_) return;
  if (accept_thread_.joinable()) accept_thread_.join();
  // Drain: no new connections exist. Shut down the read side of every live
  // connection so a blocked read_frame sees EOF; the in-flight batch and
  // its kSam reply still flush — SHUT_RD leaves the write side alone.
  {
    const std::lock_guard lock(conns_mu_);
    for (const auto& c : conns_)
      if (!c->done.load()) ::shutdown(c->fd, SHUT_RD);
  }
  for (;;) {
    std::unique_ptr<Conn> conn;
    {
      const std::lock_guard lock(conns_mu_);
      if (conns_.empty()) break;
      conn = std::move(conns_.back());
      conns_.pop_back();
    }
    if (conn->th.joinable()) conn->th.join();
    ::close(conn->fd);
  }
  if (autosave_thread_.joinable()) autosave_thread_.join();
  if (!cfg_.cache_dir.empty()) {
    try {
      backend_.save_caches(rt_, cfg_.cache_dir);
      obs::Log::info("final cache snapshot saved to %s",
                     cfg_.cache_dir.c_str());
    } catch (const std::exception& e) {
      obs::Log::warn("final cache save failed: %s", e.what());
    }
  }
  std::error_code ignored;
  std::filesystem::remove(cfg_.socket_path, ignored);
  drained_ = true;
  obs::Log::info("daemon drained");
}

void Daemon::install_signal_handlers(Daemon& d) {
  g_signal_daemon.store(&d, std::memory_order_relaxed);
  struct sigaction sa{};
  sa.sa_handler = stop_signal_handler;
  sigemptyset(&sa.sa_mask);
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);
  // A client vanishing mid-reply must surface as EPIPE on that write, never
  // as a process-killing signal.
  ::signal(SIGPIPE, SIG_IGN);
}

// ---- accept + autosave threads ---------------------------------------------

void Daemon::accept_loop() {
  auto& reg = obs::MetricsRegistry::global();
  pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {stop_pipe_[0], POLLIN, 0}};
  while (!stopping_.load()) {
    const int r = ::poll(fds, 2, -1);
    if (r < 0) {
      if (errno == EINTR) continue;
      obs::Log::warn("daemon poll: %s", std::strerror(errno));
      break;
    }
    if (fds[1].revents || stopping_.load()) break;
    if (!(fds[0].revents & POLLIN)) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      obs::Log::warn("daemon accept: %s", std::strerror(errno));
      break;
    }
    reap_finished_connections();
    reg.counter("mera_serve_connections_total", {},
                "Client connections accepted")
        .inc();
    reg.gauge("mera_serve_active_connections", {},
              "Connections currently open")
        .add(1.0);
    auto conn = std::make_unique<Conn>();
    conn->fd = fd;
    Conn* raw = conn.get();
    conn->th = std::thread([this, raw] {
      handle_connection(*raw);
      ::shutdown(raw->fd, SHUT_RDWR);  // flush FIN now; close happens at reap
      raw->done.store(true);
      obs::MetricsRegistry::global()
          .gauge("mera_serve_active_connections", {}, "")
          .add(-1.0);
    });
    const std::lock_guard lock(conns_mu_);
    conns_.push_back(std::move(conn));
  }
  ::close(listen_fd_);
  listen_fd_ = -1;
}

void Daemon::autosave_loop() {
  const int timeout_ms =
      std::max(1, static_cast<int>(cfg_.autosave_interval_s * 1000.0));
  pollfd p{stop_pipe_[0], POLLIN, 0};
  while (!stopping_.load()) {
    const int r = ::poll(&p, 1, timeout_ms);
    if (r < 0 && errno == EINTR) continue;
    if (r != 0 || stopping_.load()) return;  // pipe readable = drain
    try {
      // Safe against the serving threads: each cache shard snapshots under
      // its own lock, and the file lands via tmp-then-rename, so neither a
      // concurrent batch nor a crash mid-save can damage the snapshot.
      backend_.save_caches(rt_, cfg_.cache_dir);
      autosaves_.fetch_add(1);
      obs::MetricsRegistry::global()
          .counter("mera_serve_autosaves_total", {},
                   "Periodic cache snapshots completed")
          .inc();
      obs::Log::info("cache autosave -> %s", cfg_.cache_dir.c_str());
    } catch (const std::exception& e) {
      // Not fatal: the previous snapshot is still on disk (atomic rename).
      obs::Log::warn("cache autosave failed: %s", e.what());
    }
  }
}

// ---- per-connection serving -------------------------------------------------

void Daemon::handle_connection(Conn& conn) {
  const int fd = conn.fd;
  std::string tenant = "<unnamed>";
  try {
    auto hello = read_frame(fd, cfg_.max_frame_bytes);
    if (!hello) return;
    if (hello->type != FrameType::kHello ||
        !valid_tenant_name(hello->payload)) {
      write_frame(fd, FrameType::kError,
                  "expected a Hello frame naming the tenant ([A-Za-z0-9_.:-]"
                  "{1,64})");
      return;
    }
    tenant = hello->payload;
    {
      const std::lock_guard lock(stats_mu_);
      ++stats_[tenant].connections;
    }
    obs::Log::info("tenant %s connected", tenant.c_str());

    // The connection's SAM stream: one SamStreamSink for its lifetime, so
    // the header is written exactly once (into the first batch's reply) and
    // the concatenated kSam payloads are byte-identical to the file a
    // one-shot CLI run over the same batches would produce.
    std::ostringstream sam(std::ios::binary);
    core::SamStreamSink sink(sam, targets_, rt_.nranks(), cfg_.program);

    while (auto f = read_frame(fd, cfg_.max_frame_bytes)) {
      switch (f->type) {
        case FrameType::kBatch:
          handle_batch(conn, tenant, std::move(f->payload), sam, sink);
          break;
        case FrameType::kMetricsReq: {
          std::ostringstream os;
          obs::MetricsRegistry::global().write_prometheus(os);
          write_frame(fd, FrameType::kMetrics, os.str());
          break;
        }
        case FrameType::kStatsReq:
          write_frame(fd, FrameType::kStats, stats_json());
          break;
        case FrameType::kGoodbye:
          obs::Log::info("tenant %s said goodbye", tenant.c_str());
          return;
        default:
          write_frame(fd, FrameType::kError,
                      "unexpected frame type " +
                          std::to_string(static_cast<std::uint32_t>(f->type)));
          break;
      }
    }
  } catch (const FramingError& e) {
    // The peer vanished or spoke garbage. Its stream dies; nobody else's
    // does. A best-effort error reply, then drop.
    obs::Log::warn("tenant %s connection dropped: %s", tenant.c_str(),
                   e.what());
    try {
      write_frame(fd, FrameType::kError, e.what());
    } catch (...) {
    }
  } catch (const std::exception& e) {
    obs::Log::warn("tenant %s connection error: %s", tenant.c_str(), e.what());
    try {
      write_frame(fd, FrameType::kError, e.what());
    } catch (...) {
    }
  }
}

void Daemon::handle_batch(Conn& conn, const std::string& tenant,
                          std::string&& payload, std::ostringstream& sam,
                          core::SamStreamSink& sink) {
  auto& reg = obs::MetricsRegistry::global();
  const obs::Labels tlabel{{"tenant", tenant}};
  reg.counter("mera_serve_bytes_in_total", tlabel,
              "Batch payload bytes received")
      .add(static_cast<double>(payload.size()));

  // Parse OUTSIDE the gate: a malformed batch must cost the other tenants
  // nothing, and a parse error is a per-connection Error frame, not a
  // connection (let alone process) death.
  std::vector<seq::SeqRecord> reads;
  try {
    if (payload.size() >= kSeqDbMagic.size() &&
        std::string_view(payload).substr(0, kSeqDbMagic.size()) ==
            kSeqDbMagic) {
      // SeqDB payloads go through a scratch file: the reader is file-based,
      // and reusing core::load_read_batch keeps one loading path.
      const std::string tmp = cfg_.socket_path + ".batch" +
                              std::to_string(temp_batch_seq_.fetch_add(1)) +
                              ".sdb";
      {
        std::ofstream f(tmp, std::ios::binary | std::ios::trunc);
        f.write(payload.data(), static_cast<std::streamsize>(payload.size()));
        if (!f) throw std::runtime_error("cannot spill SeqDB batch to " + tmp);
      }
      try {
        reads = core::load_read_batch(tmp);
      } catch (...) {
        std::error_code ignored;
        std::filesystem::remove(tmp, ignored);
        throw;
      }
      std::error_code ignored;
      std::filesystem::remove(tmp, ignored);
    } else {
      reads = seq::parse_fastq(payload);
    }
    // parse_fastq yields zero records for non-FASTQ text rather than
    // throwing; an empty batch is garbage either way, and silently serving
    // it would burn the connection's one SAM header on a useless reply.
    if (reads.empty())
      throw std::runtime_error(
          "no records parsed (empty or non-FASTQ/SeqDB payload)");
  } catch (const std::exception& e) {
    {
      const std::lock_guard lock(stats_mu_);
      ++stats_[tenant].errors;
    }
    reg.counter("mera_serve_errors_total", tlabel,
                "Batches answered with an Error frame")
        .inc();
    write_frame(conn.fd, FrameType::kError,
                std::string("batch rejected: ") + e.what());
    return;
  }

  // One batch at a time, strict arrival order: the FIFO gate is both the
  // fairness policy and the serialization the session internals require.
  const double waited_s = gate_.acquire();
  BatchSummary summary;
  try {
    summary = backend_.align_batch(rt_, std::move(reads), sink);
  } catch (...) {
    gate_.release();
    {
      const std::lock_guard lock(stats_mu_);
      ++stats_[tenant].errors;
    }
    reg.counter("mera_serve_errors_total", tlabel, "").inc();
    try {
      write_frame(conn.fd, FrameType::kError, "alignment failed");
    } catch (...) {
    }
    throw;
  }
  gate_.release();

  std::string bytes = sam.str();
  sam.str("");

  // Account BEFORE replying: the moment the client sees its Sam frame, a
  // stats/metrics read must already include this batch.
  {
    const std::lock_guard lock(stats_mu_);
    TenantStats& t = stats_[tenant];
    ++t.batches;
    t.reads += summary.stats.reads_processed;
    t.alignments += summary.stats.alignments_reported;
    t.sam_bytes += bytes.size();
    t.align_s += summary.report.total_time_s();
    t.gate_wait_s += waited_s;
  }
  reg.counter("mera_serve_batches_total", tlabel, "Batches served").inc();
  reg.counter("mera_serve_bytes_out_total", tlabel, "SAM bytes sent")
      .add(static_cast<double>(bytes.size()));
  reg.counter("mera_serve_gate_wait_seconds_total", tlabel,
              "Real seconds batches spent queued behind other tenants")
      .add(waited_s);
  bridge_tenant_metrics(tenant, summary);

  write_frame(conn.fd, FrameType::kSam, bytes);
}

void Daemon::bridge_tenant_metrics(const std::string& tenant,
                                   const BatchSummary& summary) {
  // The PR 7 series, split per tenant: same names, same meanings, one extra
  // label — the unlabelled series keep accumulating process-wide totals
  // inside align_batch, so scrapes can slice either way.
  auto& reg = obs::MetricsRegistry::global();
  pgas::add_to_metrics(summary.report, {{"tenant", tenant}});
  const obs::Labels tlabel{{"tenant", tenant}};
  reg.counter("mera_reads_processed_total", tlabel,
              "Reads pushed through align")
      .add(static_cast<double>(summary.stats.reads_processed));
  reg.counter("mera_alignments_reported_total", tlabel,
              "Alignment records emitted")
      .add(static_cast<double>(summary.stats.alignments_reported));
  const auto bridge_cache = [&](const char* which,
                                const cache::CacheCounters& c) {
    const obs::Labels labels{{"cache", which}, {"tenant", tenant}};
    reg.counter("mera_cache_hits_total", labels, "Cache lookup hits")
        .add(static_cast<double>(c.hits));
    reg.counter("mera_cache_misses_total", labels, "Cache lookup misses")
        .add(static_cast<double>(c.misses));
    reg.counter("mera_cache_evictions_total", labels, "Cache entries evicted")
        .add(static_cast<double>(c.evictions));
    reg.counter("mera_cache_admission_rejects_total", labels,
                "Inserts refused by the admission policy")
        .add(static_cast<double>(c.admission_rejects));
  };
  bridge_cache("seed", summary.seed_cache);
  bridge_cache("target", summary.target_cache);
  const core::SessionConfig& cfg = backend_.config();
  const obs::Labels sw_labels{
      {"kernel", align::kernel_name(cfg.extension.kernel)},
      {"isa", cfg.extension.kernel == align::SwKernel::kBatch
                  ? align::isa_name(align::resolve_isa(cfg.extension.isa))
                  : "native"},
      {"tenant", tenant}};
  reg.counter("mera_sw_calls_total", sw_labels,
              "Smith-Waterman extensions run")
      .add(static_cast<double>(summary.stats.sw_calls));
  reg.counter("mera_sw_cells_total", sw_labels, "DP cells scored")
      .add(static_cast<double>(summary.stats.sw_cells));
}

// ---- stats ------------------------------------------------------------------

std::map<std::string, TenantStats> Daemon::tenant_stats() const {
  const std::lock_guard lock(stats_mu_);
  return stats_;
}

std::string Daemon::stats_json() const {
  // Tenant names are pre-validated to [A-Za-z0-9_.:-], so no JSON escaping
  // is needed; std::map keeps the export deterministically sorted.
  const auto stats = tenant_stats();
  std::ostringstream os;
  os << "{\"tenants\":[";
  bool first = true;
  for (const auto& [name, t] : stats) {
    if (!first) os << ",";
    first = false;
    os << "{\"name\":\"" << name << "\",\"connections\":" << t.connections
       << ",\"batches\":" << t.batches << ",\"reads\":" << t.reads
       << ",\"alignments\":" << t.alignments
       << ",\"sam_bytes\":" << t.sam_bytes << ",\"errors\":" << t.errors
       << ",\"align_s\":" << t.align_s
       << ",\"gate_wait_s\":" << t.gate_wait_s << "}";
  }
  os << "]}";
  return os.str();
}

void Daemon::reap_finished_connections() {
  const std::lock_guard lock(conns_mu_);
  for (auto it = conns_.begin(); it != conns_.end();) {
    if ((*it)->done.load()) {
      if ((*it)->th.joinable()) (*it)->th.join();
      ::close((*it)->fd);
      it = conns_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace mera::serve
