#include "serve/framing.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>

namespace mera::serve {

namespace {

[[noreturn]] void fail_errno(const std::string& what) {
  throw FramingError(what + ": " + std::strerror(errno));
}

}  // namespace

bool read_exact(int fd, void* buf, std::size_t n) {
  auto* p = static_cast<char*>(buf);
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::read(fd, p + got, n - got);
    if (r > 0) {
      got += static_cast<std::size_t>(r);
      continue;
    }
    if (r == 0) {
      if (got == 0) return false;  // clean EOF at a frame boundary
      throw FramingError("connection closed mid-frame (" +
                         std::to_string(got) + " of " + std::to_string(n) +
                         " bytes)");
    }
    if (errno == EINTR) continue;
    fail_errno("read");
  }
  return true;
}

void write_all(int fd, const void* buf, std::size_t n) {
  const auto* p = static_cast<const char*>(buf);
  std::size_t sent = 0;
  while (sent < n) {
    // MSG_NOSIGNAL: a vanished peer must surface as EPIPE here, never as a
    // process-wide SIGPIPE — per-connection error isolation starts at the
    // syscall. Falls back to write() for non-socket fds (tests use pipes).
    ssize_t r = ::send(fd, p + sent, n - sent, MSG_NOSIGNAL);
    if (r < 0 && errno == ENOTSOCK) r = ::write(fd, p + sent, n - sent);
    if (r >= 0) {
      sent += static_cast<std::size_t>(r);
      continue;
    }
    if (errno == EINTR) continue;
    fail_errno("write");
  }
}

std::optional<Frame> read_frame(int fd, std::uint64_t max_payload) {
  struct Header {
    std::uint32_t magic;
    std::uint32_t type;
    std::uint64_t len;
  } h{};
  static_assert(sizeof(Header) == 16);
  if (!read_exact(fd, &h, sizeof h)) return std::nullopt;
  if (h.magic != kFrameMagic)
    throw FramingError("bad frame magic 0x" + std::to_string(h.magic) +
                       " — peer is not speaking the meralignerd protocol");
  if (h.len > max_payload)
    throw FramingError("frame payload of " + std::to_string(h.len) +
                       " bytes exceeds the " + std::to_string(max_payload) +
                       "-byte limit");
  Frame f;
  f.type = static_cast<FrameType>(h.type);
  f.payload.resize(static_cast<std::size_t>(h.len));
  if (h.len > 0 && !read_exact(fd, f.payload.data(), f.payload.size()))
    throw FramingError("connection closed before frame payload");
  return f;
}

void write_frame(int fd, FrameType type, std::string_view payload) {
  struct Header {
    std::uint32_t magic;
    std::uint32_t type;
    std::uint64_t len;
  } h{kFrameMagic, static_cast<std::uint32_t>(type), payload.size()};
  write_all(fd, &h, sizeof h);
  if (!payload.empty()) write_all(fd, payload.data(), payload.size());
}

int listen_unix(const std::string& path, int backlog) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof addr.sun_path)
    throw FramingError("socket path too long for sockaddr_un: " + path);
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) fail_errno("socket");
  std::error_code ignored;
  std::filesystem::remove(path, ignored);  // stale socket from a dead daemon
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) < 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    fail_errno("bind " + path);
  }
  if (::listen(fd, backlog) < 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    fail_errno("listen " + path);
  }
  return fd;
}

int connect_unix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof addr.sun_path)
    throw FramingError("socket path too long for sockaddr_un: " + path);
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) fail_errno("socket");
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) <
      0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    fail_errno("connect " + path);
  }
  return fd;
}

}  // namespace mera::serve
