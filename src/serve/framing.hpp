// Wire protocol of the alignment daemon: length-prefixed frames over a
// UNIX-domain stream socket.
//
// A connection is one tenant's query stream. The client opens with a Hello
// frame naming its tenant, then sends any number of Batch frames — each
// payload is one reads batch, either FASTQ text or SeqDB bytes (the daemon
// sniffs the "MERASDB1" magic) — and receives one Sam frame per batch in
// order. The SAM header travels inside the FIRST Sam frame of a connection,
// so concatenating a connection's Sam payloads reproduces exactly the file
// the one-shot CLI would have written for the same batches. MetricsReq asks
// for the process MetricsRegistry in Prometheus text format (the scrape
// endpoint), StatsReq for the per-tenant accounting as JSON, and Goodbye
// ends the stream cleanly. A recoverable problem (a batch that fails to
// parse) comes back as an Error frame on the same connection; the stream
// continues. A protocol violation (bad magic, oversized frame) closes the
// connection — and only that connection.
//
// Frame layout (host-endian — same-machine IPC, not an interchange format):
//
//   magic u32 ("MRSV") | type u32 | payload length u64 | payload bytes...
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>

namespace mera::serve {

/// A peer broke the framing contract (bad magic, unreasonable length, short
/// read mid-frame) or the socket itself failed.
class FramingError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

enum class FrameType : std::uint32_t {
  // client -> daemon
  kHello = 1,       ///< payload: tenant name (UTF-8, non-empty)
  kBatch = 2,       ///< payload: FASTQ text or SeqDB bytes
  kMetricsReq = 3,  ///< payload empty; asks for a Prometheus scrape
  kStatsReq = 4,    ///< payload empty; asks for per-tenant stats JSON
  kGoodbye = 5,     ///< payload empty; clean end of stream
  // daemon -> client
  kSam = 17,      ///< one batch's SAM bytes (header included in the first)
  kError = 18,    ///< human-readable error text; stream continues
  kMetrics = 19,  ///< Prometheus text exposition
  kStats = 20,    ///< per-tenant stats JSON
};

struct Frame {
  FrameType type{};
  std::string payload;
};

inline constexpr std::uint32_t kFrameMagic = 0x5653524D;  // "MRSV"
/// Default per-frame payload cap — a framing error beyond it, so one
/// garbage length prefix cannot make the daemon allocate the moon.
inline constexpr std::uint64_t kDefaultMaxFrameBytes = 1ull << 30;

/// Read exactly `n` bytes (EINTR-safe). Returns false on clean EOF before
/// the first byte; throws FramingError on EOF mid-buffer or socket error.
bool read_exact(int fd, void* buf, std::size_t n);
/// Write all `n` bytes (EINTR-safe, SIGPIPE-suppressed on sockets). Throws
/// FramingError when the peer is gone or the fd fails.
void write_all(int fd, const void* buf, std::size_t n);

/// Read one frame. std::nullopt = the peer closed cleanly at a frame
/// boundary. Throws FramingError on anything malformed or truncated.
std::optional<Frame> read_frame(int fd,
                                std::uint64_t max_payload = kDefaultMaxFrameBytes);
void write_frame(int fd, FrameType type, std::string_view payload);

/// Create, bind and listen on a UNIX-domain socket at `path` (an existing
/// socket file there is replaced). Returns the listening fd; throws
/// FramingError on failure.
int listen_unix(const std::string& path, int backlog = 16);
/// Connect to a daemon's socket; returns the connected fd or throws.
int connect_unix(const std::string& path);

}  // namespace mera::serve
