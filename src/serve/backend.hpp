// One alignment engine behind the daemon, single-index or sharded.
//
// The daemon serves every tenant from ONE warm engine: one reference (plain
// IndexedReference or a K-shard ShardedReference), one session whose
// software caches all tenants share (arbitrated by the admission policy),
// one cache-snapshot directory layout. Backend folds the two session shapes
// into the one surface the daemon needs — align a handed-over batch into a
// sink, report a uniform per-batch summary, enumerate the SAM target
// catalog, save/load the cache snapshot directory — so daemon.cpp contains
// serving logic, not shape dispatch.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/align_session.hpp"
#include "shard/sharded_session.hpp"

namespace mera::serve {

/// Uniform outcome of one batch, whichever engine ran it. Cache counters are
/// the batch's own activity (sharded: summed over the K shard sessions);
/// stats are the reconciled totals, so reads are counted once, not per shard.
struct BatchSummary {
  core::PipelineStats stats;
  pgas::PhaseReport report;
  cache::CacheCounters seed_cache;
  cache::CacheCounters target_cache;
  align::LaneStats lane_stats;
  double wall_s = 0.0;  ///< measured real seconds (sharded path only; 0 single)
};

class Backend {
 public:
  Backend(core::IndexedReference ref, core::SessionConfig cfg);
  Backend(shard::ShardedReference ref, shard::ShardedSessionConfig cfg);
  Backend(Backend&&) noexcept = default;
  Backend& operator=(Backend&&) noexcept = default;

  /// Align one handed-over batch. NOT safe to call concurrently — the
  /// daemon's fair gate serializes tenants in front of this.
  BatchSummary align_batch(pgas::Runtime& rt,
                           std::vector<seq::SeqRecord>&& reads,
                           core::AlignmentSink& sink);

  /// The global SAM target catalog (for per-connection SamStreamSinks).
  [[nodiscard]] std::vector<core::SamTarget> sam_targets() const;
  [[nodiscard]] const core::SessionConfig& config() const;
  [[nodiscard]] int num_shards() const noexcept;

  /// Snapshot / warm-load the cache directory, using the same layout the
  /// CLI does: `dir/session.mcache` single, `dir/shard-NNNN.mcache` sharded.
  /// Both sides throw cache::CacheSnapshotError on failure. save_caches is
  /// safe concurrently with an in-flight align_batch (each cache shard is
  /// snapshotted under its lock) — this is what the autosave thread calls.
  void save_caches(const pgas::Runtime& rt, const std::string& dir) const;
  void load_caches(const pgas::Runtime& rt, const std::string& dir);

 private:
  std::optional<core::AlignSession> single_;
  std::optional<shard::ShardedAlignSession> sharded_;
};

}  // namespace mera::serve
