// Versioned on-disk snapshots of the session software caches (warm start).
//
// The paper's Section IV caches are what make repeated screening cheap, but
// they are per-process: a restarted screening service pays every remote seed
// lookup and target fetch cold again. A snapshot file captures both caches —
// every entry, its per-entry hit count, and the cumulative CacheCounters —
// so a second process can start exactly as warm as the first one ended.
// Persistence changes seconds, never bytes: a warm-started session emits the
// same records and SAM stream a cold one does, it just skips the remote work
// (tests/test_cache_persist.cpp pins this for K in {1,2,4} shards and every
// SW kernel).
//
// A snapshot is only meaningful against the exact index it was filled from:
// cached seed-hit lists embed the reference's fragment/target ids, and the
// counters embed a cost model. The header therefore carries the seed length
// k, the topology, the full LogGP cost model and a fingerprint of the
// reference (names, lengths and packed bases of every target), and load
// refuses anything that does not match — a snapshot can never be loaded
// against the wrong index. The payload is length- and checksum-guarded, so
// truncated or corrupted files are rejected rather than half-applied.
//
// File layout (fixed-width little-endian integers, host-endian doubles —
// snapshots are node-local state, not an interchange format):
//
//   magic u32 | version u32 | k i32 | nranks i32 | ppn i32 | nnodes i32
//   max_hits u64 | cost model 5 x f64 | reference fingerprint u64
//   flags u32 (bit0 seed section, bit1 target section)
//   payload size u64 | payload FNV-1a u64 | payload bytes...
//
// The payload is one length-prefixed section per present cache — `byte
// length u64 | the cache's own save() stream` (see SeedIndexCache::save /
// TargetCache::save for the per-shard layout) — so a loader can skip a
// section its session does not run without deserializing it.
#pragma once

#include <array>
#include <cstdint>
#include <cstring>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <string>

#include "cache/seed_cache.hpp"
#include "cache/target_cache.hpp"
#include "pgas/cost_model.hpp"

namespace mera::cache {

/// A snapshot file that cannot be applied: unreadable, truncated, corrupt,
/// or recorded against a different reference/topology/cost model.
class CacheSnapshotError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Everything a snapshot is validated against. Sessions fill this from their
/// reference and runtime; load_caches refuses any mismatch.
struct SnapshotMeta {
  int k = 0;        ///< seed length the cached hit lists were looked up with
  int nranks = 0;
  int ppn = 0;
  int nnodes = 0;   ///< cache shards are per node
  /// Seed-hit lists are stored already clipped to the saving session's
  /// max_hits_per_seed, so serving them to a session with a LARGER limit
  /// would silently shorten its candidate lists — a bytes-changing
  /// mismatch, rejected like any other.
  std::uint64_t max_hits_per_seed = 0;
  pgas::CostModel cost_model{};
  /// Fingerprint of the reference the cached ids point into
  /// (core::IndexedReference::fingerprint()).
  std::uint64_t reference_fingerprint = 0;
};

/// Write one session's caches to `path`. Null cache pointers mean "this
/// session runs without that cache"; the section is marked absent. The write
/// is atomic: bytes go to `<path>.tmp` which is renamed over `path` only
/// once complete, so a crash (or kill -9) mid-save leaves the previous good
/// snapshot intact — an autosaving daemon never loses warm state to a
/// truncated file. Throws CacheSnapshotError when the file cannot be
/// written; the temp file is removed on failure.
void save_caches(const std::string& path, const SnapshotMeta& meta,
                 const SeedIndexCache* seed, const TargetCache* target);

/// Validate `path` against `expect` and replace the given caches' contents
/// with the snapshot. A section present in the file but disabled in this
/// session (null pointer) is skipped; a section absent from the file leaves
/// that cache untouched (cold). Throws CacheSnapshotError on any mismatch,
/// truncation or corruption. Every rejection reachable from a file that the
/// paired writer produced (missing, mismatched meta, truncated, bit-flipped)
/// is detected before the caches are touched; a crafted checksum-valid
/// payload that fails a structural check mid-apply can leave earlier
/// node-shards/sections replaced — harmless, since cache contents affect
/// seconds, never bytes.
void load_caches(const std::string& path, const SnapshotMeta& expect,
                 SeedIndexCache* seed, TargetCache* target);

/// Canonical file name of shard `s` inside a snapshot directory — the
/// sharded session composes one snapshot per shard the same way
/// ShardedReference composes one IndexedReference per shard.
std::string shard_snapshot_path(const std::string& dir, int s);

/// File name the single-index paths (plain AlignSession via the CLI) use
/// inside a snapshot directory.
inline constexpr const char* kSessionSnapshotFile = "session.mcache";

// --- raw stream primitives shared by the cache save/load implementations ---
namespace snapio {

template <typename T>
void put(std::ostream& os, T v) {
  static_assert(std::is_trivially_copyable_v<T>);
  os.write(reinterpret_cast<const char*>(&v), sizeof v);
}

template <typename T>
T get(std::istream& is) {
  static_assert(std::is_trivially_copyable_v<T>);
  T v{};
  is.read(reinterpret_cast<char*>(&v), sizeof v);
  if (!is) throw CacheSnapshotError("cache snapshot: truncated stream");
  return v;
}

/// FNV-1a, the payload checksum.
inline std::uint64_t fnv1a(const char* data, std::size_t n,
                           std::uint64_t h = 1469598103934665603ULL) noexcept {
  for (std::size_t i = 0; i < n; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 1099511628211ULL;
  }
  return h;
}

inline void put_counters(std::ostream& os, const CacheCounters& c) {
  put<std::uint64_t>(os, c.hits);
  put<std::uint64_t>(os, c.misses);
  put<std::uint64_t>(os, c.insertions);
  put<std::uint64_t>(os, c.evictions);
  put<std::uint64_t>(os, c.admission_rejects);
}

inline CacheCounters get_counters(std::istream& is) {
  CacheCounters c;
  c.hits = get<std::uint64_t>(is);
  c.misses = get<std::uint64_t>(is);
  c.insertions = get<std::uint64_t>(is);
  c.evictions = get<std::uint64_t>(is);
  c.admission_rejects = get<std::uint64_t>(is);
  return c;
}

}  // namespace snapio

}  // namespace mera::cache
