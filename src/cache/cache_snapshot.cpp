#include "cache/cache_snapshot.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace mera::cache {

namespace {

constexpr std::uint32_t kMagic = 0x4D435348;  // "MCSH" — mera cache snapshot
constexpr std::uint32_t kVersion = 1;
constexpr std::uint32_t kFlagSeedSection = 1u << 0;
constexpr std::uint32_t kFlagTargetSection = 1u << 1;

void put_meta(std::ostream& os, const SnapshotMeta& m) {
  using snapio::put;
  put<std::int32_t>(os, m.k);
  put<std::int32_t>(os, m.nranks);
  put<std::int32_t>(os, m.ppn);
  put<std::int32_t>(os, m.nnodes);
  put<std::uint64_t>(os, m.max_hits_per_seed);
  put<double>(os, m.cost_model.node_latency_s);
  put<double>(os, m.cost_model.node_bandwidth_Bps);
  put<double>(os, m.cost_model.net_latency_s);
  put<double>(os, m.cost_model.net_bandwidth_Bps);
  put<double>(os, m.cost_model.atomic_extra_s);
  put<std::uint64_t>(os, m.reference_fingerprint);
}

SnapshotMeta get_meta(std::istream& is) {
  using snapio::get;
  SnapshotMeta m;
  m.k = get<std::int32_t>(is);
  m.nranks = get<std::int32_t>(is);
  m.ppn = get<std::int32_t>(is);
  m.nnodes = get<std::int32_t>(is);
  m.max_hits_per_seed = get<std::uint64_t>(is);
  m.cost_model.node_latency_s = get<double>(is);
  m.cost_model.node_bandwidth_Bps = get<double>(is);
  m.cost_model.net_latency_s = get<double>(is);
  m.cost_model.net_bandwidth_Bps = get<double>(is);
  m.cost_model.atomic_extra_s = get<double>(is);
  m.reference_fingerprint = get<std::uint64_t>(is);
  return m;
}

void check_meta(const std::string& path, const SnapshotMeta& found,
                const SnapshotMeta& expect) {
  const auto fail = [&](const std::string& what) {
    throw CacheSnapshotError("cache snapshot " + path + ": " + what +
                             " — it was recorded against a different "
                             "index/session and cannot be warm-loaded here");
  };
  if (found.k != expect.k)
    fail("seed length mismatch (snapshot k=" + std::to_string(found.k) +
         ", session k=" + std::to_string(expect.k) + ")");
  if (found.nranks != expect.nranks || found.ppn != expect.ppn ||
      found.nnodes != expect.nnodes)
    fail("topology mismatch (snapshot " + std::to_string(found.nranks) + "x" +
         std::to_string(found.ppn) + ", session " +
         std::to_string(expect.nranks) + "x" + std::to_string(expect.ppn) +
         ")");
  if (found.max_hits_per_seed != expect.max_hits_per_seed)
    fail("max-hits mismatch (snapshot seed-hit lists were clipped to " +
         std::to_string(found.max_hits_per_seed) + ", session expects " +
         std::to_string(expect.max_hits_per_seed) + ")");
  const pgas::CostModel& a = found.cost_model;
  const pgas::CostModel& b = expect.cost_model;
  if (a.node_latency_s != b.node_latency_s ||
      a.node_bandwidth_Bps != b.node_bandwidth_Bps ||
      a.net_latency_s != b.net_latency_s ||
      a.net_bandwidth_Bps != b.net_bandwidth_Bps ||
      a.atomic_extra_s != b.atomic_extra_s)
    fail("cost-model mismatch");
  if (found.reference_fingerprint != expect.reference_fingerprint)
    fail("reference fingerprint mismatch");
}

}  // namespace

void save_caches(const std::string& path, const SnapshotMeta& meta,
                 const SeedIndexCache* seed, const TargetCache* target) {
  // Serialize the payload first: the header needs its size and checksum, and
  // buffering keeps each cache's per-shard lock hold time to pure memory
  // writes. Each present section is length-prefixed so a loader can skip a
  // cache its session does not run.
  std::ostringstream payload(std::ios::binary);
  const auto put_section = [&payload](const auto& cache) {
    std::ostringstream section(std::ios::binary);
    cache.save(section);
    const std::string s = section.str();
    snapio::put<std::uint64_t>(payload, s.size());
    payload.write(s.data(), static_cast<std::streamsize>(s.size()));
  };
  if (seed) put_section(*seed);
  if (target) put_section(*target);
  const std::string bytes = payload.str();

  const std::filesystem::path parent = std::filesystem::path(path).parent_path();
  if (!parent.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(parent, ec);
    if (ec)
      throw CacheSnapshotError("cache snapshot: cannot create directory " +
                               parent.string() + ": " + ec.message());
  }
  // Write to a sibling temp file and rename over the final path: rename(2)
  // within one directory is atomic, so a crash or kill -9 mid-save leaves the
  // previous good snapshot intact instead of a truncated file.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out)
      throw CacheSnapshotError("cache snapshot " + tmp +
                               ": cannot open for writing");
    using snapio::put;
    put<std::uint32_t>(out, kMagic);
    put<std::uint32_t>(out, kVersion);
    put_meta(out, meta);
    std::uint32_t flags = 0;
    if (seed) flags |= kFlagSeedSection;
    if (target) flags |= kFlagTargetSection;
    put<std::uint32_t>(out, flags);
    put<std::uint64_t>(out, bytes.size());
    put<std::uint64_t>(out, snapio::fnv1a(bytes.data(), bytes.size()));
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out) {
      out.close();
      std::error_code ignored;
      std::filesystem::remove(tmp, ignored);
      throw CacheSnapshotError("cache snapshot " + tmp + ": write failed");
    }
  }
  std::error_code ec2;
  std::filesystem::rename(tmp, path, ec2);
  if (ec2) {
    std::error_code ignored;
    std::filesystem::remove(tmp, ignored);
    throw CacheSnapshotError("cache snapshot " + path +
                             ": cannot rename temp file into place: " +
                             ec2.message());
  }
}

void load_caches(const std::string& path, const SnapshotMeta& expect,
                 SeedIndexCache* seed, TargetCache* target) {
  std::ifstream in(path, std::ios::binary);
  if (!in)
    throw CacheSnapshotError("cache snapshot " + path +
                             ": cannot open (missing file?)");
  using snapio::get;
  std::uint32_t magic = 0, version = 0;
  try {
    magic = get<std::uint32_t>(in);
    version = get<std::uint32_t>(in);
  } catch (const CacheSnapshotError&) {
    throw CacheSnapshotError("cache snapshot " + path +
                             ": truncated header — not a cache snapshot");
  }
  if (magic != kMagic)
    throw CacheSnapshotError("cache snapshot " + path +
                             ": bad magic — not a cache snapshot file");
  if (version != kVersion)
    throw CacheSnapshotError("cache snapshot " + path +
                             ": unsupported version " + std::to_string(version));
  SnapshotMeta found;
  std::uint32_t flags = 0;
  std::uint64_t payload_size = 0, checksum = 0;
  try {
    found = get_meta(in);
    flags = get<std::uint32_t>(in);
    payload_size = get<std::uint64_t>(in);
    checksum = get<std::uint64_t>(in);
  } catch (const CacheSnapshotError&) {
    throw CacheSnapshotError("cache snapshot " + path + ": truncated header");
  }
  check_meta(path, found, expect);

  // The size field lives in the header, outside the payload checksum — a
  // damaged length must be caught by arithmetic, not by a failed multi-GB
  // allocation. The payload is exactly the rest of the file.
  std::error_code ec;
  const auto file_size = std::filesystem::file_size(path, ec);
  const auto header_size = static_cast<std::uint64_t>(in.tellg());
  if (ec || file_size < header_size ||
      payload_size != file_size - header_size)
    throw CacheSnapshotError("cache snapshot " + path +
                             ": payload size disagrees with the file "
                             "(truncated or damaged header)");
  std::string bytes(static_cast<std::size_t>(payload_size), '\0');
  in.read(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (static_cast<std::uint64_t>(in.gcount()) != payload_size)
    throw CacheSnapshotError("cache snapshot " + path + ": truncated payload");
  if (snapio::fnv1a(bytes.data(), bytes.size()) != checksum)
    throw CacheSnapshotError("cache snapshot " + path +
                             ": payload checksum mismatch (corrupt file)");

  // Validated end to end; only now touch the caches. Each section carries
  // its byte length, so one this session does not run is skipped, not
  // deserialized.
  std::istringstream payload(bytes, std::ios::binary);
  const auto apply_section = [&](auto* cache) {
    const auto n = snapio::get<std::uint64_t>(payload);
    const auto pos = static_cast<std::uint64_t>(payload.tellg());
    if (pos + n > bytes.size())
      throw CacheSnapshotError("cache snapshot " + path +
                               ": section length out of range");
    if (cache) {
      cache->load(payload);
      if (static_cast<std::uint64_t>(payload.tellg()) != pos + n)
        throw CacheSnapshotError("cache snapshot " + path +
                                 ": section length disagrees with contents");
    } else {
      payload.seekg(static_cast<std::streamoff>(pos + n));
    }
  };
  if (flags & kFlagSeedSection) apply_section(seed);
  if (flags & kFlagTargetSection) apply_section(target);
}

std::string shard_snapshot_path(const std::string& dir, int s) {
  char name[32];
  std::snprintf(name, sizeof name, "shard-%04d.mcache", s);
  return dir + "/" + name;
}

}  // namespace mera::cache
