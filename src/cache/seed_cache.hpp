// Node-level software cache for remote seed-index entries (Section III-B).
//
// Each simulated node dedicates memory to caching lookup results for seeds
// whose home rank lives on a *different* node; any rank of the node can then
// serve repeat lookups of that seed locally, skipping the off-node transfer.
// Sharing is per node (UPC shared memory with node affinity), so the shard is
// mutex-protected — the paper's cache is likewise a shared node resource.
// Eviction is clock-style: when full, a rotating cursor overwrites entries.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "dht/seed_index.hpp"
#include "pgas/topology.hpp"
#include "seq/kmer.hpp"

namespace mera::cache {

struct KmerHasher {
  std::size_t operator()(const seq::Kmer& k) const noexcept {
    return static_cast<std::size_t>(k.mixed_hash());
  }
};

struct CacheCounters {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
  [[nodiscard]] double hit_rate() const noexcept {
    const auto total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
  }

  /// Counters are cumulative over a cache's lifetime; sessions subtract a
  /// batch-start snapshot to report per-batch activity.
  CacheCounters& operator-=(const CacheCounters& o) noexcept {
    hits -= o.hits;
    misses -= o.misses;
    insertions -= o.insertions;
    evictions -= o.evictions;
    return *this;
  }
  friend CacheCounters operator-(CacheCounters a,
                                 const CacheCounters& b) noexcept {
    a -= b;
    return a;
  }
};

class SeedIndexCache {
 public:
  struct Options {
    /// Max cached seeds per node (the paper dedicates 16 GB/node; scaled).
    std::size_t capacity_per_node = 1u << 18;
  };

  SeedIndexCache(const pgas::Topology& topo, Options opt);

  /// Serve a lookup from the node's cache. On hit, copies up to max_hits
  /// locations into `out`, sets `total` and returns true.
  bool lookup(int node, const seq::Kmer& seed, std::size_t max_hits,
              std::vector<dht::SeedHit>& out, std::size_t& total);

  /// Record a fetched lookup result in the node's cache.
  void insert(int node, const seq::Kmer& seed,
              const std::vector<dht::SeedHit>& hits, std::size_t total);

  [[nodiscard]] CacheCounters counters() const;  ///< summed over nodes

 private:
  struct Value {
    std::vector<dht::SeedHit> hits;
    std::uint32_t total = 0;
  };
  struct Shard {
    std::mutex mu;
    std::unordered_map<seq::Kmer, Value, KmerHasher> map;
    std::vector<seq::Kmer> ring;  ///< insertion ring for clock eviction
    std::size_t cursor = 0;
    CacheCounters counters;
  };

  std::size_t capacity_;
  std::vector<Shard> shards_;  // one per node
};

}  // namespace mera::cache
