// Node-level software cache for remote seed-index entries (Section III-B).
//
// Each simulated node dedicates memory to caching lookup results for seeds
// whose home rank lives on a *different* node; any rank of the node can then
// serve repeat lookups of that seed locally, skipping the off-node transfer.
// Sharing is per node (UPC shared memory with node affinity), so the shard is
// mutex-protected — the paper's cache is likewise a shared node resource.
// Eviction is clock-style: when full, a rotating cursor overwrites entries.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "dht/seed_index.hpp"
#include "pgas/topology.hpp"
#include "seq/kmer.hpp"

namespace mera::cache {

struct KmerHasher {
  std::size_t operator()(const seq::Kmer& k) const noexcept {
    return static_cast<std::size_t>(k.mixed_hash());
  }
};

struct CacheCounters {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
  /// Inserts refused by the eviction-aware admission policy: the candidate
  /// was colder than everything the cache would have had to evict for it.
  std::uint64_t admission_rejects = 0;
  [[nodiscard]] double hit_rate() const noexcept {
    const auto total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
  }

  /// Counters are cumulative over a cache's lifetime — including history
  /// restored by a snapshot load; sessions subtract a batch-start (or
  /// post-load) snapshot to report per-batch activity.
  CacheCounters& operator-=(const CacheCounters& o) noexcept {
    hits -= o.hits;
    misses -= o.misses;
    insertions -= o.insertions;
    evictions -= o.evictions;
    admission_rejects -= o.admission_rejects;
    return *this;
  }
  friend CacheCounters operator-(CacheCounters a,
                                 const CacheCounters& b) noexcept {
    a -= b;
    return a;
  }
  friend bool operator==(const CacheCounters&, const CacheCounters&) = default;
};

class SeedIndexCache {
 public:
  struct Options {
    /// Max cached seeds per node (the paper dedicates 16 GB/node; scaled).
    std::size_t capacity_per_node = 1u << 18;
    /// Eviction-aware admission (multi-tenant batch streams): a full cache
    /// admits a new entry only by evicting one with no recorded hits. The
    /// clock hand probes a few slots, halving each probed entry's hit count
    /// (so nothing is protected forever); if every probed slot is still
    /// warmer than the hitless newcomer, the insert is refused instead
    /// (counters().admission_rejects). Off = plain clock overwrite.
    bool eviction_aware_admission = false;
  };

  SeedIndexCache(const pgas::Topology& topo, Options opt);

  /// Serve a lookup from the node's cache. On hit, copies up to max_hits
  /// locations into `out`, sets `total` and returns true.
  bool lookup(int node, const seq::Kmer& seed, std::size_t max_hits,
              std::vector<dht::SeedHit>& out, std::size_t& total);

  /// Record a fetched lookup result in the node's cache.
  void insert(int node, const seq::Kmer& seed,
              const std::vector<dht::SeedHit>& hits, std::size_t total);

  [[nodiscard]] CacheCounters counters() const;  ///< summed over nodes
  [[nodiscard]] std::size_t entries() const;     ///< summed over nodes
  [[nodiscard]] std::size_t capacity_per_node() const noexcept {
    return capacity_;
  }

  // --- snapshot persistence (cache_snapshot.hpp wraps these in a versioned,
  // checksummed, fingerprinted file format) --------------------------------
  /// Serialize every node shard — entries in clock-ring order with their
  /// per-entry hit counts, plus cursor and cumulative counters — so load()
  /// reproduces this cache bit-for-bit (same future hits, same evictions).
  /// Takes each shard's lock in turn; safe concurrently with lookups and
  /// inserts (the snapshot is then per-shard consistent).
  void save(std::ostream& os) const;
  /// Replace this cache's contents with a saved snapshot. The snapshot's
  /// node count must match (throws CacheSnapshotError otherwise). When the
  /// snapshot holds more entries than capacity_per_node, the warmest ones
  /// win: entries are admitted by (persisted hits desc, most recently
  /// inserted first) until full and the rest are counted as
  /// admission_rejects — the eviction-aware admission policy applied at
  /// load time. Restored counters are cumulative across processes.
  void load(std::istream& is);

 private:
  struct Value {
    std::vector<dht::SeedHit> hits;
    std::uint32_t total = 0;
    std::uint32_t use_count = 0;  ///< lookup hits on this entry (admission)
  };
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<seq::Kmer, Value, KmerHasher> map;
    std::vector<seq::Kmer> ring;  ///< insertion ring for clock eviction
    std::size_t cursor = 0;
    CacheCounters counters;
  };

  std::size_t capacity_;
  bool admission_;
  std::vector<Shard> shards_;  // one per node
};

}  // namespace mera::cache
