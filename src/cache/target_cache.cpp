#include "cache/target_cache.hpp"

#include <algorithm>
#include <numeric>

#include "cache/cache_snapshot.hpp"

namespace mera::cache {

namespace {

/// Second-chance probes per admission attempt (see Options).
constexpr std::size_t kAdmissionProbes = 8;

}  // namespace

TargetCache::TargetCache(const pgas::Topology& topo, Options opt)
    : capacity_(opt.capacity_bytes_per_node),
      admission_(opt.eviction_aware_admission),
      shards_(static_cast<std::size_t>(topo.nnodes())) {}

bool TargetCache::contains(int node, std::uint32_t gid) {
  Shard& sh = shards_[static_cast<std::size_t>(node)];
  const std::scoped_lock lk(sh.mu);
  const auto it = sh.map.find(gid);
  if (it == sh.map.end()) {
    ++sh.counters.misses;
    return false;
  }
  ++sh.counters.hits;
  ++it->second->use_count;
  sh.lru.splice(sh.lru.begin(), sh.lru, it->second);  // touch
  return true;
}

void TargetCache::insert(int node, std::uint32_t gid, std::size_t bytes) {
  if (capacity_ == 0 || bytes > capacity_) return;
  Shard& sh = shards_[static_cast<std::size_t>(node)];
  const std::scoped_lock lk(sh.mu);
  if (sh.map.contains(gid)) return;
  if (admission_) {
    // Eviction-aware admission: only hitless LRU-tail entries may be
    // sacrificed for the hitless newcomer. A warm tail entry takes a second
    // chance instead — hit count halved, rotated to the front — for a
    // bounded number of probes; if the cache is still too full after that,
    // the newcomer is refused.
    std::size_t probes = 0;
    while (sh.used_bytes + bytes > capacity_ && !sh.lru.empty() &&
           probes < kAdmissionProbes) {
      Entry& victim = sh.lru.back();
      if (victim.use_count == 0) {
        sh.used_bytes -= victim.bytes;
        sh.map.erase(victim.gid);
        sh.lru.pop_back();
        ++sh.counters.evictions;
      } else {
        victim.use_count /= 2;
        sh.lru.splice(sh.lru.begin(), sh.lru, std::prev(sh.lru.end()));
        ++probes;
      }
    }
    if (sh.used_bytes + bytes > capacity_) {
      ++sh.counters.admission_rejects;
      return;
    }
  } else {
    while (sh.used_bytes + bytes > capacity_ && !sh.lru.empty()) {
      const Entry& victim = sh.lru.back();
      sh.used_bytes -= victim.bytes;
      sh.map.erase(victim.gid);
      sh.lru.pop_back();
      ++sh.counters.evictions;
    }
  }
  sh.lru.push_front(Entry{gid, bytes, 0});
  sh.map.emplace(gid, sh.lru.begin());
  sh.used_bytes += bytes;
  ++sh.counters.insertions;
}

CacheCounters TargetCache::counters() const {
  CacheCounters c;
  for (const auto& sh : shards_) {
    const std::scoped_lock lk(sh.mu);
    c.hits += sh.counters.hits;
    c.misses += sh.counters.misses;
    c.insertions += sh.counters.insertions;
    c.evictions += sh.counters.evictions;
    c.admission_rejects += sh.counters.admission_rejects;
  }
  return c;
}

std::size_t TargetCache::entries() const {
  std::size_t n = 0;
  for (const auto& sh : shards_) {
    const std::scoped_lock lk(sh.mu);
    n += sh.map.size();
  }
  return n;
}

// --- snapshot serialization --------------------------------------------------
//
// Per-shard layout (LRU order, most recent first):
//   nnodes u64
//   per node: counters 5 x u64 | nentries u64
//     per entry: gid u32 | use_count u32 | bytes u64

void TargetCache::save(std::ostream& os) const {
  using snapio::put;
  put<std::uint64_t>(os, shards_.size());
  for (const auto& sh : shards_) {
    const std::scoped_lock lk(sh.mu);
    snapio::put_counters(os, sh.counters);
    put<std::uint64_t>(os, sh.lru.size());
    for (const Entry& e : sh.lru) {
      put<std::uint32_t>(os, e.gid);
      put<std::uint32_t>(os, e.use_count);
      put<std::uint64_t>(os, e.bytes);
    }
  }
}

void TargetCache::load(std::istream& is) {
  using snapio::get;
  const auto nnodes = get<std::uint64_t>(is);
  if (nnodes != shards_.size())
    throw CacheSnapshotError(
        "cache snapshot: target section has " + std::to_string(nnodes) +
        " node shards, this topology has " + std::to_string(shards_.size()));
  for (auto& sh : shards_) {
    const CacheCounters counters = snapio::get_counters(is);
    const auto nentries = get<std::uint64_t>(is);
    std::vector<Entry> entries(static_cast<std::size_t>(nentries));
    std::size_t total_bytes = 0;
    for (auto& e : entries) {  // most recently used first
      e.gid = get<std::uint32_t>(is);
      e.use_count = get<std::uint32_t>(is);
      e.bytes = get<std::uint64_t>(is);
      total_bytes += e.bytes;
    }

    std::uint64_t dropped = 0;
    if (total_bytes > capacity_) {
      // The snapshot was taken by a bigger cache: admit the warmest entries
      // (persisted hit count, recency breaking ties) while they fit — the
      // eviction-aware admission policy applied wholesale at load time.
      std::vector<std::size_t> order(entries.size());
      std::iota(order.begin(), order.end(), std::size_t{0});
      std::stable_sort(order.begin(), order.end(),
                       [&](std::size_t a, std::size_t b) {
                         return entries[a].use_count > entries[b].use_count;
                       });  // stable: equal heat keeps MRU-first order
      std::vector<char> keep(entries.size(), 0);
      std::size_t used = 0;
      for (const std::size_t i : order) {
        if (used + entries[i].bytes <= capacity_) {
          used += entries[i].bytes;
          keep[i] = 1;
        } else {
          ++dropped;
        }
      }
      std::vector<Entry> kept;
      kept.reserve(entries.size() - static_cast<std::size_t>(dropped));
      for (std::size_t i = 0; i < entries.size(); ++i)
        if (keep[i]) kept.push_back(entries[i]);  // original recency order
      entries = std::move(kept);
      total_bytes = used;
    }

    // Stage outside the lock, then swap in: a shard is either fully
    // replaced or (on a malformed snapshot) left exactly as it was.
    std::list<Entry> lru;
    std::unordered_map<std::uint32_t, std::list<Entry>::iterator> map;
    map.reserve(entries.size());
    for (const Entry& e : entries) {
      lru.push_back(e);
      if (!map.emplace(e.gid, std::prev(lru.end())).second)
        throw CacheSnapshotError("cache snapshot: duplicate target entry");
    }

    const std::scoped_lock lk(sh.mu);
    sh.lru = std::move(lru);
    sh.map = std::move(map);
    sh.used_bytes = total_bytes;
    sh.counters = counters;
    sh.counters.admission_rejects += dropped;
  }
}

}  // namespace mera::cache
