#include "cache/target_cache.hpp"

namespace mera::cache {

TargetCache::TargetCache(const pgas::Topology& topo, Options opt)
    : capacity_(opt.capacity_bytes_per_node),
      shards_(static_cast<std::size_t>(topo.nnodes())) {}

bool TargetCache::contains(int node, std::uint32_t gid) {
  Shard& sh = shards_[static_cast<std::size_t>(node)];
  const std::scoped_lock lk(sh.mu);
  const auto it = sh.map.find(gid);
  if (it == sh.map.end()) {
    ++sh.counters.misses;
    return false;
  }
  ++sh.counters.hits;
  sh.lru.splice(sh.lru.begin(), sh.lru, it->second);  // touch
  return true;
}

void TargetCache::insert(int node, std::uint32_t gid, std::size_t bytes) {
  if (capacity_ == 0 || bytes > capacity_) return;
  Shard& sh = shards_[static_cast<std::size_t>(node)];
  const std::scoped_lock lk(sh.mu);
  if (sh.map.contains(gid)) return;
  while (sh.used_bytes + bytes > capacity_ && !sh.lru.empty()) {
    const Entry& victim = sh.lru.back();
    sh.used_bytes -= victim.bytes;
    sh.map.erase(victim.gid);
    sh.lru.pop_back();
    ++sh.counters.evictions;
  }
  sh.lru.push_front(Entry{gid, bytes});
  sh.map.emplace(gid, sh.lru.begin());
  sh.used_bytes += bytes;
  ++sh.counters.insertions;
}

CacheCounters TargetCache::counters() const {
  CacheCounters c;
  for (const auto& sh : shards_) {
    c.hits += sh.counters.hits;
    c.misses += sh.counters.misses;
    c.insertions += sh.counters.insertions;
    c.evictions += sh.counters.evictions;
  }
  return c;
}

}  // namespace mera::cache
