// Node-level software cache for remote target sequences (Section III-B).
//
// Targets are much longer than reads, so many reads extend against the same
// target; caching a fetched remote target on its first use serves every later
// extension on the node for free. The paper finds this cache "extremely
// efficient at all concurrencies — it essentially obviates all the
// communication involved with target sequences" (Figure 9); the byte-bounded
// LRU below reproduces that behaviour.
#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "cache/seed_cache.hpp"  // CacheCounters
#include "pgas/topology.hpp"

namespace mera::cache {

class TargetCache {
 public:
  struct Options {
    /// Cached payload budget per node (paper: 6 GB/node; scaled down).
    std::size_t capacity_bytes_per_node = 64u << 20;
  };

  TargetCache(const pgas::Topology& topo, Options opt);

  /// True iff target `gid` is already cached on `node` (touches LRU).
  bool contains(int node, std::uint32_t gid);

  /// Record that `gid` (of `bytes` payload) is now cached on `node`,
  /// evicting least-recently-used entries to fit.
  void insert(int node, std::uint32_t gid, std::size_t bytes);

  [[nodiscard]] CacheCounters counters() const;

 private:
  struct Entry {
    std::uint32_t gid;
    std::size_t bytes;
  };
  struct Shard {
    std::mutex mu;
    std::list<Entry> lru;  ///< front = most recent
    std::unordered_map<std::uint32_t, std::list<Entry>::iterator> map;
    std::size_t used_bytes = 0;
    CacheCounters counters;
  };

  std::size_t capacity_;
  std::vector<Shard> shards_;
};

}  // namespace mera::cache
