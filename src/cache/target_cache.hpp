// Node-level software cache for remote target sequences (Section III-B).
//
// Targets are much longer than reads, so many reads extend against the same
// target; caching a fetched remote target on its first use serves every later
// extension on the node for free. The paper finds this cache "extremely
// efficient at all concurrencies — it essentially obviates all the
// communication involved with target sequences" (Figure 9); the byte-bounded
// LRU below reproduces that behaviour.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <list>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "cache/seed_cache.hpp"  // CacheCounters
#include "pgas/topology.hpp"

namespace mera::cache {

class TargetCache {
 public:
  struct Options {
    /// Cached payload budget per node (paper: 6 GB/node; scaled down).
    std::size_t capacity_bytes_per_node = 64u << 20;
    /// Eviction-aware admission (multi-tenant batch streams): an insert that
    /// must evict to fit only sacrifices LRU-tail entries with no recorded
    /// hits. A warm tail entry gets a second chance — its hit count is
    /// halved and it rotates to the front — for a bounded number of probes;
    /// if the cache is still too full of warmer-than-the-newcomer entries,
    /// the insert is refused (counters().admission_rejects). Off = plain
    /// byte-bounded LRU.
    bool eviction_aware_admission = false;
  };

  TargetCache(const pgas::Topology& topo, Options opt);

  /// True iff target `gid` is already cached on `node` (touches LRU).
  bool contains(int node, std::uint32_t gid);

  /// Record that `gid` (of `bytes` payload) is now cached on `node`,
  /// evicting least-recently-used entries to fit.
  void insert(int node, std::uint32_t gid, std::size_t bytes);

  [[nodiscard]] CacheCounters counters() const;
  [[nodiscard]] std::size_t entries() const;  ///< summed over nodes
  [[nodiscard]] std::size_t capacity_bytes_per_node() const noexcept {
    return capacity_;
  }

  // --- snapshot persistence (cache_snapshot.hpp wraps these in a versioned,
  // checksummed, fingerprinted file format) --------------------------------
  /// Serialize every node shard — entries in LRU order (most recent first)
  /// with payload sizes and per-entry hit counts, plus cumulative counters —
  /// so load() reproduces this cache bit-for-bit. Takes each shard's lock in
  /// turn; safe concurrently with contains/insert.
  void save(std::ostream& os) const;
  /// Replace this cache's contents with a saved snapshot. The snapshot's
  /// node count must match (throws CacheSnapshotError otherwise). When the
  /// snapshot's payload exceeds capacity_bytes_per_node, the warmest entries
  /// win: admitted by (persisted hits desc, most recently used first) while
  /// they fit, the rest counted as admission_rejects. Restored counters are
  /// cumulative across processes.
  void load(std::istream& is);

 private:
  struct Entry {
    std::uint32_t gid;
    std::size_t bytes;
    std::uint32_t use_count = 0;  ///< contains() hits (admission policy)
  };
  struct Shard {
    mutable std::mutex mu;
    std::list<Entry> lru;  ///< front = most recent
    std::unordered_map<std::uint32_t, std::list<Entry>::iterator> map;
    std::size_t used_bytes = 0;
    CacheCounters counters;
  };

  std::size_t capacity_;
  bool admission_;
  std::vector<Shard> shards_;
};

}  // namespace mera::cache
