#include "cache/seed_cache.hpp"

#include <algorithm>
#include <numeric>

#include "cache/cache_snapshot.hpp"

namespace mera::cache {

namespace {

/// Clock probes per admission attempt: bounds insert() cost while still
/// decaying hot entries fast enough that nothing is protected forever.
constexpr std::size_t kAdmissionProbes = 8;

}  // namespace

SeedIndexCache::SeedIndexCache(const pgas::Topology& topo, Options opt)
    : capacity_(opt.capacity_per_node),
      admission_(opt.eviction_aware_admission),
      shards_(static_cast<std::size_t>(topo.nnodes())) {}

bool SeedIndexCache::lookup(int node, const seq::Kmer& seed,
                            std::size_t max_hits,
                            std::vector<dht::SeedHit>& out,
                            std::size_t& total) {
  Shard& sh = shards_[static_cast<std::size_t>(node)];
  const std::scoped_lock lk(sh.mu);
  const auto it = sh.map.find(seed);
  if (it == sh.map.end()) {
    ++sh.counters.misses;
    return false;
  }
  ++sh.counters.hits;
  ++it->second.use_count;
  total = it->second.total;
  const std::size_t n = std::min(max_hits, it->second.hits.size());
  out.insert(out.end(), it->second.hits.begin(),
             it->second.hits.begin() + static_cast<std::ptrdiff_t>(n));
  return true;
}

void SeedIndexCache::insert(int node, const seq::Kmer& seed,
                            const std::vector<dht::SeedHit>& hits,
                            std::size_t total) {
  if (capacity_ == 0) return;
  Shard& sh = shards_[static_cast<std::size_t>(node)];
  const std::scoped_lock lk(sh.mu);
  if (sh.map.contains(seed)) return;
  if (sh.map.size() >= capacity_) {
    if (admission_) {
      // Eviction-aware admission: the newcomer has no recorded hits, so it
      // may only displace an entry that is just as cold. Probe a few slots
      // under the clock hand, halving each survivor's hit count; if every
      // probed entry is still warmer, refuse the insert.
      bool evicted = false;
      const std::size_t probes = std::min(kAdmissionProbes, sh.ring.size());
      for (std::size_t p = 0; p < probes; ++p) {
        const seq::Kmer cand = sh.ring[sh.cursor];
        const auto it = sh.map.find(cand);
        if (it->second.use_count == 0) {
          sh.map.erase(it);
          sh.ring[sh.cursor] = seed;
          sh.cursor = (sh.cursor + 1) % sh.ring.size();
          ++sh.counters.evictions;
          evicted = true;
          break;
        }
        it->second.use_count /= 2;
        sh.cursor = (sh.cursor + 1) % sh.ring.size();
      }
      if (!evicted) {
        ++sh.counters.admission_rejects;
        return;
      }
    } else {
      // Clock eviction: overwrite the slot under the cursor.
      const seq::Kmer victim = sh.ring[sh.cursor];
      sh.map.erase(victim);
      sh.ring[sh.cursor] = seed;
      sh.cursor = (sh.cursor + 1) % sh.ring.size();
      ++sh.counters.evictions;
    }
  } else {
    sh.ring.push_back(seed);
  }
  sh.map.emplace(seed, Value{hits, static_cast<std::uint32_t>(total), 0});
  ++sh.counters.insertions;
}

CacheCounters SeedIndexCache::counters() const {
  CacheCounters c;
  for (const auto& sh : shards_) {
    const std::scoped_lock lk(sh.mu);
    c.hits += sh.counters.hits;
    c.misses += sh.counters.misses;
    c.insertions += sh.counters.insertions;
    c.evictions += sh.counters.evictions;
    c.admission_rejects += sh.counters.admission_rejects;
  }
  return c;
}

std::size_t SeedIndexCache::entries() const {
  std::size_t n = 0;
  for (const auto& sh : shards_) {
    const std::scoped_lock lk(sh.mu);
    n += sh.map.size();
  }
  return n;
}

// --- snapshot serialization --------------------------------------------------
//
// Per-shard layout (ring order preserves the clock's eviction schedule):
//   nnodes u64
//   per node: counters 5 x u64 | cursor u64 | nentries u64
//     per entry: k u32 | kmer 2 x u64 | use_count u32 | total u32 | nhits u32
//                | nhits x (3 x u32)

void SeedIndexCache::save(std::ostream& os) const {
  using snapio::put;
  put<std::uint64_t>(os, shards_.size());
  for (const auto& sh : shards_) {
    const std::scoped_lock lk(sh.mu);
    snapio::put_counters(os, sh.counters);
    put<std::uint64_t>(os, sh.cursor);
    put<std::uint64_t>(os, sh.ring.size());
    for (const seq::Kmer& seed : sh.ring) {
      const Value& v = sh.map.at(seed);
      put<std::uint32_t>(os, static_cast<std::uint32_t>(seed.k()));
      put<std::uint64_t>(os, seed.words()[0]);
      put<std::uint64_t>(os, seed.words()[1]);
      put<std::uint32_t>(os, v.use_count);
      put<std::uint32_t>(os, v.total);
      put<std::uint32_t>(os, static_cast<std::uint32_t>(v.hits.size()));
      for (const dht::SeedHit& h : v.hits) {
        put<std::uint32_t>(os, h.fragment_id);
        put<std::uint32_t>(os, h.target_id);
        put<std::uint32_t>(os, h.t_pos);
      }
    }
  }
}

void SeedIndexCache::load(std::istream& is) {
  using snapio::get;
  const auto nnodes = get<std::uint64_t>(is);
  if (nnodes != shards_.size())
    throw CacheSnapshotError(
        "cache snapshot: seed section has " + std::to_string(nnodes) +
        " node shards, this topology has " + std::to_string(shards_.size()));
  for (auto& sh : shards_) {
    const CacheCounters counters = snapio::get_counters(is);
    const auto cursor = get<std::uint64_t>(is);
    const auto nentries = get<std::uint64_t>(is);
    if (nentries == 0 ? cursor != 0 : cursor >= nentries)
      throw CacheSnapshotError("cache snapshot: seed ring cursor out of range");

    struct Loaded {
      seq::Kmer seed;
      Value value;
    };
    // File order is ring-slot order; with the saved cursor it encodes the
    // clock's age sequence (oldest entry sits at the cursor).
    std::vector<Loaded> slots(static_cast<std::size_t>(nentries));
    for (std::uint64_t e = 0; e < nentries; ++e) {
      const auto k = get<std::uint32_t>(is);
      std::array<std::uint64_t, 2> w;
      w[0] = get<std::uint64_t>(is);
      w[1] = get<std::uint64_t>(is);
      const auto seed = seq::Kmer::from_words(static_cast<int>(k), w);
      if (!seed)
        throw CacheSnapshotError("cache snapshot: invalid seed encoding");
      Loaded& entry = slots[static_cast<std::size_t>(e)];
      entry.seed = *seed;
      entry.value.use_count = get<std::uint32_t>(is);
      entry.value.total = get<std::uint32_t>(is);
      const auto nhits = get<std::uint32_t>(is);
      entry.value.hits.reserve(nhits);
      for (std::uint32_t h = 0; h < nhits; ++h) {
        dht::SeedHit hit;
        hit.fragment_id = get<std::uint32_t>(is);
        hit.target_id = get<std::uint32_t>(is);
        hit.t_pos = get<std::uint32_t>(is);
        entry.value.hits.push_back(hit);
      }
    }

    std::uint64_t dropped = 0;
    std::size_t new_cursor = static_cast<std::size_t>(cursor);
    if (slots.size() > capacity_) {
      // The snapshot was taken by a bigger cache: admit the warmest entries
      // (persisted hit count, age breaking ties toward the younger entry) —
      // the eviction-aware admission policy applied wholesale at load time.
      // Survivors are laid out oldest-first with the cursor at 0, which
      // reproduces the saved clock schedule over the surviving entries.
      const auto age_of = [&](std::size_t slot) {
        return (slot + slots.size() - static_cast<std::size_t>(cursor)) %
               slots.size();  // 0 = oldest
      };
      std::vector<std::size_t> order(slots.size());
      std::iota(order.begin(), order.end(), std::size_t{0});
      std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        if (slots[a].value.use_count != slots[b].value.use_count)
          return slots[a].value.use_count > slots[b].value.use_count;
        return age_of(a) > age_of(b);  // warm tie: most recently inserted
      });
      order.resize(capacity_);
      std::sort(order.begin(), order.end(),
                [&](std::size_t a, std::size_t b) {
                  return age_of(a) < age_of(b);
                });
      std::vector<Loaded> kept;
      kept.reserve(order.size());
      for (const std::size_t i : order) kept.push_back(std::move(slots[i]));
      dropped = slots.size() - kept.size();
      slots = std::move(kept);
      new_cursor = 0;
    }

    // Stage outside the lock, then swap in: a shard is either fully
    // replaced or (on a malformed snapshot) left exactly as it was.
    std::vector<seq::Kmer> ring;
    std::unordered_map<seq::Kmer, Value, KmerHasher> map;
    ring.reserve(slots.size());
    map.reserve(slots.size());
    for (Loaded& entry : slots) {
      ring.push_back(entry.seed);
      if (!map.emplace(entry.seed, std::move(entry.value)).second)
        throw CacheSnapshotError("cache snapshot: duplicate seed entry");
    }

    const std::scoped_lock lk(sh.mu);
    sh.map = std::move(map);
    sh.ring = std::move(ring);
    sh.cursor = new_cursor;
    sh.counters = counters;
    sh.counters.admission_rejects += dropped;
  }
}

}  // namespace mera::cache
