#include "cache/seed_cache.hpp"

namespace mera::cache {

SeedIndexCache::SeedIndexCache(const pgas::Topology& topo, Options opt)
    : capacity_(opt.capacity_per_node),
      shards_(static_cast<std::size_t>(topo.nnodes())) {}

bool SeedIndexCache::lookup(int node, const seq::Kmer& seed,
                            std::size_t max_hits,
                            std::vector<dht::SeedHit>& out,
                            std::size_t& total) {
  Shard& sh = shards_[static_cast<std::size_t>(node)];
  const std::scoped_lock lk(sh.mu);
  const auto it = sh.map.find(seed);
  if (it == sh.map.end()) {
    ++sh.counters.misses;
    return false;
  }
  ++sh.counters.hits;
  total = it->second.total;
  const std::size_t n = std::min(max_hits, it->second.hits.size());
  out.insert(out.end(), it->second.hits.begin(),
             it->second.hits.begin() + static_cast<std::ptrdiff_t>(n));
  return true;
}

void SeedIndexCache::insert(int node, const seq::Kmer& seed,
                            const std::vector<dht::SeedHit>& hits,
                            std::size_t total) {
  if (capacity_ == 0) return;
  Shard& sh = shards_[static_cast<std::size_t>(node)];
  const std::scoped_lock lk(sh.mu);
  if (sh.map.contains(seed)) return;
  if (sh.map.size() >= capacity_) {
    // Clock eviction: overwrite the slot under the cursor.
    const seq::Kmer victim = sh.ring[sh.cursor];
    sh.map.erase(victim);
    sh.ring[sh.cursor] = seed;
    sh.cursor = (sh.cursor + 1) % sh.ring.size();
    ++sh.counters.evictions;
  } else {
    sh.ring.push_back(seed);
  }
  sh.map.emplace(seed, Value{hits, static_cast<std::uint32_t>(total)});
  ++sh.counters.insertions;
}

CacheCounters SeedIndexCache::counters() const {
  CacheCounters c;
  for (const auto& sh : shards_) {
    c.hits += sh.counters.hits;
    c.misses += sh.counters.misses;
    c.insertions += sh.counters.insertions;
    c.evictions += sh.counters.evictions;
  }
  return c;
}

}  // namespace mera::cache
