#include "dbg/kmer_spectrum.hpp"

#include <stdexcept>

#include "seq/dna.hpp"

namespace mera::dbg {

KmerSpectrum::KmerSpectrum(const pgas::Topology& topo, Options opt)
    : opt_(opt),
      nranks_(topo.nranks()),
      tables_(static_cast<std::size_t>(topo.nranks())),
      table_locks_(static_cast<std::size_t>(topo.nranks())),
      stacks_(static_cast<std::size_t>(topo.nranks())),
      pending_counts_(static_cast<std::size_t>(topo.nranks()),
                      std::vector<std::uint64_t>(
                          static_cast<std::size_t>(topo.nranks()), 0)),
      aggregators_(static_cast<std::size_t>(topo.nranks())) {
  if (opt_.k < 2 || opt_.k > seq::kMaxSeedLen)
    throw std::invalid_argument("KmerSpectrum: k out of range [2,64]");
  for (int r = 0; r < nranks_; ++r) incoming_.emplace_back(r, 0);
}

template <typename Fn>
void KmerSpectrum::for_each_read_kmer(std::string_view read, Fn&& fn) const {
  const int k = opt_.k;
  seq::for_each_seed(read, k, [&](std::size_t off, const seq::Kmer& fwd) {
    // Neighbour bases in read orientation (4 = none / N).
    std::uint8_t lb = 4, rb = 4;
    if (off > 0) {
      const auto c = seq::encode_base(read[off - 1]);
      lb = c == seq::kInvalidBase ? 4 : c;
    }
    if (off + static_cast<std::size_t>(k) < read.size()) {
      const auto c = seq::encode_base(read[off + static_cast<std::size_t>(k)]);
      rb = c == seq::kInvalidBase ? 4 : c;
    }
    const seq::Kmer rc = fwd.reverse_complement();
    if (rc < fwd) {
      // Canonical orientation is the reverse complement: swap + complement
      // the extensions.
      const std::uint8_t new_left =
          rb == 4 ? std::uint8_t{4} : seq::complement_code(rb);
      const std::uint8_t new_right =
          lb == 4 ? std::uint8_t{4} : seq::complement_code(lb);
      fn(rc, new_left, new_right);
    } else {
      fn(fwd, lb, rb);
    }
  });
}

void KmerSpectrum::count_read(pgas::Rank& rank, std::string_view read) {
  auto& mine = pending_counts_[static_cast<std::size_t>(rank.id())];
  for_each_read_kmer(read, [&](const seq::Kmer& c, std::uint8_t, std::uint8_t) {
    ++mine[static_cast<std::size_t>(owner_of(c))];
  });
}

void KmerSpectrum::finish_count(pgas::Rank& rank) {
  const auto me = static_cast<std::size_t>(rank.id());
  for (int owner = 0; owner < nranks_; ++owner) {
    const std::uint64_t c = pending_counts_[me][static_cast<std::size_t>(owner)];
    if (c != 0)
      rank.atomic_fetch_add(incoming_[static_cast<std::size_t>(owner)], c);
  }
  rank.barrier();
  if (opt_.aggregating_stores) {
    stacks_[me].allocate(rank.id(), incoming_[me].load_unsync());
    aggregators_[me] = std::make_unique<dht::AggregatingStore<Entry>>(
        nranks_, opt_.buffer_S, stacks_);
  }
  tables_[me].reserve(incoming_[me].load_unsync() / 2);
  rank.barrier();
}

void KmerSpectrum::apply_entry(int owner, const Entry& e) {
  KmerInfo& info = tables_[static_cast<std::size_t>(owner)][e.kmer];
  ++info.count;
  ++info.left[e.left];
  ++info.right[e.right];
}

void KmerSpectrum::insert_read(pgas::Rank& rank, std::string_view read) {
  for_each_read_kmer(read, [&](const seq::Kmer& c, std::uint8_t lb,
                               std::uint8_t rb) {
    const int owner = owner_of(c);
    const Entry e{c, lb, rb};
    if (opt_.aggregating_stores) {
      aggregators_[static_cast<std::size_t>(rank.id())]->push(rank, owner, e);
    } else {
      // Naive mode: one fine-grained remote access + lock per k-mer.
      rank.charge_access(owner, sizeof(Entry));
      const std::scoped_lock lk(table_locks_[static_cast<std::size_t>(owner)]);
      apply_entry(owner, e);
    }
  });
}

void KmerSpectrum::finish_insert(pgas::Rank& rank) {
  const auto me = static_cast<std::size_t>(rank.id());
  if (opt_.aggregating_stores) {
    aggregators_[me]->flush_all(rank);
    rank.barrier();
    for (const Entry& e : stacks_[me].drain_view()) {
      apply_entry(rank.id(), e);
      rank.charge_access(rank.id(), sizeof(Entry));
    }
  }
  rank.barrier();
}

const KmerInfo* KmerSpectrum::lookup(pgas::Rank& rank,
                                     const seq::Kmer& canonical) const {
  const int owner = owner_of(canonical);
  const auto& table = tables_[static_cast<std::size_t>(owner)];
  const auto it = table.find(canonical);
  rank.charge_access(owner, sizeof(KmerInfo));
  return it == table.end() ? nullptr : &it->second;
}

std::size_t KmerSpectrum::total_distinct() const {
  std::size_t n = 0;
  for (const auto& t : tables_) n += t.size();
  return n;
}

}  // namespace mera::dbg
