// Unitig traversal over the k-mer spectrum: Meraculous-style contig
// generation (the paper's Section I "contigs ... generated" step, built on
// the same distributed hash table per Section III).
//
// A k-mer is UU ("unique-unique") when it is solid (count >= min_count) and
// has exactly one witnessed extension on each side. Contigs are maximal
// chains of UU k-mers connected through unique extensions. The spectrum is
// distributed; this walker runs as a serial post-pass over the shards (the
// fully parallel traversal is the SC'14 paper's own contribution and out of
// scope here — see DESIGN.md).
#pragma once

#include <string>
#include <vector>

#include "dbg/kmer_spectrum.hpp"

namespace mera::dbg {

struct ContigBuildOptions {
  std::uint32_t min_count = 2;     ///< solid k-mer threshold (error removal)
  std::uint32_t min_ext_votes = 2; ///< votes required for a unique extension
  std::size_t min_contig_len = 0;  ///< drop shorter contigs (0 = keep all)
};

/// Walk the UU graph of `spectrum` into contigs. Deterministic output order
/// (sorted), independent of hash iteration order.
[[nodiscard]] std::vector<std::string> build_contigs(
    const KmerSpectrum& spectrum, int nranks,
    const ContigBuildOptions& opt = {});

}  // namespace mera::dbg
