#include "dbg/contig_builder.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "seq/dna.hpp"

namespace mera::dbg {

namespace {

using UUMap =
    std::unordered_map<seq::Kmer, const KmerInfo*, cache::KmerHasher>;
using Visited = std::unordered_set<seq::Kmer, cache::KmerHasher>;

/// Walk state: the k-mer as seen in walk direction; `canonical` is its
/// spectrum key and `flipped` says walk k-mer == revcomp(canonical).
struct Node {
  seq::Kmer walk;
  seq::Kmer canonical;
  bool flipped = false;
  const KmerInfo* info = nullptr;
};

Node make_node(const seq::Kmer& walk, const UUMap& uu) {
  Node n;
  n.walk = walk;
  const seq::Kmer rc = walk.reverse_complement();
  n.flipped = rc < walk;
  n.canonical = n.flipped ? rc : walk;
  const auto it = uu.find(n.canonical);
  n.info = it == uu.end() ? nullptr : it->second;
  return n;
}

/// Unique right extension of the node in walk orientation (4 = none).
std::uint8_t right_ext(const Node& n, std::uint32_t votes) {
  if (!n.flipped) return n.info->unique_right(votes);
  const std::uint8_t ul = n.info->unique_left(votes);
  return ul == 4 ? std::uint8_t{4} : seq::complement_code(ul);
}

/// Extend rightward from `start` (already verified UU, already visited);
/// returns the appended bases and marks every consumed node visited.
std::string walk_right(Node start, const UUMap& uu, Visited& visited,
                       std::uint32_t votes) {
  std::string appended;
  Node cur = start;
  for (;;) {
    const std::uint8_t b = right_ext(cur, votes);
    if (b == 4) break;
    seq::Kmer next_walk = cur.walk;
    next_walk.roll(b);
    Node next = make_node(next_walk, uu);
    if (next.info == nullptr) break;               // neighbour not UU/solid
    if (!visited.insert(next.canonical).second) break;  // cycle / consumed
    appended.push_back(seq::decode_base(b));
    cur = next;
  }
  return appended;
}

}  // namespace

std::vector<std::string> build_contigs(const KmerSpectrum& spectrum,
                                       int nranks,
                                       const ContigBuildOptions& opt) {
  // Snapshot the UU k-mers of every shard (serial post-pass; see header).
  UUMap uu;
  std::vector<seq::Kmer> seeds;
  for (int r = 0; r < nranks; ++r) {
    spectrum.for_each_local(r, [&](const seq::Kmer& m, const KmerInfo& info) {
      if (info.count < opt.min_count) return;
      if (info.unique_left(opt.min_ext_votes) == 4 &&
          info.left[4] != info.count)
        return;  // ambiguous left side
      if (info.unique_right(opt.min_ext_votes) == 4 &&
          info.right[4] != info.count)
        return;  // ambiguous right side
      uu.emplace(m, &info);
      seeds.push_back(m);
    });
  }
  std::sort(seeds.begin(), seeds.end());  // deterministic traversal order

  Visited visited;
  std::vector<std::string> contigs;
  for (const seq::Kmer& s : seeds) {
    if (visited.contains(s)) continue;
    visited.insert(s);
    Node fwd = make_node(s, uu);          // canonical orientation
    Node bwd = make_node(s.reverse_complement(), uu);
    const std::string right = walk_right(fwd, uu, visited, opt.min_ext_votes);
    const std::string left = walk_right(bwd, uu, visited, opt.min_ext_votes);
    // contig = revcomp(rc(s) + left-walk) + right-walk, deduplicating s.
    std::string contig =
        seq::reverse_complement(bwd.walk.to_string() + left);
    contig += right;
    if (contig.size() >= std::max<std::size_t>(opt.min_contig_len,
                                               static_cast<std::size_t>(
                                                   spectrum.k())))
      contigs.push_back(std::move(contig));
  }
  std::sort(contigs.begin(), contigs.end());
  return contigs;
}

}  // namespace mera::dbg
