// Distributed k-mer spectrum — the contig-generation substrate.
//
// The paper's distributed hash table "was previously used for contig
// generation" (Section III, citing the authors' SC'14 de Bruijn work) and
// the conclusions pitch merAligner as "a generic, distributed hash platform".
// This module demonstrates both: the same local-shared-stack + aggregating-
// store machinery counts canonical k-mers of a read set (with per-side
// extension tallies), which is the data structure Meraculous builds contigs
// from. core::build_contigs (contig_builder.hpp) then walks the unique-
// extension (UU) k-mer graph into contigs — giving this repo the producer of
// the very contigs merAligner aligns reads back onto.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "cache/seed_cache.hpp"  // KmerHasher
#include "dht/aggregating_store.hpp"
#include "dht/local_shared_stack.hpp"
#include "pgas/runtime.hpp"
#include "seq/kmer.hpp"

namespace mera::dbg {

/// Occurrence count plus extension tallies of one canonical k-mer.
/// left/right are the bases preceding/following the k-mer when it is read
/// in its canonical orientation ('count' of base code 0..3; index 4 = none,
/// i.e. the k-mer touched a read end).
struct KmerInfo {
  std::uint32_t count = 0;
  std::array<std::uint32_t, 5> left{};
  std::array<std::uint32_t, 5> right{};

  /// Code of the single dominant extension, or 4 if none qualifies.
  /// Meraculous-style UU test with vote thresholds: the dominant base needs
  /// >= `min_votes` votes while every other base stays below the threshold
  /// (stray sequencing-error votes must not disqualify a real extension).
  [[nodiscard]] std::uint8_t unique_ext(const std::array<std::uint32_t, 5>& side,
                                        std::uint32_t min_votes) const {
    std::uint8_t best = 4;
    std::uint32_t best_v = 0, second_v = 0;
    for (std::uint8_t b = 0; b < 4; ++b) {
      const std::uint32_t v = side[b];
      if (v > best_v) {
        second_v = best_v;
        best_v = v;
        best = b;
      } else if (v > second_v) {
        second_v = v;
      }
    }
    return (best_v >= min_votes && second_v < min_votes) ? best
                                                         : std::uint8_t{4};
  }
  [[nodiscard]] std::uint8_t unique_left(std::uint32_t v) const {
    return unique_ext(left, v);
  }
  [[nodiscard]] std::uint8_t unique_right(std::uint32_t v) const {
    return unique_ext(right, v);
  }
};

class KmerSpectrum {
 public:
  struct Options {
    int k = 21;
    std::size_t buffer_S = 1000;   ///< aggregating-store buffer size
    bool aggregating_stores = true;
  };

  KmerSpectrum(const pgas::Topology& topo, Options opt);
  KmerSpectrum(const KmerSpectrum&) = delete;
  KmerSpectrum& operator=(const KmerSpectrum&) = delete;

  [[nodiscard]] int k() const noexcept { return opt_.k; }

  // --- collective construction (two stages, like the seed index) ----------
  /// Stage 1: tally the k-mers of one read (local). Call per local read.
  void count_read(pgas::Rank& rank, std::string_view read);
  /// Stage 1 end (collective): size the landing stacks.
  void finish_count(pgas::Rank& rank);
  /// Stage 2: route one read's k-mers + extensions to their owners.
  void insert_read(pgas::Rank& rank, std::string_view read);
  /// Stage 2 end (collective): drain stacks into the owner tables.
  void finish_insert(pgas::Rank& rank);

  // --- queries (post-construction, read-only) ------------------------------
  /// nullptr if the canonical form of `m` is absent. Charges a remote
  /// transfer when the owner is another rank.
  [[nodiscard]] const KmerInfo* lookup(pgas::Rank& rank,
                                       const seq::Kmer& canonical) const;

  [[nodiscard]] std::size_t total_distinct() const;
  /// Iterate every (canonical k-mer, info) pair of one rank's shard.
  template <typename Fn>
  void for_each_local(int rank, Fn&& fn) const {
    for (const auto& [kmer, info] : tables_[static_cast<std::size_t>(rank)])
      fn(kmer, info);
  }

  [[nodiscard]] int owner_of(const seq::Kmer& canonical) const noexcept {
    return static_cast<int>(canonical.djb2() %
                            static_cast<std::uint64_t>(nranks_));
  }

 private:
  struct Entry {
    seq::Kmer kmer;        // canonical
    std::uint8_t left = 4;   // extension codes in canonical orientation
    std::uint8_t right = 4;
  };

  template <typename Fn>
  void for_each_read_kmer(std::string_view read, Fn&& fn) const;
  void apply_entry(int owner, const Entry& e);

  Options opt_;
  int nranks_;
  std::vector<std::unordered_map<seq::Kmer, KmerInfo, cache::KmerHasher>>
      tables_;  // per owner rank
  std::vector<std::mutex> table_locks_;  // naive-mode concurrent inserts
  std::vector<dht::LocalSharedStack<Entry>> stacks_;
  std::deque<pgas::GlobalCounter> incoming_;
  std::vector<std::vector<std::uint64_t>> pending_counts_;
  std::vector<std::unique_ptr<dht::AggregatingStore<Entry>>> aggregators_;
};

}  // namespace mera::dbg
