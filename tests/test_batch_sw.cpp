// Equivalence and dispatch tests for the inter-candidate batch SW engine.
// The central contract: on EVERY dispatch tier this host supports, the batch
// scorer's score / t_end (smallest-t_end tie-break) are bit-identical to the
// scalar reference and to the per-pair striped kernel.
#include "align/batch_sw.hpp"

#include "test_util.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <random>
#include <string>
#include <vector>

#include "align/extension.hpp"
#include "align/smith_waterman.hpp"
#include "align/striped_sw.hpp"
#include "seq/packed_seq.hpp"

namespace {

using mera::testutil::random_dna;

using namespace mera::align;
using mera::seq::PackedSeq;

/// Every concrete tier this binary + CPU can actually run (always includes
/// kScalar). Tests sweep these so CI proves bit-identity on each.
std::vector<SwIsa> supported_tiers() {
  std::vector<SwIsa> tiers{SwIsa::kScalar};
  for (SwIsa isa : {SwIsa::kSse2, SwIsa::kAvx2, SwIsa::kAvx512})
    if (isa_supported(isa)) tiers.push_back(isa);
  return tiers;
}

std::vector<std::vector<std::uint8_t>> random_targets(std::mt19937_64& rng,
                                                      std::size_t n,
                                                      std::size_t max_len) {
  std::vector<std::vector<std::uint8_t>> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    out.push_back(dna_codes(random_dna(rng, rng() % (max_len + 1))));
  return out;
}

class BatchSwTiers : public ::testing::TestWithParam<SwIsa> {};

TEST_P(BatchSwTiers, MatchesScalarReferenceAndStriped) {
  const SwIsa isa = GetParam();
  if (!isa_supported(isa)) GTEST_SKIP() << "tier not supported on this host";
  std::mt19937_64 rng(71);
  const Scoring sc;
  for (int round = 0; round < 8; ++round) {
    const std::string q = random_dna(rng, 1 + rng() % 150);
    const auto qc = dna_codes(q);
    const auto targets = random_targets(rng, 40, 300);
    const auto got = batch_sw_scores(qc, targets, sc, isa);
    ASSERT_EQ(got.size(), targets.size());
    const StripedSmithWaterman ssw(std::span<const std::uint8_t>(qc), sc);
    for (std::size_t i = 0; i < targets.size(); ++i) {
      const auto ref = striped_scalar_score(qc, targets[i], sc);
      ASSERT_EQ(got[i].score, ref.score)
          << isa_name(isa) << " round=" << round << " i=" << i << " q=" << q;
      ASSERT_EQ(got[i].t_end, ref.t_end)
          << isa_name(isa) << " round=" << round << " i=" << i << " q=" << q;
      const auto sres = ssw.align(std::span<const std::uint8_t>(targets[i]));
      ASSERT_EQ(got[i].score, sres.score);
      ASSERT_EQ(got[i].t_end, sres.t_end);
      // used_16bit is an 8-bit-saturation fact, only defined where an 8-bit
      // SIMD pass ran: compare it between the SIMD engines, not vs scalar.
      if (isa != SwIsa::kScalar && StripedSmithWaterman::simd_enabled())
        ASSERT_EQ(got[i].used_16bit, sres.used_16bit);
    }
  }
}

TEST_P(BatchSwTiers, MatchesReferenceAcrossScoringSchemes) {
  const SwIsa isa = GetParam();
  if (!isa_supported(isa)) GTEST_SKIP() << "tier not supported on this host";
  std::mt19937_64 rng(72);
  for (const Scoring sc : {Scoring{2, -2, 3, 1}, Scoring{1, -3, 5, 2},
                           Scoring{3, -1, 1, 1}, Scoring{1, -1, 0, 1}}) {
    const std::string q = random_dna(rng, 10 + rng() % 120);
    const auto qc = dna_codes(q);
    const auto targets = random_targets(rng, 37, 250);
    const auto got = batch_sw_scores(qc, targets, sc, isa);
    for (std::size_t i = 0; i < targets.size(); ++i) {
      const auto ref = striped_scalar_score(qc, targets[i], sc);
      ASSERT_EQ(got[i].score, ref.score) << isa_name(isa) << " i=" << i;
      ASSERT_EQ(got[i].t_end, ref.t_end) << isa_name(isa) << " i=" << i;
      ASSERT_EQ(got[i].score,
                sw_score_reference(std::span<const std::uint8_t>(qc),
                                   std::span<const std::uint8_t>(targets[i]),
                                   sc));
    }
  }
}

TEST_P(BatchSwTiers, TiedScoresPickSmallestTEnd) {
  const SwIsa isa = GetParam();
  if (!isa_supported(isa)) GTEST_SKIP() << "tier not supported on this host";
  const Scoring sc;
  const std::string q = "ACGTAC";
  // Three tandem copies: the best score is achieved ending at t[5], t[11]
  // and t[17]; the pinned tie-break selects the first.
  const auto qc = dna_codes(q);
  const auto tc = dna_codes(q + q + q);
  BatchSwScorer scorer(qc, sc, isa);
  scorer.add(tc);
  const auto res = scorer.flush();
  ASSERT_EQ(res.size(), 1u);
  EXPECT_EQ(res[0].score, sc.match * 6);
  EXPECT_EQ(res[0].t_end, 5u) << isa_name(isa);
}

TEST_P(BatchSwTiers, SaturatedLanesEscalateTo16Bit) {
  const SwIsa isa = GetParam();
  if (!isa_supported(isa)) GTEST_SKIP() << "tier not supported on this host";
  std::mt19937_64 rng(73);
  const Scoring sc;
  const std::string q = random_dna(rng, 400);
  const auto qc = dna_codes(q);
  // Mix saturating (perfect 400bp self-match: score 800 > 255) and small
  // candidates in one batch so both passes run and slot results correctly.
  std::vector<std::vector<std::uint8_t>> targets;
  for (int i = 0; i < 9; ++i) {
    targets.push_back(dna_codes(random_dna(rng, 60)));
    targets.push_back(qc);
  }
  const auto got = batch_sw_scores(qc, targets, sc, isa);
  for (std::size_t i = 0; i < targets.size(); ++i) {
    const auto ref = striped_scalar_score(qc, targets[i], sc);
    ASSERT_EQ(got[i].score, ref.score) << isa_name(isa) << " i=" << i;
    ASSERT_EQ(got[i].t_end, ref.t_end) << isa_name(isa) << " i=" << i;
    if (i % 2 == 1) {
      EXPECT_EQ(got[i].score, 800);
      if (isa != SwIsa::kScalar) EXPECT_TRUE(got[i].used_16bit);
    }
  }
}

TEST_P(BatchSwTiers, EmptyInputsScoreZero) {
  const SwIsa isa = GetParam();
  if (!isa_supported(isa)) GTEST_SKIP() << "tier not supported on this host";
  const Scoring sc;
  {
    BatchSwScorer scorer(std::span<const std::uint8_t>(), sc, isa);
    scorer.add(dna_codes(std::string_view("ACGT")));
    const auto res = scorer.flush();
    ASSERT_EQ(res.size(), 1u);
    EXPECT_EQ(res[0].score, 0);
  }
  {
    const auto qc = dna_codes(std::string_view("ACGT"));
    BatchSwScorer scorer(qc, sc, isa);
    scorer.add(std::span<const std::uint8_t>());
    scorer.add(qc);
    const auto res = scorer.flush();
    ASSERT_EQ(res.size(), 2u);
    EXPECT_EQ(res[0].score, 0);
    EXPECT_EQ(res[1].score, 4 * sc.match);
  }
}

TEST_P(BatchSwTiers, LargeBatchSpansManyLaneGroups) {
  const SwIsa isa = GetParam();
  if (!isa_supported(isa)) GTEST_SKIP() << "tier not supported on this host";
  std::mt19937_64 rng(74);
  const Scoring sc;
  const std::string q = random_dna(rng, 101);
  const auto qc = dna_codes(q);
  const auto targets = random_targets(rng, 150, 220);  // > 2 AVX-512 groups
  const auto got = batch_sw_scores(qc, targets, sc, isa);
  for (std::size_t i = 0; i < targets.size(); ++i) {
    const auto ref = striped_scalar_score(qc, targets[i], sc);
    ASSERT_EQ(got[i].score, ref.score) << isa_name(isa) << " i=" << i;
    ASSERT_EQ(got[i].t_end, ref.t_end) << isa_name(isa) << " i=" << i;
  }
}

TEST_P(BatchSwTiers, ReuseAcrossFlushes) {
  const SwIsa isa = GetParam();
  if (!isa_supported(isa)) GTEST_SKIP() << "tier not supported on this host";
  std::mt19937_64 rng(75);
  const Scoring sc;
  const auto qc = dna_codes(random_dna(rng, 80));
  BatchSwScorer scorer(qc, sc, isa);
  for (int round = 0; round < 3; ++round) {
    const auto targets = random_targets(rng, 21, 160);
    for (const auto& t : targets) scorer.add(t);
    EXPECT_EQ(scorer.pending(), targets.size());
    const auto got = scorer.flush();
    EXPECT_EQ(scorer.pending(), 0u);
    for (std::size_t i = 0; i < targets.size(); ++i) {
      const auto ref = striped_scalar_score(qc, targets[i], sc);
      ASSERT_EQ(got[i].score, ref.score);
      ASSERT_EQ(got[i].t_end, ref.t_end);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Tiers, BatchSwTiers,
                         ::testing::Values(SwIsa::kScalar, SwIsa::kSse2,
                                           SwIsa::kAvx2, SwIsa::kAvx512),
                         [](const auto& info) { return isa_name(info.param); });

TEST(SwIsaDispatch, NamesRoundTrip) {
  for (SwIsa isa : {SwIsa::kAuto, SwIsa::kScalar, SwIsa::kSse2, SwIsa::kAvx2,
                    SwIsa::kAvx512})
    EXPECT_EQ(parse_isa(isa_name(isa)), isa);
  EXPECT_FALSE(parse_isa("sse9").has_value());
  EXPECT_FALSE(parse_isa("").has_value());
}

TEST(SwIsaDispatch, DetectReturnsASupportedTier) {
  const SwIsa isa = detect_isa();
  EXPECT_NE(isa, SwIsa::kAuto);
  EXPECT_TRUE(isa_supported(isa));
}

TEST(SwIsaDispatch, EnvOverridePinsTier) {
  ASSERT_EQ(setenv("MERA_SW_ISA", "scalar", 1), 0);
  const auto qc = dna_codes(std::string_view("ACGTACGT"));
  {
    BatchSwScorer scorer(qc);
    EXPECT_EQ(scorer.isa(), SwIsa::kScalar);
  }
  // An explicit tier beats the environment.
  if (isa_supported(SwIsa::kSse2)) {
    BatchSwScorer scorer(qc, Scoring{}, SwIsa::kSse2);
    EXPECT_EQ(scorer.isa(), SwIsa::kSse2);
  }
  ASSERT_EQ(setenv("MERA_SW_ISA", "not-an-isa", 1), 0);
  EXPECT_THROW(BatchSwScorer{qc}, std::invalid_argument);
  ASSERT_EQ(unsetenv("MERA_SW_ISA"), 0);
  BatchSwScorer scorer(qc);
  EXPECT_EQ(scorer.isa(), detect_isa());
}

TEST(SwIsaDispatch, UnsupportedExplicitTierThrows) {
  // At most one of these can be the CPU's actual widest tier; find a tier
  // that is NOT supported, if any, and check the constructor refuses it.
  for (SwIsa isa : {SwIsa::kAvx512, SwIsa::kAvx2, SwIsa::kSse2})
    if (!isa_supported(isa)) {
      const auto qc = dna_codes(std::string_view("ACGT"));
      EXPECT_THROW(BatchSwScorer(qc, Scoring{}, isa), std::invalid_argument);
      return;
    }
  GTEST_SKIP() << "every SIMD tier is supported on this host";
}

// extend_candidates(kBatch) must reproduce per-candidate extend_seed
// (kStriped) exactly: same screening decisions, scores, coordinates.
TEST(BatchExtension, MatchesPerCandidateExtendSeed) {
  std::mt19937_64 rng(76);
  const std::string g = random_dna(rng, 4000);
  const PackedSeq target(g);
  for (SwIsa isa : supported_tiers()) {
    ExtensionConfig striped_cfg;
    striped_cfg.kernel = SwKernel::kStriped;
    ExtensionConfig batch_cfg;
    batch_cfg.kernel = SwKernel::kBatch;
    batch_cfg.isa = isa;
    for (int trial = 0; trial < 10; ++trial) {
      std::string q = g.substr(rng() % 3800, 100);
      for (int e = 0; e < 4; ++e) q[rng() % q.size()] = "ACGT"[rng() & 3u];
      const auto qc = dna_codes(q);
      std::vector<SeedCandidate> cands;
      for (int c = 0; c < 30; ++c)
        cands.push_back({&target, 20 + rng() % 40, rng() % 3900});
      const int screen = 30 + static_cast<int>(rng() % 100);
      const auto got =
          extend_candidates(std::span<const std::uint8_t>(qc), cands, 21,
                            batch_cfg, screen);
      ASSERT_EQ(got.size(), cands.size());
      for (std::size_t c = 0; c < cands.size(); ++c) {
        const auto want =
            extend_seed(std::span<const std::uint8_t>(qc), *cands[c].target,
                        cands[c].q_off, cands[c].t_off, 21, striped_cfg,
                        screen);
        ASSERT_EQ(got[c].aln.score, want.aln.score)
            << isa_name(isa) << " trial=" << trial << " c=" << c;
        ASSERT_EQ(got[c].aln.t_begin, want.aln.t_begin);
        ASSERT_EQ(got[c].aln.t_end, want.aln.t_end);
        ASSERT_EQ(got[c].aln.q_begin, want.aln.q_begin);
        ASSERT_EQ(got[c].aln.q_end, want.aln.q_end);
        ASSERT_EQ(got[c].aln.empty(), want.aln.empty());
        ASSERT_EQ(got[c].window_begin, want.window_begin);
        ASSERT_EQ(got[c].window_end, want.window_end);
      }
    }
  }
}

TEST(BatchExtension, SingleCandidateKernelRoute) {
  // extend_seed with SwKernel::kBatch (the one-off route) also matches.
  std::mt19937_64 rng(77);
  const std::string g = random_dna(rng, 1000);
  const PackedSeq target(g);
  const std::string q = g.substr(300, 90);
  const auto qc = dna_codes(q);
  ExtensionConfig batch_cfg;
  batch_cfg.kernel = SwKernel::kBatch;
  const auto got = extend_seed(std::span<const std::uint8_t>(qc), target, 20,
                               320, 21, batch_cfg);
  const auto want =
      extend_seed(std::span<const std::uint8_t>(qc), target, 20, 320, 21, {});
  EXPECT_EQ(got.aln.score, want.aln.score);
  EXPECT_EQ(got.aln.t_begin, want.aln.t_begin);
  EXPECT_EQ(got.aln.t_end, want.aln.t_end);
}

}  // namespace
