#include "core/fragmenter.hpp"

#include <gtest/gtest.h>

#include <random>
#include <set>
#include <string>

#include "seq/kmer.hpp"

namespace {

using namespace mera::core;

TEST(Fragmenter, WholeTargetWhenFragmentLenCoversIt) {
  const auto spans = fragment_spans(100, 1000, 21);
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0], (FragmentSpan{0, 100}));
}

TEST(Fragmenter, StepIsFragmentLenMinusKPlus1) {
  const auto spans = fragment_spans(1000, 100, 21);
  ASSERT_GT(spans.size(), 1u);
  for (std::size_t i = 1; i < spans.size(); ++i)
    EXPECT_EQ(spans[i].offset - spans[i - 1].offset, 100u - 21 + 1);
}

TEST(Fragmenter, CoversEveryBase) {
  for (std::size_t len : {50u, 99u, 100u, 101u, 777u, 5000u}) {
    for (std::size_t flen : {50u, 128u, 1000u}) {
      const auto spans = fragment_spans(len, flen, 31);
      std::size_t covered_to = 0;
      for (const auto& s : spans) {
        EXPECT_LE(s.offset, covered_to);  // no gap
        covered_to = std::max(covered_to, s.offset + s.length);
      }
      EXPECT_EQ(covered_to, len) << "len=" << len << " flen=" << flen;
    }
  }
}

TEST(Fragmenter, SeedSetsAreDisjointAndComplete) {
  // The Section IV-A invariant: fragment seed sets partition the target's
  // seed set (disjoint union over *positions*).
  std::mt19937_64 rng(71);
  std::string t(700, 'A');
  for (auto& c : t) c = "ACGT"[rng() & 3u];
  const int k = 17;
  const auto spans = fragment_spans(t.size(), 120, k);

  std::set<std::size_t> seed_positions;  // global seed start offsets
  std::size_t total = 0;
  for (const auto& s : spans) {
    mera::seq::for_each_seed(
        std::string_view(t).substr(s.offset, s.length), k,
        [&](std::size_t off, const mera::seq::Kmer&) {
          ++total;
          EXPECT_TRUE(seed_positions.insert(s.offset + off).second)
              << "duplicate seed position " << s.offset + off;
        });
  }
  // Exactly the target's seed count, each exactly once.
  EXPECT_EQ(total, t.size() - k + 1);
  EXPECT_EQ(seed_positions.size(), t.size() - k + 1);
  EXPECT_EQ(*seed_positions.begin(), 0u);
  EXPECT_EQ(*seed_positions.rbegin(), t.size() - k);
}

TEST(Fragmenter, ShortTailsAreAbsorbed) {
  // No fragment shorter than k may exist (it would carry no seeds).
  for (std::size_t len = 100; len < 160; ++len) {
    const auto spans = fragment_spans(len, 50, 21);
    for (const auto& s : spans)
      EXPECT_GE(s.length, 21u) << "len=" << len;
  }
}

TEST(Fragmenter, EmptyTarget) {
  EXPECT_TRUE(fragment_spans(0, 100, 21).empty());
}

TEST(Fragmenter, RejectsBadArguments) {
  EXPECT_THROW(fragment_spans(100, 10, 0), std::invalid_argument);
  EXPECT_THROW(fragment_spans(100, 10, 11), std::invalid_argument);
}

class FragmenterSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, int>> {};

TEST_P(FragmenterSweep, PartitionInvariantHoldsAcrossGeometries) {
  const auto [flen, k] = GetParam();
  std::mt19937_64 rng(72);
  std::string t(1234, 'A');
  for (auto& c : t) c = "ACGT"[rng() & 3u];
  const auto spans = fragment_spans(t.size(), flen, k);
  std::size_t seeds = 0;
  std::set<std::size_t> positions;
  for (const auto& s : spans)
    mera::seq::for_each_seed(std::string_view(t).substr(s.offset, s.length), k,
                             [&](std::size_t off, const mera::seq::Kmer&) {
                               ++seeds;
                               positions.insert(s.offset + off);
                             });
  EXPECT_EQ(seeds, t.size() - static_cast<std::size_t>(k) + 1);
  EXPECT_EQ(positions.size(), seeds);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, FragmenterSweep,
    ::testing::Combine(::testing::Values(std::size_t{32}, std::size_t{100},
                                         std::size_t{255}, std::size_t{1024}),
                       ::testing::Values(5, 21, 31)),
    [](const auto& info) {
      return "flen" + std::to_string(std::get<0>(info.param)) + "_k" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
