// The obs observability layer: metrics registry, tracer, and the contract
// that observability changes seconds, never bytes.
//
// Covered here:
//   - Counter: N threads hammering one counter concurrently, total exact.
//   - Histogram: Prometheus `le` bucket-edge semantics, bad bounds rejected.
//   - MetricsRegistry: find-or-create identity, label-distinct series, kind
//     mismatch rejected, JSON export parses, Prometheus exposition shape.
//   - Tracer/Span: Chrome Trace Event JSON parses, spans nest per thread
//     (inner interval inside outer, same tid; different threads get
//     different tids), disabled mode records nothing.
//   - Bit-identity: a sharded --shard-parallel-style batch emits the same
//     SAM bytes with the tracer enabled as disabled, and the registry ends
//     up holding per-shard walls, imbalance ratios, cache counters and
//     per-kernel SW call/cell counts.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/align_session.hpp"
#include "core/alignment_sink.hpp"
#include "core/indexed_reference.hpp"
#include "obs/clock.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "pgas/runtime.hpp"
#include "seq/genome_sim.hpp"
#include "seq/read_sim.hpp"
#include "shard/sharded_reference.hpp"
#include "shard/sharded_session.hpp"

namespace {

using namespace mera;
using mera::obs::Counter;
using mera::obs::Gauge;
using mera::obs::Histogram;
using mera::obs::Labels;
using mera::obs::MetricsRegistry;
using mera::obs::Span;
using mera::obs::Tracer;

// ---------------------------------------------------------------------------
// A minimal recursive-descent JSON syntax checker — enough to prove that the
// exports are well-formed JSON (Perfetto/chrome://tracing require no more of
// the trace file than that plus the traceEvents shape, asserted separately).
// ---------------------------------------------------------------------------
class JsonChecker {
 public:
  static bool valid(const std::string& s) {
    JsonChecker c(s);
    c.skip_ws();
    if (!c.value()) return false;
    c.skip_ws();
    return c.i_ == s.size();
  }

 private:
  explicit JsonChecker(const std::string& s) : s_(s) {}

  bool value() {
    if (i_ >= s_.size()) return false;
    switch (s_[i_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    ++i_;  // '{'
    skip_ws();
    if (peek() == '}') { ++i_; return true; }
    for (;;) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++i_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++i_; continue; }
      if (peek() == '}') { ++i_; return true; }
      return false;
    }
  }
  bool array() {
    ++i_;  // '['
    skip_ws();
    if (peek() == ']') { ++i_; return true; }
    for (;;) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++i_; continue; }
      if (peek() == ']') { ++i_; return true; }
      return false;
    }
  }
  bool string() {
    if (peek() != '"') return false;
    ++i_;
    while (i_ < s_.size() && s_[i_] != '"') {
      if (s_[i_] == '\\') {
        ++i_;
        if (i_ >= s_.size()) return false;
      }
      ++i_;
    }
    if (i_ >= s_.size()) return false;
    ++i_;  // closing quote
    return true;
  }
  bool number() {
    const std::size_t start = i_;
    if (peek() == '-') ++i_;
    while (i_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[i_])) || s_[i_] == '.' ||
            s_[i_] == 'e' || s_[i_] == 'E' || s_[i_] == '+' || s_[i_] == '-'))
      ++i_;
    return i_ > start;
  }
  bool literal(const char* lit) {
    for (; *lit; ++lit, ++i_)
      if (i_ >= s_.size() || s_[i_] != *lit) return false;
    return true;
  }
  char peek() const { return i_ < s_.size() ? s_[i_] : '\0'; }
  void skip_ws() {
    while (i_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[i_])))
      ++i_;
  }

  const std::string& s_;
  std::size_t i_ = 0;
};

/// One trace event pulled back out of the writer's one-event-per-line format.
struct TraceEvent {
  std::string name;
  std::uint64_t ts = 0;
  std::uint64_t dur = 0;
  std::uint32_t tid = 0;
};

std::vector<TraceEvent> parse_trace_events(const std::string& json) {
  std::vector<TraceEvent> out;
  std::istringstream in(json);
  std::string line;
  while (std::getline(in, line)) {
    const auto name_pos = line.find("{\"name\":\"");
    if (name_pos == std::string::npos) continue;
    TraceEvent e;
    const auto name_end = line.find('"', name_pos + 9);
    e.name = line.substr(name_pos + 9, name_end - (name_pos + 9));
    const auto grab = [&line](const char* key) -> std::uint64_t {
      const auto p = line.find(key);
      EXPECT_NE(p, std::string::npos) << key << " missing in: " << line;
      return p == std::string::npos
                 ? 0
                 : std::strtoull(line.c_str() + p + std::strlen(key), nullptr,
                                 10);
    };
    e.ts = grab("\"ts\":");
    e.dur = grab("\"dur\":");
    e.tid = static_cast<std::uint32_t>(grab("\"tid\":"));
    out.push_back(std::move(e));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Metrics primitives
// ---------------------------------------------------------------------------

TEST(ObsCounter, ConcurrentAddsAreExact) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr int kAddsPerThread = 20'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&c] {
      for (int i = 0; i < kAddsPerThread; ++i) c.inc();
    });
  for (auto& t : threads) t.join();
  // Doubles hold integers exactly up to 2^53; 160k increments must not lose
  // a single one regardless of stripe assignment or interleaving.
  EXPECT_EQ(c.value(), static_cast<double>(kThreads) * kAddsPerThread);
}

TEST(ObsGauge, SetAndAdd) {
  Gauge g;
  EXPECT_EQ(g.value(), 0.0);
  g.set(4.5);
  EXPECT_EQ(g.value(), 4.5);
  g.add(0.5);
  EXPECT_EQ(g.value(), 5.0);
}

TEST(ObsHistogram, BucketEdgesUseLeSemantics) {
  Histogram h({1.0, 2.0, 5.0});
  // v <= bound lands in that bucket: exactly-on-edge goes LOW, not high.
  h.observe(1.0);   // bucket le=1
  h.observe(1.5);   // bucket le=2
  h.observe(2.0);   // bucket le=2 (edge)
  h.observe(5.0);   // bucket le=5 (edge)
  h.observe(5.01);  // +Inf
  h.observe(-3.0);  // below the first bound -> le=1
  const auto counts = h.bucket_counts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2u);  // 1.0, -3.0
  EXPECT_EQ(counts[1], 2u);  // 1.5, 2.0
  EXPECT_EQ(counts[2], 1u);  // 5.0
  EXPECT_EQ(counts[3], 1u);  // 5.01
  EXPECT_EQ(h.count(), 6u);
  EXPECT_DOUBLE_EQ(h.sum(), 1.0 + 1.5 + 2.0 + 5.0 + 5.01 - 3.0);
}

TEST(ObsHistogram, RejectsUnsortedBounds) {
  EXPECT_THROW(Histogram({1.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(Histogram({2.0, 1.0}), std::invalid_argument);
}

TEST(ObsRegistry, FindOrCreateReturnsSameObject) {
  MetricsRegistry reg;
  Counter& a = reg.counter("x_total");
  Counter& b = reg.counter("x_total");
  EXPECT_EQ(&a, &b);
  // Different labels = different series.
  Counter& c = reg.counter("x_total", {{"k", "v"}});
  EXPECT_NE(&a, &c);
}

TEST(ObsRegistry, KindMismatchThrows) {
  MetricsRegistry reg;
  reg.counter("thing");
  EXPECT_THROW(reg.gauge("thing"), std::logic_error);
  EXPECT_THROW(reg.histogram("thing", {1.0}), std::logic_error);
}

TEST(ObsRegistry, ValueOfFindsExactSeries) {
  MetricsRegistry reg;
  reg.counter("hits_total", {{"cache", "seed"}}).add(7);
  double v = 0.0;
  EXPECT_TRUE(reg.value_of("hits_total", {{"cache", "seed"}}, v));
  EXPECT_EQ(v, 7.0);
  EXPECT_FALSE(reg.value_of("hits_total", {{"cache", "target"}}, v));
  EXPECT_FALSE(reg.value_of("nope", {}, v));
}

TEST(ObsRegistry, JsonExportIsValidJson) {
  MetricsRegistry reg;
  reg.counter("c_total", {{"lbl", "with \"quotes\" and \\slash"}}).add(3);
  reg.gauge("g").set(1.25);
  reg.histogram("h_seconds", {0.1, 1.0}).observe(0.5);
  std::ostringstream os;
  reg.write_json(os);
  const std::string json = os.str();
  EXPECT_TRUE(JsonChecker::valid(json)) << json;
  EXPECT_NE(json.find("\"c_total\""), std::string::npos);
  EXPECT_NE(json.find("\"h_seconds\""), std::string::npos);
}

TEST(ObsRegistry, PrometheusExposition) {
  MetricsRegistry reg;
  reg.counter("reqs_total", {{"code", "200"}}, "Requests").add(5);
  reg.gauge("depth").set(2);
  reg.histogram("lat_seconds", {0.1, 1.0}).observe(0.05);
  std::ostringstream os;
  reg.write_prometheus(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("# HELP reqs_total Requests\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE reqs_total counter\n"), std::string::npos);
  EXPECT_NE(text.find("reqs_total{code=\"200\"} 5\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE depth gauge\n"), std::string::npos);
  // Histogram expands to cumulative _bucket series plus _sum/_count.
  EXPECT_NE(text.find("lat_seconds_bucket{le=\"0.1\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("lat_seconds_bucket{le=\"1\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("lat_seconds_bucket{le=\"+Inf\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("lat_seconds_sum 0.05\n"), std::string::npos);
  EXPECT_NE(text.find("lat_seconds_count 1\n"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Tracer / Span
// ---------------------------------------------------------------------------

TEST(ObsTrace, DisabledModeRecordsNothing) {
  Tracer& tracer = Tracer::global();
  tracer.reset();
  ASSERT_FALSE(tracer.enabled());
  {
    Span outer("should-not-appear");
    Span inner("nor-this");
  }
  EXPECT_EQ(tracer.event_count(), 0u);
  std::ostringstream os;
  tracer.write_chrome_trace(os);
  EXPECT_TRUE(JsonChecker::valid(os.str())) << os.str();
  EXPECT_TRUE(parse_trace_events(os.str()).empty());
}

TEST(ObsTrace, SpansNestPerThread) {
  Tracer& tracer = Tracer::global();
  tracer.reset();
  tracer.enable();
  {
    Span outer("outer");
    {
      Span inner("inner");
      // Make the intervals distinguishable at 1 us resolution.
      const obs::StopWatch sw;
      while (sw.elapsed_s() < 0.002) {
      }
    }
  }
  std::thread other([] { Span t("other-thread"); });
  other.join();
  tracer.disable();

  std::ostringstream os;
  tracer.write_chrome_trace(os);
  const std::string json = os.str();
  ASSERT_TRUE(JsonChecker::valid(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  const auto events = parse_trace_events(json);
  ASSERT_EQ(events.size(), 3u);

  const TraceEvent* outer = nullptr;
  const TraceEvent* inner = nullptr;
  const TraceEvent* other_ev = nullptr;
  for (const auto& e : events) {
    if (e.name == "outer") outer = &e;
    if (e.name == "inner") inner = &e;
    if (e.name == "other-thread") other_ev = &e;
  }
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  ASSERT_NE(other_ev, nullptr);
  // Same thread => same row; inner interval strictly inside outer's.
  EXPECT_EQ(outer->tid, inner->tid);
  EXPECT_GE(inner->ts, outer->ts);
  EXPECT_LE(inner->ts + inner->dur, outer->ts + outer->dur);
  EXPECT_GE(inner->dur, 1000u);  // the 2 ms busy-wait
  // The other thread gets its own row.
  EXPECT_NE(other_ev->tid, outer->tid);
  tracer.reset();
}

TEST(ObsTrace, EnableResetsPreviousSession) {
  Tracer& tracer = Tracer::global();
  tracer.reset();
  tracer.enable();
  { Span s("first-session"); }
  EXPECT_EQ(tracer.event_count(), 1u);
  tracer.enable();  // new session: prior events dropped
  EXPECT_EQ(tracer.event_count(), 0u);
  { Span s("second-session"); }
  EXPECT_EQ(tracer.event_count(), 1u);
  tracer.reset();
}

TEST(ObsLog, LevelRoundTrip) {
  const auto prev = obs::Log::level();
  obs::Log::set_level(obs::LogLevel::kError);
  EXPECT_EQ(obs::Log::level(), obs::LogLevel::kError);
  obs::Log::set_level(prev);
  EXPECT_EQ(obs::Log::level(), prev);
}

// ---------------------------------------------------------------------------
// End-to-end: observability never changes output bytes, and a sharded batch
// populates the load-balance / cache / SW series the roadmap consumers need.
// ---------------------------------------------------------------------------

struct Workload {
  std::vector<seq::SeqRecord> contigs;
  std::vector<seq::SeqRecord> reads;
};

Workload make_workload(std::size_t genome_len, double depth,
                       std::uint64_t seed = 29) {
  Workload w;
  seq::GenomeParams gp;
  gp.length = genome_len;
  gp.repeat_fraction = 0.02;
  gp.rng_seed = seed;
  const std::string genome = simulate_genome(gp);
  seq::ContigParams cp;
  cp.rng_seed = seed + 1;
  w.contigs = chop_into_contigs(genome, cp);
  seq::ReadSimParams rp;
  rp.read_len = 80;
  rp.depth = depth;
  rp.error_rate = 0.005;
  rp.n_rate = 0.0;
  rp.rng_seed = seed + 2;
  w.reads = simulate_reads(genome, rp);
  return w;
}

core::IndexConfig small_index(int k = 21) {
  core::IndexConfig ic;
  ic.k = k;
  ic.buffer_S = 64;
  ic.fragment_len = 512;
  return ic;
}

/// One sharded, shard-parallel batch -> SAM string.
std::string sharded_sam(const Workload& w, int nshards, int parallelism) {
  // 4 ranks on 2 nodes: off-node lookups exist, so the caches see traffic.
  pgas::Runtime rt(pgas::Topology(4, 2));
  auto ref =
      shard::ShardedReference::build(rt, w.contigs, nshards, small_index());
  core::SessionConfig sc;
  sc.exact_match = false;       // the Lemma-1 short-circuit is per shard
  sc.max_hits_per_seed = 4096;  // no per-shard truncation
  shard::ShardedAlignSession session(
      std::move(ref), shard::ShardedSessionConfig{sc, parallelism});
  std::ostringstream sam;
  core::SamStreamSink sink(sam, session.reference().sam_targets(), rt.nranks());
  session.align_batch(rt, w.reads, sink);
  return sam.str();
}

TEST(ObsEndToEnd, ShardedSamBitIdenticalWithTracingOnOrOff) {
  const Workload w = make_workload(120'000, 1.0);

  Tracer::global().reset();
  const std::string unobserved = sharded_sam(w, 2, 2);

  Tracer::global().reset();
  Tracer::global().enable();
  const std::string observed = sharded_sam(w, 2, 2);
  Tracer::global().disable();

  // Observability changes seconds, never bytes.
  EXPECT_EQ(observed, unobserved);

  // The traced run actually recorded a timeline, and it is valid JSON with
  // the phase and shard spans on it.
  std::ostringstream os;
  Tracer::global().write_chrome_trace(os);
  const std::string json = os.str();
  ASSERT_TRUE(JsonChecker::valid(json)) << json.substr(0, 400);
  EXPECT_NE(json.find("\"phase:align\""), std::string::npos);
  EXPECT_NE(json.find("\"shard.batch\""), std::string::npos);
  EXPECT_NE(json.find("\"session.batch\""), std::string::npos);
  EXPECT_NE(json.find("\"shard 0 align\""), std::string::npos);
  Tracer::global().reset();
}

TEST(ObsEndToEnd, ShardedBatchPopulatesRegistry) {
  const Workload w = make_workload(120'000, 1.0);
  auto& reg = MetricsRegistry::global();

  // The registry is process-global and append-only, so assert on deltas.
  const auto value_or_zero = [&reg](const std::string& name,
                                    const Labels& labels) {
    double v = 0.0;
    (void)reg.value_of(name, labels, v);  // absent series reads as 0
    return v;
  };
  const double calls_before =
      value_or_zero("mera_sw_calls_total",
                    {{"kernel", "full_dp"}, {"isa", "native"}});
  const double cells_before =
      value_or_zero("mera_sw_cells_total",
                    {{"kernel", "full_dp"}, {"isa", "native"}});
  const double hits_before =
      value_or_zero("mera_cache_hits_total", {{"cache", "seed"}}) +
      value_or_zero("mera_cache_misses_total", {{"cache", "seed"}});

  const std::string sam = sharded_sam(w, 2, 2);
  ASSERT_FALSE(sam.empty());

  double v = 0.0;
  // Per-shard wall times and both imbalance ratios (the paper's
  // load-balance table, measured and predicted).
  ASSERT_TRUE(reg.value_of("mera_shard_wall_seconds", {{"shard", "0"}}, v));
  EXPECT_GT(v, 0.0);
  ASSERT_TRUE(reg.value_of("mera_shard_wall_seconds", {{"shard", "1"}}, v));
  EXPECT_GT(v, 0.0);
  ASSERT_TRUE(reg.value_of("mera_shard_imbalance_measured", {}, v));
  EXPECT_GE(v, 1.0);
  ASSERT_TRUE(reg.value_of("mera_shard_imbalance_predicted", {}, v));
  EXPECT_GE(v, 1.0);
  ASSERT_TRUE(reg.value_of("mera_shard_parallelism", {}, v));
  EXPECT_EQ(v, 2.0);

  // Per-kernel SW work flowed through the bridge.
  const double calls_after =
      value_or_zero("mera_sw_calls_total",
                    {{"kernel", "full_dp"}, {"isa", "native"}});
  const double cells_after =
      value_or_zero("mera_sw_cells_total",
                    {{"kernel", "full_dp"}, {"isa", "native"}});
  EXPECT_GT(calls_after, calls_before);
  EXPECT_GT(cells_after, cells_before);

  // Cache lookups were accounted (hits + misses strictly grew: the session
  // ran with caches on and remote lookups happened).
  const double hits_after =
      value_or_zero("mera_cache_hits_total", {{"cache", "seed"}}) +
      value_or_zero("mera_cache_misses_total", {{"cache", "seed"}});
  EXPECT_GT(hits_after, hits_before);

  // Phase seconds bridged from the PhaseReport.
  ASSERT_TRUE(
      reg.value_of("mera_phase_cpu_seconds_total", {{"phase", "align"}}, v));
  EXPECT_GT(v, 0.0);

  // The whole registry still exports as valid JSON and Prometheus text.
  std::ostringstream js, prom;
  reg.write_json(js);
  EXPECT_TRUE(JsonChecker::valid(js.str()));
  reg.write_prometheus(prom);
  EXPECT_NE(prom.str().find("# TYPE mera_sw_calls_total counter"),
            std::string::npos);
}

}  // namespace
