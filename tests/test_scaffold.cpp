#include "core/scaffold.hpp"

#include <gtest/gtest.h>

#include <map>

#include "core/pipeline.hpp"
#include "seq/genome_sim.hpp"
#include "seq/read_sim.hpp"

namespace {

using namespace mera::core;

AlignmentRecord rec(std::uint32_t target, std::size_t t_begin,
                    std::size_t t_end, bool reverse, int score = 100) {
  AlignmentRecord a;
  a.target_id = target;
  a.t_begin = t_begin;
  a.t_end = t_end;
  a.reverse = reverse;
  a.score = score;
  return a;
}

TEST(Scaffolder, SingleLinkFromConcordantPairs) {
  // Contigs of length 1000; insert 400. A pair: forward mate near the end
  // of contig 0, reverse mate near the start of contig 1.
  Scaffolder sc({1000, 1000}, {.insert_mean = 400, .min_links = 3});
  std::vector<MatePair> pairs;
  for (int i = 0; i < 5; ++i) {
    MatePair p;
    p.first = rec(0, 800, 900, false);   // 200 bases left in contig 0
    p.second = rec(1, 50, 150, true);    // 150 bases into contig 1
    p.first_aligned = p.second_aligned = true;
    pairs.push_back(p);
  }
  sc.add_pairs(pairs);
  const auto links = sc.links();
  ASSERT_EQ(links.size(), 1u);
  EXPECT_EQ(links[0].from, 0u);
  EXPECT_EQ(links[0].to, 1u);
  EXPECT_EQ(links[0].support, 5);
  // gap = insert - (1000-800) - 150 = 400 - 200 - 150 = 50.
  EXPECT_DOUBLE_EQ(links[0].gap_estimate, 50.0);
}

TEST(Scaffolder, MinLinksFiltersWeakEdges) {
  Scaffolder sc({1000, 1000}, {.insert_mean = 400, .min_links = 3});
  std::vector<MatePair> pairs(2);
  for (auto& p : pairs) {
    p.first = rec(0, 800, 900, false);
    p.second = rec(1, 50, 150, true);
    p.first_aligned = p.second_aligned = true;
  }
  sc.add_pairs(pairs);
  EXPECT_TRUE(sc.links().empty());
}

TEST(Scaffolder, DiscordantAndUnalignedPairsIgnored) {
  Scaffolder sc({1000, 1000}, {.insert_mean = 400, .min_links = 1});
  std::vector<MatePair> pairs(3);
  pairs[0].first = rec(0, 800, 900, false);  // same orientation: discordant
  pairs[0].second = rec(1, 50, 150, false);
  pairs[0].first_aligned = pairs[0].second_aligned = true;
  pairs[1].first = rec(0, 800, 900, false);  // mate unaligned
  pairs[1].first_aligned = true;
  pairs[2].first = rec(0, 800, 900, false);  // same contig
  pairs[2].second = rec(0, 100, 200, true);
  pairs[2].first_aligned = pairs[2].second_aligned = true;
  sc.add_pairs(pairs);
  EXPECT_TRUE(sc.links().empty());
}

TEST(Scaffolder, BuildsChainInOrder) {
  // 4 contigs linked 0->1->2->3.
  Scaffolder sc({500, 500, 500, 500}, {.insert_mean = 300, .min_links = 2});
  std::vector<MatePair> pairs;
  for (std::uint32_t c = 0; c + 1 < 4; ++c) {
    for (int i = 0; i < 4; ++i) {
      MatePair p;
      p.first = rec(c, 400, 480, false);
      p.second = rec(c + 1, 30, 110, true);
      p.first_aligned = p.second_aligned = true;
      pairs.push_back(p);
    }
  }
  sc.add_pairs(pairs);
  const auto scaffolds = sc.build();
  ASSERT_EQ(scaffolds.size(), 1u);
  ASSERT_EQ(scaffolds[0].contigs.size(), 4u);
  for (std::uint32_t c = 0; c < 4; ++c)
    EXPECT_EQ(scaffolds[0].contigs[c], c);
  EXPECT_EQ(scaffolds[0].gaps.size(), 3u);
}

TEST(Scaffolder, RefusesCyclesAndDegreeViolations) {
  // Links 0->1, 1->0 (cycle) and 0->2 (second out-edge of 0).
  Scaffolder sc({500, 500, 500}, {.insert_mean = 300, .min_links = 1});
  std::vector<MatePair> pairs;
  const auto add = [&](std::uint32_t from, std::uint32_t to, int n) {
    for (int i = 0; i < n; ++i) {
      MatePair p;
      p.first = rec(from, 400, 480, false);
      p.second = rec(to, 30, 110, true);
      p.first_aligned = p.second_aligned = true;
      pairs.push_back(p);
    }
  };
  add(0, 1, 5);
  add(1, 0, 3);  // would close a cycle; weaker, so rejected
  add(0, 2, 2);  // 0 already has an out-edge
  sc.add_pairs(pairs);
  const auto scaffolds = sc.build();
  // Expect one chain 0->1 and a singleton 2.
  ASSERT_EQ(scaffolds.size(), 2u);
  EXPECT_EQ(scaffolds[0].contigs, (std::vector<std::uint32_t>{0, 1}));
  EXPECT_EQ(scaffolds[1].contigs, (std::vector<std::uint32_t>{2}));
}

TEST(Scaffolder, PairAdjacentValidatesSizes) {
  EXPECT_THROW(
      Scaffolder::pair_adjacent(std::vector<AlignmentRecord>(3),
                                std::vector<bool>(2)),
      std::invalid_argument);
}

TEST(Scaffolder, EndToEndRecoversSimulatedContigOrder) {
  // Full-stack test: genome -> contigs -> paired reads -> merAligner ->
  // scaffolder; the rebuilt scaffold must follow the true contig order.
  using namespace mera;
  const std::string genome =
      seq::simulate_genome({.length = 120'000, .repeat_fraction = 0.0,
                            .rng_seed = 31});
  seq::ContigParams cp;
  cp.min_len = 1500;
  cp.max_len = 3500;
  cp.gap_min = 20;
  cp.gap_max = 200;
  cp.rng_seed = 32;
  const auto contigs = seq::chop_into_contigs(genome, cp);
  seq::ReadSimParams rp;
  rp.read_len = 80;
  rp.depth = 8.0;
  rp.paired = true;
  rp.insert_mean = 900;
  rp.insert_sd = 50;
  rp.grouped = false;
  rp.rng_seed = 33;
  const auto reads = seq::simulate_reads(genome, rp);

  core::AlignerConfig cfg;
  cfg.k = 21;
  cfg.buffer_S = 64;
  cfg.fragment_len = 512;
  cfg.permute_queries = false;
  pgas::Runtime rt(pgas::Topology(4, 2));
  const auto res = core::MerAligner(cfg).align(rt, contigs, reads);

  // Best alignment per read, in read order.
  std::map<std::string, AlignmentRecord> best;
  for (const auto& a : res.alignments) {
    auto it = best.find(a.query_name);
    if (it == best.end() || a.score > it->second.score)
      best[a.query_name] = a;
  }
  std::vector<AlignmentRecord> per_read(reads.size());
  std::vector<bool> aligned(reads.size(), false);
  for (std::size_t i = 0; i < reads.size(); ++i) {
    const auto it = best.find(reads[i].name);
    if (it != best.end()) {
      per_read[i] = it->second;
      aligned[i] = true;
    }
  }

  std::vector<std::size_t> lengths;
  for (const auto& c : contigs) lengths.push_back(c.seq.size());
  Scaffolder sc(lengths, {.insert_mean = rp.insert_mean, .min_links = 3});
  sc.add_pairs(Scaffolder::pair_adjacent(per_read, aligned));
  const auto scaffolds = sc.build();

  // The longest scaffold should chain many contigs in true (id) order.
  ASSERT_FALSE(scaffolds.empty());
  const auto& main_sc = scaffolds[0];
  EXPECT_GE(main_sc.contigs.size(), contigs.size() / 2);
  for (std::size_t i = 1; i < main_sc.contigs.size(); ++i)
    EXPECT_EQ(main_sc.contigs[i], main_sc.contigs[i - 1] + 1)
        << "scaffold order broken at " << i;
  // Gap estimates should be in the right ballpark of the simulated gaps.
  for (double g : main_sc.gaps) {
    EXPECT_GT(g, -200.0);
    EXPECT_LT(g, 500.0);
  }
}

}  // namespace
