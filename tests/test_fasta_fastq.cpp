#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <random>
#include <string>

#include "seq/fasta.hpp"
#include "seq/fastq.hpp"

namespace {

using namespace mera::seq;

class TempDir : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("mera_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string path(const std::string& name) const { return (dir_ / name).string(); }
  std::filesystem::path dir_;
};

using FastaTest = TempDir;
using FastqTest = TempDir;

std::vector<SeqRecord> sample_records(int n, std::uint64_t seed,
                                      bool with_qual) {
  std::mt19937_64 rng(seed);
  std::vector<SeqRecord> recs;
  for (int i = 0; i < n; ++i) {
    SeqRecord r;
    r.name = "seq" + std::to_string(i);
    r.seq.resize(20 + rng() % 200);
    for (auto& c : r.seq) c = "ACGT"[rng() & 3u];
    if (with_qual) r.qual.assign(r.seq.size(), 'I');
    recs.push_back(std::move(r));
  }
  return recs;
}

TEST_F(FastaTest, WriteReadRoundTrip) {
  const auto recs = sample_records(25, 1, false);
  write_fasta(path("a.fa"), recs);
  const auto back = read_fasta(path("a.fa"));
  ASSERT_EQ(back.size(), recs.size());
  for (std::size_t i = 0; i < recs.size(); ++i) {
    EXPECT_EQ(back[i].name, recs[i].name);
    EXPECT_EQ(back[i].seq, recs[i].seq);
  }
}

TEST_F(FastaTest, LineWrappingIsTransparent) {
  const auto recs = sample_records(5, 2, false);
  for (std::size_t width : {1u, 7u, 80u, 10000u}) {
    write_fasta(path("w.fa"), recs, width);
    const auto back = read_fasta(path("w.fa"));
    ASSERT_EQ(back.size(), recs.size());
    for (std::size_t i = 0; i < recs.size(); ++i)
      EXPECT_EQ(back[i].seq, recs[i].seq) << "width=" << width;
  }
}

TEST_F(FastaTest, ParseHandlesDescriptionsAndCRLF) {
  const std::string text = ">chr1 description here\r\nACGT\r\nTTAA\r\n>chr2\nGG\n";
  const auto recs = parse_fasta(text);
  ASSERT_EQ(recs.size(), 2u);
  EXPECT_EQ(recs[0].name, "chr1");
  EXPECT_EQ(recs[0].seq, "ACGTTTAA");
  EXPECT_EQ(recs[1].name, "chr2");
  EXPECT_EQ(recs[1].seq, "GG");
}

TEST_F(FastaTest, PartitionedReadCoversExactlyOnce) {
  const auto recs = sample_records(103, 3, false);
  write_fasta(path("p.fa"), recs);
  for (int nranks : {1, 2, 3, 7, 16}) {
    std::vector<SeqRecord> merged;
    for (int r = 0; r < nranks; ++r) {
      const auto part = read_fasta_partition(path("p.fa"), r, nranks);
      merged.insert(merged.end(), part.begin(), part.end());
    }
    ASSERT_EQ(merged.size(), recs.size()) << "nranks=" << nranks;
    for (std::size_t i = 0; i < recs.size(); ++i) {
      EXPECT_EQ(merged[i].name, recs[i].name);
      EXPECT_EQ(merged[i].seq, recs[i].seq);
    }
  }
}

TEST_F(FastaTest, EmptyFileYieldsNoRecords) {
  write_fasta(path("e.fa"), {});
  EXPECT_TRUE(read_fasta(path("e.fa")).empty());
}

TEST_F(FastaTest, MissingFileThrows) {
  EXPECT_THROW(read_fasta(path("nope.fa")), std::runtime_error);
}

TEST_F(FastqTest, WriteReadRoundTrip) {
  const auto recs = sample_records(30, 4, true);
  write_fastq(path("a.fq"), recs);
  const auto back = read_fastq(path("a.fq"));
  ASSERT_EQ(back.size(), recs.size());
  for (std::size_t i = 0; i < recs.size(); ++i) {
    EXPECT_EQ(back[i].name, recs[i].name);
    EXPECT_EQ(back[i].seq, recs[i].seq);
    EXPECT_EQ(back[i].qual, recs[i].qual);
  }
}

TEST_F(FastqTest, PartitionedReadCoversExactlyOnce) {
  const auto recs = sample_records(211, 5, true);
  write_fastq(path("p.fq"), recs);
  for (int nranks : {1, 2, 5, 12}) {
    std::vector<SeqRecord> merged;
    for (int r = 0; r < nranks; ++r) {
      const auto part = read_fastq_partition(path("p.fq"), r, nranks);
      merged.insert(merged.end(), part.begin(), part.end());
    }
    ASSERT_EQ(merged.size(), recs.size()) << "nranks=" << nranks;
    for (std::size_t i = 0; i < recs.size(); ++i)
      EXPECT_EQ(merged[i].seq, recs[i].seq);
  }
}

TEST_F(FastqTest, QualityLengthMismatchThrows) {
  const std::string bad = "@r1\nACGT\n+\nII\n";
  EXPECT_THROW(parse_fastq(bad), std::runtime_error);
}

TEST_F(FastqTest, NamesAreTruncatedAtWhitespace) {
  const std::string text = "@read1 extra metadata\nACGT\n+\nIIII\n";
  const auto recs = parse_fastq(text);
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_EQ(recs[0].name, "read1");
}

TEST_F(FastqTest, NextRecordHeuristicSkipsMidRecordStarts) {
  // Position the scan start inside a record body; the scanner must find the
  // *next* record header, not the '+' or quality lines.
  const std::string text = "@r1\nACGT\n+\nIIII\n@r2\nGGGG\n+\nIIII\n";
  const std::size_t r2 = text.find("@r2");
  EXPECT_EQ(fastq_next_record(text, 1), r2);
  EXPECT_EQ(fastq_next_record(text, 0), 0u);
  EXPECT_EQ(fastq_next_record(text, r2), r2);
  EXPECT_EQ(fastq_next_record(text, r2 + 1), text.size());
}

TEST_F(FastqTest, BadRankArgumentsThrow) {
  write_fastq(path("x.fq"), sample_records(3, 6, true));
  EXPECT_THROW(read_fastq_partition(path("x.fq"), -1, 4),
               std::invalid_argument);
  EXPECT_THROW(read_fastq_partition(path("x.fq"), 4, 4),
               std::invalid_argument);
}

}  // namespace
