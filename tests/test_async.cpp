// The async execution paths: parallel shard dispatch
// (ShardedSessionConfig::shard_parallelism) and double-buffered file-batch
// streaming (core::BatchPrefetcher behind align_batch_files).
//
// The contract under test: concurrency changes SECONDS, never BYTES. A
// K-shard batch driven by J pool workers must emit the records, SAM content
// and work totals of the serial shard loop bit-for-bit, for every K and
// every SW kernel; a prefetched file stream must emit exactly what the
// synchronous per-file path emits, in the same order.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/align_session.hpp"
#include "core/alignment_sink.hpp"
#include "core/batch_prefetcher.hpp"
#include "core/indexed_reference.hpp"
#include "exec/thread_pool.hpp"
#include "seq/fastq.hpp"
#include "seq/genome_sim.hpp"
#include "seq/read_sim.hpp"
#include "seq/seqdb.hpp"
#include "shard/sharded_reference.hpp"
#include "shard/sharded_session.hpp"

namespace {

using namespace mera;
using mera::align::SwKernel;
using mera::core::AlignmentRecord;
using mera::pgas::Runtime;
using mera::pgas::Topology;
using mera::seq::SeqRecord;

struct Workload {
  std::vector<SeqRecord> contigs;
  std::vector<SeqRecord> reads;
};

Workload make_workload(std::size_t genome_len, double depth,
                       std::uint64_t seed = 11) {
  Workload w;
  seq::GenomeParams gp;
  gp.length = genome_len;
  gp.repeat_fraction = 0.02;
  gp.rng_seed = seed;
  const std::string genome = simulate_genome(gp);
  seq::ContigParams cp;
  cp.rng_seed = seed + 1;
  w.contigs = chop_into_contigs(genome, cp);
  seq::ReadSimParams rp;
  rp.read_len = 80;
  rp.depth = depth;
  rp.error_rate = 0.005;
  rp.n_rate = 0.0;
  rp.rng_seed = seed + 2;
  w.reads = simulate_reads(genome, rp);
  return w;
}

core::IndexConfig small_index(int k = 21) {
  core::IndexConfig ic;
  ic.k = k;
  ic.buffer_S = 64;
  ic.fragment_len = 512;
  return ic;
}

/// Caches off so EVERY stat — including the modeled comm seconds — is
/// deterministic and can be compared exactly between two runs. (Node-cache
/// hit counts depend on rank-thread interleaving, with or without a shard
/// executor; everything else is scheduling-invariant.)
core::SessionConfig cacheless_session() {
  core::SessionConfig sc;
  sc.seed_cache = false;
  sc.target_cache = false;
  sc.permute_queries = false;
  sc.exact_match = false;
  sc.max_hits_per_seed = 4096;
  return sc;
}

void expect_same_deterministic_stats(const core::PipelineStats& a,
                                     const core::PipelineStats& b) {
  EXPECT_EQ(a.reads_processed, b.reads_processed);
  EXPECT_EQ(a.reads_aligned, b.reads_aligned);
  EXPECT_EQ(a.alignments_reported, b.alignments_reported);
  EXPECT_EQ(a.seed_lookups, b.seed_lookups);
  EXPECT_EQ(a.target_fetches, b.target_fetches);
  EXPECT_EQ(a.sw_calls, b.sw_calls);
  EXPECT_EQ(a.memcmp_calls, b.memcmp_calls);
  EXPECT_EQ(a.exact_match_reads, b.exact_match_reads);
  EXPECT_EQ(a.hits_truncated, b.hits_truncated);
}

// ---------------------------------------------------------------------------
// Parallel shard dispatch == serial shard loop, bit for bit
// ---------------------------------------------------------------------------

TEST(ParallelShards, BitIdenticalToSerialForEveryKAndKernel) {
  const auto w = make_workload(25'000, 1.0);

  for (const SwKernel kernel :
       {SwKernel::kFullDP, SwKernel::kBanded, SwKernel::kStriped}) {
    core::SessionConfig sc = cacheless_session();
    sc.extension.kernel = kernel;

    for (const int K : {1, 2, 4}) {
      Runtime rt(Topology(2, 2));
      // ONE reference for both sessions: the distributed index's bucket
      // order is fixed at build time, so any byte difference below could
      // only come from the executor.
      const auto ref =
          shard::ShardedReference::build(rt, w.contigs, K, small_index());

      auto run = [&](int J, std::string* sam_out,
                     core::PipelineStats* stats_out) {
        shard::ShardedAlignSession session(
            ref, shard::ShardedSessionConfig{sc, J});
        core::VectorSink vec(rt.nranks());
        std::ostringstream sam_text;
        core::SamStreamSink sam(sam_text, ref.sam_targets(), rt.nranks());
        core::TeeSink tee({&vec, &sam});
        const auto res = session.align_batch(rt, w.reads, tee);
        EXPECT_EQ(res.shard_parallelism, std::min(J, K));
        EXPECT_GT(res.wall_s, 0.0);
        *sam_out = sam_text.str();
        *stats_out = res.stats;
        return vec.take();
      };

      std::string sam_serial, sam_parallel;
      core::PipelineStats st_serial, st_parallel;
      const auto serial = run(1, &sam_serial, &st_serial);
      const auto parallel = run(K, &sam_parallel, &st_parallel);

      ASSERT_GT(serial.size(), 0u);
      ASSERT_EQ(parallel.size(), serial.size())
          << "K=" << K << " kernel=" << static_cast<int>(kernel);
      // Emission ORDER must match, not just the record set — the executor
      // may not even reorder ties.
      for (std::size_t i = 0; i < serial.size(); ++i)
        ASSERT_EQ(parallel[i], serial[i])
            << "record " << i << " K=" << K
            << " kernel=" << static_cast<int>(kernel);
      EXPECT_EQ(sam_parallel, sam_serial);
      expect_same_deterministic_stats(st_parallel, st_serial);
      // Caches are off: even the modeled comm seconds must agree exactly.
      EXPECT_EQ(st_parallel.comm_lookup_s, st_serial.comm_lookup_s);
      EXPECT_EQ(st_parallel.comm_fetch_s, st_serial.comm_fetch_s);
    }
  }
}

TEST(ParallelShards, DefaultConfigWithCachesAndExactMatchStaysIdentical) {
  // The production config (caches on, Lemma-1 on, permutation on, hit cap):
  // per-shard work is identical under any executor, so records and the
  // scheduling-invariant counters still match exactly.
  const auto w = make_workload(20'000, 1.0, /*seed=*/23);
  Runtime rt(Topology(2, 2));
  const auto ref =
      shard::ShardedReference::build(rt, w.contigs, 3, small_index());

  auto run = [&](int J, core::PipelineStats* stats_out) {
    core::SessionConfig sc;  // defaults: caches, exact-match, permutation
    shard::ShardedAlignSession session(ref,
                                       shard::ShardedSessionConfig{sc, J});
    core::VectorSink vec(rt.nranks());
    const auto res = session.align_batch(rt, w.reads, vec);
    *stats_out = res.stats;
    return vec.take();
  };

  core::PipelineStats st_serial, st_parallel;
  const auto serial = run(1, &st_serial);
  const auto parallel = run(3, &st_parallel);
  ASSERT_GT(serial.size(), 0u);
  ASSERT_EQ(parallel.size(), serial.size());
  for (std::size_t i = 0; i < serial.size(); ++i)
    ASSERT_EQ(parallel[i], serial[i]) << "record " << i;
  expect_same_deterministic_stats(st_parallel, st_serial);
}

TEST(ParallelShards, EffectiveParallelismResolvesAutoAndClamps) {
  const auto w = make_workload(12'000, 0.3);
  Runtime rt(Topology(2, 2));
  const auto ref =
      shard::ShardedReference::build(rt, w.contigs, 4, small_index());

  shard::ShardedAlignSession auto_session(ref, cacheless_session());
  EXPECT_EQ(auto_session.sharded_config().shard_parallelism, 0);
  EXPECT_GE(auto_session.effective_parallelism(rt.nranks()), 1);
  EXPECT_LE(auto_session.effective_parallelism(rt.nranks()), 4);

  shard::ShardedAlignSession wide(
      ref, shard::ShardedSessionConfig{cacheless_session(), 64});
  EXPECT_EQ(wide.effective_parallelism(rt.nranks()), 4);  // clamped to K
}

TEST(ParallelShards, ExceptionsPropagateFromPoolWorkers) {
  const auto w = make_workload(12'000, 0.3);
  Runtime build_rt(Topology(2, 2));
  const auto ref =
      shard::ShardedReference::build(build_rt, w.contigs, 2, small_index());
  shard::ShardedAlignSession session(
      ref, shard::ShardedSessionConfig{cacheless_session(), 2});
  core::CountingSink sink;
  // A mismatched runtime makes every per-shard AlignSession throw on a pool
  // worker; TaskGroup must carry the earliest shard's exception back.
  Runtime wrong(Topology(4, 1));
  EXPECT_THROW((void)session.align_batch(wrong, w.reads, sink),
               std::invalid_argument);
  // The session survives the failed batch and still runs correctly.
  const auto res = session.align_batch(build_rt, w.reads, sink);
  EXPECT_EQ(res.shard_parallelism, 2);
  EXPECT_GT(res.stats.alignments_reported, 0u);
}

TEST(ParallelShards, ScratchReuseKeepsBatchesIndependent) {
  // Three batches through one session (collector/merge buffers are reused):
  // every batch must produce the same stream as a fresh serial session.
  const auto w = make_workload(18'000, 0.8, /*seed=*/31);
  Runtime rt(Topology(2, 2));
  const auto ref =
      shard::ShardedReference::build(rt, w.contigs, 2, small_index());
  shard::ShardedAlignSession reused(
      ref, shard::ShardedSessionConfig{cacheless_session(), 2});
  for (int round = 0; round < 3; ++round) {
    shard::ShardedAlignSession fresh(
        ref, shard::ShardedSessionConfig{cacheless_session(), 1});
    core::VectorSink v_reused(rt.nranks()), v_fresh(rt.nranks());
    (void)reused.align_batch(rt, w.reads, v_reused);
    (void)fresh.align_batch(rt, w.reads, v_fresh);
    const auto got = v_reused.take();
    const auto want = v_fresh.take();
    ASSERT_EQ(got.size(), want.size()) << "round " << round;
    for (std::size_t i = 0; i < got.size(); ++i)
      ASSERT_EQ(got[i], want[i]) << "round " << round << " record " << i;
  }
  EXPECT_EQ(reused.batches_aligned(), 3u);
}

// ---------------------------------------------------------------------------
// Prefetched file streaming == synchronous per-file path, bit for bit
// ---------------------------------------------------------------------------

std::vector<std::string> write_seqdb_batches(const Workload& w,
                                             const std::string& stem,
                                             std::size_t nbatches) {
  std::vector<std::string> paths;
  const std::size_t per = w.reads.size() / nbatches;
  for (std::size_t b = 0; b < nbatches; ++b) {
    const std::size_t lo = b * per;
    const std::size_t hi = b + 1 == nbatches ? w.reads.size() : lo + per;
    paths.push_back(stem + std::to_string(b) + ".sdb");
    seq::SeqDBWriter db(paths.back());
    for (std::size_t i = lo; i < hi; ++i) db.add(w.reads[i]);
  }
  return paths;
}

void remove_all(const std::vector<std::string>& paths) {
  for (const auto& p : paths) std::remove(p.c_str());
}

TEST(BatchPrefetch, StreamBitIdenticalToPerFileSynchronousPath) {
  const auto w = make_workload(22'000, 1.0, /*seed=*/47);
  const auto paths = write_seqdb_batches(w, "test_async_stream_", 3);

  Runtime rt(Topology(2, 2));
  const auto ref = core::IndexedReference::build(rt, w.contigs, small_index());
  core::SessionConfig sc;  // defaults incl. Section IV-B permutation

  // Reference run: the pre-existing per-file path, one call per batch.
  std::ostringstream sam_sync;
  core::PipelineStats st_sync;
  std::vector<AlignmentRecord> rec_sync;
  {
    core::AlignSession session(ref, sc);
    core::VectorSink vec(rt.nranks());
    core::SamStreamSink sam(sam_sync, ref);
    core::TeeSink tee({&vec, &sam});
    for (const auto& p : paths) {
      const auto res = session.align_batch_file(rt, p, tee);
      st_sync += res.stats;
    }
    rec_sync = vec.take();
  }

  // Prefetched stream: same files, background loads, same session config.
  std::ostringstream sam_pf;
  {
    core::AlignSession session(ref, sc);
    core::VectorSink vec(rt.nranks());
    core::SamStreamSink sam(sam_pf, ref);
    core::TeeSink tee({&vec, &sam});
    const auto stream = session.align_batch_files(rt, paths, tee);
    ASSERT_EQ(stream.batches.size(), paths.size());
    EXPECT_GT(stream.wall_s, 0.0);
    EXPECT_GT(stream.load_wall_s, 0.0);
    expect_same_deterministic_stats(stream.stats, st_sync);
    // The stream report is the batches' phases in order, no index phases.
    std::size_t aligns = 0;
    for (const auto& ph : stream.report.phases) {
      aligns += ph.name == "align" ? 1 : 0;
      EXPECT_NE(ph.name, "index.build");
      EXPECT_NE(ph.name, "index.mark");
    }
    EXPECT_EQ(aligns, paths.size());

    const auto rec_pf = vec.take();
    ASSERT_EQ(rec_pf.size(), rec_sync.size());
    // Same permutation, same rank partition: emission order matches exactly.
    for (std::size_t i = 0; i < rec_pf.size(); ++i)
      ASSERT_EQ(rec_pf[i], rec_sync[i]) << "record " << i;
  }
  EXPECT_EQ(sam_pf.str(), sam_sync.str());
  remove_all(paths);
}

TEST(BatchPrefetch, SyncModeOfStreamApiMatchesPrefetchedMode) {
  // align_batch_files' two modes differ only in overlap; with a shared
  // external pool, both must emit the same bytes.
  const auto w = make_workload(18'000, 0.8, /*seed=*/53);
  const auto paths = write_seqdb_batches(w, "test_async_modes_", 3);

  Runtime rt(Topology(2, 2));
  const auto ref = core::IndexedReference::build(rt, w.contigs, small_index());
  exec::ThreadPool pool(2);

  auto run = [&](bool prefetch) {
    core::AlignSession session(ref, cacheless_session());
    core::VectorSink vec(rt.nranks());
    core::FileStreamOptions opt;
    opt.prefetch = prefetch;
    opt.pool = &pool;
    const auto stream = session.align_batch_files(rt, paths, vec, opt);
    EXPECT_EQ(stream.batches.size(), paths.size());
    if (!prefetch) EXPECT_EQ(stream.stall_s, stream.load_wall_s);
    return vec.take();
  };

  const auto sync = run(false);
  const auto prefetched = run(true);
  ASSERT_GT(sync.size(), 0u);
  ASSERT_EQ(prefetched.size(), sync.size());
  for (std::size_t i = 0; i < sync.size(); ++i)
    ASSERT_EQ(prefetched[i], sync[i]) << "record " << i;
  remove_all(paths);
}

TEST(BatchPrefetch, FastqBatchesLoadDirectlyAndMatchSeqdbConversion) {
  const auto w = make_workload(15'000, 0.6, /*seed=*/61);
  const std::string fastq = "test_async_batch.fastq";
  const std::string sdb = "test_async_batch.sdb";
  seq::write_fastq(fastq, std::vector<SeqRecord>(w.reads.begin(),
                                                 w.reads.end()));
  seq::fastq_to_seqdb(fastq, sdb);

  // The loader parses FASTQ straight into the records the SeqDB holds.
  const auto direct = core::load_read_batch(fastq);
  const auto converted = core::load_read_batch(sdb);
  ASSERT_EQ(direct.size(), converted.size());
  for (std::size_t i = 0; i < direct.size(); ++i)
    ASSERT_EQ(direct[i], converted[i]) << "record " << i;

  // And the aligned stream agrees across input formats.
  Runtime rt(Topology(2, 2));
  const auto ref = core::IndexedReference::build(rt, w.contigs, small_index());
  auto run = [&](const std::string& path) {
    core::AlignSession session(ref, cacheless_session());
    core::VectorSink vec(rt.nranks());
    (void)session.align_batch_files(rt, {path}, vec);
    return vec.take();
  };
  const auto from_fastq = run(fastq);
  const auto from_sdb = run(sdb);
  ASSERT_EQ(from_fastq.size(), from_sdb.size());
  for (std::size_t i = 0; i < from_fastq.size(); ++i)
    ASSERT_EQ(from_fastq[i], from_sdb[i]) << "record " << i;

  std::remove(fastq.c_str());
  std::remove(sdb.c_str());
}

TEST(BatchPrefetch, FastqSniffIsCaseInsensitive) {
  // Regression: '.FASTQ'/'.Fq' files fell through to the SeqDB reader and
  // died with a misleading SeqDB parse error. The sniff is extension-only
  // and must not care about case.
  EXPECT_TRUE(core::looks_like_fastq("reads.fastq"));
  EXPECT_TRUE(core::looks_like_fastq("reads.FASTQ"));
  EXPECT_TRUE(core::looks_like_fastq("READS.FaStQ"));
  EXPECT_TRUE(core::looks_like_fastq("reads.fq"));
  EXPECT_TRUE(core::looks_like_fastq("reads.Fq"));
  EXPECT_FALSE(core::looks_like_fastq("reads.sdb"));
  EXPECT_FALSE(core::looks_like_fastq("reads.fastq.sdb"));
  EXPECT_FALSE(core::looks_like_fastq("fq"));  // extension, not a basename

  const auto w = make_workload(8'000, 0.4, /*seed=*/62);
  const std::string upper = "test_async_batch_upper.FASTQ";
  seq::write_fastq(upper, std::vector<SeqRecord>(w.reads.begin(),
                                                 w.reads.end()));
  const auto records = core::load_read_batch(upper);
  ASSERT_EQ(records.size(), w.reads.size());
  for (std::size_t i = 0; i < records.size(); ++i)
    ASSERT_EQ(records[i], w.reads[i]) << "record " << i;
  std::remove(upper.c_str());
}

TEST(BatchPrefetch, SeqdbFallbackErrorNamesPathAndFormatGuess) {
  // A file that is neither FASTQ-named nor a SeqDB must fail with an error
  // that says which file and what the loader guessed, not a bare SeqDB
  // parse error.
  const std::string bogus = "test_async_bogus_batch.txt";
  {
    std::ofstream out(bogus);
    out << "this is not a SeqDB\n";
  }
  try {
    (void)core::load_read_batch(bogus);
    FAIL() << "expected load_read_batch to throw";
  } catch (const std::exception& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find(bogus), std::string::npos) << msg;
    EXPECT_NE(msg.find("SeqDB"), std::string::npos) << msg;
    EXPECT_NE(msg.find("FASTQ"), std::string::npos) << msg;
  }
  std::remove(bogus.c_str());
}

TEST(BatchPrefetch, MissingFileIsReportedAsMissingNotAsSeqdbFailure) {
  // A nonexistent path used to fall through to the SeqDB reader and surface
  // as a bogus format error; it must say "no such file" and name the path.
  for (const char* missing :
       {"test_async_no_such_file.sdb", "test_async_no_such_file.fastq"}) {
    try {
      (void)core::load_read_batch(missing);
      FAIL() << "expected load_read_batch to throw for '" << missing << "'";
    } catch (const std::exception& e) {
      const std::string msg = e.what();
      EXPECT_NE(msg.find(missing), std::string::npos) << msg;
      EXPECT_NE(msg.find("no such file"), std::string::npos) << msg;
      EXPECT_EQ(msg.find("SeqDB"), std::string::npos)
          << "a missing file is not a format error: " << msg;
    }
  }
}

TEST(BatchPrefetch, ExistingFilesStillLoadAfterTheMissingFileCheck) {
  const auto w = make_workload(8'000, 0.3, /*seed=*/63);
  const std::string fastq = "test_async_exists_check.fastq";
  seq::write_fastq(fastq, std::vector<SeqRecord>(w.reads.begin(),
                                                 w.reads.end()));
  EXPECT_EQ(core::load_read_batch(fastq).size(), w.reads.size());
  std::remove(fastq.c_str());
}

TEST(BatchPrefetch, LoadErrorsSurfaceOnTheCallingThread) {
  exec::ThreadPool pool(1);
  core::BatchPrefetcher prefetcher(pool, {"test_async_does_not_exist.sdb"});
  EXPECT_THROW((void)prefetcher.next(), std::exception);
}

TEST(BatchPrefetch, StreamContinuesPastAFailedLoad) {
  // A caller that catches a bad batch's error gets the remaining files, in
  // order, instead of a dead prefetcher.
  const auto w = make_workload(10'000, 0.3, /*seed=*/67);
  const auto good = write_seqdb_batches(w, "test_async_recover_", 1);
  exec::ThreadPool pool(1);
  core::BatchPrefetcher prefetcher(
      pool, {"test_async_does_not_exist.sdb", good[0]});
  EXPECT_THROW((void)prefetcher.next(), std::exception);
  const auto batch = prefetcher.next();
  ASSERT_TRUE(batch.has_value());
  EXPECT_EQ(batch->path, good[0]);
  EXPECT_EQ(batch->records.size(), w.reads.size());
  EXPECT_FALSE(prefetcher.next().has_value());
  remove_all(good);
}

// ---------------------------------------------------------------------------
// Sharded session × prefetched streaming (both axes at once)
// ---------------------------------------------------------------------------

TEST(ShardedStream, PrefetchedParallelStreamMatchesSerialPerFilePath) {
  const auto w = make_workload(20'000, 0.8, /*seed=*/71);
  const auto paths = write_seqdb_batches(w, "test_async_sharded_", 3);

  Runtime rt(Topology(2, 2));
  const auto ref =
      shard::ShardedReference::build(rt, w.contigs, 2, small_index());
  core::SessionConfig sc;
  sc.exact_match = false;
  sc.max_hits_per_seed = 4096;  // comparable against any composition

  // Serial loop over files, serial shard dispatch — the PR-3 path.
  std::ostringstream sam_serial;
  std::vector<AlignmentRecord> rec_serial;
  {
    shard::ShardedAlignSession session(ref,
                                       shard::ShardedSessionConfig{sc, 1});
    core::VectorSink vec(rt.nranks());
    core::SamStreamSink sam(sam_serial, ref.sam_targets(), rt.nranks());
    core::TeeSink tee({&vec, &sam});
    for (const auto& p : paths) (void)session.align_batch_file(rt, p, tee);
    rec_serial = vec.take();
  }

  // Prefetched stream with parallel shards — both new axes at once.
  std::ostringstream sam_async;
  {
    shard::ShardedAlignSession session(ref,
                                       shard::ShardedSessionConfig{sc, 2});
    core::VectorSink vec(rt.nranks());
    core::SamStreamSink sam(sam_async, ref.sam_targets(), rt.nranks());
    core::TeeSink tee({&vec, &sam});
    const auto stream = session.align_batch_files(rt, paths, tee);
    ASSERT_EQ(stream.batches.size(), paths.size());
    for (const auto& batch : stream.batches)
      EXPECT_EQ(batch.shard_parallelism, 2);
    EXPECT_GT(stream.wall_s, 0.0);

    const auto rec_async = vec.take();
    ASSERT_GT(rec_serial.size(), 0u);
    ASSERT_EQ(rec_async.size(), rec_serial.size());
    for (std::size_t i = 0; i < rec_async.size(); ++i)
      ASSERT_EQ(rec_async[i], rec_serial[i]) << "record " << i;
  }
  EXPECT_EQ(sam_async.str(), sam_serial.str());
  remove_all(paths);
}

}  // namespace
