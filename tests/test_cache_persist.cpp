// Cache persistence & warm start (the `ctest -L cache` equivalence tier).
//
// The contract under test: snapshotting a session's software caches and
// restoring them in another session/process changes seconds, never bytes.
//   1. round trip    — save -> load -> save reproduces the snapshot byte for
//                      byte (entries, per-entry hit counts, counters, ring /
//                      LRU order), for randomized cache contents;
//   2. rejection     — fingerprint/topology/cost-model mismatches and
//                      truncated or corrupted files are refused, caches
//                      untouched;
//   3. bit-identity  — a warm-started session emits exactly the records,
//                      SAM stream and work stats of a cold one, across
//                      K in {1, 2, 4} shards and all three SW kernels,
//                      while doing strictly less remote-lookup work;
//   4. counter baseline — loaded counters are cumulative session history,
//                      and per-batch deltas report only post-load activity
//                      (the load_caches re-seeding decision, pinned).
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "cache/cache_snapshot.hpp"
#include "cache/seed_cache.hpp"
#include "cache/target_cache.hpp"
#include "core/align_session.hpp"
#include "core/alignment_sink.hpp"
#include "core/indexed_reference.hpp"
#include "seq/genome_sim.hpp"
#include "seq/read_sim.hpp"
#include "shard/sharded_reference.hpp"
#include "shard/sharded_session.hpp"

namespace {

using namespace mera;
using namespace mera::cache;
using mera::align::SwKernel;
using mera::core::AlignmentRecord;
using mera::dht::SeedHit;
using mera::pgas::Runtime;
using mera::pgas::Topology;
using mera::seq::Kmer;
using mera::seq::SeqRecord;

// ---------------------------------------------------------------------------
// Shared helpers
// ---------------------------------------------------------------------------

struct Workload {
  std::vector<SeqRecord> contigs;
  std::vector<SeqRecord> reads;
};

Workload make_workload(std::size_t genome_len, double depth,
                       std::uint64_t seed = 11) {
  Workload w;
  seq::GenomeParams gp;
  gp.length = genome_len;
  gp.repeat_fraction = 0.03;
  gp.rng_seed = seed;
  const std::string genome = simulate_genome(gp);
  seq::ContigParams cp;
  cp.rng_seed = seed + 1;
  w.contigs = chop_into_contigs(genome, cp);
  seq::ReadSimParams rp;
  rp.read_len = 80;
  rp.depth = depth;
  rp.error_rate = 0.004;
  rp.n_rate = 0.0;
  rp.rng_seed = seed + 2;
  w.reads = simulate_reads(genome, rp);
  return w;
}

core::IndexConfig small_index(int k = 21) {
  core::IndexConfig ic;
  ic.k = k;
  ic.buffer_S = 64;
  ic.fragment_len = 512;
  return ic;
}

std::string random_dna(std::mt19937_64& rng, int len) {
  static constexpr char kBases[] = "ACGT";
  std::string s(static_cast<std::size_t>(len), 'A');
  for (auto& c : s) c = kBases[rng() % 4];
  return s;
}

/// The stats fields that must be byte-identical between a cold and a warm
/// run. Cache hit counters and the modeled communication seconds they save
/// are exactly what warm starting is SUPPOSED to change, so they are
/// asserted separately (warm strictly does less remote work).
void expect_invariant_stats_equal(const core::PipelineStats& cold,
                                  const core::PipelineStats& warm) {
  EXPECT_EQ(cold.reads_processed, warm.reads_processed);
  EXPECT_EQ(cold.reads_aligned, warm.reads_aligned);
  EXPECT_EQ(cold.alignments_reported, warm.alignments_reported);
  EXPECT_EQ(cold.seed_lookups, warm.seed_lookups);
  EXPECT_EQ(cold.target_fetches, warm.target_fetches);
  EXPECT_EQ(cold.sw_calls, warm.sw_calls);
  EXPECT_EQ(cold.memcmp_calls, warm.memcmp_calls);
  EXPECT_EQ(cold.exact_match_reads, warm.exact_match_reads);
  EXPECT_EQ(cold.hits_truncated, warm.hits_truncated);
}

class CachePersistTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("mera_cache_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }
  std::filesystem::path dir_;
};

// ---------------------------------------------------------------------------
// 1. Snapshot round trips (randomized property tests)
// ---------------------------------------------------------------------------

/// Fill a seed cache with pseudo-random contents: entries beyond capacity
/// (forcing clock evictions) and a random sprinkle of lookups (building up
/// per-entry hit counts and counters).
void fill_seed_cache_randomly(SeedIndexCache& cache, int nnodes,
                              std::uint64_t rng_seed) {
  std::mt19937_64 rng(rng_seed);
  std::vector<Kmer> inserted;
  for (int i = 0; i < 300; ++i) {
    const Kmer m = *Kmer::from_ascii(random_dna(rng, 21));
    const int node = static_cast<int>(rng() % static_cast<std::uint64_t>(nnodes));
    std::vector<SeedHit> hits;
    const std::size_t nhits = rng() % 5;
    for (std::size_t h = 0; h < nhits; ++h)
      hits.push_back(SeedHit{static_cast<std::uint32_t>(rng() % 1000),
                             static_cast<std::uint32_t>(rng() % 100),
                             static_cast<std::uint32_t>(rng() % 100000)});
    cache.insert(node, m, hits, nhits + rng() % 50);
    inserted.push_back(m);
    if (!inserted.empty() && rng() % 2 == 0) {
      std::vector<SeedHit> out;
      std::size_t total = 0;
      cache.lookup(static_cast<int>(rng() % static_cast<std::uint64_t>(nnodes)),
                   inserted[rng() % inserted.size()], 8, out, total);
    }
  }
}

void fill_target_cache_randomly(TargetCache& cache, int nnodes,
                                std::uint64_t rng_seed) {
  std::mt19937_64 rng(rng_seed);
  for (int i = 0; i < 200; ++i) {
    const auto gid = static_cast<std::uint32_t>(rng() % 500);
    const int node = static_cast<int>(rng() % static_cast<std::uint64_t>(nnodes));
    if (rng() % 2 == 0) cache.contains(node, gid);
    cache.insert(node, gid, 64 + rng() % 4096);
  }
}

TEST(CacheSnapshotRoundTrip, SeedCacheSaveLoadSaveIsByteStable) {
  const Topology topo(8, 4);  // 2 nodes
  for (const std::uint64_t rng_seed : {1ull, 2ull, 3ull, 99ull}) {
    SeedIndexCache a(topo, {.capacity_per_node = 64});
    fill_seed_cache_randomly(a, topo.nnodes(), rng_seed);

    std::ostringstream s1(std::ios::binary);
    a.save(s1);
    SeedIndexCache b(topo, {.capacity_per_node = 64});
    std::istringstream in(s1.str(), std::ios::binary);
    b.load(in);
    std::ostringstream s2(std::ios::binary);
    b.save(s2);

    EXPECT_EQ(s1.str(), s2.str()) << "rng_seed=" << rng_seed;
    EXPECT_EQ(a.counters(), b.counters());
    EXPECT_EQ(a.entries(), b.entries());
  }
}

TEST(CacheSnapshotRoundTrip, TargetCacheSaveLoadSaveIsByteStable) {
  const Topology topo(8, 4);
  for (const std::uint64_t rng_seed : {1ull, 2ull, 3ull, 99ull}) {
    TargetCache a(topo, {.capacity_bytes_per_node = 1u << 16});
    fill_target_cache_randomly(a, topo.nnodes(), rng_seed);

    std::ostringstream s1(std::ios::binary);
    a.save(s1);
    TargetCache b(topo, {.capacity_bytes_per_node = 1u << 16});
    std::istringstream in(s1.str(), std::ios::binary);
    b.load(in);
    std::ostringstream s2(std::ios::binary);
    b.save(s2);

    EXPECT_EQ(s1.str(), s2.str()) << "rng_seed=" << rng_seed;
    EXPECT_EQ(a.counters(), b.counters());
    EXPECT_EQ(a.entries(), b.entries());
  }
}

TEST(CacheSnapshotRoundTrip, LoadedSeedCacheServesTheSavedHits) {
  const Topology topo(2, 2);  // 1 node
  SeedIndexCache a(topo, {.capacity_per_node = 16});
  const Kmer m = *Kmer::from_ascii("ACGTACGTACGTACGTACGTA");
  const std::vector<SeedHit> hits{{7, 3, 41}, {9, 4, 77}};
  a.insert(0, m, hits, 5);

  std::ostringstream os(std::ios::binary);
  a.save(os);
  SeedIndexCache b(topo, {.capacity_per_node = 16});
  std::istringstream is(os.str(), std::ios::binary);
  b.load(is);

  std::vector<SeedHit> out;
  std::size_t total = 0;
  ASSERT_TRUE(b.lookup(0, m, 8, out, total));
  EXPECT_EQ(total, 5u);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], hits[0]);
  EXPECT_EQ(out[1], hits[1]);
}

TEST(CacheSnapshotRoundTrip, SeedLoadIntoSmallerCacheKeepsTheWarmestEntries) {
  const Topology topo(2, 2);  // 1 node
  SeedIndexCache big(topo, {.capacity_per_node = 8});
  std::vector<Kmer> seeds;
  for (int i = 0; i < 8; ++i) {
    std::string s = "AAAAAAAAAAAAAAAAAAAAA";
    s[0] = "ACGT"[i % 4];
    s[1] = "ACGT"[i / 4];
    seeds.push_back(*Kmer::from_ascii(s));
    big.insert(0, seeds.back(), {SeedHit{0, 0, static_cast<std::uint32_t>(i)}},
               1);
  }
  // Warm up seeds 2 and 5 only.
  std::vector<SeedHit> out;
  std::size_t total = 0;
  for (int rep = 0; rep < 3; ++rep) {
    big.lookup(0, seeds[2], 8, out, total);
    big.lookup(0, seeds[5], 8, out, total);
  }

  std::ostringstream os(std::ios::binary);
  big.save(os);
  SeedIndexCache small(topo, {.capacity_per_node = 2});
  std::istringstream is(os.str(), std::ios::binary);
  small.load(is);

  EXPECT_EQ(small.entries(), 2u);
  out.clear();
  EXPECT_TRUE(small.lookup(0, seeds[2], 8, out, total));
  EXPECT_TRUE(small.lookup(0, seeds[5], 8, out, total));
  EXPECT_FALSE(small.lookup(0, seeds[0], 8, out, total));
  // The 6 dropped entries are recorded as admission rejects on top of the
  // restored history.
  EXPECT_EQ(small.counters().admission_rejects,
            big.counters().admission_rejects + 6);
}

TEST(CacheSnapshotRoundTrip, TargetLoadIntoSmallerCacheKeepsTheWarmestEntries) {
  const Topology topo(2, 2);
  TargetCache big(topo, {.capacity_bytes_per_node = 1000});
  for (std::uint32_t gid = 0; gid < 10; ++gid) big.insert(0, gid, 100);
  for (int rep = 0; rep < 3; ++rep) {
    big.contains(0, 4);
    big.contains(0, 8);
  }

  std::ostringstream os(std::ios::binary);
  big.save(os);
  TargetCache small(topo, {.capacity_bytes_per_node = 250});
  std::istringstream is(os.str(), std::ios::binary);
  small.load(is);

  EXPECT_EQ(small.entries(), 2u);
  EXPECT_TRUE(small.contains(0, 4));
  EXPECT_TRUE(small.contains(0, 8));
  EXPECT_FALSE(small.contains(0, 0));
  EXPECT_EQ(small.counters().admission_rejects,
            big.counters().admission_rejects + 8);
}

TEST(CacheSnapshotRoundTrip, KmerWordsRoundTripAndRejectCorruptEncodings) {
  const Kmer m = *Kmer::from_ascii("ACGTACGTACGTACGTACGTA");
  const auto back = Kmer::from_words(m.k(), m.words());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, m);

  auto words = m.words();
  words[1] |= 1ull << 62;  // bit above 2k for k=21... definitely out of range
  EXPECT_FALSE(Kmer::from_words(m.k(), words).has_value());
  EXPECT_FALSE(Kmer::from_words(0, m.words()).has_value());
  EXPECT_FALSE(Kmer::from_words(65, m.words()).has_value());
}

// ---------------------------------------------------------------------------
// 2. File-level validation: wrong-index / damaged snapshots are rejected
// ---------------------------------------------------------------------------

using CacheSnapshotFileTest = CachePersistTest;

SnapshotMeta test_meta() {
  SnapshotMeta m;
  m.k = 21;
  m.nranks = 8;
  m.ppn = 4;
  m.nnodes = 2;
  m.max_hits_per_seed = 32;
  m.cost_model = pgas::CostModel::cray_xc30_like();
  m.reference_fingerprint = 0xFEEDFACEULL;
  return m;
}

TEST_F(CacheSnapshotFileTest, RoundTripsThroughAFile) {
  const Topology topo(8, 4);
  SeedIndexCache seed(topo, {.capacity_per_node = 64});
  TargetCache target(topo, {.capacity_bytes_per_node = 1u << 16});
  fill_seed_cache_randomly(seed, topo.nnodes(), 7);
  fill_target_cache_randomly(target, topo.nnodes(), 8);

  save_caches(path("snap.mcache"), test_meta(), &seed, &target);

  SeedIndexCache seed2(topo, {.capacity_per_node = 64});
  TargetCache target2(topo, {.capacity_bytes_per_node = 1u << 16});
  load_caches(path("snap.mcache"), test_meta(), &seed2, &target2);
  EXPECT_EQ(seed.counters(), seed2.counters());
  EXPECT_EQ(target.counters(), target2.counters());
  EXPECT_EQ(seed.entries(), seed2.entries());
  EXPECT_EQ(target.entries(), target2.entries());
}

TEST_F(CacheSnapshotFileTest, RejectsEveryMetaMismatch) {
  const Topology topo(8, 4);
  SeedIndexCache seed(topo, {.capacity_per_node = 64});
  TargetCache target(topo, {.capacity_bytes_per_node = 1u << 16});
  fill_seed_cache_randomly(seed, topo.nnodes(), 9);
  save_caches(path("snap.mcache"), test_meta(), &seed, &target);

  const auto expect_reject = [&](SnapshotMeta m, const char* why) {
    SeedIndexCache s2(topo, {.capacity_per_node = 64});
    TargetCache t2(topo, {.capacity_bytes_per_node = 1u << 16});
    EXPECT_THROW(load_caches(path("snap.mcache"), m, &s2, &t2),
                 CacheSnapshotError)
        << why;
    // A rejected snapshot must leave the caches untouched.
    EXPECT_EQ(s2.counters(), CacheCounters{}) << why;
    EXPECT_EQ(s2.entries(), 0u) << why;
    EXPECT_EQ(t2.entries(), 0u) << why;
  };

  SnapshotMeta m = test_meta();
  m.k = 31;
  expect_reject(m, "k mismatch");
  m = test_meta();
  m.nranks = 4;
  m.ppn = 2;
  expect_reject(m, "topology mismatch");
  m = test_meta();
  m.max_hits_per_seed = 64;  // stored hit lists were clipped to 32
  expect_reject(m, "max-hits mismatch");
  m = test_meta();
  m.cost_model.net_latency_s *= 2;
  expect_reject(m, "cost-model mismatch");
  m = test_meta();
  m.reference_fingerprint ^= 1;
  expect_reject(m, "reference fingerprint mismatch");
}

TEST_F(CacheSnapshotFileTest, RejectsMissingTruncatedAndCorruptFiles) {
  const Topology topo(8, 4);
  SeedIndexCache seed(topo, {.capacity_per_node = 64});
  TargetCache target(topo, {.capacity_bytes_per_node = 1u << 16});
  fill_seed_cache_randomly(seed, topo.nnodes(), 10);
  fill_target_cache_randomly(target, topo.nnodes(), 11);
  save_caches(path("snap.mcache"), test_meta(), &seed, &target);

  SeedIndexCache s2(topo, {.capacity_per_node = 64});
  TargetCache t2(topo, {.capacity_bytes_per_node = 1u << 16});

  // Missing file.
  EXPECT_THROW(load_caches(path("nope.mcache"), test_meta(), &s2, &t2),
               CacheSnapshotError);

  // Truncated: drop the tail of the payload.
  {
    std::ifstream in(path("snap.mcache"), std::ios::binary);
    std::stringstream buf;
    buf << in.rdbuf();
    std::string bytes = buf.str();
    ASSERT_GT(bytes.size(), 32u);
    std::ofstream out(path("trunc.mcache"), std::ios::binary);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() - 25));
  }
  EXPECT_THROW(load_caches(path("trunc.mcache"), test_meta(), &s2, &t2),
               CacheSnapshotError);

  // Corrupted: flip one payload byte (checksum must catch it).
  {
    std::ifstream in(path("snap.mcache"), std::ios::binary);
    std::stringstream buf;
    buf << in.rdbuf();
    std::string bytes = buf.str();
    bytes[bytes.size() - 3] ^= 0x40;
    std::ofstream out(path("corrupt.mcache"), std::ios::binary);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  EXPECT_THROW(load_caches(path("corrupt.mcache"), test_meta(), &s2, &t2),
               CacheSnapshotError);

  // Not a snapshot at all.
  {
    std::ofstream out(path("junk.mcache"), std::ios::binary);
    out << "definitely not a cache snapshot";
  }
  EXPECT_THROW(load_caches(path("junk.mcache"), test_meta(), &s2, &t2),
               CacheSnapshotError);

  // After all those rejections the caches are still untouched...
  EXPECT_EQ(s2.entries(), 0u);
  EXPECT_EQ(t2.entries(), 0u);
  // ...and the intact file still loads.
  EXPECT_NO_THROW(load_caches(path("snap.mcache"), test_meta(), &s2, &t2));
  EXPECT_EQ(s2.entries(), seed.entries());
}

TEST_F(CacheSnapshotFileTest, SectionsLoadIndependentlyOfDisabledCaches) {
  const Topology topo(8, 4);
  SeedIndexCache seed(topo, {.capacity_per_node = 64});
  TargetCache target(topo, {.capacity_bytes_per_node = 1u << 16});
  fill_seed_cache_randomly(seed, topo.nnodes(), 12);
  fill_target_cache_randomly(target, topo.nnodes(), 13);
  save_caches(path("snap.mcache"), test_meta(), &seed, &target);

  // A session running without the seed cache skips its section (by length
  // prefix, without deserializing it) and still warms its target cache.
  TargetCache t2(topo, {.capacity_bytes_per_node = 1u << 16});
  load_caches(path("snap.mcache"), test_meta(), nullptr, &t2);
  EXPECT_EQ(t2.counters(), target.counters());
  EXPECT_EQ(t2.entries(), target.entries());

  // And the mirror image: seed only, target section skipped.
  SeedIndexCache s2(topo, {.capacity_per_node = 64});
  load_caches(path("snap.mcache"), test_meta(), &s2, nullptr);
  EXPECT_EQ(s2.counters(), seed.counters());
  EXPECT_EQ(s2.entries(), seed.entries());
}

// ---------------------------------------------------------------------------
// 2b. Atomic save: a crash mid-save never damages the previous snapshot
// ---------------------------------------------------------------------------

using AtomicSaveTest = CachePersistTest;

std::string file_bytes(const std::string& p) {
  std::ifstream in(p, std::ios::binary);
  std::stringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

TEST_F(AtomicSaveTest, SaveLeavesNoTempFileBehind) {
  const Topology topo(8, 4);
  SeedIndexCache seed(topo, {.capacity_per_node = 64});
  TargetCache target(topo, {.capacity_bytes_per_node = 1u << 16});
  fill_seed_cache_randomly(seed, topo.nnodes(), 21);
  save_caches(path("snap.mcache"), test_meta(), &seed, &target);
  EXPECT_TRUE(std::filesystem::exists(path("snap.mcache")));
  EXPECT_FALSE(std::filesystem::exists(path("snap.mcache.tmp")));
}

TEST_F(AtomicSaveTest, FailedSaveKeepsThePreviousSnapshotIntact) {
  const Topology topo(8, 4);
  SeedIndexCache seed(topo, {.capacity_per_node = 64});
  TargetCache target(topo, {.capacity_bytes_per_node = 1u << 16});
  fill_seed_cache_randomly(seed, topo.nnodes(), 22);
  fill_target_cache_randomly(target, topo.nnodes(), 23);
  save_caches(path("snap.mcache"), test_meta(), &seed, &target);
  const std::string good = file_bytes(path("snap.mcache"));

  // Make the NEXT save fail at its very first step by squatting a directory
  // on the temp path. Pre-fix, save opened the final path with trunc and a
  // failure at any later point left a damaged snapshot; now the final file
  // must never even be opened.
  std::filesystem::create_directory(path("snap.mcache.tmp"));
  fill_seed_cache_randomly(seed, topo.nnodes(), 24);  // new state to save
  EXPECT_THROW(save_caches(path("snap.mcache"), test_meta(), &seed, &target),
               CacheSnapshotError);
  std::filesystem::remove(path("snap.mcache.tmp"));

  EXPECT_EQ(file_bytes(path("snap.mcache")), good)
      << "a failed save must not touch the existing snapshot";
  SeedIndexCache s2(topo, {.capacity_per_node = 64});
  TargetCache t2(topo, {.capacity_bytes_per_node = 1u << 16});
  EXPECT_NO_THROW(
      load_caches(path("snap.mcache"), test_meta(), &s2, &t2));
}

TEST_F(AtomicSaveTest, StaleTempFileFromACrashIsIgnoredAndReplaced) {
  const Topology topo(8, 4);
  SeedIndexCache seed(topo, {.capacity_per_node = 64});
  TargetCache target(topo, {.capacity_bytes_per_node = 1u << 16});
  fill_seed_cache_randomly(seed, topo.nnodes(), 25);
  save_caches(path("snap.mcache"), test_meta(), &seed, &target);

  // What a kill -9 mid-write leaves behind: a truncated temp file. It must
  // neither break loading nor survive the next successful save.
  {
    std::ofstream out(path("snap.mcache.tmp"), std::ios::binary);
    out << "half a snapsh";
  }
  SeedIndexCache s2(topo, {.capacity_per_node = 64});
  TargetCache t2(topo, {.capacity_bytes_per_node = 1u << 16});
  EXPECT_NO_THROW(
      load_caches(path("snap.mcache"), test_meta(), &s2, &t2));
  save_caches(path("snap.mcache"), test_meta(), &seed, &target);
  EXPECT_FALSE(std::filesystem::exists(path("snap.mcache.tmp")));
  EXPECT_NO_THROW(
      load_caches(path("snap.mcache"), test_meta(), &s2, &t2));
}

TEST_F(AtomicSaveTest, KillNineDuringSaveLeavesALoadableSnapshot) {
  const Topology topo(8, 4);
  SeedIndexCache seed(topo, {.capacity_per_node = 256});
  TargetCache target(topo, {.capacity_bytes_per_node = 1u << 20});
  fill_seed_cache_randomly(seed, topo.nnodes(), 26);
  fill_target_cache_randomly(target, topo.nnodes(), 27);
  save_caches(path("snap.mcache"), test_meta(), &seed, &target);

  // A child process re-saves the snapshot in a tight loop; the parent
  // SIGKILLs it at an arbitrary point. Whatever instant the kill lands —
  // mid-payload-write, between write and rename — the visible file must be
  // either the old or the new COMPLETE snapshot, because the payload only
  // ever reaches the final path via rename(2).
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    for (;;) {
      try {
        save_caches(path("snap.mcache"), test_meta(), &seed, &target);
      } catch (...) {
        _exit(1);
      }
    }
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  ::kill(pid, SIGKILL);
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status));

  SeedIndexCache s2(topo, {.capacity_per_node = 256});
  TargetCache t2(topo, {.capacity_bytes_per_node = 1u << 20});
  EXPECT_NO_THROW(load_caches(path("snap.mcache"), test_meta(), &s2, &t2))
      << "kill -9 during save_caches corrupted the snapshot";
  EXPECT_EQ(s2.entries(), seed.entries());
  EXPECT_EQ(t2.entries(), target.entries());
}

// ---------------------------------------------------------------------------
// 3. Cold vs warm bit-identity (the acceptance contract)
// ---------------------------------------------------------------------------

using WarmStartTest = CachePersistTest;

core::SessionConfig session_config(SwKernel kernel) {
  core::SessionConfig sc;
  sc.seed_cache_capacity = 1u << 14;
  sc.target_cache_bytes = 8u << 20;
  sc.extension.kernel = kernel;
  return sc;
}

/// Run the two-batch stream through `session`, tee-ing records and SAM.
struct RunOutput {
  std::vector<AlignmentRecord> records;
  std::string sam;
  core::PipelineStats stats;
};

RunOutput run_stream(Runtime& rt, core::AlignSession& session,
                     const core::IndexedReference& ref,
                     const std::vector<SeqRecord>& b1,
                     const std::vector<SeqRecord>& b2) {
  RunOutput out;
  core::VectorSink vec(rt.nranks());
  std::ostringstream sam_text;
  core::SamStreamSink sam(sam_text, ref);
  core::TeeSink tee({&vec, &sam});
  out.stats += session.align_batch(rt, b1, tee).stats;
  out.stats += session.align_batch(rt, b2, tee).stats;
  out.records = vec.take();
  out.sam = sam_text.str();
  return out;
}

TEST_F(WarmStartTest, MonolithicWarmStartIsBitIdenticalAllKernels) {
  const auto w = make_workload(30'000, 1.5);
  const auto mid = w.reads.begin() + static_cast<std::ptrdiff_t>(w.reads.size() / 2);
  const std::vector<SeqRecord> b1(w.reads.begin(), mid);
  const std::vector<SeqRecord> b2(mid, w.reads.end());

  Runtime rt(Topology(8, 4));  // 2 nodes: off-node lookups exist to cache
  const auto ref = core::IndexedReference::build(rt, w.contigs, small_index());

  for (const SwKernel kernel :
       {SwKernel::kFullDP, SwKernel::kBanded, SwKernel::kStriped}) {
    SCOPED_TRACE("kernel=" + std::to_string(static_cast<int>(kernel)));
    const std::string snap = path("k" + std::to_string(static_cast<int>(kernel)));

    core::AlignSession cold(ref, session_config(kernel));
    const RunOutput cold_out = run_stream(rt, cold, ref, b1, b2);
    ASSERT_GT(cold_out.records.size(), 0u);
    cold.save_caches(rt, snap);

    core::AlignSession warm(ref, session_config(kernel));
    warm.load_caches(rt, snap);
    const RunOutput warm_out = run_stream(rt, warm, ref, b1, b2);

    // Bit-identity: records, SAM bytes, and every invariant stat.
    ASSERT_EQ(cold_out.records.size(), warm_out.records.size());
    for (std::size_t i = 0; i < cold_out.records.size(); ++i)
      ASSERT_EQ(cold_out.records[i], warm_out.records[i]) << "record " << i;
    EXPECT_EQ(cold_out.sam, warm_out.sam);
    expect_invariant_stats_equal(cold_out.stats, warm_out.stats);

    // ...while the warm session does strictly less remote-lookup work.
    EXPECT_GT(warm_out.stats.seed_cache_hits, cold_out.stats.seed_cache_hits);
    EXPECT_GT(warm_out.stats.target_cache_hits,
              cold_out.stats.target_cache_hits);
    EXPECT_LT(warm_out.stats.comm_lookup_s, cold_out.stats.comm_lookup_s);
  }
}

TEST_F(WarmStartTest, WarmStartIsBitIdenticalWhenLookupsTruncate) {
  // A clipping max_hits_per_seed exercises the truncation counter on the
  // cache-hit path: a lookup served by the warm cache must count as
  // truncated exactly like the cold index lookup it replays.
  const auto w = make_workload(30'000, 1.5);
  Runtime rt(Topology(8, 4));
  const auto ref = core::IndexedReference::build(rt, w.contigs, small_index());

  core::SessionConfig sc = session_config(SwKernel::kFullDP);
  sc.max_hits_per_seed = 1;
  sc.exact_match = false;  // the clipped-to-1 candidate order must replay

  core::AlignSession cold(ref, sc);
  const RunOutput cold_out = run_stream(rt, cold, ref, w.reads, w.reads);
  ASSERT_GT(cold_out.stats.hits_truncated, 0u);
  cold.save_caches(rt, path("snap"));

  core::AlignSession warm(ref, sc);
  warm.load_caches(rt, path("snap"));
  const RunOutput warm_out = run_stream(rt, warm, ref, w.reads, w.reads);

  EXPECT_EQ(cold_out.sam, warm_out.sam);
  expect_invariant_stats_equal(cold_out.stats, warm_out.stats);
  EXPECT_GT(warm_out.stats.seed_cache_hits, cold_out.stats.seed_cache_hits);
}

TEST_F(WarmStartTest, ShardedWarmStartIsBitIdenticalAllKernelsAllK) {
  const auto w = make_workload(30'000, 1.2);
  const auto mid = w.reads.begin() + static_cast<std::ptrdiff_t>(w.reads.size() / 2);
  const std::vector<SeqRecord> b1(w.reads.begin(), mid);
  const std::vector<SeqRecord> b2(mid, w.reads.end());

  Runtime rt(Topology(8, 4));
  for (const int K : {1, 2, 4}) {
    const auto ref =
        shard::ShardedReference::build(rt, w.contigs, K, small_index());
    ASSERT_EQ(ref.num_shards(), K);
    for (const SwKernel kernel :
         {SwKernel::kFullDP, SwKernel::kBanded, SwKernel::kStriped}) {
      SCOPED_TRACE("K=" + std::to_string(K) +
                   " kernel=" + std::to_string(static_cast<int>(kernel)));
      const std::string snap = path("K" + std::to_string(K) + "_k" +
                                    std::to_string(static_cast<int>(kernel)));

      const auto run = [&](shard::ShardedAlignSession& session) {
        RunOutput out;
        core::VectorSink vec(rt.nranks());
        std::ostringstream sam_text;
        core::SamStreamSink sam(sam_text, ref.sam_targets(), rt.nranks());
        core::TeeSink tee({&vec, &sam});
        out.stats += session.align_batch(rt, b1, tee).stats;
        out.stats += session.align_batch(rt, b2, tee).stats;
        out.records = vec.take();
        out.sam = sam_text.str();
        return out;
      };
      const auto session_hits = [](const shard::ShardedAlignSession& s) {
        std::uint64_t hits = 0;
        for (int i = 0; i < s.num_shards(); ++i)
          hits += s.shard_session(i).seed_cache_counters().hits;
        return hits;
      };

      shard::ShardedAlignSession cold(ref, session_config(kernel));
      const RunOutput cold_out = run(cold);
      ASSERT_GT(cold_out.records.size(), 0u);
      cold.save_caches(rt, snap);

      shard::ShardedAlignSession warm(ref, session_config(kernel));
      warm.load_caches(rt, snap);
      const std::uint64_t hits_at_load = session_hits(warm);
      const RunOutput warm_out = run(warm);

      ASSERT_EQ(cold_out.records.size(), warm_out.records.size());
      for (std::size_t i = 0; i < cold_out.records.size(); ++i)
        ASSERT_EQ(cold_out.records[i], warm_out.records[i]) << "record " << i;
      EXPECT_EQ(cold_out.sam, warm_out.sam);
      expect_invariant_stats_equal(cold_out.stats, warm_out.stats);
      EXPECT_GT(session_hits(warm) - hits_at_load, session_hits(cold));
    }
  }
}

TEST_F(WarmStartTest, SnapshotOfDifferentShardingIsRejected) {
  const auto w = make_workload(20'000, 0.8);
  Runtime rt(Topology(4, 2));
  const auto ref2 = shard::ShardedReference::build(rt, w.contigs, 2, small_index());
  const auto ref4 = shard::ShardedReference::build(rt, w.contigs, 4, small_index());

  shard::ShardedAlignSession s4(ref4, core::SessionConfig{});
  core::CountingSink sink;
  s4.align_batch(rt, w.reads, sink);
  s4.save_caches(rt, path("snap4"));

  shard::ShardedAlignSession s2(ref2, core::SessionConfig{});
  EXPECT_THROW(s2.load_caches(rt, path("snap4")), CacheSnapshotError);

  // Same K but a different cost model: every shard file refuses.
  Runtime zero_rt(Topology(4, 2), pgas::CostModel::zero());
  shard::ShardedAlignSession s4b(ref4, core::SessionConfig{});
  EXPECT_THROW(s4b.load_caches(zero_rt, path("snap4")), CacheSnapshotError);

  // Missing directory.
  shard::ShardedAlignSession s4c(ref4, core::SessionConfig{});
  EXPECT_THROW(s4c.load_caches(rt, path("never_saved")), CacheSnapshotError);
}

// ---------------------------------------------------------------------------
// 4. Counter baseline across load_caches (the reset-ambiguity fix, pinned)
// ---------------------------------------------------------------------------

TEST_F(WarmStartTest, LoadedCountersSeedTheSessionBaseline) {
  const auto w = make_workload(20'000, 1.0);
  Runtime rt(Topology(8, 4));
  const auto ref = core::IndexedReference::build(rt, w.contigs, small_index());

  core::AlignSession cold(ref, session_config(SwKernel::kFullDP));
  core::CountingSink sink;
  cold.align_batch(rt, w.reads, sink);
  const auto saved_seed = cold.seed_cache_counters();
  const auto saved_target = cold.target_cache_counters();
  ASSERT_GT(saved_seed.insertions, 0u);
  cold.save_caches(rt, path("snap"));

  core::AlignSession warm(ref, session_config(SwKernel::kFullDP));
  warm.load_caches(rt, path("snap"));
  // Decision (documented on load_caches): restored counters are cumulative
  // session history — the warm session's totals START at the saved totals...
  EXPECT_EQ(warm.seed_cache_counters(), saved_seed);
  EXPECT_EQ(warm.target_cache_counters(), saved_target);

  // ...and the per-batch delta baseline is re-seeded at load, so the first
  // warm batch reports exactly its own activity, never the imported history.
  const auto loaded_seed = warm.seed_cache_counters();
  const auto loaded_target = warm.target_cache_counters();
  const auto res = warm.align_batch(rt, w.reads, sink);
  EXPECT_EQ(res.seed_cache, warm.seed_cache_counters() - loaded_seed);
  EXPECT_EQ(res.target_cache, warm.target_cache_counters() - loaded_target);
  // Regression guard for the original bug: a delta that accidentally
  // includes the loaded history would at least double the miss count of an
  // identical batch replayed against a fully warm cache.
  EXPECT_LE(res.seed_cache.misses, saved_seed.misses);
}

// ---------------------------------------------------------------------------
// Concurrent save during a parallel batch (the TSan gate)
// ---------------------------------------------------------------------------

TEST_F(WarmStartTest, SaveDuringParallelShardBatchIsRaceFree) {
  const auto w = make_workload(20'000, 1.0);
  Runtime rt(Topology(4, 2));  // 2 nodes: the caches see real traffic
  const auto ref = shard::ShardedReference::build(rt, w.contigs, 2, small_index());
  shard::ShardedSessionConfig cfg;
  cfg.shard_parallelism = 2;
  shard::ShardedAlignSession session(ref, cfg);

  // Snapshot repeatedly while a parallel batch is in flight: every cache
  // shard is serialized under its own lock, so the saver and the aligning
  // ranks may interleave freely (the snapshot content is whatever state it
  // caught — still a valid, loadable snapshot).
  std::thread saver([&] {
    for (int i = 0; i < 5; ++i)
      session.save_caches(rt, path("live" + std::to_string(i)));
  });
  core::CountingSink sink;
  session.align_batch(rt, w.reads, sink);
  saver.join();

  shard::ShardedAlignSession fresh(ref, core::SessionConfig{});
  EXPECT_NO_THROW(fresh.load_caches(rt, path("live4")));
}

}  // namespace
