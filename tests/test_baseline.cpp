#include "baseline/replicated_aligner.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>

#include "core/pipeline.hpp"
#include "seq/genome_sim.hpp"
#include "seq/read_sim.hpp"

namespace {

using namespace mera::baseline;
using mera::pgas::Runtime;
using mera::pgas::Topology;
using mera::seq::SeqRecord;

struct Workload {
  std::vector<SeqRecord> contigs;
  std::vector<SeqRecord> reads;
};

Workload make_workload(std::size_t genome_len, double depth,
                       std::uint64_t seed = 5) {
  Workload w;
  const std::string genome =
      mera::seq::simulate_genome({.length = genome_len, .rng_seed = seed});
  mera::seq::ContigParams cp;
  cp.rng_seed = seed + 1;
  w.contigs = mera::seq::chop_into_contigs(genome, cp);
  mera::seq::ReadSimParams rp;
  rp.read_len = 80;
  rp.depth = depth;
  rp.error_rate = 0.002;
  rp.rng_seed = seed + 2;
  w.reads = mera::seq::simulate_reads(genome, rp);
  return w;
}

BaselineConfig small_baseline(int k = 21) {
  BaselineConfig cfg;
  cfg.k = k;
  cfg.threads_per_instance = 2;
  return cfg;
}

TEST(Baseline, AlignsTheWorkload) {
  const auto w = make_workload(30'000, 1.5);
  Runtime rt(Topology(4, 2));
  const ReplicatedIndexAligner aligner(small_baseline());
  const auto res = aligner.align(rt, w.contigs, w.reads);
  EXPECT_EQ(res.stats.reads_processed, w.reads.size());
  EXPECT_GT(res.stats.aligned_fraction(), 0.8);
  EXPECT_GT(res.index_entries, 0u);
  EXPECT_GT(res.index_replica_bytes, 0u);
}

TEST(Baseline, IndexConstructionIsSerial) {
  // Only rank 0 accumulates CPU time in the build phase.
  const auto w = make_workload(40'000, 0.5);
  Runtime rt(Topology(4, 2));
  const auto res =
      ReplicatedIndexAligner(small_baseline()).align(rt, w.contigs, w.reads);
  const auto* build = res.report.find("index.build.serial");
  ASSERT_NE(build, nullptr);
  EXPECT_GT(build->cpu_s[0], 10 * build->cpu_s[1]);
  EXPECT_GT(build->cpu_s[0], 10 * build->cpu_s[3]);
}

TEST(Baseline, SerialBuildDoesNotScaleWithRanks) {
  const auto w = make_workload(40'000, 0.3);
  // The serial build is a few milliseconds, so a single measurement is at
  // the mercy of scheduler/frequency noise; best-of-3 is the stable
  // estimate of the true (noise-free) serial work.
  auto build_time = [&](int nranks) {
    double best = std::numeric_limits<double>::infinity();
    for (int rep = 0; rep < 3; ++rep) {
      Runtime rt(Topology(nranks, 2));
      const auto res =
          ReplicatedIndexAligner(small_baseline()).align(rt, w.contigs, w.reads);
      best = std::min(best, res.report.time_of("index.build.serial"));
    }
    return best;
  };
  const double t2 = build_time(2);
  const double t8 = build_time(8);
  // Same serial work regardless of rank count (allow noise).
  EXPECT_GT(t8, t2 * 0.5);
  EXPECT_LT(t8, t2 * 2.0);
}

TEST(Baseline, MappingPhaseDoesScale) {
  const auto w = make_workload(40'000, 3.0);
  auto map_cpu_max = [&](int nranks) {
    Runtime rt(Topology(nranks, 2));
    const auto res =
        ReplicatedIndexAligner(small_baseline()).align(rt, w.contigs, w.reads);
    return res.report.find("map")->cpu_max();
  };
  const double t1 = map_cpu_max(1);
  const double t8 = map_cpu_max(8);
  EXPECT_LT(t8, t1 / 3.0);  // parallel mapping: ~8x less per-rank work
}

TEST(Baseline, BuildMultiplierScalesSerialPhase) {
  const auto w = make_workload(30'000, 0.3);
  auto with_mult = [&](double mult) {
    BaselineConfig cfg = small_baseline();
    cfg.index_build_multiplier = mult;
    Runtime rt(Topology(2, 2));
    return ReplicatedIndexAligner(cfg)
        .align(rt, w.contigs, w.reads)
        .report.time_of("index.build.serial");
  };
  const double x1 = with_mult(1.0);
  const double x8 = with_mult(8.0);
  EXPECT_GT(x8, 4.0 * x1);
}

TEST(Baseline, ReplicationChargesOneTransferPerInstanceLeader) {
  const auto w = make_workload(20'000, 0.3);
  Runtime rt(Topology(6, 3));
  BaselineConfig cfg = small_baseline();
  cfg.threads_per_instance = 3;  // leaders: ranks 0, 3 -> one remote pull
  const auto res =
      ReplicatedIndexAligner(cfg).align(rt, w.contigs, w.reads);
  const auto* rep = res.report.find("index.replicate");
  ASSERT_NE(rep, nullptr);
  EXPECT_EQ(rep->traffic.remote_msgs(), 1u);
  EXPECT_GE(rep->traffic.remote_bytes(), res.index_replica_bytes);
}

TEST(Baseline, ReadPartitionPhaseOnlyWhenEnabled) {
  const auto w = make_workload(20'000, 0.5);
  Runtime rt(Topology(4, 2));
  BaselineConfig cfg = small_baseline();
  EXPECT_EQ(ReplicatedIndexAligner(cfg)
                .align(rt, w.contigs, w.reads)
                .report.find("read.partition"),
            nullptr);
  cfg.include_read_partition = true;
  Runtime rt2(Topology(4, 2));
  EXPECT_NE(ReplicatedIndexAligner(cfg)
                .align(rt2, w.contigs, w.reads)
                .report.find("read.partition"),
            nullptr);
}

TEST(Baseline, PresetsAreOrderedLikeTableII) {
  // Bowtie2-like builds slower than BWA-mem-like; both much slower than
  // merAligner's parallel construction (checked in test_integration).
  const auto w = make_workload(30'000, 0.5);
  // Phase times are thread-CPU measurements, so under a loaded machine
  // (parallel ctest) a single run is noisy; take the best of three.
  auto serial_time = [&](const BaselineConfig& base) {
    BaselineConfig cfg = base;
    cfg.threads_per_instance = 2;
    double best = std::numeric_limits<double>::infinity();
    for (int rep = 0; rep < 3; ++rep) {
      Runtime rt(Topology(4, 2));
      best = std::min(best, ReplicatedIndexAligner(cfg)
                                .align(rt, w.contigs, w.reads)
                                .serial_index_time_s());
    }
    return best;
  };
  const double bwa = serial_time(BaselineConfig::bwamem_like(21));
  const double bowtie = serial_time(BaselineConfig::bowtie2_like(21));
  EXPECT_GT(bowtie, 1.5 * bwa);
}

TEST(Baseline, AlignedFractionComparableToMerAligner) {
  // Same seed-and-extend core => alignment rates in the same ballpark
  // (Table II: 86.3% vs 83.8% / 82.6%).
  const auto w = make_workload(30'000, 1.0);
  Runtime rt1(Topology(4, 2));
  mera::core::AlignerConfig mcfg;
  mcfg.k = 21;
  mcfg.buffer_S = 64;
  mcfg.fragment_len = 512;
  const auto mer = mera::core::MerAligner(mcfg).align(rt1, w.contigs, w.reads);
  Runtime rt2(Topology(4, 2));
  const auto base =
      ReplicatedIndexAligner(small_baseline()).align(rt2, w.contigs, w.reads);
  const double diff = mer.stats.aligned_fraction() -
                      base.stats.aligned_fraction();
  EXPECT_LT(std::abs(diff), 0.05);
}

}  // namespace
