#include <gtest/gtest.h>

#include <random>
#include <string>

#include "align/blosum.hpp"
#include "seq/protein.hpp"
#include "test_util.hpp"

namespace {

using namespace mera;

TEST(Protein, EncodeDecodeRoundTrip) {
  for (std::size_t i = 0; i < seq::kAminoOrder.size(); ++i) {
    const char c = seq::kAminoOrder[i];
    EXPECT_EQ(seq::encode_amino(c), i) << c;
    EXPECT_EQ(seq::decode_amino(static_cast<std::uint8_t>(i)), c);
  }
}

TEST(Protein, LowercaseAndUnknownsMapSensibly) {
  EXPECT_EQ(seq::encode_amino('a'), seq::encode_amino('A'));
  EXPECT_EQ(seq::encode_amino('w'), seq::encode_amino('W'));
  // J/O/U are not in the alphabet -> X.
  EXPECT_EQ(seq::decode_amino(seq::encode_amino('J')), 'X');
  EXPECT_EQ(seq::decode_amino(seq::encode_amino('?')), 'X');
}

TEST(Protein, IsStandardProtein) {
  EXPECT_TRUE(seq::is_standard_protein("ARNDCQEGHILKMFPSTWYV"));
  EXPECT_FALSE(seq::is_standard_protein("ARNDX"));
  EXPECT_FALSE(seq::is_standard_protein("AB"));   // B is ambiguity code
  EXPECT_FALSE(seq::is_standard_protein("A*"));
}

TEST(Protein, CodesRoundTripThroughString) {
  const std::string s = "MKVLAAGGYTRW";
  EXPECT_EQ(seq::protein_string(seq::protein_codes(s)), s);
}

TEST(Blosum62, IsSymmetric) {
  const auto& m = align::blosum62();
  for (int a = 0; a < 24; ++a)
    for (int b = 0; b < 24; ++b)
      EXPECT_EQ(m[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)],
                m[static_cast<std::size_t>(b)][static_cast<std::size_t>(a)])
          << a << "," << b;
}

TEST(Blosum62, KnownEntries) {
  const auto& m = align::blosum62();
  const auto at = [&](char x, char y) {
    return m[seq::encode_amino(x)][seq::encode_amino(y)];
  };
  EXPECT_EQ(at('W', 'W'), 11);  // tryptophan self-score is the famous max
  EXPECT_EQ(at('A', 'A'), 4);
  EXPECT_EQ(at('C', 'C'), 9);
  EXPECT_EQ(at('A', 'R'), -1);
  EXPECT_EQ(at('W', 'C'), -2);
  EXPECT_EQ(at('I', 'L'), 2);   // conservative substitution scores positive
  EXPECT_EQ(at('D', 'E'), 2);
  EXPECT_EQ(at('*', '*'), 1);
  EXPECT_EQ(at('A', '*'), -4);
}

TEST(Blosum62, DiagonalDominates) {
  // Self-substitution must beat substitution for every standard residue.
  const auto& m = align::blosum62();
  for (int a = 0; a < 20; ++a)
    for (int b = 0; b < 20; ++b) {
      if (a == b) continue;
      EXPECT_GT(m[static_cast<std::size_t>(a)][static_cast<std::size_t>(a)],
                m[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)]);
    }
}

TEST(ProteinSw, IdentityAlignmentScoresDiagonalSum) {
  const std::string p = "MKWVTFISLLLLFSSAYS";
  const auto aln = align::smith_waterman_protein(p, p);
  const auto& m = align::blosum62();
  int expect = 0;
  for (char c : p) expect += m[seq::encode_amino(c)][seq::encode_amino(c)];
  EXPECT_EQ(aln.score, expect);
  EXPECT_EQ(aln.cigar.to_string(), std::to_string(p.size()) + "M");
}

TEST(ProteinSw, FindsConservedDomainInsideJunk) {
  const std::string domain = "HEAGAWGHEE";  // classic textbook example
  const std::string target = "PAWHEAE";
  const auto aln = align::smith_waterman_protein(domain, target,
                                                 {nullptr, 10, 1});
  EXPECT_GT(aln.score, 0);
  EXPECT_LE(aln.cigar.target_span(), target.size());
}

TEST(ProteinSw, GapPenaltiesShapeAlignment) {
  // With cheap gaps the aligner bridges the insertion; with expensive gaps
  // it prefers the best ungapped segment.
  const std::string q = "MKVLAAGGY";
  const std::string t = "MKVLAPPPPPPAGGY";
  const auto cheap = align::smith_waterman_protein(q, t, {nullptr, 2, 1});
  const auto dear = align::smith_waterman_protein(q, t, {nullptr, 30, 5});
  EXPECT_GT(cheap.gap_columns, 0);
  EXPECT_EQ(dear.gap_columns, 0);
  EXPECT_GE(cheap.score, dear.score);
}

TEST(ProteinSw, SimilarSequencesBeatRandomOnes) {
  std::mt19937_64 rng(91);
  const std::string base = testutil::random_protein(rng, 80);
  std::string mutated = base;
  for (int i = 0; i < 8; ++i)
    mutated[rng() % mutated.size()] = seq::kAminoOrder[rng() % 20];
  const int sim = align::smith_waterman_protein(base, mutated).score;
  const int rnd =
      align::smith_waterman_protein(base, testutil::random_protein(rng, 80))
          .score;
  EXPECT_GT(sim, 2 * rnd);
}

TEST(ProteinSw, MatrixScoringAgreesWithDnaKernelOnDnaLikeMatrix) {
  // A matrix that encodes match=+2 / mismatch=-2 over codes {0..3} must give
  // the DNA kernel's scores — the engines share one implementation.
  align::SubstMatrix m{};
  for (int a = 0; a < 24; ++a)
    for (int b = 0; b < 24; ++b)
      m[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)] =
          a == b ? 2 : -2;
  std::mt19937_64 rng(92);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<std::uint8_t> q(30 + rng() % 50), t(30 + rng() % 90);
    for (auto& c : q) c = static_cast<std::uint8_t>(rng() & 3u);
    for (auto& c : t) c = static_cast<std::uint8_t>(rng() & 3u);
    const auto dna = align::smith_waterman(
        std::span<const std::uint8_t>(q), std::span<const std::uint8_t>(t),
        align::Scoring{2, -2, 3, 1});
    const auto prot = align::smith_waterman_matrix(
        std::span<const std::uint8_t>(q), std::span<const std::uint8_t>(t),
        {&m, 3, 1});
    EXPECT_EQ(dna.score, prot.score);
    EXPECT_EQ(dna.cigar, prot.cigar);
  }
}

}  // namespace
