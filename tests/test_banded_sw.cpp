#include "align/banded_sw.hpp"

#include "test_util.hpp"

#include <gtest/gtest.h>

#include <random>
#include <string>

#include "seq/dna.hpp"

namespace {

using mera::testutil::random_dna;

using namespace mera::align;

std::vector<std::uint8_t> codes(const std::string& s) { return dna_codes(s); }

TEST(BandedSw, WideBandEqualsFullDp) {
  std::mt19937_64 rng(41);
  const Scoring sc;
  for (int trial = 0; trial < 50; ++trial) {
    const std::string qs = random_dna(rng, 20 + rng() % 60);
    const std::string ts = random_dna(rng, 20 + rng() % 120);
    const auto full = smith_waterman(qs, ts, sc);
    const auto banded = banded_smith_waterman(
        std::span<const std::uint8_t>(codes(qs)),
        std::span<const std::uint8_t>(codes(ts)), 0,
        qs.size() + ts.size(),  // band covers the whole matrix
        sc);
    EXPECT_EQ(banded.score, full.score) << "q=" << qs << " t=" << ts;
  }
}

TEST(BandedSw, FindsDiagonalAlignmentInsideBand) {
  std::mt19937_64 rng(42);
  const Scoring sc;
  const std::string g = random_dna(rng, 400);
  // Query = g[100..180) with a couple of substitutions: diagonal = 100.
  std::string q = g.substr(100, 80);
  q[20] = mera::seq::complement_base(q[20]);
  const auto aln = banded_smith_waterman(std::span<const std::uint8_t>(codes(q)),
                                         std::span<const std::uint8_t>(codes(g)),
                                         100, 8, sc);
  EXPECT_EQ(aln.t_begin, 100u);
  EXPECT_EQ(aln.t_end, 180u);
  EXPECT_EQ(aln.mismatches, 1);
  EXPECT_EQ(aln.score, 79 * sc.match + sc.mismatch);
}

TEST(BandedSw, NarrowBandMissesOffDiagonalAlignment) {
  std::mt19937_64 rng(43);
  const Scoring sc;
  const std::string g = random_dna(rng, 300);
  const std::string q = g.substr(200, 60);  // true diagonal = 200
  // Searching around diagonal 0 with a narrow band must not find it.
  const auto aln = banded_smith_waterman(std::span<const std::uint8_t>(codes(q)),
                                         std::span<const std::uint8_t>(codes(g)),
                                         0, 5, sc);
  EXPECT_LT(aln.score, 60 * sc.match / 2);
}

TEST(BandedSw, BandContainingOptimumMatchesFullScore) {
  // Property: if the full-DP optimum lies within the band, scores agree.
  std::mt19937_64 rng(44);
  const Scoring sc;
  for (int trial = 0; trial < 40; ++trial) {
    const std::string g = random_dna(rng, 250);
    const std::size_t pos = rng() % 150;
    std::string q = g.substr(pos, 70);
    // A small indel keeps the optimum within a few diagonals.
    if (trial % 2 == 0) q.erase(30, 2);
    const auto full = smith_waterman(q, g, sc);
    const auto banded = banded_smith_waterman(
        std::span<const std::uint8_t>(codes(q)),
        std::span<const std::uint8_t>(codes(g)),
        static_cast<std::ptrdiff_t>(pos), 16, sc);
    EXPECT_EQ(banded.score, full.score) << "trial " << trial;
  }
}

TEST(BandedSw, CigarSpansAreConsistent) {
  std::mt19937_64 rng(45);
  const Scoring sc;
  for (int trial = 0; trial < 30; ++trial) {
    const std::string g = random_dna(rng, 200);
    const std::size_t pos = rng() % 100;
    const std::string q = g.substr(pos, 50);
    const auto aln = banded_smith_waterman(
        std::span<const std::uint8_t>(codes(q)),
        std::span<const std::uint8_t>(codes(g)),
        static_cast<std::ptrdiff_t>(pos), 10, sc);
    EXPECT_EQ(aln.cigar.query_span(), q.size());
    EXPECT_EQ(aln.cigar.target_span(), aln.t_end - aln.t_begin);
  }
}

TEST(BandedSw, BandSlidingPastTargetEndIsSafe) {
  // Regression: a query much longer than the target pushes the band wholly
  // past the target's right edge in the late rows; the left-border clear
  // used to write one past the H row there (caught by ASan once the banded
  // kernel became selectable as a pipeline backend).
  std::mt19937_64 rng(46);
  const Scoring sc;
  const std::string t = random_dna(rng, 40);
  const std::string q = t + random_dna(rng, 160);  // rows far beyond n
  const auto aln = banded_smith_waterman(std::span<const std::uint8_t>(codes(q)),
                                         std::span<const std::uint8_t>(codes(t)),
                                         0, 6, sc);
  EXPECT_EQ(aln.score, static_cast<int>(t.size()) * sc.match);
  EXPECT_EQ(aln.t_begin, 0u);
  EXPECT_EQ(aln.t_end, t.size());
}

TEST(BandedSw, EmptyInputsScoreZero) {
  const Scoring sc;
  const auto empty = std::span<const std::uint8_t>{};
  const auto some = codes("ACGT");
  EXPECT_EQ(banded_smith_waterman(empty, std::span<const std::uint8_t>(some),
                                  0, 4, sc)
                .score,
            0);
  EXPECT_EQ(banded_smith_waterman(std::span<const std::uint8_t>(some), empty,
                                  0, 4, sc)
                .score,
            0);
}

}  // namespace
