// End-to-end integration tests: file-based pipeline (FASTA + SeqDB -> SAM),
// merAligner-vs-baseline comparisons, and the paper's headline structural
// claims at test scale.
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <map>

#include "baseline/replicated_aligner.hpp"
#include "core/pipeline.hpp"
#include "core/sam_writer.hpp"
#include "seq/fasta.hpp"
#include "seq/genome_sim.hpp"
#include "seq/read_sim.hpp"
#include "seq/seqdb.hpp"

namespace {

using namespace mera;
using core::AlignerConfig;
using core::MerAligner;
using pgas::Runtime;
using pgas::Topology;
using seq::SeqRecord;

class IntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("mera_integ_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);

    genome_ = seq::simulate_genome({.length = 30'000, .rng_seed = 11});
    contigs_ = seq::chop_into_contigs(genome_, {.rng_seed = 12});
    seq::ReadSimParams rp;
    rp.read_len = 80;
    rp.depth = 1.5;
    rp.error_rate = 0.004;
    rp.junk_fraction = 0.01;
    rp.rng_seed = 13;
    reads_ = seq::simulate_reads(genome_, rp);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string path(const std::string& n) const { return (dir_ / n).string(); }

  AlignerConfig cfg() const {
    AlignerConfig c;
    c.k = 21;
    c.buffer_S = 64;
    c.fragment_len = 512;
    return c;
  }

  std::filesystem::path dir_;
  std::string genome_;
  std::vector<SeqRecord> contigs_;
  std::vector<SeqRecord> reads_;
};

TEST_F(IntegrationTest, FileBasedPipelineProducesValidSam) {
  write_fasta(path("contigs.fa"), contigs_);
  seq::write_seqdb(path("reads.sdb"), reads_, /*store_quality=*/false);

  Runtime rt(Topology(4, 2));
  const auto res = MerAligner(cfg()).align_files(
      rt, path("contigs.fa"), path("reads.sdb"), path("out.sam"));

  EXPECT_EQ(res.stats.reads_processed, reads_.size());
  EXPECT_GT(res.stats.aligned_fraction(), 0.8);

  // SAM sanity: header lines + one line per alignment, valid columns.
  std::ifstream sam(path("out.sam"));
  ASSERT_TRUE(sam.good());
  std::size_t headers = 0, records = 0;
  std::string line;
  while (std::getline(sam, line)) {
    if (line.empty()) continue;
    if (line[0] == '@') {
      ++headers;
      continue;
    }
    ++records;
    // 11 mandatory fields minimum.
    std::size_t tabs = 0;
    for (char ch : line) tabs += ch == '\t' ? 1u : 0u;
    EXPECT_GE(tabs, 10u);
  }
  EXPECT_GE(headers, contigs_.size() + 2);  // @HD + @SQs + @PG
  EXPECT_EQ(records, res.alignments.size());
}

TEST_F(IntegrationTest, FileAndMemoryPathsAgree) {
  write_fasta(path("contigs.fa"), contigs_);
  seq::write_seqdb(path("reads.sdb"), reads_, false);

  AlignerConfig c = cfg();
  c.permute_queries = false;
  Runtime rt1(Topology(4, 2)), rt2(Topology(4, 2));
  const auto mem = MerAligner(c).align(rt1, contigs_, reads_);
  const auto file =
      MerAligner(c).align_files(rt2, path("contigs.fa"), path("reads.sdb"));
  EXPECT_EQ(mem.stats.reads_aligned, file.stats.reads_aligned);
  EXPECT_EQ(mem.stats.alignments_reported, file.stats.alignments_reported);
  EXPECT_EQ(mem.stats.exact_match_reads, file.stats.exact_match_reads);
}

TEST_F(IntegrationTest, EndToEndBeatsSerialIndexBaselines) {
  // The Table II structural claim at test scale: merAligner's end-to-end
  // simulated time beats the replicated-serial-index baselines because index
  // construction parallelizes.
  Runtime rt1(Topology(8, 4));
  const auto mer = MerAligner(cfg()).align(rt1, contigs_, reads_);

  Runtime rt2(Topology(8, 4));
  baseline::BaselineConfig bcfg = baseline::BaselineConfig::bwamem_like(21);
  bcfg.threads_per_instance = 4;
  const auto bwa =
      baseline::ReplicatedIndexAligner(bcfg).align(rt2, contigs_, reads_);

  EXPECT_LT(mer.total_time_s(), bwa.total_time_s());
  // And the gap comes from the index phase specifically.
  EXPECT_LT(mer.report.time_of("index.build"),
            bwa.serial_index_time_s());
}

TEST_F(IntegrationTest, IndexConstructionScalesMappingDoesToo) {
  // merAligner's per-rank index build work shrinks with rank count
  // (Figure 8's near-linear construction scaling).
  auto cpu_max_of = [&](int nranks, const char* phase) {
    Runtime rt(Topology(nranks, 2));
    const auto res = MerAligner(cfg()).align(rt, contigs_, reads_);
    return res.report.find(phase)->cpu_max();
  };
  const double build1 = cpu_max_of(1, "index.build");
  const double build8 = cpu_max_of(8, "index.build");
  EXPECT_LT(build8, build1 / 3.0);
  const double align1 = cpu_max_of(1, "align");
  const double align8 = cpu_max_of(8, "align");
  EXPECT_LT(align8, align1 / 3.0);
}

TEST_F(IntegrationTest, ReverseStrandReadsAreFoundWithCorrectStrandFlag) {
  Runtime rt(Topology(4, 2));
  const auto res = MerAligner(cfg()).align(rt, contigs_, reads_);
  std::size_t rev_truth = 0, rev_found_as_rev = 0;
  std::map<std::string, bool> found_rev;
  for (const auto& a : res.alignments)
    if (a.exact) found_rev[a.query_name] = a.reverse;
  for (const auto& r : reads_) {
    const auto t = seq::parse_read_truth(r.name);
    if (t.junk || !t.reverse) continue;
    const auto it = found_rev.find(r.name);
    if (it == found_rev.end()) continue;
    ++rev_truth;
    rev_found_as_rev += it->second ? 1u : 0u;
  }
  ASSERT_GT(rev_truth, 50u);
  EXPECT_GT(static_cast<double>(rev_found_as_rev) /
                static_cast<double>(rev_truth),
            0.97);
}

TEST_F(IntegrationTest, ScaffoldingUseCase_PairedReadsLinkContigs) {
  // The Meraculous motivation: align paired reads to contigs; pairs whose
  // mates land on different contigs witness contig adjacency.
  seq::ReadSimParams rp;
  rp.read_len = 70;
  rp.depth = 3.0;
  rp.paired = true;
  rp.insert_mean = 400;
  rp.insert_sd = 20;
  rp.grouped = false;
  rp.rng_seed = 21;
  const auto paired = simulate_reads(genome_, rp);

  Runtime rt(Topology(4, 2));
  AlignerConfig c = cfg();
  c.permute_queries = false;
  const auto res = MerAligner(c).align(rt, contigs_, paired);

  // Best alignment per read.
  std::map<std::string, std::uint32_t> best_target;
  std::map<std::string, int> best_score;
  for (const auto& a : res.alignments) {
    if (a.score > best_score[a.query_name]) {
      best_score[a.query_name] = a.score;
      best_target[a.query_name] = a.target_id;
    }
  }
  std::size_t cross_links = 0;
  for (std::size_t i = 0; i + 1 < paired.size(); i += 2) {
    const auto a = best_target.find(paired[i].name);
    const auto b = best_target.find(paired[i + 1].name);
    if (a != best_target.end() && b != best_target.end() &&
        a->second != b->second)
      ++cross_links;
  }
  // With 400bp inserts and ~2-3kb contigs, a healthy share of pairs spans
  // a contig boundary.
  EXPECT_GT(cross_links, 20u);
}

}  // namespace
