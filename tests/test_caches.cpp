#include <gtest/gtest.h>

#include <random>
#include <string>
#include <thread>
#include <vector>

#include "cache/seed_cache.hpp"
#include "cache/target_cache.hpp"

namespace {

using namespace mera::cache;
using mera::dht::SeedHit;
using mera::pgas::Topology;
using mera::seq::Kmer;

Kmer kmer_of(const std::string& s) { return *Kmer::from_ascii(s); }

TEST(SeedIndexCache, MissThenHit) {
  SeedIndexCache cache(Topology(8, 4), {16});
  std::vector<SeedHit> out;
  std::size_t total = 0;
  const Kmer m = kmer_of("ACGTACGTACG");
  EXPECT_FALSE(cache.lookup(0, m, 10, out, total));
  cache.insert(0, m, {{1, 1, 5}, {2, 2, 9}}, 2);
  ASSERT_TRUE(cache.lookup(0, m, 10, out, total));
  EXPECT_EQ(total, 2u);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].t_pos, 5u);
  const auto c = cache.counters();
  EXPECT_EQ(c.hits, 1u);
  EXPECT_EQ(c.misses, 1u);
}

TEST(SeedIndexCache, NodesAreIndependent) {
  SeedIndexCache cache(Topology(8, 4), {16});
  const Kmer m = kmer_of("TTTTTTT");
  cache.insert(0, m, {{1, 1, 0}}, 1);
  std::vector<SeedHit> out;
  std::size_t total = 0;
  EXPECT_TRUE(cache.lookup(0, m, 5, out, total));
  EXPECT_FALSE(cache.lookup(1, m, 5, out, total));  // other node: cold
}

TEST(SeedIndexCache, MaxHitsLimitsCopiedResults) {
  SeedIndexCache cache(Topology(2, 2), {16});
  const Kmer m = kmer_of("ACACACA");
  cache.insert(0, m, {{1, 1, 0}, {2, 2, 0}, {3, 3, 0}}, 7);
  std::vector<SeedHit> out;
  std::size_t total = 0;
  ASSERT_TRUE(cache.lookup(0, m, 2, out, total));
  EXPECT_EQ(out.size(), 2u);
  EXPECT_EQ(total, 7u);  // the seed's true frequency survives truncation
}

TEST(SeedIndexCache, EvictsWhenFull) {
  SeedIndexCache cache(Topology(2, 2), {4});
  std::vector<SeedHit> out;
  std::size_t total = 0;
  for (int i = 0; i < 8; ++i) {
    std::string s = "AAAAAAA";
    s[0] = "ACGT"[i % 4];
    s[1] = "ACGT"[i / 4];
    cache.insert(0, kmer_of(s), {{static_cast<std::uint32_t>(i), 0, 0}}, 1);
  }
  const auto c = cache.counters();
  EXPECT_EQ(c.insertions, 8u);
  EXPECT_EQ(c.evictions, 4u);
  // Exactly 4 of the 8 remain.
  int present = 0;
  for (int i = 0; i < 8; ++i) {
    std::string s = "AAAAAAA";
    s[0] = "ACGT"[i % 4];
    s[1] = "ACGT"[i / 4];
    out.clear();
    if (cache.lookup(0, kmer_of(s), 4, out, total)) ++present;
  }
  EXPECT_EQ(present, 4);
}

TEST(SeedIndexCache, DuplicateInsertIsIgnored) {
  SeedIndexCache cache(Topology(2, 2), {8});
  const Kmer m = kmer_of("GGGGGGG");
  cache.insert(0, m, {{1, 1, 0}}, 1);
  cache.insert(0, m, {{9, 9, 9}}, 9);  // should not overwrite
  std::vector<SeedHit> out;
  std::size_t total = 0;
  ASSERT_TRUE(cache.lookup(0, m, 4, out, total));
  EXPECT_EQ(total, 1u);
  EXPECT_EQ(out[0].fragment_id, 1u);
}

TEST(SeedIndexCache, ZeroCapacityNeverStores) {
  SeedIndexCache cache(Topology(2, 2), {0});
  const Kmer m = kmer_of("CCCCCCC");
  cache.insert(0, m, {{1, 1, 0}}, 1);
  std::vector<SeedHit> out;
  std::size_t total = 0;
  EXPECT_FALSE(cache.lookup(0, m, 4, out, total));
}

TEST(SeedIndexCache, ConcurrentMixedAccessIsSafe) {
  SeedIndexCache cache(Topology(8, 4), {1024});
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&cache, t] {
      std::mt19937_64 rng(static_cast<std::uint64_t>(t));
      std::vector<SeedHit> out;
      std::size_t total = 0;
      for (int i = 0; i < 2000; ++i) {
        std::string s(9, 'A');
        for (auto& c : s) c = "ACGT"[rng() & 3u];
        const Kmer m = kmer_of(s);
        const int node = t / 4;
        if (rng() & 1u) {
          cache.insert(node, m, {{0, 0, 0}}, 1);
        } else {
          out.clear();
          cache.lookup(node, m, 4, out, total);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  const auto c = cache.counters();
  EXPECT_GT(c.insertions, 0u);
  EXPECT_EQ(c.hits + c.misses, c.hits + c.misses);  // no crash/tsan issues
}

TEST(TargetCache, MissInsertHit) {
  TargetCache cache(Topology(4, 2), {1 << 20});
  EXPECT_FALSE(cache.contains(0, 42));
  cache.insert(0, 42, 1000);
  EXPECT_TRUE(cache.contains(0, 42));
  EXPECT_FALSE(cache.contains(1, 42));  // per-node
}

TEST(TargetCache, EvictsLeastRecentlyUsedByBytes) {
  TargetCache cache(Topology(2, 2), {3000});
  cache.insert(0, 1, 1000);
  cache.insert(0, 2, 1000);
  cache.insert(0, 3, 1000);
  EXPECT_TRUE(cache.contains(0, 1));  // touch 1 -> MRU
  cache.insert(0, 4, 1000);           // evicts LRU = 2
  EXPECT_FALSE(cache.contains(0, 2));
  EXPECT_TRUE(cache.contains(0, 1));
  EXPECT_TRUE(cache.contains(0, 3));
  EXPECT_TRUE(cache.contains(0, 4));
}

TEST(TargetCache, ObjectLargerThanCapacityIsNotCached) {
  TargetCache cache(Topology(2, 2), {100});
  cache.insert(0, 7, 500);
  EXPECT_FALSE(cache.contains(0, 7));
}

TEST(TargetCache, MultiEvictionToFitLargeEntry) {
  TargetCache cache(Topology(2, 2), {1000});
  cache.insert(0, 1, 400);
  cache.insert(0, 2, 400);
  cache.insert(0, 3, 900);  // must evict both
  EXPECT_FALSE(cache.contains(0, 1));
  EXPECT_FALSE(cache.contains(0, 2));
  EXPECT_TRUE(cache.contains(0, 3));
  EXPECT_EQ(cache.counters().evictions, 2u);
}

TEST(TargetCache, DuplicateInsertKeepsOneCopy) {
  TargetCache cache(Topology(2, 2), {1000});
  cache.insert(0, 5, 300);
  cache.insert(0, 5, 300);
  cache.insert(0, 6, 700);  // fits only if id 5 counted once
  EXPECT_TRUE(cache.contains(0, 5));
  EXPECT_TRUE(cache.contains(0, 6));
}

// ---------------------------------------------------------------------------
// Eviction-aware admission (multi-tenant streams; persisted hit counters)
// ---------------------------------------------------------------------------

TEST(SeedIndexCache, AdmissionProtectsWarmEntriesFromColdFloods) {
  SeedIndexCache cache(Topology(2, 2),
                       {.capacity_per_node = 4, .eviction_aware_admission = true});
  std::vector<SeedHit> out;
  std::size_t total = 0;
  for (int i = 0; i < 4; ++i) {
    std::string s = "AAAAAAA";
    s[0] = "ACGT"[i];
    cache.insert(0, kmer_of(s), {{static_cast<std::uint32_t>(i), 0, 0}}, 1);
  }
  // One proven-hot entry; the other three stay hitless.
  const Kmer hot = kmer_of("GAAAAAA");
  for (int rep = 0; rep < 100; ++rep) {
    out.clear();
    ASSERT_TRUE(cache.lookup(0, hot, 4, out, total));
  }
  // A cold multi-tenant flood cycles through the hitless slots...
  for (int i = 0; i < 16; ++i) {
    std::string s = "CCCCCCC";
    s[0] = "ACGT"[i % 4];
    s[1] = "ACGT"[i / 4];
    cache.insert(0, kmer_of(s), {{0, 0, 0}}, 1);
  }
  // ...but the warm working set survives it.
  out.clear();
  EXPECT_TRUE(cache.lookup(0, hot, 4, out, total));
  EXPECT_GT(cache.counters().evictions, 0u);  // cold entries did cycle
}

TEST(SeedIndexCache, AdmissionRejectsWhenEverythingIsWarmer) {
  SeedIndexCache cache(Topology(2, 2),
                       {.capacity_per_node = 2, .eviction_aware_admission = true});
  std::vector<SeedHit> out;
  std::size_t total = 0;
  cache.insert(0, kmer_of("AAAAAAA"), {{1, 0, 0}}, 1);
  cache.insert(0, kmer_of("CAAAAAA"), {{2, 0, 0}}, 1);
  for (int rep = 0; rep < 64; ++rep) {
    out.clear();
    cache.lookup(0, kmer_of("AAAAAAA"), 4, out, total);
    out.clear();
    cache.lookup(0, kmer_of("CAAAAAA"), 4, out, total);
  }
  cache.insert(0, kmer_of("GAAAAAA"), {{3, 0, 0}}, 1);  // colder than both
  out.clear();
  EXPECT_FALSE(cache.lookup(0, kmer_of("GAAAAAA"), 4, out, total));
  EXPECT_EQ(cache.counters().admission_rejects, 1u);
  EXPECT_EQ(cache.counters().evictions, 0u);
  EXPECT_TRUE(cache.lookup(0, kmer_of("AAAAAAA"), 4, out, total));

  // The probe decays hit counts, so a persistent newcomer is admitted
  // eventually — warm entries are protected, not immortal.
  for (int i = 0; i < 16; ++i) {
    std::string s = "GGGGGGG";
    s[1] = "ACGT"[i % 4];
    s[2] = "ACGT"[i / 4];
    cache.insert(0, kmer_of(s), {{4, 0, 0}}, 1);
  }
  EXPECT_GT(cache.counters().evictions, 0u);
}

TEST(TargetCache, AdmissionGivesWarmTailEntriesASecondChance) {
  TargetCache cache(Topology(2, 2), {.capacity_bytes_per_node = 1000,
                                     .eviction_aware_admission = true});
  cache.insert(0, 1, 500);
  cache.insert(0, 2, 500);
  for (int rep = 0; rep < 3; ++rep) EXPECT_TRUE(cache.contains(0, 1));
  // Tail is the hitless id 2; it is sacrificed, the warm id 1 survives.
  cache.insert(0, 3, 500);
  EXPECT_TRUE(cache.contains(0, 1));
  EXPECT_FALSE(cache.contains(0, 2));
  EXPECT_TRUE(cache.contains(0, 3));
}

TEST(TargetCache, AdmissionRejectsWhenEverythingIsWarmer) {
  TargetCache cache(Topology(2, 2), {.capacity_bytes_per_node = 1000,
                                     .eviction_aware_admission = true});
  cache.insert(0, 1, 500);
  cache.insert(0, 2, 500);
  for (int rep = 0; rep < 200; ++rep) {
    cache.contains(0, 1);
    cache.contains(0, 2);
  }
  cache.insert(0, 3, 500);  // both residents are far warmer: refused
  EXPECT_FALSE(cache.contains(0, 3));
  EXPECT_TRUE(cache.contains(0, 1));
  EXPECT_TRUE(cache.contains(0, 2));
  EXPECT_EQ(cache.counters().admission_rejects, 1u);
}

TEST(TargetCache, ConcurrentAccessIsSafe) {
  TargetCache cache(Topology(8, 4), {1 << 16});
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&cache, t] {
      std::mt19937_64 rng(static_cast<std::uint64_t>(t) + 100);
      for (int i = 0; i < 3000; ++i) {
        const auto gid = static_cast<std::uint32_t>(rng() % 256);
        const int node = t / 4;
        if (cache.contains(node, gid)) continue;
        cache.insert(node, gid, 64 + rng() % 512);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_GT(cache.counters().insertions, 0u);
}

}  // namespace
