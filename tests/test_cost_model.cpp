#include "pgas/cost_model.hpp"

#include <gtest/gtest.h>

namespace {

using namespace mera::pgas;

TEST(CostModel, TransferTimeIsLatencyPlusBandwidth) {
  CostModel m;
  m.net_latency_s = 2e-6;
  m.net_bandwidth_Bps = 1e9;
  EXPECT_DOUBLE_EQ(m.transfer_time(true, 0), 2e-6);
  EXPECT_DOUBLE_EQ(m.transfer_time(true, 1'000'000), 2e-6 + 1e-3);
}

TEST(CostModel, LatencyDominatesSmallMessages) {
  const CostModel m = CostModel::cray_xc30_like();
  // A tiny message costs nearly the same as an empty one...
  EXPECT_LT(m.transfer_time(true, 64) / m.transfer_time(true, 0), 1.05);
  // ...which is why aggregating S small messages into one big one wins.
  const std::size_t S = 1000, entry = 32;
  const double fine_grained = static_cast<double>(S) * m.transfer_time(true, entry);
  const double aggregated = m.transfer_time(true, S * entry);
  EXPECT_GT(fine_grained / aggregated, 100.0);
}

TEST(CostModel, AtomicCostsMoreOffNode) {
  const CostModel m = CostModel::cray_xc30_like();
  EXPECT_GT(m.atomic_time(true), m.atomic_time(false));
  EXPECT_GT(m.atomic_time(true), m.transfer_time(true, 8));
}

TEST(CostModel, ZeroModelIsFree) {
  const CostModel z = CostModel::zero();
  EXPECT_DOUBLE_EQ(z.transfer_time(true, 1u << 30), 0.0);
  EXPECT_DOUBLE_EQ(z.atomic_time(true), 0.0);
}

TEST(CommStats, AccumulationAndDifference) {
  CommStats a;
  a.local_ops = 1;
  a.net_msgs = 2;
  a.net_bytes = 100;
  a.comm_time_s = 0.5;
  CommStats b = a;
  b += a;
  EXPECT_EQ(b.net_msgs, 4u);
  EXPECT_EQ(b.net_bytes, 200u);
  EXPECT_DOUBLE_EQ(b.comm_time_s, 1.0);
  const CommStats d = b - a;
  EXPECT_EQ(d.net_msgs, 2u);
  EXPECT_EQ(d.local_ops, 1u);
  EXPECT_DOUBLE_EQ(d.comm_time_s, 0.5);
}

TEST(CommStats, RemoteAggregates) {
  CommStats s;
  s.node_msgs = 3;
  s.net_msgs = 4;
  s.node_bytes = 30;
  s.net_bytes = 40;
  EXPECT_EQ(s.remote_msgs(), 7u);
  EXPECT_EQ(s.remote_bytes(), 70u);
}

}  // namespace
