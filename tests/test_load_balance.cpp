#include "core/load_balance.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <random>
#include <string>
#include <vector>

namespace {

using namespace mera::core;

TEST(Permute, BoundedDrawStaysInRangeForAwkwardBounds) {
  std::mt19937_64 rng(1);
  for (const std::uint64_t bound : {1ull, 2ull, 3ull, 7ull, 1000ull,
                                    (1ull << 63) + 1, ~0ull}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(uniform_below(rng, bound), bound);
  }
}

TEST(Permute, BoundedDrawIsUnbiasedOverHugeBounds) {
  // The old `rng() % bound` draw maps 2^64 values onto `bound` buckets; with
  // bound = 2^63 + 2^62 the low half of the range is twice as likely as the
  // high half (2 source values vs 1). The rejection draw makes the halves
  // equally likely — a bias this coarse is detectable in a few thousand
  // draws: P(low) is 2/3 biased vs 1/2 unbiased.
  const std::uint64_t bound = (1ull << 63) + (1ull << 62);
  std::mt19937_64 rng(99);
  const int n = 20'000;
  int low = 0;
  for (int i = 0; i < n; ++i)
    low += uniform_below(rng, bound) < bound / 2 ? 1 : 0;
  const double frac = static_cast<double>(low) / n;
  EXPECT_NEAR(frac, 0.5, 0.02);  // biased draw would give ~0.667
}

TEST(Permute, FixedSeedPermutationIsPinnedAcrossPlatforms) {
  // The determinism contract: mt19937_64 output and the rejection draw are
  // both fully specified, so seed 42 must produce exactly this permutation
  // everywhere, forever. Re-pin only on a deliberate algorithm change.
  std::vector<int> v(10);
  std::iota(v.begin(), v.end(), 0);
  permute_queries(v, 42);
  const std::vector<int> pinned = {1, 7, 9, 0, 3, 8, 4, 2, 5, 6};
  EXPECT_EQ(v, pinned);
}

TEST(Permute, IsDeterministicPerSeed) {
  std::vector<int> a(1000), b(1000);
  std::iota(a.begin(), a.end(), 0);
  std::iota(b.begin(), b.end(), 0);
  permute_queries(a, 42);
  permute_queries(b, 42);
  EXPECT_EQ(a, b);
  permute_queries(b, 43);
  EXPECT_NE(a, b);
}

TEST(Permute, IsAPermutation) {
  std::vector<int> v(5000);
  std::iota(v.begin(), v.end(), 0);
  permute_queries(v, 7);
  auto sorted = v;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 5000; ++i) EXPECT_EQ(sorted[static_cast<std::size_t>(i)], i);
}

TEST(Permute, ActuallyShuffles) {
  std::vector<int> v(1000);
  std::iota(v.begin(), v.end(), 0);
  permute_queries(v, 9);
  int fixed_points = 0;
  for (int i = 0; i < 1000; ++i)
    fixed_points += v[static_cast<std::size_t>(i)] == i ? 1 : 0;
  EXPECT_LT(fixed_points, 20);  // E[fixed points] = 1
}

TEST(Permute, HandlesDegenerateSizes) {
  std::vector<int> empty;
  permute_queries(empty, 1);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one{5};
  permute_queries(one, 1);
  EXPECT_EQ(one[0], 5);
}

TEST(Theorem1, BoundHoldsWithHighProbabilityMonteCarlo) {
  // h slow queries onto p processors, h >> p log p: max load <= bound whp.
  const struct {
    std::uint64_t h;
    int p;
  } cases[] = {{10'000, 16}, {50'000, 64}, {100'000, 128}};
  for (const auto& c : cases) {
    const double bound = max_load_bound(c.h, c.p);
    int violations = 0;
    for (std::uint64_t trial = 0; trial < 50; ++trial)
      if (static_cast<double>(simulate_max_load(c.h, c.p, trial)) > bound)
        ++violations;
    EXPECT_LE(violations, 1) << "h=" << c.h << " p=" << c.p;
  }
}

TEST(Theorem1, BoundIsNotVacuous) {
  // The bound must stay within a small factor of the mean in the
  // h >= p log p regime — otherwise it certifies nothing.
  const double mean = 100'000.0 / 64.0;
  EXPECT_LT(max_load_bound(100'000, 64), 2.0 * mean);
}

TEST(Theorem1, RandomAssignmentBeatsAdversarialGrouping) {
  // The motivating scenario: grouped input puts all h slow queries on few
  // processors; random assignment spreads them near-evenly.
  const std::uint64_t h = 20'000;
  const int p = 32;
  // Grouped worst case: the sorted input file concentrates every slow query
  // into a contiguous block that a block partition hands to ~p/4 processors.
  const double grouped_max = static_cast<double>(h) / (p / 4);
  const double random_max = static_cast<double>(simulate_max_load(h, p, 1));
  EXPECT_LT(random_max, grouped_max / 3.0);
  EXPECT_LT(random_max, max_load_bound(h, p));
}

TEST(Theorem1, SingleProcessorDegenerateCase) {
  EXPECT_DOUBLE_EQ(max_load_bound(500, 1), 500.0);
  EXPECT_EQ(simulate_max_load(500, 1, 0), 500u);
}

}  // namespace
