#include "core/sam_writer.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "pgas/runtime.hpp"
#include "seq/dna.hpp"

namespace {

using namespace mera::core;
using mera::pgas::Rank;
using mera::pgas::Runtime;
using mera::pgas::Topology;
using mera::seq::SeqRecord;

TargetStore make_store(const std::vector<SeqRecord>& targets) {
  TargetStore store(1, {21, 1u << 30});
  Runtime rt(Topology(1, 1));
  rt.run([&](Rank& r) {
    store.add_local_targets(r, targets);
    store.finish_construction(r);
  });
  return store;
}

TEST(SamWriter, HeaderListsAllTargets) {
  const auto store = make_store({{"ctgA", std::string(100, 'A'), ""},
                                 {"ctgB", std::string(50, 'C'), ""}});
  std::ostringstream os;
  write_sam_header(os, store);
  const std::string out = os.str();
  EXPECT_NE(out.find("@SQ\tSN:ctgA\tLN:100"), std::string::npos);
  EXPECT_NE(out.find("@SQ\tSN:ctgB\tLN:50"), std::string::npos);
  EXPECT_NE(out.find("@HD"), std::string::npos);
  EXPECT_NE(out.find("@PG"), std::string::npos);
}

TEST(SamWriter, ForwardRecordFields) {
  const auto store = make_store({{"ctg", "ACGTACGTACGTACGTACGT", ""}});
  AlignmentRecord rec;
  rec.query_name = "read1";
  rec.target_id = 0;
  rec.reverse = false;
  rec.score = 20;
  rec.t_begin = 4;  // 0-based -> SAM POS 5
  rec.t_end = 14;
  rec.cigar = "10M";
  rec.mismatches = 1;
  std::ostringstream os;
  write_sam_record(os, rec, store, "ACGTACGTAC");
  const std::string line = os.str();
  EXPECT_NE(line.find("read1\t0\tctg\t5\t"), std::string::npos);
  EXPECT_NE(line.find("\t10M\t"), std::string::npos);
  EXPECT_NE(line.find("ACGTACGTAC"), std::string::npos);
  EXPECT_NE(line.find("AS:i:20"), std::string::npos);
  EXPECT_NE(line.find("NM:i:1"), std::string::npos);
}

TEST(SamWriter, ReverseRecordSetsFlagAndRevcompsSeq) {
  const auto store = make_store({{"ctg", std::string(60, 'G'), ""}});
  AlignmentRecord rec;
  rec.query_name = "r";
  rec.target_id = 0;
  rec.reverse = true;
  rec.t_begin = 0;
  rec.cigar = "4M";
  std::ostringstream os;
  write_sam_record(os, rec, store, "AACG");
  const std::string line = os.str();
  EXPECT_NE(line.find("\t16\t"), std::string::npos);  // 0x10
  EXPECT_NE(line.find("CGTT"), std::string::npos);
  EXPECT_EQ(line.find("AACG\t"), std::string::npos);
}

TEST(SamWriter, ExactAlignmentsGetHigherMapq) {
  const auto store = make_store({{"ctg", std::string(60, 'T'), ""}});
  AlignmentRecord exact, inexact;
  exact.query_name = inexact.query_name = "r";
  exact.cigar = inexact.cigar = "4M";
  exact.exact = true;
  inexact.exact = false;
  std::ostringstream a, b;
  write_sam_record(a, exact, store, "TTTT");
  write_sam_record(b, inexact, store, "TTTT");
  EXPECT_NE(a.str().find("\t60\t"), std::string::npos);
  EXPECT_NE(b.str().find("\t30\t"), std::string::npos);
}

TEST(SamWriter, FileWriteRejectsMismatchedInputs) {
  const auto store = make_store({{"ctg", std::string(10, 'A'), ""}});
  EXPECT_THROW(
      write_sam_file("/tmp/mera_sam_mismatch.sam", store,
                     std::vector<AlignmentRecord>(2), {"ACGT"}),
      std::invalid_argument);
}

}  // namespace
