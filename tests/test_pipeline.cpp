#include "core/pipeline.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "seq/genome_sim.hpp"
#include "seq/read_sim.hpp"

namespace {

using namespace mera::core;
using mera::pgas::Runtime;
using mera::pgas::Topology;
using mera::seq::SeqRecord;

struct Workload {
  std::string genome;
  std::vector<SeqRecord> contigs;
  std::vector<SeqRecord> reads;
};

Workload make_workload(std::size_t genome_len, double depth, int k,
                       double error_rate = 0.0, double junk = 0.0,
                       std::uint64_t seed = 1) {
  Workload w;
  mera::seq::GenomeParams gp;
  gp.length = genome_len;
  gp.repeat_fraction = 0.02;
  gp.rng_seed = seed;
  w.genome = simulate_genome(gp);
  mera::seq::ContigParams cp;
  cp.rng_seed = seed + 1;
  w.contigs = chop_into_contigs(w.genome, cp);
  mera::seq::ReadSimParams rp;
  rp.read_len = 80;
  rp.depth = depth;
  rp.error_rate = error_rate;
  rp.junk_fraction = junk;
  rp.n_rate = 0.0;
  rp.rng_seed = seed + 2;
  w.reads = simulate_reads(w.genome, rp);
  (void)k;
  return w;
}

AlignerConfig small_config(int k = 21) {
  AlignerConfig cfg;
  cfg.k = k;
  cfg.buffer_S = 64;
  cfg.fragment_len = 512;
  cfg.seed_cache_capacity = 1u << 14;
  cfg.target_cache_bytes = 8u << 20;
  return cfg;
}

TEST(Pipeline, ErrorFreeReadsAllAlign) {
  const auto w = make_workload(40'000, 2.0, 21);
  Runtime rt(Topology(4, 2));
  const MerAligner aligner(small_config());
  const auto res = aligner.align(rt, w.contigs, w.reads);

  EXPECT_EQ(res.stats.reads_processed, w.reads.size());
  // Reads falling inside a contig must align; only reads straddling contig
  // gaps can fail. Contigs cover ~95% of the genome here.
  EXPECT_GT(res.stats.aligned_fraction(), 0.85);
  EXPECT_GT(res.stats.exact_match_reads, 0u);
}

TEST(Pipeline, AlignmentsMatchGroundTruthPositions) {
  const auto w = make_workload(30'000, 1.5, 21);
  Runtime rt(Topology(4, 2));
  const MerAligner aligner(small_config());
  const auto res = aligner.align(rt, w.contigs, w.reads);

  // Map contig name -> genome start for coordinate translation.
  std::map<std::string, std::size_t> contig_start;
  for (const auto& c : w.contigs)
    contig_start[c.name] = mera::seq::parse_contig_truth(c.name).start;

  // Index targets by id via a second pass: target ids follow input order.
  std::size_t checked = 0, correct = 0;
  for (const auto& a : res.alignments) {
    if (!a.exact) continue;  // exact records have unambiguous placement
    const auto truth = mera::seq::parse_read_truth(a.query_name);
    const auto& contig = w.contigs[a.target_id];
    const std::size_t genome_pos = contig_start[contig.name] + a.t_begin;
    ++checked;
    if (genome_pos == truth.pos && a.reverse == truth.reverse) ++correct;
  }
  ASSERT_GT(checked, 100u);
  // A read can legitimately exact-match a repeat elsewhere; demand 98%.
  EXPECT_GT(static_cast<double>(correct) / static_cast<double>(checked), 0.98);
}

TEST(Pipeline, ReadsWithErrorsStillAlignViaSW) {
  const auto w = make_workload(30'000, 2.0, 21, /*error=*/0.01);
  Runtime rt(Topology(4, 2));
  const MerAligner aligner(small_config());
  const auto res = aligner.align(rt, w.contigs, w.reads);
  EXPECT_GT(res.stats.aligned_fraction(), 0.8);
  EXPECT_GT(res.stats.sw_calls, 0u);
  // Erroneous reads can't all use the exact path.
  EXPECT_LT(res.stats.exact_match_reads, res.stats.reads_aligned);
}

TEST(Pipeline, JunkReadsDoNotAlign) {
  const auto w = make_workload(30'000, 2.0, 21, 0.0, /*junk=*/0.2);
  Runtime rt(Topology(4, 2));
  const MerAligner aligner(small_config());
  const auto res = aligner.align(rt, w.contigs, w.reads);
  std::size_t junk_aligned = 0, junk_total = 0;
  std::map<std::string, bool> aligned_names;
  for (const auto& a : res.alignments) aligned_names[a.query_name] = true;
  for (const auto& r : w.reads) {
    if (!mera::seq::parse_read_truth(r.name).junk) continue;
    ++junk_total;
    junk_aligned += aligned_names.count(r.name) ? 1u : 0u;
  }
  ASSERT_GT(junk_total, 50u);
  EXPECT_LT(static_cast<double>(junk_aligned) / static_cast<double>(junk_total),
            0.01);
}

TEST(Pipeline, ResultsAreIdenticalAcrossRankCounts) {
  // The parallel decomposition must not change *what* is found.
  const auto w = make_workload(20'000, 1.0, 21);
  auto run_with = [&](int nranks, int ppn) {
    Runtime rt(Topology(nranks, ppn));
    AlignerConfig cfg = small_config();
    cfg.permute_queries = false;  // keep order comparable
    const MerAligner aligner(cfg);
    auto res = aligner.align(rt, w.contigs, w.reads);
    // Canonical sort for comparison.
    std::sort(res.alignments.begin(), res.alignments.end(),
              [](const AlignmentRecord& a, const AlignmentRecord& b) {
                return std::tie(a.query_name, a.target_id, a.t_begin,
                                a.reverse) <
                       std::tie(b.query_name, b.target_id, b.t_begin,
                                b.reverse);
              });
    return res;
  };
  const auto r1 = run_with(1, 1);
  const auto r4 = run_with(4, 2);
  const auto r6 = run_with(6, 3);
  ASSERT_EQ(r1.alignments.size(), r4.alignments.size());
  ASSERT_EQ(r1.alignments.size(), r6.alignments.size());
  for (std::size_t i = 0; i < r1.alignments.size(); ++i) {
    EXPECT_EQ(r1.alignments[i].query_name, r4.alignments[i].query_name);
    EXPECT_EQ(r1.alignments[i].target_id, r4.alignments[i].target_id);
    EXPECT_EQ(r1.alignments[i].t_begin, r4.alignments[i].t_begin);
    EXPECT_EQ(r1.alignments[i].score, r6.alignments[i].score);
  }
}

TEST(Pipeline, OptimizationsDoNotChangeAlignedReadSet) {
  // Caches, aggregation and the exact-match path are performance features;
  // switching them off must leave reads_aligned unchanged.
  const auto w = make_workload(20'000, 1.0, 21, 0.005);
  auto aligned_with = [&](auto mutate) {
    Runtime rt(Topology(4, 2));
    AlignerConfig cfg = small_config();
    mutate(cfg);
    const auto res = MerAligner(cfg).align(rt, w.contigs, w.reads);
    return res.stats.reads_aligned;
  };
  const auto base = aligned_with([](AlignerConfig&) {});
  EXPECT_EQ(base, aligned_with([](AlignerConfig& c) { c.seed_cache = false; }));
  EXPECT_EQ(base,
            aligned_with([](AlignerConfig& c) { c.target_cache = false; }));
  EXPECT_EQ(base, aligned_with([](AlignerConfig& c) {
              c.aggregating_stores = false;
            }));
  EXPECT_EQ(base, aligned_with([](AlignerConfig& c) { c.exact_match = false; }));
  EXPECT_EQ(base, aligned_with([](AlignerConfig& c) {
              c.fragment_len = std::numeric_limits<std::size_t>::max();
            }));
}

TEST(Pipeline, ExactMatchOptReducesSWCallsAndLookups) {
  const auto w = make_workload(40'000, 2.0, 21);
  auto stats_with = [&](bool exact) {
    Runtime rt(Topology(4, 2));
    AlignerConfig cfg = small_config();
    cfg.exact_match = exact;
    return MerAligner(cfg).align(rt, w.contigs, w.reads).stats;
  };
  const auto on = stats_with(true);
  const auto off = stats_with(false);
  EXPECT_LT(on.sw_calls, off.sw_calls / 2);
  EXPECT_LT(on.seed_lookups, off.seed_lookups / 2);
  EXPECT_EQ(on.reads_aligned, off.reads_aligned);
}

TEST(Pipeline, CachesReduceModeledCommunication) {
  const auto w = make_workload(40'000, 3.0, 21);
  auto comm_with = [&](bool caches) {
    Runtime rt(Topology(8, 2));  // 4 nodes -> plenty of off-node traffic
    AlignerConfig cfg = small_config();
    cfg.seed_cache = caches;
    cfg.target_cache = caches;
    cfg.exact_match = false;      // keep lookup volume comparable
    cfg.permute_queries = false;  // grouped order = locality the caches exploit
    const auto res = MerAligner(cfg).align(rt, w.contigs, w.reads);
    const auto* ph = res.report.find("align");
    return ph->comm_max();
  };
  const double with_cache = comm_with(true);
  const double without = comm_with(false);
  EXPECT_LT(with_cache, without * 0.8);
}

TEST(Pipeline, AggregatingStoresSpeedUpIndexConstruction) {
  const auto w = make_workload(60'000, 0.5, 21);
  auto index_comm = [&](bool agg) {
    Runtime rt(Topology(8, 2));
    AlignerConfig cfg = small_config();
    cfg.aggregating_stores = agg;
    const auto res = MerAligner(cfg).align(rt, w.contigs, w.reads);
    const auto* ph = res.report.find("index.build");
    return ph->traffic.remote_msgs() + ph->traffic.atomics;
  };
  EXPECT_LT(index_comm(true) * 20, index_comm(false));
}

TEST(Pipeline, TruncationThresholdCapsWork) {
  // A highly repetitive genome: max_hits_per_seed bounds SW calls.
  mera::seq::GenomeParams gp;
  gp.length = 30'000;
  gp.repeat_fraction = 0.5;
  gp.repeat_divergence = 0.0;
  gp.repeat_unit_len = 500;
  gp.repeat_families = 1;
  const std::string genome = simulate_genome(gp);
  const auto contigs = mera::seq::chop_into_contigs(genome, {});
  mera::seq::ReadSimParams rp;
  rp.read_len = 80;
  rp.depth = 1.0;
  const auto reads = simulate_reads(genome, rp);

  auto sw_with = [&](std::size_t max_hits) {
    Runtime rt(Topology(4, 2));
    AlignerConfig cfg = small_config();
    cfg.exact_match = false;
    cfg.max_hits_per_seed = max_hits;
    return MerAligner(cfg).align(rt, contigs, reads).stats;
  };
  const auto strict = sw_with(2);
  const auto loose = sw_with(64);
  EXPECT_LT(strict.sw_calls, loose.sw_calls);
  EXPECT_GT(strict.hits_truncated, 0u);
}

TEST(Pipeline, PhaseReportContainsAllPipelinePhases) {
  const auto w = make_workload(10'000, 0.5, 21);
  Runtime rt(Topology(2, 2));
  const auto res = MerAligner(small_config()).align(rt, w.contigs, w.reads);
  for (const char* name :
       {"io.targets", "index.build", "index.mark", "io.reads", "align"})
    EXPECT_NE(res.report.find(name), nullptr) << name;
  EXPECT_GT(res.total_time_s(), 0.0);
  EXPECT_GT(res.index_entries, 0u);
  EXPECT_GT(res.single_copy_fraction, 0.0);
}

TEST(Pipeline, CollectAlignmentsOffKeepsCountsOnly) {
  const auto w = make_workload(10'000, 0.5, 21);
  Runtime rt(Topology(2, 2));
  AlignerConfig cfg = small_config();
  cfg.collect_alignments = false;
  const auto res = MerAligner(cfg).align(rt, w.contigs, w.reads);
  EXPECT_TRUE(res.alignments.empty());
  EXPECT_GT(res.stats.alignments_reported, 0u);
}

TEST(Pipeline, FragmentationIncreasesSingleCopyFraction) {
  // Repeat-bearing genome: finer fragments keep more of the index eligible
  // for the Lemma-1 path (the point of Section IV-A's fragmentation).
  mera::seq::GenomeParams gp;
  gp.length = 60'000;
  gp.repeat_fraction = 0.15;
  gp.repeat_divergence = 0.0;
  const std::string genome = simulate_genome(gp);
  const auto contigs = mera::seq::chop_into_contigs(genome, {});
  mera::seq::ReadSimParams rp;
  rp.read_len = 80;
  rp.depth = 0.2;
  const auto reads = simulate_reads(genome, rp);

  auto frac_with = [&](std::size_t flen) {
    Runtime rt(Topology(4, 2));
    AlignerConfig cfg = small_config();
    cfg.fragment_len = flen;
    return MerAligner(cfg).align(rt, contigs, reads).single_copy_fraction;
  };
  const double fine = frac_with(256);
  const double whole = frac_with(std::numeric_limits<std::size_t>::max());
  EXPECT_GT(fine, whole);
}

}  // namespace
