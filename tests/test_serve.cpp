// The alignment daemon (the `ctest -L serve` tier).
//
// Contracts under test:
//   1. framing     — frames round-trip over a socket, clean EOF is nullopt,
//                    bad magic / oversize / truncation throw FramingError;
//   2. bit-identity — a tenant's concatenated Sam payloads are byte-identical
//                    to the stream a one-shot in-process session writes for
//                    the same batches (single-index AND sharded backends),
//                    including with two tenants aligned concurrently;
//   3. isolation   — a malformed batch or a mid-stream disconnect costs only
//                    that connection, never the daemon or other tenants;
//   4. persistence — autosave while serving produces a loadable snapshot;
//   5. observability — the Prometheus scrape and the stats JSON carry
//                    per-tenant series/accounting.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/align_session.hpp"
#include "core/alignment_sink.hpp"
#include "core/indexed_reference.hpp"
#include "pgas/runtime.hpp"
#include "seq/genome_sim.hpp"
#include "seq/read_sim.hpp"
#include "serve/backend.hpp"
#include "serve/daemon.hpp"
#include "serve/framing.hpp"
#include "shard/sharded_reference.hpp"
#include "shard/sharded_session.hpp"

namespace {

using namespace mera;
using mera::pgas::Topology;
using mera::seq::SeqRecord;
using mera::serve::Frame;
using mera::serve::FrameType;
using mera::serve::FramingError;

// ---------------------------------------------------------------------------
// Shared helpers
// ---------------------------------------------------------------------------

const Topology kTopo(4, 2);

core::IndexConfig small_index() {
  core::IndexConfig ic;
  ic.k = 21;
  ic.buffer_S = 64;
  ic.fragment_len = 512;
  return ic;
}

core::SamProgram test_program() {
  core::SamProgram pg;
  pg.name = "meralignerd";
  return pg;  // no command line -> CL omitted, identical on both sides
}

struct Workload {
  std::vector<SeqRecord> contigs;
  std::vector<std::vector<SeqRecord>> batches;  ///< reads, pre-split
};

/// Small deterministic workload; quals normalized non-empty so the FASTQ
/// text we send round-trips to exactly these records.
Workload make_workload(std::uint64_t seed, int nbatches) {
  Workload w;
  seq::GenomeParams gp;
  gp.length = 3000;
  gp.repeat_fraction = 0.03;
  gp.rng_seed = seed;
  const std::string genome = simulate_genome(gp);
  seq::ContigParams cp;
  cp.rng_seed = seed + 1;
  w.contigs = chop_into_contigs(genome, cp);
  seq::ReadSimParams rp;
  rp.read_len = 80;
  rp.depth = 1.5;
  rp.error_rate = 0.004;
  rp.n_rate = 0.0;
  rp.rng_seed = seed + 2;
  std::vector<SeqRecord> reads = simulate_reads(genome, rp);
  for (auto& r : reads)
    if (r.qual.empty()) r.qual.assign(r.seq.size(), 'I');
  w.batches.resize(static_cast<std::size_t>(nbatches));
  for (std::size_t i = 0; i < reads.size(); ++i)
    w.batches[i % w.batches.size()].push_back(reads[i]);
  return w;
}

std::string fastq_text(const std::vector<SeqRecord>& reads) {
  std::string s;
  for (const auto& r : reads)
    s += "@" + r.name + "\n" + r.seq + "\n+\n" + r.qual + "\n";
  return s;
}

/// What the one-shot pipeline writes for these batches: the acceptance
/// baseline a daemon connection's concatenated Sam payloads must reproduce
/// byte for byte.
std::string one_shot_sam(const Workload& w, int shards = 1) {
  pgas::Runtime rt(kTopo);
  std::ostringstream os(std::ios::binary);
  if (shards <= 1) {
    auto ref = core::IndexedReference::build(rt, w.contigs, small_index());
    core::SamStreamSink sink(os, core::sam_targets(ref.targets()),
                             rt.nranks(), test_program());
    core::AlignSession session(std::move(ref));
    for (const auto& b : w.batches) session.align_batch(rt, b, sink);
  } else {
    auto ref =
        shard::ShardedReference::build(rt, w.contigs, shards, small_index());
    core::SamStreamSink sink(os, ref.sam_targets(), rt.nranks(),
                             test_program());
    shard::ShardedAlignSession session(
        std::move(ref), shard::ShardedSessionConfig{core::SessionConfig{}, 1});
    for (const auto& b : w.batches) session.align_batch(rt, b, sink);
  }
  return os.str();
}

serve::Backend make_backend(const Workload& w, int shards = 1) {
  pgas::Runtime rt(kTopo);
  if (shards <= 1)
    return serve::Backend(
        core::IndexedReference::build(rt, w.contigs, small_index()),
        core::SessionConfig{});
  return serve::Backend(
      shard::ShardedReference::build(rt, w.contigs, shards, small_index()),
      shard::ShardedSessionConfig{core::SessionConfig{}, 1});
}

/// Minimal framing client for the tests.
struct Client {
  int fd = -1;
  explicit Client(const std::string& socket_path)
      : fd(serve::connect_unix(socket_path)) {}
  ~Client() {
    if (fd >= 0) ::close(fd);
  }
  void send(FrameType t, std::string_view payload = {}) const {
    serve::write_frame(fd, t, payload);
  }
  [[nodiscard]] std::optional<Frame> recv() const {
    return serve::read_frame(fd);
  }
  /// Hello + every batch + Goodbye; returns the concatenated Sam payloads.
  [[nodiscard]] std::string run_batches(
      const std::string& tenant,
      const std::vector<std::vector<SeqRecord>>& batches) const {
    send(FrameType::kHello, tenant);
    std::string sam;
    for (const auto& b : batches) {
      send(FrameType::kBatch, fastq_text(b));
      auto reply = recv();
      if (!reply || reply->type != FrameType::kSam)
        throw std::runtime_error("expected a Sam reply");
      sam += reply->payload;
    }
    send(FrameType::kGoodbye);
    return sam;
  }
};

class ServeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("mera_serve_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }
  serve::DaemonConfig daemon_config() const {
    serve::DaemonConfig dcfg;
    dcfg.socket_path = path("d.sock");
    dcfg.program = test_program();
    return dcfg;
  }
  std::filesystem::path dir_;
};

// ---------------------------------------------------------------------------
// 1. Framing
// ---------------------------------------------------------------------------

struct SocketPair {
  int fds[2] = {-1, -1};
  SocketPair() {
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  }
  ~SocketPair() {
    for (const int fd : fds)
      if (fd >= 0) ::close(fd);
  }
  void close_writer() {
    ::close(fds[0]);
    fds[0] = -1;
  }
};

TEST(ServeFraming, FramesRoundTripIncludingBinaryPayloads) {
  SocketPair sp;
  const std::string binary("A\0B\xff\nC", 7);  // embedded NUL survives
  serve::write_frame(sp.fds[0], FrameType::kHello, "alice");
  serve::write_frame(sp.fds[0], FrameType::kBatch, binary);
  serve::write_frame(sp.fds[0], FrameType::kGoodbye, {});
  sp.close_writer();

  auto f1 = serve::read_frame(sp.fds[1]);
  ASSERT_TRUE(f1.has_value());
  EXPECT_EQ(f1->type, FrameType::kHello);
  EXPECT_EQ(f1->payload, "alice");
  auto f2 = serve::read_frame(sp.fds[1]);
  ASSERT_TRUE(f2.has_value());
  EXPECT_EQ(f2->type, FrameType::kBatch);
  EXPECT_EQ(f2->payload, binary);
  auto f3 = serve::read_frame(sp.fds[1]);
  ASSERT_TRUE(f3.has_value());
  EXPECT_EQ(f3->type, FrameType::kGoodbye);
  EXPECT_TRUE(f3->payload.empty());
  EXPECT_FALSE(serve::read_frame(sp.fds[1]).has_value())
      << "clean EOF at a frame boundary is nullopt, not an error";
}

TEST(ServeFraming, BadMagicIsAFramingError) {
  SocketPair sp;
  const std::uint32_t bad[4] = {0xDEADBEEF, 1, 0, 0};
  serve::write_all(sp.fds[0], bad, sizeof(bad));
  sp.close_writer();
  EXPECT_THROW(serve::read_frame(sp.fds[1]), FramingError);
}

TEST(ServeFraming, OversizedFrameIsRejectedBeforeAllocation) {
  SocketPair sp;
  serve::write_frame(sp.fds[0], FrameType::kBatch, std::string(2048, 'x'));
  EXPECT_THROW(serve::read_frame(sp.fds[1], /*max_payload=*/1024),
               FramingError);
}

TEST(ServeFraming, TruncationMidFrameIsAFramingError) {
  SocketPair sp;
  struct {
    std::uint32_t magic = serve::kFrameMagic;
    std::uint32_t type = 2;
    std::uint64_t len = 100;
  } header;
  serve::write_all(sp.fds[0], &header, sizeof(header));
  serve::write_all(sp.fds[0], "only ten b", 10);
  sp.close_writer();
  EXPECT_THROW(serve::read_frame(sp.fds[1]), FramingError);
}

// ---------------------------------------------------------------------------
// 2. Bit-identity with the one-shot pipeline
// ---------------------------------------------------------------------------

TEST_F(ServeTest, SingleTenantSamIsByteIdenticalToOneShotRun) {
  const Workload w = make_workload(101, 2);
  const std::string expected = one_shot_sam(w);
  ASSERT_FALSE(expected.empty());

  serve::Daemon daemon(make_backend(w), kTopo, daemon_config());
  daemon.start();
  const std::string got = Client(daemon.socket_path()).run_batches("t0", w.batches);
  daemon.request_stop();
  daemon.wait();

  EXPECT_EQ(got, expected);
}

TEST_F(ServeTest, TwoConcurrentTenantsEachGetBitIdenticalSam) {
  const Workload wa = make_workload(202, 2);
  const Workload wb = make_workload(303, 3);  // same genome seed space, own reads
  // Both tenants are served from ONE index, so both workloads must share the
  // reference; reuse wa's contigs for wb's baseline.
  Workload wb_on_a = wb;
  wb_on_a.contigs = wa.contigs;
  const std::string expect_a = one_shot_sam(wa);
  const std::string expect_b = one_shot_sam(wb_on_a);

  serve::Daemon daemon(make_backend(wa), kTopo, daemon_config());
  daemon.start();

  std::string got_a, got_b;
  std::thread ta([&] {
    got_a = Client(daemon.socket_path()).run_batches("tenant_a", wa.batches);
  });
  std::thread tb([&] {
    got_b =
        Client(daemon.socket_path()).run_batches("tenant_b", wb_on_a.batches);
  });
  ta.join();
  tb.join();
  const auto stats = daemon.tenant_stats();
  daemon.request_stop();
  daemon.wait();

  EXPECT_EQ(got_a, expect_a);
  EXPECT_EQ(got_b, expect_b);
  ASSERT_EQ(stats.count("tenant_a"), 1u);
  ASSERT_EQ(stats.count("tenant_b"), 1u);
  EXPECT_EQ(stats.at("tenant_a").batches, 2u);
  EXPECT_EQ(stats.at("tenant_b").batches, 3u);
  EXPECT_EQ(stats.at("tenant_a").connections, 1u);
  EXPECT_GT(stats.at("tenant_a").sam_bytes, 0u);
  EXPECT_EQ(stats.at("tenant_a").sam_bytes + stats.at("tenant_b").sam_bytes,
            got_a.size() + got_b.size());
}

TEST_F(ServeTest, ShardedBackendServesTheSameBytesAsOneShotSharded) {
  const Workload w = make_workload(404, 2);
  const std::string expected = one_shot_sam(w, /*shards=*/2);
  ASSERT_FALSE(expected.empty());

  serve::Daemon daemon(make_backend(w, /*shards=*/2), kTopo, daemon_config());
  daemon.start();
  const std::string got =
      Client(daemon.socket_path()).run_batches("shardy", w.batches);
  daemon.request_stop();
  daemon.wait();

  EXPECT_EQ(got, expected);
}

// ---------------------------------------------------------------------------
// 3. Error isolation
// ---------------------------------------------------------------------------

TEST_F(ServeTest, MalformedBatchGetsAnErrorFrameAndTheStreamContinues) {
  const Workload w = make_workload(505, 1);
  const std::string expected = one_shot_sam(w);

  serve::Daemon daemon(make_backend(w), kTopo, daemon_config());
  daemon.start();
  {
    Client c(daemon.socket_path());
    c.send(FrameType::kHello, "clumsy");
    c.send(FrameType::kBatch, "this is neither FASTQ nor SeqDB\n");
    auto err = c.recv();
    ASSERT_TRUE(err.has_value());
    EXPECT_EQ(err->type, FrameType::kError);
    EXPECT_NE(err->payload.find("batch rejected"), std::string::npos);

    // The same connection still aligns the next, well-formed batch.
    c.send(FrameType::kBatch, fastq_text(w.batches[0]));
    auto sam = c.recv();
    ASSERT_TRUE(sam.has_value());
    EXPECT_EQ(sam->type, FrameType::kSam);
    EXPECT_EQ(sam->payload, expected);
    c.send(FrameType::kGoodbye);
  }
  const auto stats = daemon.tenant_stats();
  daemon.request_stop();
  daemon.wait();
  ASSERT_EQ(stats.count("clumsy"), 1u);
  EXPECT_EQ(stats.at("clumsy").errors, 1u);
  EXPECT_EQ(stats.at("clumsy").batches, 1u);
}

TEST_F(ServeTest, InvalidHelloIsRefusedWithoutKillingTheDaemon) {
  const Workload w = make_workload(606, 1);
  serve::Daemon daemon(make_backend(w), kTopo, daemon_config());
  daemon.start();
  {
    Client c(daemon.socket_path());
    c.send(FrameType::kBatch, fastq_text(w.batches[0]));  // no Hello first
    auto reply = c.recv();
    ASSERT_TRUE(reply.has_value());
    EXPECT_EQ(reply->type, FrameType::kError);
    EXPECT_FALSE(c.recv().has_value()) << "connection closes after the error";
  }
  {
    Client c(daemon.socket_path());
    c.send(FrameType::kHello, "bad tenant name");  // space is not allowed
    auto reply = c.recv();
    ASSERT_TRUE(reply.has_value());
    EXPECT_EQ(reply->type, FrameType::kError);
  }
  // The daemon is still serving.
  const std::string got =
      Client(daemon.socket_path()).run_batches("fine", w.batches);
  daemon.request_stop();
  daemon.wait();
  EXPECT_EQ(got, one_shot_sam(w));
}

TEST_F(ServeTest, MidStreamDisconnectCostsOnlyThatConnection) {
  const Workload w = make_workload(707, 2);
  const std::string expected = one_shot_sam(w);

  serve::Daemon daemon(make_backend(w), kTopo, daemon_config());
  daemon.start();
  {
    // Vanish right after handing over a batch, never reading the reply: the
    // daemon hits EPIPE on ITS side of this connection only.
    Client c(daemon.socket_path());
    c.send(FrameType::kHello, "ghost");
    c.send(FrameType::kBatch, fastq_text(w.batches[0]));
  }  // ~Client closes the fd
  const std::string got =
      Client(daemon.socket_path()).run_batches("survivor", w.batches);
  daemon.request_stop();
  daemon.wait();
  EXPECT_EQ(got, expected);
}

// ---------------------------------------------------------------------------
// 4. Autosave while serving
// ---------------------------------------------------------------------------

TEST_F(ServeTest, AutosaveWhileServingLeavesALoadableSnapshot) {
  const Workload w = make_workload(808, 4);
  serve::DaemonConfig dcfg = daemon_config();
  dcfg.cache_dir = path("cache");
  std::filesystem::create_directories(dcfg.cache_dir);
  dcfg.autosave_interval_s = 0.05;

  serve::Daemon daemon(make_backend(w), kTopo, dcfg);
  daemon.start();
  {
    Client c(daemon.socket_path());
    c.send(FrameType::kHello, "saver");
    for (const auto& b : w.batches) {
      c.send(FrameType::kBatch, fastq_text(b));
      auto reply = c.recv();
      ASSERT_TRUE(reply.has_value());
      ASSERT_EQ(reply->type, FrameType::kSam);
      std::this_thread::sleep_for(std::chrono::milliseconds(80));
    }
    c.send(FrameType::kGoodbye);
  }
  const std::uint64_t autosaves = daemon.autosaves_completed();
  daemon.request_stop();
  daemon.wait();  // includes the final shutdown save

  EXPECT_GE(autosaves, 1u) << "timer saves must run while batches are served";
  const std::string snap = dcfg.cache_dir + "/session.mcache";
  ASSERT_TRUE(std::filesystem::exists(snap));
  EXPECT_FALSE(std::filesystem::exists(snap + ".tmp"));

  // The snapshot warm-starts a fresh session over the same reference.
  pgas::Runtime rt(kTopo);
  core::AlignSession warm(
      core::IndexedReference::build(rt, w.contigs, small_index()));
  EXPECT_NO_THROW(warm.load_caches(rt, snap));
}

// ---------------------------------------------------------------------------
// 5. Observability over the socket
// ---------------------------------------------------------------------------

TEST_F(ServeTest, MetricsScrapeCarriesServeAndPerTenantSeries) {
  const Workload w = make_workload(909, 1);
  serve::Daemon daemon(make_backend(w), kTopo, daemon_config());
  daemon.start();
  std::string scrape;
  {
    Client c(daemon.socket_path());
    c.send(FrameType::kHello, "scrape_me");
    c.send(FrameType::kBatch, fastq_text(w.batches[0]));
    auto sam = c.recv();
    ASSERT_TRUE(sam.has_value());
    ASSERT_EQ(sam->type, FrameType::kSam);
    c.send(FrameType::kMetricsReq);
    auto metrics = c.recv();
    ASSERT_TRUE(metrics.has_value());
    ASSERT_EQ(metrics->type, FrameType::kMetrics);
    scrape = metrics->payload;
    c.send(FrameType::kGoodbye);
  }
  daemon.request_stop();
  daemon.wait();

  for (const char* needle :
       {"mera_serve_connections_total", "mera_serve_batches_total",
        "mera_serve_bytes_out_total", "tenant=\"scrape_me\"",
        "mera_reads_processed_total", "mera_alignments_reported_total"})
    EXPECT_NE(scrape.find(needle), std::string::npos)
        << "scrape is missing " << needle;
}

TEST_F(ServeTest, StatsRequestReturnsPerTenantJson) {
  const Workload w = make_workload(111, 1);
  serve::Daemon daemon(make_backend(w), kTopo, daemon_config());
  daemon.start();
  std::string json;
  {
    Client c(daemon.socket_path());
    c.send(FrameType::kHello, "jsonite");
    c.send(FrameType::kBatch, fastq_text(w.batches[0]));
    auto sam = c.recv();
    ASSERT_TRUE(sam.has_value());
    ASSERT_EQ(sam->type, FrameType::kSam);
    c.send(FrameType::kStatsReq);
    auto stats = c.recv();
    ASSERT_TRUE(stats.has_value());
    ASSERT_EQ(stats->type, FrameType::kStats);
    json = stats->payload;
    c.send(FrameType::kGoodbye);
  }
  daemon.request_stop();
  daemon.wait();

  EXPECT_NE(json.find("\"name\":\"jsonite\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"batches\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"connections\":1"), std::string::npos) << json;
}

TEST_F(ServeTest, GracefulShutdownRemovesTheSocketFile) {
  const Workload w = make_workload(121, 1);
  serve::Daemon daemon(make_backend(w), kTopo, daemon_config());
  daemon.start();
  ASSERT_TRUE(std::filesystem::exists(daemon.socket_path()));
  daemon.request_stop();
  daemon.request_stop();  // idempotent
  daemon.wait();
  EXPECT_FALSE(std::filesystem::exists(daemon.socket_path()));
}

}  // namespace
