#include "core/evaluation.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "core/pipeline.hpp"
#include "seq/genome_sim.hpp"
#include "seq/read_sim.hpp"

namespace {

using namespace mera;
using core::AlignmentRecord;
using core::EvalOptions;

struct Truthy {
  std::string genome;
  std::vector<seq::SeqRecord> contigs;
  std::vector<seq::SeqRecord> reads;
};

Truthy make(double error_rate, double junk, std::uint64_t seed = 51) {
  Truthy t;
  t.genome = seq::simulate_genome({.length = 25'000, .rng_seed = seed});
  seq::ContigParams cp;
  cp.rng_seed = seed + 1;
  t.contigs = seq::chop_into_contigs(t.genome, cp);
  seq::ReadSimParams rp;
  rp.read_len = 80;
  rp.depth = 1.5;
  rp.error_rate = error_rate;
  rp.junk_fraction = junk;
  rp.rng_seed = seed + 2;
  t.reads = seq::simulate_reads(t.genome, rp);
  return t;
}

TEST(Evaluation, PerfectAlignerScoresPerfectly) {
  const auto t = make(0.0, 0.0);
  // Hand-build "alignments": place every read exactly at its truth if it
  // falls inside one contig.
  std::vector<AlignmentRecord> alignments;
  for (const auto& r : t.reads) {
    const auto truth = seq::parse_read_truth(r.name);
    for (std::uint32_t cid = 0; cid < t.contigs.size(); ++cid) {
      const auto ct = seq::parse_contig_truth(t.contigs[cid].name);
      if (truth.pos >= ct.start && truth.pos + r.seq.size() <= ct.end) {
        AlignmentRecord a;
        a.query_name = r.name;
        a.target_id = cid;
        a.t_begin = truth.pos - ct.start;
        a.t_end = a.t_begin + r.seq.size();
        a.reverse = truth.reverse;
        a.score = 160;
        alignments.push_back(std::move(a));
        break;
      }
    }
  }
  const auto res = core::evaluate_alignments(t.contigs, t.reads, alignments,
                                             {21, 3}, t.genome);
  EXPECT_EQ(res.misplaced, 0u);
  EXPECT_EQ(res.junk_aligned, 0u);
  EXPECT_EQ(res.correctly_placed, alignments.size());
  EXPECT_GT(res.placement_precision(), 0.999);
  EXPECT_GE(res.findable_reads, res.correctly_placed);
}

TEST(Evaluation, MisplacedAlignmentsAreCounted) {
  const auto t = make(0.0, 0.0);
  std::vector<AlignmentRecord> alignments;
  AlignmentRecord a;
  a.query_name = t.reads[0].name;
  a.target_id = 0;
  a.t_begin = 999999;  // nowhere near the truth
  a.score = 10;
  alignments.push_back(a);
  const auto res =
      core::evaluate_alignments(t.contigs, t.reads, alignments, {21, 3});
  EXPECT_EQ(res.misplaced, 1u);
  EXPECT_EQ(res.correctly_placed, 0u);
}

TEST(Evaluation, JunkAlignmentsAreFalsePositives) {
  const auto t = make(0.0, 0.3);
  std::vector<AlignmentRecord> alignments;
  for (const auto& r : t.reads) {
    if (!seq::parse_read_truth(r.name).junk) continue;
    AlignmentRecord a;
    a.query_name = r.name;
    a.target_id = 0;
    a.score = 5;
    alignments.push_back(a);
    break;
  }
  ASSERT_EQ(alignments.size(), 1u);
  const auto res =
      core::evaluate_alignments(t.contigs, t.reads, alignments, {21, 3});
  EXPECT_EQ(res.junk_aligned, 1u);
}

TEST(Evaluation, FindableExcludesErrorSaturatedReads) {
  // A read with an error every < k bases has no clean k-stretch.
  const auto t = make(0.0, 0.0, 61);
  seq::SeqRecord read;
  const auto truth_pos = 5000u;
  read.seq = t.genome.substr(truth_pos, 80);
  for (std::size_t i = 0; i < read.seq.size(); i += 10)
    read.seq[i] = seq::complement_base(read.seq[i]);  // error every 10 bp
  read.name = "r0;pos=" + std::to_string(truth_pos) + ";strand=+";
  EXPECT_FALSE(core::read_is_findable(read, t.genome, t.contigs, 21));
  // The same read *is* findable with a smaller seed.
  EXPECT_TRUE(core::read_is_findable(read, t.genome, t.contigs, 7));
}

TEST(Evaluation, MerAlignerRecallIsNearTheSeedTheoreticBound) {
  // The paper's guarantee: every alignment sharing a clean k-stretch with a
  // target is found. So recall over *findable* reads should be ~100%.
  const auto t = make(0.01, 0.02);
  core::AlignerConfig cfg;
  cfg.k = 21;
  cfg.buffer_S = 64;
  cfg.fragment_len = 512;
  pgas::Runtime rt(pgas::Topology(4, 2));
  const auto res = core::MerAligner(cfg).align(rt, t.contigs, t.reads);
  const auto ev = core::evaluate_alignments(t.contigs, t.reads, res.alignments,
                                            {cfg.k, 5}, t.genome);
  EXPECT_GT(ev.recall_vs_findable(), 0.98);
  EXPECT_GT(ev.placement_precision(), 0.95);
  EXPECT_LT(ev.junk_aligned, t.reads.size() / 100);
}

TEST(Evaluation, PrintIsReadable) {
  core::EvalResult r;
  r.total_reads = 100;
  r.aligned_reads = 90;
  r.correctly_placed = 88;
  r.misplaced = 2;
  r.findable_reads = 92;
  std::ostringstream os;
  r.print(os);
  EXPECT_NE(os.str().find("aligned"), std::string::npos);
  EXPECT_NE(os.str().find("recall"), std::string::npos);
}

}  // namespace
