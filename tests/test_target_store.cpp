#include "core/target_store.hpp"

#include <gtest/gtest.h>

#include <random>
#include <string>

namespace {

using namespace mera::core;
using mera::pgas::Rank;
using mera::pgas::Runtime;
using mera::pgas::Topology;
using mera::seq::SeqRecord;

std::vector<SeqRecord> make_targets(int n, std::uint64_t seed,
                                    std::size_t min_len = 100,
                                    std::size_t max_len = 400) {
  std::mt19937_64 rng(seed);
  std::vector<SeqRecord> recs;
  for (int i = 0; i < n; ++i) {
    SeqRecord r;
    r.name = "t" + std::to_string(i);
    r.seq.resize(min_len + rng() % (max_len - min_len));
    for (auto& c : r.seq) c = "ACGT"[rng() & 3u];
    recs.push_back(std::move(r));
  }
  return recs;
}

void build(Runtime& rt, TargetStore& store,
           const std::vector<SeqRecord>& targets) {
  rt.run([&](Rank& r) {
    const std::size_t n = targets.size();
    const auto me = static_cast<std::size_t>(r.id());
    const auto p = static_cast<std::size_t>(r.nranks());
    std::vector<SeqRecord> mine(targets.begin() + static_cast<std::ptrdiff_t>(n * me / p),
                                targets.begin() + static_cast<std::ptrdiff_t>(n * (me + 1) / p));
    store.add_local_targets(r, std::move(mine));
    store.finish_construction(r);
  });
}

TEST(TargetStore, GlobalIdsAreBlockedAndComplete) {
  const auto targets = make_targets(23, 1);
  Runtime rt(Topology(5, 5));
  TargetStore store(5, {21, 1u << 30});
  build(rt, store, targets);

  ASSERT_EQ(store.num_targets(), targets.size());
  for (std::uint32_t gid = 0; gid < store.num_targets(); ++gid) {
    const Target& t = store.target_unsync(gid);
    EXPECT_EQ(t.name, targets[gid].name);
    EXPECT_EQ(t.seq.to_string(), targets[gid].seq);
  }
}

TEST(TargetStore, OwnershipMatchesLocalRanges) {
  const auto targets = make_targets(17, 2);
  Runtime rt(Topology(4, 2));
  TargetStore store(4, {21, 1u << 30});
  build(rt, store, targets);

  std::size_t total = 0;
  for (int rank = 0; rank < 4; ++rank) {
    const auto [lo, hi] = store.local_target_range(rank);
    total += hi - lo;
    for (std::uint32_t gid = lo; gid < hi; ++gid)
      EXPECT_EQ(store.owner_of_target(gid), rank);
  }
  EXPECT_EQ(total, targets.size());
}

TEST(TargetStore, FetchChargesRemoteOwnersOnly) {
  const auto targets = make_targets(8, 3);
  Runtime rt(Topology(4, 2));
  TargetStore store(4, {21, 1u << 30});
  build(rt, store, targets);

  rt.run([&](Rank& r) {
    if (r.id() != 0) return;
    const auto [lo, hi] = store.local_target_range(0);
    ASSERT_GT(hi, lo);
    const auto base_msgs = r.stats().remote_msgs();
    (void)store.fetch_target(r, lo);  // own target: free
    EXPECT_EQ(r.stats().remote_msgs(), base_msgs);
    const auto [rlo, rhi] = store.local_target_range(3);
    ASSERT_GT(rhi, rlo);
    (void)store.fetch_target(r, rlo);  // remote: one message
    EXPECT_EQ(r.stats().remote_msgs(), base_msgs + 1);
    // Transfer size is the packed payload (4x compression).
    EXPECT_EQ(r.stats().remote_bytes(),
              store.target_transfer_bytes(rlo));
  });
}

TEST(TargetStore, FragmentsTileEachTargetWithOverlap) {
  const auto targets = make_targets(6, 4, 300, 900);
  const int k = 21;
  const std::size_t flen = 128;
  Runtime rt(Topology(3, 3));
  TargetStore store(3, {k, flen});
  build(rt, store, targets);

  ASSERT_GT(store.num_fragments(), store.num_targets());
  std::vector<std::size_t> covered(targets.size(), 0);
  for (std::uint32_t fid = 0; fid < store.num_fragments(); ++fid) {
    const Fragment& f = store.fragment_unsync(fid);
    const Target& t = store.target_unsync(f.parent_target);
    EXPECT_LE(f.parent_offset + f.length, t.seq.size());
    EXPECT_TRUE(f.single_copy_seeds.load());
    covered[f.parent_target] =
        std::max<std::size_t>(covered[f.parent_target],
                              f.parent_offset + f.length);
  }
  for (std::uint32_t gid = 0; gid < store.num_targets(); ++gid)
    EXPECT_EQ(covered[gid], store.target_unsync(gid).seq.size());
}

TEST(TargetStore, FragmentationOffYieldsOneFragmentPerTarget) {
  const auto targets = make_targets(9, 5);
  Runtime rt(Topology(3, 3));
  TargetStore store(3, {21, std::numeric_limits<std::size_t>::max()});
  build(rt, store, targets);
  EXPECT_EQ(store.num_fragments(), store.num_targets());
  for (std::uint32_t fid = 0; fid < store.num_fragments(); ++fid) {
    const Fragment& f = store.fragment_unsync(fid);
    EXPECT_EQ(f.parent_offset, 0u);
    EXPECT_EQ(f.length, store.target_unsync(f.parent_target).seq.size());
  }
}

TEST(TargetStore, ClearSingleCopyIsOneSidedAndVisible) {
  const auto targets = make_targets(8, 6);
  Runtime rt(Topology(4, 2));
  TargetStore store(4, {21, 1u << 30});
  build(rt, store, targets);

  rt.run([&](Rank& r) {
    // Every rank clears one remote fragment's flag.
    const std::uint32_t victim =
        (store.local_fragment_range((r.id() + 1) % 4).first);
    store.clear_single_copy(r, victim);
    r.barrier();
    EXPECT_FALSE(store.fragment_unsync(victim).single_copy_seeds.load());
  });
  EXPECT_LT(store.single_copy_fraction(), 1.0);
  EXPECT_GT(store.single_copy_fraction(), 0.0);
}

TEST(TargetStore, UnbalancedDepositsStillWork) {
  // All targets land on one rank (e.g. a tiny input file).
  const auto targets = make_targets(5, 7);
  Runtime rt(Topology(4, 4));
  TargetStore store(4, {21, 1u << 30});
  rt.run([&](Rank& r) {
    if (r.id() == 2) store.add_local_targets(r, targets);
    store.finish_construction(r);
  });
  EXPECT_EQ(store.num_targets(), 5u);
  EXPECT_EQ(store.owner_of_target(0), 2);
  const auto [lo, hi] = store.local_target_range(0);
  EXPECT_EQ(lo, hi);  // rank 0 owns nothing
}

TEST(TargetStore, RejectsBadOptions) {
  EXPECT_THROW(TargetStore(2, {0, 100}), std::invalid_argument);
  EXPECT_THROW(TargetStore(2, {21, 10}), std::invalid_argument);
}

}  // namespace
