// The sharded-reference subsystem: ShardPlanner (partition targets into
// balanced shards), ShardedReference (K IndexedReference shards + global
// target-id mapping + merged SAM header), ShardedAlignSession (stream each
// batch through every shard, reconcile deterministically, emit through the
// ordinary AlignmentSink interface).
//
// The contract that matters: with an exhaustive per-shard search (exact-match
// short-circuit off, no seed-hit truncation), a K-shard session must be
// bit-identical — records, SAM content, and work totals — to the equivalent
// single-IndexedReference session, for every sink and every SW kernel.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "core/align_session.hpp"
#include "core/alignment_sink.hpp"
#include "core/indexed_reference.hpp"
#include "core/sam_writer.hpp"
#include "seq/genome_sim.hpp"
#include "seq/read_sim.hpp"
#include "seq/seqdb.hpp"
#include "shard/shard_planner.hpp"
#include "shard/sharded_reference.hpp"
#include "shard/sharded_session.hpp"

namespace {

using namespace mera;
using namespace mera::shard;
using mera::align::SwKernel;
using mera::core::AlignmentRecord;
using mera::pgas::Runtime;
using mera::pgas::Topology;
using mera::seq::SeqRecord;

struct Workload {
  std::vector<SeqRecord> contigs;
  std::vector<SeqRecord> reads;
};

Workload make_workload(std::size_t genome_len, double depth,
                       double error_rate = 0.005, std::uint64_t seed = 7) {
  Workload w;
  seq::GenomeParams gp;
  gp.length = genome_len;
  gp.repeat_fraction = 0.02;
  gp.rng_seed = seed;
  const std::string genome = simulate_genome(gp);
  seq::ContigParams cp;
  cp.rng_seed = seed + 1;
  w.contigs = chop_into_contigs(genome, cp);
  seq::ReadSimParams rp;
  rp.read_len = 80;
  rp.depth = depth;
  rp.error_rate = error_rate;
  rp.n_rate = 0.0;
  rp.rng_seed = seed + 2;
  w.reads = simulate_reads(genome, rp);
  return w;
}

core::IndexConfig small_index(int k = 21) {
  core::IndexConfig ic;
  ic.k = k;
  ic.buffer_S = 64;
  ic.fragment_len = 512;
  return ic;
}

/// Exhaustive-search session config: the regime in which shard composition
/// is provably lossless (see sharded_session.hpp).
core::SessionConfig exhaustive_session() {
  core::SessionConfig sc;
  sc.seed_cache_capacity = 1u << 14;
  sc.target_cache_bytes = 8u << 20;
  sc.permute_queries = false;  // keep rank partitions comparable
  sc.exact_match = false;      // the Lemma-1 short-circuit is per shard
  sc.max_hits_per_seed = 4096; // no per-shard truncation
  return sc;
}

void sort_records(std::vector<AlignmentRecord>& recs) {
  auto key = [](const AlignmentRecord& r) {
    return std::tie(r.query_name, r.target_id, r.t_begin, r.t_end, r.reverse,
                    r.score, r.q_begin, r.q_end, r.cigar, r.mismatches,
                    r.exact);
  };
  std::sort(recs.begin(), recs.end(),
            [&](const AlignmentRecord& a, const AlignmentRecord& b) {
              return key(a) < key(b);
            });
}

std::vector<std::string> sorted_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line))
    if (!line.empty()) lines.push_back(line);
  std::sort(lines.begin(), lines.end());
  return lines;
}

// ---------------------------------------------------------------------------
// ShardPlanner
// ---------------------------------------------------------------------------

std::vector<SeqRecord> synthetic_targets(const std::vector<std::size_t>& lens) {
  std::vector<SeqRecord> out;
  for (std::size_t i = 0; i < lens.size(); ++i) {
    SeqRecord r;
    r.name = "t" + std::to_string(i);
    r.seq = std::string(lens[i], 'A');
    out.push_back(std::move(r));
  }
  return out;
}

TEST(ShardPlanner, PartitionsEveryTargetExactlyOnce) {
  const auto targets =
      synthetic_targets({900, 120, 4000, 2500, 64, 1800, 700, 3100, 50, 2000});
  ShardPlanOptions opt;
  opt.shards = 4;
  opt.k = 21;
  const ShardPlan plan = plan_shards(targets, opt);
  ASSERT_EQ(plan.num_shards(), 4);
  std::vector<int> seen(targets.size(), 0);
  for (const auto& s : plan.shards) {
    EXPECT_TRUE(std::is_sorted(s.targets.begin(), s.targets.end()));
    for (const auto gid : s.targets) {
      ASSERT_LT(gid, targets.size());
      ++seen[gid];
    }
  }
  for (std::size_t i = 0; i < targets.size(); ++i)
    EXPECT_EQ(seen[i], 1) << "target " << i;
  EXPECT_EQ(plan.num_targets(), targets.size());
}

TEST(ShardPlanner, BalancesWeightWithinTheLptBound) {
  // 40 targets with skewed lengths; LPT guarantees max <= mean + heaviest.
  std::vector<std::size_t> lens;
  for (std::size_t i = 0; i < 40; ++i) lens.push_back(100 + 137 * i % 5000);
  const auto targets = synthetic_targets(lens);
  for (const auto model : {ShardWeight::kBases, ShardWeight::kCostModel}) {
    ShardPlanOptions opt;
    opt.shards = 4;
    opt.weight = model;
    opt.k = 21;
    const ShardPlan plan = plan_shards(targets, opt);
    std::uint64_t heaviest = 0;
    for (const auto& t : targets)
      heaviest = std::max(heaviest, target_weight(t, model, opt.k));
    const double mean =
        static_cast<double>(plan.total_weight()) / plan.num_shards();
    EXPECT_LE(static_cast<double>(plan.max_weight()),
              mean + static_cast<double>(heaviest));
    EXPECT_GE(plan.imbalance(), 1.0);
    EXPECT_LT(plan.imbalance(), 1.5);  // near-even for this mix
  }
}

TEST(ShardPlanner, IsDeterministicAndClampsShardCount) {
  const auto targets = synthetic_targets({500, 300, 900});
  ShardPlanOptions opt;
  opt.shards = 8;  // more shards than targets
  const ShardPlan a = plan_shards(targets, opt);
  const ShardPlan b = plan_shards(targets, opt);
  ASSERT_EQ(a.num_shards(), 3);  // clamped to num_targets
  for (int s = 0; s < 3; ++s) {
    EXPECT_EQ(a.shards[static_cast<std::size_t>(s)].targets,
              b.shards[static_cast<std::size_t>(s)].targets);
  }
  opt.shards = 0;  // clamped up to 1
  EXPECT_EQ(plan_shards(targets, opt).num_shards(), 1);
}

TEST(ShardPlanner, WeightModelsChargeBasesOrSeeds) {
  SeqRecord t;
  t.seq = std::string(100, 'A');
  EXPECT_EQ(target_weight(t, ShardWeight::kBases, 21), 100u);
  EXPECT_EQ(target_weight(t, ShardWeight::kCostModel, 21), 80u);  // L - k + 1
  t.seq = std::string(10, 'A');  // shorter than k: no seeds, but weight >= 1
  EXPECT_EQ(target_weight(t, ShardWeight::kCostModel, 21), 1u);
}

// ---------------------------------------------------------------------------
// ShardedReference
// ---------------------------------------------------------------------------

TEST(ShardedReference, GlobalIdMappingRoundTripsAndHeaderMatchesMonolithic) {
  const auto w = make_workload(20'000, 0.5);
  Runtime rt(Topology(4, 2));
  const auto mono = core::IndexedReference::build(rt, w.contigs, small_index());
  const auto sharded = ShardedReference::build(rt, w.contigs, 3, small_index());

  ASSERT_EQ(sharded.num_shards(), 3);
  ASSERT_EQ(sharded.num_targets(), w.contigs.size());
  for (std::uint32_t gid = 0; gid < sharded.num_targets(); ++gid) {
    const auto [s, local] = sharded.to_shard(gid);
    EXPECT_EQ(sharded.to_global(s, local), gid);
    // Global ids are input positions — the same ids the monolithic build
    // assigns — so names must agree id for id.
    EXPECT_EQ(sharded.target_name(gid), w.contigs[gid].name);
    EXPECT_EQ(sharded.target_name(gid),
              mono.targets().target_unsync(gid).name);
    EXPECT_EQ(sharded.target_length(gid), w.contigs[gid].seq.size());
  }

  std::ostringstream mono_hdr, shard_hdr;
  core::write_sam_header(mono_hdr, mono.targets());
  core::write_sam_header(shard_hdr, sharded.sam_targets());
  EXPECT_EQ(mono_hdr.str(), shard_hdr.str());
}

TEST(ShardedReference, BuildDiagnosticsCoverEveryShard) {
  const auto w = make_workload(20'000, 0.5);
  Runtime rt(Topology(4, 2));
  const auto mono = core::IndexedReference::build(rt, w.contigs, small_index());
  const auto sharded = ShardedReference::build(rt, w.contigs, 4, small_index());

  // Index entries are per-target quantities, so the shard sum equals the
  // monolithic count exactly.
  EXPECT_EQ(sharded.index_entries(), mono.index_entries());
  EXPECT_TRUE(sharded.exact_match_marked());

  // The appended build report holds one index.build per shard, and the
  // parallel (per-runtime) build time can only be <= the serial sum.
  std::size_t builds = 0;
  for (const auto& ph : sharded.build_report().phases)
    builds += ph.name == "index.build" ? 1 : 0;
  EXPECT_EQ(builds, 4u);
  EXPECT_LE(sharded.build_time_parallel_s(), sharded.build_time_serial_s());
  EXPECT_GT(sharded.build_time_parallel_s(), 0.0);
}

TEST(ShardedReference, RejectsPlansThatAreNotAPartition) {
  const auto targets = synthetic_targets({500, 300, 900});
  Runtime rt(Topology(2, 2));
  ShardPlan missing;  // covers only target 0
  missing.shards.push_back({{0}, 500});
  EXPECT_THROW(
      (void)ShardedReference::build(rt, targets, missing, small_index()),
      std::invalid_argument);
  ShardPlan dup;  // target 1 twice
  dup.shards.push_back({{0, 1}, 800});
  dup.shards.push_back({{1, 2}, 1200});
  EXPECT_THROW((void)ShardedReference::build(rt, targets, dup, small_index()),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// ShardedAlignSession — the equivalence contract
// ---------------------------------------------------------------------------

std::vector<AlignmentRecord> run_monolithic(const Workload& w,
                                            const core::SessionConfig& sc,
                                            core::PipelineStats* stats = nullptr,
                                            std::string* sam = nullptr) {
  Runtime rt(Topology(4, 2));
  const auto ref = core::IndexedReference::build(rt, w.contigs, small_index());
  core::AlignSession session(ref, sc);
  core::VectorSink vec(rt.nranks());
  std::ostringstream sam_text;
  core::SamStreamSink sam_sink(sam_text, ref);
  core::TeeSink tee({&vec, &sam_sink});
  const auto res = session.align_batch(rt, w.reads, tee);
  EXPECT_EQ(res.stats.hits_truncated, 0u);
  if (stats) *stats = res.stats;
  if (sam) *sam = sam_text.str();
  return vec.take();
}

TEST(ShardedSession, OutputBitIdenticalToMonolithicSessionAllKernelsAllK) {
  const auto w = make_workload(30'000, 1.5, /*error=*/0.005);

  for (const SwKernel kernel :
       {SwKernel::kFullDP, SwKernel::kBanded, SwKernel::kStriped}) {
    core::SessionConfig sc = exhaustive_session();
    sc.extension.kernel = kernel;

    core::PipelineStats mono_stats;
    auto mono = run_monolithic(w, sc, &mono_stats);
    sort_records(mono);
    ASSERT_GT(mono.size(), 0u);

    for (const int K : {1, 2, 4}) {
      Runtime rt(Topology(4, 2));
      const auto ref = ShardedReference::build(rt, w.contigs, K, small_index());
      ASSERT_EQ(ref.num_shards(), K);
      ShardedAlignSession session(ref, sc);
      core::VectorSink vec(rt.nranks());
      const auto res = session.align_batch(rt, w.reads, vec);
      auto got = vec.take();
      sort_records(got);

      ASSERT_EQ(got.size(), mono.size())
          << "K=" << K << " kernel=" << static_cast<int>(kernel);
      for (std::size_t i = 0; i < got.size(); ++i)
        ASSERT_EQ(got[i], mono[i])
            << "record " << i << " K=" << K
            << " kernel=" << static_cast<int>(kernel);

      // Work totals: reads counted once, per-target work summed over shards.
      EXPECT_EQ(res.stats.hits_truncated, 0u);
      EXPECT_EQ(res.stats.reads_processed, mono_stats.reads_processed);
      EXPECT_EQ(res.stats.reads_aligned, mono_stats.reads_aligned);
      EXPECT_EQ(res.stats.alignments_reported, mono_stats.alignments_reported);
      EXPECT_EQ(res.stats.sw_calls, mono_stats.sw_calls);
      EXPECT_EQ(res.stats.target_fetches, mono_stats.target_fetches);
      EXPECT_EQ(res.per_shard.size(), static_cast<std::size_t>(K));
    }
  }
}

TEST(ShardedSession, SamBytesMatchMonolithicForEverySinkAndAreDeterministic) {
  const auto w = make_workload(30'000, 1.2);
  const core::SessionConfig sc = exhaustive_session();

  std::string mono_sam;
  auto mono = run_monolithic(w, sc, nullptr, &mono_sam);

  auto run_sharded = [&](std::string* sam_out) {
    Runtime rt(Topology(4, 2));
    const auto ref = ShardedReference::build(rt, w.contigs, 3, small_index());
    ShardedAlignSession session(ref, sc);
    core::VectorSink vec(rt.nranks());
    core::CountingSink count;
    std::ostringstream sam_text;
    core::SamStreamSink sam(sam_text, ref.sam_targets(), rt.nranks());
    core::TeeSink tee({&vec, &count, &sam});
    const auto res = session.align_batch(rt, w.reads, tee);
    // Every sink saw the same reconciled stream.
    EXPECT_EQ(count.records(), res.stats.alignments_reported);
    EXPECT_EQ(sam.records_written(), count.records());
    EXPECT_EQ(vec.size(), count.records());
    *sam_out = sam_text.str();
    return vec.take();
  };

  std::string sam1, sam2;
  auto got1 = run_sharded(&sam1);
  auto got2 = run_sharded(&sam2);

  // Sharded emission is deterministic: two identical runs, identical bytes.
  EXPECT_EQ(sam1, sam2);
  ASSERT_EQ(got1.size(), got2.size());
  for (std::size_t i = 0; i < got1.size(); ++i) EXPECT_EQ(got1[i], got2[i]);

  // And identical SAM content to the monolithic session. Record order within
  // a read differs by design (the sharded session emits the reconciled
  // best-first order, the monolithic one discovery order), so compare the
  // line sets — the same normalization the repo's golden CLI test uses.
  EXPECT_EQ(sorted_lines(sam1), sorted_lines(mono_sam));

  sort_records(mono);
  sort_records(got1);
  ASSERT_EQ(got1.size(), mono.size());
  for (std::size_t i = 0; i < got1.size(); ++i) EXPECT_EQ(got1[i], mono[i]);
}

TEST(ShardedSession, ReconciledOrderIsBestScoreFirstWithinARead) {
  const auto w = make_workload(25'000, 1.0);
  Runtime rt(Topology(4, 2));
  const auto ref = ShardedReference::build(rt, w.contigs, 2, small_index());
  ShardedAlignSession session(ref, exhaustive_session());

  // Collect (read pointer, record) pairs in emission order.
  class OrderSink final : public core::AlignmentSink {
   public:
    void emit(int, const seq::SeqRecord& read, AlignmentRecord&& rec) override {
      entries.emplace_back(&read, std::move(rec));
    }
    std::vector<std::pair<const SeqRecord*, AlignmentRecord>> entries;
  };
  OrderSink sink;
  (void)session.align_batch(rt, w.reads, sink);
  ASSERT_GT(sink.entries.size(), 0u);
  for (std::size_t i = 1; i < sink.entries.size(); ++i) {
    const auto& [pread, prev] = sink.entries[i - 1];
    const auto& [cread, cur] = sink.entries[i];
    if (pread != cread) continue;  // new read: ordering restarts
    EXPECT_TRUE(std::tie(prev.score) >= std::tie(cur.score) &&
                (prev.score != cur.score ||
                 std::tie(prev.target_id, prev.t_begin) <=
                     std::tie(cur.target_id, cur.t_begin)))
        << "entry " << i << " violates (score desc, target, pos) order";
  }
}

TEST(ShardedSession, FastaPerShardBuildMatchesMonolithic) {
  const auto w = make_workload(25'000, 1.0);
  // Split the contig set into two FASTA files (contiguous halves, so file
  // order equals concatenation order equals monolithic input order).
  const std::size_t half = w.contigs.size() / 2;
  const std::vector<SeqRecord> a(w.contigs.begin(),
                                 w.contigs.begin() +
                                     static_cast<std::ptrdiff_t>(half));
  const std::vector<SeqRecord> b(w.contigs.begin() +
                                     static_cast<std::ptrdiff_t>(half),
                                 w.contigs.end());
  const std::string fa = "test_shard_targets_a.fa";
  const std::string fb = "test_shard_targets_b.fa";
  seq::write_fasta(fa, a);
  seq::write_fasta(fb, b);

  const core::SessionConfig sc = exhaustive_session();
  auto mono = run_monolithic(w, sc);
  sort_records(mono);

  Runtime rt(Topology(4, 2));
  const auto ref = ShardedReference::build_from_fastas(rt, {fa, fb},
                                                       small_index());
  EXPECT_EQ(ref.num_shards(), 2);
  EXPECT_EQ(ref.num_targets(), w.contigs.size());
  ShardedAlignSession session(ref, sc);
  core::VectorSink vec(rt.nranks());
  (void)session.align_batch(rt, w.reads, vec);
  auto got = vec.take();
  sort_records(got);

  ASSERT_EQ(got.size(), mono.size());
  for (std::size_t i = 0; i < got.size(); ++i) EXPECT_EQ(got[i], mono[i]);

  std::remove(fa.c_str());
  std::remove(fb.c_str());
}

TEST(ShardedSession, FileBatchMatchesInMemoryBatch) {
  const auto w = make_workload(20'000, 1.0);
  const std::string db_path = "test_shard_reads.sdb";
  {
    seq::SeqDBWriter db(db_path);
    for (const auto& r : w.reads) db.add(r);
  }

  Runtime rt(Topology(4, 2));
  const auto ref = ShardedReference::build(rt, w.contigs, 2, small_index());
  core::SessionConfig sc = exhaustive_session();
  sc.permute_queries = true;  // exercise the shared one-shot permutation
  ShardedAlignSession session(ref, sc);

  core::VectorSink v_mem(rt.nranks()), v_file(rt.nranks());
  const auto r_mem = session.align_batch(rt, w.reads, v_mem);
  const auto r_file = session.align_batch_file(rt, db_path, v_file);
  auto mem = v_mem.take();
  auto file = v_file.take();
  EXPECT_EQ(r_mem.stats.alignments_reported, r_file.stats.alignments_reported);
  ASSERT_EQ(mem.size(), file.size());
  // Identical permutation, identical partition: even the emission order
  // matches, not just the record set.
  for (std::size_t i = 0; i < mem.size(); ++i) EXPECT_EQ(mem[i], file[i]);

  EXPECT_EQ(session.batches_aligned(), 2u);
  std::remove(db_path.c_str());
}

TEST(ShardedSession, AggregatesPhaseReportsAcrossShards) {
  const auto w = make_workload(20'000, 1.0);
  Runtime rt(Topology(4, 2));
  const auto ref = ShardedReference::build(rt, w.contigs, 3, small_index());
  ShardedAlignSession session(ref, exhaustive_session());
  core::CountingSink sink;
  const auto res = session.align_batch(rt, w.reads, sink);

  std::size_t aligns = 0, io_reads = 0;
  for (const auto& ph : res.report.phases) {
    aligns += ph.name == "align" ? 1 : 0;
    io_reads += ph.name == "io.reads" ? 1 : 0;
    EXPECT_NE(ph.name, "index.build");  // reuse: no index phases in batches
    EXPECT_NE(ph.name, "index.mark");
    EXPECT_NE(ph.name, "io.targets");
  }
  EXPECT_EQ(aligns, 3u);
  EXPECT_EQ(io_reads, 3u);
  EXPECT_LE(res.time_parallel_s(), res.total_time_s());
  EXPECT_GT(res.time_parallel_s(), 0.0);
}

TEST(ShardedSession, TopologyMismatchIsRejected) {
  const auto w = make_workload(10'000, 0.5);
  Runtime rt(Topology(4, 2));
  const auto ref = ShardedReference::build(rt, w.contigs, 2, small_index());
  ShardedAlignSession session(ref, exhaustive_session());
  core::CountingSink sink;
  Runtime other(Topology(2, 2));
  EXPECT_THROW((void)session.align_batch(other, w.reads, sink),
               std::invalid_argument);
}

}  // namespace
