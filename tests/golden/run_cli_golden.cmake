# CTest driver for the meraligner_cli golden-file test.
#
# Inputs (passed with -D):
#   CLI     - path to the built meraligner_cli binary
#   GOLDEN  - checked-in expected SAM (tests/golden/meraligner_cli.sam)
#   WORKDIR - scratch directory for this run
#
# Fixtures are copied into WORKDIR first because the CLI writes a derived
# .sdb file next to the input FASTQ; the source tree must stay clean.
cmake_minimum_required(VERSION 3.20)

get_filename_component(FIXTURES ${GOLDEN} DIRECTORY)

file(REMOVE_RECURSE ${WORKDIR})
file(MAKE_DIRECTORY ${WORKDIR})
file(COPY ${FIXTURES}/contigs.fa ${FIXTURES}/reads.fastq DESTINATION ${WORKDIR})

execute_process(
  COMMAND ${CLI}
    --targets ${WORKDIR}/contigs.fa
    --reads ${WORKDIR}/reads.fastq
    --out ${WORKDIR}/out.sam
    --k 31 --ranks 4 --ppn 2 --no-permute
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "meraligner_cli exited with ${rc}\nstdout:\n${out}\nstderr:\n${err}")
endif()

# SAM record order is not semantically meaningful (the pipeline emits per-rank
# batches), so compare sorted line sets. Read names contain ';' (CMake's list
# separator), so shield them with a placeholder before any list operation —
# otherwise list(SORT) silently splits records into fragments.
function(normalize in_path out_path)
  file(READ ${in_path} content)
  string(REPLACE ";" "<SEMI>" content "${content}")
  string(REPLACE "\n" ";" lines "${content}")
  list(SORT lines)
  list(JOIN lines "\n" text)
  string(REPLACE "<SEMI>" ";" text "${text}")
  file(WRITE ${out_path} "${text}\n")
endfunction()

normalize(${WORKDIR}/out.sam ${WORKDIR}/out.sorted.sam)
normalize(${GOLDEN} ${WORKDIR}/golden.sorted.sam)

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files
    ${WORKDIR}/out.sorted.sam ${WORKDIR}/golden.sorted.sam
  RESULT_VARIABLE diff_rc)
if(NOT diff_rc EQUAL 0)
  message(FATAL_ERROR
    "SAM output differs from golden file.\n"
    "  produced: ${WORKDIR}/out.sam\n"
    "  expected: ${GOLDEN}\n"
    "If the change is intentional, re-baseline by copying the produced file "
    "over the golden one (see tests/golden/gen_fixtures.cpp).")
endif()
